package pak_test

import (
	"fmt"
	"testing"

	pak "pak"
	"pak/internal/randsys"
	"pak/internal/ratutil"
	"pak/internal/runset"
)

// Kernel ≡ naive sweep over the public surface: on every registry
// scenario (each one's differential instances plus its bare name when
// it resolves) and on ≥20 randsys systems, the exact-arithmetic measure
// kernel must return byte-identical (RatString) results to the direct
// big.Rat reference fold for Measure, MeasureIntersect, Cond and
// CondIntersect, and the total measure must be exactly 1. The
// package-level tests in internal/pps cover the tiers and edge events;
// this sweep pins the kernel on the systems users actually build.

// kernelSpecs collects one buildable spec set per registered scenario.
func kernelSpecs(t *testing.T) []string {
	t.Helper()
	var specs []string
	for _, s := range pak.Scenarios().Scenarios() {
		specs = append(specs, s.Differential...)
		if _, err := pak.BuildScenario(s.Name); err == nil {
			specs = append(specs, s.Name)
		}
		if len(s.Differential) == 0 {
			if _, err := pak.BuildScenario(s.Name); err != nil {
				t.Fatalf("scenario %q has no differential instances and its bare name does not build: %v", s.Name, err)
			}
		}
	}
	return specs
}

// kernelEvent derives a deterministic pseudo-random event.
func kernelEvent(sys *pak.System, seed uint64) *runset.Set {
	ev := sys.NewSet()
	x := seed
	for r := 0; r < sys.NumRuns(); r++ {
		x = x*6364136223846793005 + 1442695040888963407
		if x&1 == 1 {
			ev.Add(r)
		}
	}
	return ev
}

func checkKernelOnSystem(t *testing.T, sys *pak.System, label string) {
	t.Helper()
	if !ratutil.IsOne(sys.TotalMeasure()) {
		t.Fatalf("%s: TotalMeasure = %s", label, sys.TotalMeasure().RatString())
	}
	for seed := uint64(1); seed <= 6; seed++ {
		a := kernelEvent(sys, seed)
		b := kernelEvent(sys, seed+50)
		if got, want := sys.Measure(a).RatString(), sys.MeasureNaive(a).RatString(); got != want {
			t.Fatalf("%s: Measure = %s, naive %s", label, got, want)
		}
		if got, want := sys.MeasureIntersect(a, b).RatString(), sys.MeasureNaive(a.Intersect(b)).RatString(); got != want {
			t.Fatalf("%s: MeasureIntersect = %s, naive %s", label, got, want)
		}
		mb := sys.MeasureNaive(b)
		cond, ok := sys.Cond(a, b)
		if ok != (mb.Sign() > 0) {
			t.Fatalf("%s: Cond ok = %v with µ(b) = %s", label, ok, mb.RatString())
		}
		if ok {
			want := ratutil.Div(sys.MeasureNaive(a.Intersect(b)), mb).RatString()
			if cond.RatString() != want {
				t.Fatalf("%s: Cond = %s, naive %s", label, cond.RatString(), want)
			}
			joint, okJ := sys.CondIntersect(a, a, b)
			if !okJ || joint.RatString() != cond.RatString() {
				t.Fatalf("%s: CondIntersect(a,a,b) = (%v, %v), want Cond(a,b) = %s", label, joint, okJ, cond.RatString())
			}
		}
	}
}

// TestKernelMatchesNaiveOnRegistryScenarios sweeps every registered
// scenario.
func TestKernelMatchesNaiveOnRegistryScenarios(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range kernelSpecs(t) {
		if seen[spec] {
			continue
		}
		seen[spec] = true
		t.Run(spec, func(t *testing.T) {
			sys, err := pak.BuildScenario(spec)
			if err != nil {
				t.Fatalf("BuildScenario(%q): %v", spec, err)
			}
			checkKernelOnSystem(t, sys, spec)
		})
	}
}

// TestKernelMatchesNaiveOnRandomSystems sweeps 20 randsys systems of
// varying shape.
func TestKernelMatchesNaiveOnRandomSystems(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sys, err := randsys.Generate(randsys.Config{
			Agents:      1 + int(seed%3),
			Depth:       2 + int(seed%5),
			MaxBranch:   2 + int(seed%2),
			MaxInitial:  1 + int(seed%3),
			ObsAlphabet: 4 + int(seed%13),
			ActionTime:  int(seed % 2),
			Seed:        seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkKernelOnSystem(t, sys, fmt.Sprintf("randsys seed %d", seed))
	}
}
