package pak_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"pak"
	"pak/internal/experiments"
)

// queryWorkload builds the benchmark system and theorem workload used
// across the query-API tests.
func queryWorkload(t testing.TB) (*pak.System, []pak.Query) {
	t.Helper()
	sys, err := pak.NFiringSquadSystem(4, pak.Rat(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	return sys, experiments.TheoremWorkload(4)
}

// TestQueryFacadeBatch exercises the public query surface end to end:
// batch evaluation, order preservation, serialization through the
// facade helpers, and exact agreement with one-off Eval calls.
func TestQueryFacadeBatch(t *testing.T) {
	sys, qs := queryWorkload(t)

	doc, err := pak.MarshalQueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := pak.ParseQueryBatch(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(qs) {
		t.Fatalf("parsed %d queries, want %d", len(parsed), len(qs))
	}

	results, err := pak.EvalSystem(sys, parsed, pak.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	e := pak.NewEngine(sys)
	for i, q := range qs {
		want, evalErr := pak.Eval(e, q)
		if evalErr != nil {
			t.Fatalf("query %d (%s): %v", i, q, evalErr)
		}
		got := results[i]
		if got.Kind != want.Kind || got.Verdict != want.Verdict {
			t.Errorf("query %d (%s): kind/verdict (%s,%s) vs (%s,%s)",
				i, q, got.Kind, got.Verdict, want.Kind, want.Verdict)
		}
		if (got.Value == nil) != (want.Value == nil) {
			t.Errorf("query %d (%s): value presence mismatch", i, q)
		} else if got.Value != nil && got.Value.Cmp(want.Value) != 0 {
			t.Errorf("query %d (%s): %s vs %s", i, q, got.Value.RatString(), want.Value.RatString())
		}
	}
}

// TestQueryBatchSpeedup asserts the acceptance claim of the batch API:
// EvalBatch with parallelism ≥ 4 beats the serial Eval loop on the
// 4-agent firing-squad theorem workload. Wall-clock parallel speedup
// needs real cores, so the test skips on single-CPU machines (the
// BenchmarkQueryBatch* suite records the same comparison there).
func TestQueryBatchSpeedup(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skipf("needs ≥ 2 CPUs to observe parallel speedup, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceEnabled {
		// Race instrumentation distorts the serial/parallel ratio enough
		// to make wall-clock comparisons meaningless (and flaky on loaded
		// CI runners); the BenchmarkQueryBatch* suite records the same
		// comparison uninstrumented.
		t.Skip("timing comparison skipped under -race")
	}
	sys, qs := queryWorkload(t)

	serialTime := func() time.Duration {
		e := pak.NewEngine(sys)
		start := time.Now()
		for _, q := range qs {
			if _, err := pak.Eval(e, q); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	parallelTime := func() time.Duration {
		e := pak.NewEngine(sys)
		start := time.Now()
		if _, err := pak.EvalBatch(e, qs, pak.WithParallelism(4)); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Timing comparisons flake under load: require a win in the best of
	// three paired attempts (after one warm-up of each path).
	serialTime()
	parallelTime()
	for attempt := 0; attempt < 3; attempt++ {
		s, p := serialTime(), parallelTime()
		if p < s {
			t.Logf("attempt %d: parallel %v < serial %v", attempt, p, s)
			return
		}
		t.Logf("attempt %d: parallel %v ≥ serial %v", attempt, p, s)
	}
	// NumCPU can lie in cgroup-quota-capped containers (many visible
	// CPUs, ~1 core of quota), where no parallel speedup is physically
	// available; a hard failure there would flag correct code. Fail only
	// when the environment vouches for real cores (CI sets this on
	// multicore runners); otherwise record the skip.
	msg := "EvalBatch with parallelism 4 never beat the serial loop in 3 attempts"
	if os.Getenv("PAK_REQUIRE_SPEEDUP") != "" {
		t.Error(msg)
		return
	}
	t.Skip(msg + " — likely a CPU-quota-capped environment; set PAK_REQUIRE_SPEEDUP=1 to make this fatal")
}
