package pak

import (
	"pak/internal/service"
	"pak/internal/store"
)

// The persistent result tier, re-exported from internal/store: a
// content-addressed map from (canonical system spec × canonical query
// document) to exact ResultDoc bytes, wired into the service as a
// read-through/write-behind tier so a restarted server answers stored
// results byte-identically with zero engine rebuilds. See DESIGN.md
// "Persistent results" for the addressing, persistence and integrity
// contracts.
type (
	// ResultStore is the storage interface the service persists results
	// through: Get/Put/Len over content-addressed entries, with
	// integrity-checked reads (a corrupt entry is an error wrapping
	// StoreErrCorrupt, never a served answer).
	ResultStore = store.Store
	// StoreEntry is one stored result: the canonical system spec, the
	// canonical query document, and the ResultDoc value bytes.
	StoreEntry = store.Entry
	// StoreKey is the content address of one stored result (SHA-256 of
	// the versioned system×query preimage, lowercase hex).
	StoreKey = store.Key
	// DiskStore is the crash-safe file-per-entry backend
	// (temp-then-rename writes, verify-don't-trust reads).
	DiskStore = store.Disk
	// MemoryStore is the in-process backend with the same integrity
	// discipline, for tests and ephemeral tiers.
	MemoryStore = store.Memory
	// StoreStats is the persistent-store section of GET /v1/stats:
	// disjoint hit/miss/corrupt lookup counters plus writes and length.
	StoreStats = service.StoreStats
)

// Store error sentinels, matched with errors.Is.
var (
	// StoreErrNotFound reports a key with no stored entry.
	StoreErrNotFound = store.ErrNotFound
	// StoreErrCorrupt reports an entry that failed its integrity check
	// — refused, counted, and recomputed, never served.
	StoreErrCorrupt = store.ErrCorrupt
)

// NewStoreKey derives the content address for a canonical system spec
// and a canonical query document.
func NewStoreKey(systemSpec string, queryDoc []byte) StoreKey {
	return store.NewKey(systemSpec, queryDoc)
}

// OpenDiskStore opens (creating if needed) a disk-backed result store
// rooted at dir — what pakd -store-dir and pakload -store-dir use.
func OpenDiskStore(dir string) (*DiskStore, error) { return store.OpenDisk(dir) }

// NewMemoryStore returns an empty in-memory result store.
func NewMemoryStore() *MemoryStore { return store.NewMemory() }

// WithServiceResultStore installs a persistent result store as a
// read-through/write-behind tier in front of evaluation: stored slots
// are answered byte-identically without building engines, and only
// deterministic, complete, exact results are written back (never
// error slots, estimates, or slots cut by a deadline).
func WithServiceResultStore(st ResultStore) ServiceOption { return service.WithResultStore(st) }

// WithServiceClientQuota caps each client's concurrent in-flight
// evaluation requests (keyed by X-Client-ID, else source host);
// excess requests answer 429 (n ≤ 0 = unlimited).
func WithServiceClientQuota(n int) ServiceOption { return service.WithClientQuota(n) }
