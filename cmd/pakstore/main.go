// Command pakstore inspects, verifies and garbage-collects a pakd
// result-store directory (the -store-dir of cmd/pakd): the operator's
// window into the persistent tier.
//
// Usage:
//
//	pakstore -dir DIR            summary: entry count and integrity state
//	pakstore -dir DIR -list      one line per entry: key, system, query kind
//	pakstore -dir DIR -verify    re-hash every entry; exit 1 if any is corrupt
//	pakstore -dir DIR -gc N      keep the N most recently written entries,
//	                             delete the rest
//
// Every entry is a content-addressed envelope — see DESIGN.md
// "Persistent results" — carrying its own canonical coordinates, so
// -list needs no registry and works on any store directory. -verify
// is the offline version of the check pakd performs on every read:
// an entry whose bytes do not re-hash to their recorded sum is named
// and counted, and pakd would refuse to serve it (counting it under
// the "corrupt" stat and recomputing instead).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"pak/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pakstore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "result store directory (pakd's -store-dir)")
	list := fs.Bool("list", false, "list every entry: key, system spec, query kind")
	verify := fs.Bool("verify", false, "re-hash every entry; exit 1 on any corruption")
	gc := fs.Int("gc", -1, "keep the N most recently written entries, delete the rest (-1 = off)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "Usage: pakstore -dir DIR [-list | -verify | -gc N]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, `
Examples:
  pakstore -dir /var/lib/pak             entry count + integrity summary
  pakstore -dir /var/lib/pak -list       what is stored, one line per entry
  pakstore -dir /var/lib/pak -verify     offline integrity sweep (exit 1 on corruption)
  pakstore -dir /var/lib/pak -gc 10000   bound the store to its 10000 newest entries
`)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "pakstore: set -dir to a result store directory")
		return 2
	}
	d, err := store.OpenDisk(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "pakstore: %v\n", err)
		return 2
	}

	switch {
	case *gc >= 0:
		removed, err := d.GC(*gc)
		if err != nil {
			fmt.Fprintf(stderr, "pakstore: %v\n", err)
			return 1
		}
		n, _ := d.Len()
		fmt.Fprintf(stdout, "pakstore: removed %d entries, %d kept\n", removed, n)
		return 0

	case *list:
		keys, err := d.Keys()
		if err != nil {
			fmt.Fprintf(stderr, "pakstore: %v\n", err)
			return 1
		}
		for _, k := range keys {
			e, err := d.Read(k)
			if err != nil {
				fmt.Fprintf(stdout, "%s  CORRUPT  %v\n", k, err)
				continue
			}
			fmt.Fprintf(stdout, "%s  %s  %s\n", k, e.System, queryKind(e.Query))
		}
		return 0

	case *verify:
		bad, err := d.Verify()
		if err != nil {
			fmt.Fprintf(stderr, "pakstore: %v\n", err)
			return 1
		}
		n, _ := d.Len()
		if len(bad) > 0 {
			for _, k := range bad {
				fmt.Fprintf(stdout, "CORRUPT %s\n", k)
			}
			fmt.Fprintf(stderr, "pakstore: %d of %d entries corrupt\n", len(bad), n)
			return 1
		}
		fmt.Fprintf(stdout, "pakstore: %d entries, all verified\n", n)
		return 0

	default:
		keys, err := d.Keys()
		if err != nil {
			fmt.Fprintf(stderr, "pakstore: %v\n", err)
			return 1
		}
		bad, err := d.Verify()
		if err != nil {
			fmt.Fprintf(stderr, "pakstore: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "pakstore: %d entries in %s (%d corrupt)\n", len(keys), d.Dir(), len(bad))
		return 0
	}
}

// queryKind extracts the "kind" of a stored canonical query document
// for the -list rendering (the document is self-describing JSON).
func queryKind(doc []byte) string {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(doc, &probe); err != nil || probe.Kind == "" {
		return "?"
	}
	return probe.Kind
}
