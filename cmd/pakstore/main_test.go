package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"pak/internal/query"
	"pak/internal/scenarios"
	"pak/internal/service"
	"pak/internal/store"
)

// populate evaluates one small batch through a store-backed in-process
// pakd, so the directory under test holds real service-written
// entries, not synthetic ones.
func populate(t *testing.T, dir string) {
	t.Helper()
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.New(nil, service.WithResultStore(d)).Handler())
	defer ts.Close()

	batch, err := query.MarshalBatch([]query.Query{
		query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire},
		query.ExpectationQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire},
	})
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, batch)
	resp, err := ts.Client().Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("populate: status %d", resp.StatusCode)
	}
}

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSummaryListVerifyGC(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir)

	// Summary.
	code, out, _ := runCmd(t, "-dir", dir)
	if code != 0 || !strings.Contains(out, "2 entries") || !strings.Contains(out, "(0 corrupt)") {
		t.Fatalf("summary: code %d, out %q", code, out)
	}

	// List: one line per entry, carrying system and kind.
	code, out, _ = runCmd(t, "-dir", dir, "-list")
	if code != 0 {
		t.Fatalf("list: code %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("list printed %d lines, want 2:\n%s", len(lines), out)
	}
	joined := out
	for _, want := range []string{"nsquad(n=2,loss=1/10,improved=false)", "constraint", "expectation"} {
		if !strings.Contains(joined, want) {
			t.Errorf("list output is missing %q:\n%s", want, out)
		}
	}

	// Verify: clean.
	code, out, _ = runCmd(t, "-dir", dir, "-verify")
	if code != 0 || !strings.Contains(out, "all verified") {
		t.Fatalf("verify clean: code %d, out %q", code, out)
	}

	// Corrupt one entry: verify names it and exits 1; the summary
	// counts it.
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := d.Keys()
	if err != nil || len(keys) != 2 {
		t.Fatalf("keys: %v, %v", keys, err)
	}
	data, err := os.ReadFile(d.Path(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x01
	if err := os.WriteFile(d.Path(keys[0]), data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, serr := runCmd(t, "-dir", dir, "-verify")
	if code != 1 || !strings.Contains(out, "CORRUPT "+string(keys[0])) {
		t.Fatalf("verify corrupt: code %d, out %q, err %q", code, out, serr)
	}
	code, out, _ = runCmd(t, "-dir", dir)
	if code != 0 || !strings.Contains(out, "(1 corrupt)") {
		t.Fatalf("summary with corruption: code %d, out %q", code, out)
	}

	// GC to one entry.
	code, out, _ = runCmd(t, "-dir", dir, "-gc", "1")
	if code != 0 || !strings.Contains(out, "removed 1 entries, 1 kept") {
		t.Fatalf("gc: code %d, out %q", code, out)
	}
	if n, _ := d.Len(); n != 1 {
		t.Fatalf("store holds %d entries after gc, want 1", n)
	}
}

func TestBadInvocations(t *testing.T) {
	if code, _, serr := runCmd(t); code != 2 || !strings.Contains(serr, "-dir") {
		t.Errorf("missing -dir: code %d, stderr %q", code, serr)
	}
	if code, _, _ := runCmd(t, "-nope"); code != 2 {
		t.Error("unknown flag accepted")
	}
}

// TestListedQueriesReparse: the canonical query documents an entry
// carries are real parseable queries — the store's coordinates stay
// round-trippable, not just printable.
func TestListedQueriesReparse(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir)
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := d.Keys()
	for _, k := range keys {
		e, err := d.Read(k)
		if err != nil {
			t.Fatalf("Read(%s): %v", k, err)
		}
		if _, err := query.Parse(e.Query); err != nil {
			t.Errorf("stored query for %s does not re-parse: %v", k, err)
		}
		var doc query.ResultDoc
		if err := json.Unmarshal(e.Value, &doc); err != nil {
			t.Errorf("stored value for %s is not a ResultDoc: %v", k, err)
		}
	}
}
