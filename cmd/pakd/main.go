// Command pakd serves the scenario registry and the unified query layer
// over HTTP/JSON: the repository's systems, addressable by name + params,
// evaluated by the same exact engine the CLIs use — one engine per
// scenario, shared and memoizing across requests, with cross-system
// fan-out through the query layer's MultiBatch.
//
// Usage:
//
//	pakd [-addr :8371] [-parallel N] [-max-queries N] [-max-systems N]
//	     [-timeout D] [-engine-cache N] [-store-dir DIR] [-client-quota N]
//	pakd -catalog > SCENARIOS.md
//
// Endpoints:
//
//	GET  /v1/scenarios         list every registered scenario with its
//	                           params, defaults, description and sweep
//	                           example (the space-valued spec form)
//	GET  /v1/scenarios/{name}  one scenario's metadata
//	POST /v1/eval              evaluate a query-batch document (the format
//	                           of pak.ParseQueryBatch / pakrand -batch)
//	                           against one or more named systems; an
//	                           optional "approx" object ({"eps": "1/10",
//	                           "delta": "1/100"} or {"samples": N},
//	                           "seed", "only") answers supported queries
//	                           approx-first — each refined result carries
//	                           its seeded estimate (exact-rational
//	                           confidence interval) and a ciCovered
//	                           self-check, and a deadline mid-refinement
//	                           returns the standing estimates as a sound
//	                           504 payload; an optional "backend" string
//	                           ("enum"|"lp"|"auto") selects the exact
//	                           engine — lp answers past-based belief,
//	                           constraint and threshold queries by
//	                           exact-rational linear programming, returns
//	                           byte-identical results where supported, and
//	                           strictly 400s anything outside its fragment
//	POST /v1/eval/stream       the same request, answered as an NDJSON
//	                           stream: one result frame per query the
//	                           moment it finishes, closed by a terminal
//	                           status frame (complete|deadline|cancelled);
//	                           under "approx" each supported slot emits
//	                           its estimate frame (stage "approx")
//	                           strictly before its refined frame (stage
//	                           "exact")
//	POST /v1/envelope          evaluate ONE query's min/max envelope over
//	                           an adversary space: {"space":
//	                           "sweep(nsquad,loss=0.0..0.5/0.1)",
//	                           "query": {...}} answers the exact bounds,
//	                           witness assignments and per-assignment
//	                           results; a deadline yields a partial
//	                           envelope labeled with the visited count
//	POST /v1/envelope/stream   the same request as NDJSON: one frame per
//	                           assignment with the running envelope, the
//	                           terminal frame carrying the final one
//	GET  /v1/stats             the engine cache's hit/miss/eviction
//	                           counters, the per-backend evaluation
//	                           counters ("backends": {"enum": N, "lp": N})
//	                           and — with -store-dir — the persistent
//	                           store's hit/miss/corrupt/write counters
//	                           ("store": {...}) as JSON
//
// Hardening knobs (see DESIGN.md "Service hardening" and "Streaming
// results" for the contracts): -timeout bounds each eval request's wall
// clock — on expiry /v1/eval answers 504 carrying every finished result
// plus per-slot deadline errors (the finished prefix is never lost),
// and /v1/eval/stream closes with a "deadline" terminal frame;
// -engine-cache bounds the engines retained across requests (LRU over
// canonical specs — eviction is invisible, rebuilt engines return
// byte-identical results); cold engines named by one request build
// concurrently, and concurrent requests for one spec share a single
// build. cmd/pakload is the matching load driver.
//
// Persistence knobs (see DESIGN.md "Persistent results"): -store-dir
// enables the content-addressed result store — every deterministic
// complete exact result is persisted under (canonical system spec ×
// canonical query document), a restarted pakd on the same directory
// serves stored answers byte-identically with zero engine rebuilds,
// and entries failing their integrity re-hash are counted and
// recomputed, never served (cmd/pakstore inspects, verifies and
// garbage-collects the directory). -client-quota is the first
// admission-control knob for multi-client fleets: each client
// (X-Client-ID header, else source host) may hold at most N in-flight
// evaluation requests; the N+1-th answers a deterministic 429.
//
// Example (two systems, one batch, one request):
//
//	pakrand -batch batch.json
//	curl -s localhost:8371/v1/eval -d '{
//	  "systems": ["fsquad", "fsquad(improved=true)"],
//	  "queries": '"$(cat batch.json)"'}'
//
// See examples/service for the full walkthrough and SCENARIOS.md for the
// catalog. With -catalog, pakd prints that catalog (generated from the
// registry, so it can never drift from the code) and exits; `make docs`
// redirects it into SCENARIOS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"pak/internal/registry"
	"pak/internal/service"
	"pak/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pakd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8371", "listen address")
	parallel := fs.Int("parallel", 0, "max evaluation workers per request (0 = GOMAXPROCS)")
	maxQueries := fs.Int("max-queries", 0, "max (system, query) pairs per request (0 = server default)")
	maxSystems := fs.Int("max-systems", 0, "max named systems per request — bounds per-request build work (0 = server default)")
	timeout := fs.Duration("timeout", 0, "per-request eval deadline; expiry answers 504 (0 = none)")
	engineCache := fs.Int("engine-cache", 0, "engines retained across requests, LRU over canonical specs (0 = server default, negative = unbounded)")
	storeDir := fs.String("store-dir", "", "persistent result store directory: stored answers survive restarts and serve byte-identically without recomputation (empty = off)")
	clientQuota := fs.Int("client-quota", 0, "max concurrent in-flight evaluation requests per client (X-Client-ID or source host); excess answers 429 (0 = unlimited)")
	catalog := fs.Bool("catalog", false, "print the generated SCENARIOS.md catalog and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "Usage: pakd [-addr :8371] [-parallel N] [-max-queries N] [-max-systems N] [-timeout D] [-engine-cache N] [-store-dir DIR] [-client-quota N]\n")
		fmt.Fprintf(stderr, "       pakd -catalog > SCENARIOS.md\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, `
Examples:
  pakd -addr :8371 -parallel 8    serve the registry with 8 workers/request
  pakd -timeout 30s               bound each eval request; late answers become 504
  pakd -engine-cache 64           retain at most 64 engines (LRU; eviction is
                                  invisible — rebuilt engines answer identically)
  pakd -store-dir /var/lib/pak    persist results: a restart serves stored answers
                                  byte-identically, zero recomputation (inspect the
                                  directory with pakstore -dir /var/lib/pak -list)
  pakd -client-quota 4            admit at most 4 in-flight eval requests per
                                  client (X-Client-ID or source host); excess 429s
  pakd -catalog > SCENARIOS.md    regenerate the scenario catalog (make docs)
  curl -s localhost:8371/v1/scenarios | jq '.[].name'
  curl -s localhost:8371/v1/eval -d '{"systems":["fsquad","nsquad(3)"],"queries":[...]}'
  curl -s localhost:8371/v1/envelope -d '{"space":"sweep(nsquad,loss=0.0..0.5/0.1)","query":{...}}'
                                  a constraint's min/max envelope over the loss sweep
  curl -s localhost:8371/v1/eval -d '{"systems":["nsquad(3)"],"queries":[...],"approx":{"eps":"1/10","delta":"1/100","seed":7}}'
                                  approx-first: seeded estimates with exact-rational
                                  confidence intervals, refined to exact in one response
  curl -s localhost:8371/v1/eval -d '{"systems":["nsquad(3)"],"queries":[...],"backend":"lp"}'
                                  answer via the LP backend (byte-identical results;
                                  queries outside the LP fragment are 400s — use
                                  "auto" to fall back to enumeration per query)
  go run ./cmd/pakload -url http://localhost:8371 -mix envelope -duration 30s
                                  drive the envelope endpoints with the load harness
`)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *catalog {
		fmt.Fprint(stdout, registry.Default().Markdown())
		return 0
	}

	opts := []service.Option{}
	if *parallel > 0 {
		opts = append(opts, service.WithMaxParallelism(*parallel))
	}
	if *maxQueries > 0 {
		opts = append(opts, service.WithMaxQueries(*maxQueries))
	}
	if *maxSystems > 0 {
		opts = append(opts, service.WithMaxSystems(*maxSystems))
	}
	if *timeout > 0 {
		opts = append(opts, service.WithRequestTimeout(*timeout))
	}
	if *engineCache != 0 {
		opts = append(opts, service.WithEngineCacheSize(*engineCache))
	}
	if *storeDir != "" {
		st, err := store.OpenDisk(*storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "pakd: %v\n", err)
			return 2
		}
		opts = append(opts, service.WithResultStore(st))
	}
	if *clientQuota > 0 {
		opts = append(opts, service.WithClientQuota(*clientQuota))
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: service.New(registry.Default(), opts...).Handler(),
		// Bound every connection phase, not just the headers: without
		// ReadTimeout a client that trickles its body holds a goroutine
		// open forever. WriteTimeout is generous because large evals
		// legitimately compute for a while before responding.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(stdout, "pakd: serving %d scenarios on %s\n",
		len(registry.Default().Names()), *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "pakd: %v\n", err)
		return 1
	}
	return 0
}
