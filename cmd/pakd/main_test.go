package main

import (
	"strings"
	"testing"

	"pak/internal/registry"
)

func TestCatalogFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-catalog"}, &stdout, &stderr); code != 0 {
		t.Fatalf("pakd -catalog exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "# SCENARIOS") {
		t.Errorf("catalog does not start with the SCENARIOS header: %q", out[:40])
	}
	for _, name := range registry.Default().Names() {
		if !strings.Contains(out, "## "+name+"\n") {
			t.Errorf("catalog is missing scenario %q", name)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("pakd -bogus exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "Examples:") {
		t.Error("usage text is missing the Examples section")
	}
}
