// Command pakload is the load/stress driver for pakd: it fires a
// weighted scenario mix at a pakd endpoint — a live one via -url, or a
// self-contained in-process server by default — under configurable
// concurrency, and emits a JSON latency/error report on stdout (or to
// -out). It is how the service-hardening work is measured: cache
// eviction, singleflight cold builds and request deadlines under real
// concurrent traffic.
//
// Usage:
//
//	pakload [-url http://host:8371] [-mix squad|mixed|heavy|stream|envelope|approx|lp]
//	        [-c 8] [-n 200] [-duration 0] [-timeout 30s] [-seed 1]
//	        [-engine-cache 8] [-eval-timeout 0] [-store-dir DIR]
//	        [-stats-interval 0] [-cache-sweep 1,2,4,8] [-out report.json]
//
// -cache-sweep runs the latency-vs-engine-cache-size experiment: the
// same mix and budget against one fresh in-process server per listed
// cache size, reported as one row per size (p50/p99/throughput plus the
// server's cache counters), so eviction churn under a too-small bound
// is measured rather than guessed.
//
// Reports separate cold and warm latency: each scenario's first request
// of the run — the one that pays the server's cold engine build — lands
// in "latencyCold", everything after in "latencyWarm", with "latency"
// the combined view. Without the split a handful of one-off build
// latencies would silently dominate the tail percentiles of a short
// run.
//
// -store-dir hands the in-process server a persistent result store
// (pakd's -store-dir); a second run over the same directory then
// measures the stored-answer path — byte-identical replies without
// recomputation, visible as store hits in "serverStats".
//
// The "envelope" mix drives the adversary-sweep endpoints: buffered
// /v1/envelope requests (fully visited envelopes on 200) and
// /v1/envelope/stream sweeps under full NDJSON frame validation
// (hole-free assignment indices, running envelopes, a terminal frame
// whose final envelope accounts for every finished slot), plus the
// sweep grammar's deliberate 4xx probes.
//
// The "approx" mix drives the approximate tier: /v1/eval with the
// "approx" knob (seeded estimates attached to refined results) and
// /v1/eval/stream under the approx frame contract — per slot an approx
// frame (carrying its exact-rational confidence interval) strictly
// before the exact frame, approx-only requests answered by estimates
// alone — plus the bad-spec 4xx probes.
//
// The "lp" mix drives the second exact backend: /v1/eval and
// /v1/eval/stream requests carrying `"backend": "lp"` (answered by
// exact-rational linear programs, byte-identical to enumeration on the
// wire, so the standard validators apply unchanged), the strict
// backend's designed 400 on a future-reading batch, and the stats read
// picking up the per-backend counters. The report's per-scenario stats
// carry a "backend" label for these entries.
//
// -stats-interval enables soak mode: the run samples the target's GET
// /v1/stats on that cadence and records the trajectory (engine-cache
// hit/miss/eviction counters over time) under "statsTrajectory" in the
// report, so a long -duration run shows how the cache converges.
//
// Without -url, pakload starts an in-process pakd over the built-in
// registry (engine cache bounded by -engine-cache, per-request deadline
// from -eval-timeout) and drives that — zero setup, one process, same
// code paths as the real daemon.
//
// The exit status is 0 only when every request landed in a designed
// outcome class ("ok", which includes error probes answering their
// expected 4xx); any transport failure, timeout, unexpected status or
// undecodable body exits 1, so CI can gate on a smoke run directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"pak/internal/load"
	"pak/internal/service"
	"pak/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pakload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "target pakd base URL (empty = start an in-process pakd)")
	mixName := fs.String("mix", "squad", fmt.Sprintf("workload mix: one of %v", load.MixNames()))
	concurrency := fs.Int("c", 8, "concurrent workers")
	requests := fs.Int("n", 200, "total requests (0 = unlimited, use -duration)")
	duration := fs.Duration("duration", 0, "wall-clock budget (0 = run until -n requests)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client timeout")
	seed := fs.Int64("seed", 1, "mix-sequence seed (deterministic per worker)")
	engineCache := fs.Int("engine-cache", 8, "in-process server: engine-cache bound (0 = unbounded)")
	evalTimeout := fs.Duration("eval-timeout", 0, "in-process server: per-request eval deadline (0 = none)")
	storeDir := fs.String("store-dir", "", "in-process server: persistent result store directory — a second run over the same directory measures the warm store path (empty = off)")
	statsInterval := fs.Duration("stats-interval", 0, "soak mode: sample GET /v1/stats on this cadence into the report (0 = off)")
	cacheSweep := fs.String("cache-sweep", "", "latency-vs-engine-cache-size sweep: comma-separated sizes (e.g. 1,2,4,8); runs the mix once per size against a fresh in-process server and reports one row per size (in-process only)")
	out := fs.String("out", "-", "report destination ('-' = stdout)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "Usage: pakload [-url URL] [-mix %s] [-c N] [-n N | -duration D] [-out report.json]\n\nFlags:\n",
			strings.Join(load.MixNames(), "|"))
		fs.PrintDefaults()
		fmt.Fprintf(stderr, `
Examples:
  pakload -n 500 -c 16                      stress an in-process pakd, report to stdout
  pakload -mix heavy -engine-cache 4        force engine-cache eviction churn
  pakload -mix stream -n 200                drive /v1/eval/stream with full NDJSON
                                            frame validation (set, no holes, terminal)
  pakload -mix envelope -n 200              drive /v1/envelope[/stream]: adversary
                                            sweeps with envelope frame validation
  pakload -mix approx -n 200                drive the approximate tier: seeded
                                            estimates first, exact refinements after,
                                            validated per slot on the wire
  pakload -mix lp -n 200                    drive the LP backend: lp-routed evals and
                                            streams (byte-identical bodies), the strict
                                            400 probe, per-backend counters in stats
  pakload -mix approx -duration 30s -stats-interval 1s
                                            soak: record the engine-cache counter
                                            trajectory alongside the latency report
  pakload -mix heavy -cache-sweep 1,2,4,8   latency vs engine-cache size: one fresh
                                            in-process server per size, one report row
                                            per size (eviction churn made measurable)
  pakload -url http://localhost:8371 -mix mixed -duration 30s
                                            drive a live pakd for 30s, 4xx probes included
  pakload -n 200 -store-dir /tmp/pak && pakload -n 200 -store-dir /tmp/pak
                                            populate the persistent result store, then
                                            measure the stored-answer path (store hits
                                            in serverStats, zero recomputation)
  pakload -n 100 -out report.json           write the JSON report to a file

Exit status is 0 only when every request landed in its designed outcome
class; transport errors, timeouts, malformed streams or unexpected
statuses exit 1. When the target exposes GET /v1/stats the report
records the server's engine-cache counters under "serverStats".
`)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *requests <= 0 && *duration <= 0 {
		fmt.Fprintln(stderr, "pakload: set -n and/or -duration")
		return 2
	}

	mix, err := load.BuiltinMix(*mixName)
	if err != nil {
		fmt.Fprintf(stderr, "pakload: %v\n", err)
		return 2
	}

	cfg := load.Config{
		Concurrency:   *concurrency,
		Requests:      *requests,
		Duration:      *duration,
		Timeout:       *timeout,
		Seed:          *seed,
		Mix:           mix,
		StatsInterval: *statsInterval,
	}
	if *cacheSweep != "" {
		if *url != "" {
			fmt.Fprintln(stderr, "pakload: -cache-sweep restarts the in-process server per size; drop -url")
			return 2
		}
		if *storeDir != "" {
			fmt.Fprintln(stderr, "pakload: -cache-sweep measures engine-cache pressure; a persistent store would mask it, drop -store-dir")
			return 2
		}
		return runCacheSweep(*cacheSweep, *mixName, cfg, *evalTimeout, *out, stdout, stderr)
	}

	target := *url
	if target == "" {
		opts := []service.Option{service.WithEngineCacheSize(*engineCache)}
		if *evalTimeout > 0 {
			opts = append(opts, service.WithRequestTimeout(*evalTimeout))
		}
		if *storeDir != "" {
			st, err := store.OpenDisk(*storeDir)
			if err != nil {
				fmt.Fprintf(stderr, "pakload: %v\n", err)
				return 2
			}
			opts = append(opts, service.WithResultStore(st))
		}
		ts := httptest.NewServer(service.New(nil, opts...).Handler())
		defer ts.Close()
		target = ts.URL
		fmt.Fprintf(stderr, "pakload: in-process pakd at %s (engine-cache %d)\n", target, *engineCache)
	} else if *storeDir != "" {
		fmt.Fprintln(stderr, "pakload: -store-dir only configures the in-process server; drop -url or start pakd with -store-dir")
		return 2
	}

	cfg.BaseURL = strings.TrimSuffix(target, "/")
	rep, err := load.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(stderr, "pakload: %v\n", err)
		return 2
	}

	// Soak accounting: snapshot the server's engine-cache counters into
	// the report when the target exposes /v1/stats (a non-pakd target
	// simply omits the field). The run's client timeout bounds the
	// snapshot too.
	statsClient := &http.Client{Timeout: *timeout}
	if stats, statsErr := load.FetchServerStats(statsClient, strings.TrimSuffix(target, "/")); statsErr == nil {
		rep.ServerStats = stats
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "pakload: marshal report: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "-" {
		_, _ = stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "pakload: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "pakload: report written to %s\n", *out)
	}

	if rep.OK != rep.Total {
		fmt.Fprintf(stderr, "pakload: %d of %d requests failed their outcome class: %v\n",
			rep.Total-rep.OK, rep.Total, rep.Errors)
		return 1
	}
	fmt.Fprintf(stderr, "pakload: %d requests ok, p50 %.2fms p99 %.2fms, %.1f req/s\n",
		rep.Total, rep.Latency.P50MS, rep.Latency.P99MS, rep.Throughput)
	if rep.LatencyCold != nil && rep.LatencyWarm != nil {
		fmt.Fprintf(stderr, "pakload: cold (first-touch, n=%d) p50 %.2fms, warm (n=%d) p50 %.2fms\n",
			rep.LatencyCold.Count, rep.LatencyCold.P50MS, rep.LatencyWarm.Count, rep.LatencyWarm.P50MS)
	}
	if ss := decodeStatsSummary(rep.ServerStats); ss != nil {
		fmt.Fprintf(stderr, "pakload: server engine cache hits=%d misses=%d evictions=%d, builds avoided=%d, memo-seeded=%d\n",
			ss.EngineCache.Hits, ss.EngineCache.Misses, ss.EngineCache.Evictions, ss.EngineBuildsAvoided, ss.MemoSeeded)
	}
	return 0
}

// statsSummary is the slice of GET /v1/stats the summary lines quote:
// the engine-cache counters plus the lazy-build ledger. The report
// itself carries the stats document verbatim under "serverStats".
type statsSummary struct {
	EngineCache struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Evictions uint64 `json:"evictions"`
	} `json:"engineCache"`
	EngineBuildsAvoided int64 `json:"engineBuildsAvoided"`
	MemoSeeded          int64 `json:"memoSeeded"`
}

func decodeStatsSummary(raw json.RawMessage) *statsSummary {
	if len(raw) == 0 {
		return nil
	}
	var ss statsSummary
	if err := json.Unmarshal(raw, &ss); err != nil {
		return nil
	}
	return &ss
}

// CacheSweepRow is one engine-cache size's slice of a -cache-sweep
// report: the size, the run's headline latency numbers, and the
// server's stats document after the run.
type CacheSweepRow struct {
	EngineCache   int             `json:"engineCache"`
	Total         int             `json:"total"`
	OK            int             `json:"ok"`
	P50MS         float64         `json:"p50Ms"`
	P99MS         float64         `json:"p99Ms"`
	ThroughputRPS float64         `json:"throughputRps"`
	ServerStats   json.RawMessage `json:"serverStats,omitempty"`
}

// CacheSweepReport is the -cache-sweep JSON document: one row per
// engine-cache size, same mix and request budget throughout.
type CacheSweepReport struct {
	Mix  string          `json:"mix"`
	Rows []CacheSweepRow `json:"rows"`
}

// runCacheSweep is the latency-vs-engine-cache-size mode: one fresh
// in-process pakd per size (so every run starts cold and the cache
// bound is the only variable), the same mix and budget against each,
// and one report row per size. Small caches surface eviction churn —
// rebuild latency and eviction counters climbing as the working set
// exceeds the bound — while a cache at least as large as the mix's
// distinct canonical specs converges to pure hits.
func runCacheSweep(sizes, mixName string, cfg load.Config, evalTimeout time.Duration, out string, stdout, stderr io.Writer) int {
	var rep CacheSweepReport
	rep.Mix = mixName
	allOK := true
	for _, field := range strings.Split(sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 0 {
			fmt.Fprintf(stderr, "pakload: -cache-sweep wants non-negative sizes, got %q\n", field)
			return 2
		}
		opts := []service.Option{service.WithEngineCacheSize(n)}
		if evalTimeout > 0 {
			opts = append(opts, service.WithRequestTimeout(evalTimeout))
		}
		ts := httptest.NewServer(service.New(nil, opts...).Handler())
		runCfg := cfg
		runCfg.BaseURL = ts.URL
		r, err := load.Run(context.Background(), runCfg)
		if err != nil {
			ts.Close()
			fmt.Fprintf(stderr, "pakload: cache=%d: %v\n", n, err)
			return 2
		}
		row := CacheSweepRow{
			EngineCache:   n,
			Total:         r.Total,
			OK:            r.OK,
			P50MS:         r.Latency.P50MS,
			P99MS:         r.Latency.P99MS,
			ThroughputRPS: r.Throughput,
		}
		if stats, statsErr := load.FetchServerStats(&http.Client{Timeout: cfg.Timeout}, ts.URL); statsErr == nil {
			row.ServerStats = stats
		}
		ts.Close()
		rep.Rows = append(rep.Rows, row)
		allOK = allOK && r.OK == r.Total
		line := fmt.Sprintf("pakload: cache=%-4d p50 %8.2fms  p99 %8.2fms  %7.1f req/s", n, row.P50MS, row.P99MS, row.ThroughputRPS)
		if ss := decodeStatsSummary(row.ServerStats); ss != nil {
			line += fmt.Sprintf("  hits=%d misses=%d evictions=%d", ss.EngineCache.Hits, ss.EngineCache.Misses, ss.EngineCache.Evictions)
		}
		fmt.Fprintln(stderr, line)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "pakload: marshal report: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if out == "-" {
		_, _ = stdout.Write(data)
	} else {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "pakload: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "pakload: report written to %s\n", out)
	}
	if !allOK {
		fmt.Fprintln(stderr, "pakload: some sweep runs had requests outside their outcome class")
		return 1
	}
	return 0
}
