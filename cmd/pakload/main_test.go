package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pak/internal/load"
)

// TestPakloadInProcessSmoke: the zero-setup path — pakload against its
// own in-process pakd — completes every request cleanly and prints a
// parseable JSON report.
func TestPakloadInProcessSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "40", "-c", "4", "-mix", "mixed", "-seed", "2", "-engine-cache", "2"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var rep load.Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v\n%s", err, stdout.String())
	}
	if rep.Total != 40 || rep.OK != 40 {
		t.Errorf("report totals: %d requests, %d ok, errors=%v", rep.Total, rep.OK, rep.Errors)
	}
	if len(rep.Scenarios) == 0 || rep.Latency.P50MS <= 0 {
		t.Errorf("report missing detail: %+v", rep)
	}
	if !strings.Contains(stderr.String(), "req/s") {
		t.Errorf("summary line missing: %s", stderr.String())
	}
}

// TestPakloadCacheSweep: -cache-sweep runs the mix once per listed
// engine-cache size against fresh in-process servers and reports one
// row per size, each carrying the server's post-run stats.
func TestPakloadCacheSweep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "20", "-c", "4", "-mix", "squad", "-cache-sweep", "1,4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var rep CacheSweepReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a sweep report: %v\n%s", err, stdout.String())
	}
	if rep.Mix != "squad" || len(rep.Rows) != 2 {
		t.Fatalf("sweep report = %+v, want mix=squad with 2 rows", rep)
	}
	for i, want := range []int{1, 4} {
		row := rep.Rows[i]
		if row.EngineCache != want || row.Total != 20 || row.OK != 20 {
			t.Errorf("row %d = %+v, want cache=%d with 20/20 ok", i, row, want)
		}
		if len(row.ServerStats) == 0 || !json.Valid(row.ServerStats) {
			t.Errorf("row %d missing server stats", i)
		}
	}
	// -cache-sweep owns the server lifecycle, so -url contradicts it.
	if code := run([]string{"-n", "5", "-cache-sweep", "2", "-url", "http://localhost:1"}, &stdout, &stderr); code != 2 {
		t.Errorf("-cache-sweep with -url: exit %d, want 2", code)
	}
	if code := run([]string{"-n", "5", "-cache-sweep", "zero"}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed -cache-sweep size: exit %d, want 2", code)
	}
}

// TestPakloadReportFile: -out writes the report to disk.
func TestPakloadReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "10", "-c", "2", "-out", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report file is not JSON: %v", err)
	}
	if rep.Total != 10 {
		t.Errorf("report total = %d, want 10", rep.Total)
	}
	if stdout.Len() != 0 {
		t.Errorf("with -out, stdout should stay empty, got %q", stdout.String())
	}
}

// TestPakloadApproxMixSoak: the approx mix validates approximate-tier
// streams end to end (approx frames strictly before exact, estimates on
// the wire), and -stats-interval records the engine-cache trajectory in
// the report.
func TestPakloadApproxMixSoak(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "30", "-c", "4", "-mix", "approx", "-seed", "3",
		"-stats-interval", "10ms"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var rep load.Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v\n%s", err, stdout.String())
	}
	if rep.Total != 30 || rep.OK != 30 {
		t.Errorf("report totals: %d requests, %d ok, errors=%v", rep.Total, rep.OK, rep.Errors)
	}
	if len(rep.StatsTrajectory) == 0 {
		t.Error("soak mode recorded no stats trajectory")
	}
	for i, s := range rep.StatsTrajectory {
		if s.Error == "" && !strings.Contains(string(s.Stats), "engineCache") {
			t.Errorf("trajectory[%d] lacks cache counters: %s", i, s.Stats)
		}
	}
}

// TestPakloadBadFlags: unusable invocations exit 2 with usage guidance.
func TestPakloadBadFlags(t *testing.T) {
	cases := [][]string{
		{"-mix", "nosuch"},
		{"-n", "0"},
		{"-badflag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

// TestPakloadStreamMix: the stream mix validates NDJSON frames end to
// end against the in-process pakd, and the report snapshots the
// server's engine-cache counters from /v1/stats.
func TestPakloadStreamMix(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "30", "-c", "4", "-mix", "stream", "-seed", "3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var rep load.Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v\n%s", err, stdout.String())
	}
	if rep.Total != 30 || rep.OK != 30 {
		t.Errorf("report totals: %d requests, %d ok, errors=%v", rep.Total, rep.OK, rep.Errors)
	}
	if !strings.Contains(string(rep.ServerStats), "engineCache") {
		t.Errorf("report lacks server stats: %s", rep.ServerStats)
	}
}
