package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunText(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-systems", "5", "-samples", "20000"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"99/100", "991/1000", "990/991",
		"RESULT: all measured values match the paper.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "  NO") {
		t.Error("unexpected mismatch in output")
	}
}

func TestRunMarkdown(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-markdown", "-systems", "3", "-samples", "20000"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "## E1") || !strings.Contains(out, "| quantity | paper | measured | match |") {
		t.Errorf("markdown structure missing:\n%s", out[:400])
	}
}

func TestRunFlagErrors(t *testing.T) {
	tests := [][]string{
		{"-nope"},
		{"-systems", "0"},
		{"-samples", "-1"},
	}
	for _, args := range tests {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}
