// Command paperbench regenerates every numeric claim, figure and theorem
// of the paper and prints a paper-vs-measured comparison table per
// experiment (E1..E18, including the unified query layer's batch
// invariants, the scenario registry's multi-system fan-out checks, and
// the LP backend's differential agreement record).
// It exits non-zero if any value fails to match.
//
// Usage:
//
//	paperbench [-markdown] [-systems 100] [-samples 60000] [-seed 1]
//
// With -markdown the output is a GitHub-flavoured Markdown document
// suitable for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pak/internal/experiments"
	"pak/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	markdown := fs.Bool("markdown", false, "emit GitHub-flavoured Markdown")
	systems := fs.Int("systems", 100, "random systems per property experiment (E4, E9)")
	samples := fs.Int("samples", 60_000, "Monte-Carlo samples (E7)")
	seed := fs.Int64("seed", 1, "seed for random workloads")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "Usage: paperbench [-markdown] [-systems 100] [-samples 60000] [-seed 1]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, `
Runs E1..E18 (including E15's batch-=-serial invariant, E16's registry
+ multi-system fan-out checks, and E18's enum-vs-lp differential
agreement record) and exits non-zero if any measured value fails to
match the paper.

Examples:
  paperbench                     the full reproduction gate (CI runs this)
  paperbench -markdown           regenerate EXPERIMENTS.md (make docs)
  paperbench -systems 500 -seed 3    a larger random-system property sweep
`)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *systems <= 0 || *samples <= 0 {
		fmt.Fprintln(stderr, "paperbench: -systems and -samples must be positive")
		return 2
	}

	results, err := runAll(*systems, *samples, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "paperbench: %v\n", err)
		return 1
	}

	failures := 0
	for _, res := range results {
		tb := report.NewTable("quantity", "paper", "measured", "match")
		for _, row := range res.Rows {
			mark := "yes"
			if !row.Match {
				mark = "NO"
				failures++
			}
			tb.AddRow(row.Quantity, row.Paper, row.Measured, mark)
		}
		title := fmt.Sprintf("%s — %s", res.ID, res.Title)
		if *markdown {
			fmt.Fprintf(stdout, "## %s\n\n*Source: %s*\n\n%s\n", title, res.Source, tb.Markdown())
		} else {
			fmt.Fprint(stdout, report.Section(title+" ["+res.Source+"]", tb.Render()))
		}
	}

	if failures > 0 {
		fmt.Fprintf(stderr, "paperbench: %d value(s) failed to match the paper\n", failures)
		return 1
	}
	if *markdown {
		fmt.Fprintln(stdout, "All measured values match the paper.")
	} else {
		fmt.Fprintln(stdout, "RESULT: all measured values match the paper.")
	}
	return 0
}

// runAll evaluates experiments.Builders — the one experiment list —
// with the workload flags applied.
func runAll(systems, samples int, seed int64) ([]experiments.Result, error) {
	builders := experiments.Builders(systems, samples, seed)
	out := make([]experiments.Result, 0, len(builders))
	for _, b := range builders {
		res, err := b()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
