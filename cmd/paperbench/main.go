// Command paperbench regenerates every numeric claim, figure and theorem
// of the paper and prints a paper-vs-measured comparison table per
// experiment (E1..E15, including the unified query layer's batch
// invariants, which route the full theorem workload through EvalBatch).
// It exits non-zero if any value fails to match.
//
// Usage:
//
//	paperbench [-markdown] [-systems 100] [-samples 60000] [-seed 1]
//
// With -markdown the output is a GitHub-flavoured Markdown document
// suitable for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pak/internal/experiments"
	"pak/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	markdown := fs.Bool("markdown", false, "emit GitHub-flavoured Markdown")
	systems := fs.Int("systems", 100, "random systems per property experiment (E4, E9)")
	samples := fs.Int("samples", 60_000, "Monte-Carlo samples (E7)")
	seed := fs.Int64("seed", 1, "seed for random workloads")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *systems <= 0 || *samples <= 0 {
		fmt.Fprintln(stderr, "paperbench: -systems and -samples must be positive")
		return 2
	}

	results, err := runAll(*systems, *samples, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "paperbench: %v\n", err)
		return 1
	}

	failures := 0
	for _, res := range results {
		tb := report.NewTable("quantity", "paper", "measured", "match")
		for _, row := range res.Rows {
			mark := "yes"
			if !row.Match {
				mark = "NO"
				failures++
			}
			tb.AddRow(row.Quantity, row.Paper, row.Measured, mark)
		}
		title := fmt.Sprintf("%s — %s", res.ID, res.Title)
		if *markdown {
			fmt.Fprintf(stdout, "## %s\n\n*Source: %s*\n\n%s\n", title, res.Source, tb.Markdown())
		} else {
			fmt.Fprint(stdout, report.Section(title+" ["+res.Source+"]", tb.Render()))
		}
	}

	if failures > 0 {
		fmt.Fprintf(stderr, "paperbench: %d value(s) failed to match the paper\n", failures)
		return 1
	}
	if *markdown {
		fmt.Fprintln(stdout, "All measured values match the paper.")
	} else {
		fmt.Fprintln(stdout, "RESULT: all measured values match the paper.")
	}
	return 0
}

// runAll mirrors experiments.All but honours the workload flags.
func runAll(systems, samples int, seed int64) ([]experiments.Result, error) {
	type builder func() (experiments.Result, error)
	builders := []builder{
		experiments.E1FiringSquad,
		experiments.E2Figure1,
		experiments.E3Theorem52,
		func() (experiments.Result, error) { return experiments.E4Expectation(systems, seed) },
		experiments.E5PAKFrontier,
		experiments.E6ImprovedFS,
		func() (experiments.Result, error) { return experiments.E7MonteCarlo(samples, seed) },
		experiments.E8KoPLimit,
		func() (experiments.Result, error) { return experiments.E9Independence(systems, seed) },
		experiments.E10CommonBelief,
		experiments.E11CommonKnowledge,
		experiments.E12Martingale,
		experiments.E13LossSensitivity,
		experiments.E14NSquad,
		experiments.E15QueryBatch,
	}
	out := make([]experiments.Result, 0, len(builders))
	for _, b := range builders {
		res, err := b()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
