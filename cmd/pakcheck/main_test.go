package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pak"
)

// writeFixtures materializes the firing-squad system and the paper's
// constraint query as JSON files in a temp dir.
func writeFixtures(t *testing.T) (systemPath, queryPath string) {
	t.Helper()
	dir := t.TempDir()
	sys, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	data, err := pak.MarshalSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	systemPath = filepath.Join(dir, "fs.json")
	if err := os.WriteFile(systemPath, data, 0o600); err != nil {
		t.Fatal(err)
	}
	queryPath = filepath.Join(dir, "query.json")
	query := `{
		"agent": "Alice",
		"action": "fire",
		"threshold": "95/100",
		"fact": {"op":"and","args":[
			{"op":"does","agent":"Alice","action":"fire"},
			{"op":"does","agent":"Bob","action":"fire"}]}
	}`
	if err := os.WriteFile(queryPath, []byte(query), 0o600); err != nil {
		t.Fatal(err)
	}
	return systemPath, queryPath
}

func TestRunFiringSquadQuery(t *testing.T) {
	systemPath, queryPath := writeFixtures(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-system", systemPath, "-query", queryPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"99/100",   // µ(φ_both|fire_A)
		"991/1000", // µ(β ≥ 0.95 | fire_A)
		"local-state independent",
		"Theorem 6.2",
		"holds",
		"recv=Yes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Errorf("no theorem should be violated:\n%s", out)
	}
}

func TestRunDumpFlag(t *testing.T) {
	systemPath, queryPath := writeFixtures(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-system", systemPath, "-query", queryPath, "-dump"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "λ") {
		t.Error("dump output missing tree root")
	}
}

func TestRunErrors(t *testing.T) {
	systemPath, queryPath := writeFixtures(t)
	dir := t.TempDir()
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte("{{{"), 0o600); err != nil {
		t.Fatal(err)
	}
	improperQuery := filepath.Join(dir, "improper.json")
	if err := os.WriteFile(improperQuery,
		[]byte(`{"agent":"Alice","action":"never","fact":{"op":"true"}}`), 0o600); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		args []string
		code int
	}{
		{"missing flags", nil, 2},
		{"bad flag", []string{"-nope"}, 2},
		{"missing system file", []string{"-system", "/does/not/exist", "-query", queryPath}, 1},
		{"bad system json", []string{"-system", badJSON, "-query", queryPath}, 1},
		{"missing query file", []string{"-system", systemPath, "-query", "/does/not/exist"}, 1},
		{"bad query json", []string{"-system", systemPath, "-query", badJSON}, 1},
		{"bad eps", []string{"-system", systemPath, "-query", queryPath, "-eps", "nope"}, 2},
		{"bad delta", []string{"-system", systemPath, "-query", queryPath, "-delta", "nope"}, 2},
		{"improper action", []string{"-system", systemPath, "-query", improperQuery}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tt.args, &stdout, &stderr); code != tt.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tt.code, stderr.String())
			}
		})
	}
}

func TestRunBadThreshold(t *testing.T) {
	systemPath, _ := writeFixtures(t)
	dir := t.TempDir()
	q := filepath.Join(dir, "q.json")
	if err := os.WriteFile(q,
		[]byte(`{"agent":"Alice","action":"fire","threshold":"zzz","fact":{"op":"true"}}`), 0o600); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-system", systemPath, "-query", q}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

// writeBatchFixture materializes a query-batch document (the new -batch
// mode) for the firing-squad system via the facade's serializer.
func writeBatchFixture(t *testing.T) (systemPath, batchPath string) {
	t.Helper()
	systemPath, _ = writeFixtures(t)
	both := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
	qs := []pak.Query{
		pak.ConstraintQuery{Fact: both, Agent: "Alice", Action: "fire", Threshold: pak.Rat(95, 100)},
		pak.ExpectationQuery{Fact: both, Agent: "Alice", Action: "fire"},
		pak.TheoremQuery{Theorem: pak.TheoremExpectation, Fact: both, Agent: "Alice", Action: "fire"},
		pak.IndependenceQuery{Fact: both, Agent: "Alice", Action: "fire"},
	}
	doc, err := pak.MarshalQueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	batchPath = filepath.Join(t.TempDir(), "batch.json")
	if err := os.WriteFile(batchPath, doc, 0o600); err != nil {
		t.Fatal(err)
	}
	return systemPath, batchPath
}

func TestRunBatchMode(t *testing.T) {
	systemPath, batchPath := writeBatchFixture(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-system", systemPath, "-batch", batchPath, "-parallel", "4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"Query batch (4 queries",
		"99/100", // µ through the batch path
		"pass",
		"constraint",
		"expectation",
		"independence",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("batch output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBatchModeErrors(t *testing.T) {
	systemPath, batchPath := writeBatchFixture(t)
	dir := t.TempDir()
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte("{{{"), 0o600); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		args []string
		code int
	}{
		{"both query and batch", []string{"-system", systemPath, "-query", batchPath, "-batch", batchPath}, 2},
		{"missing batch file", []string{"-system", systemPath, "-batch", "/does/not/exist"}, 1},
		{"bad batch json", []string{"-system", systemPath, "-batch", badJSON}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tt.args, &stdout, &stderr); code != tt.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tt.code, stderr.String())
			}
		})
	}
}

// TestRunScenarioFlag: -scenario resolves the system from the registry,
// and the output matches -system with the equivalent JSON document
// exactly.
func TestRunScenarioFlag(t *testing.T) {
	systemPath, queryPath := writeFixtures(t)

	var fromFile, fromRegistry, stderr bytes.Buffer
	if code := run([]string{"-system", systemPath, "-query", queryPath}, &fromFile, &stderr); code != 0 {
		t.Fatalf("-system run exited %d: %s", code, stderr.String())
	}
	if code := run([]string{"-scenario", "fsquad", "-query", queryPath}, &fromRegistry, &stderr); code != 0 {
		t.Fatalf("-scenario run exited %d: %s", code, stderr.String())
	}
	if fromFile.String() != fromRegistry.String() {
		t.Error("-scenario fsquad output differs from -system with the marshaled firing squad")
	}
	if !strings.Contains(fromRegistry.String(), "99/100") {
		t.Errorf("scenario output missing the paper's 99/100:\n%s", fromRegistry.String())
	}
}

func TestRunScenarioFlagErrors(t *testing.T) {
	_, queryPath := writeFixtures(t)
	tests := []struct {
		name string
		args []string
		code int
	}{
		{"both system and scenario", []string{"-system", "x.json", "-scenario", "fsquad", "-query", queryPath}, 2},
		{"neither system nor scenario", []string{"-query", queryPath}, 2},
		{"unknown scenario", []string{"-scenario", "nosuch", "-query", queryPath}, 1},
		{"bad scenario params", []string{"-scenario", "nsquad(n=zero)", "-query", queryPath}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tt.args, &stdout, &stderr); code != tt.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tt.code, stderr.String())
			}
		})
	}
}

// TestRunStreamMode: -stream renders one line per result as it
// completes; with -parallel 1 completion order is input order, so the
// output is deterministic.
func TestRunStreamMode(t *testing.T) {
	systemPath, batchPath := writeBatchFixture(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-system", systemPath, "-batch", batchPath, "-stream", "-parallel", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"Streaming 4 queries",
		"[1/4] #0 constraint",
		"[4/4] #3",
		"99/100",
		"stream complete: 4 of 4 queries evaluated, 0 failed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stream output missing %q:\n%s", want, out)
		}
	}

	// A failing query occupies its own line and flips the exit code,
	// but its neighbours still render.
	badBatch := filepath.Join(t.TempDir(), "bad-batch.json")
	both := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
	doc, err := pak.MarshalQueryBatch([]pak.Query{
		pak.ConstraintQuery{Fact: both, Agent: "Alice", Action: "fire"},
		pak.ConstraintQuery{Fact: both, Agent: "nobody", Action: "fire"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(badBatch, doc, 0o600); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-system", systemPath, "-batch", badBatch, "-stream", "-parallel", "1"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d with a failing query, want 1", code)
	}
	if !strings.Contains(stdout.String(), "ERROR") || !strings.Contains(stdout.String(), "1 failed") {
		t.Errorf("failing stream output:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "[1/2] #0 constraint") {
		t.Errorf("healthy neighbour did not render:\n%s", stdout.String())
	}
}

// TestRunStreamRequiresBatch: -stream without -batch is a usage error.
func TestRunStreamRequiresBatch(t *testing.T) {
	systemPath, queryPath := writeFixtures(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-system", systemPath, "-query", queryPath, "-stream"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-stream requires -batch") {
		t.Errorf("stderr = %s", stderr.String())
	}
}

// TestRunBatchApprox: -approx answers the batch approx-first; the
// refined table carries each estimate's interval and the ciCovered
// self-check, and the fixed samples+seed make the output deterministic.
func TestRunBatchApprox(t *testing.T) {
	systemPath, batchPath := writeBatchFixture(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-system", systemPath, "-batch", batchPath,
		"-approx", "samples=200,seed=5", "-parallel", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"99/100",         // the exact value still wins the value column
		"estimate",       // the interval rides along
		"of 200, seed=",  // provenance
		"ciCovered=true", // the self-check (deterministic for this seed)
	} {
		if !strings.Contains(out, want) {
			t.Errorf("approx batch output missing %q:\n%s", want, out)
		}
	}

	// Same seed and budget ⇒ byte-identical output, serial or parallel.
	var again bytes.Buffer
	if code := run([]string{"-system", systemPath, "-batch", batchPath,
		"-approx", "samples=200,seed=5", "-parallel", "4"}, &again, &stderr); code != 0 {
		t.Fatalf("parallel rerun exited %d: %s", code, stderr.String())
	}
	if again.String() != out {
		t.Error("approx batch output differs between serial and parallel runs")
	}
}

// TestRunStreamApprox: under -stream -approx each supported slot prints
// its sampled estimate strictly before its refined exact line, and only
// final frames advance the progress tally.
func TestRunStreamApprox(t *testing.T) {
	systemPath, batchPath := writeBatchFixture(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-system", systemPath, "-batch", batchPath, "-stream",
		"-approx", "eps=1/10,delta=1/100,seed=11", "-parallel", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	approxAt := strings.Index(out, "[approx] #0 constraint")
	exactAt := strings.Index(out, "[exact] #0 constraint")
	if approxAt < 0 || exactAt < 0 || approxAt > exactAt {
		t.Errorf("slot 0 does not stream approx before exact:\n%s", out)
	}
	for _, want := range []string{
		"ciCovered=true",
		"stream complete: 4 of 4 queries evaluated, 0 failed",
		// Unsupported kinds keep their single exact line.
		"[exact] #2 theorem",
		"[exact] #3 independence",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("approx stream output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "[approx] #2") || strings.Contains(out, "[approx] #3") {
		t.Errorf("unsupported kinds must not emit approx lines:\n%s", out)
	}
}

// TestRunApproxOnly: -approx-only answers from samples alone — no
// refinement, no self-check.
func TestRunApproxOnly(t *testing.T) {
	systemPath, batchPath := writeBatchFixture(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-system", systemPath, "-batch", batchPath,
		"-approx", "samples=200,seed=5", "-approx-only", "-parallel", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "estimate") {
		t.Errorf("approx-only output has no estimates:\n%s", out)
	}
	if strings.Contains(out, "ciCovered") {
		t.Errorf("approx-only output claims a self-check that never ran:\n%s", out)
	}
}

// TestRunSweepSampled: -sweep with -approx runs the sampled-first
// envelope — the bench-pinned configuration prunes two interior
// assignments whose intervals cannot reach the envelope, and the exact
// bounds still match the exhaustive sweep's.
func TestRunSweepSampled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q3.json")
	doc := `{
		"agent": "General",
		"action": "fire",
		"fact": {"op":"and","args":[
			{"op":"does","agent":"General","action":"fire"},
			{"op":"does","agent":"s1","action":"fire"},
			{"op":"does","agent":"s2","action":"fire"}]}
	}`
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sweep", "sweep(nsquad,n=3,loss=0..1/2/1/10)",
		"-query", path, "-approx", "samples=2400,seed=21", "-parallel", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"Sampled-first sweep",
		"PRUNED (interval cannot reach the envelope)",
		"9/16 ≈ 0.562500", // exact min, from the exact pass over survivors
		"min at",
		"loss=1/2",
		"exactly evaluated",
		"4/6 assignments",
		"pruned by sampling",
		"complete",
		"correct w.p.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sampled sweep output missing %q:\n%s", want, out)
		}
	}
}

// TestRunApproxFlagErrors: the -approx grammar and its mode
// restrictions fail fast as usage errors.
func TestRunApproxFlagErrors(t *testing.T) {
	systemPath, queryPath := writeFixtures(t)
	_, batchPath := writeBatchFixture(t)
	cases := []struct {
		name string
		args []string
	}{
		{"approx with -query battery", []string{"-system", systemPath, "-query", queryPath, "-approx", "samples=100"}},
		{"approx-only without approx", []string{"-system", systemPath, "-batch", batchPath, "-approx-only"}},
		{"not key=value", []string{"-system", systemPath, "-batch", batchPath, "-approx", "samples"}},
		{"unknown key", []string{"-system", systemPath, "-batch", batchPath, "-approx", "nope=1"}},
		{"bad eps", []string{"-system", systemPath, "-batch", batchPath, "-approx", "eps=zzz"}},
		{"bad samples", []string{"-system", systemPath, "-batch", batchPath, "-approx", "samples=many"}},
		{"no budget", []string{"-system", systemPath, "-batch", batchPath, "-approx", "delta=1/100"}},
		{"delta out of range", []string{"-system", systemPath, "-batch", batchPath, "-approx", "samples=100,delta=2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Errorf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
		})
	}
}

// writeSweepQuery materializes the nsquad constraint document the sweep
// tests share.
func writeSweepQuery(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep-query.json")
	doc := `{
		"agent": "General",
		"action": "fire",
		"fact": {"op":"and","args":[
			{"op":"does","agent":"General","action":"fire"},
			{"op":"does","agent":"s1","action":"fire"}]}
	}`
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSweepMode(t *testing.T) {
	queryPath := writeSweepQuery(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sweep", "sweep(nsquad, loss=0.0..0.5/0.1, n=2)",
		"-query", queryPath, "-parallel", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	// Progressive lines carry the running envelope; serial order pins
	// the exact sequence.
	for _, want := range []string{
		"6 assignments",
		"[1/6] #0 loss=0",
		"env=[99/100, 1]", // after the second assignment
		"Adversary envelope",
		"3/4 ≈ 0.750000",
		"loss=1/2",
		"6/6 assignments",
		"complete",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	// The one-shot facade agrees with the rendered bounds.
	outc, err := pak.EvalSweep("sweep(nsquad, loss=0.0..0.5/0.1, n=2)", pak.ConstraintQuery{
		Fact:  pak.AllFire(2),
		Agent: "General", Action: "fire",
	})
	if err != nil {
		t.Fatal(err)
	}
	env := outc.Result.Envelope
	if env.Min.RatString() != "3/4" || env.Max.RatString() != "1" {
		t.Errorf("EvalSweep envelope = [%s, %s]", env.Min.RatString(), env.Max.RatString())
	}
}

func TestRunSweepModeErrors(t *testing.T) {
	queryPath := writeSweepQuery(t)
	cases := []struct {
		name string
		args []string
	}{
		{"sweep with system", []string{"-sweep", "sweep(nsquad,loss=0..1/5/1/10)", "-system", "x.json", "-query", queryPath}},
		{"sweep with stream", []string{"-sweep", "sweep(nsquad,loss=0..1/5/1/10)", "-batch", queryPath, "-stream"}},
		{"bad space", []string{"-sweep", "sweep(nosuch,loss=0..1)", "-query", queryPath}},
		{"bad range", []string{"-sweep", "sweep(nsquad,loss=1..0)", "-query", queryPath}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code == 0 {
				t.Errorf("exit 0, want failure; stdout: %s", stdout.String())
			}
		})
	}
}

// TestRunSweepModeHardFailuresExit: a sweep whose query hard-fails on
// some assignments (here: the fact names s3, an agent only the n=4
// squad has) must exit non-zero and say so — bounds that silently
// exclude failed assignments must never present as a complete
// envelope.
func TestRunSweepModeHardFailuresExit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.json")
	doc := `{
		"agent": "General",
		"action": "fire",
		"fact": {"op":"does","agent":"s3","action":"fire"}
	}`
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sweep", "sweep(nsquad,n=2..4)", "-query", path, "-parallel", "1"}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("exit 0 despite failed assignments; stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "excludes failed assignments") {
		t.Errorf("stderr does not name the failure class: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "ERROR") {
		t.Errorf("progress lines do not mark the hard failures:\n%s", stdout.String())
	}
}

// writeLPBatchFixture materializes a batch of queries inside the LP
// fragment (past-based facts only) over the firing-squad system.
func writeLPBatchFixture(t *testing.T) (systemPath, batchPath string) {
	t.Helper()
	systemPath, _ = writeFixtures(t)
	heard := pak.Once(pak.LocalContains("Alice", "Yes"))
	qs := []pak.Query{
		pak.ConstraintQuery{Fact: heard, Agent: "Alice", Action: "fire", Threshold: pak.Rat(1, 2)},
		pak.ThresholdQuery{Fact: heard, Agent: "Alice", Action: "fire", P: pak.Rat(1, 2)},
		pak.BeliefQuery{Fact: pak.Not(pak.LocalContains("Alice", "never")), Agent: "Alice", Action: "fire"},
	}
	doc, err := pak.MarshalQueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	batchPath = filepath.Join(t.TempDir(), "lpbatch.json")
	if err := os.WriteFile(batchPath, doc, 0o600); err != nil {
		t.Fatal(err)
	}
	return systemPath, batchPath
}

// TestRunBackendFlag: -backend lp and -backend auto render the exact
// same report as the default enumeration backend (the differential
// contract surfaced at the CLI), an unknown backend is a usage error,
// and strict lp over a query outside the fragment exits 1 naming the
// backend sentinel.
func TestRunBackendFlag(t *testing.T) {
	systemPath, batchPath := writeLPBatchFixture(t)

	outputs := make(map[string]string)
	for _, backend := range []string{"", "lp", "auto"} {
		args := []string{"-system", systemPath, "-batch", batchPath, "-parallel", "1"}
		if backend != "" {
			args = append(args, "-backend", backend)
		}
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("-backend %q exited %d: %s", backend, code, stderr.String())
		}
		outputs[backend] = stdout.String()
	}
	if outputs["lp"] != outputs[""] || outputs["auto"] != outputs[""] {
		t.Errorf("backend reports differ:\nenum: %s\nlp:   %s\nauto: %s",
			outputs[""], outputs["lp"], outputs["auto"])
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-system", systemPath, "-batch", batchPath, "-backend", "quantum"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown backend exited %d, want 2: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown backend") {
		t.Errorf("stderr does not name the bad backend: %s", stderr.String())
	}

	// The does-fact batch reads the future: strict lp must refuse it.
	_, enumBatch := writeBatchFixture(t)
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-system", systemPath, "-batch", enumBatch, "-backend", "lp"}, &stdout, &stderr); code != 1 {
		t.Fatalf("strict lp over a future-reading batch exited %d, want 1:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "backend does not support") {
		t.Errorf("report does not carry the backend error:\n%s", stdout.String())
	}
}
