// Command pakcheck analyzes probabilistic constraints µ(φ@α | α) ≥ p on
// a purely probabilistic system stored as JSON. Every analysis is built
// as a list of query values (see pak's unified query API) and routed
// through one parallel EvalBatch call; the tables below are rendered
// from the uniform results.
//
// Usage:
//
//	pakcheck -system sys.json -query query.json [-dump] [-eps 1/10] [-delta 1/10] [-parallel N]
//	pakcheck -system sys.json -batch queries.json [-parallel N]
//	pakcheck -scenario "nsquad(3)" -batch queries.json
//
// The system comes either from a JSON document produced by
// pak.MarshalSystem (see internal/encode for the schema) or from the
// scenario registry by name + params (-scenario; the catalog is
// SCENARIOS.md). With -query, the document names the
// agent, the proper action, the condition fact and an optional
// threshold, and pakcheck expands it into the full constraint analysis
// (the paper's complete battery):
//
//	{
//	  "agent": "Alice",
//	  "action": "fire",
//	  "threshold": "95/100",
//	  "fact": {"op":"and","args":[
//	    {"op":"does","agent":"Alice","action":"fire"},
//	    {"op":"does","agent":"Bob","action":"fire"}]}
//	}
//
// With -batch, the document is a JSON array of explicit query specs
// (pak.ParseQueryBatch's schema, produced by pak.MarshalQueryBatch), and
// pakcheck evaluates exactly those, reporting one row per query.
//
// -backend {enum|lp|auto} selects the exact engine (default enum; lp
// solves exact-rational linear programs over belief classes and returns
// byte-identical results on every query it supports — see DESIGN.md's
// "Second backend & differential testing").
package main

import (
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"sort"
	"strconv"
	"strings"

	"pak"
	"pak/internal/encode"
	"pak/internal/ratutil"
	"pak/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pakcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	systemPath := fs.String("system", "", "path to the system JSON document")
	scenarioSpec := fs.String("scenario", "", `registry scenario spec, e.g. "nsquad(3)" (alternative to -system; see SCENARIOS.md)`)
	sweepSpec := fs.String("sweep", "", `space-valued spec, e.g. "sweep(nsquad,loss=0.0..0.5/0.1)": render the query's min/max envelope over every adversary assignment`)
	queryPath := fs.String("query", "", "path to a constraint query document (agent/action/fact/threshold)")
	batchPath := fs.String("batch", "", "path to a query-batch JSON array (explicit query specs)")
	dump := fs.Bool("dump", false, "print the system tree before the analysis")
	epsStr := fs.String("eps", "1/10", "ε for the PAK analysis (Theorem 7.1)")
	deltaStr := fs.String("delta", "1/10", "δ for the PAK analysis (Theorem 7.1)")
	parallel := fs.Int("parallel", 0, "EvalBatch workers (0 = GOMAXPROCS)")
	stream := fs.Bool("stream", false, "with -batch: render each result as it finishes (EvalStream) instead of one final table")
	approxStr := fs.String("approx", "", `approximate tier, e.g. "eps=1/20,delta=1/100" or "samples=500,seed=3": answer supported queries from a seeded sample first, then refine to exact`)
	approxOnly := fs.Bool("approx-only", false, "with -approx: skip exact refinement, answer from samples alone")
	backendStr := fs.String("backend", "", `exact backend: "enum" (default), "lp" (linear-programming belief bounds; errors on queries outside the LP fragment) or "auto" (lp where supported, enum elsewhere) — results are byte-identical either way`)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "Usage: pakcheck {-system sys.json | -scenario spec | -sweep space} {-query query.json | -batch queries.json}\n")
		fmt.Fprintf(stderr, "                [-dump] [-eps 1/10] [-delta 1/10] [-parallel N] [-stream] [-backend lp]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, `
-query expands one constraint document into the full analysis battery;
-batch evaluates an explicit query-spec array (pak.ParseQueryBatch's
format, produced by pakrand -batch or pak.MarshalQueryBatch) through one
parallel EvalBatch call, one row per query. -stream renders each -batch
result the moment it finishes (EvalStream) instead of one final table —
progressive output for huge batches, with a terminal line naming how
the stream ended.

-sweep evaluates ONE query (the -query document's constraint, or a
single-element -batch) under every assignment of an adversary space —
"sweep(nsquad,loss=0.0..0.5/0.1)" ranges the loss, defaults fill the
rest (see SCENARIOS.md for each scenario's sweep example) — rendering
one line per assignment as it finishes with the running [min, max]
envelope, then the envelope table: bounds, witness assignments, skipped
assignments, visited count. The same evaluation is POST /v1/envelope on
pakd.

Examples:
  pakcheck -system sys.json -query query.json      the complete constraint battery
  pakcheck -system sys.json -batch queries.json    evaluate explicit query specs
  pakcheck -scenario "nsquad(3)" -batch q.json     a registry system, no JSON needed
  pakcheck -system sys.json -batch q.json -parallel 1   serial evaluation (same results)
  pakcheck -scenario "nsquad(3)" -batch q.json -stream -parallel 1
                                                   stream results in input order
  pakcheck -sweep "sweep(nsquad,loss=0.0..0.5/0.1)" -query q.json
                                                   the constraint's envelope over the loss sweep
  pakcheck -scenario "nsquad(3)" -batch q.json -approx eps=1/20,delta=1/100
                                                   approx-first: seeded estimates with exact-
                                                   rational CIs, refined to exact (ciCovered)
  pakcheck -sweep "sweep(nsquad,loss=0..1/2/1/10)" -query q.json -approx samples=2400,seed=21
                                                   sampled-first sweep: exact evaluation only
                                                   where an assignment's CI could still move
                                                   the envelope (pruned assignments listed)

-approx enables the approximate tier: supported queries (constraint,
expectation, threshold, belief-at-local) answer first from a seeded
Monte-Carlo sample with an exact-rational Hoeffding interval, then
refine to the exact value; the report marks whether the exact value
landed inside the interval (ciCovered). Keys: eps, delta (rationals),
samples, seed (integers). Same seed and budget => byte-identical
estimates. With -sweep, -approx switches to the sampled-first envelope:
assignments whose interval cannot reach the running min/max are pruned
without exact evaluation (correct with probability >= 1 - N*delta).

-backend selects the exact engine answering the queries: "enum" walks
every run (the default), "lp" answers belief/constraint/threshold
queries over past-based facts by solving exact-rational linear programs
over belief-class columns, and "auto" routes each query to lp where the
fragment covers it. Both backends are exact and differentially tested:
for any supported query they return byte-identical results, so -backend
never changes an answer — "lp" merely rejects (exit 1) queries outside
its fragment instead of falling back silently.
`)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sources := 0
	for _, src := range []string{*systemPath, *scenarioSpec, *sweepSpec} {
		if src != "" {
			sources++
		}
	}
	if sources != 1 || (*queryPath == "") == (*batchPath == "") {
		fmt.Fprintln(stderr, "pakcheck: exactly one of -system / -scenario / -sweep and exactly one of -query / -batch are required")
		fs.Usage()
		return 2
	}
	if *stream && *batchPath == "" {
		fmt.Fprintln(stderr, "pakcheck: -stream requires -batch (the -query battery renders as one report)")
		return 2
	}
	if *stream && *sweepSpec != "" {
		fmt.Fprintln(stderr, "pakcheck: -sweep always renders progressively; -stream applies to -batch only")
		return 2
	}
	if *approxOnly && *approxStr == "" {
		fmt.Fprintln(stderr, "pakcheck: -approx-only requires -approx")
		return 2
	}
	approxSpec, err := parseApproxFlag(*approxStr, *approxOnly)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: -approx: %v\n", err)
		return 2
	}
	backend, err := pak.ParseBackend(*backendStr)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: -backend: %v\n", err)
		return 2
	}
	if approxSpec != nil && *sweepSpec == "" && *batchPath == "" {
		fmt.Fprintln(stderr, "pakcheck: -approx applies to -batch and -sweep (the -query battery always reports exact values)")
		return 2
	}

	if *sweepSpec != "" {
		inner, err := sweepInnerQuery(*queryPath, *batchPath)
		if err != nil {
			fmt.Fprintf(stderr, "pakcheck: %v\n", err)
			return 1
		}
		opts := []pak.EvalOption{}
		if *parallel > 0 {
			opts = append(opts, pak.WithParallelism(*parallel))
		}
		if backend != pak.BackendEnum {
			opts = append(opts, pak.WithBackend(backend))
		}
		if approxSpec != nil {
			if err := sweepRunSampled(stdout, *sweepSpec, inner, *approxSpec, opts); err != nil {
				fmt.Fprintf(stderr, "pakcheck: %v\n", err)
				return 1
			}
			return 0
		}
		if err := sweepRun(stdout, *sweepSpec, inner, opts); err != nil {
			fmt.Fprintf(stderr, "pakcheck: %v\n", err)
			return 1
		}
		return 0
	}

	var sys *pak.System
	if *scenarioSpec != "" {
		built, err := pak.BuildScenario(*scenarioSpec)
		if err != nil {
			fmt.Fprintf(stderr, "pakcheck: %v\n", err)
			return 1
		}
		sys = built
	} else {
		sysData, err := os.ReadFile(*systemPath)
		if err != nil {
			fmt.Fprintf(stderr, "pakcheck: %v\n", err)
			return 1
		}
		sys, err = pak.UnmarshalSystem(sysData)
		if err != nil {
			fmt.Fprintf(stderr, "pakcheck: %v\n", err)
			return 1
		}
	}
	eps, err := ratutil.Parse(*epsStr)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: -eps: %v\n", err)
		return 2
	}
	delta, err := ratutil.Parse(*deltaStr)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: -delta: %v\n", err)
		return 2
	}

	if *dump {
		fmt.Fprint(stdout, report.Section("System", sys.Dump()))
	}

	opts := []pak.EvalOption{}
	if *parallel > 0 {
		opts = append(opts, pak.WithParallelism(*parallel))
	}
	if approxSpec != nil {
		opts = append(opts, pak.WithApprox(*approxSpec))
	}
	if backend != pak.BackendEnum {
		opts = append(opts, pak.WithBackend(backend))
	}

	if *batchPath != "" {
		data, readErr := os.ReadFile(*batchPath)
		if readErr != nil {
			fmt.Fprintf(stderr, "pakcheck: %v\n", readErr)
			return 1
		}
		qs, parseErr := pak.ParseQueryBatch(data)
		if parseErr != nil {
			fmt.Fprintf(stderr, "pakcheck: %v\n", parseErr)
			return 1
		}
		if *stream {
			if err := streamBatch(stdout, sys, qs, approxSpec, opts); err != nil {
				fmt.Fprintf(stderr, "pakcheck: %v\n", err)
				return 1
			}
			return 0
		}
		if err := analyzeBatch(stdout, sys, qs, opts); err != nil {
			fmt.Fprintf(stderr, "pakcheck: %v\n", err)
			return 1
		}
		return 0
	}

	queryData, err := os.ReadFile(*queryPath)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: %v\n", err)
		return 1
	}
	query, fact, err := encode.ParseQuery(queryData)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: %v\n", err)
		return 1
	}
	if err := analyze(stdout, sys, query, fact, eps, delta, opts); err != nil {
		fmt.Fprintf(stderr, "pakcheck: %v\n", err)
		return 1
	}
	return 0
}

// analyze expands the single constraint document into the complete
// analysis battery, evaluates it as one batch, and renders the report.
func analyze(w io.Writer, sys *pak.System, q encode.Query, fact pak.Fact, eps, delta *big.Rat, opts []pak.EvalOption) error {
	e := pak.NewEngine(sys)
	if err := e.IsProper(q.Agent, q.Action); err != nil {
		return err
	}
	var p *big.Rat
	if q.Threshold != "" {
		parsed, perr := ratutil.Parse(q.Threshold)
		if perr != nil {
			return fmt.Errorf("threshold: %w", perr)
		}
		p = parsed
	}

	// The battery, as one batch. Positions are fixed; the optional
	// threshold block is appended at the end.
	const (
		idxConstraint = iota
		idxExpectation
		idxBeliefs
		idxIndependence
		idxThmExpectation
		idxThmPAK
		idxThmKoP
		idxThreshold // present only when p != nil
		idxThmSufficiency
	)
	qs := []pak.Query{
		pak.ConstraintQuery{Fact: fact, Agent: q.Agent, Action: q.Action, Threshold: p},
		pak.ExpectationQuery{Fact: fact, Agent: q.Agent, Action: q.Action},
		pak.BeliefQuery{Fact: fact, Agent: q.Agent, Action: q.Action},
		pak.IndependenceQuery{Fact: fact, Agent: q.Agent, Action: q.Action},
		pak.TheoremQuery{Theorem: pak.TheoremExpectation, Fact: fact, Agent: q.Agent, Action: q.Action},
		pak.TheoremQuery{Theorem: pak.TheoremPAK, Fact: fact, Agent: q.Agent, Action: q.Action, Delta: delta, Eps: eps},
		pak.TheoremQuery{Theorem: pak.TheoremKoP, Fact: fact, Agent: q.Agent, Action: q.Action},
	}
	if p != nil {
		qs = append(qs,
			pak.ThresholdQuery{Fact: fact, Agent: q.Agent, Action: q.Action, P: p},
			pak.TheoremQuery{Theorem: pak.TheoremSufficiency, Fact: fact, Agent: q.Agent, Action: q.Action, P: p},
		)
	}
	results, err := pak.EvalBatch(e, qs, opts...)
	if err != nil {
		return err
	}

	mu := results[idxConstraint].Value
	exp := results[idxExpectation].Value
	beliefs := results[idxBeliefs].Values
	indep := results[idxIndependence].Flags

	summary := report.NewTable("quantity", "value")
	summary.AddRow("system", sys.String())
	summary.AddRow("agent / action", fmt.Sprintf("%s / %s", q.Agent, q.Action))
	summary.AddRow("condition φ", fact.String())
	min, max, err := e.BeliefRangeAtAction(fact, q.Agent, q.Action)
	if err != nil {
		return err
	}
	summary.AddRow("µ(φ@α | α)", fmt.Sprintf("%s ≈ %s", mu.RatString(), mu.FloatString(6)))
	summary.AddRow("E[β(φ)@α | α]", fmt.Sprintf("%s ≈ %s", exp.RatString(), exp.FloatString(6)))
	summary.AddRow("β range when acting", fmt.Sprintf("[%s, %s]", min.RatString(), max.RatString()))
	summary.AddRow("local-state independent", indep["independent"])
	summary.AddRow("  α deterministic (L4.3a)", indep["deterministic"])
	summary.AddRow("  φ past-based (L4.3b)", indep["pastBased"])
	fmt.Fprint(w, report.Section("Constraint analysis", summary.Render()))

	states := make([]string, 0, len(beliefs))
	for s := range beliefs {
		states = append(states, s)
	}
	sort.Strings(states)
	byState := report.NewTable("acting local state", "β(φ)")
	for _, s := range states {
		byState.AddRow(s, fmt.Sprintf("%s ≈ %s", beliefs[s].RatString(), beliefs[s].FloatString(6)))
	}
	fmt.Fprint(w, report.Section("Beliefs when acting (by information state)", byState.Render()))

	if p != nil {
		tm := results[idxThreshold].Value
		th := report.NewTable("quantity", "value")
		th.AddRow("threshold p", p.RatString())
		th.AddRow("constraint satisfied (µ ≥ p)", results[idxConstraint].Passed())
		th.AddRow("µ(β ≥ p | α)", fmt.Sprintf("%s ≈ %s", tm.RatString(), tm.FloatString(6)))
		th.AddRow("always meets threshold", results[idxThmSufficiency].Flags["premiseMet"])
		fmt.Fprint(w, report.Section("Threshold analysis", th.Render()))
	}

	expRep := results[idxThmExpectation]
	pakRep := results[idxThmPAK]
	kop := results[idxThmKoP]
	thms := report.NewTable("result", "verdict", "detail")
	thms.AddRow("Theorem 6.2 (expectation)", verdict(expRep.Passed()),
		fmt.Sprintf("µ=%s E[β]=%s", expRep.Value.RatString(), expRep.Values["expectedBelief"].RatString()))
	thms.AddRow("Theorem 7.1 (PAK)", verdict(pakRep.Passed()),
		fmt.Sprintf("µ(β≥%s|α)=%s bound=%s", pakRep.Values["beliefLevel"].RatString(),
			pakRep.Values["beliefMeasure"].RatString(), pakRep.Values["bound"].RatString()))
	thms.AddRow("Lemma F.1 (KoP limit)", verdict(kop.Passed()),
		fmt.Sprintf("minβ=%s knows=%v", kop.Values["minBelief"].RatString(), kop.Flags["alwaysKnows"]))
	fmt.Fprint(w, report.Section("Theorem checks", thms.Render()))
	return nil
}

// parseApproxFlag parses the -approx value: comma-separated key=value
// pairs with keys eps, delta (rationals) and samples, seed (integers).
// An empty value means the tier is off (nil spec).
func parseApproxFlag(s string, only bool) (*pak.ApproxSpec, error) {
	if s == "" {
		return nil, nil
	}
	spec := pak.ApproxSpec{Only: only}
	for _, kv := range strings.Split(s, ",") {
		key, val, found := strings.Cut(strings.TrimSpace(kv), "=")
		if !found || val == "" {
			return nil, fmt.Errorf("expected key=value, got %q", kv)
		}
		switch key {
		case "eps":
			r, err := ratutil.Parse(val)
			if err != nil {
				return nil, fmt.Errorf("eps: %w", err)
			}
			spec.Eps = r
		case "delta":
			r, err := ratutil.Parse(val)
			if err != nil {
				return nil, fmt.Errorf("delta: %w", err)
			}
			spec.Delta = r
		case "samples":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("samples: %w", err)
			}
			spec.Samples = n
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed: %w", err)
			}
			spec.Seed = n
		default:
			return nil, fmt.Errorf("unknown key %q (have eps, delta, samples, seed)", key)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// estimateStr renders a sampled estimate's interval and provenance.
func estimateStr(est *pak.QueryEstimate) string {
	return fmt.Sprintf("∈ [%s, %s] (n=%d of %d, seed=%d)",
		est.Lo.RatString(), est.Hi.RatString(), est.N, est.Samples, est.Seed)
}

// streamBatch evaluates an explicit query list through EvalStream,
// printing each result the moment its worker finishes — progressive
// rendering for huge batches, where the final table would otherwise
// arrive all at once at the end. Lines carry the query's batch index
// (completion order and input order coincide under -parallel 1), and
// the terminal frame reports how the stream ended, deadline truncation
// included. Under -approx supported queries print two lines — the
// sampled estimate (stage "approx"), then the refined exact value with
// its ciCovered self-check — and only final frames count toward the
// progress tally.
func streamBatch(w io.Writer, sys *pak.System, qs []pak.Query, approx *pak.ApproxSpec, opts []pak.EvalOption) error {
	fmt.Fprintf(w, "Streaming %d queries over %s\n", len(qs), sys)
	done, failed := 0, 0
	for f := range pak.EvalStream(pak.NewEngine(sys), qs, opts...) {
		if f.Terminal() {
			fmt.Fprintf(w, "stream %s: %d of %d queries evaluated, %d failed\n",
				f.Status, done, len(qs), failed)
			break
		}
		res := f.Result
		// An approx frame is the slot's final answer only in -approx-only
		// mode (or when a deadline cuts refinement, which the terminal
		// status reports); otherwise the exact frame follows.
		final := f.Stage != pak.StageApprox || (approx != nil && approx.Only)
		if final {
			done++
		}
		stage := ""
		if f.Stage != "" {
			stage = fmt.Sprintf(" %-6s", "["+string(f.Stage)+"]")
		}
		tally := fmt.Sprintf("[%d/%d]", done, len(qs))
		if res.Err != nil {
			if final {
				failed++
			}
			fmt.Fprintf(w, "%s%s #%d %s ERROR %v\n", tally, stage, f.Index, res.Kind, res.Err)
			continue
		}
		value := "-"
		if res.Value != nil {
			value = fmt.Sprintf("%s ≈ %s", res.Value.RatString(), res.Value.FloatString(6))
		}
		verdictStr := string(res.Verdict)
		if verdictStr == "" {
			verdictStr = "-"
		}
		detail := res.Detail
		if f.Stage == pak.StageApprox && res.Estimate != nil {
			detail = estimateStr(res.Estimate)
		} else if f.Stage == pak.StageExact && res.Estimate != nil {
			detail += fmt.Sprintf(" ciCovered=%v", res.Flags[pak.FlagCICovered])
		}
		fmt.Fprintf(w, "%s%s #%d %s %s %s %s\n", tally, stage, f.Index, res.Kind, value, verdictStr, detail)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d queries failed", failed, len(qs))
	}
	return nil
}

// analyzeBatch evaluates an explicit query list and renders one row per
// query: kind, headline value, verdict and detail.
func analyzeBatch(w io.Writer, sys *pak.System, qs []pak.Query, opts []pak.EvalOption) error {
	results, err := pak.EvalBatch(pak.NewEngine(sys), qs, opts...)
	tb := report.NewTable("#", "kind", "value", "verdict", "detail")
	for i, res := range results {
		if res.Err != nil {
			tb.AddRow(i, res.Kind, "-", "ERROR", res.Err.Error())
			continue
		}
		value := "-"
		if res.Value != nil {
			value = fmt.Sprintf("%s ≈ %s", res.Value.RatString(), res.Value.FloatString(6))
		}
		verdictStr := string(res.Verdict)
		if verdictStr == "" {
			verdictStr = "-"
		}
		detail := res.Detail
		if res.Witness != nil {
			detail += fmt.Sprintf(" witness=%d runs", res.Witness.Count())
		}
		if res.Estimate != nil {
			// The sampled interval rides along; refined results add the
			// self-check (a false ciCovered is the δ-probability miss),
			// approx-only results stand on the estimate alone.
			detail = fmt.Sprintf("estimate %s %s", res.Estimate.P.RatString(), estimateStr(res.Estimate))
			if covered, refined := res.Flags[pak.FlagCICovered]; refined {
				detail += fmt.Sprintf(" ciCovered=%v", covered)
			}
		}
		tb.AddRow(i, res.Kind, value, verdictStr, detail)
	}
	fmt.Fprint(w, report.Section(fmt.Sprintf("Query batch (%d queries over %s)", len(qs), sys), tb.Render()))
	// Render after the table so partial results still print alongside the
	// error exit.
	if err != nil {
		return err
	}
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "holds"
	}
	return "VIOLATED"
}

// sweepInnerQuery loads the single query a sweep evaluates: the -query
// constraint document (threshold included when present), or a -batch
// array holding exactly one spec.
func sweepInnerQuery(queryPath, batchPath string) (pak.Query, error) {
	if batchPath != "" {
		data, err := os.ReadFile(batchPath)
		if err != nil {
			return nil, err
		}
		qs, err := pak.ParseQueryBatch(data)
		if err != nil {
			return nil, err
		}
		if len(qs) != 1 {
			return nil, fmt.Errorf("-sweep folds one query's envelope; the batch has %d (sweep them one at a time)", len(qs))
		}
		return qs[0], nil
	}
	data, err := os.ReadFile(queryPath)
	if err != nil {
		return nil, err
	}
	q, fact, err := encode.ParseQuery(data)
	if err != nil {
		return nil, err
	}
	var p *big.Rat
	if q.Threshold != "" {
		if p, err = ratutil.Parse(q.Threshold); err != nil {
			return nil, fmt.Errorf("threshold: %w", err)
		}
	}
	return pak.ConstraintQuery{Fact: fact, Agent: q.Agent, Action: q.Action, Threshold: p}, nil
}

// sweepRun resolves the space, evaluates the inner query's envelope
// over it through EnvelopeStream, and renders progressively: one line
// per assignment the moment it finishes, carrying the running [min,
// max], then the final envelope table — bounds, witness assignments,
// skips, visited count, and how the sweep ended.
func sweepRun(w io.Writer, spec string, inner pak.Query, opts []pak.EvalOption) error {
	sw, err := pak.ResolveSweep(spec)
	if err != nil {
		return err
	}
	// Lazy items: each assignment's engine builds when its worker first
	// reaches it, so the first progress line prints as soon as the first
	// engine is up — not after every engine has built.
	items := pak.SweepItemsLazy(sw)
	fmt.Fprintf(w, "Sweeping %s: %d assignments of %q\n", sw.Canonical(), len(items), inner)
	frames, err := pak.EnvelopeStream(pak.EnvelopeQuery{Inner: inner, Items: items}, opts...)
	if err != nil {
		return err
	}
	done := 0
	slots := make([]pak.QueryResult, len(items))
	for f := range frames {
		if f.Terminal() {
			return renderEnvelope(w, sw, items, slots, f)
		}
		done++
		slots[f.Index] = f.Result
		value := "-"
		switch {
		case f.Result.Err != nil && pak.IsEnvelopeSkip(f.Result.Err):
			value = fmt.Sprintf("SKIP %v", f.Result.Err)
		case f.Result.Err != nil:
			value = fmt.Sprintf("ERROR %v", f.Result.Err)
		case f.Result.Value != nil:
			value = fmt.Sprintf("%s ≈ %s", f.Result.Value.RatString(), f.Result.Value.FloatString(6))
		}
		env := "∅"
		if f.Envelope.Defined() {
			env = fmt.Sprintf("[%s, %s]", f.Envelope.Min.RatString(), f.Envelope.Max.RatString())
		}
		fmt.Fprintf(w, "[%d/%d] #%d %-24s %-28s env=%s\n",
			done, len(items), f.Index, f.Assignment, value, env)
	}
	return fmt.Errorf("sweep ended without a terminal frame")
}

// sweepRunSampled is the sampled-first sweep: a coarse seeded pass
// estimates the query under every assignment, exact evaluation runs
// only where an assignment's confidence interval could still attain the
// envelope's min or max, and the pruned assignments are reported rather
// than exactly evaluated — correct with probability ≥ 1 − N·δ.
func sweepRunSampled(w io.Writer, spec string, inner pak.Query, approx pak.ApproxSpec, opts []pak.EvalOption) error {
	sw, err := pak.ResolveSweep(spec)
	if err != nil {
		return err
	}
	items, err := pak.SweepItems(sw)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Sampled-first sweep of %s: %d assignments of %q\n", sw.Canonical(), len(items), inner)
	out, err := pak.EvalEnvelopeSampled(pak.EnvelopeQuery{Inner: inner, Items: items}, approx, opts...)
	if err != nil {
		return err
	}
	if out.Estimates == nil {
		fmt.Fprintln(w, "query not approximable: fell back to the exhaustive sweep")
	}
	pruned := make(map[string]bool, len(out.Pruned))
	for _, a := range out.Pruned {
		pruned[a] = true
	}
	for i, item := range items {
		line := "-"
		switch {
		case out.Estimates != nil && out.Estimates[i] != nil:
			est := out.Estimates[i]
			line = fmt.Sprintf("%s %s", est.P.RatString(), estimateStr(est))
		case out.Estimates != nil:
			line = "estimate failed (kept for exact evaluation)"
		}
		mark := ""
		if pruned[item.Assignment] {
			mark = "  PRUNED (interval cannot reach the envelope)"
		}
		fmt.Fprintf(w, "[%d/%d] %-24s %s%s\n", i+1, len(items), item.Assignment, line, mark)
	}

	env := out.Range
	tb := report.NewTable("quantity", "value")
	tb.AddRow("space", sw.Canonical())
	if env.Defined() {
		tb.AddRow("min", fmt.Sprintf("%s ≈ %s", env.Min.RatString(), env.Min.FloatString(6)))
		tb.AddRow("min at", env.ArgMin)
		tb.AddRow("max", fmt.Sprintf("%s ≈ %s", env.Max.RatString(), env.Max.FloatString(6)))
		tb.AddRow("max at", env.ArgMax)
	} else {
		tb.AddRow("envelope", "undefined (no assignment produced a value)")
	}
	tb.AddRow("exactly evaluated", fmt.Sprintf("%d/%d assignments", env.Visited, env.Total))
	tb.AddRow("pruned by sampling", fmt.Sprintf("%d: %v", len(out.Pruned), out.Pruned))
	if len(env.Skipped) > 0 {
		tb.AddRow("skipped", fmt.Sprintf("%d: %v", len(env.Skipped), env.Skipped))
	}
	tb.AddRow("ended", string(out.Status))
	if out.Estimates != nil {
		tb.AddRow("confidence", fmt.Sprintf("correct w.p. ≥ 1 − %d·δ (δ per estimate)", len(items)))
	}
	fmt.Fprint(w, report.Section("Adversary envelope (sampled-first)", tb.Render()))

	if out.Status != pak.StreamComplete {
		return fmt.Errorf("sweep %s after %d of %d assignments: the envelope is partial", out.Status, env.Visited, env.Total)
	}
	if out.Err != nil {
		return out.Err
	}
	if !env.Defined() {
		return fmt.Errorf("envelope undefined: the query produced no value under any of the %d assignments", len(items))
	}
	return nil
}

// renderEnvelope prints the final envelope table and maps the sweep's
// ending to the exit contract: a partial, undefined, or hard-failed
// sweep errors — bounds that silently exclude failed assignments must
// never exit 0 as if they covered the whole space.
func renderEnvelope(w io.Writer, sw *pak.ResolvedSweep, items []pak.EnvelopeItem, slots []pak.QueryResult, terminal pak.EnvelopeFrame) error {
	env := terminal.Envelope
	tb := report.NewTable("quantity", "value")
	tb.AddRow("space", sw.Canonical())
	if env.Defined() {
		tb.AddRow("min", fmt.Sprintf("%s ≈ %s", env.Min.RatString(), env.Min.FloatString(6)))
		tb.AddRow("min at", env.ArgMin)
		tb.AddRow("max", fmt.Sprintf("%s ≈ %s", env.Max.RatString(), env.Max.FloatString(6)))
		tb.AddRow("max at", env.ArgMax)
	} else {
		tb.AddRow("envelope", "undefined (no assignment produced a value)")
	}
	tb.AddRow("visited", fmt.Sprintf("%d/%d assignments", env.Visited, env.Total))
	if len(env.Skipped) > 0 {
		tb.AddRow("skipped", fmt.Sprintf("%d: %v", len(env.Skipped), env.Skipped))
	}
	tb.AddRow("ended", string(terminal.Status))
	fmt.Fprint(w, report.Section("Adversary envelope", tb.Render()))

	if terminal.Status != pak.StreamComplete {
		return fmt.Errorf("sweep %s after %d of %d assignments: the envelope is partial", terminal.Status, env.Visited, env.Total)
	}
	if failures := pak.EnvelopeFailure(slots); failures != "" {
		return fmt.Errorf("the envelope excludes failed assignments — %s", failures)
	}
	if !env.Defined() {
		return fmt.Errorf("envelope undefined: the query produced no value under any of the %d assignments", len(items))
	}
	return nil
}
