// Command pakcheck analyzes a probabilistic constraint µ(φ@α | α) ≥ p on
// a purely probabilistic system stored as JSON, reporting the exact
// constraint probability, the agent's beliefs when acting, local-state
// independence, and the verdicts of the paper's theorems.
//
// Usage:
//
//	pakcheck -system sys.json -query query.json [-dump] [-eps 1/10] [-delta 1/10]
//
// The system document is produced by pak.MarshalSystem (see
// internal/encode for the schema); the query document names the agent,
// the proper action, the condition fact and an optional threshold:
//
//	{
//	  "agent": "Alice",
//	  "action": "fire",
//	  "threshold": "95/100",
//	  "fact": {"op":"and","args":[
//	    {"op":"does","agent":"Alice","action":"fire"},
//	    {"op":"does","agent":"Bob","action":"fire"}]}
//	}
package main

import (
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"sort"

	"pak"
	"pak/internal/encode"
	"pak/internal/ratutil"
	"pak/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pakcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	systemPath := fs.String("system", "", "path to the system JSON document (required)")
	queryPath := fs.String("query", "", "path to the query JSON document (required)")
	dump := fs.Bool("dump", false, "print the system tree before the analysis")
	epsStr := fs.String("eps", "1/10", "ε for the PAK analysis (Theorem 7.1)")
	deltaStr := fs.String("delta", "1/10", "δ for the PAK analysis (Theorem 7.1)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *systemPath == "" || *queryPath == "" {
		fmt.Fprintln(stderr, "pakcheck: -system and -query are required")
		fs.Usage()
		return 2
	}

	sysData, err := os.ReadFile(*systemPath)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: %v\n", err)
		return 1
	}
	sys, err := pak.UnmarshalSystem(sysData)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: %v\n", err)
		return 1
	}
	queryData, err := os.ReadFile(*queryPath)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: %v\n", err)
		return 1
	}
	query, fact, err := encode.ParseQuery(queryData)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: %v\n", err)
		return 1
	}
	eps, err := ratutil.Parse(*epsStr)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: -eps: %v\n", err)
		return 2
	}
	delta, err := ratutil.Parse(*deltaStr)
	if err != nil {
		fmt.Fprintf(stderr, "pakcheck: -delta: %v\n", err)
		return 2
	}

	if *dump {
		fmt.Fprint(stdout, report.Section("System", sys.Dump()))
	}
	if err := analyze(stdout, sys, query, fact, eps, delta); err != nil {
		fmt.Fprintf(stderr, "pakcheck: %v\n", err)
		return 1
	}
	return 0
}

func analyze(w io.Writer, sys *pak.System, q encode.Query, fact pak.Fact, eps, delta *big.Rat) error {
	e := pak.NewEngine(sys)

	summary := report.NewTable("quantity", "value")
	summary.AddRow("system", sys.String())
	summary.AddRow("agent / action", fmt.Sprintf("%s / %s", q.Agent, q.Action))
	summary.AddRow("condition φ", fact.String())

	if err := e.IsProper(q.Agent, q.Action); err != nil {
		return err
	}

	mu, err := e.ConstraintProb(fact, q.Agent, q.Action)
	if err != nil {
		return err
	}
	exp, err := e.ExpectedBelief(fact, q.Agent, q.Action)
	if err != nil {
		return err
	}
	min, max, err := e.BeliefRangeAtAction(fact, q.Agent, q.Action)
	if err != nil {
		return err
	}
	witness, err := e.ExplainIndependence(fact, q.Agent, q.Action)
	if err != nil {
		return err
	}
	summary.AddRow("µ(φ@α | α)", fmt.Sprintf("%s ≈ %s", mu.RatString(), mu.FloatString(6)))
	summary.AddRow("E[β(φ)@α | α]", fmt.Sprintf("%s ≈ %s", exp.RatString(), exp.FloatString(6)))
	summary.AddRow("β range when acting", fmt.Sprintf("[%s, %s]", min.RatString(), max.RatString()))
	summary.AddRow("local-state independent", witness.Independent)
	summary.AddRow("  α deterministic (L4.3a)", witness.Deterministic)
	summary.AddRow("  φ past-based (L4.3b)", witness.PastBased)
	fmt.Fprint(w, report.Section("Constraint analysis", summary.Render()))

	byState, err := e.BeliefByActionState(fact, q.Agent, q.Action)
	if err != nil {
		return err
	}
	states := make([]string, 0, len(byState))
	for s := range byState {
		states = append(states, s)
	}
	sort.Strings(states)
	beliefs := report.NewTable("acting local state", "β(φ)")
	for _, s := range states {
		beliefs.AddRow(s, fmt.Sprintf("%s ≈ %s", byState[s].RatString(), byState[s].FloatString(6)))
	}
	fmt.Fprint(w, report.Section("Beliefs when acting (by information state)", beliefs.Render()))

	if q.Threshold != "" {
		p, perr := ratutil.Parse(q.Threshold)
		if perr != nil {
			return fmt.Errorf("threshold: %w", perr)
		}
		tm, terr := e.ThresholdMeasure(fact, q.Agent, q.Action, p)
		if terr != nil {
			return terr
		}
		th := report.NewTable("quantity", "value")
		th.AddRow("threshold p", p.RatString())
		th.AddRow("constraint satisfied (µ ≥ p)", ratutil.Geq(mu, p))
		th.AddRow("µ(β ≥ p | α)", fmt.Sprintf("%s ≈ %s", tm.RatString(), tm.FloatString(6)))
		suff, serr := e.CheckSufficiency(fact, q.Agent, q.Action, p)
		if serr != nil {
			return serr
		}
		th.AddRow("always meets threshold", suff.PremiseMet)
		fmt.Fprint(w, report.Section("Threshold analysis", th.Render()))
	}

	pakRep, err := e.CheckPAK(fact, q.Agent, q.Action, delta, eps)
	if err != nil {
		return err
	}
	expRep, err := e.CheckExpectation(fact, q.Agent, q.Action)
	if err != nil {
		return err
	}
	kop, err := e.CheckKoPLimit(fact, q.Agent, q.Action)
	if err != nil {
		return err
	}
	thms := report.NewTable("result", "verdict", "detail")
	thms.AddRow("Theorem 6.2 (expectation)", verdict(expRep.Holds()),
		fmt.Sprintf("µ=%s E[β]=%s", expRep.ConstraintProb.RatString(), expRep.ExpectedBelief.RatString()))
	thms.AddRow("Theorem 7.1 (PAK)", verdict(pakRep.Holds()),
		fmt.Sprintf("µ(β≥%s|α)=%s bound=%s", pakRep.BeliefLevel.RatString(),
			pakRep.BeliefMeasure.RatString(), pakRep.Bound.RatString()))
	thms.AddRow("Lemma F.1 (KoP limit)", verdict(kop.Holds()),
		fmt.Sprintf("minβ=%s knows=%v", kop.MinBelief.RatString(), kop.AlwaysKnows))
	fmt.Fprint(w, report.Section("Theorem checks", thms.Render()))
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "holds"
	}
	return "VIOLATED"
}
