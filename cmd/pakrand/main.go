// Command pakrand generates a random purely probabilistic system (with a
// guaranteed proper action for agent "a0") as a JSON document, plus
// matching analysis queries, so the pipeline
//
//	pakrand -out sys.json -query query.json -batch batch.json
//	pakcheck -system sys.json -query query.json
//	pakcheck -system sys.json -batch batch.json
//
// can be exercised end to end on arbitrary systems. Generation is
// deterministic given -seed.
//
// Usage:
//
//	pakrand [-seed 1] [-agents 2] [-depth 4] [-branch 3] [-obs 2]
//	        [-action-time 2] [-det] [-out sys.json] [-query query.json]
//	        [-batch batch.json] [-selfcheck] [-ci-check N]
//
// With no -out the system document is written to stdout and the query
// files are omitted. -query writes the single-constraint document the
// classic pakcheck mode consumes; -batch writes a full query-batch spec
// (constraint, expectation, independence and every theorem) serialized
// through the unified query API. -selfcheck immediately evaluates that
// batch on the generated system through EvalStream, rendering each
// verdict the moment it is known and reporting pass/fail, making
// pakrand a one-shot property tester with progressive output.
// -ci-check N audits the approximate tier on the generated system: N
// seeded trials of the battery's approximable queries, each exact value
// checked against its sampled confidence interval, with the miss rate
// held to the Hoeffding guarantee's δ allowance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pak"
	"pak/internal/randsys"
	"pak/internal/ratutil"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pakrand", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "generation seed")
	agents := fs.Int("agents", 2, "number of agents")
	depth := fs.Int("depth", 4, "uniform run length in transitions")
	branch := fs.Int("branch", 3, "maximum children per internal node")
	obs := fs.Int("obs", 2, "observation alphabet size (small = richer beliefs)")
	actionTime := fs.Int("action-time", 2, "time at which agent a0 may perform the designated action")
	det := fs.Bool("det", false, "make the designated action deterministic (Lemma 4.3(a) mode)")
	out := fs.String("out", "", "write the system document to this file (default: stdout)")
	queryPath := fs.String("query", "", "also write a matching single-constraint pakcheck query to this file")
	batchPath := fs.String("batch", "", "also write a matching query-batch spec to this file")
	selfcheck := fs.Bool("selfcheck", false, "evaluate the generated batch on the generated system via EvalBatch")
	ciCheck := fs.Int("ci-check", 0, "audit the approximate tier's CI coverage: N seeded trials of the battery's approximable queries, exact value checked against each interval (0 = off)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "Usage: pakrand [-seed 1] [-agents 2] [-depth 4] [-branch 3] [-obs 2]\n")
		fmt.Fprintf(stderr, "               [-action-time 2] [-det] [-out sys.json] [-query query.json]\n")
		fmt.Fprintf(stderr, "               [-batch batch.json] [-selfcheck]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, `
Generation goes through the scenario registry's "random" builder (see
SCENARIOS.md), so pakrand, pakcheck -scenario "random(...)" and the pakd
service all produce the same system for the same parameters.

Examples:
  pakrand -out sys.json -query query.json    a system + matching pakcheck query
  pakrand -batch batch.json                  also write a full query-batch spec
  pakrand -seed 7 -selfcheck                 generate, evaluate the batch, verify verdicts
  pakrand -seed 7 -ci-check 20               audit the approximate tier: 20 seeded trials,
                                             each exact value checked against its sampled
                                             confidence interval (miss rate must stay
                                             within the Hoeffding guarantee's allowance)
`)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Generation goes through the registry — the single place system
	// construction lives — via the same spec pakcheck and pakd accept.
	spec := fmt.Sprintf("random(seed=%d,agents=%d,depth=%d,branch=%d,obs=%d,actiontime=%d,det=%v)",
		*seed, *agents, *depth, *branch, *obs, *actionTime, *det)
	sys, err := pak.BuildScenario(spec)
	if err != nil {
		fmt.Fprintf(stderr, "pakrand: %v\n", err)
		return 2
	}
	data, err := pak.MarshalSystem(sys)
	if err != nil {
		fmt.Fprintf(stderr, "pakrand: %v\n", err)
		return 1
	}

	if *out == "" {
		fmt.Fprintln(stdout, string(data))
	} else {
		if err := os.WriteFile(*out, data, 0o600); err != nil {
			fmt.Fprintf(stderr, "pakrand: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote system (%d runs, %d nodes) to %s\n",
			sys.NumRuns(), sys.NumNodes()-1, *out)
	}

	if *queryPath != "" {
		// A past-based condition (an observation of the last agent), so
		// Lemma 4.3(b) guarantees the independence hypothesis and pakcheck
		// reports meaningful theorem verdicts.
		condAgent := fmt.Sprintf("a%d", *agents-1)
		query := fmt.Sprintf(`{
  "agent": "a0",
  "action": %q,
  "threshold": "1/2",
  "fact": {"op": "localContains", "agent": %q, "substr": "o0"}
}
`, randsys.DesignatedAction, condAgent)
		if err := os.WriteFile(*queryPath, []byte(query), 0o600); err != nil {
			fmt.Fprintf(stderr, "pakrand: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote query to %s\n", *queryPath)
	}

	if *batchPath != "" || *selfcheck {
		batch := analysisBatch(*agents)
		if *batchPath != "" {
			doc, merr := pak.MarshalQueryBatch(batch)
			if merr != nil {
				fmt.Fprintf(stderr, "pakrand: %v\n", merr)
				return 1
			}
			if err := os.WriteFile(*batchPath, doc, 0o600); err != nil {
				fmt.Fprintf(stderr, "pakrand: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %d-query batch to %s\n", len(batch), *batchPath)
		}
		if *selfcheck {
			// The battery streams serially so each verdict renders the
			// moment it is known, in input order — progressive AND
			// deterministic output (ten queries gain nothing from a
			// parallel pool anyway).
			done, failed := 0, 0
			for f := range pak.EvalStream(pak.NewEngine(sys), batch, pak.WithParallelism(1)) {
				if f.Terminal() {
					if f.Status != pak.StreamComplete {
						fmt.Fprintf(stderr, "pakrand: selfcheck: stream ended %s after %d of %d queries\n",
							f.Status, done, len(batch))
						return 1
					}
					continue
				}
				done++
				res := f.Result
				if res.Err != nil {
					fmt.Fprintf(stderr, "pakrand: selfcheck: %v\n", res.Err)
					return 1
				}
				// Only theorem and independence verdicts must pass
				// universally: the constraint's own µ ≥ p judgement
				// legitimately varies with the random system.
				gated := res.Kind == pak.KindTheorem || res.Kind == pak.KindIndependence
				switch {
				case gated && res.Verdict == pak.VerdictFail:
					failed++
					fmt.Fprintf(stdout, "selfcheck [%2d/%d] FAIL: %s (%s)\n", done, len(batch), res.Query, res.Detail)
				default:
					fmt.Fprintf(stdout, "selfcheck [%2d/%d] ok: %s\n", done, len(batch), res.Query)
				}
			}
			if failed > 0 {
				// A failed theorem verdict on a hypotheses-met system would
				// be a counterexample to the paper.
				fmt.Fprintf(stderr, "pakrand: selfcheck: %d verdict(s) failed\n", failed)
				return 1
			}
			fmt.Fprintf(stdout, "selfcheck: %d queries evaluated, all verdicts pass\n", done)
		}
	}
	if *ciCheck > 0 {
		if code := runCICheck(stdout, stderr, sys, *agents, *seed, *ciCheck); code != 0 {
			return code
		}
	}
	return 0
}

// runCICheck audits the approximate tier's headline guarantee on the
// generated system: over trials seeded evaluations of the battery's
// approximable queries (δ = 1/100 per estimate), the exact value must
// land inside each sampled confidence interval except for a δ-rate
// allowance — and the ciCovered flag the refined results carry must
// agree with the interval check. Everything is deterministic given
// -seed, so a pass is reproducible and a failure is a bug report:
// either the Hoeffding radius under-covers (unsound rounding) or the
// self-check wiring lies.
func runCICheck(stdout, stderr io.Writer, sys *pak.System, agents int, seed int64, trials int) int {
	var qs []pak.Query
	for _, q := range analysisBatch(agents) {
		if pak.CanApprox(q) {
			qs = append(qs, q)
		}
	}
	e := pak.NewEngine(sys)
	misses, total := 0, 0
	for trial := 0; trial < trials; trial++ {
		spec := pak.ApproxSpec{Samples: 150, Seed: seed*1000 + int64(trial) + 1}
		results, err := pak.EvalBatch(e, qs, pak.WithApprox(spec))
		if err != nil {
			fmt.Fprintf(stderr, "pakrand: ci-check trial %d: %v\n", trial, err)
			return 1
		}
		for i, res := range results {
			est := res.Estimate
			if est == nil {
				fmt.Fprintf(stderr, "pakrand: ci-check trial %d: query %d carries no estimate\n", trial, i)
				return 1
			}
			total++
			covered := est.Contains(res.Value)
			if flagged, ok := res.Flags[pak.FlagCICovered]; !ok || flagged != covered {
				fmt.Fprintf(stderr, "pakrand: ci-check trial %d: query %d ciCovered flag disagrees with the interval\n", trial, i)
				return 1
			}
			if !covered {
				misses++
				fmt.Fprintf(stdout, "ci-check miss (trial %d, query %d): exact %s outside [%s, %s]\n",
					trial, i, res.Value.RatString(), est.Lo.RatString(), est.Hi.RatString())
			}
		}
	}
	// δ = 1/100 per estimate; allow triple the expected miss count (and
	// never fail on a single miss) so an honest δ-rate tail can't flip a
	// deterministic audit that future seeds re-run.
	allowance := total * 3 / 100
	if allowance < 1 {
		allowance = 1
	}
	fmt.Fprintf(stdout, "ci-check: %d of %d intervals covered the exact value (%d misses, allowance %d)\n",
		total-misses, total, misses, allowance)
	if misses > allowance {
		fmt.Fprintf(stderr, "pakrand: ci-check: %d misses exceed the allowance %d — the claimed (ε,δ) guarantee does not hold\n",
			misses, allowance)
		return 1
	}
	return 0
}

// analysisBatch builds the standard property-test battery for a
// generated system: the designated action of a0 against a past-based
// observation of the last agent, through every analysis kind.
func analysisBatch(agents int) []pak.Query {
	fact := pak.LocalContains(fmt.Sprintf("a%d", agents-1), "o0")
	half := ratutil.R(1, 2)
	return []pak.Query{
		pak.ConstraintQuery{Fact: fact, Agent: "a0", Action: randsys.DesignatedAction, Threshold: half},
		pak.ExpectationQuery{Fact: fact, Agent: "a0", Action: randsys.DesignatedAction},
		pak.BeliefQuery{Fact: fact, Agent: "a0", Action: randsys.DesignatedAction},
		pak.ThresholdQuery{Fact: fact, Agent: "a0", Action: randsys.DesignatedAction, P: half},
		pak.IndependenceQuery{Fact: fact, Agent: "a0", Action: randsys.DesignatedAction},
		pak.TheoremQuery{Theorem: pak.TheoremSufficiency, Fact: fact, Agent: "a0", Action: randsys.DesignatedAction, P: half},
		pak.TheoremQuery{Theorem: pak.TheoremNecessity, Fact: fact, Agent: "a0", Action: randsys.DesignatedAction, P: half},
		pak.TheoremQuery{Theorem: pak.TheoremExpectation, Fact: fact, Agent: "a0", Action: randsys.DesignatedAction},
		pak.TheoremQuery{Theorem: pak.TheoremPAK, Fact: fact, Agent: "a0", Action: randsys.DesignatedAction, Eps: ratutil.R(1, 4)},
		pak.TheoremQuery{Theorem: pak.TheoremKoP, Fact: fact, Agent: "a0", Action: randsys.DesignatedAction},
	}
}
