// Command pakrand generates a random purely probabilistic system (with a
// guaranteed proper action for agent "a0") as a JSON document, plus a
// matching analysis query, so the pipeline
//
//	pakrand -out sys.json -query query.json
//	pakcheck -system sys.json -query query.json
//
// can be exercised end to end on arbitrary systems. Generation is
// deterministic given -seed.
//
// Usage:
//
//	pakrand [-seed 1] [-agents 2] [-depth 4] [-branch 3] [-obs 2]
//	        [-action-time 2] [-det] [-out sys.json] [-query query.json]
//
// With no -out the system document is written to stdout and the query is
// omitted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pak"
	"pak/internal/randsys"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pakrand", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "generation seed")
	agents := fs.Int("agents", 2, "number of agents")
	depth := fs.Int("depth", 4, "uniform run length in transitions")
	branch := fs.Int("branch", 3, "maximum children per internal node")
	obs := fs.Int("obs", 2, "observation alphabet size (small = richer beliefs)")
	actionTime := fs.Int("action-time", 2, "time at which agent a0 may perform the designated action")
	det := fs.Bool("det", false, "make the designated action deterministic (Lemma 4.3(a) mode)")
	out := fs.String("out", "", "write the system document to this file (default: stdout)")
	queryPath := fs.String("query", "", "also write a matching pakcheck query to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := randsys.Config{
		Agents:      *agents,
		Depth:       *depth,
		MaxBranch:   *branch,
		MaxInitial:  2,
		ObsAlphabet: *obs,
		ActionTime:  *actionTime,
		DetAction:   *det,
		Seed:        *seed,
	}
	sys, err := randsys.Generate(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "pakrand: %v\n", err)
		return 2
	}
	data, err := pak.MarshalSystem(sys)
	if err != nil {
		fmt.Fprintf(stderr, "pakrand: %v\n", err)
		return 1
	}

	if *out == "" {
		fmt.Fprintln(stdout, string(data))
	} else {
		if err := os.WriteFile(*out, data, 0o600); err != nil {
			fmt.Fprintf(stderr, "pakrand: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote system (%d runs, %d nodes) to %s\n",
			sys.NumRuns(), sys.NumNodes()-1, *out)
	}

	if *queryPath != "" {
		// A past-based condition (an observation of the last agent), so
		// Lemma 4.3(b) guarantees the independence hypothesis and pakcheck
		// reports meaningful theorem verdicts.
		condAgent := fmt.Sprintf("a%d", *agents-1)
		query := fmt.Sprintf(`{
  "agent": "a0",
  "action": %q,
  "threshold": "1/2",
  "fact": {"op": "localContains", "agent": %q, "substr": "o0"}
}
`, randsys.DesignatedAction, condAgent)
		if err := os.WriteFile(*queryPath, []byte(query), 0o600); err != nil {
			fmt.Fprintf(stderr, "pakrand: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote query to %s\n", *queryPath)
	}
	return 0
}
