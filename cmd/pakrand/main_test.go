package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pak"
)

func TestRunToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	// The emitted document must parse back into a valid system.
	sys, err := pak.UnmarshalSystem(stdout.Bytes())
	if err != nil {
		t.Fatalf("emitted document invalid: %v", err)
	}
	if sys.NumRuns() == 0 {
		t.Fatal("empty system")
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	var a, b, stderr bytes.Buffer
	if code := run([]string{"-seed", "7"}, &a, &stderr); code != 0 {
		t.Fatal(stderr.String())
	}
	if code := run([]string{"-seed", "7"}, &b, &stderr); code != 0 {
		t.Fatal(stderr.String())
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different documents")
	}
}

func TestRunToFilesAndPipelineWithPakcheck(t *testing.T) {
	dir := t.TempDir()
	sysPath := filepath.Join(dir, "sys.json")
	queryPath := filepath.Join(dir, "query.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-out", sysPath, "-query", queryPath, "-seed", "3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote system") || !strings.Contains(stdout.String(), "wrote query") {
		t.Fatalf("stdout = %q", stdout.String())
	}

	// The generated pair must satisfy the full analysis pipeline: the
	// designated action is proper and the condition fact parses.
	sysData, err := os.ReadFile(sysPath)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := pak.UnmarshalSystem(sysData)
	if err != nil {
		t.Fatal(err)
	}
	engine := pak.NewEngine(sys)
	if err := engine.IsProper("a0", "alpha*"); err != nil {
		t.Fatalf("designated action not proper: %v", err)
	}
	queryData, err := os.ReadFile(queryPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(queryData), "alpha*") {
		t.Fatalf("query missing action: %s", queryData)
	}
}

func TestRunDetMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-det", "-seed", "5"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	sys, err := pak.UnmarshalSystem(stdout.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	det, err := pak.NewEngine(sys).IsDeterministicAction("a0", "alpha*")
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Fatal("-det should produce a deterministic designated action")
	}
}

func TestRunBadFlags(t *testing.T) {
	tests := [][]string{
		{"-nope"},
		{"-agents", "0"},
		{"-depth", "0"},
		{"-action-time", "9", "-depth", "3"},
	}
	for _, args := range tests {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestRunUnwritablePaths(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-out", "/no/such/dir/sys.json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	dir := t.TempDir()
	sysPath := filepath.Join(dir, "sys.json")
	if code := run([]string{"-out", sysPath, "-query", "/no/such/dir/q.json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// TestRunCICheck: -ci-check audits the approximate tier on the
// generated system — every trial's exact values against their sampled
// intervals, deterministic given the seed, and the rendered tally
// accounts for trials × approximable queries.
func TestRunCICheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-seed", "7", "-ci-check", "10"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	// The battery has 3 approximable queries (constraint, expectation,
	// threshold), so 10 trials audit 30 intervals.
	if !strings.Contains(out, "of 30 intervals covered the exact value") {
		t.Errorf("ci-check tally missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "allowance") {
		t.Errorf("ci-check summary does not state its allowance:\n%s", out)
	}

	// Deterministic given -seed: a rerun renders byte-identical output.
	var again bytes.Buffer
	if code := run([]string{"-seed", "7", "-ci-check", "10"}, &again, &stderr); code != 0 {
		t.Fatalf("rerun exited %d: %s", code, stderr.String())
	}
	if again.String() != stdout.String() {
		t.Error("ci-check output differs across reruns with one seed")
	}

	// A second generation seed exercises a different system shape and
	// must still hold the guarantee.
	var other bytes.Buffer
	if code := run([]string{"-seed", "23", "-agents", "3", "-ci-check", "5"}, &other, &stderr); code != 0 {
		t.Fatalf("seed 23 audit exited %d: %s", code, stderr.String())
	}
}

// TestRunSelfcheckProgressive: -selfcheck streams the battery serially,
// rendering one deterministic line per verdict before the summary.
func TestRunSelfcheckProgressive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-seed", "7", "-selfcheck"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"selfcheck [ 1/10] ok:",
		"selfcheck [10/10] ok:",
		"selfcheck: 10 queries evaluated, all verdicts pass",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("selfcheck output missing %q:\n%s", want, out)
		}
	}
}
