package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunOriginal(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"99/100",   // the headline constraint value
		"991/1000", // threshold-met measure
		"recv=Yes",
		"recv=No",
		"Theorem 6.2",
		"holds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Error("unexpected theorem violation")
	}
}

func TestRunImproved(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-variant", "improved"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "990/991") {
		t.Errorf("improved variant should report 990/991:\n%s", out)
	}
	// Alice no longer fires after 'No'.
	if strings.Contains(out, "recv=No,end") {
		t.Log("note: recv=No appears only in non-acting states")
	}
}

func TestRunWithSamplesAndDump(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-samples", "20000", "-seed", "7", "-dump"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Monte-Carlo cross-check") {
		t.Error("missing Monte-Carlo section")
	}
	if !strings.Contains(out, "true") {
		t.Error("sampled estimate should contain the exact value")
	}
	if !strings.Contains(out, "λ") {
		t.Error("missing dump")
	}
}

func TestRunCustomLoss(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// Perfect channel: µ = 1.
	if code := run([]string{"-loss", "0"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "1.000000") {
		t.Errorf("lossless channel should give µ = 1:\n%s", stdout.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad loss", []string{"-loss", "zzz"}},
		{"bad variant", []string{"-variant", "zzz"}},
		{"bad flag", []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tt.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit = %d, want 2", code)
			}
		})
	}
}

func TestRunLossOutOfRange(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-loss", "3/2"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "loss") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestRunSweep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sweep"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"Loss sensitivity",
		"99/100",  // ℓ=1/10 original
		"990/991", // ℓ=1/10 improved
		"399/400", // ℓ=1/20 closed form 1−ℓ²
		"improved wins",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
}
