// Command fsquad analyzes the paper's Example 1, the relaxed firing squad
// protocol FS over a lossy synchronous channel, with exact rational
// results and an optional Monte-Carlo cross-check.
//
// Usage:
//
//	fsquad [-loss 1/10] [-variant original|improved] [-samples 0] [-seed 1] [-dump]
//
// With the paper's parameters (loss 1/10) the original variant reports
// µ(φ_both | fire_A) = 99/100, Alice's three information states with
// beliefs {1, 0, 99/100}, and threshold-met measure 991/1000; the improved
// variant (Section 8) reports 990/991 ≈ 0.99899.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"sort"

	"pak"
	"pak/internal/ratutil"
	"pak/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// buildFSquad constructs Example 1's system through the scenario
// registry — the same path pakcheck -scenario and the pakd service
// resolve — from the CLI's (loss, variant) vocabulary.
func buildFSquad(loss *big.Rat, variant pak.FSVariant) (*pak.System, error) {
	return pak.BuildScenario(fmt.Sprintf("fsquad(loss=%s,improved=%v)",
		loss.RatString(), variant == pak.FSImproved))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsquad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	lossStr := fs.String("loss", "1/10", "per-message loss probability")
	variantStr := fs.String("variant", "original", `protocol variant: "original" or "improved"`)
	samples := fs.Int("samples", 0, "Monte-Carlo samples for cross-validation (0 disables)")
	seed := fs.Int64("seed", 1, "Monte-Carlo seed")
	dump := fs.Bool("dump", false, "print the unfolded system tree")
	sweep := fs.Bool("sweep", false, "print the loss-sensitivity sweep for both variants and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "Usage: fsquad [-loss 1/10] [-variant original|improved] [-samples 0] [-seed 1] [-dump] [-sweep]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, `
The analysis battery runs as one parallel EvalBatch over a shared
engine; the system builds from the scenario registry ("fsquad" in
SCENARIOS.md).

Examples:
  fsquad                                 the paper's parameters (µ = 99/100)
  fsquad -variant improved               the Section 8 refinement (990/991)
  fsquad -loss 1/4 -samples 60000        exact values + a Monte-Carlo cross-check
  fsquad -sweep                          loss-sensitivity table for both variants
`)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *sweep {
		if err := sweepLoss(stdout); err != nil {
			fmt.Fprintf(stderr, "fsquad: %v\n", err)
			return 1
		}
		return 0
	}

	loss, err := ratutil.Parse(*lossStr)
	if err != nil {
		fmt.Fprintf(stderr, "fsquad: -loss: %v\n", err)
		return 2
	}
	var variant pak.FSVariant
	switch *variantStr {
	case "original":
		variant = pak.FSOriginal
	case "improved":
		variant = pak.FSImproved
	default:
		fmt.Fprintf(stderr, "fsquad: unknown variant %q\n", *variantStr)
		return 2
	}

	sys, err := buildFSquad(loss, variant)
	if err != nil {
		fmt.Fprintf(stderr, "fsquad: %v\n", err)
		return 1
	}
	if *dump {
		fmt.Fprint(stdout, report.Section("Unfolded system", sys.Dump()))
	}

	if err := analyze(stdout, sys, variant, *samples, *seed, loss); err != nil {
		fmt.Fprintf(stderr, "fsquad: %v\n", err)
		return 1
	}
	return 0
}

func analyze(w io.Writer, sys *pak.System, variant pak.FSVariant, samples int, seed int64, loss interface{ RatString() string }) error {
	e := pak.NewEngine(sys)
	both := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
	fireB := pak.Does("Bob", "fire")
	spec := ratutil.MustParse("95/100")

	// The whole analysis as one parallel batch over the shared engine.
	const (
		idxConstraint = iota
		idxExpectation
		idxThreshold
		idxBeliefFireB
		idxBeliefBoth
		idxThmExpectation
		idxThmPAK
	)
	results, err := pak.EvalBatch(e, []pak.Query{
		pak.ConstraintQuery{Fact: both, Agent: "Alice", Action: "fire", Threshold: spec},
		pak.ExpectationQuery{Fact: both, Agent: "Alice", Action: "fire"},
		pak.ThresholdQuery{Fact: both, Agent: "Alice", Action: "fire", P: spec},
		pak.BeliefQuery{Fact: fireB, Agent: "Alice", Action: "fire"},
		pak.BeliefQuery{Fact: both, Agent: "Alice", Action: "fire"},
		pak.TheoremQuery{Theorem: pak.TheoremExpectation, Fact: both, Agent: "Alice", Action: "fire"},
		pak.TheoremQuery{Theorem: pak.TheoremPAK, Fact: both, Agent: "Alice", Action: "fire",
			Eps: ratutil.MustParse("1/10")},
	})
	if err != nil {
		return err
	}
	mu := results[idxConstraint].Value
	exp := results[idxExpectation].Value
	tm := results[idxThreshold].Value

	summary := report.NewTable("quantity", "exact", "decimal")
	summary.AddRow("variant", variant.String(), "")
	summary.AddRow("per-message loss", loss.RatString(), "")
	summary.AddRow("runs / nodes", fmt.Sprintf("%d / %d", sys.NumRuns(), sys.NumNodes()-1), "")
	summary.AddRow("µ(φ_both @ fire_A | fire_A)", mu.RatString(), mu.FloatString(6))
	summary.AddRow("E[β_A(φ_both) @ fire_A | fire_A]", exp.RatString(), exp.FloatString(6))
	summary.AddRow("µ(β ≥ 0.95 | fire_A)", tm.RatString(), tm.FloatString(6))
	summary.AddRow("spec µ ≥ 0.95 satisfied", fmt.Sprintf("%v", results[idxConstraint].Passed()), "")
	fmt.Fprint(w, report.Section("Relaxed firing squad (Example 1)", summary.Render()))

	// Alice's information states and her beliefs about Bob's firing.
	byState := results[idxBeliefFireB].Values
	byStateBoth := results[idxBeliefBoth].Values
	states := make([]string, 0, len(byState))
	for s := range byState {
		states = append(states, s)
	}
	sort.Strings(states)
	beliefs := report.NewTable("Alice's state when firing", "β_A(fire_B)", "β_A(φ_both)")
	for _, s := range states {
		beliefs.AddRow(s, byState[s].RatString(), byStateBoth[s].RatString())
	}
	fmt.Fprint(w, report.Section("Alice's beliefs when firing", beliefs.Render()))

	// Theorem checks.
	expRep := results[idxThmExpectation]
	thms := report.NewTable("result", "verdict")
	thms.AddRow("Theorem 6.2: µ(φ@α|α) = E[β(φ)@α|α]", holdsStr(expRep.Passed() && expRep.Flags["equal"]))
	thms.AddRow("Corollary 7.2 (ε=1/10): µ(β ≥ 9/10 | α) ≥ 9/10", holdsStr(results[idxThmPAK].Passed()))
	fmt.Fprint(w, report.Section("Theorem checks", thms.Render()))

	if samples > 0 {
		s := pak.NewSampler(sys, seed)
		perf, perr := e.PerformedSet("Alice", "fire")
		if perr != nil {
			return perr
		}
		ev, perr := e.FactAtAction(both, "Alice", "fire")
		if perr != nil {
			return perr
		}
		est, perr := s.EstimateConditional(
			func(r pak.RunID) bool { return ev.Contains(int(r)) },
			func(r pak.RunID) bool { return perf.Contains(int(r)) },
			samples,
		)
		if perr != nil {
			return perr
		}
		mc := report.NewTable("quantity", "sampled", "exact", "within 99% CI")
		mc.AddRow("µ(φ_both | fire_A)", est.String(), mu.FloatString(6),
			est.Contains(ratutil.Float(mu)))
		fmt.Fprint(w, report.Section("Monte-Carlo cross-check", mc.Render()))
	}
	return nil
}

// sweepLoss prints µ(φ_both | fire_A) for both variants across a grid of
// loss probabilities, alongside the derived closed forms 1−ℓ² and
// (1−ℓ²)/(1−ℓ²(1−ℓ)).
func sweepLoss(w io.Writer) error {
	tb := report.NewTable("loss ℓ", "µ FS (=1−ℓ²)", "µ FS-improved", "gain")
	for _, lossStr := range []string{"1/100", "1/20", "1/10", "1/4", "1/2", "3/4", "9/10"} {
		loss := ratutil.MustParse(lossStr)
		values := make(map[pak.FSVariant]string, 2)
		var muOrig, muImpr string
		for _, variant := range []pak.FSVariant{pak.FSOriginal, pak.FSImproved} {
			sys, err := buildFSquad(loss, variant)
			if err != nil {
				return err
			}
			both := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
			res, err := pak.Eval(pak.NewEngine(sys),
				pak.ConstraintQuery{Fact: both, Agent: "Alice", Action: "fire"})
			if err != nil {
				return err
			}
			mu := res.Value
			values[variant] = mu.FloatString(6)
			if variant == pak.FSOriginal {
				muOrig = mu.RatString()
			} else {
				muImpr = mu.RatString()
			}
		}
		tb.AddRow(lossStr,
			fmt.Sprintf("%s (%s)", values[pak.FSOriginal], muOrig),
			fmt.Sprintf("%s (%s)", values[pak.FSImproved], muImpr),
			gain(values[pak.FSOriginal], values[pak.FSImproved]))
	}
	fmt.Fprint(w, report.Section("Loss sensitivity (Example 1 vs Section 8)", tb.Render()))
	return nil
}

// gain marks rows where the improvement is visible at 6 decimals.
func gain(orig, improved string) string {
	if improved > orig {
		return "improved wins"
	}
	return "-"
}

func holdsStr(ok bool) string {
	if ok {
		return "holds"
	}
	return "VIOLATED"
}
