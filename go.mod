module pak

go 1.24
