package pak

import (
	"context"
	"sync/atomic"

	"pak/internal/core"
	"pak/internal/query"
	"pak/internal/registry"
	"pak/internal/service"
)

// Adversary sweeps, re-exported: the space-valued scenario specs of
// internal/registry ("sweep(nsquad,loss=0.0..0.5/0.1)") and the query
// layer's envelope evaluation over them. A sweep names the whole
// adversary space of systems obtained by ranging rat/int parameters;
// resolving it yields one canonical system spec per assignment, and the
// envelope of any single-valued query folds over those instances — the
// paper's Section 2 quantification over adversaries as one call. The
// pakd service exposes the same evaluation as POST /v1/envelope (+
// /v1/envelope/stream); `pakcheck -sweep` renders it progressively.
type (
	// SweepSpec is the grammar-level form of a space-valued spec.
	SweepSpec = registry.SpaceSpec
	// SweepRange is one swept parameter's lo..hi/step progression.
	SweepRange = registry.SweepRange
	// ResolvedSweep is a space spec bound against the registry: the
	// adversary space plus the enumerated canonical instances.
	ResolvedSweep = registry.ResolvedSpace
	// SweepInstance is one enumerated assignment with its canonical
	// system spec (the engine-cache key).
	SweepInstance = registry.SpaceInstance

	// EnvelopeQuery wraps a single-valued query with the compiled space
	// items; EvalEnvelope / EnvelopeStream evaluate it.
	EnvelopeQuery = query.EnvelopeQuery
	// EnvelopeItem pairs one assignment with its engine.
	EnvelopeItem = query.EnvelopeItem
	// EnvelopeRange is the min/max/witness answer of an envelope, with
	// the visited/total accounting that labels partial sweeps.
	EnvelopeRange = query.Range
	// EnvelopeFrame is one emission of a streamed envelope: an
	// assignment's result plus the running envelope, or the terminal
	// status frame carrying the final one.
	EnvelopeFrame = query.EnvelopeFrame
	// EnvelopeOutcome is the buffered envelope answer: the envelope
	// result, per-assignment slots, and how the sweep ended.
	EnvelopeOutcome = query.EnvelopeOutcome
	// MetricQuery evaluates an opaque Go metric as a query (in-process
	// only; it refuses to serialize) — the escape hatch for sweeping
	// quantities the wire grammar does not name.
	MetricQuery = query.MetricQuery
)

// KindEnvelope and KindMetric extend the query kinds.
const (
	KindEnvelope = query.KindEnvelope
	KindMetric   = query.KindMetric
)

// ParseSweepSpec parses a space-valued spec at the grammar level,
// without consulting the registry (the sweep analogue of ParseSpec's
// grammar half). It never panics.
func ParseSweepSpec(spec string) (SweepSpec, error) { return registry.ParseSpaceSpec(spec) }

// ResolveSweep binds a space-valued spec against the built-in registry:
// ranges expand under their declared kinds and every assignment
// resolves to its canonical system spec.
func ResolveSweep(spec string) (*ResolvedSweep, error) {
	return registry.Default().ResolveSpace(spec)
}

// sweepEngines is the process-wide engine cache the in-process sweep
// path shares with repeated SweepItems calls: one memoizing engine per
// canonical spec under singleflight builds, exactly the machinery pakd
// uses — a second sweep over an overlapping space pays zero rebuilds.
var sweepEngines = service.NewEngineCache(128)

// SweepItems builds the envelope items for a resolved sweep: one engine
// per assignment, obtained from the shared in-process engine cache
// keyed by canonical spec (built through the registry on first use).
// Builds run serially in assignment order, each cold engine seeded from
// its predecessor: neighbouring assignments of one sweep share run
// structure, so shape-equal neighbours hand their perf/events memo
// tables forward (see core.NewSeeded for the soundness line).
func SweepItems(rs *ResolvedSweep) ([]EnvelopeItem, error) {
	insts := rs.Instances()
	items := make([]EnvelopeItem, len(insts))
	var prev *core.Engine
	for i, inst := range insts {
		eng, _, err := buildSweepEngine(inst.Canonical, prev)
		if err != nil {
			return nil, err
		}
		prev = eng
		items[i] = EnvelopeItem{
			Assignment: inst.Assignment.String(),
			Spec:       inst.Canonical,
			Engine:     eng,
		}
	}
	return items, nil
}

// SweepItemsLazy builds lazy envelope items for a resolved sweep: each
// assignment's engine builds through the shared cache only when the
// envelope evaluator's first worker reaches that assignment, so a
// progressive sweep (`pakcheck -sweep`) prints its first row as soon as
// the first engine is up instead of waiting behind every build. Cold
// builds seed their memo tables from the first engine the sweep
// completed, when shapes match. Build errors surface on the
// assignment's slot exactly as a failed eager build would.
func SweepItemsLazy(rs *ResolvedSweep) []EnvelopeItem {
	insts := rs.Instances()
	items := make([]EnvelopeItem, len(insts))
	var seed atomic.Pointer[core.Engine]
	for i, inst := range insts {
		inst := inst
		items[i] = EnvelopeItem{
			Assignment: inst.Assignment.String(),
			Spec:       inst.Canonical,
			Source: func(context.Context) (query.Engines, error) {
				eng, shared, err := buildSweepEngine(inst.Canonical, seed.Load())
				if err != nil {
					return query.Engines{}, err
				}
				if !seed.CompareAndSwap(nil, eng) && !shared {
					// The published seed has a different shape (a sweep
					// endpoint like loss=0 prunes zero-weight branches
					// from its unfold); publish this engine instead so
					// the rest of its shape-class still shares.
					seed.Store(eng)
				}
				return query.Engines{Engine: eng}, nil
			},
		}
	}
	return items
}

// buildSweepEngine resolves one canonical spec through the shared sweep
// cache, seeding a cold build's memo tables from neighbour when the two
// systems are shape-equal (a cache hit ignores the seed: the cached
// engine's tables are already warm, and reports shared=true so callers
// don't demote their seed over it).
func buildSweepEngine(canonical string, neighbour *core.Engine) (*core.Engine, bool, error) {
	shared := true
	eng, err := sweepEngines.Get(canonical, func() (*core.Engine, error) {
		sys, err := registry.Default().Build(canonical)
		if err != nil {
			return nil, err
		}
		eng, s := core.NewSeeded(sys, neighbour)
		shared = s || neighbour == nil
		return eng, nil
	})
	return eng, shared, err
}

// IsEnvelopeSkip reports whether a slot error is a skip (the quantity
// is undefined under that assignment) rather than a hard failure.
func IsEnvelopeSkip(err error) bool { return query.IsEnvelopeSkip(err) }

// EnvelopeFailure renders a slot slice's hard failures (neither skips
// nor context cuts) for error reports, in assignment order.
func EnvelopeFailure(slots []QueryResult) string { return query.EnvelopeFailure(slots) }

// EvalEnvelope evaluates an envelope to completion (buffered). See
// EvalBatch's options: WithParallelism bounds the worker pool,
// WithEvalContext makes the sweep cooperatively cancellable — a
// deadline mid-sweep yields a sound partial envelope labeled with the
// visited-assignment count.
func EvalEnvelope(q EnvelopeQuery, opts ...EvalOption) (EnvelopeOutcome, error) {
	return query.EvalEnvelope(q, opts...)
}

// EnvelopeStream evaluates an envelope progressively: one frame per
// assignment as its worker finishes, each carrying the running
// envelope, then a terminal frame with the final one.
func EnvelopeStream(q EnvelopeQuery, opts ...EvalOption) (<-chan EnvelopeFrame, error) {
	return query.EnvelopeStream(q, opts...)
}

// SampledEnvelope is EvalEnvelopeSampled's answer: the exact envelope
// over the surviving candidate assignments plus the pruning ledger and
// the coarse pass's per-assignment estimates.
type SampledEnvelope = query.SampledEnvelope

// EvalEnvelopeSampled is the sampled-first envelope sweep: a coarse,
// seeded approx pass estimates every assignment, then exact evaluation
// runs only where an assignment's confidence interval shows it could
// still attain the envelope's min or max. Pruned assignments are never
// exactly evaluated, so the result is correct with probability at least
// 1 − N·Delta (union bound) rather than with certainty — the trade
// that makes sweeping spaces too large for EvalEnvelope feasible. A
// non-approximable inner query falls back to the exhaustive sweep.
func EvalEnvelopeSampled(q EnvelopeQuery, spec ApproxSpec, opts ...EvalOption) (SampledEnvelope, error) {
	return query.EvalEnvelopeSampled(q, spec, opts...)
}

// EvalSweep is the one-call form: resolve the space against the
// built-in registry, build (or reuse) the instance engines through the
// shared cache, and evaluate the inner query's envelope.
func EvalSweep(spec string, inner Query, opts ...EvalOption) (EnvelopeOutcome, error) {
	rs, err := ResolveSweep(spec)
	if err != nil {
		return EnvelopeOutcome{}, err
	}
	items, err := SweepItems(rs)
	if err != nil {
		return EnvelopeOutcome{}, err
	}
	return EvalEnvelope(EnvelopeQuery{Inner: inner, Items: items}, opts...)
}

// WithServiceMaxAssignments caps the adversary-space assignments one
// /v1/envelope request may sweep.
func WithServiceMaxAssignments(n int) ServiceOption { return service.WithMaxAssignments(n) }

// Envelope wire types, re-exported alongside the other service shapes.
type (
	// ServiceEnvelopeRequest is the POST /v1/envelope body: a space
	// spec plus one query document.
	ServiceEnvelopeRequest = service.EnvelopeRequest
	// ServiceEnvelopeResponse is the buffered envelope answer.
	ServiceEnvelopeResponse = service.EnvelopeResponse
	// ServiceAssignmentResult is one assignment's slice of the answer.
	ServiceAssignmentResult = service.AssignmentResult
	// ServiceEnvelopeResultFrame is one /v1/envelope/stream result line.
	ServiceEnvelopeResultFrame = service.EnvelopeResultFrame
	// ServiceEnvelopeStatusFrame is the stream's terminal line.
	ServiceEnvelopeStatusFrame = service.EnvelopeStatusFrame
	// EnvelopeRangeDoc is the envelope's wire form (exact RatString
	// bounds, witness assignments, visited/total accounting).
	EnvelopeRangeDoc = query.RangeDoc
)
