package pak

import (
	"math/big"

	"pak/internal/commonbelief"
	"pak/internal/montecarlo"
	"pak/internal/msgnet"
	"pak/internal/protocol"
)

// Protocol layer (paper Section 2.2), re-exported.
type (
	// Model is a synchronous joint protocol with bounded horizon.
	Model = protocol.Model
	// FuncModel adapts plain functions into a Model.
	FuncModel = protocol.FuncModel
	// Global is a global state: environment plus per-agent locals.
	Global = protocol.Global
	// WeightedAction pairs an action with its probability in a mixed step.
	WeightedAction = protocol.Weighted[string]
	// WeightedGlobal pairs an initial global state with its probability.
	WeightedGlobal = protocol.Weighted[protocol.Global]
)

// Unfold expands a joint protocol into the pps containing exactly its
// executions, with local states automatically time-stamped for synchrony.
func Unfold(m Model) (*System, error) { return protocol.Unfold(m) }

// Det returns the deterministic action distribution on a single action.
func Det(action string) []WeightedAction { return protocol.Det(action) }

// Mix returns a mixed action distribution.
func Mix(outcomes ...WeightedAction) []WeightedAction { return protocol.Mix(outcomes...) }

// WithProb pairs an action with a probability for use in Mix.
func WithProb(action string, pr *big.Rat) WeightedAction { return protocol.W(action, pr) }

// InitialState pairs an initial global state with a probability.
func InitialState(g Global, pr *big.Rat) WeightedGlobal { return protocol.W(g, pr) }

// Lossy message network substrate (Example 1's channel).
type (
	// Net is a synchronous network losing each message independently with
	// a fixed probability.
	Net = msgnet.Net
	// Msg is a message in flight during one round.
	Msg = msgnet.Msg
)

// NewNet returns a network with the given per-message loss probability.
func NewNet(loss *big.Rat) (Net, error) { return msgnet.New(loss) }

// DeliveryPatterns returns the environment's mixed action for a round in
// which msgs are sent: a distribution over delivery-pattern strings.
func DeliveryPatterns(n Net, msgs []Msg) []WeightedAction { return n.Patterns(msgs) }

// Inbox returns the payloads delivered to an agent under a pattern.
func Inbox(msgs []Msg, envAct string, to int) ([]string, error) {
	return msgnet.Inbox(msgs, envAct, to)
}

// Monte-Carlo estimation, re-exported.
type (
	// Sampler draws runs from a System according to µ_T.
	Sampler = montecarlo.Sampler
	// ProtocolSampler simulates a Model without unfolding it.
	ProtocolSampler = montecarlo.ProtocolSampler
	// Trace is one simulated protocol execution.
	Trace = montecarlo.Trace
	// Estimate is a sampled probability with a Hoeffding confidence radius.
	Estimate = montecarlo.Estimate
)

// NewSampler returns a seeded run sampler over sys.
func NewSampler(sys *System, seed int64) *Sampler { return montecarlo.NewSampler(sys, seed) }

// NewProtocolSampler returns a seeded execution sampler for m.
func NewProtocolSampler(m Model, seed int64) *ProtocolSampler {
	return montecarlo.NewProtocolSampler(m, seed)
}

// Probabilistic common belief (Monderer–Samet), re-exported.

// Slice is a fixed-time epistemic view of a System supporting B_i^p,
// E_G^p and C_G^p queries.
type Slice = commonbelief.Slice

// NewSlice builds the time-t epistemic view of sys.
func NewSlice(sys *System, t int) (*Slice, error) { return commonbelief.NewSlice(sys, t) }
