package pak_test

import (
	"testing"

	"pak"
)

// TestPublicAPIQuickstart walks the full public surface the way the
// quickstart example does: build a system, query beliefs, check theorems.
func TestPublicAPIQuickstart(t *testing.T) {
	// A tiny diagnosis system: a patient is sick with probability 1/4; a
	// test is 90% accurate; the doctor treats when the test is positive.
	b := pak.NewBuilder("doctor", "patient")
	sick := b.Init(pak.Rat(1, 4), "world", "d0", "sick")
	well := b.Init(pak.Rat(3, 4), "world", "d0", "well")
	// Test outcomes.
	sickPos := b.Child(sick, pak.Step{Pr: pak.Rat(9, 10), Acts: []string{"test", "none"},
		Env: "world", Locals: []string{"d1:pos", "sick'"}})
	sickNeg := b.Child(sick, pak.Step{Pr: pak.Rat(1, 10), Acts: []string{"test", "none"},
		Env: "world", Locals: []string{"d1:neg", "sick''"}})
	wellPos := b.Child(well, pak.Step{Pr: pak.Rat(1, 10), Acts: []string{"test", "none"},
		Env: "world", Locals: []string{"d1:pos", "well'"}})
	wellNeg := b.Child(well, pak.Step{Pr: pak.Rat(9, 10), Acts: []string{"test", "none"},
		Env: "world", Locals: []string{"d1:neg", "well''"}})
	// The doctor treats exactly on a positive test.
	for _, n := range []pak.NodeID{sickPos, wellPos} {
		b.Child(n, pak.Step{Pr: pak.One(), Acts: []string{"treat", "none"},
			Env: "world", Locals: []string{"d2:" + itoa(int(n)), "p2:" + itoa(int(n))}})
	}
	for _, n := range []pak.NodeID{sickNeg, wellNeg} {
		b.Child(n, pak.Step{Pr: pak.One(), Acts: []string{"wait", "none"},
			Env: "world", Locals: []string{"d2:" + itoa(int(n)), "p2:" + itoa(int(n))}})
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	e := pak.NewEngine(sys)
	isSick := pak.LocalContains("patient", "sick")

	// Bayes: µ(sick | treat) = (1/4·9/10) / (1/4·9/10 + 3/4·1/10) = 3/4.
	mu, err := e.ConstraintProb(isSick, "doctor", "treat")
	if err != nil {
		t.Fatal(err)
	}
	if mu.RatString() != "3/4" {
		t.Fatalf("µ(sick|treat) = %s, want 3/4", mu.RatString())
	}

	// Theorem 6.2 through the facade.
	rep, err := e.CheckExpectation(isSick, "doctor", "treat")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Independent || !rep.Equal() {
		t.Fatalf("expectation check failed: %v", rep)
	}

	// Classifiers.
	if !pak.IsPastBased(sys, isSick) {
		t.Error("patient state should be past-based")
	}
	if !pak.IsRunBased(sys, pak.Performed("doctor", "treat")) {
		t.Error("Performed should be run-based")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

// TestPublicAPIPaperSystems exercises the re-exported paper constructions.
func TestPublicAPIPaperSystems(t *testing.T) {
	fs, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	e := pak.NewEngine(fs)
	both := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
	mu, err := e.ConstraintProb(both, "Alice", "fire")
	if err != nil {
		t.Fatal(err)
	}
	if mu.RatString() != "99/100" {
		t.Fatalf("µ = %s", mu.RatString())
	}

	that, err := pak.That(pak.Rat(9, 10), pak.Rat(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if that.NumRuns() != 3 {
		t.Fatalf("T-hat runs = %d", that.NumRuns())
	}

	fig1, err := pak.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if fig1.NumRuns() != 2 {
		t.Fatalf("Figure 1 runs = %d", fig1.NumRuns())
	}
}

// TestPublicAPIProtocolAndSampling exercises Unfold, the message network
// and the samplers through the facade.
func TestPublicAPIProtocolAndSampling(t *testing.T) {
	net, err := pak.NewNet(pak.Rat(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	// One agent sends itself a message through the lossy channel; the
	// environment decides delivery.
	msgs := []pak.Msg{{From: 0, To: 0, Payload: "ping"}}
	m := pak.FuncModel{
		AgentNames: []string{"i"},
		Init: []pak.WeightedGlobal{
			pak.InitialState(pak.Global{Env: "e", Locals: []string{"start"}}, pak.One()),
		},
		Step: func(agent int, local string, tt int) []pak.WeightedAction {
			return pak.Det("send")
		},
		Env: func(g pak.Global, acts []string, tt int) []pak.WeightedAction {
			return pak.DeliveryPatterns(net, msgs)
		},
		Trans: func(g pak.Global, acts []string, envAct string, tt int) (pak.Global, error) {
			inbox, err := pak.Inbox(msgs, envAct, 0)
			if err != nil {
				return pak.Global{}, err
			}
			if len(inbox) > 0 {
				return pak.Global{Env: "e", Locals: []string{"recv"}}, nil
			}
			return pak.Global{Env: "e", Locals: []string{"lost"}}, nil
		},
		Bound: 1,
	}
	sys, err := pak.Unfold(m)
	if err != nil {
		t.Fatal(err)
	}
	got := pak.RunsSatisfying(sys, pak.Sometime(pak.LocalContains("i", "recv")))
	if sys.Measure(got).RatString() != "3/4" {
		t.Fatalf("delivery measure = %s, want 3/4", sys.Measure(got).RatString())
	}

	s := pak.NewSampler(sys, 1)
	est, err := s.EstimateEvent(func(r pak.RunID) bool { return got.Contains(int(r)) }, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(0.75) {
		t.Fatalf("estimate %v does not contain 0.75", est)
	}

	ps := pak.NewProtocolSampler(m, 2)
	est, err = ps.EstimateTrace(func(tr pak.Trace) bool {
		return tr.States[1].Locals[0] == "recv"
	}, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(0.75) {
		t.Fatalf("protocol estimate %v does not contain 0.75", est)
	}
}

// TestPublicAPIAdversaryAndEncode exercises the adversary and codec paths.
func TestPublicAPIAdversaryAndEncode(t *testing.T) {
	space, err := pak.NewSpace(pak.Choice{Name: "variant", Options: []string{"orig", "improved"}})
	if err != nil {
		t.Fatal(err)
	}
	instances, err := pak.Resolve(space, func(a pak.Assignment) (*pak.System, error) {
		v := pak.FSOriginal
		if a["variant"] == "improved" {
			v = pak.FSImproved
		}
		return pak.FiringSquad(pak.Rat(1, 10), v)
	})
	if err != nil {
		t.Fatal(err)
	}
	both := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
	env, err := pak.ConstraintEnvelope(instances, both, "Alice", "fire")
	if err != nil {
		t.Fatal(err)
	}
	if env.Min.RatString() != "99/100" || env.Max.RatString() != "990/991" {
		t.Fatalf("envelope = [%v, %v]", env.Min, env.Max)
	}

	data, err := pak.MarshalSystem(instances[0].System)
	if err != nil {
		t.Fatal(err)
	}
	back, err := pak.UnmarshalSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRuns() != instances[0].System.NumRuns() {
		t.Fatal("round trip changed run count")
	}

	f, err := pak.ParseFact([]byte(`{"op":"does","agent":"Alice","action":"fire"}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "does_Alice(fire)" {
		t.Fatalf("parsed fact = %v", f)
	}
}

// TestPublicAPICommonBelief exercises the group-epistemics surface.
func TestPublicAPICommonBelief(t *testing.T) {
	sys, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	slice, err := pak.NewSlice(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	both := pak.RunsSatisfying(sys, pak.Sometime(
		pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))))
	c, err := slice.CommonP([]pak.AgentID{0, 1}, both, pak.Rat(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if c.IsEmpty() {
		t.Error("common 1/2-belief of joint firing should be attainable in FS")
	}
}

// TestPublicAPIRandomSystems exercises the random-generation surface.
func TestPublicAPIRandomSystems(t *testing.T) {
	sys, err := pak.RandSystem(pak.RandDefault(5))
	if err != nil {
		t.Fatal(err)
	}
	e := pak.NewEngine(sys)
	rep, err := e.CheckExpectation(pak.RandPastFact(sys, 6), "a0", "alpha*")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds() {
		t.Fatalf("Theorem 6.2 failed on random system: %v", rep)
	}
	if !pak.IsRunBased(sys, pak.RandRunFact(sys, 7)) {
		t.Error("RandRunFact should be run-based")
	}
}

// TestPublicAPIAuditAndTimeline exercises the extended analysis surface.
func TestPublicAPIAuditAndTimeline(t *testing.T) {
	sys, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	engine := pak.NewEngine(sys)
	both := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))

	audit, err := engine.AuditConstraint(both, "Alice", "fire", pak.Rat(95, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Satisfied || !audit.AllTheoremsHold() {
		t.Fatalf("audit = %v", audit)
	}
	if audit.Refrain.Predicted.RatString() != "990/991" {
		t.Fatalf("refrain prediction = %v", audit.Refrain.Predicted)
	}

	// Belief timeline along a run where Alice receives 'Yes'.
	goOn := pak.Sometime(both)
	for r := 0; r < sys.NumRuns(); r++ {
		run := pak.RunID(r)
		if sys.RunLen(run) > 2 && sys.Local(run, 2, 0) == "t2|go=1,sent,recv=Yes" {
			tl, err := engine.BeliefTimeline(goOn, "Alice", run)
			if err != nil {
				t.Fatal(err)
			}
			if len(tl) != 4 || !tl[3].Knows {
				t.Fatalf("timeline = %v", tl)
			}
			break
		}
	}

	// Jeffrey decomposition through the facade.
	d, err := engine.Decompose(both, "Alice", "fire")
	if err != nil {
		t.Fatal(err)
	}
	if !d.WeightsSumToOne() || !d.LemmaB1Holds() {
		t.Fatalf("decomposition = %+v", d)
	}

	// Temporal operators.
	if !pak.IsPastBased(sys, pak.Once(pak.LocalContains("Alice", "go=1"))) {
		t.Error("Once of a past-based fact should be past-based")
	}
	if !pak.IsRunBased(sys, pak.AtTime(0, pak.LocalContains("Alice", "go=1"))) {
		t.Error("AtTime facts are run-based")
	}
	if !pak.DoesAny("Alice", "noop", "fire").Holds(sys, 0, 0) {
		t.Error("DoesAny should match one of the actions at t0")
	}
}

// TestPublicAPINSquad exercises the n-agent scenario through the facade.
func TestPublicAPINSquad(t *testing.T) {
	sys, err := pak.NFiringSquadSystem(3, pak.Rat(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	engine := pak.NewEngine(sys)
	mu, err := engine.ConstraintProb(pak.AllFire(3), "General", "fire")
	if err != nil {
		t.Fatal(err)
	}
	if mu.RatString() != "9801/10000" {
		t.Fatalf("n=3 µ = %s, want 9801/10000", mu.RatString())
	}
}

// TestPublicAPIWrapperSweep exercises the remaining thin facade wrappers
// so the public surface is fully covered.
func TestPublicAPIWrapperSweep(t *testing.T) {
	sys, err := pak.Figure1()
	if err != nil {
		t.Fatal(err)
	}

	// Rational helpers.
	if pak.MustRat("1/2").RatString() != "1/2" {
		t.Error("MustRat")
	}
	if _, err := pak.ParseRat("zzz"); err == nil {
		t.Error("ParseRat should fail on garbage")
	}
	if pak.Zero().Sign() != 0 || pak.One().RatString() != "1" {
		t.Error("Zero/One")
	}

	// Boolean and temporal wrappers evaluated on Figure 1.
	cases := []struct {
		name string
		f    pak.Fact
		want bool
	}{
		{"True", pak.True(), true},
		{"False", pak.False(), false},
		{"Or", pak.Or(pak.False(), pak.True()), true},
		{"Implies", pak.Implies(pak.True(), pak.False()), false},
		{"Iff", pak.Iff(pak.False(), pak.False()), true},
		{"Not", pak.Not(pak.False()), true},
		{"EnvIs", pak.EnvIs("e0"), true},
		{"TimeIs", pak.TimeIs(0), true},
		{"LocalIs", pak.LocalIs("i", "g0"), true},
		{"Atom", pak.Atom("always", func(*pak.System, pak.RunID, int) bool { return true }), true},
		{"Always", pak.Always(pak.True()), true},
		{"Sometime", pak.Sometime(pak.EnvIs("e1")), true},
		{"Eventually", pak.Eventually(pak.EnvIs("e1")), true},
		{"Henceforth", pak.Henceforth(pak.True()), true},
		{"SoFar", pak.SoFar(pak.True()), true},
	}
	for _, tc := range cases {
		if got := tc.f.Holds(sys, 0, 0); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}

	// Group epistemic wrappers.
	group := []string{"i"}
	eb := pak.EveryoneBelieves(group, pak.Rat(1, 2), pak.True())
	mb := pak.MutualBelief(group, pak.Rat(1, 2), pak.True(), 2)
	if !eb.Holds(sys, 0, 0) || !mb.Holds(sys, 0, 0) {
		t.Error("EveryoneBelieves/MutualBelief on a tautology should hold")
	}
	if !pak.Knows("i", pak.True()).Holds(sys, 0, 0) {
		t.Error("Knows(true) should hold")
	}

	// Paper model + scenario wrappers.
	if _, err := pak.FiringSquadModel(pak.Rat(1, 10), pak.FSImproved); err != nil {
		t.Errorf("FiringSquadModel: %v", err)
	}
	if _, err := pak.MutexModel(pak.Rat(1, 10)); err != nil {
		t.Errorf("MutexModel: %v", err)
	}
	if _, err := pak.ConsensusModel(pak.Rat(1, 10)); err != nil {
		t.Errorf("ConsensusModel: %v", err)
	}
	if _, err := pak.UnfoldThat(pak.Rat(9, 10), pak.Rat(1, 10)); err != nil {
		t.Errorf("UnfoldThat: %v", err)
	}

	// Builder facade root constant.
	if pak.Root != 0 {
		t.Error("Root should be node 0")
	}
}
