package pak

import (
	"pak/internal/registry"
)

// The scenario registry, re-exported from internal/registry: every
// ready-made system addressable by a compact spec string — "fsquad",
// "nsquad(5)", "random(seed=42,agents=3)" — with self-describing
// metadata (params, defaults, descriptions), so CLIs, services and
// programs reference systems by name + params instead of shipping
// system JSON. See SCENARIOS.md for the generated catalog.
type (
	// ScenarioRegistry maps scenario names to builders; safe for
	// concurrent use.
	ScenarioRegistry = registry.Registry
	// Scenario is one registered system family: name, description, the
	// paper construct it exercises, parameters and builder.
	Scenario = registry.Scenario
	// ScenarioParam declares one scenario parameter (name, kind,
	// default, doc).
	ScenarioParam = registry.Param
	// ScenarioParamKind is a parameter's value type (rat, int, bool,
	// string).
	ScenarioParamKind = registry.ParamKind
	// ScenarioArgs is a validated argument set ready for a scenario's
	// builder.
	ScenarioArgs = registry.Args
)

// Scenario parameter kinds.
const (
	ScenarioRat    = registry.KindRat
	ScenarioInt    = registry.KindInt
	ScenarioBool   = registry.KindBool
	ScenarioString = registry.KindString
)

// Registry errors.
var (
	// ErrUnknownScenario indicates a spec naming no registered scenario.
	ErrUnknownScenario = registry.ErrUnknownScenario
	// ErrBadScenarioSpec indicates a malformed spec string or parameters
	// outside their declared kind or domain.
	ErrBadScenarioSpec = registry.ErrBadSpec
)

// Scenarios returns the process-wide registry holding the built-in
// scenarios (fsquad, nsquad, mutex, consensus, that, figure1, random).
// Callers may Register their own scenarios on it; NewScenarioRegistry
// gives an isolated registry instead.
func Scenarios() *ScenarioRegistry { return registry.Default() }

// NewScenarioRegistry returns an empty registry, for callers that want
// a catalog isolated from the built-ins.
func NewScenarioRegistry() *ScenarioRegistry { return registry.New() }

// BuildScenario resolves a spec like "nsquad(5)" or
// "random(seed=42,agents=3)" against the built-in registry and
// constructs its system. Omitted parameters take their declared
// defaults.
func BuildScenario(spec string) (*System, error) { return registry.Default().Build(spec) }

// ScenarioCatalog renders the built-in registry as the SCENARIOS.md
// markdown catalog (the document `make docs` regenerates).
func ScenarioCatalog() string { return registry.Default().Markdown() }
