package pak

import (
	"math/big"

	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
	"pak/internal/runset"
)

// Core model types, re-exported from the internal packages. Aliases keep
// values interchangeable between the facade and the internal APIs.
type (
	// System is a validated finite purely probabilistic system (pps): a
	// labelled probability tree whose paths are runs.
	System = pps.System
	// Builder constructs a System incrementally; errors are sticky and
	// reported by Build.
	Builder = pps.Builder
	// Step describes one child transition when building a System.
	Step = pps.Step
	// NodeID identifies a tree node (Root = 0 is the distribution root λ).
	NodeID = pps.NodeID
	// RunID identifies a run.
	RunID = pps.RunID
	// AgentID indexes an agent.
	AgentID = pps.AgentID
	// RunSet is an event: a subset of the system's runs.
	RunSet = runset.Set

	// Fact is a (possibly transient) condition over points of a system.
	Fact = logic.Fact

	// Engine answers belief, constraint and theorem queries over a System.
	Engine = core.Engine

	// SufficiencyReport is the result of checking Theorem 4.2.
	SufficiencyReport = core.SufficiencyReport
	// ExpectationReport is the result of checking Theorem 6.2.
	ExpectationReport = core.ExpectationReport
	// NecessityReport is the result of checking Lemma 5.1.
	NecessityReport = core.NecessityReport
	// PAKReport is the result of checking Theorem 7.1 / Corollary 7.2.
	PAKReport = core.PAKReport
	// KoPReport is the result of checking Lemma F.1.
	KoPReport = core.KoPReport
	// IndependenceReport is the result of checking Definition 4.1.
	IndependenceReport = core.IndependenceReport
	// IndependenceWitness explains independence via Lemma 4.3.
	IndependenceWitness = core.IndependenceWitness
)

// Root is the NodeID of the distribution root λ.
const Root = pps.Root

// NewBuilder returns a Builder for a system over the given agents.
func NewBuilder(agents ...string) *Builder { return pps.NewBuilder(agents...) }

// NewEngine returns an analysis engine bound to sys.
func NewEngine(sys *System) *Engine { return core.New(sys) }

// NewEngineSeeded returns an engine bound to sys that shares its
// measure-independent memoization (the performance and fact-extension
// tables) with neighbour when the two systems have the same shape —
// identical labels per (run, time), probabilities free to differ. That
// is exactly the relationship between assignments of one adversary
// sweep, so seeding each engine from a neighbour makes a sweep pay the
// structural scans once instead of once per assignment. Sharing is
// sound because those tables never read the run measure; the
// measure-dependent tables (beliefs, independence reports) stay
// private. shared reports whether sharing engaged (false on a nil
// neighbour or a shape mismatch, in which case the engine is simply
// fresh).
func NewEngineSeeded(sys *System, neighbour *Engine) (e *Engine, shared bool) {
	return core.NewSeeded(sys, neighbour)
}

// Rational constructors, re-exported for building systems and thresholds.

// Rat returns the exact rational a/b (panics if b == 0).
func Rat(a, b int64) *big.Rat { return ratutil.R(a, b) }

// ParseRat parses "1/2", "0.25" or "3" into an exact rational.
func ParseRat(s string) (*big.Rat, error) { return ratutil.Parse(s) }

// MustRat is ParseRat, panicking on error; for constants.
func MustRat(s string) *big.Rat { return ratutil.MustParse(s) }

// One returns a fresh rational 1.
func One() *big.Rat { return ratutil.One() }

// Zero returns a fresh rational 0.
func Zero() *big.Rat { return ratutil.Zero() }

// Fact constructors, re-exported from package logic.

// True returns the fact that holds at every point.
func True() Fact { return logic.True() }

// False returns the fact that holds at no point.
func False() Fact { return logic.False() }

// Does returns the transient fact does_i(α): agent performs action at the
// current point.
func Does(agent, action string) Fact { return logic.Does(agent, action) }

// Performed returns the run-based fact that agent performs action at some
// point of the current run (the paper's fact written simply as α).
func Performed(agent, action string) Fact { return logic.Performed(agent, action) }

// LocalIs returns the fact that agent's local state equals local.
func LocalIs(agent, local string) Fact { return logic.LocalIs(agent, local) }

// LocalContains returns the fact that agent's local state contains substr.
func LocalContains(agent, substr string) Fact { return logic.LocalContains(agent, substr) }

// EnvIs returns the fact that the environment state equals env.
func EnvIs(env string) Fact { return logic.EnvIs(env) }

// TimeIs returns the fact that the current time equals t.
func TimeIs(t int) Fact { return logic.TimeIs(t) }

// Atom returns a fact from an arbitrary pure point predicate.
func Atom(name string, pred func(sys *System, r RunID, t int) bool) Fact {
	return logic.Atom(name, pred)
}

// Not returns ¬φ.
func Not(f Fact) Fact { return logic.Not(f) }

// And returns the conjunction of fs.
func And(fs ...Fact) Fact { return logic.And(fs...) }

// Or returns the disjunction of fs.
func Or(fs ...Fact) Fact { return logic.Or(fs...) }

// Implies returns p → q.
func Implies(p, q Fact) Fact { return logic.Implies(p, q) }

// Iff returns p ↔ q.
func Iff(p, q Fact) Fact { return logic.Iff(p, q) }

// Sometime lifts φ to the run-based fact "φ holds at some point of the
// current run".
func Sometime(f Fact) Fact { return logic.Sometime(f) }

// Always lifts φ to the run-based fact "φ holds at every point of the
// current run".
func Always(f Fact) Fact { return logic.Always(f) }

// IsRunBased reports whether f is a fact about runs in sys.
func IsRunBased(sys *System, f Fact) bool { return logic.IsRunBased(sys, f) }

// IsPastBased reports whether f is past-based in sys (Lemma 4.3(b)'s
// sufficient condition for local-state independence).
func IsPastBased(sys *System, f Fact) bool { return logic.IsPastBased(sys, f) }

// RunsSatisfying returns the event of runs satisfying the (run-based) fact.
func RunsSatisfying(sys *System, f Fact) *RunSet { return logic.RunsSatisfying(sys, f) }
