package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", "99/100")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// All lines align to the same width.
	w := len([]rune(lines[0]))
	for _, l := range lines[1:] {
		if len([]rune(strings.TrimRight(l, " "))) > w {
			t.Fatalf("misaligned line %q", l)
		}
	}
	if !strings.Contains(out, "a-much-longer-name  99/100") {
		t.Fatalf("row content missing:\n%s", out)
	}
}

func TestRenderUnicodeWidths(t *testing.T) {
	tb := NewTable("µ(φ@α|α)", "E[β]")
	tb.AddRow("99/100", "99/100")
	out := tb.Render()
	if !strings.Contains(out, "µ(φ@α|α)") {
		t.Fatalf("unicode header mangled:\n%s", out)
	}
	// The separator under the unicode header must have its rune length.
	lines := strings.Split(out, "\n")
	if len([]rune(strings.Fields(lines[1])[0])) != len([]rune("µ(φ@α|α)")) {
		t.Fatalf("separator width wrong: %q", lines[1])
	}
}

func TestRowPaddingAndTruncation(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "ignored-extra")
	out := tb.Render()
	if strings.Contains(out, "ignored-extra") {
		t.Fatalf("extra cell leaked:\n%s", out)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("exp", "paper", "measured")
	tb.AddRow("E1", "0.99", "99/100")
	tb.AddRow("E2", "a|b", "c")
	md := tb.Markdown()
	want := []string{
		"| exp | paper | measured |",
		"| --- | --- | --- |",
		"| E1 | 0.99 | 99/100 |",
		`| E2 | a\|b | c |`,
	}
	for _, w := range want {
		if !strings.Contains(md, w) {
			t.Errorf("markdown missing %q:\n%s", w, md)
		}
	}
}

func TestSection(t *testing.T) {
	s := Section("Title", "body")
	if !strings.HasPrefix(s, "Title\n=====\n\nbody\n") {
		t.Fatalf("Section = %q", s)
	}
	// Trailing newline is not duplicated.
	s2 := Section("T", "body\n")
	if strings.Contains(s2, "body\n\n\n") {
		t.Fatalf("Section duplicated newlines: %q", s2)
	}
}
