// Package report renders aligned text and Markdown tables for the
// command-line tools and the experiment harness.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: append([]string(nil), header...)}
}

// AddRow appends a row; cells are formatted with %v. Rows shorter than the
// header are padded, longer ones are truncated.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprintf("%v", cells[i])
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.header))
	for i, h := range t.header {
		w[i] = runeLen(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if l := runeLen(cell); l > w[i] {
				w[i] = l
			}
		}
	}
	return w
}

// runeLen counts runes (probability strings and fact names use multibyte
// symbols such as µ and β).
func runeLen(s string) int { return len([]rune(s)) }

// pad right-pads s with spaces to width w.
func pad(s string, w int) string {
	if n := w - runeLen(s); n > 0 {
		return s + strings.Repeat(" ", n)
	}
	return s
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	w := t.widths()
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, w[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown returns the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("| ")
		b.WriteString(strings.Join(cells, " | "))
		b.WriteString(" |\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.rows {
		escaped := make([]string, len(row))
		for i, c := range row {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		writeRow(escaped)
	}
	return b.String()
}

// Section renders a titled block: the title, an underline, and the body.
func Section(title, body string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("=", runeLen(title)))
	b.WriteString("\n\n")
	b.WriteString(body)
	if !strings.HasSuffix(body, "\n") {
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	return b.String()
}
