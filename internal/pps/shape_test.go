package pps

// The shape-signature differential: SameShape now compares cached
// canonical signatures, and these tests hold the signature encoding to
// sameShapeWalk — the direct label-by-label reading — across systems
// that agree, differ in measure only, differ in one label, or carry
// labels crafted to collide under a naive (non-length-prefixed)
// encoding.

import (
	"testing"

	"pak/internal/ratutil"
)

// squadLike builds a 2-agent, 2-run system parameterised by a measure
// and a handful of labels, so tests can perturb one dimension at a time.
func squadLike(t *testing.T, prNum int64, env1, act0, local1 string) *System {
	t.Helper()
	b := NewBuilder("i", "j")
	g0 := b.Init(ratutil.One(), "e0", "g0", "h0")
	b.Child(g0, Step{Pr: ratutil.R(prNum, 10), Acts: []string{act0, "wait"}, Env: env1, Locals: []string{local1, "h1"}})
	b.Child(g0, Step{Pr: ratutil.R(10-prNum, 10), Acts: []string{"beta", "wait"}, Env: "e2", Locals: []string{"g2", "h1"}})
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSameShapeMatchesWalk is the differential: on every pair drawn from
// a family of perturbed systems, the signature comparison and the direct
// walk must agree — including the diagonal (a system against a
// separately-built copy of itself) and the measure-only perturbation,
// which must NOT break shape equality.
func TestSameShapeMatchesWalk(t *testing.T) {
	family := []*System{
		squadLike(t, 3, "e1", "alpha", "g1"),
		squadLike(t, 3, "e1", "alpha", "g1"), // identical rebuild
		squadLike(t, 7, "e1", "alpha", "g1"), // measure differs, shape equal
		squadLike(t, 3, "eX", "alpha", "g1"), // env label differs
		squadLike(t, 3, "e1", "gamma", "g1"), // action label differs
		squadLike(t, 3, "e1", "alpha", "gX"), // local label differs
		buildDiamond(t),                      // different agents / arity
	}
	for i, a := range family {
		for j, b := range family {
			got, want := SameShape(a, b), sameShapeWalk(a, b)
			if got != want {
				t.Errorf("pair (%d,%d): signature says %v, walk says %v", i, j, got, want)
			}
			if i == j && !got {
				t.Errorf("system %d not same-shape as itself", i)
			}
		}
	}
	if !SameShape(family[0], family[2]) {
		t.Error("measure-only perturbation broke shape equality; sweeps could never share")
	}
	if SameShape(family[0], family[3]) {
		t.Error("env relabel kept shape equality; sharing would be unsound")
	}
}

// TestSameShapeNil pins the nil contract the walk had.
func TestSameShapeNil(t *testing.T) {
	sys := buildDiamond(t)
	if !SameShape(nil, nil) {
		t.Error("SameShape(nil, nil) = false")
	}
	if SameShape(sys, nil) || SameShape(nil, sys) {
		t.Error("nil compared equal to a real system")
	}
}

// TestShapeSignatureInjective feeds labels designed to collide under a
// concatenating encoding — one system's env ends where another's local
// begins — and requires the length-prefixed signature to keep them
// apart, in agreement with the walk.
func TestShapeSignatureInjective(t *testing.T) {
	build := func(env, local string) *System {
		b := NewBuilder("i")
		g0 := b.Init(ratutil.One(), "e0", "g0")
		b.Child(g0, Step{Pr: ratutil.One(), Acts: []string{"a"}, Env: env, Locals: []string{local}})
		sys, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	// "ab"+"c" vs "a"+"bc", plus labels embedding the delimiter bytes.
	pairs := [][2]*System{
		{build("ab", "c"), build("a", "bc")},
		{build("1:x", "y"), build("1:", "xy")},
		{build("e;2", "g"), build("e", ";2g")},
	}
	for i, p := range pairs {
		if SameShape(p[0], p[1]) {
			t.Errorf("pair %d: crafted labels collided in the signature", i)
		}
		if sameShapeWalk(p[0], p[1]) {
			t.Errorf("pair %d: walk also confused the labels; test is vacuous", i)
		}
	}
}
