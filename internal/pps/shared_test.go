package pps

import (
	"testing"

	"pak/internal/ratutil"
)

// The shared read paths (OccursShared, RunProbShared, EdgeProbShared)
// exist for hot internal callers: they return the engine's own storage
// with a MUST-NOT-MUTATE contract, while the public Occurs / RunProb /
// EdgeProb keep their clone-on-return contract (pinned by TestOccurs
// and TestEdgeProbIsCopy). This test pins both halves: value equality,
// aliasing of the shared path, and isolation of the public path.

func TestSharedReadPathsAliasAndAgree(t *testing.T) {
	sys := buildDiamond(t)

	// Value agreement on every surface.
	occShared, tmS, okS := sys.OccursShared(0, "g0")
	occPublic, tmP, okP := sys.Occurs(0, "g0")
	if !okS || !okP || tmS != tmP || occShared.Count() != occPublic.Count() {
		t.Fatalf("OccursShared = (%v,%d,%v), Occurs = (%v,%d,%v)",
			occShared, tmS, okS, occPublic, tmP, okP)
	}
	if _, _, ok := sys.OccursShared(0, "nope"); ok {
		t.Fatal("OccursShared(nonexistent) should be false")
	}
	for r := RunID(0); r < RunID(sys.NumRuns()); r++ {
		if !ratutil.Eq(sys.RunProbShared(r), sys.RunProb(r)) {
			t.Fatalf("RunProbShared(%d) disagrees with RunProb", r)
		}
	}
	child := sys.ChildrenOf(Root)[0]
	if !ratutil.Eq(sys.EdgeProbShared(child), sys.EdgeProb(child)) {
		t.Fatal("EdgeProbShared disagrees with EdgeProb")
	}
	if sys.EdgeProbShared(Root) != nil {
		t.Fatal("EdgeProbShared(Root) should be nil")
	}

	// The shared path aliases internal storage: repeated shared reads
	// return the same object (no clone per call) …
	occShared2, _, _ := sys.OccursShared(0, "g0")
	if occShared != occShared2 {
		t.Fatal("OccursShared cloned; the shared path must return internal storage")
	}
	if sys.RunProbShared(0) != sys.RunProbShared(0) {
		t.Fatal("RunProbShared cloned; the shared path must return internal storage")
	}
	if sys.EdgeProbShared(child) != sys.EdgeProbShared(child) {
		t.Fatal("EdgeProbShared cloned; the shared path must return internal storage")
	}

	// … while the public path stays isolated: mutating a public result
	// never reaches the storage the shared path exposes.
	occPublic.Remove(0)
	if got, _, _ := sys.OccursShared(0, "g0"); got.Count() != 2 {
		t.Fatal("mutating Occurs' clone corrupted shared storage")
	}
	pr := sys.RunProb(0)
	pr.SetInt64(0)
	if sys.RunProbShared(0).Sign() == 0 {
		t.Fatal("mutating RunProb's clone corrupted shared storage")
	}
}
