package pps

import (
	"fmt"
	"sync"
	"testing"

	"pak/internal/ratutil"
	"pak/internal/runset"
)

// Kernel ≡ naive property tests: every public measure operation must be
// byte-identical (RatString) to the direct big.Rat reference fold, on
// both kernel tiers. The naive fold is MeasureNaive; the conditional
// references divide naive measures the way the pre-kernel code did.

// naiveCond is the reference µ(a|b): materialize a∩b, divide measures.
func naiveCond(sys *System, a, b *runset.Set) (string, bool) {
	mb := sys.MeasureNaive(b)
	if mb.Sign() == 0 {
		return "", false
	}
	return ratutil.Div(sys.MeasureNaive(a.Intersect(b)), mb).RatString(), true
}

// checkKernelAgainstNaive cross-checks every kernel operation against
// the reference fold on one (system, a, b) triple.
func checkKernelAgainstNaive(t *testing.T, sys *System, a, b *runset.Set, label string) {
	t.Helper()
	if got, want := sys.Measure(a).RatString(), sys.MeasureNaive(a).RatString(); got != want {
		t.Fatalf("%s: Measure = %s, naive %s", label, got, want)
	}
	if got, want := sys.MeasureIntersect(a, b).RatString(), sys.MeasureNaive(a.Intersect(b)).RatString(); got != want {
		t.Fatalf("%s: MeasureIntersect = %s, naive %s", label, got, want)
	}
	var runs []int
	a.ForEach(func(r int) bool { runs = append(runs, r); return true })
	if got, want := sys.MeasureRuns(runs).RatString(), sys.MeasureNaive(a).RatString(); got != want {
		t.Fatalf("%s: MeasureRuns = %s, naive %s", label, got, want)
	}
	cond, okC := sys.Cond(a, b)
	wantCond, wantOK := naiveCond(sys, a, b)
	if okC != wantOK {
		t.Fatalf("%s: Cond ok = %v, naive %v", label, okC, wantOK)
	}
	if okC && cond.RatString() != wantCond {
		t.Fatalf("%s: Cond = %s, naive %s", label, cond.RatString(), wantCond)
	}
	if !okC && !b.IsEmpty() {
		t.Fatalf("%s: Cond failed on a non-empty conditioning event", label)
	}
	joint, okJ := sys.CondIntersect(a, b, b)
	if !b.IsEmpty() {
		wantJoint, _ := naiveCond(sys, a.Intersect(b), b)
		if !okJ || joint.RatString() != wantJoint {
			t.Fatalf("%s: CondIntersect = (%v, %v), naive %s", label, joint, okJ, wantJoint)
		}
	} else if okJ {
		t.Fatalf("%s: CondIntersect succeeded on an empty conditioning event", label)
	}
}

// edgeEvents are the boundary events every system is checked at: empty,
// full, and each singleton.
func checkKernelEdgeEvents(t *testing.T, sys *System, label string) {
	t.Helper()
	empty := sys.NewSet()
	full := sys.NewSet().Complement()
	if got := sys.Measure(empty).RatString(); got != "0" {
		t.Fatalf("%s: µ(∅) = %s", label, got)
	}
	if got := sys.Measure(full).RatString(); got != "1" {
		t.Fatalf("%s: µ(R) = %s", label, got)
	}
	if !ratutil.IsOne(sys.TotalMeasure()) {
		t.Fatalf("%s: TotalMeasure = %s", label, sys.TotalMeasure().RatString())
	}
	if _, ok := sys.Cond(full, empty); ok {
		t.Fatalf("%s: Cond(·|∅) succeeded", label)
	}
	for r := 0; r < sys.NumRuns(); r++ {
		single := sys.NewSet()
		single.Add(r)
		if got, want := sys.Measure(single).RatString(), sys.RunProb(RunID(r)).RatString(); got != want {
			t.Fatalf("%s: µ({%d}) = %s, RunProb %s", label, r, got, want)
		}
		cond, ok := sys.Cond(single, full)
		if !ok || cond.RatString() != sys.RunProb(RunID(r)).RatString() {
			t.Fatalf("%s: µ({%d}|R) = (%v, %v)", label, r, cond, ok)
		}
	}
}

// TestKernelMatchesNaiveRandomTrees sweeps random systems and random
// events through every kernel operation against the reference fold.
func TestKernelMatchesNaiveRandomTrees(t *testing.T) {
	for sysSeed := int64(0); sysSeed < 25; sysSeed++ {
		sys, err := randomTree(sysSeed)
		if err != nil {
			t.Fatalf("seed %d: %v", sysSeed, err)
		}
		if sys.measureKernel().nums64 == nil {
			t.Fatalf("seed %d: random tree unexpectedly in the big tier", sysSeed)
		}
		checkKernelEdgeEvents(t, sys, fmt.Sprintf("seed %d", sysSeed))
		for evSeed := int64(0); evSeed < 8; evSeed++ {
			a := randomEvent(sys, evSeed)
			b := randomEvent(sys, evSeed+100)
			checkKernelAgainstNaive(t, sys, a, b, fmt.Sprintf("seed %d/ev %d", sysSeed, evSeed))
		}
	}
}

// bigTierTree builds a system whose shared denominator exceeds a
// uint64: three tree levels with distinct ~2³² prime denominators make
// D ≈ 2⁹⁶, forcing the kernel's big.Int fallback.
func bigTierTree(t *testing.T) *System {
	t.Helper()
	const (
		p1 = 4294967291 // 2³² − 5
		p2 = 4294967279
		p3 = 4294967231
	)
	b := NewBuilder("i")
	g0 := b.Init(ratutil.One(), "e", "g0")
	lvl1 := []NodeID{
		b.Child(g0, Step{Pr: ratutil.R(1, p1), Acts: []string{"a"}, Env: "e", Locals: []string{"g1a"}}),
		b.Child(g0, Step{Pr: ratutil.R(p1-1, p1), Acts: []string{"b"}, Env: "e", Locals: []string{"g1b"}}),
	}
	var lvl2 []NodeID
	for n, u := range lvl1 {
		lvl2 = append(lvl2,
			b.Child(u, Step{Pr: ratutil.R(1, p2), Acts: []string{"a"}, Env: "e", Locals: []string{fmt.Sprintf("g2a%d", n)}}),
			b.Child(u, Step{Pr: ratutil.R(p2-1, p2), Acts: []string{"b"}, Env: "e", Locals: []string{fmt.Sprintf("g2b%d", n)}}))
	}
	for n, u := range lvl2 {
		b.Child(u, Step{Pr: ratutil.R(1, p3), Acts: []string{"a"}, Env: "e", Locals: []string{fmt.Sprintf("g3a%d", n)}})
		b.Child(u, Step{Pr: ratutil.R(p3-1, p3), Acts: []string{"b"}, Env: "e", Locals: []string{fmt.Sprintf("g3b%d", n)}})
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sys
}

// TestKernelBigTier runs the same cross-checks on a system whose shared
// denominator overflows uint64, exercising the big.Int tier.
func TestKernelBigTier(t *testing.T) {
	sys := bigTierTree(t)
	k := sys.measureKernel()
	if k.numsBig == nil || k.nums64 != nil {
		t.Fatal("big-denominator system did not select the big tier")
	}
	if k.denom.IsUint64() {
		t.Fatalf("D = %s fits uint64; the tree does not force the big tier", k.denom)
	}
	checkKernelEdgeEvents(t, sys, "big tier")
	for evSeed := int64(0); evSeed < 8; evSeed++ {
		a := randomEvent(sys, evSeed)
		b := randomEvent(sys, evSeed+100)
		checkKernelAgainstNaive(t, sys, a, b, fmt.Sprintf("big tier/ev %d", evSeed))
	}
}

// TestKernelUint64TierSelected pins the fast tier on a small system.
func TestKernelUint64TierSelected(t *testing.T) {
	sys := buildDiamond(t)
	k := sys.measureKernel()
	if k.nums64 == nil || k.numsBig != nil {
		t.Fatal("small system did not select the uint64 tier")
	}
	if k.denom.String() != "2" {
		t.Fatalf("diamond D = %s, want 2", k.denom)
	}
}

// TestKernelConcurrentFirstUse hammers the lazy kernel build from many
// goroutines (run under -race): every caller must see one consistent
// kernel and identical answers.
func TestKernelConcurrentFirstUse(t *testing.T) {
	sys, err := randomTree(3)
	if err != nil {
		t.Fatal(err)
	}
	ev := randomEvent(sys, 1)
	want := sys.MeasureNaive(ev).RatString()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				if got := sys.Measure(ev).RatString(); got != want {
					t.Errorf("concurrent Measure = %s, want %s", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Warm-path allocation pins (the kernel's raison d'être is one final
// reduction): a uint64-tier Measure allocates only the result Rat and
// the numerator it is reduced from; Cond adds nothing on top.
func TestKernelAllocsPinned(t *testing.T) {
	sys, err := randomTree(3)
	if err != nil {
		t.Fatal(err)
	}
	a := randomEvent(sys, 1)
	b := randomEvent(sys, 2)
	sys.Measure(a) // build the kernel outside the measured region

	if avg := testing.AllocsPerRun(200, func() { sys.Measure(a) }); avg > 6 {
		t.Errorf("warm Measure allocates %.1f objects/op, want ≤ 6", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { sys.Cond(a, b) }); avg > 8 {
		t.Errorf("warm Cond allocates %.1f objects/op, want ≤ 8", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { sys.MeasureIntersect(a, b) }); avg > 6 {
		t.Errorf("warm MeasureIntersect allocates %.1f objects/op, want ≤ 6", avg)
	}
}
