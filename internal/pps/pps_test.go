package pps

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pak/internal/ratutil"
)

// buildDiamond constructs the small two-run system of the paper's Figure 1:
// a single agent i, one initial state g0, and two leaves reached by
// performing α or α' with probability 1/2 each.
func buildDiamond(t *testing.T) *System {
	t.Helper()
	b := NewBuilder("i")
	g0 := b.Init(ratutil.One(), "e0", "g0")
	b.Child(g0, Step{Pr: ratutil.R(1, 2), Acts: []string{"alpha"}, Env: "e1", Locals: []string{"g1"}})
	b.Child(g0, Step{Pr: ratutil.R(1, 2), Acts: []string{"alpha'"}, Env: "e1", Locals: []string{"g1"}})
	sys, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sys
}

func TestBuildDiamond(t *testing.T) {
	sys := buildDiamond(t)
	if got := sys.NumRuns(); got != 2 {
		t.Fatalf("NumRuns = %d, want 2", got)
	}
	if got := sys.NumNodes(); got != 4 { // root + g0 + 2 leaves
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := sys.MaxTime(); got != 1 {
		t.Fatalf("MaxTime = %d, want 1", got)
	}
	for r := RunID(0); r < 2; r++ {
		if got := sys.RunProb(r); !ratutil.Eq(got, ratutil.R(1, 2)) {
			t.Errorf("RunProb(%d) = %v, want 1/2", r, got)
		}
		if got := sys.RunLen(r); got != 2 {
			t.Errorf("RunLen(%d) = %d, want 2", r, got)
		}
	}
	if !ratutil.IsOne(sys.TotalMeasure()) {
		t.Fatalf("TotalMeasure = %v, want 1", sys.TotalMeasure())
	}
}

func TestActions(t *testing.T) {
	sys := buildDiamond(t)
	act0, ok := sys.Action(0, 0, 0)
	if !ok || act0 != "alpha" {
		t.Fatalf("Action(run0, t0) = %q,%v; want alpha,true", act0, ok)
	}
	act1, ok := sys.Action(1, 0, 0)
	if !ok || act1 != "alpha'" {
		t.Fatalf("Action(run1, t0) = %q,%v; want alpha',true", act1, ok)
	}
	if _, ok := sys.Action(0, 1, 0); ok {
		t.Fatal("Action at final point should report ok=false")
	}
}

func TestLocalAndEnv(t *testing.T) {
	sys := buildDiamond(t)
	if got := sys.Local(0, 0, 0); got != "g0" {
		t.Errorf("Local(0,0) = %q", got)
	}
	if got := sys.Local(0, 1, 0); got != "g1" {
		t.Errorf("Local(0,1) = %q", got)
	}
	if got := sys.Env(0, 1); got != "e1" {
		t.Errorf("Env(0,1) = %q", got)
	}
}

func TestOccurs(t *testing.T) {
	sys := buildDiamond(t)
	ev, tm, ok := sys.Occurs(0, "g0")
	if !ok || tm != 0 || ev.Count() != 2 {
		t.Fatalf("Occurs(g0) = %v,%d,%v", ev, tm, ok)
	}
	ev, tm, ok = sys.Occurs(0, "g1")
	if !ok || tm != 1 || ev.Count() != 2 {
		t.Fatalf("Occurs(g1) = %v,%d,%v", ev, tm, ok)
	}
	if _, _, ok := sys.Occurs(0, "nope"); ok {
		t.Fatal("Occurs(nonexistent) should be false")
	}
	// The returned set must be a copy.
	ev, _, _ = sys.Occurs(0, "g0")
	ev.Remove(0)
	ev2, _, _ := sys.Occurs(0, "g0")
	if ev2.Count() != 2 {
		t.Fatal("Occurs returned aliased internal set")
	}
}

func TestLocalStates(t *testing.T) {
	sys := buildDiamond(t)
	got := sys.LocalStates(0)
	if len(got) != 2 || got[0] != "g0" || got[1] != "g1" {
		t.Fatalf("LocalStates = %v, want [g0 g1]", got)
	}
}

func TestMeasureAndCond(t *testing.T) {
	sys := buildDiamond(t)
	a := sys.RunsWhere(func(r RunID) bool {
		act, _ := sys.Action(r, 0, 0)
		return act == "alpha"
	})
	if got := sys.Measure(a); !ratutil.Eq(got, ratutil.R(1, 2)) {
		t.Fatalf("Measure(alpha runs) = %v, want 1/2", got)
	}
	cond, ok := sys.Cond(a, sys.FullSet())
	if !ok || !ratutil.Eq(cond, ratutil.R(1, 2)) {
		t.Fatalf("Cond = %v,%v", cond, ok)
	}
	if _, ok := sys.Cond(a, sys.NewSet()); ok {
		t.Fatal("Cond on empty event should report ok=false")
	}
}

func TestAgentIndex(t *testing.T) {
	sys := buildDiamond(t)
	id, ok := sys.AgentIndex("i")
	if !ok || id != 0 {
		t.Fatalf("AgentIndex(i) = %d,%v", id, ok)
	}
	if _, ok := sys.AgentIndex("nobody"); ok {
		t.Fatal("AgentIndex(nobody) should be false")
	}
	if got := sys.AgentName(0); got != "i" {
		t.Fatalf("AgentName(0) = %q", got)
	}
	agents := sys.Agents()
	agents[0] = "mutated"
	if sys.AgentName(0) != "i" {
		t.Fatal("Agents() returned aliased slice")
	}
}

func TestBuilderValidation(t *testing.T) {
	tests := []struct {
		name    string
		build   func() (*System, error)
		wantErr error
	}{
		{
			name: "no agents",
			build: func() (*System, error) {
				return NewBuilder().Build()
			},
			wantErr: ErrNoAgents,
		},
		{
			name: "duplicate agent",
			build: func() (*System, error) {
				return NewBuilder("a", "a").Build()
			},
			wantErr: ErrDuplicateAgent,
		},
		{
			name: "empty agent name",
			build: func() (*System, error) {
				return NewBuilder("").Build()
			},
			wantErr: ErrDuplicateAgent,
		},
		{
			name: "no initial states",
			build: func() (*System, error) {
				return NewBuilder("i").Build()
			},
			wantErr: ErrNoInitial,
		},
		{
			name: "zero probability",
			build: func() (*System, error) {
				b := NewBuilder("i")
				b.Init(ratutil.Zero(), "e", "l")
				return b.Build()
			},
			wantErr: ErrBadProb,
		},
		{
			name: "nil probability",
			build: func() (*System, error) {
				b := NewBuilder("i")
				b.Init(nil, "e", "l")
				return b.Build()
			},
			wantErr: ErrBadProb,
		},
		{
			name: "probability above one",
			build: func() (*System, error) {
				b := NewBuilder("i")
				b.Init(ratutil.R(3, 2), "e", "l")
				return b.Build()
			},
			wantErr: ErrBadProb,
		},
		{
			name: "probabilities do not sum to one",
			build: func() (*System, error) {
				b := NewBuilder("i")
				b.Init(ratutil.R(1, 2), "e", "l0")
				return b.Build()
			},
			wantErr: ErrProbSum,
		},
		{
			name: "child probabilities do not sum to one",
			build: func() (*System, error) {
				b := NewBuilder("i")
				g := b.Init(ratutil.One(), "e", "l0")
				b.Child(g, Step{Pr: ratutil.R(1, 3), Acts: []string{"a"}, Locals: []string{"l1"}})
				b.Child(g, Step{Pr: ratutil.R(1, 3), Acts: []string{"a"}, Locals: []string{"l1b"}})
				return b.Build()
			},
			wantErr: ErrProbSum,
		},
		{
			name: "wrong locals arity",
			build: func() (*System, error) {
				b := NewBuilder("i", "j")
				b.Init(ratutil.One(), "e", "only-one")
				return b.Build()
			},
			wantErr: ErrArity,
		},
		{
			name: "wrong acts arity",
			build: func() (*System, error) {
				b := NewBuilder("i")
				g := b.Init(ratutil.One(), "e", "l0")
				c := b.Child(g, Step{Pr: ratutil.One(), Acts: []string{"a"}, Locals: []string{"l1"}})
				b.Child(c, Step{Pr: ratutil.One(), Acts: []string{"a", "b"}, Locals: []string{"l2"}})
				return b.Build()
			},
			wantErr: ErrArity,
		},
		{
			name: "acts on initial state",
			build: func() (*System, error) {
				b := NewBuilder("i")
				b.addChild(Root, Step{Pr: ratutil.One(), Acts: []string{"a"}, Env: "e", Locals: []string{"l0"}})
				return b.Build()
			},
			wantErr: ErrArity,
		},
		{
			name: "child of root via Child",
			build: func() (*System, error) {
				b := NewBuilder("i")
				b.Child(Root, Step{Pr: ratutil.One(), Locals: []string{"l0"}})
				return b.Build()
			},
			wantErr: ErrBadParent,
		},
		{
			name: "unknown parent",
			build: func() (*System, error) {
				b := NewBuilder("i")
				b.Init(ratutil.One(), "e", "l0")
				b.Child(99, Step{Pr: ratutil.One(), Acts: []string{"a"}, Locals: []string{"l1"}})
				return b.Build()
			},
			wantErr: ErrBadParent,
		},
		{
			name: "synchrony violation",
			build: func() (*System, error) {
				b := NewBuilder("i")
				g := b.Init(ratutil.One(), "e", "same")
				b.Child(g, Step{Pr: ratutil.One(), Acts: []string{"a"}, Locals: []string{"same"}})
				return b.Build()
			},
			wantErr: ErrSynchrony,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sys, err := tt.build()
			if err == nil {
				t.Fatalf("Build succeeded (%v), want %v", sys, tt.wantErr)
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Build error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestStickyError(t *testing.T) {
	b := NewBuilder("i")
	b.Init(nil, "e", "l") // first error: bad prob
	id := b.Init(ratutil.One(), "e", "l2")
	if id != -1 {
		t.Fatalf("builder after error returned id %d, want -1", id)
	}
	if _, err := b.Build(); !errors.Is(err, ErrBadProb) {
		t.Fatalf("sticky error = %v, want ErrBadProb", err)
	}
	if b.Err() == nil {
		t.Fatal("Err() should report the sticky error")
	}
}

func TestBuilderCopiesProb(t *testing.T) {
	b := NewBuilder("i")
	p := ratutil.One()
	b.Init(p, "e", "l0")
	p.SetInt64(0) // caller mutates after handing it to the builder
	sys, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !ratutil.IsOne(sys.RunProb(0)) {
		t.Fatal("builder aliased caller's probability")
	}
}

func TestSynchronyAllowsSameStateAcrossAgents(t *testing.T) {
	// Two different agents may use the same local-state string at
	// different times; synchrony is per agent.
	b := NewBuilder("i", "j")
	g := b.Init(ratutil.One(), "e", "x", "y")
	b.Child(g, Step{Pr: ratutil.One(), Acts: []string{"a", "a"}, Locals: []string{"y", "x"}})
	if _, err := b.Build(); err != nil {
		t.Fatalf("cross-agent state reuse rejected: %v", err)
	}
}

func TestNodeAccessors(t *testing.T) {
	sys := buildDiamond(t)
	children := sys.ChildrenOf(Root)
	if len(children) != 1 {
		t.Fatalf("root children = %v", children)
	}
	g0 := children[0]
	if sys.ParentOf(g0) != Root || sys.DepthOf(g0) != 1 {
		t.Fatal("g0 parent/depth wrong")
	}
	if sys.EdgeProb(Root) != nil {
		t.Fatal("root EdgeProb should be nil")
	}
	if !ratutil.IsOne(sys.EdgeProb(g0)) {
		t.Fatal("g0 EdgeProb should be 1")
	}
	leaves := sys.ChildrenOf(g0)
	if len(leaves) != 2 || !sys.IsLeaf(leaves[0]) || sys.IsLeaf(g0) {
		t.Fatal("leaf structure wrong")
	}
	if got := sys.ActsOf(leaves[0]); len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("ActsOf = %v", got)
	}
	if got := sys.LocalsOf(g0); len(got) != 1 || got[0] != "g0" {
		t.Fatalf("LocalsOf = %v", got)
	}
	if got := sys.EnvOf(g0); got != "e0" {
		t.Fatalf("EnvOf = %q", got)
	}
}

func TestDumpAndString(t *testing.T) {
	sys := buildDiamond(t)
	d := sys.Dump()
	for _, want := range []string{"λ", "1/2", "alpha'", "g0"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
	if s := sys.String(); !strings.Contains(s, "runs=2") {
		t.Errorf("String = %q", s)
	}
}

// randomTree builds a random valid system and returns it. Probabilities at
// each node are a random composition of 1 summed from unit fractions.
func randomTree(seed int64) (*System, error) {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("i", "j")
	type frontier struct {
		id    NodeID
		depth int
	}
	// Random initial states.
	nInit := rng.Intn(3) + 1
	var front []frontier
	for k := 0; k < nInit; k++ {
		pr := ratutil.R(1, int64(nInit))
		id := b.Init(pr, "e", nameFor(0, k, "i"), nameFor(0, k, "j"))
		front = append(front, frontier{id, 1})
	}
	maxDepth := rng.Intn(4) + 2
	serial := 0
	for len(front) > 0 {
		f := front[0]
		front = front[1:]
		if f.depth >= maxDepth || rng.Intn(4) == 0 {
			continue // leaf
		}
		nKids := rng.Intn(3) + 1
		for k := 0; k < nKids; k++ {
			serial++
			id := b.Child(f.id, Step{
				Pr:     ratutil.R(1, int64(nKids)),
				Acts:   []string{actFor(rng), actFor(rng)},
				Env:    "e",
				Locals: []string{nameFor(f.depth, serial, "i"), nameFor(f.depth, serial, "j")},
			})
			front = append(front, frontier{id, f.depth + 1})
		}
	}
	return b.Build()
}

func nameFor(depth, serial int, agent string) string {
	return agent + "-" + string(rune('a'+depth)) + "-" + itoa(serial)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func actFor(rng *rand.Rand) string {
	return string(rune('a' + rng.Intn(3)))
}

// Property: every randomly generated valid tree has total measure exactly 1
// and positive probability on every run.
func TestQuickTotalMeasureIsOne(t *testing.T) {
	f := func(seed int64) bool {
		sys, err := randomTree(seed)
		if err != nil {
			t.Logf("seed %d: build error %v", seed, err)
			return false
		}
		if !ratutil.IsOne(sys.TotalMeasure()) {
			return false
		}
		for r := 0; r < sys.NumRuns(); r++ {
			if sys.RunProb(RunID(r)).Sign() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: runs through the same node at time t share an identical prefix.
func TestQuickSharedNodeMeansSharedPrefix(t *testing.T) {
	f := func(seed int64) bool {
		sys, err := randomTree(seed)
		if err != nil {
			return false
		}
		for r1 := 0; r1 < sys.NumRuns(); r1++ {
			for r2 := r1 + 1; r2 < sys.NumRuns(); r2++ {
				n := sys.RunLen(RunID(r1))
				if m := sys.RunLen(RunID(r2)); m < n {
					n = m
				}
				for tt := 0; tt < n; tt++ {
					if sys.NodeAt(RunID(r1), tt) == sys.NodeAt(RunID(r2), tt) {
						for u := 0; u <= tt; u++ {
							if sys.NodeAt(RunID(r1), u) != sys.NodeAt(RunID(r2), u) {
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
