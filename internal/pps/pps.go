// Package pps implements the paper's model of a finite purely probabilistic
// system (Section 2.1): a finite labelled directed tree T = (V, E, π) whose
// non-root nodes carry global states and whose edges carry transition
// probabilities in (0, 1] that sum to 1 at every internal node.
//
// The root λ exists only to define a distribution over the initial global
// states (its children). Every path from a child of the root to a leaf is a
// run; the prior probability µ_T of a run is the product of the edge
// probabilities along it, and the induced probability space is
// X_T = (R_T, 2^{R_T}, µ_T), with every subset of runs measurable.
//
// A global state is a tuple (ℓ_e, ℓ_1, ..., ℓ_n) of an environment state
// and one local state per agent. Following the paper we restrict attention
// to synchronous systems: every local state implicitly contains the current
// time, which we enforce structurally by rejecting systems in which the
// same local-state string appears at two different times (for the same
// agent). Consequently a given local state occurs at most once in any run,
// which is what makes the belief notation φ@ℓ_i well defined (Section 3).
//
// Actions are recorded on edges, mirroring the paper's convention that the
// environment's history component records which agent performed which
// action at which time: the fact does_i(α) holds at point (r, t) exactly if
// the edge from r(t) to r(t+1) records α for agent i.
//
// All probabilities are exact rationals (*math/big.Rat).
package pps

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"

	"pak/internal/ratutil"
	"pak/internal/runset"
)

// NodeID identifies a node of the tree. The root λ is node 0; it carries no
// global state.
type NodeID int

// Root is the NodeID of the distinguished root node λ.
const Root NodeID = 0

// RunID identifies a run (a root-child-to-leaf path), in the order runs
// were completed during Build (leftmost leaf first).
type RunID int

// AgentID indexes an agent within a system, in the order agents were given
// to NewBuilder.
type AgentID int

// Sentinel errors returned (wrapped) by Builder.Build and Builder methods.
var (
	// ErrNoInitial indicates the tree has no initial global states.
	ErrNoInitial = errors.New("pps: system has no initial global states")
	// ErrBadProb indicates an edge probability outside (0, 1].
	ErrBadProb = errors.New("pps: edge probability must be in (0,1]")
	// ErrProbSum indicates a node whose outgoing probabilities do not sum to 1.
	ErrProbSum = errors.New("pps: outgoing edge probabilities do not sum to 1")
	// ErrArity indicates a locals or acts slice whose length does not match
	// the number of agents.
	ErrArity = errors.New("pps: locals/acts arity does not match agent count")
	// ErrSynchrony indicates a local state that appears at two different
	// times, violating the synchrony assumption.
	ErrSynchrony = errors.New("pps: local state appears at two different times")
	// ErrBadParent indicates a Child call with an unknown or root parent in
	// an invalid position.
	ErrBadParent = errors.New("pps: invalid parent node")
	// ErrNoAgents indicates a builder constructed with no agents.
	ErrNoAgents = errors.New("pps: system must have at least one agent")
	// ErrDuplicateAgent indicates two agents with the same name.
	ErrDuplicateAgent = errors.New("pps: duplicate agent name")
)

// node is the internal representation of a tree node.
type node struct {
	parent   NodeID
	pr       *big.Rat // probability of the edge from parent; nil for the root
	children []NodeID
	depth    int // root = 0; a node at depth d corresponds to time d-1
	env      string
	locals   []string // one per agent; nil for the root
	acts     []string // actions performed at the parent state; nil for depth <= 1
	envAct   string   // environment action taken at the parent state
}

// localKey identifies a local state of a particular agent.
type localKey struct {
	agent AgentID
	local string
}

// occInfo records where a local state occurs: the set of runs containing it
// and the unique time at which it appears (unique by synchrony).
type occInfo struct {
	set  *runset.Set
	time int
}

// System is an immutable, validated purely probabilistic system. Create one
// with a Builder. All methods are safe for concurrent use.
type System struct {
	agents   []string
	agentIdx map[string]AgentID
	nodes    []node
	runs     [][]NodeID // runs[r][t] = node of run r at time t
	runPr    []*big.Rat
	occ      map[localKey]occInfo
	maxTime  int

	// floatOnce/floatProbs lazily cache the float64 view of runPr for the
	// MeasureFloat fast path.
	floatOnce  sync.Once
	floatProbs []float64

	// kernelOnce/kernel lazily cache the exact-arithmetic measure kernel:
	// the shared-denominator integer view of runPr that Measure, Cond and
	// the fused set-measure ops sum over (see measure.go).
	kernelOnce sync.Once
	kernel     *measureKernel

	// shapeOnce/shapeSig lazily cache the canonical shape signature that
	// SameShape compares (see shape.go).
	shapeOnce sync.Once
	shapeSig  string
}

// Step describes one child of an existing node: the transition probability,
// the joint action that produced it, and the new global state.
type Step struct {
	// Pr is the transition probability, required to be in (0, 1].
	Pr *big.Rat
	// Acts holds the action performed by each agent at the parent state,
	// indexed like the builder's agent list.
	Acts []string
	// EnvAct is the action taken by the environment at the parent state
	// (e.g. a message-delivery pattern). It may be empty.
	EnvAct string
	// Env is the environment component of the new global state.
	Env string
	// Locals holds the new local state of each agent.
	Locals []string
}

// Builder incrementally constructs a System. Errors encountered during
// construction are sticky: the first error is remembered and returned by
// Build, so construction code can chain calls without per-call checks.
type Builder struct {
	agents []string
	nodes  []node
	err    error
}

// NewBuilder returns a Builder for a system over the given agents. Agent
// names must be non-empty and distinct.
func NewBuilder(agents ...string) *Builder {
	b := &Builder{nodes: []node{{parent: -1, depth: 0}}}
	if len(agents) == 0 {
		b.fail(fmt.Errorf("%w", ErrNoAgents))
		return b
	}
	seen := make(map[string]bool, len(agents))
	for _, a := range agents {
		if a == "" {
			b.fail(fmt.Errorf("%w: empty agent name", ErrDuplicateAgent))
			return b
		}
		if seen[a] {
			b.fail(fmt.Errorf("%w: %q", ErrDuplicateAgent, a))
			return b
		}
		seen[a] = true
	}
	b.agents = append([]string(nil), agents...)
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Init adds an initial global state (a child of the root λ) chosen with
// probability pr, and returns its NodeID.
func (b *Builder) Init(pr *big.Rat, env string, locals ...string) NodeID {
	return b.addChild(Root, Step{Pr: pr, Env: env, Locals: locals})
}

// Child adds a successor of parent described by s and returns its NodeID.
// The parent must be an existing non-root node (use Init for children of
// the root).
func (b *Builder) Child(parent NodeID, s Step) NodeID {
	if parent == Root {
		b.fail(fmt.Errorf("%w: use Init for children of the root", ErrBadParent))
		return -1
	}
	return b.addChild(parent, s)
}

func (b *Builder) addChild(parent NodeID, s Step) NodeID {
	if b.err != nil {
		return -1
	}
	if parent < 0 || int(parent) >= len(b.nodes) {
		b.fail(fmt.Errorf("%w: node %d does not exist", ErrBadParent, parent))
		return -1
	}
	if s.Pr == nil || !ratutil.IsPositiveProb(s.Pr) {
		b.fail(fmt.Errorf("%w: got %v (parent %d)", ErrBadProb, s.Pr, parent))
		return -1
	}
	if len(s.Locals) != len(b.agents) {
		b.fail(fmt.Errorf("%w: %d locals for %d agents", ErrArity, len(s.Locals), len(b.agents)))
		return -1
	}
	depth := b.nodes[parent].depth + 1
	var acts []string
	if depth >= 2 {
		if len(s.Acts) != len(b.agents) {
			b.fail(fmt.Errorf("%w: %d acts for %d agents", ErrArity, len(s.Acts), len(b.agents)))
			return -1
		}
		acts = append([]string(nil), s.Acts...)
	} else if len(s.Acts) != 0 {
		b.fail(fmt.Errorf("%w: initial states cannot record actions", ErrArity))
		return -1
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, node{
		parent: parent,
		pr:     ratutil.Copy(s.Pr),
		depth:  depth,
		env:    s.Env,
		locals: append([]string(nil), s.Locals...),
		acts:   acts,
		envAct: s.EnvAct,
	})
	b.nodes[parent].children = append(b.nodes[parent].children, id)
	return id
}

// Build validates the tree and returns the immutable System. The builder
// must not be reused afterwards.
func (b *Builder) Build() (*System, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nodes[Root].children) == 0 {
		return nil, ErrNoInitial
	}
	// Outgoing probabilities at every internal node (including the root)
	// must sum to exactly 1.
	for id, n := range b.nodes {
		if len(n.children) == 0 {
			continue
		}
		total := new(big.Rat)
		for _, c := range n.children {
			total.Add(total, b.nodes[c].pr)
		}
		if !ratutil.IsOne(total) {
			return nil, fmt.Errorf("%w: node %d sums to %s", ErrProbSum, id, total.RatString())
		}
	}

	sys := &System{
		agents:   b.agents,
		agentIdx: make(map[string]AgentID, len(b.agents)),
		nodes:    b.nodes,
	}
	for i, a := range b.agents {
		sys.agentIdx[a] = AgentID(i)
	}

	// Enumerate runs by depth-first traversal (leftmost leaf first) and
	// compute their probabilities.
	var walk func(id NodeID, path []NodeID, pr *big.Rat)
	walk = func(id NodeID, path []NodeID, pr *big.Rat) {
		n := &sys.nodes[id]
		path = append(path, id)
		pr = ratutil.Mul(pr, n.pr)
		if len(n.children) == 0 {
			sys.runs = append(sys.runs, append([]NodeID(nil), path...))
			sys.runPr = append(sys.runPr, pr)
			if t := len(path) - 1; t > sys.maxTime {
				sys.maxTime = t
			}
			return
		}
		for _, c := range n.children {
			walk(c, path, pr)
		}
	}
	for _, c := range sys.nodes[Root].children {
		walk(c, nil, ratutil.One())
	}

	// Synchrony check and local-state occurrence index: every local-state
	// string must appear at a single depth, and we record which runs it
	// occurs in.
	sys.occ = make(map[localKey]occInfo)
	for r, path := range sys.runs {
		for t, id := range path {
			for a := range sys.agents {
				key := localKey{AgentID(a), sys.nodes[id].locals[a]}
				info, seen := sys.occ[key]
				if !seen {
					info = occInfo{set: runset.New(len(sys.runs)), time: t}
				} else if info.time != t {
					return nil, fmt.Errorf("%w: agent %q state %q at times %d and %d",
						ErrSynchrony, sys.agents[a], key.local, info.time, t)
				}
				info.set.Add(r)
				sys.occ[key] = info
			}
		}
	}
	return sys, nil
}

// Agents returns a copy of the agent names in index order.
func (s *System) Agents() []string { return append([]string(nil), s.agents...) }

// NumAgents returns the number of agents.
func (s *System) NumAgents() int { return len(s.agents) }

// AgentName returns the name of agent a.
func (s *System) AgentName(a AgentID) string { return s.agents[a] }

// AgentIndex resolves an agent name to its AgentID.
func (s *System) AgentIndex(name string) (AgentID, bool) {
	id, ok := s.agentIdx[name]
	return id, ok
}

// NumRuns returns |R_T|.
func (s *System) NumRuns() int { return len(s.runs) }

// NumNodes returns the number of tree nodes, including the root λ.
func (s *System) NumNodes() int { return len(s.nodes) }

// MaxTime returns the largest time index of any point in the system (i.e.
// the depth of the deepest leaf minus one).
func (s *System) MaxTime() int { return s.maxTime }

// RunLen returns the number of global states of run r (its points are
// times 0 .. RunLen(r)-1).
func (s *System) RunLen(r RunID) int { return len(s.runs[r]) }

// NodeAt returns the tree node of run r at time t. Two runs share a node
// exactly when they agree up to time t, which is the paper's notion used to
// define past-based facts.
func (s *System) NodeAt(r RunID, t int) NodeID { return s.runs[r][t] }

// RunProb returns µ_T(r) as a fresh rational.
func (s *System) RunProb(r RunID) *big.Rat { return ratutil.Copy(s.runPr[r]) }

// Env returns the environment state of run r at time t.
func (s *System) Env(r RunID, t int) string { return s.nodes[s.runs[r][t]].env }

// Local returns agent a's local state in run r at time t.
func (s *System) Local(r RunID, t int, a AgentID) string {
	return s.nodes[s.runs[r][t]].locals[a]
}

// Action returns the action performed by agent a at time t of run r, if
// any: does_a(α) holds at (r, t) exactly when Action(r, t, a) = (α, true).
// The second result is false when t is the final point of the run.
func (s *System) Action(r RunID, t int, a AgentID) (string, bool) {
	if t+1 >= len(s.runs[r]) {
		return "", false
	}
	return s.nodes[s.runs[r][t+1]].acts[a], true
}

// EnvAction returns the environment action taken at time t of run r, if
// any. The second result is false when t is the final point of the run.
func (s *System) EnvAction(r RunID, t int) (string, bool) {
	if t+1 >= len(s.runs[r]) {
		return "", false
	}
	return s.nodes[s.runs[r][t+1]].envAct, true
}

// NewSet returns an empty event (set of runs) over this system's runs.
func (s *System) NewSet() *runset.Set { return runset.New(len(s.runs)) }

// FullSet returns the event R_T containing every run.
func (s *System) FullSet() *runset.Set { return runset.Full(len(s.runs)) }

// RunsWhere returns the event of all runs satisfying pred.
func (s *System) RunsWhere(pred func(r RunID) bool) *runset.Set {
	set := s.NewSet()
	for r := range s.runs {
		if pred(RunID(r)) {
			set.Add(r)
		}
	}
	return set
}

// Occurs reports where agent a's local state ℓ occurs: the event of runs
// containing it and the unique time at which it appears. ok is false if the
// state never occurs in the system.
func (s *System) Occurs(a AgentID, local string) (ev *runset.Set, time int, ok bool) {
	info, found := s.occ[localKey{a, local}]
	if !found {
		return nil, 0, false
	}
	return info.set.Clone(), info.time, true
}

// OccursShared is Occurs without the defensive clone: the returned set
// is the system's own occurrence index and MUST NOT be mutated. It
// exists for engine-internal read paths (belief conditioning, the
// Definition 4.1 scan, sampling-time lookups) that only iterate or
// intersect the event; public callers keep the clone-on-return Occurs.
func (s *System) OccursShared(a AgentID, local string) (ev *runset.Set, time int, ok bool) {
	info, found := s.occ[localKey{a, local}]
	if !found {
		return nil, 0, false
	}
	return info.set, info.time, true
}

// RunProbShared is RunProb without the defensive copy: the returned
// rational is the system's own µ_T(r) and MUST NOT be mutated. For
// engine-internal folds that only read the value (big.Rat arithmetic
// never mutates its operands); public callers keep RunProb.
func (s *System) RunProbShared(r RunID) *big.Rat { return s.runPr[r] }

// LocalStates returns all local states of agent a that occur anywhere in
// the system, sorted lexicographically.
func (s *System) LocalStates(a AgentID) []string {
	var out []string
	for key := range s.occ {
		if key.agent == a {
			out = append(out, key.local)
		}
	}
	sort.Strings(out)
	return out
}

// TotalMeasure returns µ_T(R_T); it equals 1 in every valid system and is
// exposed for validation and property tests.
func (s *System) TotalMeasure() *big.Rat { return s.Measure(s.FullSet()) }

// String returns a short human-readable summary of the system.
func (s *System) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pps{agents=%v, nodes=%d, runs=%d, maxTime=%d}",
		s.agents, len(s.nodes)-1, len(s.runs), s.maxTime)
	return b.String()
}
