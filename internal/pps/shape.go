package pps

import (
	"strconv"
	"strings"
)

// SameShape reports whether two systems are label-identical: same agents
// (names and order), same number of runs, same per-run lengths, and the
// same environment state, local states, actions and environment action at
// every point (r, t). Probabilities are deliberately NOT compared — two
// systems of the same shape may weight their runs arbitrarily
// differently.
//
// SameShape is the soundness gate for structure sharing between engines
// (core.NewSeeded): every fact of the structural grammar evaluates
// Holds(sys, r, t) by reading only the labels SameShape compares (env,
// locals, acts, envAct, the time index and run lengths — never µ_T, and
// never tree-node identity), so any memoized quantity that is a pure
// function of fact truth at points and of where actions are performed —
// the perf index and the φ@ℓ / φ@α extension sets — is identical across
// SameShape-equal systems. Measure-dependent tables (beliefs,
// independence reports) are NOT label-functions and must never be shared;
// core.NewSeeded keeps those per-engine.
//
// Tree sharing (which runs pass through the same node) is also not
// compared: label-equal systems can differ there, which is why
// node-identity classifiers such as logic.IsPastBased are computed per
// system and are not candidates for sharing.
//
// The comparison itself is a memcmp of cached canonical signatures, so
// after each side's first call the per-call cost is tiny. A sweep that
// seeds each assignment's engine from its neighbour (core.NewSeeded)
// calls SameShape once per assignment against the same seed; the
// signature cache keeps that gate from eating the savings the sharing
// buys.
func SameShape(a, b *System) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a == b {
		return true
	}
	return a.shapeSignature() == b.shapeSignature()
}

// shapeSignature renders every label SameShape compares into one
// canonical byte string and caches it on the System. Each label is
// length-prefixed, so the encoding is injective on shapes — two systems
// share a signature exactly when sameShapeWalk accepts them (a
// differential the shape tests pin). Signature equality is a single
// memcmp; the walk it replaces re-touches every node label on every
// call.
func (s *System) shapeSignature() string {
	s.shapeOnce.Do(func() {
		var b strings.Builder
		field := func(label string) {
			b.WriteString(strconv.Itoa(len(label)))
			b.WriteByte(':')
			b.WriteString(label)
		}
		b.WriteString(strconv.Itoa(len(s.agents)))
		b.WriteByte(';')
		for _, a := range s.agents {
			field(a)
		}
		b.WriteString(strconv.Itoa(len(s.runs)))
		b.WriteByte(';')
		for _, run := range s.runs {
			b.WriteString(strconv.Itoa(len(run)))
			b.WriteByte(';')
			for _, id := range run {
				n := &s.nodes[id]
				field(n.env)
				field(n.envAct)
				for _, l := range n.locals {
					field(l)
				}
				// acts is nil at depth ≤ 1 (t = 0) by construction;
				// deeper nodes record one action per agent.
				b.WriteString(strconv.Itoa(len(n.acts)))
				b.WriteByte(';')
				for _, act := range n.acts {
					field(act)
				}
			}
		}
		s.shapeSig = b.String()
	})
	return s.shapeSig
}

// sameShapeWalk is the direct label-by-label reading of shape equality,
// kept as the differential reference for the signature encoding.
func sameShapeWalk(a, b *System) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.agents) != len(b.agents) || len(a.runs) != len(b.runs) {
		return false
	}
	for i := range a.agents {
		if a.agents[i] != b.agents[i] {
			return false
		}
	}
	for r := range a.runs {
		if len(a.runs[r]) != len(b.runs[r]) {
			return false
		}
		for t := range a.runs[r] {
			na, nb := &a.nodes[a.runs[r][t]], &b.nodes[b.runs[r][t]]
			if na.env != nb.env || na.envAct != nb.envAct {
				return false
			}
			for ag := range a.agents {
				if na.locals[ag] != nb.locals[ag] {
					return false
				}
			}
			if len(na.acts) != len(nb.acts) {
				return false
			}
			for ag := range na.acts {
				if na.acts[ag] != nb.acts[ag] {
					return false
				}
			}
		}
	}
	return true
}
