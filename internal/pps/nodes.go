package pps

import (
	"fmt"
	"math/big"
	"strings"

	"pak/internal/ratutil"
)

// Node-level accessors. These expose the tree structure itself (rather than
// the run/point view) and are used by the JSON codec, the tree printer and
// the random-system generator. NodeIDs are dense: 0 is the root λ and
// 1..NumNodes-1 are the remaining nodes in insertion order.

// ParentOf returns the parent of node id. The root's parent is -1.
func (s *System) ParentOf(id NodeID) NodeID { return s.nodes[id].parent }

// ChildrenOf returns a copy of the children of node id in order.
func (s *System) ChildrenOf(id NodeID) []NodeID {
	return append([]NodeID(nil), s.nodes[id].children...)
}

// DepthOf returns the depth of node id (root = 0). A node at depth d
// corresponds to time d-1.
func (s *System) DepthOf(id NodeID) int { return s.nodes[id].depth }

// EdgeProb returns π(parent, id), the probability of the edge into node id,
// as a fresh rational. It returns nil for the root.
func (s *System) EdgeProb(id NodeID) *big.Rat {
	if id == Root {
		return nil
	}
	return ratutil.Copy(s.nodes[id].pr)
}

// EdgeProbShared is EdgeProb without the defensive copy: the returned
// rational is the system's own π(parent, id) and MUST NOT be mutated.
// For internal read paths (the montecarlo cumulative-table build reads
// one float per edge); public callers keep EdgeProb.
func (s *System) EdgeProbShared(id NodeID) *big.Rat {
	if id == Root {
		return nil
	}
	return s.nodes[id].pr
}

// EnvOf returns the environment state of node id (empty for the root).
func (s *System) EnvOf(id NodeID) string { return s.nodes[id].env }

// LocalsOf returns a copy of the local states of node id (nil for the root).
func (s *System) LocalsOf(id NodeID) []string {
	return append([]string(nil), s.nodes[id].locals...)
}

// ActsOf returns a copy of the joint agent actions recorded on the edge
// into node id (nil for the root and for initial states).
func (s *System) ActsOf(id NodeID) []string {
	return append([]string(nil), s.nodes[id].acts...)
}

// EnvActOf returns the environment action recorded on the edge into node
// id (empty for the root and for initial states).
func (s *System) EnvActOf(id NodeID) string { return s.nodes[id].envAct }

// IsLeaf reports whether node id has no children.
func (s *System) IsLeaf(id NodeID) bool { return len(s.nodes[id].children) == 0 }

// Dump renders the full tree as an indented multi-line string, one node per
// line, for debugging and the CLI tools. Probabilities are shown in exact
// fraction form.
func (s *System) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "λ (agents: %s)\n", strings.Join(s.agents, ", "))
	var walk func(id NodeID, indent string)
	walk = func(id NodeID, indent string) {
		n := &s.nodes[id]
		fmt.Fprintf(&b, "%s[%s] t=%d env=%q locals=%v", indent, n.pr.RatString(), n.depth-1, n.env, n.locals)
		if n.acts != nil {
			fmt.Fprintf(&b, " acts=%v", n.acts)
		}
		if n.envAct != "" {
			fmt.Fprintf(&b, " envAct=%q", n.envAct)
		}
		b.WriteByte('\n')
		for _, c := range n.children {
			walk(c, indent+"  ")
		}
	}
	for _, c := range s.nodes[Root].children {
		walk(c, "  ")
	}
	return b.String()
}
