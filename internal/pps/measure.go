package pps

// The exact-arithmetic measure kernel. Every numeric claim the engine
// makes is an exact rational identity, so Measure must stay exact — but
// the naive fold pays for that exactness per run: one allocating,
// GCD-normalizing big.Rat addition for every member of the event. The
// kernel removes the per-operation cost without giving up a single bit:
//
//   - Once per system (lazily, on first measure query) it computes the
//     shared denominator D = lcm of the runPr denominators and the
//     scaled integer numerators num[r] = µ_T(r)·D, which are exact
//     because D is a common denominator.
//   - A measure query is then a word-at-a-time walk of the event's
//     bitset summing integers, with exactly ONE final big.Rat reduction
//     (SetFrac's normalization) to put the sum over D in lowest terms.
//   - Conditional measures never materialize the intersection and never
//     touch D at all: µ(a|b) = (Σ_{a∩b} num) / (Σ_b num), one SetFrac.
//
// Overflow proof for the uint64 tier: every num[r] is positive and
// Σ_r num[r] = D·Σ_r µ_T(r) = D·1 = D, because the builder validates
// that run probabilities sum to exactly 1. Every event's sum is a
// subset sum of non-negative terms, hence ≤ D. So when D itself fits in
// a uint64, every partial sum the kernel can ever form fits in a uint64
// with no possibility of wraparound, and the kernel sums machine words;
// otherwise it falls back to big.Int accumulation (still one final
// reduction). The tier is decided once, from D alone.
//
// The kernel is pure acceleration: results are byte-identical to the
// naive fold (big.Rat is always kept in lowest terms, so equal values
// have equal RatString forms). MeasureNaive keeps the reference fold
// alive for the kernel≡naive property tests and benchmarks.

import (
	"math/big"
	"math/bits"

	"pak/internal/runset"
)

// measureKernel is the shared-denominator integer view of runPr.
type measureKernel struct {
	// denom is D, the lcm of the runPr denominators.
	denom *big.Int
	// nums64 holds the scaled numerators when D (and therefore every
	// partial sum — see the overflow proof above) fits in a uint64; nil
	// when the big tier is in effect.
	nums64 []uint64
	// numsBig holds the scaled numerators in the fallback tier; nil when
	// the uint64 tier is in effect.
	numsBig []*big.Int
}

// measureKernel returns the lazily built kernel for the system.
func (s *System) measureKernel() *measureKernel {
	s.kernelOnce.Do(func() {
		k := &measureKernel{denom: big.NewInt(1)}
		gcd := new(big.Int)
		for _, pr := range s.runPr {
			d := pr.Denom()
			gcd.GCD(nil, nil, k.denom, d)
			k.denom.Quo(k.denom, gcd)
			k.denom.Mul(k.denom, d)
		}
		nums := make([]*big.Int, len(s.runPr))
		for r, pr := range s.runPr {
			scale := new(big.Int).Quo(k.denom, pr.Denom())
			nums[r] = scale.Mul(scale, pr.Num())
		}
		if k.denom.IsUint64() {
			k.nums64 = make([]uint64, len(nums))
			for r, n := range nums {
				k.nums64[r] = n.Uint64()
			}
		} else {
			k.numsBig = nums
		}
		s.kernel = k
	})
	return s.kernel
}

// word64 sums the scaled numerators of the set bits of one bitset word
// (base is the word's first run id). Safe by the overflow proof above.
func (k *measureKernel) word64(base int, w uint64) uint64 {
	var total uint64
	for w != 0 {
		total += k.nums64[base+bits.TrailingZeros64(w)]
		w &= w - 1
	}
	return total
}

// wordBig accumulates the scaled numerators of the set bits of one
// bitset word into acc.
func (k *measureKernel) wordBig(acc *big.Int, base int, w uint64) {
	for w != 0 {
		acc.Add(acc, k.numsBig[base+bits.TrailingZeros64(w)])
		w &= w - 1
	}
}

// rat64 reduces an integer numerator sum over D to a big.Rat — the one
// reduction of a uint64-tier measure query.
func (k *measureKernel) rat64(num uint64) *big.Rat {
	return new(big.Rat).SetFrac(new(big.Int).SetUint64(num), k.denom)
}

// frac64 reduces a numerator/denominator pair of integer sums — the one
// reduction of a uint64-tier conditional query (D cancels).
func frac64(num, den uint64) *big.Rat {
	return new(big.Rat).SetFrac(new(big.Int).SetUint64(num), new(big.Int).SetUint64(den))
}

// Measure returns µ_T(ev), the prior probability of the event: a
// word-at-a-time integer sum with one final reduction (see the kernel
// comment above).
func (s *System) Measure(ev *runset.Set) *big.Rat {
	k := s.measureKernel()
	if k.nums64 != nil {
		var total uint64
		for wi, w := range ev.Words() {
			if w != 0 {
				total += k.word64(wi*64, w)
			}
		}
		return k.rat64(total)
	}
	acc := new(big.Int)
	for wi, w := range ev.Words() {
		if w != 0 {
			k.wordBig(acc, wi*64, w)
		}
	}
	return new(big.Rat).SetFrac(acc, k.denom)
}

// MeasureNaive is the reference per-run big.Rat fold Measure replaced.
// It is retained (and exported) as the oracle for the kernel≡naive
// property tests and the BenchmarkMeasureKernel comparison; results are
// byte-identical to Measure's.
func (s *System) MeasureNaive(ev *runset.Set) *big.Rat {
	total := new(big.Rat)
	ev.ForEach(func(r int) bool {
		total.Add(total, s.runPr[r])
		return true
	})
	return total
}

// MeasureRuns returns the total prior probability of an explicit run
// list (runs must be distinct): the kernel's integer sum over a slice
// instead of a bitset, used by the LP backend's belief-class column
// sums. One final reduction, like Measure.
func (s *System) MeasureRuns(rs []int) *big.Rat {
	k := s.measureKernel()
	if k.nums64 != nil {
		var total uint64
		for _, r := range rs {
			total += k.nums64[r]
		}
		return k.rat64(total)
	}
	acc := new(big.Int)
	for _, r := range rs {
		acc.Add(acc, k.numsBig[r])
	}
	return new(big.Rat).SetFrac(acc, k.denom)
}

// MeasureIntersect returns µ_T(a ∩ b) without materializing the
// intersection: the word walk masks a's words with b's on the fly.
func (s *System) MeasureIntersect(a, b *runset.Set) *big.Rat {
	k := s.measureKernel()
	aw, bw := a.Words(), b.Words()
	if k.nums64 != nil {
		var total uint64
		for wi, w := range aw {
			if w &= bw[wi]; w != 0 {
				total += k.word64(wi*64, w)
			}
		}
		return k.rat64(total)
	}
	acc := new(big.Int)
	for wi, w := range aw {
		if w &= bw[wi]; w != 0 {
			k.wordBig(acc, wi*64, w)
		}
	}
	return new(big.Rat).SetFrac(acc, k.denom)
}

// Cond returns the conditional probability µ_T(a | b). The second
// result is false when µ_T(b) = 0 (which, in a pps, happens only for
// the empty event, since every run has positive probability). The
// fused form sums both integer numerators in one pass — a ∩ b is never
// materialized, D cancels, and the quotient is reduced exactly once.
func (s *System) Cond(a, b *runset.Set) (*big.Rat, bool) {
	k := s.measureKernel()
	aw, bw := a.Words(), b.Words()
	if k.nums64 != nil {
		var nab, nb uint64
		for wi, w := range bw {
			if w == 0 {
				continue
			}
			nb += k.word64(wi*64, w)
			if w &= aw[wi]; w != 0 {
				nab += k.word64(wi*64, w)
			}
		}
		if nb == 0 {
			return nil, false
		}
		return frac64(nab, nb), true
	}
	nab, nb := new(big.Int), new(big.Int)
	for wi, w := range bw {
		if w == 0 {
			continue
		}
		k.wordBig(nb, wi*64, w)
		if w &= aw[wi]; w != 0 {
			k.wordBig(nab, wi*64, w)
		}
	}
	if nb.Sign() == 0 {
		return nil, false
	}
	return new(big.Rat).SetFrac(nab, nb), true
}

// CondIntersect returns µ_T(a ∩ b | c), with ok=false when µ_T(c) = 0.
// It is the fused form of Cond(a.Intersect(b), c) — the Definition 4.1
// scan's µ([φ∧α]@ℓ | ℓ) — computing both integer sums in one pass with
// no intermediate set and one final reduction.
func (s *System) CondIntersect(a, b, c *runset.Set) (*big.Rat, bool) {
	k := s.measureKernel()
	aw, bw, cw := a.Words(), b.Words(), c.Words()
	if k.nums64 != nil {
		var nabc, nc uint64
		for wi, w := range cw {
			if w == 0 {
				continue
			}
			nc += k.word64(wi*64, w)
			if w &= aw[wi] & bw[wi]; w != 0 {
				nabc += k.word64(wi*64, w)
			}
		}
		if nc == 0 {
			return nil, false
		}
		return frac64(nabc, nc), true
	}
	nabc, nc := new(big.Int), new(big.Int)
	for wi, w := range cw {
		if w == 0 {
			continue
		}
		k.wordBig(nc, wi*64, w)
		if w &= aw[wi] & bw[wi]; w != 0 {
			k.wordBig(nabc, wi*64, w)
		}
	}
	if nc.Sign() == 0 {
		return nil, false
	}
	return new(big.Rat).SetFrac(nabc, nc), true
}
