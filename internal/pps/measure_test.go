package pps

import (
	"testing"
	"testing/quick"

	"pak/internal/ratutil"
	"pak/internal/runset"
)

// Additional measure-theory property tests over random systems, using the
// randomTree helper from pps_test.go.

// randomEvent derives a deterministic pseudo-random event from a seed.
func randomEvent(sys *System, seed int64) *runset.Set {
	ev := sys.NewSet()
	x := uint64(seed)
	for r := 0; r < sys.NumRuns(); r++ {
		x = x*6364136223846793005 + 1442695040888963407
		if x&1 == 1 {
			ev.Add(r)
		}
	}
	return ev
}

// Property: finite additivity — µ(A) + µ(B) = µ(A∪B) + µ(A∩B).
func TestQuickMeasureAdditivity(t *testing.T) {
	f := func(sysSeed, evSeedA, evSeedB int64) bool {
		sys, err := randomTree(sysSeed)
		if err != nil {
			return false
		}
		a := randomEvent(sys, evSeedA)
		b := randomEvent(sys, evSeedB)
		lhs := ratutil.Add(sys.Measure(a), sys.Measure(b))
		rhs := ratutil.Add(sys.Measure(a.Union(b)), sys.Measure(a.Intersect(b)))
		return ratutil.Eq(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: complement — µ(A) + µ(¬A) = 1.
func TestQuickMeasureComplement(t *testing.T) {
	f := func(sysSeed, evSeed int64) bool {
		sys, err := randomTree(sysSeed)
		if err != nil {
			return false
		}
		a := randomEvent(sys, evSeed)
		total := ratutil.Add(sys.Measure(a), sys.Measure(a.Complement()))
		return ratutil.IsOne(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: chain rule — µ(A∩B) = µ(A|B)·µ(B) whenever µ(B) > 0.
func TestQuickCondChainRule(t *testing.T) {
	f := func(sysSeed, evSeedA, evSeedB int64) bool {
		sys, err := randomTree(sysSeed)
		if err != nil {
			return false
		}
		a := randomEvent(sys, evSeedA)
		b := randomEvent(sys, evSeedB)
		cond, ok := sys.Cond(a, b)
		if !ok {
			return b.IsEmpty() // Cond fails exactly on zero-measure events
		}
		return ratutil.Eq(ratutil.Mul(cond, sys.Measure(b)), sys.Measure(a.Intersect(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bayes — µ(A|B)·µ(B) = µ(B|A)·µ(A) for events of positive
// measure.
func TestQuickBayes(t *testing.T) {
	f := func(sysSeed, evSeedA, evSeedB int64) bool {
		sys, err := randomTree(sysSeed)
		if err != nil {
			return false
		}
		a := randomEvent(sys, evSeedA)
		b := randomEvent(sys, evSeedB)
		if a.IsEmpty() || b.IsEmpty() {
			return true
		}
		ab, okA := sys.Cond(a, b)
		ba, okB := sys.Cond(b, a)
		if !okA || !okB {
			return false
		}
		return ratutil.Eq(ratutil.Mul(ab, sys.Measure(b)), ratutil.Mul(ba, sys.Measure(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: law of total probability over the partition by initial state.
func TestQuickTotalProbabilityByInitial(t *testing.T) {
	f := func(sysSeed, evSeed int64) bool {
		sys, err := randomTree(sysSeed)
		if err != nil {
			return false
		}
		ev := randomEvent(sys, evSeed)
		total := ratutil.Zero()
		for _, init := range sys.ChildrenOf(Root) {
			cell := sys.RunsWhere(func(r RunID) bool { return sys.NodeAt(r, 0) == init })
			total = ratutil.Add(total, sys.Measure(ev.Intersect(cell)))
		}
		return ratutil.Eq(total, sys.Measure(ev))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: run probability equals the product of edge probabilities.
func TestQuickRunProbIsEdgeProduct(t *testing.T) {
	f := func(sysSeed int64) bool {
		sys, err := randomTree(sysSeed)
		if err != nil {
			return false
		}
		for r := 0; r < sys.NumRuns(); r++ {
			run := RunID(r)
			product := ratutil.One()
			for t := 0; t < sys.RunLen(run); t++ {
				product = ratutil.Mul(product, sys.EdgeProb(sys.NodeAt(run, t)))
			}
			if !ratutil.Eq(product, sys.RunProb(run)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: EdgeProb returns copies (mutating the result must not corrupt
// the system).
func TestEdgeProbIsCopy(t *testing.T) {
	sys := buildDiamond(t)
	child := sys.ChildrenOf(Root)[0]
	pr := sys.EdgeProb(child)
	pr.SetInt64(0)
	if !ratutil.IsOne(sys.EdgeProb(child)) {
		t.Fatal("EdgeProb aliased internal state")
	}
	rp := sys.RunProb(0)
	rp.SetInt64(0)
	if sys.RunProb(0).Sign() == 0 {
		t.Fatal("RunProb aliased internal state")
	}
}
