package pps

import (
	"pak/internal/ratutil"
	"pak/internal/runset"
)

// Float fast path. The exact engine works in *big.Rat end to end; for
// large Monte-Carlo workloads and for the ablation benchmarks comparing
// exact vs floating-point measure computation, the system also exposes
// float64 run probabilities (computed once per System, cached).

// runProbsFloat returns the cached float64 conversions of the run
// probabilities.
func (s *System) runProbsFloat() []float64 {
	s.floatOnce.Do(func() {
		s.floatProbs = make([]float64, len(s.runPr))
		for i, pr := range s.runPr {
			s.floatProbs[i] = ratutil.Float(pr)
		}
	})
	return s.floatProbs
}

// MeasureFloat returns µ_T(ev) as a float64. It is an approximation of
// Measure (the exact rational form) intended for high-volume estimation;
// exactness-sensitive code (the theorem checkers) must use Measure.
func (s *System) MeasureFloat(ev *runset.Set) float64 {
	probs := s.runProbsFloat()
	total := 0.0
	ev.ForEach(func(r int) bool {
		total += probs[r]
		return true
	})
	return total
}

// CondFloat returns µ_T(a | b) as a float64, with ok=false when the
// conditioning event has zero probability.
func (s *System) CondFloat(a, b *runset.Set) (float64, bool) {
	mb := s.MeasureFloat(b)
	if mb == 0 {
		return 0, false
	}
	return s.MeasureFloat(a.Intersect(b)) / mb, true
}
