package pps

import (
	"math"
	"testing"

	"pak/internal/ratutil"
)

func TestMeasureFloatMatchesExact(t *testing.T) {
	sys := buildDiamond(t)
	ev := sys.RunsWhere(func(r RunID) bool { return r == 0 })
	exact := ratutil.Float(sys.Measure(ev))
	got := sys.MeasureFloat(ev)
	if math.Abs(got-exact) > 1e-12 {
		t.Fatalf("MeasureFloat = %v, exact = %v", got, exact)
	}
	if got := sys.MeasureFloat(sys.FullSet()); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MeasureFloat(full) = %v", got)
	}
	if got := sys.MeasureFloat(sys.NewSet()); got != 0 {
		t.Fatalf("MeasureFloat(empty) = %v", got)
	}
}

func TestCondFloat(t *testing.T) {
	sys := buildDiamond(t)
	a := sys.RunsWhere(func(r RunID) bool { return r == 0 })
	got, ok := sys.CondFloat(a, sys.FullSet())
	if !ok || math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CondFloat = %v,%v", got, ok)
	}
	if _, ok := sys.CondFloat(a, sys.NewSet()); ok {
		t.Fatal("CondFloat on empty event should report ok=false")
	}
}

func TestMeasureFloatConcurrent(t *testing.T) {
	// The lazy float cache must be safe under concurrent first use.
	sys := buildDiamond(t)
	full := sys.FullSet()
	done := make(chan float64)
	for k := 0; k < 8; k++ {
		go func() { done <- sys.MeasureFloat(full) }()
	}
	for k := 0; k < 8; k++ {
		if got := <-done; math.Abs(got-1) > 1e-12 {
			t.Fatalf("concurrent MeasureFloat = %v", got)
		}
	}
}
