// Package protocol implements the paper's Section 2.2: probabilistic
// protocols P_i : L_i → ∆(Act_i) for agents and the environment, joint
// protocols, and the bounded unfolding of a joint protocol (together with
// a distribution over initial global states) into a purely probabilistic
// system.
//
// A Model describes a synchronous joint protocol that terminates within a
// bounded number of rounds. At every non-final point each agent chooses an
// action from a distribution determined by its local state (a mixed action
// step when the support has more than one element), the environment
// chooses an action from a distribution determined by the global state and
// the agents' choices (e.g. a message-delivery pattern), and the next
// global state is a deterministic function of all the choices — matching
// the paper's requirement that every tuple of actions performed at a
// global state determines a unique successor.
//
// Unfold enumerates all joint outcomes breadth-first and produces the pps
// T whose runs are exactly the executions of the protocol. Local states
// are automatically prefixed with the current time ("t2|..."), which
// realizes the paper's synchrony assumption (every local state contains
// the variable time_i) without burdening model authors.
package protocol

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"strings"

	"pak/internal/pps"
	"pak/internal/ratutil"
)

// Sentinel errors returned (wrapped) by Unfold and distribution helpers.
var (
	// ErrBadDist indicates a distribution whose probabilities are not in
	// (0,1] or do not sum to 1.
	ErrBadDist = errors.New("protocol: invalid probability distribution")
	// ErrBadModel indicates a structurally invalid model (no agents, no
	// initial states, non-positive horizon, arity mismatches).
	ErrBadModel = errors.New("protocol: invalid model")
	// ErrTooLarge indicates that unfolding exceeded the node budget.
	ErrTooLarge = errors.New("protocol: unfolded system exceeds node budget")
)

// Weighted pairs a value with a rational probability.
type Weighted[T any] struct {
	Value T
	Pr    *big.Rat
}

// W is a convenience constructor for Weighted values.
func W[T any](v T, pr *big.Rat) Weighted[T] { return Weighted[T]{Value: v, Pr: pr} }

// Det returns the deterministic distribution on a single action.
func Det(action string) []Weighted[string] {
	return []Weighted[string]{{Value: action, Pr: ratutil.One()}}
}

// Mix returns a mixed distribution over the given weighted actions.
func Mix(outcomes ...Weighted[string]) []Weighted[string] { return outcomes }

// ValidateDist checks that the probabilities of dist are in (0,1] and sum
// to exactly 1.
func ValidateDist[T any](dist []Weighted[T]) error {
	if len(dist) == 0 {
		return fmt.Errorf("%w: empty distribution", ErrBadDist)
	}
	total := new(big.Rat)
	for _, w := range dist {
		if w.Pr == nil || !ratutil.IsPositiveProb(w.Pr) {
			return fmt.Errorf("%w: probability %v not in (0,1]", ErrBadDist, w.Pr)
		}
		total.Add(total, w.Pr)
	}
	if !ratutil.IsOne(total) {
		return fmt.Errorf("%w: probabilities sum to %s", ErrBadDist, total.RatString())
	}
	return nil
}

// Global is a global state: an environment component plus one local state
// per agent.
type Global struct {
	Env    string
	Locals []string
}

// Clone returns a deep copy of g.
func (g Global) Clone() Global {
	return Global{Env: g.Env, Locals: append([]string(nil), g.Locals...)}
}

// Model describes a synchronous joint protocol with bounded horizon.
// Implementations must be deterministic functions of their arguments (all
// randomness is expressed through the returned distributions).
type Model interface {
	// Agents returns the agent names, fixing the agent indexing.
	Agents() []string
	// Initials returns the distribution over initial global states.
	Initials() []Weighted[Global]
	// AgentStep returns agent i's mixed action at the given (unstamped)
	// local state and time: the protocol function P_i(ℓ_i).
	AgentStep(agent int, local string, t int) []Weighted[string]
	// EnvStep returns the environment's mixed action at the global state,
	// given the agents' chosen actions (e.g. which messages to deliver).
	EnvStep(g Global, acts []string, t int) []Weighted[string]
	// Next returns the unique successor state determined by the joint
	// action and the environment action.
	Next(g Global, acts []string, envAct string, t int) (Global, error)
	// Horizon returns the number of rounds executed; runs have points
	// 0..Horizon (inclusive), i.e. Horizon transitions.
	Horizon() int
}

// Stamp prefixes a local state with its time, realizing the synchrony
// assumption. Unfold applies it to every local state it stores.
func Stamp(t int, local string) string { return fmt.Sprintf("t%d|%s", t, local) }

// Unstamp strips the time prefix added by Stamp; it returns the input
// unchanged if no prefix is present.
func Unstamp(stamped string) string {
	if i := strings.Index(stamped, "|"); i >= 0 && strings.HasPrefix(stamped, "t") {
		return stamped[i+1:]
	}
	return stamped
}

// maxNodes bounds the size of unfolded systems to keep mistakes (e.g. an
// accidentally huge horizon) from exhausting memory.
const maxNodes = 2_000_000

// unfoldCtxInterval is the coarse cancellation granularity of the
// breadth-first unfolding: the context is consulted once per this many
// dequeued nodes (and before the first), so small models pay nothing
// while a deadline can cut a runaway unfolding within a bounded amount
// of extra work — the same every-64-items discipline as the engine's
// deep scans.
const unfoldCtxInterval = 64

// Unfold expands the joint protocol into the purely probabilistic system
// containing exactly its executions.
func Unfold(m Model) (*pps.System, error) {
	return UnfoldCtx(context.Background(), m)
}

// UnfoldCtx is Unfold bound to a context: the enumeration checks ctx
// every unfoldCtxInterval dequeued nodes and aborts with an error
// wrapping the context's cause, so a pre-cancelled or expired context
// cuts even a cold unfolding promptly instead of enumerating the whole
// tree first.
func UnfoldCtx(ctx context.Context, m Model) (*pps.System, error) {
	agents := m.Agents()
	if len(agents) == 0 {
		return nil, fmt.Errorf("%w: no agents", ErrBadModel)
	}
	if m.Horizon() <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadModel, m.Horizon())
	}
	inits := m.Initials()
	if err := ValidateDist(inits); err != nil {
		return nil, fmt.Errorf("initial distribution: %w", err)
	}

	b := pps.NewBuilder(agents...)
	type item struct {
		id pps.NodeID
		g  Global
		t  int
	}
	var queue []item
	for _, init := range inits {
		if len(init.Value.Locals) != len(agents) {
			return nil, fmt.Errorf("%w: initial state has %d locals for %d agents",
				ErrBadModel, len(init.Value.Locals), len(agents))
		}
		id := b.Init(init.Pr, init.Value.Env, stampAll(0, init.Value.Locals)...)
		queue = append(queue, item{id, init.Value.Clone(), 0})
	}

	nodes := len(queue)
	for dequeued := 0; len(queue) > 0; dequeued++ {
		if dequeued%unfoldCtxInterval == 0 {
			if cause := context.Cause(ctx); cause != nil {
				return nil, fmt.Errorf("protocol: unfold aborted after %d nodes: %w", nodes, cause)
			}
		}
		it := queue[0]
		queue = queue[1:]
		if it.t >= m.Horizon() {
			continue // leaf
		}
		// Enumerate the agents' joint mixed action.
		dists := make([][]Weighted[string], len(agents))
		for a := range agents {
			d := m.AgentStep(a, it.g.Locals[a], it.t)
			if err := ValidateDist(d); err != nil {
				return nil, fmt.Errorf("agent %s at t=%d state %q: %w", agents[a], it.t, it.g.Locals[a], err)
			}
			dists[a] = d
		}
		for _, joint := range cartesian(dists) {
			envDist := m.EnvStep(it.g, joint.acts, it.t)
			if err := ValidateDist(envDist); err != nil {
				return nil, fmt.Errorf("environment at t=%d: %w", it.t, err)
			}
			for _, env := range envDist {
				next, err := m.Next(it.g, joint.acts, env.Value, it.t)
				if err != nil {
					return nil, fmt.Errorf("transition at t=%d: %w", it.t, err)
				}
				if len(next.Locals) != len(agents) {
					return nil, fmt.Errorf("%w: Next returned %d locals for %d agents",
						ErrBadModel, len(next.Locals), len(agents))
				}
				id := b.Child(it.id, pps.Step{
					Pr:     ratutil.Mul(joint.pr, env.Pr),
					Acts:   joint.acts,
					EnvAct: env.Value,
					Env:    next.Env,
					Locals: stampAll(it.t+1, next.Locals),
				})
				nodes++
				if nodes > maxNodes {
					return nil, fmt.Errorf("%w: more than %d nodes", ErrTooLarge, maxNodes)
				}
				queue = append(queue, item{id, next, it.t + 1})
			}
		}
	}
	sys, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("protocol unfolding produced an invalid system: %w", err)
	}
	return sys, nil
}

// jointChoice is one element of the cartesian product of agent action
// distributions.
type jointChoice struct {
	acts []string
	pr   *big.Rat
}

// cartesian enumerates the product of the per-agent distributions.
func cartesian(dists [][]Weighted[string]) []jointChoice {
	out := []jointChoice{{acts: nil, pr: ratutil.One()}}
	for _, dist := range dists {
		next := make([]jointChoice, 0, len(out)*len(dist))
		for _, partial := range out {
			for _, w := range dist {
				acts := make([]string, len(partial.acts)+1)
				copy(acts, partial.acts)
				acts[len(partial.acts)] = w.Value
				next = append(next, jointChoice{acts: acts, pr: ratutil.Mul(partial.pr, w.Pr)})
			}
		}
		out = next
	}
	return out
}

func stampAll(t int, locals []string) []string {
	out := make([]string, len(locals))
	for i, l := range locals {
		out[i] = Stamp(t, l)
	}
	return out
}

// FuncModel adapts plain functions into a Model, for lightweight protocol
// definitions in tests and examples. Step and Trans are required; Env
// defaults to a single empty environment action.
type FuncModel struct {
	// AgentNames fixes the agent indexing.
	AgentNames []string
	// Init is the distribution over initial global states.
	Init []Weighted[Global]
	// Step is the agents' protocol: P_i(ℓ_i) at time t.
	Step func(agent int, local string, t int) []Weighted[string]
	// Env is the environment's protocol; nil means a deterministic empty
	// environment action.
	Env func(g Global, acts []string, t int) []Weighted[string]
	// Trans computes the unique successor state.
	Trans func(g Global, acts []string, envAct string, t int) (Global, error)
	// Bound is the horizon (number of transitions per run).
	Bound int
}

var _ Model = FuncModel{}

// Agents implements Model.
func (f FuncModel) Agents() []string { return f.AgentNames }

// Initials implements Model.
func (f FuncModel) Initials() []Weighted[Global] { return f.Init }

// AgentStep implements Model.
func (f FuncModel) AgentStep(agent int, local string, t int) []Weighted[string] {
	return f.Step(agent, local, t)
}

// EnvStep implements Model.
func (f FuncModel) EnvStep(g Global, acts []string, t int) []Weighted[string] {
	if f.Env == nil {
		return Det("")
	}
	return f.Env(g, acts, t)
}

// Next implements Model.
func (f FuncModel) Next(g Global, acts []string, envAct string, t int) (Global, error) {
	return f.Trans(g, acts, envAct, t)
}

// Horizon implements Model.
func (f FuncModel) Horizon() int { return f.Bound }
