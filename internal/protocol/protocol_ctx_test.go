package protocol

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"pak/internal/ratutil"
)

// TestUnfoldCtxPreCancelled: a context that is already dead when UnfoldCtx
// is called aborts the unfolding before any protocol step runs — the check
// fires at the first dequeued node, so even a cold (never unfolded) model
// does no work for a caller that has already given up.
func TestUnfoldCtxPreCancelled(t *testing.T) {
	var steps atomic.Int64
	m := coinModel()
	inner := m.Step
	m.Step = func(agent int, local string, t int) []Weighted[string] {
		steps.Add(1)
		return inner(agent, local, t)
	}

	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(context.DeadlineExceeded)
	if _, err := UnfoldCtx(ctx, m); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("UnfoldCtx under dead context: err = %v, want wrapped deadline cause", err)
	}
	if n := steps.Load(); n != 0 {
		t.Fatalf("dead-context unfold called AgentStep %d times, want 0", n)
	}

	// The abort leaves no residue: the same model unfolds for a live caller.
	sys, err := UnfoldCtx(context.Background(), m)
	if err != nil {
		t.Fatalf("live unfold after abort: %v", err)
	}
	if sys.NumRuns() != 2 || !ratutil.IsOne(sys.TotalMeasure()) {
		t.Fatalf("live unfold: runs=%d measure=%v", sys.NumRuns(), sys.TotalMeasure())
	}
}

// TestUnfoldCtxMidwayCancel: a context cancelled from inside a protocol
// step cuts the enumeration at the next interval check instead of
// unfolding the whole tree — the bound on extra work is one interval of
// dequeues, not the model size.
func TestUnfoldCtxMidwayCancel(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	var steps atomic.Int64
	m := twoAgentModel()
	m.Bound = 6 // 4^6 = 4096 runs if allowed to finish
	inner := m.Step
	m.Step = func(agent int, local string, t int) []Weighted[string] {
		if steps.Add(1) == 100 {
			cancel(context.Canceled)
		}
		return inner(agent, local, t)
	}

	_, err := UnfoldCtx(ctx, m)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("UnfoldCtx cancelled midway: err = %v, want wrapped cancellation", err)
	}
	// Two Step calls per dequeued interior node; the next check comes
	// within unfoldCtxInterval dequeues of the cancellation.
	if n := steps.Load(); n > 100+2*unfoldCtxInterval {
		t.Fatalf("unfold ran %d steps after cancel at 100, want at most %d", n, 100+2*unfoldCtxInterval)
	}
}
