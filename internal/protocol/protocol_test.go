package protocol

import (
	"errors"
	"fmt"
	"testing"

	"pak/internal/pps"
	"pak/internal/ratutil"
)

// coinModel is a single agent flipping a fair coin once.
func coinModel() FuncModel {
	return FuncModel{
		AgentNames: []string{"i"},
		Init:       []Weighted[Global]{W(Global{Env: "e", Locals: []string{"start"}}, ratutil.One())},
		Step: func(agent int, local string, t int) []Weighted[string] {
			return Mix(W("heads", ratutil.R(1, 2)), W("tails", ratutil.R(1, 2)))
		},
		Trans: func(g Global, acts []string, envAct string, t int) (Global, error) {
			return Global{Env: g.Env, Locals: []string{acts[0]}}, nil
		},
		Bound: 1,
	}
}

func TestUnfoldCoin(t *testing.T) {
	sys, err := Unfold(coinModel())
	if err != nil {
		t.Fatalf("Unfold: %v", err)
	}
	if sys.NumRuns() != 2 {
		t.Fatalf("NumRuns = %d, want 2", sys.NumRuns())
	}
	if !ratutil.IsOne(sys.TotalMeasure()) {
		t.Fatalf("total measure = %v", sys.TotalMeasure())
	}
	for r := pps.RunID(0); r < 2; r++ {
		if got := sys.RunProb(r); !ratutil.Eq(got, ratutil.R(1, 2)) {
			t.Errorf("run %d prob = %v", r, got)
		}
	}
	// Locals are stamped with the time.
	if got := sys.Local(0, 0, 0); got != "t0|start" {
		t.Errorf("initial local = %q, want t0|start", got)
	}
	act, ok := sys.Action(0, 0, 0)
	if !ok || (act != "heads" && act != "tails") {
		t.Errorf("action = %q,%v", act, ok)
	}
	if got := sys.Local(0, 1, 0); got != "t1|"+act {
		t.Errorf("final local = %q, want t1|%s", got, act)
	}
}

// twoAgentModel exercises the cartesian product of mixed actions: both
// agents flip independent biased coins for two rounds.
func twoAgentModel() FuncModel {
	return FuncModel{
		AgentNames: []string{"i", "j"},
		Init:       []Weighted[Global]{W(Global{Env: "e", Locals: []string{"i", "j"}}, ratutil.One())},
		Step: func(agent int, local string, t int) []Weighted[string] {
			if agent == 0 {
				return Mix(W("a", ratutil.R(1, 3)), W("b", ratutil.R(2, 3)))
			}
			return Mix(W("x", ratutil.R(1, 4)), W("y", ratutil.R(3, 4)))
		},
		Trans: func(g Global, acts []string, envAct string, t int) (Global, error) {
			return Global{Env: g.Env, Locals: []string{
				g.Locals[0] + acts[0],
				g.Locals[1] + acts[1],
			}}, nil
		},
		Bound: 2,
	}
}

func TestUnfoldTwoAgents(t *testing.T) {
	sys, err := Unfold(twoAgentModel())
	if err != nil {
		t.Fatalf("Unfold: %v", err)
	}
	// 4 joint actions per round, two rounds: 16 runs.
	if sys.NumRuns() != 16 {
		t.Fatalf("NumRuns = %d, want 16", sys.NumRuns())
	}
	if !ratutil.IsOne(sys.TotalMeasure()) {
		t.Fatalf("total measure = %v", sys.TotalMeasure())
	}
	// The run where both agents play their first action twice has
	// probability (1/3·1/4)² = 1/144.
	ev := sys.RunsWhere(func(r pps.RunID) bool {
		return sys.Local(r, 2, 0) == "t2|iaa" && sys.Local(r, 2, 1) == "t2|jxx"
	})
	if ev.Count() != 1 {
		t.Fatalf("expected unique run, got %d", ev.Count())
	}
	if got := sys.Measure(ev); !ratutil.Eq(got, ratutil.R(1, 144)) {
		t.Fatalf("measure = %v, want 1/144", got)
	}
}

func TestUnfoldWithEnv(t *testing.T) {
	// The environment delivers a flag with probability 1/5.
	m := FuncModel{
		AgentNames: []string{"i"},
		Init:       []Weighted[Global]{W(Global{Env: "e", Locals: []string{"s"}}, ratutil.One())},
		Step: func(agent int, local string, t int) []Weighted[string] {
			return Det("noop")
		},
		Env: func(g Global, acts []string, t int) []Weighted[string] {
			return Mix(W("deliver", ratutil.R(1, 5)), W("drop", ratutil.R(4, 5)))
		},
		Trans: func(g Global, acts []string, envAct string, t int) (Global, error) {
			return Global{Env: envAct, Locals: []string{envAct}}, nil
		},
		Bound: 1,
	}
	sys, err := Unfold(m)
	if err != nil {
		t.Fatalf("Unfold: %v", err)
	}
	ev := sys.RunsWhere(func(r pps.RunID) bool { return sys.Env(r, 1) == "deliver" })
	if got := sys.Measure(ev); !ratutil.Eq(got, ratutil.R(1, 5)) {
		t.Fatalf("deliver measure = %v, want 1/5", got)
	}
	envAct, ok := sys.EnvAction(0, 0)
	if !ok || (envAct != "deliver" && envAct != "drop") {
		t.Fatalf("EnvAction = %q,%v", envAct, ok)
	}
}

func TestUnfoldValidation(t *testing.T) {
	base := coinModel()
	tests := []struct {
		name    string
		mutate  func(m FuncModel) FuncModel
		wantErr error
	}{
		{
			name: "no agents",
			mutate: func(m FuncModel) FuncModel {
				m.AgentNames = nil
				return m
			},
			wantErr: ErrBadModel,
		},
		{
			name: "zero horizon",
			mutate: func(m FuncModel) FuncModel {
				m.Bound = 0
				return m
			},
			wantErr: ErrBadModel,
		},
		{
			name: "bad initial distribution",
			mutate: func(m FuncModel) FuncModel {
				m.Init = []Weighted[Global]{W(Global{Env: "e", Locals: []string{"s"}}, ratutil.R(1, 2))}
				return m
			},
			wantErr: ErrBadDist,
		},
		{
			name: "initial arity mismatch",
			mutate: func(m FuncModel) FuncModel {
				m.Init = []Weighted[Global]{W(Global{Env: "e", Locals: []string{"s", "extra"}}, ratutil.One())}
				return m
			},
			wantErr: ErrBadModel,
		},
		{
			name: "agent distribution does not sum to 1",
			mutate: func(m FuncModel) FuncModel {
				m.Step = func(agent int, local string, t int) []Weighted[string] {
					return Mix(W("a", ratutil.R(1, 3)))
				}
				return m
			},
			wantErr: ErrBadDist,
		},
		{
			name: "env distribution empty",
			mutate: func(m FuncModel) FuncModel {
				m.Env = func(g Global, acts []string, t int) []Weighted[string] { return nil }
				return m
			},
			wantErr: ErrBadDist,
		},
		{
			name: "next arity mismatch",
			mutate: func(m FuncModel) FuncModel {
				m.Trans = func(g Global, acts []string, envAct string, t int) (Global, error) {
					return Global{Env: "e", Locals: []string{"a", "b"}}, nil
				}
				return m
			},
			wantErr: ErrBadModel,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Unfold(tt.mutate(base))
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Unfold err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestUnfoldTransitionError(t *testing.T) {
	m := coinModel()
	boom := errors.New("boom")
	m.Trans = func(g Global, acts []string, envAct string, t int) (Global, error) {
		return Global{}, boom
	}
	if _, err := Unfold(m); !errors.Is(err, boom) {
		t.Fatalf("Unfold err = %v, want boom", err)
	}
}

func TestValidateDist(t *testing.T) {
	tests := []struct {
		name    string
		dist    []Weighted[string]
		wantErr bool
	}{
		{"det ok", Det("a"), false},
		{"mix ok", Mix(W("a", ratutil.R(1, 2)), W("b", ratutil.R(1, 2))), false},
		{"empty", nil, true},
		{"nil pr", []Weighted[string]{{Value: "a"}}, true},
		{"zero pr", Mix(W("a", ratutil.Zero()), W("b", ratutil.One())), true},
		{"sum below 1", Mix(W("a", ratutil.R(1, 3))), true},
		{"sum above 1", Mix(W("a", ratutil.R(2, 3)), W("b", ratutil.R(2, 3))), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := ValidateDist(tt.dist)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ValidateDist = %v, wantErr=%v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadDist) {
				t.Fatalf("error not wrapping ErrBadDist: %v", err)
			}
		})
	}
}

func TestStampUnstamp(t *testing.T) {
	tests := []struct {
		t     int
		local string
	}{
		{0, "start"},
		{12, "go=1,recv=Yes"},
		{3, ""},
		{1, "with|pipe"},
	}
	for _, tt := range tests {
		stamped := Stamp(tt.t, tt.local)
		want := fmt.Sprintf("t%d|%s", tt.t, tt.local)
		if stamped != want {
			t.Errorf("Stamp = %q, want %q", stamped, want)
		}
		if got := Unstamp(stamped); got != tt.local {
			t.Errorf("Unstamp(%q) = %q, want %q", stamped, got, tt.local)
		}
	}
	if got := Unstamp("no-prefix"); got != "no-prefix" {
		t.Errorf("Unstamp passthrough = %q", got)
	}
}

func TestGlobalClone(t *testing.T) {
	g := Global{Env: "e", Locals: []string{"a"}}
	c := g.Clone()
	c.Locals[0] = "mutated"
	if g.Locals[0] != "a" {
		t.Fatal("Clone shares locals")
	}
}

func TestCartesianSizes(t *testing.T) {
	dists := [][]Weighted[string]{
		Mix(W("a", ratutil.R(1, 2)), W("b", ratutil.R(1, 2))),
		Det("x"),
		Mix(W("1", ratutil.R(1, 3)), W("2", ratutil.R(1, 3)), W("3", ratutil.R(1, 3))),
	}
	combos := cartesian(dists)
	if len(combos) != 6 {
		t.Fatalf("cartesian size = %d, want 6", len(combos))
	}
	total := ratutil.Zero()
	for _, c := range combos {
		if len(c.acts) != 3 {
			t.Fatalf("acts len = %d", len(c.acts))
		}
		total = ratutil.Add(total, c.pr)
	}
	if !ratutil.IsOne(total) {
		t.Fatalf("total probability = %v", total)
	}
}
