// Package load is the pakd load/stress harness: a self-contained
// generator that drives a pakd-compatible HTTP endpoint (live or
// in-process) with a weighted scenario mix under configurable
// concurrency, records exact latency and outcome accounting, and emits
// a JSON report. It is the measurement half of the service-hardening
// work: the deadline, eviction and singleflight paths are only trusted
// because this harness exercises them under contention (TestLoadSmoke,
// the race stress tests, cmd/pakload).
//
// Accounting is deliberately simple and lossless: every request records
// its wall-clock latency and lands in exactly one outcome class — "ok",
// "http_<code>", "timeout", "transport", "bad_json" or
// "unexpected_status" — so a report's counts always sum to the total
// and an error taxonomy shift between runs is a behaviour change, not
// noise.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Scenario is one weighted request shape in the mix.
type Scenario struct {
	// Name labels the scenario in the report.
	Name string `json:"name"`
	// Path is the request path (e.g. "/v1/eval", "/v1/scenarios").
	Path string `json:"path"`
	// Body, when non-nil, is POSTed as application/json; nil means GET.
	Body []byte `json:"-"`
	// Weight is the scenario's relative frequency (≤ 0 counts as 1).
	Weight int `json:"weight"`
	// ExpectStatus, when nonzero, is the status this scenario must
	// answer; any other status classifies as "unexpected_status". Zero
	// accepts any status (it still lands in its http_<code> class).
	ExpectStatus int `json:"expectStatus,omitempty"`
	// CheckJSON requires the response body to be valid JSON; violations
	// classify as "bad_json".
	CheckJSON bool `json:"checkJson,omitempty"`
	// CheckStream requires the response body to be a well-formed
	// /v1/eval/stream NDJSON stream: every line a frame, exactly one
	// terminal status frame in final position, result-frame
	// (system, index) coordinates forming a set with no holes, and — on
	// a deadline/cancelled terminal — every unfinished slot carrying the
	// context error while finished slots stay clean (the prefix-on-
	// timeout contract). Violations classify as "bad_stream".
	CheckStream bool `json:"checkStream,omitempty"`
	// ExpectFrames is the result-frame count a stream of this scenario
	// must carry — the service emits one frame per query even under a
	// deadline, so the count is exact, not a lower bound (0 skips the
	// check).
	ExpectFrames int `json:"expectFrames,omitempty"`
	// CheckEnvelope requires the response to honour the envelope wire
	// contract: for an NDJSON /v1/envelope/stream body, result frames
	// with hole-free assignment indices, running envelopes, and one
	// terminal status frame carrying the final envelope whose visited
	// count matches the finished slots (partial only under
	// deadline/cancelled); for a buffered /v1/envelope 200 body, a fully
	// visited envelope. Violations classify as "bad_stream".
	CheckEnvelope bool `json:"checkEnvelope,omitempty"`
	// Backend labels the exact backend this scenario's body requests
	// ("lp", "auto"; empty = enumeration). Purely descriptive — the
	// routing lives in the body's "backend" knob — but carried into the
	// report's per-scenario stats so a mix's backend split is visible in
	// the accounting.
	Backend string `json:"backend,omitempty"`
	// CheckApproxStream requires the response body to be a well-formed
	// approximate-tier NDJSON stream: slots may emit up to two frames
	// (stage "approx" strictly before stage "exact", never duplicated),
	// hole-free slot coordinates, approx frames carrying estimates, and
	// the deadline contract — a slot whose stream was cut after its
	// approx frame keeps the estimate as a clean final answer.
	// ExpectFrames then counts SLOTS, not frames (a slot's frame count
	// is 1 or 2 by design). Violations classify as "bad_stream".
	CheckApproxStream bool `json:"checkApproxStream,omitempty"`
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the target server's root (no trailing slash).
	BaseURL string
	// Client is the HTTP client (nil means a fresh client; its Timeout
	// is overridden by Timeout when set).
	Client *http.Client
	// Concurrency is the worker count (≤ 0 means 1).
	Concurrency int
	// Requests stops the run after this many total requests. One of
	// Requests/Duration must be positive; with both, whichever trips
	// first stops the run.
	Requests int
	// Duration stops the run after this wall-clock time.
	Duration time.Duration
	// Timeout bounds each request (0 = no per-request bound).
	Timeout time.Duration
	// Seed makes the scenario-mix sequence deterministic per worker.
	Seed int64
	// Mix is the weighted scenario set (required).
	Mix []Scenario
	// StatsInterval, when positive, samples the target's GET /v1/stats
	// every interval for the run's duration (soak mode): the report then
	// carries the cache hit/miss trajectory, not just the final
	// snapshot, so a soak run shows warmup, steady state and eviction
	// churn over time.
	StatsInterval time.Duration
}

// Report is the JSON-serializable outcome of one run.
type Report struct {
	// Target echoes the base URL; Concurrency/Requested/Seed echo the
	// config.
	Target      string `json:"target"`
	Concurrency int    `json:"concurrency"`
	Requested   int    `json:"requested,omitempty"`
	Seed        int64  `json:"seed"`

	// Total counts completed requests; ElapsedMS the run wall clock;
	// Throughput the achieved requests/second.
	Total      int     `json:"total"`
	ElapsedMS  float64 `json:"elapsedMs"`
	Throughput float64 `json:"throughputRps"`

	// OK counts requests in the "ok" class. Outcomes maps every
	// outcome class to its count (including "ok"); the values sum to
	// Total. Errors is Outcomes minus "ok" — the error taxonomy.
	OK       int            `json:"ok"`
	Outcomes map[string]int `json:"outcomes"`
	Errors   map[string]int `json:"errors,omitempty"`

	// StatusCounts maps observed HTTP status codes (as strings) to
	// counts; transport failures never reach a status.
	StatusCounts map[string]int `json:"statusCounts,omitempty"`

	// Latency summarizes the full latency distribution.
	Latency LatencySummary `json:"latency"`

	// LatencyCold summarizes only the run's first-touch requests — the
	// first request of each scenario, the ones that pay cold engine
	// builds on the server — and LatencyWarm the rest, so a report no
	// longer conflates one-off build cost with steady-state latency.
	// Latency stays the combined view; both phases are omitted when the
	// run produced no samples for them.
	LatencyCold *LatencySummary `json:"latencyCold,omitempty"`
	LatencyWarm *LatencySummary `json:"latencyWarm,omitempty"`

	// Scenarios breaks the outcome classes down per mix entry.
	Scenarios map[string]*ScenarioStats `json:"scenarios"`

	// ServerStats, when the target exposes GET /v1/stats, snapshots the
	// server's engine-cache counters after the run — the soak-mode
	// accounting ROADMAP asked for (see FetchServerStats).
	ServerStats json.RawMessage `json:"serverStats,omitempty"`

	// StatsTrajectory is the periodic GET /v1/stats samples recorded
	// when Config.StatsInterval is set, in capture order: the cache
	// counters' evolution across the run.
	StatsTrajectory []StatsSample `json:"statsTrajectory,omitempty"`
}

// StatsSample is one soak-mode stats capture.
type StatsSample struct {
	// AtMS is the capture time relative to the run start.
	AtMS float64 `json:"atMs"`
	// Stats is the GET /v1/stats document verbatim; Error records a
	// failed capture instead (the trajectory keeps its cadence either
	// way).
	Stats json.RawMessage `json:"stats,omitempty"`
	Error string          `json:"error,omitempty"`
}

// FetchServerStats reads the target's GET /v1/stats document so a
// report can record the server-side cache counters next to the
// client-side taxonomy. Callers driving a non-pakd target may ignore
// the error. A nil client gets a bounded one — a stats snapshot must
// never hang a finished run on an unresponsive target.
func FetchServerStats(client *http.Client, baseURL string) (json.RawMessage, error) {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: GET /v1/stats answered %d", resp.StatusCode)
	}
	if !isJSON(body) {
		return nil, errors.New("load: GET /v1/stats body is not JSON")
	}
	return json.RawMessage(bytes.TrimSpace(body)), nil
}

// ScenarioStats is one scenario's slice of the report.
type ScenarioStats struct {
	Requests int            `json:"requests"`
	Outcomes map[string]int `json:"outcomes"`
	// Backend echoes the scenario's backend label ("lp", "auto"; absent
	// = enumeration), so a report shows which slices of the traffic the
	// second exact backend answered.
	Backend string `json:"backend,omitempty"`
}

// LatencySummary carries the distribution stats plus a fixed log-scale
// histogram, all in milliseconds.
type LatencySummary struct {
	// Count is the number of samples the summary covers.
	Count  int     `json:"count"`
	MinMS  float64 `json:"minMs"`
	MeanMS float64 `json:"meanMs"`
	P50MS  float64 `json:"p50Ms"`
	P90MS  float64 `json:"p90Ms"`
	P99MS  float64 `json:"p99Ms"`
	MaxMS  float64 `json:"maxMs"`
	// Histogram counts latencies at or under each bucket's upper bound;
	// the last bucket is unbounded.
	Histogram []HistogramBucket `json:"histogram"`
}

// HistogramBucket is one latency bucket.
type HistogramBucket struct {
	// UpperMS is the bucket's inclusive upper bound in milliseconds;
	// 0 marks the final unbounded bucket.
	UpperMS float64 `json:"upperMs"`
	Count   int     `json:"count"`
}

// bucketBounds is the fixed log-scale histogram ladder (milliseconds).
var bucketBounds = []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// outcome classes.
const (
	outcomeOK         = "ok"
	outcomeTimeout    = "timeout"
	outcomeTransport  = "transport"
	outcomeBadJSON    = "bad_json"
	outcomeBadStream  = "bad_stream"
	outcomeBadStatus  = "unexpected_status"
	outcomeHTTPPrefix = "http_"
)

// sample is one completed request's accounting record.
type sample struct {
	scenario string
	outcome  string
	status   int
	latency  time.Duration
	// cold marks the run's first request of this scenario — the one
	// that pays the server's cold engine build when the scenario names
	// a system no earlier request touched.
	cold bool
}

// firstTouch classifies each scenario's first request of the run as
// cold; everything after is warm. Shared across workers, so exactly one
// request per scenario is cold regardless of which worker drew it.
type firstTouch struct {
	mu   sync.Mutex
	seen map[string]bool
}

func (f *firstTouch) cold(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seen[name] {
		return false
	}
	f.seen[name] = true
	return true
}

// Run drives the target with the configured mix and returns the report.
// It returns an error only for unusable configuration; request-level
// failures are data, recorded in the report's taxonomy.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("load: BaseURL is required")
	}
	if len(cfg.Mix) == 0 {
		return nil, errors.New("load: the scenario mix is empty")
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return nil, errors.New("load: set Requests and/or Duration")
	}
	workers := cfg.Concurrency
	if workers < 1 {
		workers = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	if cfg.Timeout > 0 {
		// Copy before mutating: the caller's client must keep its own
		// timeout.
		c := *client
		c.Timeout = cfg.Timeout
		client = &c
	}

	// The weighted pick table: scenario index repeated weight times.
	// Mixes are tiny, so the flat table beats alias-method cleverness.
	var pick []int
	for i, sc := range cfg.Mix {
		w := sc.Weight
		if w < 1 {
			w = 1
		}
		for j := 0; j < w; j++ {
			pick = append(pick, i)
		}
	}

	// runCtx is always cancellable (not only under a Duration budget) so
	// the soak-mode stats sampler has a reliable stop signal when a
	// request-budget run drains its tickets.
	var runCtx context.Context
	var cancel context.CancelFunc
	if cfg.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
	} else {
		runCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	// tickets dispenses request slots: with a request budget it closes
	// after Requests sends; duration-only runs draw until the context
	// expires.
	tickets := make(chan struct{})
	go func() {
		defer close(tickets)
		for n := 0; cfg.Requests <= 0 || n < cfg.Requests; n++ {
			select {
			case tickets <- struct{}{}:
			case <-runCtx.Done():
				return
			}
		}
	}()

	samplesPer := make([][]sample, workers)
	touch := &firstTouch{seen: make(map[string]bool, len(cfg.Mix))}
	var wg sync.WaitGroup
	start := time.Now()

	// Soak mode: sample the server's stats endpoint on a fixed cadence
	// until the run ends. The sampler uses its own bounded client so a
	// wedged stats endpoint can't stall the trajectory forever, but the
	// bound gets a floor well above the tick: an aggressive cadence
	// against a server saturated by the workload itself must produce
	// late samples (the loop is serial, missed ticks drop), not
	// timeout-errored ones.
	var trajectory []StatsSample
	statsDone := make(chan struct{})
	if cfg.StatsInterval > 0 {
		go func() {
			defer close(statsDone)
			statsTimeout := cfg.StatsInterval
			if floor := 2 * time.Second; statsTimeout < floor {
				statsTimeout = floor
			}
			statsClient := &http.Client{Timeout: statsTimeout}
			ticker := time.NewTicker(cfg.StatsInterval)
			defer ticker.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-ticker.C:
					doc, err := FetchServerStats(statsClient, cfg.BaseURL)
					s := StatsSample{AtMS: float64(time.Since(start).Microseconds()) / 1000, Stats: doc}
					if err != nil {
						s.Error = err.Error()
					}
					trajectory = append(trajectory, s)
				}
			}
		}()
	} else {
		close(statsDone)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			for range tickets {
				sc := cfg.Mix[pick[rng.Intn(len(pick))]]
				// The cold bit is claimed BEFORE the request fires: under
				// concurrency, the claimant is the request that actually
				// races the engine build, not whichever finished first.
				cold := touch.cold(sc.Name)
				// Requests run under the PARENT context, not the duration
				// budget: expiry stops issuing tickets, while requests
				// already in flight drain normally — a healthy server must
				// never earn "timeout" classifications just because the run
				// ended around it.
				s := doRequest(ctx, client, cfg.BaseURL, sc)
				s.cold = cold
				samplesPer[w] = append(samplesPer[w], s)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	cancel()
	<-statsDone

	var all []sample
	for _, s := range samplesPer {
		all = append(all, s...)
	}
	rep := summarize(cfg, workers, all, elapsed)
	rep.StatsTrajectory = trajectory
	return rep, nil
}

// doRequest performs one request and classifies its outcome.
func doRequest(ctx context.Context, client *http.Client, base string, sc Scenario) sample {
	s := sample{scenario: sc.Name}
	var (
		req *http.Request
		err error
	)
	if sc.Body != nil {
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, base+sc.Path, bytes.NewReader(sc.Body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, base+sc.Path, nil)
	}
	if err != nil {
		s.outcome = outcomeTransport
		return s
	}

	t0 := time.Now()
	resp, err := client.Do(req)
	s.latency = time.Since(t0)
	if err != nil {
		s.outcome = classifyTransport(err)
		return s
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	s.status = resp.StatusCode
	switch {
	case readErr != nil:
		s.outcome = classifyTransport(readErr)
	case sc.ExpectStatus != 0 && resp.StatusCode != sc.ExpectStatus:
		s.outcome = outcomeBadStatus
	case sc.CheckStream && checkStream(body, sc.ExpectFrames) != "":
		s.outcome = outcomeBadStream
	case sc.CheckApproxStream && checkApproxStream(body, sc.ExpectFrames) != "":
		s.outcome = outcomeBadStream
	case sc.CheckEnvelope && checkEnvelope(body, resp.StatusCode, sc.ExpectFrames) != "":
		s.outcome = outcomeBadStream
	case sc.CheckJSON && !isJSON(body):
		s.outcome = outcomeBadJSON
	case resp.StatusCode == http.StatusOK:
		s.outcome = outcomeOK
	case sc.ExpectStatus == resp.StatusCode:
		// An error status this scenario deliberately provokes counts as
		// its success: the error path answered as designed.
		s.outcome = outcomeOK
	default:
		s.outcome = fmt.Sprintf("%s%d", outcomeHTTPPrefix, resp.StatusCode)
	}
	return s
}

// classifyTransport separates deadline expiry from other transport
// failures.
func classifyTransport(err error) string {
	var ne interface{ Timeout() bool }
	if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		return outcomeTimeout
	}
	return outcomeTransport
}

// isJSON reports whether data parses as a JSON document. A hand-rolled
// first-byte probe would accept truncated bodies; real decoding keeps
// "bad_json" honest.
func isJSON(data []byte) bool {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return false
	}
	var v any
	return json.Unmarshal(trimmed, &v) == nil
}

// summarize folds the samples into the report.
func summarize(cfg Config, workers int, all []sample, elapsed time.Duration) *Report {
	rep := &Report{
		Target:       cfg.BaseURL,
		Concurrency:  workers,
		Requested:    cfg.Requests,
		Seed:         cfg.Seed,
		Total:        len(all),
		ElapsedMS:    float64(elapsed.Microseconds()) / 1000,
		Outcomes:     make(map[string]int),
		Errors:       make(map[string]int),
		StatusCounts: make(map[string]int),
		Scenarios:    make(map[string]*ScenarioStats),
	}
	if elapsed > 0 {
		rep.Throughput = float64(len(all)) / elapsed.Seconds()
	}

	backendOf := make(map[string]string, len(cfg.Mix))
	for _, sc := range cfg.Mix {
		if sc.Backend != "" {
			backendOf[sc.Name] = sc.Backend
		}
	}

	latencies := make([]float64, 0, len(all))
	var coldMS, warmMS []float64
	for _, s := range all {
		rep.Outcomes[s.outcome]++
		if s.outcome == outcomeOK {
			rep.OK++
		} else {
			rep.Errors[s.outcome]++
		}
		if s.status != 0 {
			rep.StatusCounts[fmt.Sprintf("%d", s.status)]++
		}
		st := rep.Scenarios[s.scenario]
		if st == nil {
			st = &ScenarioStats{Outcomes: make(map[string]int), Backend: backendOf[s.scenario]}
			rep.Scenarios[s.scenario] = st
		}
		st.Requests++
		st.Outcomes[s.outcome]++
		if s.latency > 0 {
			ms := float64(s.latency.Microseconds()) / 1000
			latencies = append(latencies, ms)
			if s.cold {
				coldMS = append(coldMS, ms)
			} else {
				warmMS = append(warmMS, ms)
			}
		}
	}
	if len(rep.Errors) == 0 {
		rep.Errors = nil
	}
	if len(rep.StatusCounts) == 0 {
		rep.StatusCounts = nil
	}
	rep.Latency = summarizeLatency(latencies)
	if len(coldMS) > 0 {
		cold := summarizeLatency(coldMS)
		rep.LatencyCold = &cold
	}
	if len(warmMS) > 0 {
		warm := summarizeLatency(warmMS)
		rep.LatencyWarm = &warm
	}
	return rep
}

// summarizeLatency computes the distribution stats and histogram.
func summarizeLatency(ms []float64) LatencySummary {
	sum := LatencySummary{Count: len(ms)}
	buckets := make([]HistogramBucket, len(bucketBounds)+1)
	for i, b := range bucketBounds {
		buckets[i].UpperMS = b
	}
	sum.Histogram = buckets
	if len(ms) == 0 {
		return sum
	}
	sort.Float64s(ms)
	total := 0.0
	for _, v := range ms {
		total += v
		placed := false
		for i, b := range bucketBounds {
			if v <= b {
				buckets[i].Count++
				placed = true
				break
			}
		}
		if !placed {
			buckets[len(buckets)-1].Count++
		}
	}
	sum.MinMS = ms[0]
	sum.MaxMS = ms[len(ms)-1]
	sum.MeanMS = total / float64(len(ms))
	sum.P50MS = percentile(ms, 0.50)
	sum.P90MS = percentile(ms, 0.90)
	sum.P99MS = percentile(ms, 0.99)
	return sum
}

// percentile reads the p-quantile from a sorted slice (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
