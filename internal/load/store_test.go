package load

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pak/internal/service"
	"pak/internal/store"
)

// storeServer is an in-process pakd backed by a persistent result store
// over dir, tuned like stressServer.
func storeServer(t *testing.T, dir string) (*service.Server, *httptest.Server) {
	t.Helper()
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(nil,
		service.WithResultStore(d),
		service.WithEngineCacheSize(3),
		service.WithRequestTimeout(30*time.Second),
		service.WithMaxParallelism(4),
	)
	ts := httptest.NewServer(srv.Handler())
	return srv, ts
}

// postBody POSTs one scenario body and returns status + response bytes.
func postBody(t *testing.T, client *http.Client, url string, sc Scenario) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url+sc.Path, "application/json", bytes.NewReader(sc.Body))
	if err != nil {
		t.Fatalf("POST %s: %v", sc.Path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", sc.Path, err)
	}
	return resp.StatusCode, body
}

// serverCounters pulls the stats document's store and engine-cache
// counters.
func serverCounters(t *testing.T, url string) (storeHits, storeMisses, cacheMisses int64) {
	t.Helper()
	stats, err := FetchServerStats(nil, url)
	if err != nil {
		t.Fatalf("stats snapshot: %v", err)
	}
	var doc struct {
		EngineCache struct {
			Misses int64 `json:"misses"`
		} `json:"engineCache"`
		Store *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"store"`
	}
	if err := json.Unmarshal(stats, &doc); err != nil {
		t.Fatalf("stats document: %v", err)
	}
	if doc.Store == nil {
		t.Fatalf("stats carry no store counters: %s", stats)
	}
	return doc.Store.Hits, doc.Store.Misses, doc.EngineCache.Misses
}

// TestStoreRestartSmoke is the restart-without-recomputation gate, run
// under -race in make load-smoke: the squad mix populates a persistent
// result store through one server, that server dies, and a fresh server
// over the same directory answers the same eval bodies byte-identically
// — with store hits, zero store misses and ZERO engine builds. The
// restart really does skip recomputation; it does not just happen to
// agree.
func TestStoreRestartSmoke(t *testing.T) {
	dir := t.TempDir()
	mix, err := BuiltinMix("squad")
	if err != nil {
		t.Fatal(err)
	}
	// The eval POST scenarios: the slots the store must carry across the
	// restart (the catalog GETs have no results to persist). The fanout
	// body is held aside: its fsquad slots answer designed per-slot
	// domain errors, which are never persisted — it proves the mixed
	// hit/recompute merge instead of the zero-rebuild replay.
	var evals []Scenario
	var fanout *Scenario
	for _, sc := range mix {
		if sc.Body == nil || sc.Path != "/v1/eval" {
			continue
		}
		if sc.Name == "eval-fanout" {
			sc := sc
			fanout = &sc
			continue
		}
		evals = append(evals, sc)
	}
	if len(evals) == 0 || fanout == nil {
		t.Fatal("squad mix lost its eval scenarios")
	}

	// First life: drive the mix under load, then capture one reference
	// body per eval scenario from the still-running server.
	_, ts1 := storeServer(t, dir)
	requests := 60
	concurrency := 6
	if testing.Short() {
		requests, concurrency = 30, 3
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts1.URL,
		Concurrency: concurrency,
		Requests:    requests,
		Timeout:     time.Minute,
		Seed:        1,
		Mix:         mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != rep.Total {
		t.Fatalf("populate run not clean: ok=%d of %d, errors=%v", rep.OK, rep.Total, rep.Errors)
	}
	client := &http.Client{Timeout: time.Minute}
	reference := make([][]byte, len(evals))
	for i, sc := range evals {
		status, body := postBody(t, client, ts1.URL, sc)
		if status != http.StatusOK {
			t.Fatalf("reference %s answered %d", sc.Name, status)
		}
		reference[i] = body
	}
	fanStatus, fanReference := postBody(t, client, ts1.URL, *fanout)
	if fanStatus != http.StatusOK {
		t.Fatalf("reference %s answered %d", fanout.Name, fanStatus)
	}
	ts1.Close()

	// Second life: a fresh server (cold engine cache) over the same
	// directory must replay every body byte-identically from the store.
	srv2, ts2 := storeServer(t, dir)
	defer ts2.Close()
	for i, sc := range evals {
		status, body := postBody(t, client, ts2.URL, sc)
		if status != http.StatusOK {
			t.Errorf("replay %s answered %d", sc.Name, status)
			continue
		}
		if !bytes.Equal(body, reference[i]) {
			t.Errorf("replay %s is not byte-identical:\n first life: %s\nsecond life: %s",
				sc.Name, reference[i], body)
		}
	}
	hits, misses, cacheMisses := serverCounters(t, ts2.URL)
	if hits == 0 {
		t.Error("restarted server served no store hits")
	}
	if misses != 0 {
		t.Errorf("restarted server missed the store %d times", misses)
	}
	if cacheMisses != 0 {
		t.Errorf("restarted server built %d engines, want 0 — the store did not skip recomputation", cacheMisses)
	}
	if st := srv2.Cache().Stats(); st.Len != 0 {
		t.Errorf("restarted server retains %d engines, want 0", st.Len)
	}

	// The fanout body mixes stored slots with fsquad's never-persisted
	// error slots: the restarted server must merge store hits and fresh
	// recomputation into the same byte-identical response.
	status, body := postBody(t, client, ts2.URL, *fanout)
	if status != http.StatusOK {
		t.Fatalf("fanout replay answered %d", status)
	}
	if !bytes.Equal(body, fanReference) {
		t.Errorf("fanout replay is not byte-identical:\n first life: %s\nsecond life: %s",
			fanReference, body)
	}
	hits2, misses2, _ := serverCounters(t, ts2.URL)
	if hits2 <= hits {
		t.Errorf("fanout replay served no store hits (hits %d -> %d)", hits, hits2)
	}
	if misses2 == 0 {
		t.Error("fanout's error slots hit the store — error results must never persist")
	}
}

// TestLoadColdWarmSplit: the report separates first-touch latency from
// steady-state latency — exactly one cold sample per scenario that ran,
// the phases partition the combined distribution, and the split
// survives the report's JSON round-trip.
func TestLoadColdWarmSplit(t *testing.T) {
	ts := stressServer(t)
	mix, err := BuiltinMix("squad")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Requests:    40,
		Timeout:     time.Minute,
		Seed:        2,
		Mix:         mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != rep.Total {
		t.Fatalf("run not clean: ok=%d of %d, errors=%v", rep.OK, rep.Total, rep.Errors)
	}
	if rep.LatencyCold == nil || rep.LatencyWarm == nil {
		t.Fatalf("report lacks the cold/warm split: cold=%v warm=%v", rep.LatencyCold, rep.LatencyWarm)
	}
	if rep.LatencyCold.Count != len(rep.Scenarios) {
		t.Errorf("cold samples = %d, want one per scenario that ran (%d)",
			rep.LatencyCold.Count, len(rep.Scenarios))
	}
	if got := rep.LatencyCold.Count + rep.LatencyWarm.Count; got != rep.Latency.Count {
		t.Errorf("phases do not partition the distribution: %d cold + %d warm != %d total",
			rep.LatencyCold.Count, rep.LatencyWarm.Count, rep.Latency.Count)
	}
	if rep.Latency.Count != rep.Total {
		t.Errorf("latency summary covers %d samples of %d requests", rep.Latency.Count, rep.Total)
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.LatencyCold == nil || back.LatencyCold.Count != rep.LatencyCold.Count {
		t.Errorf("round-trip lost the cold summary: %+v", back.LatencyCold)
	}
}
