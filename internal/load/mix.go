package load

import (
	"fmt"
	"net/http"

	"pak/internal/epistemic"
	"pak/internal/logic"
	"pak/internal/query"
	"pak/internal/randsys"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// The built-in mixes, shared by cmd/pakload and the smoke/stress tests
// so "the standard workload" means one thing everywhere:
//
//   - "squad": the happy path — catalog reads plus query batches over
//     the 2- and 3-agent firing squads (warm-cache traffic once the
//     engines are built).
//   - "mixed": "squad" plus deliberate client errors (unknown scenario,
//     bad params, malformed batch), each expecting its 4xx — the error
//     taxonomy and the service's error paths under load.
//   - "heavy": cold-build churn — distinct random(seed=…) specs that
//     defeat the engine cache by design, plus the squad batches, so
//     eviction and singleflight stay busy.
//
// Every mix is deterministic data (no clocks, no RNG), so two runs with
// one seed issue the same request sequence.

// MixNames lists the built-in mixes.
func MixNames() []string {
	return []string{"squad", "mixed", "heavy", "stream", "envelope", "approx", "lp"}
}

// BuiltinMix returns the named mix, or an error naming the valid set.
func BuiltinMix(name string) ([]Scenario, error) {
	switch name {
	case "squad":
		return squadMix()
	case "mixed":
		return mixedMix()
	case "heavy":
		return heavyMix()
	case "stream":
		return streamMix()
	case "envelope":
		return envelopeMix()
	case "approx":
		return approxMix()
	case "lp":
		return lpMix()
	default:
		return nil, fmt.Errorf("load: unknown mix %q (have %v)", name, MixNames())
	}
}

// evalBody renders a /v1/eval request body naming the systems with one
// standard squad batch (constraint + expectation + Theorem 6.2 against
// the General).
func evalBody(n int, systems ...string) ([]byte, error) {
	all := scenarios.AllFireFact(n)
	batch, err := query.MarshalBatch([]query.Query{
		query.ConstraintQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		query.ExpectationQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		query.TheoremQuery{Theorem: query.TheoremExpectation, Fact: all,
			Agent: scenarios.General, Action: scenarios.ActFire},
		query.ThresholdQuery{Fact: all, Agent: scenarios.General,
			Action: scenarios.ActFire, P: ratutil.R(9, 10)},
	})
	if err != nil {
		return nil, err
	}
	doc := []byte(`{"systems": [`)
	for i, s := range systems {
		if i > 0 {
			doc = append(doc, ',')
		}
		doc = append(doc, fmt.Sprintf("%q", s)...)
	}
	doc = append(doc, `], "queries": `...)
	doc = append(doc, batch...)
	doc = append(doc, '}')
	return doc, nil
}

func squadMix() ([]Scenario, error) {
	two, err := evalBody(2, "nsquad(2)")
	if err != nil {
		return nil, err
	}
	three, err := evalBody(3, "nsquad(3)")
	if err != nil {
		return nil, err
	}
	fan, err := evalBody(2, "nsquad(2)", "nsquad(n=2,loss=1/10)", "fsquad")
	if err != nil {
		return nil, err
	}
	return []Scenario{
		{Name: "eval-nsquad2", Path: "/v1/eval", Body: two, Weight: 4,
			ExpectStatus: http.StatusOK, CheckJSON: true},
		{Name: "eval-nsquad3", Path: "/v1/eval", Body: three, Weight: 2,
			ExpectStatus: http.StatusOK, CheckJSON: true},
		{Name: "eval-fanout", Path: "/v1/eval", Body: fan, Weight: 2,
			ExpectStatus: http.StatusOK, CheckJSON: true},
		{Name: "catalog", Path: "/v1/scenarios", Weight: 1,
			ExpectStatus: http.StatusOK, CheckJSON: true},
		{Name: "catalog-one", Path: "/v1/scenarios/nsquad", Weight: 1,
			ExpectStatus: http.StatusOK, CheckJSON: true},
	}, nil
}

func mixedMix() ([]Scenario, error) {
	mix, err := squadMix()
	if err != nil {
		return nil, err
	}
	return append(mix,
		Scenario{Name: "err-unknown-scenario", Path: "/v1/eval",
			Body:   []byte(`{"systems": ["nosuch"], "queries": []}`),
			Weight: 1, ExpectStatus: http.StatusNotFound, CheckJSON: true},
		Scenario{Name: "err-bad-params", Path: "/v1/eval",
			Body:   []byte(`{"systems": ["nsquad(n=zero)"], "queries": []}`),
			Weight: 1, ExpectStatus: http.StatusBadRequest, CheckJSON: true},
		Scenario{Name: "err-bad-batch", Path: "/v1/eval",
			Body:   []byte(`{"systems": ["nsquad(2)"], "queries": [{"kind": "nope"}]}`),
			Weight: 1, ExpectStatus: http.StatusBadRequest, CheckJSON: true},
	), nil
}

// streamMix drives /v1/eval/stream with the standard squad bodies under
// full frame validation: every response must be a well-formed NDJSON
// stream whose (system, index) coordinates form a hole-free set with
// the exact per-batch frame count, closed by a designed terminal frame.
// Against a deadlined server the same mix asserts the prefix-on-timeout
// contract instead (unfinished slots name the deadline, finished slots
// stay clean) — the harness side of the tentpole's "finished work is
// never lost" guarantee.
func streamMix() ([]Scenario, error) {
	two, err := evalBody(2, "nsquad(2)")
	if err != nil {
		return nil, err
	}
	three, err := evalBody(3, "nsquad(3)")
	if err != nil {
		return nil, err
	}
	fan, err := evalBody(2, "nsquad(2)", "nsquad(n=2,loss=1/10)", "fsquad")
	if err != nil {
		return nil, err
	}
	return []Scenario{
		// evalBody carries 4 queries; the fan-out names 3 systems.
		{Name: "stream-nsquad2", Path: "/v1/eval/stream", Body: two, Weight: 4,
			ExpectStatus: http.StatusOK, CheckStream: true, ExpectFrames: 4},
		{Name: "stream-nsquad3", Path: "/v1/eval/stream", Body: three, Weight: 2,
			ExpectStatus: http.StatusOK, CheckStream: true, ExpectFrames: 4},
		{Name: "stream-fanout", Path: "/v1/eval/stream", Body: fan, Weight: 2,
			ExpectStatus: http.StatusOK, CheckStream: true, ExpectFrames: 12},
		{Name: "stats", Path: "/v1/stats", Weight: 1,
			ExpectStatus: http.StatusOK, CheckJSON: true},
	}, nil
}

// envelopeBody renders a /v1/envelope request body sweeping the space
// with the standard constraint query (all n agents fire, judged for the
// General).
func envelopeBody(space string, n int) ([]byte, error) {
	doc, err := query.Marshal(query.ConstraintQuery{
		Fact:  scenarios.AllFireFact(n),
		Agent: scenarios.General, Action: scenarios.ActFire,
	})
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf(`{"space": %q, "query": %s}`, space, doc)), nil
}

// envelopeMix drives the envelope endpoints: buffered sweeps (fully
// visited envelopes on 200), streamed sweeps under full frame
// validation (hole-free assignment indices, running envelopes, the
// terminal's final envelope), the deliberate error probes of the sweep
// grammar, and the stats read. Sweep instances are canonical system
// specs, so this mix doubles as shared-EngineCache traffic: concurrent
// sweeps over one space keep hitting the same engines.
func envelopeMix() ([]Scenario, error) {
	// 6 assignments: nsquad(2) loss 0..1/2 by 1/10.
	sweep2, err := envelopeBody("sweep(nsquad,n=2,loss=0..1/2/1/10)", 2)
	if err != nil {
		return nil, err
	}
	// 3 assignments over the 3-agent squad.
	sweep3, err := envelopeBody("sweep(nsquad,n=3,loss=0..1/5/1/10)", 3)
	if err != nil {
		return nil, err
	}
	return []Scenario{
		{Name: "envelope-nsquad2", Path: "/v1/envelope", Body: sweep2, Weight: 3,
			ExpectStatus: http.StatusOK, CheckJSON: true, CheckEnvelope: true, ExpectFrames: 6},
		{Name: "envelope-nsquad3", Path: "/v1/envelope", Body: sweep3, Weight: 2,
			ExpectStatus: http.StatusOK, CheckJSON: true, CheckEnvelope: true, ExpectFrames: 3},
		{Name: "envelope-stream-nsquad2", Path: "/v1/envelope/stream", Body: sweep2, Weight: 3,
			ExpectStatus: http.StatusOK, CheckEnvelope: true, ExpectFrames: 6},
		{Name: "envelope-stream-nsquad3", Path: "/v1/envelope/stream", Body: sweep3, Weight: 2,
			ExpectStatus: http.StatusOK, CheckEnvelope: true, ExpectFrames: 3},
		{Name: "err-envelope-unknown-scenario", Path: "/v1/envelope",
			Body:   []byte(`{"space": "sweep(nosuch,loss=0..1)", "query": {"kind":"constraint","agent":"a","action":"b","fact":{"op":"does","agent":"a","action":"b"}}}`),
			Weight: 1, ExpectStatus: http.StatusNotFound, CheckJSON: true},
		{Name: "err-envelope-bad-range", Path: "/v1/envelope",
			Body:   []byte(`{"space": "sweep(nsquad,loss=1..0)", "query": {"kind":"constraint","agent":"a","action":"b","fact":{"op":"does","agent":"a","action":"b"}}}`),
			Weight: 1, ExpectStatus: http.StatusBadRequest, CheckJSON: true},
		{Name: "stats", Path: "/v1/stats", Weight: 1,
			ExpectStatus: http.StatusOK, CheckJSON: true},
	}, nil
}

// approxEvalBody is evalBody with the approximate-tier knob spliced in:
// the same standard squad batch, answered approx-first. approxJSON is
// the raw `"approx"` object (fixed samples + seed keeps every run of a
// scenario byte-identical — mixes stay deterministic data).
func approxEvalBody(n int, approxJSON string, systems ...string) ([]byte, error) {
	body, err := evalBody(n, systems...)
	if err != nil {
		return nil, err
	}
	body = body[:len(body)-1] // drop the closing brace
	body = append(body, `, "approx": `...)
	body = append(body, approxJSON...)
	body = append(body, '}')
	return body, nil
}

// approxMix drives the approximate tier end to end: buffered approx
// evals (estimates attached to refined results on 200), approx streams
// under full frame validation via CheckApproxStream — per slot the
// stage sequence must be approx-then-exact (or approx alone under Only
// / a deadline cut, or exact alone for unsupported kinds), approx
// frames must carry their intervals, and ExpectFrames pins the SLOT
// count — plus the bad-spec error probes and the stats read. The
// fixed samples+seed in every body make each scenario's responses
// deterministic, which is what lets the validator be strict.
func approxMix() ([]Scenario, error) {
	two, err := approxEvalBody(2, `{"samples": 64, "seed": 7}`, "nsquad(2)")
	if err != nil {
		return nil, err
	}
	fan, err := approxEvalBody(2, `{"samples": 64, "seed": 7}`,
		"nsquad(2)", "nsquad(n=2,loss=1/10)", "fsquad")
	if err != nil {
		return nil, err
	}
	only, err := approxEvalBody(2, `{"eps": "1/10", "delta": "1/100", "seed": 3, "only": true}`,
		"nsquad(2)")
	if err != nil {
		return nil, err
	}
	return []Scenario{
		// evalBody carries 4 queries (4 slots per system); the fan-out
		// names 3 systems.
		{Name: "approx-eval-nsquad2", Path: "/v1/eval", Body: two, Weight: 3,
			ExpectStatus: http.StatusOK, CheckJSON: true},
		{Name: "approx-stream-nsquad2", Path: "/v1/eval/stream", Body: two, Weight: 3,
			ExpectStatus: http.StatusOK, CheckApproxStream: true, ExpectFrames: 4},
		{Name: "approx-stream-fanout", Path: "/v1/eval/stream", Body: fan, Weight: 2,
			ExpectStatus: http.StatusOK, CheckApproxStream: true, ExpectFrames: 12},
		{Name: "approx-only-stream", Path: "/v1/eval/stream", Body: only, Weight: 2,
			ExpectStatus: http.StatusOK, CheckApproxStream: true, ExpectFrames: 4},
		{Name: "err-approx-bad-eps", Path: "/v1/eval",
			Body:   []byte(`{"systems": ["nsquad(2)"], "queries": [], "approx": {"eps": "0"}}`),
			Weight: 1, ExpectStatus: http.StatusBadRequest, CheckJSON: true},
		{Name: "err-approx-bad-delta", Path: "/v1/eval",
			Body:   []byte(`{"systems": ["nsquad(2)"], "queries": [], "approx": {"samples": 16, "delta": "2"}}`),
			Weight: 1, ExpectStatus: http.StatusBadRequest, CheckJSON: true},
		{Name: "stats", Path: "/v1/stats", Weight: 1,
			ExpectStatus: http.StatusOK, CheckJSON: true},
	}, nil
}

// lpEvalBody renders a /v1/eval request body carrying an LP-supported
// batch — belief, constraint and threshold queries over the epistemic
// condition "the General believes (≥ p) that all n soldiers fire" —
// with the "backend":"lp" knob spliced in. Belief facts are past-based
// regardless of what they wrap (belief at a point is a function of the
// local state alone), so the strict lp backend accepts every slot.
func lpEvalBody(n int, systems ...string) ([]byte, error) {
	believed := epistemic.Believes(scenarios.General, ratutil.R(1, 2), scenarios.AllFireFact(n))
	batch, err := query.MarshalBatch([]query.Query{
		query.ConstraintQuery{Fact: believed, Agent: scenarios.General,
			Action: scenarios.ActFire, Threshold: ratutil.R(1, 2)},
		query.ThresholdQuery{Fact: believed, Agent: scenarios.General,
			Action: scenarios.ActFire, P: ratutil.R(1, 2)},
		query.BeliefQuery{Fact: believed, Agent: scenarios.General, Action: scenarios.ActFire},
	})
	if err != nil {
		return nil, err
	}
	doc := []byte(`{"systems": [`)
	for i, s := range systems {
		if i > 0 {
			doc = append(doc, ',')
		}
		doc = append(doc, fmt.Sprintf("%q", s)...)
	}
	doc = append(doc, `], "queries": `...)
	doc = append(doc, batch...)
	doc = append(doc, `, "backend": "lp"}`...)
	return doc, nil
}

// lpMix drives the LP backend end to end: buffered and streamed evals
// whose every slot is answered by exact-rational linear programs (the
// responses are byte-identical to enumeration's, so CheckJSON and the
// stream validator apply unchanged), the strict backend's deliberate
// 400 on a future-reading batch, and the stats read picking up the
// per-backend counters. Each scenario labels itself with the backend so
// the report's per-scenario stats carry the routing.
func lpMix() ([]Scenario, error) {
	two, err := lpEvalBody(2, "nsquad(2)")
	if err != nil {
		return nil, err
	}
	three, err := lpEvalBody(3, "nsquad(3)")
	if err != nil {
		return nil, err
	}
	fan, err := lpEvalBody(2, "nsquad(2)", "nsquad(n=2,loss=1/10)", "fsquad")
	if err != nil {
		return nil, err
	}
	// A does-fact reads the future: outside the LP fragment, so the
	// strict backend must answer the designed 400.
	unsupported, err := evalBody(2, "nsquad(2)")
	if err != nil {
		return nil, err
	}
	unsupported = unsupported[:len(unsupported)-1]
	unsupported = append(unsupported, `, "backend": "lp"}`...)
	return []Scenario{
		// lpEvalBody carries 3 queries; the fan-out names 3 systems.
		{Name: "lp-eval-nsquad2", Path: "/v1/eval", Body: two, Weight: 3,
			ExpectStatus: http.StatusOK, CheckJSON: true, Backend: "lp"},
		{Name: "lp-eval-nsquad3", Path: "/v1/eval", Body: three, Weight: 2,
			ExpectStatus: http.StatusOK, CheckJSON: true, Backend: "lp"},
		{Name: "lp-stream-nsquad2", Path: "/v1/eval/stream", Body: two, Weight: 2,
			ExpectStatus: http.StatusOK, CheckStream: true, ExpectFrames: 3, Backend: "lp"},
		{Name: "lp-stream-fanout", Path: "/v1/eval/stream", Body: fan, Weight: 2,
			ExpectStatus: http.StatusOK, CheckStream: true, ExpectFrames: 9, Backend: "lp"},
		{Name: "err-lp-unsupported", Path: "/v1/eval", Body: unsupported, Weight: 1,
			ExpectStatus: http.StatusBadRequest, CheckJSON: true, Backend: "lp"},
		{Name: "stats", Path: "/v1/stats", Weight: 1,
			ExpectStatus: http.StatusOK, CheckJSON: true},
	}, nil
}

func heavyMix() ([]Scenario, error) {
	mix, err := squadMix()
	if err != nil {
		return nil, err
	}
	// Distinct random(seed=…) specs: each is a new canonical key, so a
	// bounded engine cache must evict under this traffic. Small depth
	// keeps each individual build cheap; the churn is the point.
	for seed := 1; seed <= 8; seed++ {
		body, err := randEvalBody(seed)
		if err != nil {
			return nil, err
		}
		mix = append(mix, Scenario{
			Name: fmt.Sprintf("eval-random-seed%d", seed), Path: "/v1/eval",
			Body: body, Weight: 1, ExpectStatus: http.StatusOK, CheckJSON: true,
		})
	}
	return mix, nil
}

// randEvalBody names one random(seed=…) system with a constraint query
// against its designated agent/action (a0 performs alpha* in every
// generated system).
func randEvalBody(seed int) ([]byte, error) {
	batch, err := query.MarshalBatch([]query.Query{
		query.ConstraintQuery{
			Fact:  logic.Does("a0", randsys.DesignatedAction),
			Agent: "a0", Action: randsys.DesignatedAction,
		},
	})
	if err != nil {
		return nil, err
	}
	doc := fmt.Sprintf(`{"systems": ["random(seed=%d,depth=4,branch=2,agents=2)"], "queries": %s}`,
		seed, batch)
	return []byte(doc), nil
}
