package load

// Stream validation: the load harness's client-side model of the
// /v1/eval/stream wire contract. It deliberately decodes the NDJSON
// frames with its own minimal structs rather than importing the
// service's types — the harness plays an external client, so a wire
// drift the service's own tests miss still fails here as "bad_stream".

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// wireFrame is the superset of one stream line's fields the validator
// needs.
type wireFrame struct {
	Frame  string `json:"frame"`
	System int    `json:"system"`
	Index  int    `json:"index"`
	Status string `json:"status"`
	Error  string `json:"error"`
	Result struct {
		Error string `json:"error"`
	} `json:"result"`
}

// checkStream validates one NDJSON eval-stream body and returns "" when
// it honours the contract, or a short reason when it does not:
//
//   - every line is a JSON frame; result frames only before the single
//     terminal status frame, which is last;
//   - (system, index) coordinates form a set — no duplicates — with no
//     holes (every index below a system's maximum is present);
//   - expectFrames > 0 pins the exact result-frame count (the service
//     emits one frame per query even under a deadline);
//   - a "complete" terminal means no slot carries a context error; a
//     "deadline"/"cancelled" terminal means unfinished slots name the
//     context error while finished slots stay clean — the
//     prefix-on-timeout contract at the wire level.
func checkStream(body []byte, expectFrames int) string {
	lines := strings.Split(strings.TrimSuffix(string(bytes.TrimSpace(body)), "\n"), "\n")
	var results []wireFrame
	var terminal *wireFrame
	for ln, line := range lines {
		var f wireFrame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			return fmt.Sprintf("line %d is not a JSON frame", ln)
		}
		if terminal != nil {
			return fmt.Sprintf("line %d follows the terminal status frame", ln)
		}
		switch f.Frame {
		case "result":
			results = append(results, f)
		case "status":
			tf := f
			terminal = &tf
		default:
			return fmt.Sprintf("line %d has unknown frame kind %q", ln, f.Frame)
		}
	}
	if terminal == nil {
		return "stream has no terminal status frame"
	}
	if expectFrames > 0 && len(results) != expectFrames {
		return fmt.Sprintf("stream carries %d result frames, want %d", len(results), expectFrames)
	}

	seen := make(map[[2]int]bool, len(results))
	maxIndex := make(map[int]int)
	perSystem := make(map[int]int)
	for _, f := range results {
		key := [2]int{f.System, f.Index}
		if seen[key] {
			return fmt.Sprintf("slot (%d,%d) emitted twice", f.System, f.Index)
		}
		seen[key] = true
		if f.Index > maxIndex[f.System] {
			maxIndex[f.System] = f.Index
		}
		perSystem[f.System]++
	}
	for sys, max := range maxIndex {
		if perSystem[sys] != max+1 {
			return fmt.Sprintf("system %d has holes: %d frames but max index %d", sys, perSystem[sys], max)
		}
	}

	switch terminal.Status {
	case "complete":
		for _, f := range results {
			if strings.Contains(f.Result.Error, "context deadline exceeded") ||
				strings.Contains(f.Result.Error, "context canceled") {
				return fmt.Sprintf("complete stream carries a context error in slot (%d,%d)", f.System, f.Index)
			}
		}
	case "deadline", "cancelled":
		if terminal.Error == "" {
			return fmt.Sprintf("%s terminal frame has no error message", terminal.Status)
		}
		cause := "context deadline exceeded"
		if terminal.Status == "cancelled" {
			cause = "context canceled"
		}
		for _, f := range results {
			if f.Result.Error != "" && !strings.Contains(f.Result.Error, cause) {
				return fmt.Sprintf("unfinished slot (%d,%d) has a non-context error under %s: %s",
					f.System, f.Index, terminal.Status, f.Result.Error)
			}
		}
	default:
		return fmt.Sprintf("terminal status %q is not a designed outcome for this scenario", terminal.Status)
	}
	return ""
}
