package load

// Stream validation: the load harness's client-side model of the
// /v1/eval/stream wire contract. It deliberately decodes the NDJSON
// frames with its own minimal structs rather than importing the
// service's types — the harness plays an external client, so a wire
// drift the service's own tests miss still fails here as "bad_stream".

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// wireFrame is the superset of one stream line's fields the validator
// needs.
type wireFrame struct {
	Frame  string `json:"frame"`
	System int    `json:"system"`
	Index  int    `json:"index"`
	Status string `json:"status"`
	Error  string `json:"error"`
	Result struct {
		Error string `json:"error"`
	} `json:"result"`
}

// checkStream validates one NDJSON eval-stream body and returns "" when
// it honours the contract, or a short reason when it does not:
//
//   - every line is a JSON frame; result frames only before the single
//     terminal status frame, which is last;
//   - (system, index) coordinates form a set — no duplicates — with no
//     holes (every index below a system's maximum is present);
//   - expectFrames > 0 pins the exact result-frame count (the service
//     emits one frame per query even under a deadline);
//   - a "complete" terminal means no slot carries a context error; a
//     "deadline"/"cancelled" terminal means unfinished slots name the
//     context error while finished slots stay clean — the
//     prefix-on-timeout contract at the wire level.
func checkStream(body []byte, expectFrames int) string {
	lines := strings.Split(strings.TrimSuffix(string(bytes.TrimSpace(body)), "\n"), "\n")
	var results []wireFrame
	var terminal *wireFrame
	for ln, line := range lines {
		var f wireFrame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			return fmt.Sprintf("line %d is not a JSON frame", ln)
		}
		if terminal != nil {
			return fmt.Sprintf("line %d follows the terminal status frame", ln)
		}
		switch f.Frame {
		case "result":
			results = append(results, f)
		case "status":
			tf := f
			terminal = &tf
		default:
			return fmt.Sprintf("line %d has unknown frame kind %q", ln, f.Frame)
		}
	}
	if terminal == nil {
		return "stream has no terminal status frame"
	}
	if expectFrames > 0 && len(results) != expectFrames {
		return fmt.Sprintf("stream carries %d result frames, want %d", len(results), expectFrames)
	}

	seen := make(map[[2]int]bool, len(results))
	maxIndex := make(map[int]int)
	perSystem := make(map[int]int)
	for _, f := range results {
		key := [2]int{f.System, f.Index}
		if seen[key] {
			return fmt.Sprintf("slot (%d,%d) emitted twice", f.System, f.Index)
		}
		seen[key] = true
		if f.Index > maxIndex[f.System] {
			maxIndex[f.System] = f.Index
		}
		perSystem[f.System]++
	}
	for sys, max := range maxIndex {
		if perSystem[sys] != max+1 {
			return fmt.Sprintf("system %d has holes: %d frames but max index %d", sys, perSystem[sys], max)
		}
	}

	switch terminal.Status {
	case "complete":
		for _, f := range results {
			if strings.Contains(f.Result.Error, "context deadline exceeded") ||
				strings.Contains(f.Result.Error, "context canceled") {
				return fmt.Sprintf("complete stream carries a context error in slot (%d,%d)", f.System, f.Index)
			}
		}
	case "deadline", "cancelled":
		if terminal.Error == "" {
			return fmt.Sprintf("%s terminal frame has no error message", terminal.Status)
		}
		cause := "context deadline exceeded"
		if terminal.Status == "cancelled" {
			cause = "context canceled"
		}
		for _, f := range results {
			if f.Result.Error != "" && !strings.Contains(f.Result.Error, cause) {
				return fmt.Sprintf("unfinished slot (%d,%d) has a non-context error under %s: %s",
					f.System, f.Index, terminal.Status, f.Result.Error)
			}
		}
	default:
		return fmt.Sprintf("terminal status %q is not a designed outcome for this scenario", terminal.Status)
	}
	return ""
}

// approxWireFrame extends wireFrame with the approximate tier's fields.
type approxWireFrame struct {
	Frame  string `json:"frame"`
	System int    `json:"system"`
	Index  int    `json:"index"`
	Stage  string `json:"stage"`
	Status string `json:"status"`
	Error  string `json:"error"`
	Result struct {
		Error    string `json:"error"`
		Estimate *struct {
			P  string `json:"p"`
			Lo string `json:"lo"`
			Hi string `json:"hi"`
		} `json:"estimate"`
	} `json:"result"`
}

// checkApproxStream validates one approximate-tier NDJSON eval-stream
// body (a request that set the "approx" knob) and returns "" when it
// honours the contract, or a short reason. The ordinary checkStream
// invariants do not apply verbatim — a supported slot emits TWO frames
// — so the approx contract gets its own validator:
//
//   - framing: every line a JSON frame, one terminal status frame,
//     last; expectSlots > 0 pins the distinct (system, index) count
//     (frames per slot are 1 or 2 by design, so the SLOT count is the
//     stable quantity);
//   - per slot, in emission order, the stage sequence is one of
//     ["exact"] (unsupported kind, or a failed estimate), ["approx"]
//     (approx-only requests, or a deadline cutting refinement — the
//     estimate stands), or ["approx", "exact"] — never exact before
//     approx, never duplicates;
//   - every approx-stage frame carries an estimate with its interval
//     unless it reports an error;
//   - a "complete" terminal admits no context errors; under
//     "deadline"/"cancelled" a slot whose approx frame landed must NOT
//     carry a context error (the estimate is the sound answer), while
//     error-carrying slots must name the context cause.
func checkApproxStream(body []byte, expectSlots int) string {
	lines := strings.Split(strings.TrimSuffix(string(bytes.TrimSpace(body)), "\n"), "\n")
	var results []approxWireFrame
	var terminal *approxWireFrame
	for ln, line := range lines {
		var f approxWireFrame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			return fmt.Sprintf("line %d is not a JSON frame", ln)
		}
		if terminal != nil {
			return fmt.Sprintf("line %d follows the terminal status frame", ln)
		}
		switch f.Frame {
		case "result":
			results = append(results, f)
		case "status":
			tf := f
			terminal = &tf
		default:
			return fmt.Sprintf("line %d has unknown frame kind %q", ln, f.Frame)
		}
	}
	if terminal == nil {
		return "stream has no terminal status frame"
	}

	stages := make(map[[2]int][]string)
	var slots [][2]int
	for _, f := range results {
		key := [2]int{f.System, f.Index}
		if len(stages[key]) == 0 {
			slots = append(slots, key)
		}
		stages[key] = append(stages[key], f.Stage)
		if f.Stage == "approx" && f.Result.Error == "" && f.Result.Estimate == nil {
			return fmt.Sprintf("approx frame (%d,%d) carries no estimate", f.System, f.Index)
		}
	}
	if expectSlots > 0 && len(slots) != expectSlots {
		return fmt.Sprintf("stream covers %d slots, want %d", len(slots), expectSlots)
	}
	for _, key := range slots {
		switch strings.Join(stages[key], ",") {
		case "exact", "approx", "approx,exact":
		default:
			return fmt.Sprintf("slot (%d,%d) emitted stage sequence %v", key[0], key[1], stages[key])
		}
	}

	isCtx := func(msg string) bool {
		return strings.Contains(msg, "context deadline exceeded") || strings.Contains(msg, "context canceled")
	}
	switch terminal.Status {
	case "complete":
		for _, f := range results {
			if isCtx(f.Result.Error) {
				return fmt.Sprintf("complete stream carries a context error in slot (%d,%d)", f.System, f.Index)
			}
		}
	case "deadline", "cancelled":
		if terminal.Error == "" {
			return fmt.Sprintf("%s terminal frame has no error message", terminal.Status)
		}
		for _, key := range slots {
			seq := strings.Join(stages[key], ",")
			for _, f := range results {
				if [2]int{f.System, f.Index} != key {
					continue
				}
				if seq == "approx" && isCtx(f.Result.Error) {
					return fmt.Sprintf("cut slot (%d,%d) reports a context error instead of its standing estimate", key[0], key[1])
				}
				if f.Result.Error != "" && f.Stage != "approx" && !isCtx(f.Result.Error) {
					return fmt.Sprintf("unfinished slot (%d,%d) has a non-context error under %s: %s",
						key[0], key[1], terminal.Status, f.Result.Error)
				}
			}
		}
	default:
		return fmt.Sprintf("terminal status %q is not a designed outcome for this scenario", terminal.Status)
	}
	return ""
}

// envWireFrame is the superset of one envelope line's fields the
// validator needs (again deliberately decoded with local structs: the
// harness plays an external client).
type envWireFrame struct {
	Frame      string `json:"frame"`
	Index      *int   `json:"index"`
	Assignment string `json:"assignment"`
	Status     string `json:"status"`
	Error      string `json:"error"`
	Result     struct {
		Error string `json:"error"`
	} `json:"result"`
	Envelope *envWire `json:"envelope"`
}

// envWire is the wire envelope's accounting slice.
type envWire struct {
	Min     string `json:"min"`
	Max     string `json:"max"`
	Visited int    `json:"visited"`
	Total   int    `json:"total"`
}

// checkEnvelope validates one /v1/envelope response body — streamed
// (NDJSON) or buffered (a single JSON document) — and returns "" when
// it honours the envelope contract, or a short reason:
//
//   - streamed: every result frame carries an assignment index and a
//     running envelope; indices form a hole-free prefix-free set; the
//     single terminal frame is last and carries the final envelope;
//     "complete" means every assignment visited, "deadline"/"cancelled"
//     mean visited ≤ total with unfinished slots naming the context
//     error — the partial-envelope contract at the wire level;
//   - buffered 200: the envelope is fully visited (visited == total);
//   - expectTotal > 0 pins the space size exactly.
func checkEnvelope(body []byte, status int, expectTotal int) string {
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		return "empty envelope body"
	}
	// Buffered form first: the whole body is ONE (indented) JSON
	// document. An NDJSON stream never unmarshals as a single value.
	var doc struct {
		Envelope *envWire `json:"envelope"`
	}
	if err := json.Unmarshal(trimmed, &doc); err == nil {
		if doc.Envelope == nil {
			return "buffered envelope body carries no envelope"
		}
		if expectTotal > 0 && doc.Envelope.Total != expectTotal {
			return fmt.Sprintf("envelope total = %d, want %d", doc.Envelope.Total, expectTotal)
		}
		if status == 200 && doc.Envelope.Visited != doc.Envelope.Total {
			return fmt.Sprintf("a 200 envelope visited %d of %d assignments", doc.Envelope.Visited, doc.Envelope.Total)
		}
		return ""
	}

	lines := strings.Split(strings.TrimSuffix(string(trimmed), "\n"), "\n")
	var results []envWireFrame
	var terminal *envWireFrame
	for ln, line := range lines {
		var f envWireFrame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			return fmt.Sprintf("line %d is not a JSON frame", ln)
		}
		if terminal != nil {
			return fmt.Sprintf("line %d follows the terminal status frame", ln)
		}
		switch f.Frame {
		case "result":
			if f.Index == nil || f.Envelope == nil {
				return fmt.Sprintf("result frame %d lacks an index or running envelope", ln)
			}
			results = append(results, f)
		case "status":
			tf := f
			terminal = &tf
		default:
			return fmt.Sprintf("line %d has unknown frame kind %q", ln, f.Frame)
		}
	}
	if terminal == nil {
		return "envelope stream has no terminal status frame"
	}
	if terminal.Envelope == nil {
		return "terminal frame carries no final envelope"
	}
	env := terminal.Envelope
	if expectTotal > 0 && env.Total != expectTotal {
		return fmt.Sprintf("envelope total = %d, want %d", env.Total, expectTotal)
	}
	if len(results) != env.Total {
		return fmt.Sprintf("stream carries %d result frames for a %d-assignment space", len(results), env.Total)
	}
	seen := make(map[int]bool, len(results))
	finished := 0
	for _, f := range results {
		if seen[*f.Index] {
			return fmt.Sprintf("assignment %d emitted twice", *f.Index)
		}
		seen[*f.Index] = true
		if *f.Index < 0 || *f.Index >= env.Total {
			return fmt.Sprintf("assignment index %d outside the %d-assignment space", *f.Index, env.Total)
		}
		if !strings.Contains(f.Result.Error, "context deadline exceeded") &&
			!strings.Contains(f.Result.Error, "context canceled") {
			finished++
		}
	}
	switch terminal.Status {
	case "complete":
		if env.Visited != env.Total || finished != env.Total {
			return fmt.Sprintf("complete envelope visited %d of %d (%d finished slots)", env.Visited, env.Total, finished)
		}
	case "deadline", "cancelled":
		if terminal.Error == "" {
			return fmt.Sprintf("%s terminal frame has no error message", terminal.Status)
		}
		if env.Visited > finished {
			return fmt.Sprintf("partial envelope claims %d visited but only %d slots finished", env.Visited, finished)
		}
	default:
		return fmt.Sprintf("terminal status %q is not a designed outcome for this scenario", terminal.Status)
	}
	return ""
}
