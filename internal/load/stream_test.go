package load

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pak/internal/service"
)

// TestStreamLoadSmoke is the streaming counterpart of TestLoadSmoke,
// gated in CI under -race via make load-smoke: the stream mix against
// an in-process pakd with an eviction-sized cache, every response a
// fully validated NDJSON stream (frame set, no holes, exact counts,
// designed terminal).
func TestStreamLoadSmoke(t *testing.T) {
	ts := stressServer(t)
	requests := 120
	concurrency := 8
	if testing.Short() {
		requests, concurrency = 50, 4
	}
	mix, err := BuiltinMix("stream")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Concurrency: concurrency,
		Requests:    requests,
		Timeout:     time.Minute,
		Seed:        1,
		Mix:         mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != requests {
		t.Errorf("completed %d requests, want %d", rep.Total, requests)
	}
	if rep.OK != rep.Total {
		t.Errorf("stream taxonomy not clean: ok=%d of %d, errors=%v", rep.OK, rep.Total, rep.Errors)
	}
	if n := rep.Outcomes[outcomeBadStream]; n > 0 {
		t.Errorf("%d streams violated the frame contract", n)
	}

	// The soak accounting: the target's stats endpoint snapshots into
	// the report.
	stats, err := FetchServerStats(nil, ts.URL)
	if err != nil {
		t.Fatalf("FetchServerStats: %v", err)
	}
	rep.ServerStats = stats
	if !strings.Contains(string(rep.ServerStats), "engineCache") {
		t.Errorf("server stats = %s, want an engineCache document", rep.ServerStats)
	}
}

// TestStreamLoadPrefixOnTimeout drives the stream mix against a server
// whose deadline has always already expired: every stream must still be
// a well-formed NDJSON response — one frame per query carrying the
// deadline error, a "deadline" terminal — and therefore classify "ok".
// A server that dropped finished-or-unfinished slots, truncated the
// stream, or fell back to a bare 504 would land in bad_stream or
// unexpected_status.
func TestStreamLoadPrefixOnTimeout(t *testing.T) {
	ts := httptest.NewServer(service.New(nil,
		service.WithRequestTimeout(time.Nanosecond),
		service.WithMaxParallelism(4),
	).Handler())
	t.Cleanup(ts.Close)

	mix, err := BuiltinMix("stream")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Requests:    40,
		Timeout:     time.Minute,
		Seed:        2,
		Mix:         mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != rep.Total {
		t.Errorf("deadlined stream taxonomy not clean: ok=%d of %d, errors=%v",
			rep.OK, rep.Total, rep.Errors)
	}
}

// TestCheckStream pins the validator itself on hand-written bodies, so
// "bad_stream" keeps meaning exactly the documented violations.
func TestCheckStream(t *testing.T) {
	res := func(sys, idx int, errMsg string) string {
		doc := fmt.Sprintf(`{"frame":"result","system":%d,"spec":"s","canonical":"s()","index":%d,"result":{"kind":"constraint"`, sys, idx)
		if errMsg != "" {
			doc += `,"error":"` + errMsg + `"`
		}
		return doc + `}}`
	}
	complete := `{"frame":"status","status":"complete"}`
	deadline := `{"frame":"status","status":"deadline","error":"request deadline exceeded"}`

	cases := []struct {
		name         string
		lines        []string
		expectFrames int
		wantOK       bool
	}{
		{"clean complete", []string{res(0, 0, ""), res(0, 1, ""), complete}, 2, true},
		{"clean deadline prefix", []string{res(0, 0, ""), res(0, 1, "not evaluated: context deadline exceeded"), deadline}, 2, true},
		{"multi-system complete", []string{res(0, 0, ""), res(1, 0, ""), res(1, 1, ""), complete}, 3, true},
		{"no terminal", []string{res(0, 0, "")}, 1, false},
		{"frame after terminal", []string{res(0, 0, ""), complete, res(0, 1, "")}, 2, false},
		{"duplicate slot", []string{res(0, 0, ""), res(0, 0, ""), complete}, 2, false},
		{"hole in indices", []string{res(0, 0, ""), res(0, 2, ""), complete}, 2, false},
		{"wrong count", []string{res(0, 0, ""), complete}, 2, false},
		{"context error under complete", []string{res(0, 0, "not evaluated: context deadline exceeded"), complete}, 1, false},
		{"foreign error under deadline", []string{res(0, 0, "engine exploded"), deadline}, 1, false},
		{"terminal error frame", []string{res(0, 0, ""), `{"frame":"status","status":"error","code":400,"error":"x"}`}, 1, false},
		{"not json", []string{"nope"}, 0, false},
	}
	for _, tc := range cases {
		reason := checkStream([]byte(strings.Join(tc.lines, "\n")+"\n"), tc.expectFrames)
		if ok := reason == ""; ok != tc.wantOK {
			t.Errorf("%s: checkStream = %q, want ok=%v", tc.name, reason, tc.wantOK)
		}
	}
}

// TestCheckApproxStream pins the approximate-tier validator on
// hand-written bodies: the per-slot stage grammar, the
// estimate-on-approx requirement, and the deadline contract (a cut
// slot's standing estimate, never a context error).
func TestCheckApproxStream(t *testing.T) {
	res := func(sys, idx int, stage, errMsg, est string) string {
		doc := fmt.Sprintf(`{"frame":"result","system":%d,"index":%d`, sys, idx)
		if stage != "" {
			doc += `,"stage":"` + stage + `"`
		}
		doc += `,"result":{"kind":"constraint"`
		if errMsg != "" {
			doc += `,"error":"` + errMsg + `"`
		}
		if est != "" {
			doc += `,"estimate":` + est
		}
		return doc + `}}`
	}
	e := `{"p":"1/2","radius":"1/10","lo":"2/5","hi":"3/5"}`
	complete := `{"frame":"status","status":"complete"}`
	deadline := `{"frame":"status","status":"deadline","error":"request deadline exceeded"}`
	ctxErr := "not evaluated: context deadline exceeded"

	cases := []struct {
		name        string
		lines       []string
		expectSlots int
		wantOK      bool
	}{
		{"refined slot", []string{res(0, 0, "approx", "", e), res(0, 0, "exact", "", e), complete}, 1, true},
		{"unsupported slot", []string{res(0, 0, "exact", "", ""), complete}, 1, true},
		{"approx-only complete", []string{res(0, 0, "approx", "", e), complete}, 1, true},
		{"mixed slots", []string{res(0, 0, "approx", "", e), res(0, 1, "exact", "", ""), res(0, 0, "exact", "", e), complete}, 2, true},
		{"cut slot stands on its estimate", []string{res(0, 0, "approx", "", e), deadline}, 1, true},
		{"unstarted slot under deadline", []string{res(0, 0, "approx", "", e), res(0, 0, "exact", "", e), res(0, 1, "exact", ctxErr, ""), deadline}, 2, true},
		{"exact before approx", []string{res(0, 0, "exact", "", e), res(0, 0, "approx", "", e), complete}, 1, false},
		{"duplicate approx", []string{res(0, 0, "approx", "", e), res(0, 0, "approx", "", e), complete}, 1, false},
		{"stageless frame", []string{res(0, 0, "", "", ""), complete}, 1, false},
		{"approx without estimate", []string{res(0, 0, "approx", "", ""), complete}, 1, false},
		{"approx error frame ok", []string{res(0, 0, "approx", "sampling failed", ""), complete}, 1, true},
		{"wrong slot count", []string{res(0, 0, "approx", "", e), res(0, 0, "exact", "", e), complete}, 2, false},
		{"context error under complete", []string{res(0, 0, "exact", ctxErr, ""), complete}, 1, false},
		{"cut slot with context error", []string{res(0, 0, "approx", ctxErr, e), deadline}, 1, false},
		{"foreign error under deadline", []string{res(0, 0, "exact", "engine exploded", ""), deadline}, 1, false},
		{"no terminal", []string{res(0, 0, "approx", "", e)}, 1, false},
		{"frame after terminal", []string{complete, res(0, 0, "exact", "", "")}, 1, false},
		{"not json", []string{"nope"}, 0, false},
	}
	for _, tc := range cases {
		reason := checkApproxStream([]byte(strings.Join(tc.lines, "\n")+"\n"), tc.expectSlots)
		if ok := reason == ""; ok != tc.wantOK {
			t.Errorf("%s: checkApproxStream = %q, want ok=%v", tc.name, reason, tc.wantOK)
		}
	}
}

func TestCheckEnvelope(t *testing.T) {
	res := func(i int, errStr, env string) string {
		return `{"frame":"result","index":` + itoa(i) + `,"assignment":"loss=0","result":{"error":"` + errStr + `"},"envelope":` + env + `}`
	}
	okEnv := `{"min":"1","max":"1","visited":1,"total":2}`
	fullEnv := `{"min":"1","max":"1","visited":2,"total":2}`
	cases := []struct {
		name   string
		body   string
		status int
		total  int
		wantOK bool
	}{
		{"complete", res(0, "", okEnv) + "\n" + res(1, "", fullEnv) + "\n" +
			`{"frame":"status","status":"complete","envelope":` + fullEnv + `}`, 200, 2, true},
		{"deadline-partial", res(0, "", okEnv) + "\n" + res(1, "context deadline exceeded", okEnv) + "\n" +
			`{"frame":"status","status":"deadline","error":"budget","envelope":` + okEnv + `}`, 200, 2, true},
		{"complete-but-partial", res(0, "", okEnv) + "\n" + res(1, "context deadline exceeded", okEnv) + "\n" +
			`{"frame":"status","status":"complete","envelope":` + okEnv + `}`, 200, 2, false},
		{"duplicate-index", res(0, "", okEnv) + "\n" + res(0, "", fullEnv) + "\n" +
			`{"frame":"status","status":"complete","envelope":` + fullEnv + `}`, 200, 2, false},
		{"missing-terminal", res(0, "", okEnv), 200, 0, false},
		{"missing-frame", res(0, "", fullEnv) + "\n" +
			`{"frame":"status","status":"complete","envelope":` + fullEnv + `}`, 200, 2, false},
		{"wrong-total", res(0, "", okEnv) + "\n" + res(1, "", fullEnv) + "\n" +
			`{"frame":"status","status":"complete","envelope":` + fullEnv + `}`, 200, 3, false},
		{"buffered-ok", `{"envelope":` + fullEnv + `}`, 200, 2, true},
		{"buffered-partial-200", `{"envelope":` + okEnv + `}`, 200, 2, false},
		{"buffered-partial-504", `{"envelope":` + okEnv + `}`, 504, 2, true},
		{"buffered-not-envelope", `{"results":[]}`, 200, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reason := checkEnvelope([]byte(tc.body), tc.status, tc.total)
			if (reason == "") != tc.wantOK {
				t.Errorf("checkEnvelope = %q, wantOK=%v", reason, tc.wantOK)
			}
		})
	}
}

// itoa avoids importing strconv into the test for one digit.
func itoa(i int) string { return string(rune('0' + i)) }
