package load

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"pak/internal/service"
)

// stressServer is an in-process pakd tuned so the hardened paths stay
// busy: a tiny engine cache (constant eviction under the heavy mix), a
// real request deadline, bounded parallelism.
func stressServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(service.New(nil,
		service.WithEngineCacheSize(3),
		service.WithRequestTimeout(30*time.Second),
		service.WithMaxParallelism(4),
	).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadSmoke is the short-mode stress gate CI runs under -race: the
// mixed workload (happy paths plus deliberate 4xx probes) against an
// in-process pakd with an eviction-sized cache, asserting a clean
// taxonomy — every request lands in a designed outcome class, nothing
// in transport/timeout/bad_json/unexpected_status.
func TestLoadSmoke(t *testing.T) {
	ts := stressServer(t)
	requests := 150
	concurrency := 8
	if testing.Short() {
		requests, concurrency = 60, 4
	}
	mix, err := BuiltinMix("mixed")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Concurrency: concurrency,
		Requests:    requests,
		Timeout:     time.Minute,
		Seed:        1,
		Mix:         mix,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Total != requests {
		t.Errorf("completed %d requests, want %d", rep.Total, requests)
	}
	if rep.OK != rep.Total {
		t.Errorf("taxonomy not clean: ok=%d of %d, errors=%v", rep.OK, rep.Total, rep.Errors)
	}
	for _, bad := range []string{outcomeTransport, outcomeTimeout, outcomeBadJSON, outcomeBadStatus} {
		if n := rep.Outcomes[bad]; n > 0 {
			t.Errorf("%d requests classified %q", n, bad)
		}
	}
	// The deliberate error probes must have fired and answered their
	// designed statuses (they classify as ok via ExpectStatus).
	sum := 0
	for _, code := range []string{"404", "400"} {
		sum += rep.StatusCounts[code]
	}
	if sum == 0 {
		t.Error("mixed mix provoked no 4xx probes — error paths unexercised")
	}
	if rep.Latency.MaxMS <= 0 || rep.Latency.P50MS <= 0 {
		t.Errorf("latency summary empty: %+v", rep.Latency)
	}
	count := 0
	for _, b := range rep.Latency.Histogram {
		count += b.Count
	}
	if count != rep.Total {
		t.Errorf("histogram counts %d, want %d", count, rep.Total)
	}

	// The report is the wire artifact: it must round-trip JSON.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Total != rep.Total || back.OK != rep.OK {
		t.Errorf("round-trip lost counts: %+v", back)
	}
}

// TestLoadHeavyMixEvicts: the heavy mix's random(seed=…) churn forces
// LRU evictions in a small cache while every response stays correct.
func TestLoadHeavyMixEvicts(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy mix in -short")
	}
	srv := service.New(nil,
		service.WithEngineCacheSize(3),
		service.WithMaxParallelism(4),
	)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	mix, err := BuiltinMix("heavy")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Concurrency: 6,
		Requests:    120,
		Timeout:     time.Minute,
		Seed:        7,
		Mix:         mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != rep.Total {
		t.Errorf("heavy mix not clean: ok=%d of %d, errors=%v", rep.OK, rep.Total, rep.Errors)
	}
	st := srv.Cache().Stats()
	if st.Evictions == 0 {
		t.Errorf("heavy mix caused no evictions: %+v", st)
	}
	if st.Len > 3 {
		t.Errorf("cache exceeded its bound: %+v", st)
	}
}

// TestLoadDurationStop: a duration-bounded run stops near its budget
// instead of running forever.
func TestLoadDurationStop(t *testing.T) {
	ts := stressServer(t)
	mix, err := BuiltinMix("squad")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Concurrency: 2,
		Duration:    200 * time.Millisecond,
		Timeout:     10 * time.Second,
		Seed:        3,
		Mix:         mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("duration run took %v", elapsed)
	}
	if rep.Total == 0 {
		t.Error("duration run completed no requests")
	}
}

// TestLoadConfigValidation: unusable configs fail fast with an error,
// never a hung run.
func TestLoadConfigValidation(t *testing.T) {
	mix, _ := BuiltinMix("squad")
	cases := []Config{
		{Concurrency: 1, Requests: 1, Mix: mix}, // no BaseURL
		{BaseURL: "http://x", Requests: 1},      // no mix
		{BaseURL: "http://x", Mix: mix},         // no stop condition
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := BuiltinMix("nosuch"); err == nil {
		t.Error("unknown mix accepted")
	}
}

// TestLoadSmokeApprox is the approximate-tier gate, run under -race in
// make load-smoke: the approx mix (buffered approx evals, approx
// streams under full CheckApproxStream validation, bad-spec probes)
// against the eviction-sized in-process pakd, with soak mode on — the
// stats trajectory must have sampled the cache's hit/miss counters
// during the run and survive the report's JSON round-trip.
func TestLoadSmokeApprox(t *testing.T) {
	ts := stressServer(t)
	requests := 120
	concurrency := 8
	if testing.Short() {
		requests, concurrency = 48, 4
	}
	mix, err := BuiltinMix("approx")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:       ts.URL,
		Concurrency:   concurrency,
		Requests:      requests,
		Timeout:       time.Minute,
		Seed:          1,
		Mix:           mix,
		StatsInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != requests {
		t.Errorf("completed %d requests, want %d", rep.Total, requests)
	}
	if rep.OK != rep.Total {
		t.Errorf("approx taxonomy not clean: ok=%d of %d, errors=%v", rep.OK, rep.Total, rep.Errors)
	}
	if n := rep.Outcomes[outcomeBadStream]; n > 0 {
		t.Errorf("%d approx streams violated the frame contract", n)
	}
	for _, name := range []string{"approx-eval-nsquad2", "approx-stream-nsquad2", "approx-only-stream"} {
		if st := rep.Scenarios[name]; st == nil || st.Requests == 0 {
			t.Errorf("scenario %s never ran", name)
		}
	}

	// Soak accounting: at least one trajectory sample landed (a run of
	// 48+ eval requests takes well past one 20ms tick), each stamped
	// inside the run and carrying the stats document.
	if len(rep.StatsTrajectory) == 0 {
		t.Fatal("soak mode recorded no stats samples")
	}
	for i, s := range rep.StatsTrajectory {
		if s.Error != "" {
			t.Errorf("trajectory[%d] errored: %s", i, s.Error)
		}
		if s.AtMS <= 0 {
			t.Errorf("trajectory[%d] has no timestamp: %+v", i, s)
		}
		var doc struct {
			EngineCache *json.RawMessage `json:"engineCache"`
		}
		if err := json.Unmarshal(s.Stats, &doc); err != nil || doc.EngineCache == nil {
			t.Errorf("trajectory[%d] stats = %s, want an engineCache document", i, s.Stats)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.StatsTrajectory) != len(rep.StatsTrajectory) {
		t.Errorf("round-trip lost trajectory: %d of %d samples",
			len(back.StatsTrajectory), len(rep.StatsTrajectory))
	}
}

// TestLoadSmokeEnvelope is the envelope-mix gate: buffered and streamed
// sweeps (full envelope frame validation, hole-free assignment indices,
// fully visited envelopes on 200) plus the sweep grammar's deliberate
// error probes, against the eviction-sized in-process pakd — a clean
// taxonomy or exit 1, exactly like the other smoke gates. Runs under
// -race in make load-smoke.
func TestLoadSmokeEnvelope(t *testing.T) {
	ts := stressServer(t)
	requests := 120
	concurrency := 8
	if testing.Short() {
		requests, concurrency = 48, 4
	}
	mix, err := BuiltinMix("envelope")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Concurrency: concurrency,
		Requests:    requests,
		Timeout:     time.Minute,
		Seed:        1,
		Mix:         mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != requests {
		t.Errorf("completed %d requests, want %d", rep.Total, requests)
	}
	if rep.OK != rep.Total {
		t.Errorf("taxonomy not clean: ok=%d of %d, errors=%v", rep.OK, rep.Total, rep.Errors)
	}
	for _, name := range []string{"envelope-nsquad2", "envelope-stream-nsquad2"} {
		if st := rep.Scenarios[name]; st == nil || st.Requests == 0 {
			t.Errorf("scenario %s never ran", name)
		}
	}
}

// TestLoadSmokeLP is the second-backend gate, run under -race in
// make load-smoke: the lp mix (lp-routed buffered and streamed evals —
// byte-identical to enumeration on the wire, so the standard validators
// hold — plus the strict backend's designed 400 probe) against the
// eviction-sized in-process pakd. Beyond the clean taxonomy it asserts
// the routing actually happened: the per-scenario stats carry the
// backend label, and the server's per-backend counters show lp slots.
func TestLoadSmokeLP(t *testing.T) {
	ts := stressServer(t)
	requests := 120
	concurrency := 8
	if testing.Short() {
		requests, concurrency = 48, 4
	}
	mix, err := BuiltinMix("lp")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Concurrency: concurrency,
		Requests:    requests,
		Timeout:     time.Minute,
		Seed:        1,
		Mix:         mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != requests {
		t.Errorf("completed %d requests, want %d", rep.Total, requests)
	}
	if rep.OK != rep.Total {
		t.Errorf("lp taxonomy not clean: ok=%d of %d, errors=%v", rep.OK, rep.Total, rep.Errors)
	}
	if n := rep.Outcomes[outcomeBadStream]; n > 0 {
		t.Errorf("%d lp streams violated the frame contract", n)
	}
	for _, name := range []string{"lp-eval-nsquad2", "lp-stream-nsquad2", "err-lp-unsupported"} {
		st := rep.Scenarios[name]
		if st == nil || st.Requests == 0 {
			t.Errorf("scenario %s never ran", name)
			continue
		}
		if st.Backend != "lp" {
			t.Errorf("scenario %s backend label = %q, want \"lp\"", name, st.Backend)
		}
	}

	// The server must have counted lp slots: the mix's eval bodies route
	// every accepted slot through the LP engine, and the rejected strict
	// probe counts nothing.
	stats, err := FetchServerStats(nil, ts.URL)
	if err != nil {
		t.Fatalf("stats snapshot: %v", err)
	}
	var doc struct {
		Backends struct {
			Enum int64 `json:"enum"`
			LP   int64 `json:"lp"`
		} `json:"backends"`
	}
	if err := json.Unmarshal(stats, &doc); err != nil {
		t.Fatalf("stats document: %v", err)
	}
	if doc.Backends.LP == 0 {
		t.Errorf("server counted no lp slots: %s", stats)
	}
}
