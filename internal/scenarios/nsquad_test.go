package scenarios

import (
	"errors"
	"math/big"
	"strings"
	"testing"

	"pak/internal/core"
	"pak/internal/ratutil"
)

func TestNFiringSquadValidation(t *testing.T) {
	if _, err := NFiringSquad(1, ratutil.R(1, 10), false); !errors.Is(err, ErrBadParam) {
		t.Errorf("n=1 err = %v", err)
	}
	if _, err := NFiringSquad(3, ratutil.R(3, 2), false); err == nil {
		t.Error("bad loss accepted")
	}
	if _, err := NFiringSquadSystem(0, ratutil.R(1, 10), true); !errors.Is(err, ErrBadParam) {
		t.Errorf("n=0 err = %v", err)
	}
}

// pow returns x^k for exact rationals.
func pow(x *big.Rat, k int) *big.Rat {
	out := ratutil.One()
	for i := 0; i < k; i++ {
		out = ratutil.Mul(out, x)
	}
	return out
}

// TestNSquadMatchesExample1 checks that n=2 degenerates to the paper's
// Example 1 numbers.
func TestNSquadMatchesExample1(t *testing.T) {
	sys, err := NFiringSquadSystem(2, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	mu, err := e.ConstraintProb(AllFireFact(2), General, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(mu, ratutil.R(99, 100)) {
		t.Fatalf("n=2 µ = %v, want 99/100", mu)
	}
	improved, err := NFiringSquadSystem(2, ratutil.R(1, 10), true)
	if err != nil {
		t.Fatal(err)
	}
	muI, err := core.New(improved).ConstraintProb(AllFireFact(2), General, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(muI, ratutil.R(990, 991)) {
		t.Fatalf("n=2 improved µ = %v, want 990/991", muI)
	}
}

// TestNSquadClosedForms pins the generalized closed forms for n = 3, 4:
// original µ = (1−ℓ²)^(n−1); improved µ = ((1−ℓ²)/(1−ℓ²(1−ℓ)))^(n−1).
func TestNSquadClosedForms(t *testing.T) {
	loss := ratutil.R(1, 10)
	lossSq := ratutil.Mul(loss, loss)
	base := ratutil.OneMinus(lossSq)                                          // 99/100
	fireBase := ratutil.OneMinus(ratutil.Mul(lossSq, ratutil.OneMinus(loss))) // 991/1000
	for _, n := range []int{3, 4} {
		wantOrig := pow(base, n-1)
		sys, err := NFiringSquadSystem(n, loss, false)
		if err != nil {
			t.Fatal(err)
		}
		e := core.New(sys)
		mu, err := e.ConstraintProb(AllFireFact(n), General, ActFire)
		if err != nil {
			t.Fatal(err)
		}
		if !ratutil.Eq(mu, wantOrig) {
			t.Errorf("n=%d original µ = %v, want (1-ℓ²)^%d = %v", n, mu, n-1, wantOrig)
		}

		wantImpr := ratutil.Div(wantOrig, pow(fireBase, n-1))
		impr, err := NFiringSquadSystem(n, loss, true)
		if err != nil {
			t.Fatal(err)
		}
		muI, err := core.New(impr).ConstraintProb(AllFireFact(n), General, ActFire)
		if err != nil {
			t.Fatal(err)
		}
		if !ratutil.Eq(muI, wantImpr) {
			t.Errorf("n=%d improved µ = %v, want %v", n, muI, wantImpr)
		}
		if !ratutil.Greater(muI, mu) {
			t.Errorf("n=%d: improvement not strict", n)
		}
	}
}

// TestNSquadGeneralBeliefs checks the general's information states at
// firing time for n=3: belief (1−ℓ²)^s with s silent soldiers and no
// 'No', 0 with a 'No'.
func TestNSquadGeneralBeliefs(t *testing.T) {
	loss := ratutil.R(1, 10)
	sys, err := NFiringSquadSystem(3, loss, false)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	byState, err := e.BeliefByActionState(AllFireFact(3), General, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	base := ratutil.OneMinus(ratutil.Mul(loss, loss)) // 99/100
	for state, bel := range byState {
		var want *big.Rat
		switch {
		case strings.Contains(state, "no=y"):
			want = ratutil.Zero()
		case strings.Contains(state, "silent=0"):
			want = ratutil.One()
		case strings.Contains(state, "silent=1"):
			want = base
		case strings.Contains(state, "silent=2"):
			want = pow(base, 2)
		default:
			t.Fatalf("unclassified state %q", state)
		}
		if !ratutil.Eq(bel, want) {
			t.Errorf("β at %q = %v, want %v", state, bel, want)
		}
	}
}

// TestNSquadExpectationTheorem: Theorem 6.2 holds on the n-agent squad
// for n = 3 (the protocol is deterministic, so independence is
// guaranteed by Lemma 4.3(a)).
func TestNSquadExpectationTheorem(t *testing.T) {
	sys, err := NFiringSquadSystem(3, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	rep, err := e.CheckExpectation(AllFireFact(3), General, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Independent || !rep.Equal() {
		t.Fatalf("Theorem 6.2 on the 3-squad: %v", rep)
	}
	// The PAK view: µ = (99/100)² = 9801/10000 ≥ 1 − ε² for ε
	// slightly above sqrt(199)/100; use ε = 3/20 (1−ε² = 0.9775).
	pakRep, err := e.CheckPAKSquare(AllFireFact(3), General, ActFire, ratutil.R(3, 20))
	if err != nil {
		t.Fatal(err)
	}
	if !pakRep.PremiseMet() || !pakRep.Holds() {
		t.Fatalf("Corollary 7.2 on the 3-squad: %v", pakRep)
	}
}

// TestNSquadRefrainMatchesImproved: the refrain analysis on the original
// n-squad predicts the improved variant's value, generalizing the
// Section 8 cross-check.
func TestNSquadRefrainMatchesImproved(t *testing.T) {
	loss := ratutil.R(1, 10)
	sys, err := NFiringSquadSystem(3, loss, false)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	// Prune every state with a 'No' (belief 0): any positive threshold
	// below the smallest nonzero belief keeps the rest. The smallest
	// nonzero belief is (99/100)², so 1/2 works.
	rep, err := e.RefrainAnalysis(AllFireFact(3), General, ActFire, ratutil.R(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	impr, err := NFiringSquadSystem(3, loss, true)
	if err != nil {
		t.Fatal(err)
	}
	muI, err := core.New(impr).ConstraintProb(AllFireFact(3), General, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Predicted == nil || !ratutil.Eq(rep.Predicted, muI) {
		t.Fatalf("refrain prediction %v != improved value %v", rep.Predicted, muI)
	}
}

func TestNSquadGoZeroNeverFires(t *testing.T) {
	sys, err := NFiringSquadSystem(3, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	perf, err := e.PerformedSet(General, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	// The general fires exactly on the go=1 half.
	if !ratutil.Eq(sys.Measure(perf), ratutil.R(1, 2)) {
		t.Fatalf("µ(general fires) = %v, want 1/2", sys.Measure(perf))
	}
}
