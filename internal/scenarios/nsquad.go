package scenarios

import (
	"fmt"
	"math/big"
	"strings"

	"pak/internal/logic"
	"pak/internal/msgnet"
	"pak/internal/pps"
	"pak/internal/protocol"
	"pak/internal/ratutil"
)

// The n-agent relaxed firing squad: the natural generalization of the
// paper's Example 1 from {Alice, Bob} to a general plus n−1 soldiers. The
// general broadcasts two wake-up messages to every soldier; soldiers ack
// with Yes/No; the general fires at time 2 (in the improved variant, only
// if no 'No' arrived), and each soldier fires iff it was woken.
//
// The closed forms generalize Example 1's analysis and are pinned in the
// tests:
//
//	µ(all fire | general fires), original  = (1−ℓ²)^(n−1)
//	µ(all fire | general fires), improved  = (1−ℓ²)^(n−1) / (1−ℓ²(1−ℓ))^(n−1)
//
// and the general's belief when firing is 0 if any 'No' arrived, and
// (1−ℓ²)^s when s soldiers stayed silent and the rest acked Yes.

// General is the broadcasting agent's name; soldiers are "s1", "s2", ...
const General = "General"

// ActFire is the firing action (shared with Example 1's naming).
const ActFire = "fire"

// nSquadModel implements the n-agent protocol.
type nSquadModel struct {
	n       int // total number of agents, including the general
	net     msgnet.Net
	improve bool
}

var _ protocol.Model = nSquadModel{}

// NFiringSquad returns the n-agent relaxed firing squad (n ≥ 2 agents
// total) over a channel with the given per-message loss probability.
// improved selects the Section 8-style refinement (the general refrains
// when any 'No' arrives). Beware of tree growth: the go=1 branch has
// 2^(2(n−1)) delivery patterns in round 0 alone; n ≤ 5 stays comfortable.
func NFiringSquad(n int, loss *big.Rat, improved bool) (protocol.Model, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: need n ≥ 2 agents, got %d", ErrBadParam, n)
	}
	net, err := msgnet.New(loss)
	if err != nil {
		return nil, fmt.Errorf("scenarios.NFiringSquad: %w", err)
	}
	return nSquadModel{n: n, net: net, improve: improved}, nil
}

// NFiringSquadSystem unfolds the n-agent squad into its pps.
func NFiringSquadSystem(n int, loss *big.Rat, improved bool) (*pps.System, error) {
	m, err := NFiringSquad(n, loss, improved)
	if err != nil {
		return nil, err
	}
	sys, err := protocol.Unfold(m)
	if err != nil {
		return nil, fmt.Errorf("scenarios.NFiringSquadSystem: %w", err)
	}
	return sys, nil
}

func (m nSquadModel) Agents() []string {
	out := make([]string, m.n)
	out[0] = General
	for i := 1; i < m.n; i++ {
		out[i] = fmt.Sprintf("s%d", i)
	}
	return out
}

func (m nSquadModel) Initials() []protocol.Weighted[protocol.Global] {
	mk := func(goVal string) protocol.Global {
		locals := make([]string, m.n)
		locals[0] = "go=" + goVal
		for i := 1; i < m.n; i++ {
			locals[i] = "start"
		}
		return protocol.Global{Env: "init", Locals: locals}
	}
	half := ratutil.R(1, 2)
	return []protocol.Weighted[protocol.Global]{
		protocol.W(mk("0"), half),
		protocol.W(mk("1"), ratutil.Copy(half)),
	}
}

func (m nSquadModel) Horizon() int { return 3 }

// msgsAt reconstructs the round's messages from the agents' actions.
func (m nSquadModel) msgsAt(acts []string, t int) []msgnet.Msg {
	var msgs []msgnet.Msg
	switch t {
	case 0:
		if acts[0] == "broadcast" {
			for i := 1; i < m.n; i++ {
				msgs = append(msgs,
					msgnet.Msg{From: 0, To: i, Payload: "wake"},
					msgnet.Msg{From: 0, To: i, Payload: "wake"})
			}
		}
	case 1:
		for i := 1; i < m.n; i++ {
			switch acts[i] {
			case "sendYes":
				msgs = append(msgs, msgnet.Msg{From: i, To: 0, Payload: "Yes"})
			case "sendNo":
				msgs = append(msgs, msgnet.Msg{From: i, To: 0, Payload: "No"})
			}
		}
	}
	return msgs
}

func (m nSquadModel) AgentStep(agent int, local string, t int) []protocol.Weighted[string] {
	goFlag := strings.Contains(local, "go=1")
	switch t {
	case 0:
		if agent == 0 && goFlag {
			return protocol.Det("broadcast")
		}
		return protocol.Det("noop")
	case 1:
		if agent != 0 {
			if strings.HasPrefix(local, "woken") {
				return protocol.Det("sendYes")
			}
			return protocol.Det("sendNo")
		}
		return protocol.Det("noop")
	default: // t == 2
		if agent == 0 {
			fire := goFlag
			if m.improve && strings.Contains(local, "no=y") {
				fire = false
			}
			if fire {
				return protocol.Det(ActFire)
			}
			return protocol.Det("noop")
		}
		if strings.HasPrefix(local, "woken") {
			return protocol.Det(ActFire)
		}
		return protocol.Det("noop")
	}
}

func (m nSquadModel) EnvStep(g protocol.Global, acts []string, t int) []protocol.Weighted[string] {
	return m.net.Patterns(m.msgsAt(acts, t))
}

func (m nSquadModel) Next(g protocol.Global, acts []string, envAct string, t int) (protocol.Global, error) {
	msgs := m.msgsAt(acts, t)
	next := g.Clone()
	switch t {
	case 0:
		for i := 1; i < m.n; i++ {
			inbox, err := msgnet.Inbox(msgs, envAct, i)
			if err != nil {
				return protocol.Global{}, err
			}
			if len(inbox) > 0 {
				next.Locals[i] = "woken"
			} else {
				next.Locals[i] = "asleep"
			}
		}
		if acts[0] == "broadcast" {
			next.Locals[0] = g.Locals[0] + ",sent"
		}
		next.Env = "round1"
	case 1:
		inbox, err := msgnet.Inbox(msgs, envAct, 0)
		if err != nil {
			return protocol.Global{}, err
		}
		yes, no := 0, 0
		for _, payload := range inbox {
			if payload == "Yes" {
				yes++
			} else {
				no++
			}
		}
		noFlag := "n"
		if no > 0 {
			noFlag = "y"
		}
		next.Locals[0] = fmt.Sprintf("%s,yes=%d,no=%s,silent=%d",
			g.Locals[0], yes, noFlag, m.n-1-len(inbox))
		for i := 1; i < m.n; i++ {
			next.Locals[i] = g.Locals[i] + ",acked"
		}
		next.Env = "round2"
	default:
		for i := range next.Locals {
			next.Locals[i] = g.Locals[i] + ",end"
		}
		next.Env = "done"
	}
	return next, nil
}

// AllFireFact holds when every agent of an n-agent squad is currently
// firing.
func AllFireFact(n int) logic.Fact {
	fs := make([]logic.Fact, n)
	fs[0] = logic.Does(General, ActFire)
	for i := 1; i < n; i++ {
		fs[i] = logic.Does(fmt.Sprintf("s%d", i), ActFire)
	}
	return logic.And(fs...)
}
