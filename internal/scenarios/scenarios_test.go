package scenarios

import (
	"testing"

	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

func TestParameterValidation(t *testing.T) {
	if _, err := Mutex(ratutil.R(3, 2)); err == nil {
		t.Error("Mutex should reject loss > 1")
	}
	if _, err := Consensus(nil); err == nil {
		t.Error("Consensus should reject nil loss")
	}
	if _, err := MutexSystem(ratutil.R(-1, 2)); err == nil {
		t.Error("MutexSystem should reject negative loss")
	}
	if _, err := ConsensusSystem(ratutil.R(2, 1)); err == nil {
		t.Error("ConsensusSystem should reject loss > 1")
	}
}

// TestMutexExactValues pins the derived numbers at loss 1/10: the
// constraint value is exactly 29/31 and the two entering information
// states carry beliefs 29/30 (granted) and 29/40 (silent timeout).
func TestMutexExactValues(t *testing.T) {
	sys, err := MutexSystem(ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsOne(sys.TotalMeasure()) {
		t.Fatal("total measure != 1")
	}
	e := core.New(sys)
	excl := MutexExclusionFact("i")

	mu, err := e.ConstraintProb(excl, "i", ActEnter)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(mu, ratutil.R(29, 31)) {
		t.Fatalf("µ(exclusion | enter_i) = %v, want 29/31", mu)
	}

	byState, err := e.BeliefByActionState(excl, "i", ActEnter)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"t1|req:grant":  "29/30",
		"t1|req:silent": "29/40",
	}
	if len(byState) != len(want) {
		t.Fatalf("entering states = %v", byState)
	}
	for state, wantBel := range want {
		got, ok := byState[state]
		if !ok {
			t.Fatalf("missing state %q in %v", state, byState)
		}
		if got.RatString() != wantBel {
			t.Errorf("β at %q = %s, want %s", state, got.RatString(), wantBel)
		}
	}

	// Theorem 6.2 on the scenario.
	rep, err := e.CheckExpectation(excl, "i", ActEnter)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Independent || !rep.Equal() {
		t.Fatalf("expectation identity: %v", rep)
	}
}

// TestMutexSymmetry: the scenario is symmetric between the two agents.
func TestMutexSymmetry(t *testing.T) {
	sys, err := MutexSystem(ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	muI, err := e.ConstraintProb(MutexExclusionFact("i"), "i", ActEnter)
	if err != nil {
		t.Fatal(err)
	}
	muJ, err := e.ConstraintProb(MutexExclusionFact("j"), "j", ActEnter)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(muI, muJ) {
		t.Fatalf("asymmetric: %v vs %v", muI, muJ)
	}
}

// TestMutexPerfectChannel: with no loss the deny always arrives and
// exclusion is certain — the KoP limit.
func TestMutexPerfectChannel(t *testing.T) {
	sys, err := MutexSystem(ratutil.Zero())
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	rep, err := e.CheckKoPLimit(MutexExclusionFact("i"), "i", ActEnter)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsOne(rep.ConstraintProb) || !rep.AlwaysKnows {
		t.Fatalf("lossless mutex should give certainty: %v", rep)
	}
}

// TestMutexRefrainOnSilence: Section 8's pruning applied to the mutex —
// never enter on a timeout — yields exclusion value 29/30 (the granted
// state's belief), at the cost of acting measure.
func TestMutexRefrainOnSilence(t *testing.T) {
	sys, err := MutexSystem(ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	rep, err := e.RefrainAnalysis(MutexExclusionFact("i"), "i", ActEnter, ratutil.R(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Predicted == nil || !ratutil.Eq(rep.Predicted, ratutil.R(29, 30)) {
		t.Fatalf("refrain prediction = %v, want 29/30", rep.Predicted)
	}
	if !rep.Improves() {
		t.Error("pruning the timeout entry should improve exclusion")
	}
}

// TestConsensusExactValues pins the derived agreement numbers at loss
// 1/10: µ(agreement | decide0) = 28/29 and µ(agreement | decide1) = 10/11.
func TestConsensusExactValues(t *testing.T) {
	sys, err := ConsensusSystem(ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumRuns() != 16 {
		t.Fatalf("runs = %d, want 16", sys.NumRuns())
	}
	e := core.New(sys)
	agree := AgreementFact()

	mu0, err := e.ConstraintProb(agree, "i", ActDecide0)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(mu0, ratutil.R(28, 29)) {
		t.Fatalf("µ(agree | decide0) = %v, want 28/29", mu0)
	}
	mu1, err := e.ConstraintProb(agree, "i", ActDecide1)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(mu1, ratutil.R(10, 11)) {
		t.Fatalf("µ(agree | decide1) = %v, want 10/11", mu1)
	}

	// The decide-1 beliefs: certainty after receiving 1, exactly 1/2
	// after silence.
	byState, err := e.BeliefByActionState(agree, "i", ActDecide1)
	if err != nil {
		t.Fatal(err)
	}
	for state, bel := range byState {
		switch {
		case RecvBit(state) == "1":
			if !ratutil.IsOne(bel) {
				t.Errorf("β at %q = %v, want 1", state, bel)
			}
		default:
			if !ratutil.Eq(bel, ratutil.R(1, 2)) {
				t.Errorf("β at %q = %v, want 1/2", state, bel)
			}
		}
	}

	// Decisions are deterministic functions of the local state, so
	// Lemma 4.3(a) guarantees independence; Theorem 6.2 follows.
	for _, action := range []string{ActDecide0, ActDecide1} {
		det, err := e.IsDeterministicAction("i", action)
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			t.Errorf("%s should be deterministic", action)
		}
		rep, err := e.CheckExpectation(agree, "i", action)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Holds() || !rep.Equal() {
			t.Errorf("%s: %v", action, rep)
		}
	}
}

// TestConsensusValidity: with equal inputs the AND rule always decides
// the common value — a Validity check.
func TestConsensusValidity(t *testing.T) {
	sys, err := ConsensusSystem(ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	bothZero := logic.And(logic.LocalContains("i", "b=0"), logic.LocalContains("j", "b=0"))
	decideOne := logic.Or(logic.Performed("i", ActDecide1), logic.Performed("j", ActDecide1))
	bad := logic.RunsSatisfying(sys, logic.And(logic.AtTime(0, bothZero), decideOne))
	if !bad.IsEmpty() {
		t.Fatalf("validity violated on runs %v", bad)
	}
	bothOne := logic.And(logic.LocalContains("i", "b=1"), logic.LocalContains("j", "b=1"))
	decideZero := logic.Or(logic.Performed("i", ActDecide0), logic.Performed("j", ActDecide0))
	bad = logic.RunsSatisfying(sys, logic.And(logic.AtTime(0, bothOne), decideZero))
	if !bad.IsEmpty() {
		t.Fatalf("validity violated on runs %v", bad)
	}
}

// TestConsensusPerfectChannel: with no loss, agreement is certain for
// both decisions (disagreement needs a lost message).
func TestConsensusPerfectChannel(t *testing.T) {
	sys, err := ConsensusSystem(ratutil.Zero())
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	for _, action := range []string{ActDecide0, ActDecide1} {
		mu, err := e.ConstraintProb(AgreementFact(), "i", action)
		if err != nil {
			t.Fatal(err)
		}
		if !ratutil.IsOne(mu) {
			t.Errorf("lossless %s: µ = %v, want 1", action, mu)
		}
	}
}

func TestBitHelpers(t *testing.T) {
	tests := []struct {
		local    string
		own, rcv string
	}{
		{"b=1,recv=0", "1", "0"},
		{"b=0,recv=none", "0", ""},
		{"t1|b=1,recv=1", "1", "1"},
		{"no-bit-here", "", ""},
		{"b=", "", ""},
	}
	for _, tt := range tests {
		if got := OwnBit(tt.local); got != tt.own {
			t.Errorf("OwnBit(%q) = %q, want %q", tt.local, got, tt.own)
		}
		if got := RecvBit(tt.local); got != tt.rcv {
			t.Errorf("RecvBit(%q) = %q, want %q", tt.local, got, tt.rcv)
		}
	}
}

func TestMutexExclusionFactOtherAgent(t *testing.T) {
	sys, err := MutexSystem(ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	fi := MutexExclusionFact("i")
	fj := MutexExclusionFact("j")
	// On a run where only i enters, i's exclusion holds at t1 and j's
	// exclusion (about i) fails.
	for r := 0; r < sys.NumRuns(); r++ {
		run := pps.RunID(r)
		actI, _ := sys.Action(run, 1, 0)
		actJ, _ := sys.Action(run, 1, 1)
		if actI == ActEnter && actJ != ActEnter {
			if !fi.Holds(sys, run, 1) {
				t.Error("i's exclusion should hold when j is idle")
			}
			if fj.Holds(sys, run, 1) {
				t.Error("j's exclusion should fail when i enters")
			}
			return
		}
	}
	t.Fatal("no suitable run found")
}
