// Package scenarios provides ready-made protocol models for the
// distributed-computing workloads the paper's introduction motivates
// beyond Example 1: relaxed mutual exclusion and bounded randomized
// consensus over lossy channels. Each scenario is a protocol.Model, so it
// can be unfolded into an exact pps, analyzed by the belief engine, and
// simulated by the Monte-Carlo layer; the tests pin down the exact
// constraint values the constructions imply.
package scenarios

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"pak/internal/logic"
	"pak/internal/msgnet"
	"pak/internal/pps"
	"pak/internal/protocol"
	"pak/internal/ratutil"
)

// ErrBadParam indicates scenario parameters outside their domain.
var ErrBadParam = errors.New("scenarios: invalid parameter")

// Action and agent names shared by the scenarios.
const (
	// ActRequest and ActEnter are the mutual-exclusion actions.
	ActRequest = "request"
	ActEnter   = "enter"
	// ActSkip is the idle action.
	ActSkip = "skip"
	// ActDecide0 and ActDecide1 are the consensus decisions.
	ActDecide0 = "decide0"
	ActDecide1 = "decide1"
)

// --- Relaxed mutual exclusion ---

// mutexModel is a two-agent contention protocol: each agent requests the
// critical section with probability 1/2; an arbiter grants one requester
// and denies the other, over a channel losing each message independently;
// a requester that hears nothing times out and enters anyway.
type mutexModel struct {
	net msgnet.Net
}

var _ protocol.Model = mutexModel{}

// Mutex returns the relaxed mutual-exclusion protocol with the given
// arbiter-message loss probability.
func Mutex(loss *big.Rat) (protocol.Model, error) {
	net, err := msgnet.New(loss)
	if err != nil {
		return nil, fmt.Errorf("scenarios.Mutex: %w", err)
	}
	return mutexModel{net: net}, nil
}

func (m mutexModel) Agents() []string { return []string{"i", "j"} }

func (m mutexModel) Initials() []protocol.Weighted[protocol.Global] {
	return []protocol.Weighted[protocol.Global]{
		protocol.W(protocol.Global{Env: "start", Locals: []string{"idle", "idle"}}, ratutil.One()),
	}
}

func (m mutexModel) Horizon() int { return 2 }

func (m mutexModel) AgentStep(agent int, local string, t int) []protocol.Weighted[string] {
	switch t {
	case 0:
		return protocol.Mix(
			protocol.W(ActRequest, ratutil.R(1, 2)),
			protocol.W(ActSkip, ratutil.R(1, 2)),
		)
	default:
		if strings.HasPrefix(local, "req") && !strings.Contains(local, "deny") {
			return protocol.Det(ActEnter)
		}
		return protocol.Det(ActSkip)
	}
}

// arbMsgs returns the arbiter's messages given the requesters and winner.
func (m mutexModel) arbMsgs(reqI, reqJ bool, winner int) []msgnet.Msg {
	const arbiter = 2
	switch {
	case reqI && reqJ:
		loser := 1 - winner
		return []msgnet.Msg{
			{From: arbiter, To: winner, Payload: "grant"},
			{From: arbiter, To: loser, Payload: "deny"},
		}
	case reqI:
		return []msgnet.Msg{{From: arbiter, To: 0, Payload: "grant"}}
	case reqJ:
		return []msgnet.Msg{{From: arbiter, To: 1, Payload: "grant"}}
	default:
		return nil
	}
}

func (m mutexModel) EnvStep(g protocol.Global, acts []string, t int) []protocol.Weighted[string] {
	if t != 0 {
		return protocol.Det("quiet")
	}
	reqI := acts[0] == ActRequest
	reqJ := acts[1] == ActRequest
	if reqI && reqJ {
		var out []protocol.Weighted[string]
		for winner := 0; winner <= 1; winner++ {
			for _, pat := range m.net.Patterns(m.arbMsgs(true, true, winner)) {
				out = append(out, protocol.W(
					fmt.Sprintf("w=%d|%s", winner, pat.Value),
					ratutil.Mul(ratutil.R(1, 2), pat.Pr),
				))
			}
		}
		return out
	}
	winner := 0
	if reqJ {
		winner = 1
	}
	if !reqI && !reqJ {
		return protocol.Det("quiet")
	}
	var out []protocol.Weighted[string]
	for _, pat := range m.net.Patterns(m.arbMsgs(reqI, reqJ, winner)) {
		out = append(out, protocol.W(fmt.Sprintf("w=%d|%s", winner, pat.Value), pat.Pr))
	}
	return out
}

func (m mutexModel) Next(g protocol.Global, acts []string, envAct string, t int) (protocol.Global, error) {
	next := g.Clone()
	if t != 0 {
		for a := range next.Locals {
			next.Locals[a] = g.Locals[a] + "|done"
		}
		next.Env = "done"
		return next, nil
	}
	reqI := acts[0] == ActRequest
	reqJ := acts[1] == ActRequest
	winner, pattern := splitEnvAct(envAct)
	msgs := m.arbMsgs(reqI, reqJ, winner)
	for a := 0; a <= 1; a++ {
		requested := acts[a] == ActRequest
		if !requested {
			next.Locals[a] = "idle"
			continue
		}
		inbox := []string{}
		if len(msgs) > 0 {
			var err error
			inbox, err = msgnet.Inbox(msgs, pattern, a)
			if err != nil {
				return protocol.Global{}, err
			}
		}
		switch {
		case contains(inbox, "grant"):
			next.Locals[a] = "req:grant"
		case contains(inbox, "deny"):
			next.Locals[a] = "req:deny"
		default:
			next.Locals[a] = "req:silent"
		}
	}
	next.Env = "arbitrated"
	return next, nil
}

// splitEnvAct decodes "w=<idx>|<pattern>"; plain actions decode to winner 0.
func splitEnvAct(envAct string) (winner int, pattern string) {
	parts := strings.SplitN(envAct, "|", 2)
	if len(parts) != 2 {
		return 0, envAct
	}
	if strings.TrimPrefix(parts[0], "w=") == "1" {
		winner = 1
	}
	return winner, parts[1]
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// MutexSystem unfolds the mutual-exclusion scenario into its pps.
func MutexSystem(loss *big.Rat) (*pps.System, error) {
	m, err := Mutex(loss)
	if err != nil {
		return nil, err
	}
	sys, err := protocol.Unfold(m)
	if err != nil {
		return nil, fmt.Errorf("scenarios.MutexSystem: %w", err)
	}
	return sys, nil
}

// MutexExclusionFact returns the exclusion condition for the given agent:
// the other agent is not entering the critical section now.
func MutexExclusionFact(agent string) logic.Fact {
	other := "j"
	if agent == "j" {
		other = "i"
	}
	return logic.Not(logic.Does(other, ActEnter))
}

// --- Bounded randomized consensus ---

// consensusModel is a two-agent, one-exchange binary consensus: uniform
// random initial bits, one round of bit exchange over a lossy channel,
// then the AND decision rule (decide the minimum known bit; silence is
// ignored).
type consensusModel struct {
	net msgnet.Net
}

var _ protocol.Model = consensusModel{}

// Consensus returns the bounded consensus protocol with the given message
// loss probability.
func Consensus(loss *big.Rat) (protocol.Model, error) {
	net, err := msgnet.New(loss)
	if err != nil {
		return nil, fmt.Errorf("scenarios.Consensus: %w", err)
	}
	return consensusModel{net: net}, nil
}

func (m consensusModel) Agents() []string { return []string{"i", "j"} }

func (m consensusModel) Initials() []protocol.Weighted[protocol.Global] {
	quarter := ratutil.R(1, 4)
	var out []protocol.Weighted[protocol.Global]
	for _, bi := range []string{"0", "1"} {
		for _, bj := range []string{"0", "1"} {
			out = append(out, protocol.W(protocol.Global{
				Env:    "start",
				Locals: []string{"b=" + bi, "b=" + bj},
			}, quarter))
		}
	}
	return out
}

func (m consensusModel) Horizon() int { return 2 }

func (m consensusModel) msgs(locals []string) []msgnet.Msg {
	return []msgnet.Msg{
		{From: 0, To: 1, Payload: OwnBit(locals[0])},
		{From: 1, To: 0, Payload: OwnBit(locals[1])},
	}
}

func (m consensusModel) AgentStep(agent int, local string, t int) []protocol.Weighted[string] {
	if t == 0 {
		return protocol.Det("send")
	}
	own := OwnBit(local)
	recv := RecvBit(local)
	decision := own
	if recv != "" && recv < decision {
		decision = recv
	}
	return protocol.Det("decide" + decision)
}

func (m consensusModel) EnvStep(g protocol.Global, acts []string, t int) []protocol.Weighted[string] {
	if t != 0 {
		return protocol.Det("quiet")
	}
	return m.net.Patterns(m.msgs(g.Locals))
}

func (m consensusModel) Next(g protocol.Global, acts []string, envAct string, t int) (protocol.Global, error) {
	next := g.Clone()
	if t == 0 {
		msgs := m.msgs(g.Locals)
		for a := 0; a < 2; a++ {
			inbox, err := msgnet.Inbox(msgs, envAct, a)
			if err != nil {
				return protocol.Global{}, err
			}
			if len(inbox) > 0 {
				next.Locals[a] = g.Locals[a] + ",recv=" + inbox[0]
			} else {
				next.Locals[a] = g.Locals[a] + ",recv=none"
			}
		}
		next.Env = "exchanged"
		return next, nil
	}
	for a := range next.Locals {
		next.Locals[a] = g.Locals[a] + ",decided"
	}
	next.Env = "done"
	return next, nil
}

// ConsensusSystem unfolds the consensus scenario into its pps.
func ConsensusSystem(loss *big.Rat) (*pps.System, error) {
	m, err := Consensus(loss)
	if err != nil {
		return nil, err
	}
	sys, err := protocol.Unfold(m)
	if err != nil {
		return nil, fmt.Errorf("scenarios.ConsensusSystem: %w", err)
	}
	return sys, nil
}

// AgreementFact holds when both agents are currently deciding the same
// value.
func AgreementFact() logic.Fact {
	return logic.Or(
		logic.And(logic.Does("i", ActDecide0), logic.Does("j", ActDecide0)),
		logic.And(logic.Does("i", ActDecide1), logic.Does("j", ActDecide1)),
	)
}

// OwnBit extracts an agent's initial bit from its (unstamped or stamped)
// local state.
func OwnBit(local string) string {
	idx := strings.Index(local, "b=")
	if idx < 0 || idx+2 >= len(local) {
		return ""
	}
	return local[idx+2 : idx+3]
}

// RecvBit extracts the received bit from a post-exchange local state, or
// "" for silence.
func RecvBit(local string) string {
	idx := strings.Index(local, "recv=")
	if idx < 0 {
		return ""
	}
	v := local[idx+5:]
	if strings.HasPrefix(v, "none") {
		return ""
	}
	return v[:1]
}
