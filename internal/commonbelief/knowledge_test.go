package commonbelief

import (
	"errors"
	"testing"

	"pak/internal/logic"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/ratutil"
	"pak/internal/runset"
)

func TestKnowledgeOnThat(t *testing.T) {
	sys, s := thatSlice(t)
	e := bitEvent(sys) // {1, 2}

	// j knows its own bit: K_j(bit=1) = {1, 2}.
	kj, err := s.Knowledge(1, e)
	if err != nil {
		t.Fatal(err)
	}
	if !kj.Equal(runset.Of(3, 1, 2)) {
		t.Fatalf("K_j = %v, want {1,2}", kj)
	}
	// i knows bit=1 only after receiving m' (run 2).
	ki, err := s.Knowledge(0, e)
	if err != nil {
		t.Fatal(err)
	}
	if !ki.Equal(runset.Of(3, 2)) {
		t.Fatalf("K_i = %v, want {2}", ki)
	}
	// Knowledge coincides with B^1 in a pps.
	b1, err := s.PBelief(0, e, ratutil.One())
	if err != nil {
		t.Fatal(err)
	}
	if !ki.Equal(b1) {
		t.Fatal("K_i != B_i^1")
	}
	if _, err := s.Knowledge(99, e); !errors.Is(err, ErrBadGroup) {
		t.Errorf("bad agent err = %v", err)
	}
}

func TestEveryoneKnowsAndCommonOnThat(t *testing.T) {
	sys, s := thatSlice(t)
	e := bitEvent(sys)
	group := []pps.AgentID{0, 1}

	ek, err := s.EveryoneKnows(group, e)
	if err != nil {
		t.Fatal(err)
	}
	if !ek.Equal(runset.Of(3, 2)) {
		t.Fatalf("E_G = %v, want {2}", ek)
	}
	// But j does not know that i knows: j's bit=1 cell {1,2} is not
	// contained in {2}, so common knowledge collapses to ∅.
	ck, err := s.CommonKnowledge(group, e)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.IsEmpty() {
		t.Fatalf("C_G = %v, want ∅", ck)
	}
	if _, err := s.EveryoneKnows(nil, e); !errors.Is(err, ErrBadGroup) {
		t.Errorf("empty group err = %v", err)
	}
}

func TestKnowledgeDepthOnThat(t *testing.T) {
	sys, s := thatSlice(t)
	e := bitEvent(sys)
	group := []pps.AgentID{0, 1}
	depth, last, err := s.KnowledgeDepth(group, e, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Level 1 (everyone knows) is attained on {2}; level 2 is empty.
	if depth != 1 {
		t.Fatalf("depth = %d, want 1", depth)
	}
	if !last.Equal(runset.Of(3, 2)) {
		t.Fatalf("last nonempty level = %v, want {2}", last)
	}
	if _, _, err := s.KnowledgeDepth(group, e, 0); !errors.Is(err, ErrBadGroup) {
		t.Errorf("bad depth err = %v", err)
	}
}

// TestCoordinatedAttackImpossibility exhibits the classic result through
// the paper's Example 1: over the lossy channel, "both fire" is NEVER
// common knowledge at the firing time — even on runs where both fire —
// while common p-belief at moderate p is attained (the probabilistic
// relaxation that makes the FS protocol's specification satisfiable).
func TestCoordinatedAttackImpossibility(t *testing.T) {
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSlice(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	both := logic.RunsSatisfying(sys, logic.Sometime(paper.FSBothFire()))
	group := []pps.AgentID{0, 1}

	ck, err := s.CommonKnowledge(group, both)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.IsEmpty() {
		t.Fatalf("common knowledge of joint firing over a lossy channel: %v", ck)
	}

	cb, err := s.CommonP(group, both, ratutil.R(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if cb.IsEmpty() {
		t.Fatal("common 1/2-belief should be attainable")
	}
}

// TestLosslessChannelRestoresCommonKnowledge is the contrast: with no
// message loss the go=1 branch has a single run, information is complete,
// and joint firing becomes common knowledge at the firing time.
func TestLosslessChannelRestoresCommonKnowledge(t *testing.T) {
	sys, err := paper.FiringSquad(ratutil.Zero(), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSlice(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	both := logic.RunsSatisfying(sys, logic.Sometime(paper.FSBothFire()))
	group := []pps.AgentID{0, 1}

	ck, err := s.CommonKnowledge(group, both)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Equal(both) {
		t.Fatalf("lossless: C_G(both) = %v, want the both-fire runs %v", ck, both)
	}
	depth, last, err := s.KnowledgeDepth(group, both, 20)
	if err != nil {
		t.Fatal(err)
	}
	// The iteration reaches a nonempty fixed point (= common knowledge)
	// at level 2 and stops there.
	if depth != 2 || !last.Equal(both) {
		t.Fatalf("lossless: depth = %d last = %v, want fixed point %v at level 2", depth, last, both)
	}
}

// TestKnowledgeMonotoneInEvent checks K_a's monotonicity: E ⊆ F implies
// K_a(E) ⊆ K_a(F).
func TestKnowledgeMonotoneInEvent(t *testing.T) {
	sys, s := thatSlice(t)
	small := bitEvent(sys)
	large := sys.FullSet()
	for a := pps.AgentID(0); a < 2; a++ {
		kSmall, err := s.Knowledge(a, small)
		if err != nil {
			t.Fatal(err)
		}
		kLarge, err := s.Knowledge(a, large)
		if err != nil {
			t.Fatal(err)
		}
		if !kSmall.SubsetOf(kLarge) {
			t.Fatalf("agent %d: knowledge not monotone", a)
		}
		// K is truthful: K(E) ⊆ E.
		if !kSmall.SubsetOf(small) {
			t.Fatalf("agent %d: knowledge not truthful", a)
		}
	}
}
