package commonbelief

import (
	"errors"
	"testing"

	"pak/internal/logic"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/ratutil"
	"pak/internal/runset"
)

// thatSlice builds T-hat(9/10, 1/10) and its time-1 slice. Runs: 0 is
// bit=0 (message m), 1 is bit=1 with m, 2 is bit=1 with m'.
func thatSlice(t *testing.T) (*pps.System, *Slice) {
	t.Helper()
	sys, err := paper.That(ratutil.R(9, 10), ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSlice(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sys, s
}

// bitEvent is the event "bit = 1" = runs {1, 2}.
func bitEvent(sys *pps.System) *runset.Set {
	return logic.RunsSatisfying(sys, paper.ThatBitFact())
}

func TestNewSliceErrors(t *testing.T) {
	sys, _ := thatSlice(t)
	if _, err := NewSlice(sys, -1); !errors.Is(err, ErrBadTime) {
		t.Errorf("negative time err = %v", err)
	}
	if _, err := NewSlice(sys, 99); !errors.Is(err, ErrBadTime) {
		t.Errorf("beyond-horizon err = %v", err)
	}
}

func TestSliceAccessors(t *testing.T) {
	sys, s := thatSlice(t)
	if s.Time() != 1 {
		t.Errorf("Time = %d", s.Time())
	}
	if !s.Alive().Equal(sys.FullSet()) {
		t.Errorf("Alive = %v", s.Alive())
	}
}

func TestPBelief(t *testing.T) {
	sys, s := thatSlice(t)
	e := bitEvent(sys)
	agentI, agentJ := pps.AgentID(0), pps.AgentID(1)

	// i's posterior of bit=1 is 8/9 in the recv=m cell {0,1} and 1 in the
	// recv=m' cell {2}.
	b, err := s.PBelief(agentI, e, ratutil.R(8, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(sys.FullSet()) {
		t.Errorf("B_i^{8/9} = %v, want all runs", b)
	}
	b, err = s.PBelief(agentI, e, ratutil.R(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(runset.Of(3, 2)) {
		t.Errorf("B_i^{9/10} = %v, want {2}", b)
	}

	// j knows its own bit: B_j^p(E) = {1,2} for every positive p.
	b, err = s.PBelief(agentJ, e, ratutil.One())
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(runset.Of(3, 1, 2)) {
		t.Errorf("B_j^1 = %v, want {1,2}", b)
	}
}

func TestPBeliefErrors(t *testing.T) {
	sys, s := thatSlice(t)
	e := bitEvent(sys)
	if _, err := s.PBelief(0, e, ratutil.R(3, 2)); !errors.Is(err, ErrBadProb) {
		t.Errorf("bad p err = %v", err)
	}
	if _, err := s.PBelief(0, e, nil); !errors.Is(err, ErrBadProb) {
		t.Errorf("nil p err = %v", err)
	}
	if _, err := s.PBelief(99, e, ratutil.R(1, 2)); !errors.Is(err, ErrBadGroup) {
		t.Errorf("bad agent err = %v", err)
	}
}

func TestEveryoneP(t *testing.T) {
	sys, s := thatSlice(t)
	e := bitEvent(sys)
	group := []pps.AgentID{0, 1}
	ev, err := s.EveryoneP(group, e, ratutil.R(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	// B_i^{9/10} = {2}, B_j^{9/10} = {1,2}: intersection {2}.
	if !ev.Equal(runset.Of(3, 2)) {
		t.Errorf("E^{9/10} = %v, want {2}", ev)
	}
	if _, err := s.EveryoneP(nil, e, ratutil.R(1, 2)); !errors.Is(err, ErrBadGroup) {
		t.Errorf("empty group err = %v", err)
	}
}

func TestCommonPCollapses(t *testing.T) {
	// At p = 9/10 the event "bit=1" is p-believed by everyone exactly on
	// {2}, but j's posterior of {2} within its bit=1 cell is only
	// ε/p = 1/9 < 9/10, so the iteration collapses: no common p-belief.
	sys, s := thatSlice(t)
	e := bitEvent(sys)
	group := []pps.AgentID{0, 1}
	c, err := s.CommonP(group, e, ratutil.R(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsEmpty() {
		t.Fatalf("C^{9/10} = %v, want ∅", c)
	}
}

func TestCommonPTrivialLevels(t *testing.T) {
	sys, s := thatSlice(t)
	e := bitEvent(sys)
	group := []pps.AgentID{0, 1}
	// p = 0: everything is 0-believed, so C is the full slice.
	c, err := s.CommonP(group, e, ratutil.Zero())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(sys.FullSet()) {
		t.Fatalf("C^0 = %v, want all", c)
	}
}

func TestIteratedEPDecreasesToCommon(t *testing.T) {
	sys, s := thatSlice(t)
	e := bitEvent(sys)
	group := []pps.AgentID{0, 1}
	p := ratutil.R(9, 10)

	k1, err := s.IteratedEP(group, e, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s.IteratedEP(group, e, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Equal(runset.Of(3, 2)) {
		t.Errorf("level-1 = %v, want {2}", k1)
	}
	if !k2.SubsetOf(k1) {
		t.Error("iterates should be decreasing")
	}
	c, err := s.CommonP(group, e, p)
	if err != nil {
		t.Fatal(err)
	}
	if !k2.Equal(c) {
		t.Errorf("level-2 = %v should equal the fixed point %v", k2, c)
	}
	if _, err := s.IteratedEP(group, e, p, 0); !errors.Is(err, ErrBadGroup) {
		t.Errorf("k=0 err = %v", err)
	}
	_ = sys
}

func TestCommonPIsFixedPoint(t *testing.T) {
	// On the firing-squad system: whatever C is, it must satisfy
	// C = E_G^p(E ∩ C) ∩ C.
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSlice(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	bothFire := logic.RunsSatisfying(sys, logic.Sometime(paper.FSBothFire()))
	group := []pps.AgentID{0, 1}
	for _, p := range []string{"1/2", "9/10", "99/100"} {
		level := ratutil.MustParse(p)
		c, err := s.CommonP(group, bothFire, level)
		if err != nil {
			t.Fatal(err)
		}
		next, err := s.EveryoneP(group, bothFire.Intersect(c), level)
		if err != nil {
			t.Fatal(err)
		}
		if !next.Intersect(c).Equal(c) {
			t.Errorf("p=%s: C is not a fixed point: C=%v, E(E∩C)∩C=%v", p, c, next.Intersect(c))
		}
		// C must be contained in the one-step operator.
		one, err := s.EveryoneP(group, bothFire, level)
		if err != nil {
			t.Fatal(err)
		}
		if !c.SubsetOf(one) {
			t.Errorf("p=%s: C ⊄ E^p(E)", p)
		}
	}
}

func TestFiringSquadCommonBeliefLevels(t *testing.T) {
	// In FS at t=2 the event "both will fire" can be common p-believed for
	// moderate p: when Alice received 'Yes' and Bob got the wake-up, both
	// assign high probability to the event and to each other's beliefs.
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSlice(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	bothFire := logic.RunsSatisfying(sys, logic.Sometime(paper.FSBothFire()))
	group := []pps.AgentID{0, 1}

	cLow, err := s.CommonP(group, bothFire, ratutil.R(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if cLow.IsEmpty() {
		t.Error("C^{1/2}(both fire) should be nonempty in FS")
	}
	cHigh, err := s.CommonP(group, bothFire, ratutil.R(999, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !cHigh.SubsetOf(cLow) {
		t.Error("common belief should be antitone in p")
	}
}
