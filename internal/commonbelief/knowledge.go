package commonbelief

import (
	"fmt"

	"pak/internal/pps"
	"pak/internal/runset"
)

// Deterministic (S5) knowledge operators over a time slice, complementing
// the probabilistic p-belief operators. In a pps the prior has full
// support, so K_i coincides with B_i^1; the separate implementation works
// purely set-theoretically and is used to exhibit the classic coordinated
// attack contrast: over a lossy channel, common *knowledge* of a joint
// action is unattainable while common p-belief is, and the paper's
// Example 1 protocol succeeds exactly because its specification is
// probabilistic.

// Knowledge returns K_a(E): the runs at whose time-t point agent a knows
// E, i.e. whose information cell is contained in E.
func (s *Slice) Knowledge(a pps.AgentID, event *runset.Set) (*runset.Set, error) {
	if int(a) < 0 || int(a) >= s.sys.NumAgents() {
		return nil, fmt.Errorf("%w: agent %d", ErrBadGroup, a)
	}
	out := s.sys.NewSet()
	for _, cell := range s.cells[a] {
		if cell.SubsetOf(event) {
			out = out.Union(cell)
		}
	}
	return out, nil
}

// EveryoneKnows returns E_G(E) = ∩_{i∈G} K_i(E).
func (s *Slice) EveryoneKnows(group []pps.AgentID, event *runset.Set) (*runset.Set, error) {
	if len(group) == 0 {
		return nil, fmt.Errorf("%w: empty group", ErrBadGroup)
	}
	out := s.alive.Clone()
	for _, a := range group {
		k, err := s.Knowledge(a, event)
		if err != nil {
			return nil, err
		}
		out = out.Intersect(k)
	}
	return out, nil
}

// CommonKnowledge returns C_G(E), the greatest fixed point of
// F ↦ E_G(E ∩ F) below the alive slice: the event that E is common
// knowledge among G at the slice time.
func (s *Slice) CommonKnowledge(group []pps.AgentID, event *runset.Set) (*runset.Set, error) {
	current := s.alive.Clone()
	for {
		next, err := s.EveryoneKnows(group, event.Intersect(current))
		if err != nil {
			return nil, err
		}
		next = next.Intersect(current)
		if next.Equal(current) {
			return next, nil
		}
		current = next
	}
}

// KnowledgeDepth iterates the "everyone knows" operator E_G (with
// intersection at each stage) and returns the last level with a nonempty
// iterate, together with that iterate. Iteration stops early when a fixed
// point is reached: a nonempty fixed point means E is common knowledge on
// the returned set (all further levels coincide), so the returned depth is
// then the level at which the fixed point appeared, not maxDepth. A depth
// k < maxDepth with an empty next level measures exactly k levels of
// mutual knowledge ("everyone knows that everyone knows ... (k times)").
func (s *Slice) KnowledgeDepth(group []pps.AgentID, event *runset.Set, maxDepth int) (int, *runset.Set, error) {
	if maxDepth < 1 {
		return 0, nil, fmt.Errorf("%w: maxDepth=%d", ErrBadGroup, maxDepth)
	}
	current := s.alive.Clone()
	depth := 0
	last := current.Clone()
	for i := 0; i < maxDepth; i++ {
		next, err := s.EveryoneKnows(group, event.Intersect(current))
		if err != nil {
			return 0, nil, err
		}
		next = next.Intersect(current)
		if next.IsEmpty() {
			return depth, last, nil
		}
		depth = i + 1
		last = next
		if next.Equal(current) {
			return depth, last, nil // fixed point: all further levels equal
		}
		current = next
	}
	return depth, last, nil
}
