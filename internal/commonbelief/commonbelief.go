// Package commonbelief implements probabilistic (p-)belief operators over
// a time slice of a pps, in the style of Monderer and Samet's
// "Approximating common knowledge with common beliefs" — the related work
// the paper builds on for its notion of beliefs, and the natural extension
// of its framework to group epistemics.
//
// Fixing a time t, the sample space is the set of runs (restricted to runs
// long enough to have a point at t), an agent's information partition is
// induced by its local state at t, and for an event E:
//
//	B_i^p(E) = the runs whose µ(E | ℓ_i at t) ≥ p        (i p-believes E)
//	E_G^p(E) = ∩_{i∈G} B_i^p(E)                          (everyone p-believes)
//	C_G^p(E) = the largest F with F ⊆ E_G^p(E ∩ F)       (common p-belief)
//
// C is computed as a greatest fixed point by iterating
// F ← F ∩ E_G^p(E ∩ F) from the full slice, which terminates because the
// run set is finite and the iteration is monotone.
package commonbelief

import (
	"errors"
	"fmt"
	"math/big"

	"pak/internal/pps"
	"pak/internal/ratutil"
	"pak/internal/runset"
)

// Sentinel errors returned (wrapped) by this package.
var (
	// ErrBadTime indicates a slice time with no points.
	ErrBadTime = errors.New("commonbelief: no runs reach the requested time")
	// ErrBadProb indicates a belief level outside [0, 1].
	ErrBadProb = errors.New("commonbelief: belief level must be in [0,1]")
	// ErrBadGroup indicates an empty or invalid agent group.
	ErrBadGroup = errors.New("commonbelief: invalid agent group")
)

// Slice is a fixed-time epistemic view of a pps: the runs alive at time t
// together with each agent's information partition there.
type Slice struct {
	sys   *pps.System
	t     int
	alive *runset.Set
	// cells groups alive runs by (agent, local state at t).
	cells map[pps.AgentID]map[string]*runset.Set
}

// NewSlice builds the time-t view of sys.
func NewSlice(sys *pps.System, t int) (*Slice, error) {
	if t < 0 {
		return nil, fmt.Errorf("%w: t=%d", ErrBadTime, t)
	}
	alive := sys.RunsWhere(func(r pps.RunID) bool { return t < sys.RunLen(r) })
	if alive.IsEmpty() {
		return nil, fmt.Errorf("%w: t=%d", ErrBadTime, t)
	}
	s := &Slice{
		sys:   sys,
		t:     t,
		alive: alive,
		cells: make(map[pps.AgentID]map[string]*runset.Set),
	}
	for a := pps.AgentID(0); int(a) < sys.NumAgents(); a++ {
		byLocal := make(map[string]*runset.Set)
		alive.ForEach(func(r int) bool {
			local := sys.Local(pps.RunID(r), t, a)
			cell, ok := byLocal[local]
			if !ok {
				cell = sys.NewSet()
				byLocal[local] = cell
			}
			cell.Add(r)
			return true
		})
		s.cells[a] = byLocal
	}
	return s, nil
}

// Time returns the slice time.
func (s *Slice) Time() int { return s.t }

// Alive returns the runs that have a point at the slice time.
func (s *Slice) Alive() *runset.Set { return s.alive.Clone() }

// PBelief returns B_i^p(E): the set of alive runs at whose time-t point
// agent a's posterior probability of E is at least p.
func (s *Slice) PBelief(a pps.AgentID, event *runset.Set, p *big.Rat) (*runset.Set, error) {
	if p == nil || !ratutil.IsProb(p) {
		return nil, fmt.Errorf("%w: %v", ErrBadProb, p)
	}
	if int(a) < 0 || int(a) >= s.sys.NumAgents() {
		return nil, fmt.Errorf("%w: agent %d", ErrBadGroup, a)
	}
	out := s.sys.NewSet()
	for _, cell := range s.cells[a] {
		cond, ok := s.sys.Cond(event, cell)
		if !ok {
			continue // unreachable: cells are nonempty with positive mass
		}
		if ratutil.Geq(cond, p) {
			out = out.Union(cell)
		}
	}
	return out, nil
}

// EveryoneP returns E_G^p(E) = ∩_{i∈G} B_i^p(E) for the agent group G.
func (s *Slice) EveryoneP(group []pps.AgentID, event *runset.Set, p *big.Rat) (*runset.Set, error) {
	if len(group) == 0 {
		return nil, fmt.Errorf("%w: empty group", ErrBadGroup)
	}
	out := s.alive.Clone()
	for _, a := range group {
		b, err := s.PBelief(a, event, p)
		if err != nil {
			return nil, err
		}
		out = out.Intersect(b)
	}
	return out, nil
}

// CommonP returns C_G^p(E), the event that E is common p-belief among G at
// the slice time, computed as the greatest fixed point of
// F ↦ E_G^p(E ∩ F) below the alive slice.
func (s *Slice) CommonP(group []pps.AgentID, event *runset.Set, p *big.Rat) (*runset.Set, error) {
	current := s.alive.Clone()
	for {
		next, err := s.EveryoneP(group, event.Intersect(current), p)
		if err != nil {
			return nil, err
		}
		next = next.Intersect(current)
		if next.Equal(current) {
			return next, nil
		}
		current = next
	}
}

// IteratedEP returns the k-fold iterate (E_G^p)^k applied to E with
// intersection at each stage: level 1 is E_G^p(E), level 2 is
// E_G^p(E ∩ E_G^p(E)), and so on. As k grows the iterates decrease to
// CommonP; exposing them lets callers inspect how fast common p-belief is
// approached (Monderer–Samet's approximation view).
func (s *Slice) IteratedEP(group []pps.AgentID, event *runset.Set, p *big.Rat, k int) (*runset.Set, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadGroup, k)
	}
	current := s.alive.Clone()
	for i := 0; i < k; i++ {
		next, err := s.EveryoneP(group, event.Intersect(current), p)
		if err != nil {
			return nil, err
		}
		current = next.Intersect(current)
	}
	return current, nil
}
