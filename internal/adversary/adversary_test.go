package adversary

import (
	"errors"
	"math/big"
	"strconv"
	"strings"
	"testing"

	"pak/internal/core"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

func TestNewSpaceValidation(t *testing.T) {
	tests := []struct {
		name    string
		choices []Choice
	}{
		{"empty name", []Choice{{Name: "", Options: []string{"a"}}}},
		{"duplicate", []Choice{{Name: "x", Options: []string{"a"}}, {Name: "x", Options: []string{"b"}}}},
		{"no options", []Choice{{Name: "x", Options: nil}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSpace(tt.choices...); !errors.Is(err, ErrBadSpace) {
				t.Fatalf("err = %v, want ErrBadSpace", err)
			}
		})
	}
}

func TestSpaceEnumeration(t *testing.T) {
	space, err := NewSpace(
		Choice{Name: "x", Options: []string{"0", "1"}},
		Choice{Name: "y", Options: []string{"a", "b", "c"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if space.Size() != 6 {
		t.Fatalf("Size = %d, want 6", space.Size())
	}
	var seen []string
	if err := space.ForEach(func(a Assignment) error {
		seen = append(seen, a.String())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("enumerated %d assignments", len(seen))
	}
	if seen[0] != "x=0,y=a" || seen[5] != "x=1,y=c" {
		t.Fatalf("order wrong: %v", seen)
	}
}

func TestForEachStopsOnError(t *testing.T) {
	space, err := NewSpace(Choice{Name: "x", Options: []string{"0", "1", "2"}})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	count := 0
	err = space.ForEach(func(a Assignment) error {
		count++
		if count == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || count != 2 {
		t.Fatalf("err=%v count=%d", err, count)
	}
}

// fsBuilder resolves the FS protocol with go fixed by the adversary, as in
// the paper's Section 2 discussion.
func fsBuilder(a Assignment) (*pps.System, error) {
	goVal, err := strconv.Atoi(a["go"])
	if err != nil {
		return nil, err
	}
	return paper.FiringSquadFixedGo(ratutil.R(1, 10), paper.FSOriginal, goVal)
}

func TestResolveFiringSquad(t *testing.T) {
	space, err := NewSpace(Choice{Name: "go", Options: []string{"0", "1"}})
	if err != nil {
		t.Fatal(err)
	}
	instances, err := Resolve(space, fsBuilder)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 2 {
		t.Fatalf("instances = %d, want 2", len(instances))
	}
	for _, inst := range instances {
		if !ratutil.IsOne(inst.System.TotalMeasure()) {
			t.Errorf("adversary %v: measure %v", inst.Assignment, inst.System.TotalMeasure())
		}
	}
}

func TestResolvePropagatesBuildErrors(t *testing.T) {
	space, err := NewSpace(Choice{Name: "go", Options: []string{"7"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(space, fsBuilder); !errors.Is(err, paper.ErrBadParam) {
		t.Fatalf("err = %v, want ErrBadParam", err)
	}
}

func TestConstraintEnvelope(t *testing.T) {
	space, err := NewSpace(Choice{Name: "go", Options: []string{"0", "1"}})
	if err != nil {
		t.Fatal(err)
	}
	instances, err := Resolve(space, fsBuilder)
	if err != nil {
		t.Fatal(err)
	}
	env, err := ConstraintEnvelope(instances, paper.FSBothFire(), paper.Alice, paper.ActFire)
	if err != nil {
		t.Fatal(err)
	}
	// Under go=0 Alice never fires, so that adversary is skipped; under
	// go=1 the constraint value is the paper's 99/100.
	if len(env.Skipped) != 1 || env.Skipped[0]["go"] != "0" {
		t.Fatalf("skipped = %v", env.Skipped)
	}
	if !ratutil.Eq(env.Min, ratutil.R(99, 100)) || !ratutil.Eq(env.Max, ratutil.R(99, 100)) {
		t.Fatalf("envelope = [%v, %v], want [99/100, 99/100]", env.Min, env.Max)
	}
	if env.ArgMin["go"] != "1" || env.ArgMax["go"] != "1" {
		t.Fatalf("arg adversaries wrong: %v", env)
	}
	if !strings.Contains(env.String(), "99/100") {
		t.Errorf("String = %q", env.String())
	}
}

func TestConstraintEnvelopeVariesAcrossAdversaries(t *testing.T) {
	// An adversary choosing the variant: improved dominates original.
	space, err := NewSpace(Choice{Name: "variant", Options: []string{"orig", "improved"}})
	if err != nil {
		t.Fatal(err)
	}
	build := func(a Assignment) (*pps.System, error) {
		v := paper.FSOriginal
		if a["variant"] == "improved" {
			v = paper.FSImproved
		}
		return paper.FiringSquad(ratutil.R(1, 10), v)
	}
	instances, err := Resolve(space, build)
	if err != nil {
		t.Fatal(err)
	}
	env, err := ConstraintEnvelope(instances, paper.FSBothFire(), paper.Alice, paper.ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(env.Min, ratutil.R(99, 100)) || !ratutil.Eq(env.Max, ratutil.R(990, 991)) {
		t.Fatalf("envelope = [%v, %v], want [99/100, 990/991]", env.Min, env.Max)
	}
	if env.ArgMax["variant"] != "improved" {
		t.Fatalf("ArgMax = %v", env.ArgMax)
	}
}

func TestConstraintEnvelopeErrors(t *testing.T) {
	if _, err := ConstraintEnvelope(nil, paper.FSBothFire(), paper.Alice, paper.ActFire); !errors.Is(err, ErrNoInstances) {
		t.Errorf("empty instances err = %v", err)
	}
	// All-skipped family: go=0 only.
	space, err := NewSpace(Choice{Name: "go", Options: []string{"0"}})
	if err != nil {
		t.Fatal(err)
	}
	instances, err := Resolve(space, fsBuilder)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConstraintEnvelope(instances, paper.FSBothFire(), paper.Alice, paper.ActFire); !errors.Is(err, ErrNoInstances) {
		t.Errorf("all-skipped err = %v", err)
	}
}

func TestMetricEnvelope(t *testing.T) {
	space, err := NewSpace(Choice{Name: "variant", Options: []string{"orig", "improved"}})
	if err != nil {
		t.Fatal(err)
	}
	instances, err := Resolve(space, func(a Assignment) (*pps.System, error) {
		v := paper.FSOriginal
		if a["variant"] == "improved" {
			v = paper.FSImproved
		}
		return paper.FiringSquad(ratutil.R(1, 10), v)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Metric: the threshold-met measure µ(β ≥ 0.95 | fire_A). The
	// improved protocol attains 1, the original 991/1000.
	metric := func(e *core.Engine) (*big.Rat, error) {
		return e.ThresholdMeasure(paper.FSBothFire(), paper.Alice, paper.ActFire, ratutil.R(95, 100))
	}
	env, err := MetricEnvelope(instances, metric)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(env.Min, ratutil.R(991, 1000)) || !ratutil.IsOne(env.Max) {
		t.Fatalf("envelope = [%v, %v]", env.Min, env.Max)
	}
	if env.ArgMax["variant"] != "improved" {
		t.Fatalf("ArgMax = %v", env.ArgMax)
	}
	if !strings.Contains(env.String(), "991/1000") {
		t.Errorf("String = %q", env.String())
	}
}

func TestMetricEnvelopeSkipsAndErrors(t *testing.T) {
	if _, err := MetricEnvelope(nil, func(*core.Engine) (*big.Rat, error) {
		return ratutil.One(), nil
	}); !errors.Is(err, ErrNoInstances) {
		t.Errorf("empty err = %v", err)
	}
	space, err := NewSpace(Choice{Name: "go", Options: []string{"0"}})
	if err != nil {
		t.Fatal(err)
	}
	instances, err := Resolve(space, fsBuilder)
	if err != nil {
		t.Fatal(err)
	}
	// A metric that is undefined (improper action) on every instance.
	metric := func(e *core.Engine) (*big.Rat, error) {
		return e.ConstraintProb(paper.FSBothFire(), paper.Alice, paper.ActFire)
	}
	if _, err := MetricEnvelope(instances, metric); !errors.Is(err, ErrNoInstances) {
		t.Errorf("all-skipped err = %v", err)
	}
	// A metric returning a hard error must propagate.
	boom := errors.New("boom")
	if _, err := MetricEnvelope(instances, func(*core.Engine) (*big.Rat, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Errorf("hard error = %v", err)
	}
}

// TestEnvelopesFailLoudlyOnEmptyFamily is the regression test for the
// empty-instance contract: both envelope evaluators must return a
// non-nil error AND the zero value of their range — never a silently
// usable zero-value range — for an empty (or nil) instance slice.
func TestEnvelopesFailLoudlyOnEmptyFamily(t *testing.T) {
	for _, instances := range [][]Instance{nil, {}} {
		cr, err := ConstraintEnvelope(instances, paper.FSBothFire(), paper.Alice, paper.ActFire)
		if !errors.Is(err, ErrNoInstances) {
			t.Fatalf("ConstraintEnvelope(%v) err = %v, want ErrNoInstances", instances, err)
		}
		if cr.Min != nil || cr.Max != nil || cr.ArgMin != nil || cr.ArgMax != nil || cr.Skipped != nil {
			t.Fatalf("ConstraintEnvelope(%v) returned a non-zero range alongside the error: %+v", instances, cr)
		}
		mr, err := MetricEnvelope(instances, func(e *core.Engine) (*big.Rat, error) {
			return ratutil.One(), nil
		})
		if !errors.Is(err, ErrNoInstances) {
			t.Fatalf("MetricEnvelope(%v) err = %v, want ErrNoInstances", instances, err)
		}
		if mr.Min != nil || mr.Max != nil || mr.ArgMin != nil || mr.ArgMax != nil || mr.Skipped != nil {
			t.Fatalf("MetricEnvelope(%v) returned a non-zero range alongside the error: %+v", instances, mr)
		}
	}
}

// TestInstanceEnginesAreShared: instances resolved once share one engine
// across envelope calls, so a second envelope over the same family reuses
// the memoized performance indexes and beliefs instead of rebuilding.
func TestInstanceEnginesAreShared(t *testing.T) {
	space, err := NewSpace(Choice{Name: "go", Options: []string{"0", "1"}})
	if err != nil {
		t.Fatal(err)
	}
	instances, err := Resolve(space, fsBuilder)
	if err != nil {
		t.Fatal(err)
	}
	for i := range instances {
		if instances[i].Engine() != instances[i].Engine() {
			t.Fatalf("instance %d hands out a fresh engine per call", i)
		}
	}
	if _, err := ConstraintEnvelope(instances, paper.FSBothFire(), paper.Alice, paper.ActFire); err != nil {
		t.Fatal(err)
	}
	// The go=1 instance evaluated the constraint: its engine must have
	// cached work now (the shim would have discarded it before this PR).
	_, events, _ := instances[1].Engine().CacheStats()
	if events == 0 {
		t.Error("envelope evaluation left the instance engine cold; the family is rebuilding per call")
	}
}
