// Package adversary implements the paper's Section 2 treatment of
// nondeterminism: reasoning about probabilities in the presence of
// nondeterministic choices (by the scheduler or the agents) is done by
// fixing the set of all nondeterministic choices — an "adversary" in the
// sense of Halpern and Tuttle — after which all remaining choices are
// purely probabilistic and the executions form a pps.
//
// A Space enumerates the nondeterministic choices; Resolve builds one pps
// per complete assignment, and analyses can then be quantified over the
// family (e.g. worst-case constraint probability over all adversaries, as
// in the paper's example of Alice's go flag being set nondeterministically
// rather than probabilistically).
//
// Evaluation is delegated: ConstraintEnvelope and MetricEnvelope are
// thin shims that compile the family into a query.EnvelopeQuery and fold
// the answer back into this package's range types, so the envelope
// arithmetic — min/max, witness selection, skip accounting — has exactly
// one implementation, shared with the registry-resolved sweeps the pakd
// service and the CLIs evaluate (see internal/registry's space specs and
// internal/query's envelope core). Each Instance carries its engine, so
// repeated envelopes over one resolved family share memoized work
// instead of re-deriving it per call. For spaces over REGISTERED
// scenarios, prefer registry.ResolveSpace: its assignments resolve to
// canonical system specs, so engines flow through the shared
// EngineCache/singleflight machinery instead of per-family builds.
package adversary

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/query"
)

// Sentinel errors returned (wrapped) by this package.
var (
	// ErrBadSpace indicates an invalid choice space.
	ErrBadSpace = errors.New("adversary: invalid choice space")
	// ErrNoInstances indicates an empty family where one was required.
	ErrNoInstances = errors.New("adversary: no adversaries to analyze")
)

// Choice is one nondeterministic decision with a finite option set.
type Choice struct {
	// Name identifies the decision (e.g. "go", "faulty-agent").
	Name string
	// Options are the possible resolutions.
	Options []string
}

// Assignment fixes every choice of a space: a complete adversary.
type Assignment map[string]string

// String renders the assignment deterministically (sorted by name).
func (a Assignment) String() string {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%s", n, a[n])
	}
	return strings.Join(parts, ",")
}

// Space is a finite set of nondeterministic choices.
type Space struct {
	choices []Choice
}

// NewSpace validates and returns a choice space. Choice names must be
// distinct and every choice must offer at least one option.
func NewSpace(choices ...Choice) (*Space, error) {
	seen := make(map[string]bool, len(choices))
	for _, c := range choices {
		if c.Name == "" {
			return nil, fmt.Errorf("%w: empty choice name", ErrBadSpace)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("%w: duplicate choice %q", ErrBadSpace, c.Name)
		}
		seen[c.Name] = true
		if len(c.Options) == 0 {
			return nil, fmt.Errorf("%w: choice %q has no options", ErrBadSpace, c.Name)
		}
	}
	return &Space{choices: append([]Choice(nil), choices...)}, nil
}

// Size returns the number of complete assignments.
func (s *Space) Size() int {
	n := 1
	for _, c := range s.choices {
		n *= len(c.Options)
	}
	return n
}

// ForEach calls fn for every complete assignment, in lexicographic option
// order. If fn returns an error, enumeration stops and the error is
// returned.
func (s *Space) ForEach(fn func(a Assignment) error) error {
	assignment := make(Assignment, len(s.choices))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(s.choices) {
			// Copy so callers may retain the assignment.
			snapshot := make(Assignment, len(assignment))
			for k, v := range assignment {
				snapshot[k] = v
			}
			return fn(snapshot)
		}
		for _, opt := range s.choices[i].Options {
			assignment[s.choices[i].Name] = opt
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// Builder constructs the pps corresponding to one adversary.
type Builder func(a Assignment) (*pps.System, error)

// Instance is one resolved adversary: the assignment, its pps, and the
// engine the envelope evaluators analyze it with.
type Instance struct {
	Assignment Assignment
	System     *pps.System

	// engine is created when the instance is resolved, so successive
	// envelopes over one family share memoized work (performance
	// indexes, fact extensions, beliefs) instead of re-deriving it.
	engine *core.Engine
}

// Engine returns the instance's analysis engine. Instances from Resolve
// carry one from birth; a hand-assembled Instance gets a fresh engine
// per call.
func (inst Instance) Engine() *core.Engine {
	if inst.engine != nil {
		return inst.engine
	}
	return core.New(inst.System)
}

// Family is the lazy form of a resolved adversary family: assignments
// are enumerated eagerly (enumeration is cheap), but each instance's
// system and engine are built only on first demand — from an envelope
// worker reaching one of its slots, or an explicit Instance call — and
// at most once. Envelopes over a Family therefore overlap building one
// adversary with evaluating another, and a deadline mid-sweep means the
// unvisited adversaries are never built at all.
//
// Builds are neighbour-seeded: each new engine seeds its memo tables
// from the most recently built engine of the family where provably
// sound (core.NewSeeded, gated on pps.SameShape — see that gate's
// soundness line), so a sweep over adversary weights shares its
// performance and fact-extension scans across the whole family instead
// of re-deriving them per assignment.
type Family struct {
	build       Builder
	assignments []Assignment
	cells       []familyCell
	// seed is the most recently built engine, the next build's seeding
	// neighbour. Sharing is live and bidirectional, so seeding every
	// same-shape engine from any one of them joins them all to one set
	// of structural memo tables.
	seed   atomic.Pointer[core.Engine]
	seeded atomic.Int64
}

type familyCell struct {
	once sync.Once
	inst Instance
	err  error // raw builder error; callers wrap with the assignment
}

// NewFamily enumerates the space's assignments (in ForEach order)
// without building any system.
func NewFamily(space *Space, build Builder) *Family {
	fam := &Family{build: build}
	_ = space.ForEach(func(a Assignment) error {
		fam.assignments = append(fam.assignments, a)
		return nil
	})
	fam.cells = make([]familyCell, len(fam.assignments))
	return fam
}

// Size returns the number of assignments in the family.
func (f *Family) Size() int { return len(f.assignments) }

// Assignment returns the i-th assignment (ForEach order).
func (f *Family) Assignment(i int) Assignment { return f.assignments[i] }

// MemoSeeded reports how many builds so far shared a neighbour's memo
// tables (the sweep's structure-sharing hit count).
func (f *Family) MemoSeeded() int64 { return f.seeded.Load() }

// cell resolves the i-th instance exactly once; concurrent callers
// share the one build. The cell's error is the raw builder error.
func (f *Family) cell(i int) *familyCell {
	c := &f.cells[i]
	c.once.Do(func() {
		sys, err := f.build(f.assignments[i])
		if err != nil {
			c.err = err
			return
		}
		eng, shared := core.NewSeeded(sys, f.seed.Load())
		if shared {
			f.seeded.Add(1)
		}
		f.seed.Store(eng)
		c.inst = Instance{Assignment: f.assignments[i], System: sys, engine: eng}
	})
	return c
}

// Instance builds (once) and returns the i-th instance; errors name the
// offending adversary.
func (f *Family) Instance(i int) (Instance, error) {
	c := f.cell(i)
	if c.err != nil {
		return Instance{}, fmt.Errorf("adversary %v: %w", f.assignments[i], c.err)
	}
	return c.inst, nil
}

// items compiles the family into lazy envelope items: each source
// resolves its cell on first use, so the envelope stream builds
// adversaries as its workers reach them.
func (f *Family) items() []query.EnvelopeItem {
	items := make([]query.EnvelopeItem, f.Size())
	for i := range items {
		items[i] = query.EnvelopeItem{
			Assignment: f.assignments[i].String(),
			Source: func(context.Context) (query.Engines, error) {
				c := f.cell(i)
				if c.err != nil {
					return query.Engines{}, c.err
				}
				return query.Engines{Engine: c.inst.engine}, nil
			},
		}
	}
	return items
}

// ConstraintEnvelope is the package-level ConstraintEnvelope over the
// family's lazy instances: adversaries are built as the sweep reaches
// them (neighbour-seeded), and a builder failure fails the sweep naming
// the offending adversary without building the rest.
func (f *Family) ConstraintEnvelope(fact logic.Fact, agent, action string) (ConstraintRange, error) {
	return constraintEnvelope(f.items(), f.assignments, fact, agent, action)
}

// MetricEnvelope is the package-level MetricEnvelope over the family's
// lazy instances.
func (f *Family) MetricEnvelope(metric Metric) (MetricRange, error) {
	return metricEnvelope(f.items(), f.assignments, metric)
}

// Resolve builds the full family of systems, one per assignment. The
// engines are neighbour-seeded exactly as a lazy Family's are (Resolve
// is just a Family materialized up front), so sweeps over the returned
// instances share structural memo tables across same-shape assignments.
func Resolve(space *Space, build Builder) ([]Instance, error) {
	fam := NewFamily(space, build)
	out := make([]Instance, fam.Size())
	for i := range out {
		inst, err := fam.Instance(i)
		if err != nil {
			return nil, err
		}
		out[i] = inst
	}
	return out, nil
}

// ConstraintRange is the envelope of a probabilistic constraint's value
// over a family of adversaries.
type ConstraintRange struct {
	// Min and Max bound µ_T(φ@α | α) over the family.
	Min, Max *big.Rat
	// ArgMin and ArgMax are the adversaries attaining the bounds.
	ArgMin, ArgMax Assignment
	// Skipped lists adversaries under which the action is not proper
	// (e.g. never performed), which the paper's notions do not cover.
	Skipped []Assignment
}

// String summarizes the range.
func (r ConstraintRange) String() string {
	return fmt.Sprintf("µ∈[%s, %s] (min at %v, max at %v, %d skipped)",
		r.Min.RatString(), r.Max.RatString(), r.ArgMin, r.ArgMax, len(r.Skipped))
}

// ConstraintEnvelope evaluates µ(φ@α | α) on every instance and returns
// the min/max envelope. Instances on which the action is not proper are
// recorded in Skipped. An empty family, and a family on which every
// instance is skipped, both fail loudly with ErrNoInstances — a
// zero-value range is never returned without an error.
func ConstraintEnvelope(instances []Instance, f logic.Fact, agent, action string) (ConstraintRange, error) {
	items, assignments := eagerItems(instances)
	return constraintEnvelope(items, assignments, f, agent, action)
}

func constraintEnvelope(items []query.EnvelopeItem, assignments []Assignment, f logic.Fact, agent, action string) (ConstraintRange, error) {
	env, skipped, err := envelopeOver(items, assignments,
		query.ConstraintQuery{Fact: f, Agent: agent, Action: action})
	if err != nil {
		return ConstraintRange{}, err
	}
	if !env.Defined() {
		return ConstraintRange{}, fmt.Errorf("%w: action %q proper under no adversary", ErrNoInstances, action)
	}
	return ConstraintRange{
		Min:     env.Min,
		Max:     env.Max,
		ArgMin:  assignments[env.MinIndex],
		ArgMax:  assignments[env.MaxIndex],
		Skipped: skipped,
	}, nil
}

// Metric is any exact quantity computed from a resolved system's engine
// (e.g. a threshold measure, an expected belief).
type Metric func(e *core.Engine) (*big.Rat, error)

// MetricRange is the envelope of an arbitrary metric over a family.
type MetricRange struct {
	// Min and Max bound the metric over the family.
	Min, Max *big.Rat
	// ArgMin and ArgMax are the adversaries attaining the bounds.
	ArgMin, ArgMax Assignment
	// Skipped lists adversaries on which the metric was undefined (the
	// metric returned core.ErrNotProper or core.ErrUnknownLocal).
	Skipped []Assignment
}

// String summarizes the range.
func (r MetricRange) String() string {
	return fmt.Sprintf("metric∈[%s, %s] (min at %v, max at %v, %d skipped)",
		r.Min.RatString(), r.Max.RatString(), r.ArgMin, r.ArgMax, len(r.Skipped))
}

// MetricEnvelope evaluates an arbitrary exact metric on every instance
// and returns its min/max envelope. Instances on which the metric is
// undefined (improper action, unreachable state) are skipped; like
// ConstraintEnvelope, an empty or all-skipped family fails loudly with
// ErrNoInstances rather than returning a zero-value range.
func MetricEnvelope(instances []Instance, metric Metric) (MetricRange, error) {
	items, assignments := eagerItems(instances)
	return metricEnvelope(items, assignments, metric)
}

func metricEnvelope(items []query.EnvelopeItem, assignments []Assignment, metric Metric) (MetricRange, error) {
	env, skipped, err := envelopeOver(items, assignments, query.MetricQuery{Name: "adversary metric", Fn: metric})
	if err != nil {
		return MetricRange{}, err
	}
	if !env.Defined() {
		return MetricRange{}, fmt.Errorf("%w: metric undefined under every adversary", ErrNoInstances)
	}
	return MetricRange{
		Min:     env.Min,
		Max:     env.Max,
		ArgMin:  assignments[env.MinIndex],
		ArgMax:  assignments[env.MaxIndex],
		Skipped: skipped,
	}, nil
}

// envelopeOver compiles the family into the query layer's envelope and
// consumes its stream serially — the enumeration order this package's
// API has always promised. Fail-fast is preserved through cooperative
// cancellation: the first hard failure (neither a skip nor a context
// cut) cancels the rest of the sweep, so the remaining instances fail
// cheaply in their own slots instead of being evaluated, and the error
// names the offending adversary exactly as the retired in-package fold
// did.
// eagerItems compiles already-resolved instances into eager envelope
// items, pairing them with their assignments for witness naming.
func eagerItems(instances []Instance) ([]query.EnvelopeItem, []Assignment) {
	items := make([]query.EnvelopeItem, len(instances))
	assignments := make([]Assignment, len(instances))
	for i := range instances {
		items[i] = query.EnvelopeItem{
			Assignment: instances[i].Assignment.String(),
			Engine:     instances[i].Engine(),
		}
		assignments[i] = instances[i].Assignment
	}
	return items, assignments
}

func envelopeOver(items []query.EnvelopeItem, assignments []Assignment, inner query.Query) (query.Range, []Assignment, error) {
	if len(items) == 0 {
		return query.Range{}, nil, ErrNoInstances
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	frames, err := query.EnvelopeStream(query.EnvelopeQuery{Inner: inner, Items: items},
		query.WithParallelism(1), query.WithContext(ctx))
	if err != nil {
		return query.Range{}, nil, err
	}
	var skipped []Assignment
	var hardErr error
	for f := range frames {
		if f.Terminal() {
			if hardErr != nil {
				return query.Range{}, nil, hardErr
			}
			return f.Envelope, skipped, nil
		}
		switch {
		case f.Result.Err == nil:
		case errors.Is(f.Result.Err, core.ErrNotProper) || errors.Is(f.Result.Err, core.ErrUnknownLocal):
			skipped = append(skipped, assignments[f.Index])
		case core.IsContextErr(f.Result.Err):
			// A slot cut by our own fail-fast cancellation below.
		case hardErr == nil:
			hardErr = fmt.Errorf("adversary %v: %w", assignments[f.Index], f.Result.Err)
			cancel(context.Canceled)
		}
	}
	return query.Range{}, nil, errors.New("adversary: envelope stream ended without a terminal frame")
}
