// Package ratutil provides small helpers over math/big.Rat used throughout
// the library.
//
// The paper's model (a finite purely probabilistic system, pps) assigns a
// rational probability to every transition, and all of the paper's numeric
// claims are exact rational identities (e.g. 99/100, 991/1000, (p-ε)/(1-ε)).
// To reproduce them without floating-point error the entire engine works in
// *big.Rat; this package collects the constructors, comparisons and
// aggregations that the rest of the code needs, with the convention that
// every function returns a freshly allocated value and never mutates its
// arguments.
package ratutil

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
)

// ErrParse is returned (wrapped) by Parse when the input is not a valid
// rational or decimal literal.
var ErrParse = errors.New("ratutil: cannot parse rational")

// R returns the rational a/b. It panics if b == 0; it is intended for
// compile-time-known constants in tests, examples and system constructions.
func R(a, b int64) *big.Rat {
	if b == 0 {
		panic("ratutil.R: zero denominator")
	}
	return big.NewRat(a, b)
}

// Int returns n as a rational.
func Int(n int64) *big.Rat { return new(big.Rat).SetInt64(n) }

// Zero returns a fresh rational equal to 0.
func Zero() *big.Rat { return new(big.Rat) }

// One returns a fresh rational equal to 1.
func One() *big.Rat { return big.NewRat(1, 1) }

// Parse converts a string such as "1/2", "3", "0.25" or "99/100" into a
// rational. Both fraction and decimal notations are accepted (big.Rat's
// SetString semantics). Whitespace is trimmed.
func Parse(s string) (*big.Rat, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("%w: empty string", ErrParse)
	}
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrParse, s)
	}
	return r, nil
}

// MustParse is Parse, panicking on error. For constants in tests and
// examples only.
func MustParse(s string) *big.Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Copy returns a fresh rational equal to x. Copy(nil) returns 0.
func Copy(x *big.Rat) *big.Rat {
	if x == nil {
		return new(big.Rat)
	}
	return new(big.Rat).Set(x)
}

// Add returns x + y without mutating either.
func Add(x, y *big.Rat) *big.Rat { return new(big.Rat).Add(x, y) }

// Sub returns x - y without mutating either.
func Sub(x, y *big.Rat) *big.Rat { return new(big.Rat).Sub(x, y) }

// Mul returns x * y without mutating either.
func Mul(x, y *big.Rat) *big.Rat { return new(big.Rat).Mul(x, y) }

// Div returns x / y without mutating either. It panics if y is zero, like
// big.Rat.Quo.
func Div(x, y *big.Rat) *big.Rat { return new(big.Rat).Quo(x, y) }

// Sum returns the sum of xs (0 for an empty list).
func Sum(xs ...*big.Rat) *big.Rat {
	total := new(big.Rat)
	for _, x := range xs {
		total.Add(total, x)
	}
	return total
}

// Prod returns the product of xs (1 for an empty list).
func Prod(xs ...*big.Rat) *big.Rat {
	total := big.NewRat(1, 1)
	for _, x := range xs {
		total.Mul(total, x)
	}
	return total
}

// OneMinus returns 1 - x.
func OneMinus(x *big.Rat) *big.Rat { return new(big.Rat).Sub(One(), x) }

// Eq reports x == y.
func Eq(x, y *big.Rat) bool { return x.Cmp(y) == 0 }

// Less reports x < y.
func Less(x, y *big.Rat) bool { return x.Cmp(y) < 0 }

// Leq reports x <= y.
func Leq(x, y *big.Rat) bool { return x.Cmp(y) <= 0 }

// Greater reports x > y.
func Greater(x, y *big.Rat) bool { return x.Cmp(y) > 0 }

// Geq reports x >= y.
func Geq(x, y *big.Rat) bool { return x.Cmp(y) >= 0 }

// IsZero reports x == 0.
func IsZero(x *big.Rat) bool { return x.Sign() == 0 }

// IsOne reports x == 1.
func IsOne(x *big.Rat) bool { return x.Cmp(One()) == 0 }

// IsProb reports 0 <= x <= 1, i.e. x is a valid probability.
func IsProb(x *big.Rat) bool { return x.Sign() >= 0 && Leq(x, One()) }

// IsPositiveProb reports 0 < x <= 1. Transition probabilities in a pps are
// required to lie in the half-open interval (0, 1].
func IsPositiveProb(x *big.Rat) bool { return x.Sign() > 0 && Leq(x, One()) }

// Min returns a copy of the smaller of x and y.
func Min(x, y *big.Rat) *big.Rat {
	if x.Cmp(y) <= 0 {
		return Copy(x)
	}
	return Copy(y)
}

// Max returns a copy of the larger of x and y.
func Max(x, y *big.Rat) *big.Rat {
	if x.Cmp(y) >= 0 {
		return Copy(x)
	}
	return Copy(y)
}

// Float returns the nearest float64 to x.
func Float(x *big.Rat) float64 {
	f, _ := x.Float64()
	return f
}

// Format renders x as a decimal string with prec digits after the point,
// e.g. Format(R(99,100), 4) == "0.9900". Exact rationals are preferred for
// comparisons; Format is for human-readable reports.
func Format(x *big.Rat, prec int) string {
	return x.FloatString(prec)
}

// String renders x in its exact fraction form, e.g. "99/100" or "1".
func String(x *big.Rat) string {
	return x.RatString()
}
