package ratutil

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestR(t *testing.T) {
	if got := R(1, 2); got.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("R(1,2) = %v, want 1/2", got)
	}
}

func TestRPanicsOnZeroDenominator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("R(1,0) did not panic")
		}
	}()
	R(1, 0)
}

func TestParse(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    string // RatString of expected value; "" means error
		wantErr bool
	}{
		{name: "fraction", in: "1/2", want: "1/2"},
		{name: "integer", in: "3", want: "3"},
		{name: "decimal", in: "0.25", want: "1/4"},
		{name: "paper value", in: "99/100", want: "99/100"},
		{name: "whitespace", in: "  7/8\n", want: "7/8"},
		{name: "negative", in: "-1/3", want: "-1/3"},
		{name: "zero", in: "0", want: "0"},
		{name: "empty", in: "", wantErr: true},
		{name: "garbage", in: "abc", wantErr: true},
		{name: "zero denominator", in: "1/0", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Parse(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("Parse(%q) = %v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q) error: %v", tt.in, err)
			}
			if got.RatString() != tt.want {
				t.Fatalf("Parse(%q) = %v, want %v", tt.in, got.RatString(), tt.want)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse(garbage) did not panic")
		}
	}()
	MustParse("not-a-rat")
}

func TestCopyIsFresh(t *testing.T) {
	x := R(1, 2)
	y := Copy(x)
	y.Add(y, One())
	if !Eq(x, R(1, 2)) {
		t.Fatalf("Copy aliased its argument: x mutated to %v", x)
	}
}

func TestCopyNil(t *testing.T) {
	if got := Copy(nil); !IsZero(got) {
		t.Fatalf("Copy(nil) = %v, want 0", got)
	}
}

func TestArithmeticDoesNotMutate(t *testing.T) {
	x, y := R(1, 3), R(1, 6)
	tests := []struct {
		name string
		got  *big.Rat
		want *big.Rat
	}{
		{"Add", Add(x, y), R(1, 2)},
		{"Sub", Sub(x, y), R(1, 6)},
		{"Mul", Mul(x, y), R(1, 18)},
		{"Div", Div(x, y), R(2, 1)},
	}
	for _, tt := range tests {
		if !Eq(tt.got, tt.want) {
			t.Errorf("%s = %v, want %v", tt.name, tt.got, tt.want)
		}
	}
	if !Eq(x, R(1, 3)) || !Eq(y, R(1, 6)) {
		t.Fatalf("arguments mutated: x=%v y=%v", x, y)
	}
}

func TestSumProd(t *testing.T) {
	if got := Sum(); !IsZero(got) {
		t.Errorf("Sum() = %v, want 0", got)
	}
	if got := Prod(); !IsOne(got) {
		t.Errorf("Prod() = %v, want 1", got)
	}
	if got := Sum(R(1, 2), R(1, 3), R(1, 6)); !IsOne(got) {
		t.Errorf("Sum(1/2,1/3,1/6) = %v, want 1", got)
	}
	if got := Prod(R(1, 2), R(2, 3)); !Eq(got, R(1, 3)) {
		t.Errorf("Prod(1/2,2/3) = %v, want 1/3", got)
	}
}

func TestOneMinus(t *testing.T) {
	if got := OneMinus(R(1, 100)); !Eq(got, R(99, 100)) {
		t.Fatalf("OneMinus(1/100) = %v, want 99/100", got)
	}
}

func TestComparisons(t *testing.T) {
	a, b := R(1, 3), R(1, 2)
	if !Less(a, b) || Less(b, a) {
		t.Error("Less wrong")
	}
	if !Leq(a, b) || !Leq(a, a) || Leq(b, a) {
		t.Error("Leq wrong")
	}
	if !Greater(b, a) || Greater(a, b) {
		t.Error("Greater wrong")
	}
	if !Geq(b, a) || !Geq(a, a) || Geq(a, b) {
		t.Error("Geq wrong")
	}
	if !Eq(a, R(2, 6)) {
		t.Error("Eq should normalize")
	}
}

func TestProbPredicates(t *testing.T) {
	tests := []struct {
		in      *big.Rat
		prob    bool
		posProb bool
	}{
		{Zero(), true, false},
		{One(), true, true},
		{R(1, 2), true, true},
		{R(3, 2), false, false},
		{R(-1, 2), false, false},
	}
	for _, tt := range tests {
		if got := IsProb(tt.in); got != tt.prob {
			t.Errorf("IsProb(%v) = %v, want %v", tt.in, got, tt.prob)
		}
		if got := IsPositiveProb(tt.in); got != tt.posProb {
			t.Errorf("IsPositiveProb(%v) = %v, want %v", tt.in, got, tt.posProb)
		}
	}
}

func TestMinMax(t *testing.T) {
	a, b := R(1, 3), R(1, 2)
	if got := Min(a, b); !Eq(got, a) {
		t.Errorf("Min = %v, want 1/3", got)
	}
	if got := Max(a, b); !Eq(got, b) {
		t.Errorf("Max = %v, want 1/2", got)
	}
	// Min/Max must return copies.
	m := Min(a, b)
	m.Add(m, One())
	if !Eq(a, R(1, 3)) {
		t.Fatal("Min aliased its argument")
	}
}

func TestFormatString(t *testing.T) {
	x := R(99, 100)
	if got := Format(x, 4); got != "0.9900" {
		t.Errorf("Format = %q, want 0.9900", got)
	}
	if got := String(x); got != "99/100" {
		t.Errorf("String = %q, want 99/100", got)
	}
}

func TestFloat(t *testing.T) {
	if got := Float(R(1, 2)); got != 0.5 {
		t.Fatalf("Float(1/2) = %v, want 0.5", got)
	}
}

// Property: Add and Sub are inverses; Mul and Div are inverses for nonzero y.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(an, ad, bn, bd int32) bool {
		if ad == 0 || bd == 0 {
			return true
		}
		a := big.NewRat(int64(an), int64(ad))
		b := big.NewRat(int64(bn), int64(bd))
		return Eq(Sub(Add(a, b), b), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulDivInverse(t *testing.T) {
	f := func(an, ad, bn, bd int32) bool {
		if ad == 0 || bd == 0 || bn == 0 {
			return true
		}
		a := big.NewRat(int64(an), int64(ad))
		b := big.NewRat(int64(bn), int64(bd))
		return Eq(Div(Mul(a, b), b), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OneMinus is an involution.
func TestQuickOneMinusInvolution(t *testing.T) {
	f := func(n, d int32) bool {
		if d == 0 {
			return true
		}
		x := big.NewRat(int64(n), int64(d))
		return Eq(OneMinus(OneMinus(x)), x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
