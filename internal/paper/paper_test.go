package paper

import (
	"errors"
	"strings"
	"testing"

	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/ratutil"
)

// TestFigure1Counterexamples re-derives the two counterexample claims the
// paper makes about Figure 1.
func TestFigure1Counterexamples(t *testing.T) {
	sys, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumRuns() != 2 {
		t.Fatalf("NumRuns = %d, want 2", sys.NumRuns())
	}
	e := core.New(sys)

	// Section 4: ψ = ¬does_i(α). β_i(ψ) = 1/2 whenever α is performed,
	// but µ(ψ@α|α) = 0.
	psi := Figure1PsiFact()
	bel, err := e.Belief(psi, AgentI, "g0")
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(bel, ratutil.R(1, 2)) {
		t.Errorf("β_i(ψ)@g0 = %v, want 1/2", bel)
	}
	mu, err := e.ConstraintProb(psi, AgentI, ActAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsZero(mu) {
		t.Errorf("µ(ψ@α|α) = %v, want 0", mu)
	}

	// Section 6: φ = does_i(α). µ(φ@α|α) = 1 but E[β] = 1/2.
	rep, err := e.CheckExpectation(Figure1PhiFact(), AgentI, ActAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsOne(rep.ConstraintProb) || !ratutil.Eq(rep.ExpectedBelief, ratutil.R(1, 2)) {
		t.Errorf("µ=%v E[β]=%v, want 1 and 1/2", rep.ConstraintProb, rep.ExpectedBelief)
	}
	if rep.Independent {
		t.Error("Figure 1's φ must not be local-state independent of α")
	}
}

func TestThatValidation(t *testing.T) {
	tests := []struct {
		name   string
		p, eps string
	}{
		{"eps zero", "9/10", "0"},
		{"eps equals p", "1/2", "1/2"},
		{"eps above p", "1/10", "1/2"},
		{"p is one", "1", "1/10"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := That(ratutil.MustParse(tt.p), ratutil.MustParse(tt.eps))
			if !errors.Is(err, ErrBadParam) {
				t.Fatalf("That(%s,%s) err = %v, want ErrBadParam", tt.p, tt.eps, err)
			}
		})
	}
	if _, err := That(nil, ratutil.R(1, 10)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("That(nil, ...) err = %v", err)
	}
}

// TestThatTheorem52 verifies the exact claims of Theorem 5.2's proof for a
// sweep of (p, ε): µ(φ@α|α) = p while µ(β ≥ p | α) = ε, and the
// non-revealing belief equals (p−ε)/(1−ε) < p.
func TestThatTheorem52(t *testing.T) {
	cases := []struct{ p, eps string }{
		{"9/10", "1/10"},
		{"9/10", "1/100"},
		{"95/100", "1/1000"},
		{"99/100", "1/100"},
		{"1/2", "1/4"},
	}
	for _, tc := range cases {
		t.Run(tc.p+"_"+tc.eps, func(t *testing.T) {
			p := ratutil.MustParse(tc.p)
			eps := ratutil.MustParse(tc.eps)
			sys, err := That(p, eps)
			if err != nil {
				t.Fatal(err)
			}
			e := core.New(sys)
			phi := ThatBitFact()

			mu, err := e.ConstraintProb(phi, AgentI, ActAlpha)
			if err != nil {
				t.Fatal(err)
			}
			if !ratutil.Eq(mu, p) {
				t.Errorf("µ = %v, want %v", mu, p)
			}
			tm, err := e.ThresholdMeasure(phi, AgentI, ActAlpha, p)
			if err != nil {
				t.Fatal(err)
			}
			if !ratutil.Eq(tm, eps) {
				t.Errorf("µ(β≥p|α) = %v, want %v", tm, eps)
			}
			bel, err := e.Belief(phi, AgentI, "i1:recv=m")
			if err != nil {
				t.Fatal(err)
			}
			want := ratutil.Div(ratutil.Sub(p, eps), ratutil.OneMinus(eps))
			if !ratutil.Eq(bel, want) {
				t.Errorf("non-revealing belief = %v, want (p-ε)/(1-ε) = %v", bel, want)
			}
			if !ratutil.Less(bel, p) {
				t.Errorf("non-revealing belief %v should be below p=%v", bel, p)
			}
			// Theorem 6.2 on T-hat.
			rep, err := e.CheckExpectation(phi, AgentI, ActAlpha)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Independent || !rep.Equal() {
				t.Errorf("expectation identity failed: %v", rep)
			}
		})
	}
}

// fsEngine unfolds a firing-squad variant at the paper's loss rate 1/10.
func fsEngine(t *testing.T, variant FSVariant) *core.Engine {
	t.Helper()
	sys, err := FiringSquad(ratutil.R(1, 10), variant)
	if err != nil {
		t.Fatal(err)
	}
	return core.New(sys)
}

func TestFSStructure(t *testing.T) {
	sys, err := FiringSquad(ratutil.R(1, 10), FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	// go=0 contributes 2 runs (Bob's 'No' delivered or lost); go=1
	// contributes 4 delivery patterns × 2 = 8: ten runs in total.
	if sys.NumRuns() != 10 {
		t.Fatalf("NumRuns = %d, want 10", sys.NumRuns())
	}
	if !ratutil.IsOne(sys.TotalMeasure()) {
		t.Fatalf("total measure = %v", sys.TotalMeasure())
	}
	if sys.MaxTime() != 3 {
		t.Fatalf("MaxTime = %d, want 3", sys.MaxTime())
	}
}

// TestFSOriginalPaperNumbers verifies every numeric claim Example 1 and
// Sections 1/3 make about FS with loss = 1/10.
func TestFSOriginalPaperNumbers(t *testing.T) {
	e := fsEngine(t, FSOriginal)
	phi := FSBothFire()

	// Spec: µ(φ_both@fire_A | fire_A) = 0.99 ≥ 0.95.
	mu, err := e.ConstraintProb(phi, Alice, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(mu, ratutil.R(99, 100)) {
		t.Fatalf("µ(φ_both|fire_A) = %v, want 99/100", mu)
	}

	// Alice's three information states when firing (Section 1): belief in
	// fire_B is 1 after 'Yes', 0 after 'No', and 0.99 after silence.
	fireB := FSBobFires()
	byState, err := e.BeliefByActionState(fireB, Alice, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if len(byState) != 3 {
		t.Fatalf("Alice fires in %d states, want 3: %v", len(byState), byState)
	}
	for state, bel := range byState {
		var want string
		switch {
		case contains(state, "recv=Yes"):
			want = "1"
		case contains(state, "recv=No"):
			want = "0"
		default:
			want = "99/100"
		}
		if bel.RatString() != want {
			t.Errorf("β_A(fire_B) at %q = %s, want %s", state, bel.RatString(), want)
		}
	}

	// Threshold analysis (Section 1): the 0.95 threshold is met when
	// firing with probability 0.991, missed with probability 0.009.
	tm, err := e.ThresholdMeasure(phi, Alice, ActFire, ratutil.R(95, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(tm, ratutil.R(991, 1000)) {
		t.Errorf("µ(β≥0.95|fire_A) = %v, want 991/1000", tm)
	}
	miss := ratutil.OneMinus(tm)
	if !ratutil.Eq(miss, ratutil.R(9, 1000)) {
		t.Errorf("miss measure = %v, want 9/1000 (= 0.1·0.1·0.9)", miss)
	}

	// Theorem 6.2: E[β_A(φ_both)@fire_A | fire_A] = 99/100 exactly.
	rep, err := e.CheckExpectation(phi, Alice, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Independent {
		t.Error("φ_both should be independent of fire_A (deterministic protocol)")
	}
	if !rep.Equal() {
		t.Errorf("expectation identity failed: %v", rep)
	}
}

// TestFSImprovedSection8 verifies the Section 8 claim: refraining from
// firing on 'No' raises µ(φ_both | fire_A) to 0.99899 (exactly 990/991).
func TestFSImprovedSection8(t *testing.T) {
	e := fsEngine(t, FSImproved)
	phi := FSBothFire()

	mu, err := e.ConstraintProb(phi, Alice, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(mu, ratutil.R(990, 991)) {
		t.Fatalf("µ(φ_both|fire_A) = %v, want 990/991", mu)
	}

	// Alice now fires in only two information states, and both meet the
	// 0.95 threshold: the threshold-met measure is 1.
	byState, err := e.BeliefByActionState(phi, Alice, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if len(byState) != 2 {
		t.Fatalf("Alice fires in %d states, want 2: %v", len(byState), byState)
	}
	tm, err := e.ThresholdMeasure(phi, Alice, ActFire, ratutil.R(95, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsOne(tm) {
		t.Errorf("µ(β≥0.95|fire_A) = %v, want 1", tm)
	}

	// Theorem 6.2 again: expected belief equals 990/991.
	rep, err := e.CheckExpectation(phi, Alice, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equal() || !ratutil.Eq(rep.ExpectedBelief, ratutil.R(990, 991)) {
		t.Errorf("E[β] = %v, want 990/991", rep.ExpectedBelief)
	}
}

func TestFSGoZeroNeverFires(t *testing.T) {
	// Spec: if go = 0 then neither agent ever fires.
	for _, variant := range []FSVariant{FSOriginal, FSImproved} {
		sys, err := FiringSquad(ratutil.R(1, 10), variant)
		if err != nil {
			t.Fatal(err)
		}
		fires := logic.Or(logic.Performed(Alice, ActFire), logic.Performed(Bob, ActFire))
		bad := logic.RunsSatisfying(sys, logic.And(fires, logic.Not(FSGoIsOne())))
		if !bad.IsEmpty() {
			t.Errorf("%v: some go=0 run fires: %v", variant, bad)
		}
	}
}

func TestFSFixedGoAdversaries(t *testing.T) {
	// Fixing the adversary's choice of go yields two separate pps, as in
	// Section 2's discussion of nondeterminism.
	sys0, err := FiringSquadFixedGo(ratutil.R(1, 10), FSOriginal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !logic.RunsSatisfying(sys0, logic.Performed(Alice, ActFire)).IsEmpty() {
		t.Error("go=0 adversary: Alice should never fire")
	}

	sys1, err := FiringSquadFixedGo(ratutil.R(1, 10), FSOriginal, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys1)
	mu, err := e.ConstraintProb(FSBothFire(), Alice, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(mu, ratutil.R(99, 100)) {
		t.Errorf("go=1 adversary: µ = %v, want 99/100", mu)
	}
	// Under go=1, Alice fires with probability 1 (at time 2), per the paper.
	perf, err := e.PerformedSet(Alice, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsOne(sys1.Measure(perf)) {
		t.Error("go=1 adversary: Alice should fire with probability 1")
	}

	if _, err := FiringSquadFixedGo(ratutil.R(1, 10), FSOriginal, 7); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad go value err = %v", err)
	}
}

func TestFSPerfectChannelKoP(t *testing.T) {
	// With a lossless channel the constraint holds with probability 1, so
	// by Lemma F.1 Alice must know φ_both whenever she fires.
	sys, err := FiringSquad(ratutil.Zero(), FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	rep, err := e.CheckKoPLimit(FSBothFire(), Alice, ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsOne(rep.ConstraintProb) {
		t.Fatalf("µ = %v, want 1", rep.ConstraintProb)
	}
	if !rep.AlwaysKnows || !ratutil.IsOne(rep.MinBelief) {
		t.Fatalf("KoP limit violated: %v", rep)
	}
}

func TestFSCorollary72(t *testing.T) {
	// µ = 99/100 = 1 − (1/10)², so Corollary 7.2 with ε = 1/10 promises
	// µ(β ≥ 9/10 | fire_A) ≥ 9/10; the paper notes the actual value 0.991.
	e := fsEngine(t, FSOriginal)
	rep, err := e.CheckPAKSquare(FSBothFire(), Alice, ActFire, ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PremiseMet() {
		t.Fatalf("premise: µ = %v < %v", rep.ConstraintProb, rep.Threshold)
	}
	if !rep.ConclusionMet() || !rep.Holds() {
		t.Fatalf("Corollary 7.2 failed on FS: %v", rep)
	}
	if !ratutil.Eq(rep.BeliefMeasure, ratutil.R(991, 1000)) {
		t.Errorf("µ(β≥0.9|fire_A) = %v, want 991/1000", rep.BeliefMeasure)
	}
}

func TestVariantString(t *testing.T) {
	if FSOriginal.String() != "FS" || FSImproved.String() != "FS-improved" {
		t.Error("FSVariant.String wrong")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
