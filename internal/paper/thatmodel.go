package paper

import (
	"fmt"
	"math/big"
	"strings"

	"pak/internal/pps"
	"pak/internal/protocol"
	"pak/internal/ratutil"
)

// ThatModel expresses the T-hat(p, ε) construction as a joint protocol
// (Section 2.2 style), providing a second, independent construction path:
// unfolding this model must yield a system semantically equivalent to the
// hand-built tree of That — same constraint value, same beliefs, same
// threshold measure. The equivalence is asserted in the tests, giving the
// reproduction a protocol-vs-tree cross-check.
type thatModel struct {
	p, eps *big.Rat
}

var _ protocol.Model = thatModel{}

// NewThatModel returns the T-hat(p, ε) protocol. Requires 0 < ε < p < 1.
func NewThatModel(p, eps *big.Rat) (protocol.Model, error) {
	one := ratutil.One()
	if p == nil || eps == nil || eps.Sign() <= 0 || ratutil.Geq(eps, p) || ratutil.Geq(p, one) {
		return nil, fmt.Errorf("%w: need 0 < ε < p < 1, got p=%v ε=%v", ErrBadParam, p, eps)
	}
	return thatModel{p: ratutil.Copy(p), eps: ratutil.Copy(eps)}, nil
}

func (m thatModel) Agents() []string { return []string{AgentI, AgentJ} }

func (m thatModel) Initials() []protocol.Weighted[protocol.Global] {
	return []protocol.Weighted[protocol.Global]{
		protocol.W(protocol.Global{Env: "env", Locals: []string{"i0", "bit=0"}}, ratutil.OneMinus(m.p)),
		protocol.W(protocol.Global{Env: "env", Locals: []string{"i0", "bit=1"}}, ratutil.Copy(m.p)),
	}
}

func (m thatModel) Horizon() int { return 2 }

func (m thatModel) AgentStep(agent int, local string, t int) []protocol.Weighted[string] {
	switch t {
	case 0:
		if agent == 1 { // j sends its message
			if strings.Contains(local, "bit=1") {
				epsOverP := ratutil.Div(m.eps, m.p)
				return protocol.Mix(
					protocol.W("send-m", ratutil.OneMinus(epsOverP)),
					protocol.W("send-m'", epsOverP),
				)
			}
			return protocol.Det("send-m")
		}
		return protocol.Det(ActNoop)
	default: // t == 1: i performs α unconditionally
		if agent == 0 {
			return protocol.Det(ActAlpha)
		}
		return protocol.Det(ActNoop)
	}
}

func (m thatModel) EnvStep(protocol.Global, []string, int) []protocol.Weighted[string] {
	return protocol.Det("") // the channel of T-hat is reliable
}

func (m thatModel) Next(g protocol.Global, acts []string, _ string, t int) (protocol.Global, error) {
	next := g.Clone()
	switch t {
	case 0:
		msg := strings.TrimPrefix(acts[1], "send-")
		next.Locals[0] = "recv=" + msg
		next.Locals[1] = g.Locals[1] + ",sent"
	default:
		next.Locals[0] = g.Locals[0] + ",acted"
		next.Locals[1] = g.Locals[1] + ",done"
	}
	return next, nil
}

// UnfoldThat unfolds the protocol form of T-hat(p, ε).
func UnfoldThat(p, eps *big.Rat) (*pps.System, error) {
	m, err := NewThatModel(p, eps)
	if err != nil {
		return nil, err
	}
	sys, err := protocol.Unfold(m)
	if err != nil {
		return nil, fmt.Errorf("paper.UnfoldThat: %w", err)
	}
	return sys, nil
}
