package paper

import (
	"errors"
	"math/big"
	"testing"

	"pak/internal/core"
	"pak/internal/ratutil"
)

// TestUnfoldThatValidation mirrors That's parameter domain.
func TestUnfoldThatValidation(t *testing.T) {
	bad := []struct{ p, eps string }{
		{"9/10", "0"}, {"1/2", "1/2"}, {"1/10", "1/2"}, {"1", "1/10"},
	}
	for _, tc := range bad {
		if _, err := UnfoldThat(ratutil.MustParse(tc.p), ratutil.MustParse(tc.eps)); !errors.Is(err, ErrBadParam) {
			t.Errorf("UnfoldThat(%s,%s) err = %v", tc.p, tc.eps, err)
		}
	}
	if _, err := NewThatModel(nil, ratutil.R(1, 10)); !errors.Is(err, ErrBadParam) {
		t.Errorf("NewThatModel(nil) err = %v", err)
	}
}

// TestProtocolTreeEquivalence is the two-path cross-check: the hand-built
// tree (That) and the protocol unfolding (UnfoldThat) must agree on every
// semantic quantity of the Theorem 5.2 analysis, for a parameter sweep.
func TestProtocolTreeEquivalence(t *testing.T) {
	sweep := []struct{ p, eps string }{
		{"9/10", "1/10"},
		{"95/100", "1/100"},
		{"1/2", "1/4"},
	}
	for _, tc := range sweep {
		t.Run(tc.p+"_"+tc.eps, func(t *testing.T) {
			p := ratutil.MustParse(tc.p)
			eps := ratutil.MustParse(tc.eps)
			hand, err := That(p, eps)
			if err != nil {
				t.Fatal(err)
			}
			unfolded, err := UnfoldThat(p, eps)
			if err != nil {
				t.Fatal(err)
			}
			// Same run count and total measure.
			if hand.NumRuns() != unfolded.NumRuns() {
				t.Fatalf("run counts differ: %d vs %d", hand.NumRuns(), unfolded.NumRuns())
			}
			if !ratutil.IsOne(unfolded.TotalMeasure()) {
				t.Fatal("unfolded total measure != 1")
			}

			he := core.New(hand)
			ue := core.New(unfolded)
			phi := ThatBitFact()

			pairs := []struct {
				name string
				get  func(e *core.Engine) (*big.Rat, error)
			}{
				{"constraint", func(e *core.Engine) (*big.Rat, error) {
					return e.ConstraintProb(phi, AgentI, ActAlpha)
				}},
				{"expected belief", func(e *core.Engine) (*big.Rat, error) {
					return e.ExpectedBelief(phi, AgentI, ActAlpha)
				}},
				{"threshold measure", func(e *core.Engine) (*big.Rat, error) {
					return e.ThresholdMeasure(phi, AgentI, ActAlpha, p)
				}},
				{"min belief", func(e *core.Engine) (*big.Rat, error) {
					min, _, err := e.BeliefRangeAtAction(phi, AgentI, ActAlpha)
					return min, err
				}},
				{"max belief", func(e *core.Engine) (*big.Rat, error) {
					_, max, err := e.BeliefRangeAtAction(phi, AgentI, ActAlpha)
					return max, err
				}},
			}
			for _, pair := range pairs {
				hv, err := pair.get(he)
				if err != nil {
					t.Fatalf("%s (hand): %v", pair.name, err)
				}
				uv, err := pair.get(ue)
				if err != nil {
					t.Fatalf("%s (unfolded): %v", pair.name, err)
				}
				if !ratutil.Eq(hv, uv) {
					t.Errorf("%s differs: hand=%v unfolded=%v", pair.name, hv, uv)
				}
			}

			// Both satisfy Theorem 6.2 with independence.
			rep, err := ue.CheckExpectation(phi, AgentI, ActAlpha)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Independent || !rep.Equal() {
				t.Errorf("unfolded T-hat: %v", rep)
			}
		})
	}
}

// TestUnfoldedThatBeliefStates checks the unfolded system exposes the same
// two information states for i when acting (stamped names differ from the
// hand-built tree, but the belief values must coincide).
func TestUnfoldedThatBeliefStates(t *testing.T) {
	p, eps := ratutil.R(9, 10), ratutil.R(1, 10)
	sys, err := UnfoldThat(p, eps)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	byState, err := e.BeliefByActionState(ThatBitFact(), AgentI, ActAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(byState) != 2 {
		t.Fatalf("acting states = %v, want 2", byState)
	}
	wantShared := ratutil.R(8, 9)
	var sawShared, sawCertain bool
	for state, bel := range byState {
		switch {
		case ratutil.Eq(bel, wantShared):
			sawShared = true
		case ratutil.IsOne(bel):
			sawCertain = true
		default:
			t.Errorf("unexpected belief %v at %q", bel, state)
		}
	}
	if !sawShared || !sawCertain {
		t.Fatalf("belief values missing: %v", byState)
	}
}
