// Package registry is the name → builder scenario registry: every
// ready-made system of the repository (the paper's own constructions and
// the motivating distributed-computing workloads) addressable by a
// compact textual spec such as "fsquad", "nsquad(5)" or
// "random(seed=42,agents=3)". A scenario is self-describing — name,
// description, the paper construct it exercises, and a typed parameter
// list with defaults — so the CLIs, the pakd service and the generated
// SCENARIOS.md catalog all draw from one source of truth and system
// construction lives in one place.
package registry

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"sync"

	"pak/internal/pps"
	"pak/internal/ratutil"
)

// Errors reported by the registry. ErrUnknownScenario and ErrBadSpec are
// the two the service layer maps to client-side HTTP statuses.
var (
	// ErrUnknownScenario indicates a spec naming no registered scenario.
	ErrUnknownScenario = errors.New("registry: unknown scenario")
	// ErrBadSpec indicates a malformed spec string or parameters outside
	// their declared kind/domain.
	ErrBadSpec = errors.New("registry: invalid scenario spec")
	// ErrDuplicate indicates a Register call reusing a taken name.
	ErrDuplicate = errors.New("registry: duplicate scenario name")
)

// ParamKind is the type of a scenario parameter value.
type ParamKind string

// The parameter kinds. Rationals accept "1/10", "0.25" and "3"; bools
// accept "true"/"false".
const (
	KindRat    ParamKind = "rat"
	KindInt    ParamKind = "int"
	KindBool   ParamKind = "bool"
	KindString ParamKind = "string"
)

// Param declares one scenario parameter: its name, kind, default value
// (rendered as the spec string that would produce it) and what it means.
type Param struct {
	Name    string    `json:"name"`
	Kind    ParamKind `json:"kind"`
	Default string    `json:"default"`
	Doc     string    `json:"doc"`
}

// Scenario is one registered system family.
type Scenario struct {
	// Name is the spec name (lowercase identifier).
	Name string `json:"name"`
	// Doc is a one-line description of the system.
	Doc string `json:"doc"`
	// Construct names the paper construct the scenario exercises
	// (example, figure, theorem or extension).
	Construct string `json:"construct"`
	// Params declares the accepted parameters, in positional order.
	Params []Param `json:"params,omitempty"`
	// Sweep, when nonempty, is an example space-valued spec for the
	// scenario (the sweep(...) grammar of ParseSpaceSpec): the catalog
	// and GET /v1/scenarios advertise it so clients can discover
	// envelope requests. Register validates that it parses and names
	// this scenario.
	Sweep string `json:"sweep,omitempty"`
	// Differential lists the spec instances the two-backend differential
	// harness evaluates for this scenario: internal/query's
	// TestBackendsAgree builds each one and requires the enumeration and
	// LP backends to return byte-identical results over every supported
	// query shape on it. Register validates that each entry parses,
	// names this scenario and binds its declared parameters; the catalog
	// and GET /v1/scenarios advertise the list so new scenarios are
	// visibly expected to enroll in the cross-check.
	Differential []string `json:"differential,omitempty"`
	// Build constructs the system from validated arguments. It is never
	// nil for a registered scenario and is not serialized.
	Build func(Args) (*pps.System, error) `json:"-"`
	// ServeGuard, when non-nil, vets resolved arguments for exposure
	// through an unauthenticated service: the pakd service consults it
	// before building, so one wire request cannot demand an unbounded
	// unfold, while trusted local callers (the CLIs, library users)
	// bypass it and keep the builder's full domain.
	ServeGuard func(Args) error `json:"-"`
}

// Args is a scenario's validated argument set: every declared parameter
// is present (explicit or default) and parses under its declared kind.
type Args struct {
	scenario string
	vals     map[string]string
	order    []Param
}

// Raw returns the raw string value of the named parameter.
func (a Args) Raw(name string) string { return a.vals[name] }

// Rat returns a rational parameter. It panics on undeclared names or
// non-rat kinds — a registry programming error, not a user input error —
// because validation already proved declared values parse.
func (a Args) Rat(name string) *big.Rat {
	a.mustKind(name, KindRat)
	return ratutil.MustParse(a.vals[name])
}

// Int returns an integer parameter narrowed to the platform int.
// Builders must range-check via Int64 BEFORE narrowing: on 32-bit
// platforms int(x) aliases huge client-supplied values onto small ones,
// which would dodge any bounds check done after the conversion.
func (a Args) Int(name string) int { return int(a.Int64(name)) }

// Int64 returns an integer parameter at full width (KindInt values are
// validated as 64-bit, so seeds and other large integers survive 32-bit
// platforms).
func (a Args) Int64(name string) int64 {
	a.mustKind(name, KindInt)
	n, err := strconv.ParseInt(a.vals[name], 10, 64)
	if err != nil {
		panic(fmt.Sprintf("registry: validated int %q did not parse: %v", name, err))
	}
	return n
}

// Bool returns a boolean parameter.
func (a Args) Bool(name string) bool {
	a.mustKind(name, KindBool)
	return a.vals[name] == "true"
}

// String returns a string parameter.
func (a Args) String(name string) string {
	a.mustKind(name, KindString)
	return a.vals[name]
}

func (a Args) mustKind(name string, want ParamKind) {
	for _, p := range a.order {
		if p.Name == name {
			if p.Kind != want {
				panic(fmt.Sprintf("registry: scenario %q param %q is %s, accessed as %s",
					a.scenario, name, p.Kind, want))
			}
			return
		}
	}
	panic(fmt.Sprintf("registry: scenario %q has no param %q", a.scenario, name))
}

// Canonical renders the fully resolved spec, with every parameter named
// and in declared order: the cache key the service layer shares engines
// under, so "nsquad(3)", "nsquad(n=3)" and "nsquad(n=3,loss=1/10,
// improved=false)" all address one engine.
func (a Args) Canonical() string {
	if len(a.order) == 0 {
		return a.scenario
	}
	out := a.scenario + "("
	for i, p := range a.order {
		if i > 0 {
			out += ","
		}
		out += p.Name + "=" + a.vals[p.Name]
	}
	return out + ")"
}

// Registry maps scenario names to builders. The zero value is not ready;
// use New. A Registry is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Scenario
}

// New returns an empty registry.
func New() *Registry { return &Registry{byName: make(map[string]Scenario)} }

// Register adds a scenario. The name must be a nonempty identifier not
// already taken, the builder must be non-nil, and parameter declarations
// must be well-formed (distinct names, parseable defaults).
func (r *Registry) Register(s Scenario) error {
	if s.Name == "" || !validIdent(s.Name) {
		return fmt.Errorf("%w: scenario name %q", ErrBadSpec, s.Name)
	}
	if s.Name == SweepHead {
		return fmt.Errorf("%w: scenario name %q is reserved for space-valued specs", ErrBadSpec, s.Name)
	}
	if s.Build == nil {
		return fmt.Errorf("%w: scenario %q has no builder", ErrBadSpec, s.Name)
	}
	if s.Sweep != "" {
		ss, err := ParseSpaceSpec(s.Sweep)
		if err != nil {
			return fmt.Errorf("registry: scenario %q sweep example: %w", s.Name, err)
		}
		if ss.Scenario != s.Name {
			return fmt.Errorf("%w: scenario %q sweep example names %q", ErrBadSpec, s.Name, ss.Scenario)
		}
	}
	for _, d := range s.Differential {
		name, pos, named, err := parseSpec(d)
		if err != nil {
			return fmt.Errorf("registry: scenario %q differential example: %w", s.Name, err)
		}
		if name != s.Name {
			return fmt.Errorf("%w: scenario %q differential example names %q", ErrBadSpec, s.Name, name)
		}
		if _, err := bind(s, pos, named); err != nil {
			return fmt.Errorf("registry: scenario %q differential example %q: %w", s.Name, d, err)
		}
	}
	// Normalizing writes back into s.Params, so copy the slices first:
	// Register must not mutate the caller's Scenario value.
	s.Differential = append([]string(nil), s.Differential...)
	s.Params = append([]Param(nil), s.Params...)
	seen := make(map[string]bool, len(s.Params))
	for i, p := range s.Params {
		if p.Name == "" || !validIdent(p.Name) {
			return fmt.Errorf("%w: scenario %q param name %q", ErrBadSpec, s.Name, p.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("%w: scenario %q repeats param %q", ErrBadSpec, s.Name, p.Name)
		}
		seen[p.Name] = true
		// Normalize declared defaults too, so the catalog's example specs
		// and Args.Canonical always agree on one spelling.
		norm, err := normalize(p.Kind, p.Default)
		if err != nil {
			return fmt.Errorf("registry: scenario %q param %q default: %w", s.Name, p.Name, err)
		}
		s.Params[i].Default = norm
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.byName[s.Name]; taken {
		return fmt.Errorf("%w: %q", ErrDuplicate, s.Name)
	}
	r.byName[s.Name] = s
	return nil
}

// Names returns the registered scenario names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the named scenario's metadata. The Params slice is a
// copy — mutating it cannot corrupt the registry (the mirror of
// Register's defensive copy on the way in).
func (r *Registry) Lookup(name string) (Scenario, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byName[name]
	if ok {
		s.Params = append([]Param(nil), s.Params...)
	}
	return s, ok
}

// Scenarios returns every registered scenario, sorted by name.
func (r *Registry) Scenarios() []Scenario {
	names := r.Names()
	out := make([]Scenario, 0, len(names))
	for _, name := range names {
		s, _ := r.Lookup(name)
		out = append(out, s)
	}
	return out
}

// Resolve parses a spec against the registry: it finds the named
// scenario, binds positional and named arguments to its declared
// parameters, fills defaults, and validates every value under its kind.
// The returned Args are ready for the scenario's builder.
func (r *Registry) Resolve(spec string) (Scenario, Args, error) {
	name, pos, named, err := parseSpec(spec)
	if err != nil {
		return Scenario{}, Args{}, err
	}
	s, ok := r.Lookup(name)
	if !ok {
		return Scenario{}, Args{}, fmt.Errorf("%w: %q (have %v)", ErrUnknownScenario, name, r.Names())
	}
	args, err := bind(s, pos, named)
	if err != nil {
		return Scenario{}, Args{}, err
	}
	return s, args, nil
}

// Canonical resolves a spec to its canonical form — every parameter
// named, in declared order, values normalized — without building the
// system. It is the engine-cache key plumbing: the service layer, the
// load harness and tests all derive cache identities through this one
// call, so two spellings of a system can never address two engines.
func (r *Registry) Canonical(spec string) (string, error) {
	_, args, err := r.Resolve(spec)
	if err != nil {
		return "", err
	}
	return args.Canonical(), nil
}

// Build resolves the spec and constructs its system.
func (r *Registry) Build(spec string) (*pps.System, error) {
	s, args, err := r.Resolve(spec)
	if err != nil {
		return nil, err
	}
	sys, err := s.Build(args)
	if err != nil {
		return nil, fmt.Errorf("registry: build %s: %w", args.Canonical(), err)
	}
	if sys == nil {
		// Register accepts arbitrary builders; a (nil, nil) return here
		// would otherwise surface as a nil-pointer panic at first use.
		return nil, fmt.Errorf("registry: build %s: builder returned a nil system", args.Canonical())
	}
	return sys, nil
}

// bind assigns positional then named argument values to the scenario's
// declared parameters, fills defaults, and validates kinds.
func bind(s Scenario, pos []string, named map[string]string) (Args, error) {
	if len(pos) > len(s.Params) {
		return Args{}, fmt.Errorf("%w: %s takes at most %d parameter(s), got %d positional",
			ErrBadSpec, s.Name, len(s.Params), len(pos))
	}
	vals := make(map[string]string, len(s.Params))
	for i, v := range pos {
		vals[s.Params[i].Name] = v
	}
	declared := make(map[string]Param, len(s.Params))
	for _, p := range s.Params {
		declared[p.Name] = p
	}
	for name, v := range named {
		p, ok := declared[name]
		if !ok {
			known := make([]string, 0, len(s.Params))
			for _, q := range s.Params {
				known = append(known, q.Name)
			}
			return Args{}, fmt.Errorf("%w: %s has no parameter %q (have %v)", ErrBadSpec, s.Name, name, known)
		}
		if _, dup := vals[p.Name]; dup {
			return Args{}, fmt.Errorf("%w: %s parameter %q given both positionally and by name",
				ErrBadSpec, s.Name, name)
		}
		vals[name] = v
	}
	for _, p := range s.Params {
		v, ok := vals[p.Name]
		if !ok {
			v = p.Default
		}
		norm, err := normalize(p.Kind, v)
		if err != nil {
			return Args{}, fmt.Errorf("%w: %s parameter %q: %v", ErrBadSpec, s.Name, p.Name, err)
		}
		vals[p.Name] = norm
	}
	return Args{scenario: s.Name, vals: vals, order: s.Params}, nil
}

// maxServeValueLen bounds a normalized parameter value on the service
// path (it does not bind Resolve/Build — trusted local callers keep
// the builders' full domain). Values are canonical renderings, so this
// one cap covers magnitude too: big.Rat's compact exponent forms
// ("1e1000000" is 9 characters but a 3.3-Mbit integer) expand to full
// digits at normalization, a ≤ 64-char "N/D" keeps every numerator and
// denominator under ~210 bits, and the canonical engine-cache keys
// stay small.
const maxServeValueLen = 64

// VetForService applies the generic bound every scenario shares when
// exposed through an unauthenticated service. The pakd service calls
// it (alongside any per-scenario ServeGuard) before building; local
// callers bypass it.
func (a Args) VetForService() error {
	for _, p := range a.order {
		if v := a.vals[p.Name]; len(v) > maxServeValueLen {
			return fmt.Errorf("%w: %s parameter %q is %d characters, above the service limit of %d",
				ErrBadSpec, a.scenario, p.Name, len(v), maxServeValueLen)
		}
	}
	return nil
}

// normalize validates a rendered value under a parameter kind and
// returns its canonical rendering, so equivalent spellings ("0.1" and
// "1/10", "03" and "3") bind to one value — and hence to one canonical
// spec, the identity the service shares engines under.
func normalize(kind ParamKind, v string) (string, error) {
	switch kind {
	case KindRat:
		// The spec grammar for rationals is digits, '.', '/' and a sign —
		// deliberately narrower than big.Rat.SetString, whose exponent
		// forms ("1e999999", 8 characters) expand to megabyte strings
		// the moment they are parsed and re-rendered. Rejecting them
		// here keeps bind cost proportional to the spec's length.
		for _, c := range v {
			switch {
			case c >= '0' && c <= '9', c == '.', c == '/', c == '+', c == '-':
			default:
				return "", fmt.Errorf("want a rational (digits, '.', '/'), got %q", v)
			}
		}
		rat, err := ratutil.Parse(v)
		if err != nil {
			return "", fmt.Errorf("want a rational, got %q: %v", v, err)
		}
		return rat.RatString(), nil
	case KindInt:
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return "", fmt.Errorf("want an integer, got %q", v)
		}
		return strconv.FormatInt(n, 10), nil
	case KindBool:
		if v != "true" && v != "false" {
			return "", fmt.Errorf("want true or false, got %q", v)
		}
		return v, nil
	case KindString:
		if v == "" {
			return "", errors.New("want a nonempty string")
		}
		return v, nil
	default:
		return "", fmt.Errorf("unknown param kind %q", kind)
	}
}
