package registry

// Space-valued scenario specs: the textual form of an adversary space
// over a registered scenario family, so envelope requests address whole
// sweeps the way plain specs address one system.
//
// Grammar (whitespace around tokens is ignored):
//
//	space  := "sweep" "(" scenario ("," param "=" (range | value))* ")"
//	range  := lo ".." hi [ "/" step ]
//
// The head is the reserved word "sweep"; the first argument names the
// registered scenario; every further argument is named. A value
// containing ".." sweeps that parameter; any other value fixes it, with
// the scenario's declared defaults filling the rest — exactly the
// binding rules of a plain spec.
//
// Range bounds and the step are exact rationals. lo sits before ".."
// and may use any rational spelling ("0", "0.25", "1/2"). The part
// after ".." splits on "/" into 1–4 tokens of sign/digit/dot form:
//
//	hi            → step defaults to 1
//	hi/step       → both plain ("0.5/0.1")
//	hi/sn/sd      → integral hi, fractional step ("5/1/10" = to 5 by 1/10)
//	hn/hd/sn/sd   → both fractional ("1/2/1/10" = to 1/2 by 1/10)
//
// so the ISSUE-style "loss=0.0..0.5/0.1" and the canonical all-rational
// "loss=0..1/2/1/10" name the same sweep. The canonical rendering
// (ResolvedSpace.Canonical) always writes lo..hi/step with RatString
// values — and num/den step tokens whenever hi is fractional — which
// re-parses to itself: the fixed point FuzzParseSpaceSpec pins.
//
// Resolution (Registry.ResolveSpace) expands every range under its
// parameter's declared kind — integer ranges need integral bounds and
// step — into an adversary.Space whose choices are the swept parameters
// in declared order, and enumerates the complete assignments. Every
// assignment binds against the scenario exactly like a plain spec and
// yields its canonical system spec: the engine-cache key, so a sweep's
// instances flow through the same shared EngineCache/singleflight
// machinery as any other request.

import (
	"fmt"
	"math/big"
	"strings"

	"pak/internal/adversary"
	"pak/internal/ratutil"
)

// SweepHead is the reserved head of every space-valued spec; no
// scenario may register under it.
const SweepHead = "sweep"

// Expansion bounds: a single swept parameter may enumerate at most
// MaxRangeValues values, and a space at most MaxSpaceAssignments
// complete assignments. Both bind every caller (the spec grammar is
// client-reachable through the service, and even a trusted local sweep
// beyond these sizes is a mistake, not a workload).
const (
	MaxRangeValues      = 512
	MaxSpaceAssignments = 4096
)

// SweepRange is one swept parameter's lo..hi/step progression.
type SweepRange struct {
	Lo, Hi, Step *big.Rat
}

// Values enumerates the progression lo, lo+step, ... capped at hi,
// honouring MaxRangeValues (enforced at parse time, re-checked here).
func (r SweepRange) Values() []*big.Rat {
	var out []*big.Rat
	for v := ratutil.Copy(r.Lo); ratutil.Leq(v, r.Hi) && len(out) < MaxRangeValues; v = ratutil.Add(v, r.Step) {
		out = append(out, v)
	}
	return out
}

// count computes the progression's length without materializing it:
// floor((hi-lo)/step) + 1.
func (r SweepRange) count() int {
	q := ratutil.Div(ratutil.Sub(r.Hi, r.Lo), r.Step)
	n := new(big.Int).Quo(q.Num(), q.Denom())
	if !n.IsInt64() || n.Int64() >= MaxRangeValues {
		return MaxRangeValues + 1
	}
	return int(n.Int64()) + 1
}

// String renders the range canonically: lo..hi/step, RatString values,
// with the step in num/den token form whenever hi is fractional so the
// rendering re-parses to itself (see the grammar note above).
func (r SweepRange) String() string {
	step := r.Step.RatString()
	if !r.Hi.IsInt() && r.Step.IsInt() {
		step = r.Step.Num().String() + "/" + r.Step.Denom().String()
	}
	return r.Lo.RatString() + ".." + r.Hi.RatString() + "/" + step
}

// SpaceParam is one argument of a space spec: a fixed value or a range.
type SpaceParam struct {
	// Name is the scenario parameter the argument binds.
	Name string
	// Value is the fixed value when Range is nil.
	Value string
	// Range, when non-nil, sweeps the parameter.
	Range *SweepRange
}

// SpaceSpec is the parsed (grammar-level) form of a space-valued spec,
// before binding against a registry.
type SpaceSpec struct {
	// Scenario names the swept scenario family.
	Scenario string
	// Params holds the arguments in input order.
	Params []SpaceParam
}

// Swept reports whether any parameter is a range.
func (ss SpaceSpec) Swept() bool {
	for _, p := range ss.Params {
		if p.Range != nil {
			return true
		}
	}
	return false
}

// String renders the spec in the sweep grammar, parameters in their
// current order, ranges canonical.
func (ss SpaceSpec) String() string {
	var b strings.Builder
	b.WriteString(SweepHead + "(" + ss.Scenario)
	for _, p := range ss.Params {
		b.WriteString("," + p.Name + "=")
		if p.Range != nil {
			b.WriteString(p.Range.String())
		} else {
			b.WriteString(p.Value)
		}
	}
	b.WriteString(")")
	return b.String()
}

// ParseSpaceSpec parses a space-valued spec at the grammar level,
// without consulting any registry — the sweep analogue of ParseSpec,
// exported for tooling and the fuzz harness. For any input it either
// errors or returns a well-formed SpaceSpec; it never panics.
func ParseSpaceSpec(spec string) (SpaceSpec, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return SpaceSpec{}, fmt.Errorf("%w: empty space spec", ErrBadSpec)
	}
	open := strings.IndexByte(s, '(')
	if open < 0 || strings.TrimSpace(s[:open]) != SweepHead {
		return SpaceSpec{}, fmt.Errorf("%w: a space spec is %s(scenario,param=lo..hi/step,...), got %q",
			ErrBadSpec, SweepHead, spec)
	}
	if !strings.HasSuffix(s, ")") {
		return SpaceSpec{}, fmt.Errorf("%w: %q is missing the closing parenthesis", ErrBadSpec, spec)
	}
	body := strings.TrimSpace(s[open+1 : len(s)-1])
	if strings.ContainsAny(body, "()") {
		return SpaceSpec{}, fmt.Errorf("%w: nested parentheses in %q", ErrBadSpec, spec)
	}
	if body == "" {
		return SpaceSpec{}, fmt.Errorf("%w: %s() names no scenario", ErrBadSpec, SweepHead)
	}
	parts := strings.Split(body, ",")
	name := strings.TrimSpace(parts[0])
	if !validIdent(name) {
		return SpaceSpec{}, fmt.Errorf("%w: bad scenario name %q in %q", ErrBadSpec, name, spec)
	}
	out := SpaceSpec{Scenario: name}
	seen := make(map[string]bool)
	for _, part := range parts[1:] {
		part = strings.TrimSpace(part)
		if part == "" {
			return SpaceSpec{}, fmt.Errorf("%w: empty argument in %q", ErrBadSpec, spec)
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return SpaceSpec{}, fmt.Errorf("%w: sweep arguments are named; %q in %q is not",
				ErrBadSpec, part, spec)
		}
		key := strings.TrimSpace(part[:eq])
		val := strings.TrimSpace(part[eq+1:])
		if !validIdent(key) {
			return SpaceSpec{}, fmt.Errorf("%w: bad parameter name %q in %q", ErrBadSpec, key, spec)
		}
		if val == "" {
			return SpaceSpec{}, fmt.Errorf("%w: parameter %q has no value in %q", ErrBadSpec, key, spec)
		}
		if seen[key] {
			return SpaceSpec{}, fmt.Errorf("%w: parameter %q repeated in %q", ErrBadSpec, key, spec)
		}
		seen[key] = true
		p := SpaceParam{Name: key}
		if strings.Contains(val, "..") {
			rg, err := parseSweepRange(val)
			if err != nil {
				return SpaceSpec{}, fmt.Errorf("%w: parameter %q: %v", ErrBadSpec, key, err)
			}
			p.Range = rg
		} else {
			p.Value = val
		}
		out.Params = append(out.Params, p)
	}
	return out, nil
}

// parseSweepRange parses one lo..hi[/step] range per the grammar note.
func parseSweepRange(s string) (*SweepRange, error) {
	dots := strings.Index(s, "..")
	lo, rest := strings.TrimSpace(s[:dots]), strings.TrimSpace(s[dots+2:])
	if strings.Contains(rest, "..") {
		return nil, fmt.Errorf("a range has exactly one '..', got %q", s)
	}
	loRat, err := rangeRat(lo)
	if err != nil {
		return nil, fmt.Errorf("range start: %v", err)
	}
	toks := strings.Split(rest, "/")
	for i, t := range toks {
		toks[i] = strings.TrimSpace(t)
	}
	var hi, step *big.Rat
	switch len(toks) {
	case 1:
		hi, err = plainTok(toks[0])
		step = ratutil.One()
	case 2:
		if hi, err = plainTok(toks[0]); err == nil {
			step, err = plainTok(toks[1])
		}
	case 3:
		if hi, err = plainTok(toks[0]); err == nil {
			step, err = fracTok(toks[1], toks[2])
		}
	case 4:
		if hi, err = fracTok(toks[0], toks[1]); err == nil {
			step, err = fracTok(toks[2], toks[3])
		}
	default:
		return nil, fmt.Errorf("range end %q has too many '/' tokens", rest)
	}
	if err != nil {
		return nil, fmt.Errorf("range end %q: %v", rest, err)
	}
	if step.Sign() <= 0 {
		return nil, fmt.Errorf("range step %s is not positive", step.RatString())
	}
	if ratutil.Greater(loRat, hi) {
		return nil, fmt.Errorf("range start %s is above its end %s", loRat.RatString(), hi.RatString())
	}
	rg := &SweepRange{Lo: loRat, Hi: hi, Step: step}
	if n := rg.count(); n > MaxRangeValues {
		return nil, fmt.Errorf("range enumerates more than %d values", MaxRangeValues)
	}
	return rg, nil
}

// plainTok parses one sign/digit/dot token ("-3", "0.25").
func plainTok(tok string) (*big.Rat, error) {
	if tok == "" {
		return nil, fmt.Errorf("empty number")
	}
	for _, c := range tok {
		switch {
		case c >= '0' && c <= '9', c == '.', c == '+', c == '-':
		default:
			return nil, fmt.Errorf("bad number %q (digits, '.', sign)", tok)
		}
	}
	return ratutil.Parse(tok)
}

// fracTok parses a num/den token pair into one rational.
func fracTok(num, den string) (*big.Rat, error) {
	n, err := plainTok(num)
	if err != nil {
		return nil, err
	}
	d, err := plainTok(den)
	if err != nil {
		return nil, err
	}
	if d.Sign() == 0 {
		return nil, fmt.Errorf("zero denominator in %q/%q", num, den)
	}
	return ratutil.Div(n, d), nil
}

// rangeRat parses the lo bound, which may use the full rational grammar
// (it is delimited by "..", so "1/2" is unambiguous there).
func rangeRat(tok string) (*big.Rat, error) {
	if tok == "" {
		return nil, fmt.Errorf("empty number")
	}
	for _, c := range tok {
		switch {
		case c >= '0' && c <= '9', c == '.', c == '/', c == '+', c == '-':
		default:
			return nil, fmt.Errorf("bad number %q (digits, '.', '/', sign)", tok)
		}
	}
	return ratutil.Parse(tok)
}

// SpaceInstance is one enumerated assignment of a resolved space with
// the canonical system spec it binds to — the engine-cache key its
// engine is shared under.
type SpaceInstance struct {
	// Assignment fixes every swept parameter.
	Assignment adversary.Assignment
	// Canonical is the assignment's fully resolved system spec.
	Canonical string
}

// ResolvedSpace is a space spec bound against a registry: the
// adversary.Space over the swept parameters and the enumerated,
// validated instances.
type ResolvedSpace struct {
	scenario  string
	params    []SpaceParam // declared order, fixed values normalized
	space     *adversary.Space
	instances []SpaceInstance
}

// ScenarioName returns the swept scenario's name.
func (rs *ResolvedSpace) ScenarioName() string { return rs.scenario }

// Space returns the adversary space over the swept parameters: one
// choice per swept parameter in declared order, options in progression
// order, every registry-normalized.
func (rs *ResolvedSpace) Space() *adversary.Space { return rs.space }

// Size returns the number of complete assignments.
func (rs *ResolvedSpace) Size() int { return len(rs.instances) }

// Instances returns the enumerated assignments in canonical order (a
// copy; the canonical specs are the engine-cache keys).
func (rs *ResolvedSpace) Instances() []SpaceInstance {
	return append([]SpaceInstance(nil), rs.instances...)
}

// Canonical renders the resolved space's canonical spec: every declared
// parameter present (defaults filled), in declared order, fixed values
// normalized and ranges in canonical form. Like a plain spec's
// canonical form it is a fixed point: resolving it again yields the
// same rendering.
func (rs *ResolvedSpace) Canonical() string {
	return SpaceSpec{Scenario: rs.scenario, Params: rs.params}.String()
}

// ResolveSpace parses a space-valued spec and binds it against the
// registry: ranges expand under their parameters' declared kinds, the
// swept parameters become an adversary.Space, and every complete
// assignment is validated by binding it exactly like a plain spec,
// yielding its canonical system spec. The instances are enumerated in
// the space's canonical order (declared parameter order, progression
// option order).
func (r *Registry) ResolveSpace(spec string) (*ResolvedSpace, error) {
	ss, err := ParseSpaceSpec(spec)
	if err != nil {
		return nil, err
	}
	sc, ok := r.Lookup(ss.Scenario)
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownScenario, ss.Scenario, r.Names())
	}
	declared := make(map[string]Param, len(sc.Params))
	for _, p := range sc.Params {
		declared[p.Name] = p
	}
	byName := make(map[string]SpaceParam, len(ss.Params))
	for _, p := range ss.Params {
		dp, ok := declared[p.Name]
		if !ok {
			known := make([]string, 0, len(sc.Params))
			for _, q := range sc.Params {
				known = append(known, q.Name)
			}
			return nil, fmt.Errorf("%w: %s has no parameter %q (have %v)", ErrBadSpec, sc.Name, p.Name, known)
		}
		if p.Range != nil {
			if err := vetRangeKind(dp, p.Range); err != nil {
				return nil, err
			}
		}
		byName[p.Name] = p
	}

	// Reassemble in declared order with defaults filled, normalizing
	// fixed values now so Canonical() needs no second pass.
	ordered := make([]SpaceParam, 0, len(sc.Params))
	fixed := make(map[string]string)
	var choices []adversary.Choice
	for _, dp := range sc.Params {
		p, ok := byName[dp.Name]
		if !ok {
			p = SpaceParam{Name: dp.Name, Value: dp.Default}
		}
		if p.Range == nil {
			norm, err := normalize(dp.Kind, p.Value)
			if err != nil {
				return nil, fmt.Errorf("%w: %s parameter %q: %v", ErrBadSpec, sc.Name, dp.Name, err)
			}
			p.Value = norm
			fixed[dp.Name] = norm
			ordered = append(ordered, p)
			continue
		}
		values := p.Range.Values()
		options := make([]string, len(values))
		for i, v := range values {
			norm, err := normalize(dp.Kind, v.RatString())
			if err != nil {
				return nil, fmt.Errorf("%w: %s parameter %q value %s: %v",
					ErrBadSpec, sc.Name, dp.Name, v.RatString(), err)
			}
			options[i] = norm
		}
		choices = append(choices, adversary.Choice{Name: dp.Name, Options: options})
		ordered = append(ordered, p)
	}
	space, err := adversary.NewSpace(choices...)
	if err != nil {
		// Unreachable: names are declared-distinct, ranges are non-empty.
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if size := space.Size(); size > MaxSpaceAssignments {
		return nil, fmt.Errorf("%w: %s enumerates %d assignments, above the bound of %d",
			ErrBadSpec, ss.String(), size, MaxSpaceAssignments)
	}

	rs := &ResolvedSpace{scenario: sc.Name, params: ordered, space: space}
	err = space.ForEach(func(a adversary.Assignment) error {
		named := make(map[string]string, len(fixed)+len(a))
		for k, v := range fixed {
			named[k] = v
		}
		for k, v := range a {
			named[k] = v
		}
		args, err := bind(sc, nil, named)
		if err != nil {
			return fmt.Errorf("assignment %v: %w", a, err)
		}
		rs.instances = append(rs.instances, SpaceInstance{Assignment: a, Canonical: args.Canonical()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rs, nil
}

// vetRangeKind checks a range against its parameter's declared kind:
// only rationals and integers sweep, and integer ranges must have
// integral bounds and step.
func vetRangeKind(p Param, rg *SweepRange) error {
	switch p.Kind {
	case KindRat:
		return nil
	case KindInt:
		if !rg.Lo.IsInt() || !rg.Hi.IsInt() || !rg.Step.IsInt() {
			return fmt.Errorf("%w: integer parameter %q needs an integral range, got %s",
				ErrBadSpec, p.Name, rg)
		}
		return nil
	default:
		return fmt.Errorf("%w: parameter %q is %s; only rat and int parameters sweep",
			ErrBadSpec, p.Name, p.Kind)
	}
}
