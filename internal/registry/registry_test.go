package registry

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"pak/internal/encode"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/randsys"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec  string
		name  string
		pos   []string
		named map[string]string
	}{
		{spec: "fsquad", name: "fsquad"},
		{spec: "  fsquad  ", name: "fsquad"},
		{spec: "fsquad()", name: "fsquad"},
		{spec: "nsquad(5)", name: "nsquad", pos: []string{"5"}},
		{spec: "nsquad(5, 1/4)", name: "nsquad", pos: []string{"5", "1/4"}},
		{spec: "nsquad(5, loss=1/4)", name: "nsquad", pos: []string{"5"},
			named: map[string]string{"loss": "1/4"}},
		{spec: "random(seed=42, agents = 3)", name: "random",
			named: map[string]string{"seed": "42", "agents": "3"}},
	}
	for _, tc := range cases {
		name, pos, named, err := parseSpec(tc.spec)
		if err != nil {
			t.Fatalf("parseSpec(%q): %v", tc.spec, err)
		}
		if name != tc.name {
			t.Errorf("parseSpec(%q) name = %q, want %q", tc.spec, name, tc.name)
		}
		if len(pos) != len(tc.pos) {
			t.Errorf("parseSpec(%q) pos = %v, want %v", tc.spec, pos, tc.pos)
		} else {
			for i := range pos {
				if pos[i] != tc.pos[i] {
					t.Errorf("parseSpec(%q) pos[%d] = %q, want %q", tc.spec, i, pos[i], tc.pos[i])
				}
			}
		}
		if len(named) != len(tc.named) {
			t.Errorf("parseSpec(%q) named = %v, want %v", tc.spec, named, tc.named)
		}
		for k, want := range tc.named {
			if named[k] != want {
				t.Errorf("parseSpec(%q) named[%q] = %q, want %q", tc.spec, k, named[k], want)
			}
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"   ",
		"Fsquad",
		"nsquad(5",
		"nsquad 5)",
		"nsquad((5))",
		"nsquad(,)",
		"nsquad(loss=)",
		"nsquad(=5)",
		"nsquad(loss=1/4, 5)",
		"nsquad(loss=1/4, loss=1/2)",
	} {
		if _, _, _, err := parseSpec(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("parseSpec(%q) = %v, want ErrBadSpec", spec, err)
		}
	}
}

func TestResolveDefaultsAndCanonical(t *testing.T) {
	r := Default()
	// Equivalent spellings — positional/named, "0.1" vs "1/10", "03" vs
	// "3" — must share one canonical form: it is the engine-cache key.
	for _, spec := range []string{"nsquad(3)", "nsquad(n=3)", "nsquad(3,1/10,false)",
		"nsquad(n=3,loss=1/10,improved=false)", "nsquad(n=03,loss=0.1)"} {
		_, args, err := r.Resolve(spec)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", spec, err)
		}
		const want = "nsquad(n=3,loss=1/10,improved=false)"
		if got := args.Canonical(); got != want {
			t.Errorf("Resolve(%q).Canonical() = %q, want %q", spec, got, want)
		}
	}
	_, args, err := r.Resolve("fsquad")
	if err != nil {
		t.Fatalf("Resolve(fsquad): %v", err)
	}
	if !ratutil.Eq(args.Rat("loss"), ratutil.R(1, 10)) {
		t.Errorf("fsquad default loss = %s, want 1/10", args.Rat("loss").RatString())
	}
	if args.Bool("improved") {
		t.Error("fsquad default improved = true, want false")
	}
}

func TestResolveErrors(t *testing.T) {
	r := Default()
	if _, _, err := r.Resolve("nosuch(1)"); !errors.Is(err, ErrUnknownScenario) {
		t.Errorf("unknown scenario: got %v, want ErrUnknownScenario", err)
	}
	for _, spec := range []string{
		"fsquad(loss=1/10,bogus=1)", // undeclared param
		"fsquad(1/10,true,7)",       // too many positional
		"fsquad(1/10,loss=1/4)",     // both positional and named
		"nsquad(n=x)",               // non-integer
		"fsquad(loss=abc)",          // non-rational
		"fsquad(improved=yes)",      // non-boolean
		"fsquad(loss=1e1000000)",    // exponent form: outside the spec grammar
	} {
		if _, _, err := r.Resolve(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Resolve(%q) = %v, want ErrBadSpec", spec, err)
		}
	}
}

// TestBuildMatchesDirectConstruction pins the registry to the direct
// constructors: a registry-built system marshals byte-identically to the
// library call the spec names.
func TestBuildMatchesDirectConstruction(t *testing.T) {
	loss := ratutil.R(1, 10)
	direct := map[string]func() (*pps.System, error){
		"fsquad(loss=1/10)": func() (*pps.System, error) {
			return paper.FiringSquad(loss, paper.FSOriginal)
		},
		"fsquad(improved=true)": func() (*pps.System, error) {
			return paper.FiringSquad(loss, paper.FSImproved)
		},
		"nsquad(3)": func() (*pps.System, error) {
			return scenarios.NFiringSquadSystem(3, loss, false)
		},
		"mutex(1/4)": func() (*pps.System, error) {
			return scenarios.MutexSystem(ratutil.R(1, 4))
		},
		"consensus()": func() (*pps.System, error) {
			return scenarios.ConsensusSystem(loss)
		},
		"that(p=9/10,eps=1/10)": func() (*pps.System, error) {
			return paper.That(ratutil.R(9, 10), loss)
		},
		"figure1": paper.Figure1,
		"random(seed=42)": func() (*pps.System, error) {
			return randsys.Generate(randsys.Default(42))
		},
	}
	for spec, build := range direct {
		fromRegistry, err := Default().Build(spec)
		if err != nil {
			t.Fatalf("Build(%q): %v", spec, err)
		}
		want, err := build()
		if err != nil {
			t.Fatalf("direct build for %q: %v", spec, err)
		}
		gotDoc, err := encode.Marshal(fromRegistry)
		if err != nil {
			t.Fatalf("marshal registry system for %q: %v", spec, err)
		}
		wantDoc, err := encode.Marshal(want)
		if err != nil {
			t.Fatalf("marshal direct system for %q: %v", spec, err)
		}
		if !bytes.Equal(gotDoc, wantDoc) {
			t.Errorf("Build(%q) differs from the direct construction", spec)
		}
	}
}

func TestBuildBounds(t *testing.T) {
	for _, spec := range []string{"nsquad(1)", "nsquad(99)", "nsquad(4294967299)"} {
		if _, err := Default().Build(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Build(%q) = %v, want ErrBadSpec", spec, err)
		}
	}
	// Underlying constructor errors surface too (That needs eps < p).
	if _, err := Default().Build("that(p=1/10,eps=9/10)"); err == nil {
		t.Error("Build(that(p=1/10,eps=9/10)) succeeded, want error")
	}
}

// TestRandomServeGuard: the service path rejects specs that could
// demand an unbounded unfold — including 32-bit-aliasing and
// guard-loop-spinning shapes — while the builder itself keeps randsys's
// full domain for trusted local callers.
func TestRandomServeGuard(t *testing.T) {
	r := Default()
	sc, ok := r.Lookup("random")
	if !ok || sc.ServeGuard == nil {
		t.Fatal("random has no ServeGuard")
	}
	for _, spec := range []string{
		"random(depth=30,branch=5)",                     // exponential
		"random(depth=50000,branch=1)",                  // huge linear chains
		"random(depth=1000000000000000,branch=1)",       // would spin a naive guard loop
		"random(agents=100000000)",                      // per-node memory multiplier
		"random(depth=12,branch=8)",                     // trips the cumulative node cap
		"random(seed=1,agents=2,actiontime=4294967299)", // 32-bit aliasing shape
	} {
		_, args, err := r.Resolve(spec)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", spec, err)
		}
		if err := sc.ServeGuard(args); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ServeGuard(%q) = %v, want ErrBadSpec", spec, err)
		}
	}
	// The default spec passes the guard, and a beyond-guard spec still
	// builds locally (the guard binds only the service path).
	_, args, err := r.Resolve("random")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.ServeGuard(args); err != nil {
		t.Errorf("ServeGuard(defaults) = %v, want nil", err)
	}
	if _, err := r.Build("random(seed=3,depth=13,branch=1)"); err != nil {
		t.Errorf("local Build(random(depth=13)) = %v, want success past the service cap", err)
	}
}

// TestVetForService: the generic wire bound rejects oversized values on
// the service path, while Resolve (the local path) keeps accepting
// them. (Exponent forms never reach this layer — the spec grammar
// itself excludes them, see TestResolveErrors.)
func TestVetForService(t *testing.T) {
	r := Default()
	for _, spec := range []string{
		"fsquad(loss=0." + strings.Repeat("1", 80) + ")", // over the value-length cap
	} {
		_, args, err := r.Resolve(spec)
		if err != nil {
			t.Fatalf("Resolve(%q) should succeed locally: %v", spec, err)
		}
		if err := args.VetForService(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("VetForService(%q) = %v, want ErrBadSpec", spec, err)
		}
	}
	_, args, err := r.Resolve("that(p=9/10,eps=1/10)")
	if err != nil {
		t.Fatal(err)
	}
	if err := args.VetForService(); err != nil {
		t.Errorf("VetForService(sane spec) = %v, want nil", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	ok := Scenario{Name: "demo", Doc: "d", Construct: "c",
		Build: func(Args) (*pps.System, error) { return nil, nil }}
	if err := r.Register(ok); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register(ok); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate Register = %v, want ErrDuplicate", err)
	}
	bad := []Scenario{
		{Name: "", Build: ok.Build},
		{Name: "Caps", Build: ok.Build},
		{Name: "nobuilder"},
		{Name: "badparam", Build: ok.Build, Params: []Param{{Name: "9x", Kind: KindInt, Default: "1"}}},
		{Name: "dupparam", Build: ok.Build, Params: []Param{
			{Name: "a", Kind: KindInt, Default: "1"}, {Name: "a", Kind: KindInt, Default: "2"}}},
		{Name: "baddefault", Build: ok.Build, Params: []Param{{Name: "a", Kind: KindInt, Default: "x"}}},
	}
	for _, s := range bad {
		if err := r.Register(s); err == nil {
			t.Errorf("Register(%q) succeeded, want error", s.Name)
		}
	}
}

func TestMarkdownCoversEveryScenario(t *testing.T) {
	doc := Default().Markdown()
	for _, name := range Default().Names() {
		if !strings.Contains(doc, "## "+name+"\n") {
			t.Errorf("Markdown() is missing a section for %q", name)
		}
	}
	s, _ := Default().Lookup("nsquad")
	for _, p := range s.Params {
		if !strings.Contains(doc, "`"+p.Name+"`") {
			t.Errorf("Markdown() is missing nsquad param %q", p.Name)
		}
	}
	if !strings.Contains(doc, "nsquad(n=3,loss=1/10,improved=false)") {
		t.Error("Markdown() is missing nsquad's canonical example spec")
	}
}
