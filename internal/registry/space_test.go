package registry

import (
	"errors"
	"strings"
	"testing"

	"pak/internal/pps"
	"pak/internal/ratutil"
)

// nilBuildStub is a registration-only builder for metadata tests.
func nilBuildStub(Args) (*pps.System, error) { return nil, errors.New("not buildable") }

func TestParseSpaceSpecGrammar(t *testing.T) {
	ss, err := ParseSpaceSpec("sweep( nsquad , loss = 0.0..0.5/0.1 , n = 3 )")
	if err != nil {
		t.Fatal(err)
	}
	if ss.Scenario != "nsquad" || len(ss.Params) != 2 {
		t.Fatalf("parsed %+v", ss)
	}
	rg := ss.Params[0].Range
	if rg == nil || !ratutil.IsZero(rg.Lo) || !ratutil.Eq(rg.Hi, ratutil.R(1, 2)) || !ratutil.Eq(rg.Step, ratutil.R(1, 10)) {
		t.Fatalf("range = %+v", rg)
	}
	if ss.Params[1].Name != "n" || ss.Params[1].Value != "3" || ss.Params[1].Range != nil {
		t.Fatalf("fixed param = %+v", ss.Params[1])
	}
	if !ss.Swept() {
		t.Error("Swept() = false")
	}
}

func TestParseSpaceSpecRangeTokenForms(t *testing.T) {
	cases := []struct {
		in           string
		lo, hi, step string
	}{
		{"1..5", "1", "5", "1"},               // step defaults to 1
		{"0.0..0.5/0.1", "0", "1/2", "1/10"},  // decimals
		{"0..1/2", "0", "1", "2"},             // two tokens: hi, step
		{"0..5/1/10", "0", "5", "1/10"},       // three: integral hi, frac step
		{"0..1/2/1/10", "0", "1/2", "1/10"},   // four: both fractional
		{"1/4..1/2/1/8", "1/4", "1/2", "1/8"}, // fractional lo
		{"-2..2", "-2", "2", "1"},             // signed bounds
		{"0..1/2/1/1", "0", "1/2", "1"},       // canonical frac-hi integral step
	}
	for _, tc := range cases {
		ss, err := ParseSpaceSpec("sweep(fsquad,loss=" + tc.in + ")")
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		rg := ss.Params[0].Range
		if rg.Lo.RatString() != tc.lo || rg.Hi.RatString() != tc.hi || rg.Step.RatString() != tc.step {
			t.Errorf("%q = (%s, %s, %s), want (%s, %s, %s)", tc.in,
				rg.Lo.RatString(), rg.Hi.RatString(), rg.Step.RatString(), tc.lo, tc.hi, tc.step)
		}
	}
}

func TestParseSpaceSpecRejects(t *testing.T) {
	bad := []string{
		"",
		"nsquad(3)",                         // not a sweep
		"sweep",                             // no parens
		"sweep()",                           // no scenario
		"sweep(nsquad",                      // unbalanced
		"sweep(nsquad,3)",                   // positional arg
		"sweep(nsquad,loss=)",               // empty value
		"sweep(nsquad,loss=0..1,loss=0..1)", // duplicate
		"sweep(nsquad,loss=1..0)",           // inverted range
		"sweep(nsquad,loss=0..1/0)",         // zero step
		"sweep(nsquad,loss=0..1..2)",        // two '..'
		"sweep(nsquad,loss=0..1/2/3/4/5)",   // too many tokens
		"sweep(nsquad,loss=0..x)",           // not a number
		"sweep(nsquad,loss=0..1000000/1/1000000)", // over MaxRangeValues
		"sweep(nsquad,(loss)=1)",                  // nested parens
	}
	for _, spec := range bad {
		if _, err := ParseSpaceSpec(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseSpaceSpec(%q) err = %v, want ErrBadSpec", spec, err)
		}
	}
}

func TestResolveSpaceEnumeratesCanonicalInstances(t *testing.T) {
	rs, err := Default().ResolveSpace("sweep(nsquad, loss=0.0..0.5/0.1, n=2)")
	if err != nil {
		t.Fatal(err)
	}
	insts := rs.Instances()
	if len(insts) != 6 {
		t.Fatalf("instances = %d, want 6 (loss 0, 1/10, ..., 1/2)", len(insts))
	}
	wantLoss := []string{"0", "1/10", "1/5", "3/10", "2/5", "1/2"}
	for i, inst := range insts {
		if inst.Assignment["loss"] != wantLoss[i] {
			t.Errorf("instance %d loss = %q, want %q", i, inst.Assignment["loss"], wantLoss[i])
		}
		want := "nsquad(n=2,loss=" + wantLoss[i] + ",improved=false)"
		if inst.Canonical != want {
			t.Errorf("instance %d canonical = %q, want %q", i, inst.Canonical, want)
		}
		// Each canonical spec must itself resolve (and be a fixed point)
		// — it is the engine-cache key the service shares engines under.
		if round, err := Default().Canonical(inst.Canonical); err != nil || round != inst.Canonical {
			t.Errorf("instance %d canonical round trip: %q → (%q, %v)", i, inst.Canonical, round, err)
		}
	}
	if got := rs.Space().Size(); got != 6 {
		t.Errorf("Space().Size() = %d", got)
	}
}

func TestResolveSpaceCanonicalFixedPoint(t *testing.T) {
	specs := []string{
		"sweep(nsquad, loss=0.0..0.5/0.1, n=2)",
		"sweep(fsquad,loss=0..1/2/1/10,improved=true)",
		"sweep(random,seed=1..3,depth=2)",
		"sweep(figure1)", // degenerate one-point space
		"sweep(that,eps=1/20..1/4/1/20)",
	}
	for _, spec := range specs {
		rs, err := Default().ResolveSpace(spec)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
			continue
		}
		canonical := rs.Canonical()
		again, err := Default().ResolveSpace(canonical)
		if err != nil {
			t.Errorf("canonical %q of %q does not resolve: %v", canonical, spec, err)
			continue
		}
		if round := again.Canonical(); round != canonical {
			t.Errorf("canonical not a fixed point: %q → %q → %q", spec, canonical, round)
		}
		if again.Size() != rs.Size() {
			t.Errorf("%q: canonical resolves to %d instances, original to %d", spec, again.Size(), rs.Size())
		}
	}
}

func TestResolveSpaceErrors(t *testing.T) {
	cases := []struct {
		spec string
		want error
	}{
		{"sweep(nosuch,loss=0..1)", ErrUnknownScenario},
		{"sweep(nsquad,bogus=0..1)", ErrBadSpec},    // undeclared param
		{"sweep(nsquad,improved=0..1)", ErrBadSpec}, // bool cannot sweep
		{"sweep(nsquad,n=2..3/1/2)", ErrBadSpec},    // int needs integral step
		{"sweep(random,seed=1..5000)", ErrBadSpec},  // over MaxRangeValues
	}
	for _, tc := range cases {
		if _, err := Default().ResolveSpace(tc.spec); !errors.Is(err, tc.want) {
			t.Errorf("ResolveSpace(%q) err = %v, want %v", tc.spec, err, tc.want)
		}
	}
}

func TestResolveSpaceAssignmentCapCombinatorial(t *testing.T) {
	// Each range is small, but the product exceeds MaxSpaceAssignments.
	_, err := Default().ResolveSpace("sweep(random,seed=1..100,depth=1..10,branch=1..8)")
	if !errors.Is(err, ErrBadSpec) || !strings.Contains(err.Error(), "assignments") {
		t.Fatalf("combinatorial cap err = %v", err)
	}
}

func TestRegisterRejectsSweepNameAndBadExamples(t *testing.T) {
	r := New()
	if err := r.Register(Scenario{Name: "sweep", Doc: "x", Build: nilBuildStub}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("reserved name err = %v", err)
	}
	if err := r.Register(Scenario{Name: "good", Doc: "x", Build: nilBuildStub,
		Sweep: "sweep(other,p=0..1)"}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("mismatched sweep example err = %v", err)
	}
	if err := r.Register(Scenario{Name: "good", Doc: "x", Build: nilBuildStub,
		Sweep: "not a sweep"}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unparseable sweep example err = %v", err)
	}
}

// TestBuiltinSweepExamplesResolve: every advertised sweep example must
// resolve against the registry that advertises it — the catalog can
// never ship a dead example.
func TestBuiltinSweepExamplesResolve(t *testing.T) {
	for _, sc := range Default().Scenarios() {
		if sc.Sweep == "" {
			continue
		}
		rs, err := Default().ResolveSpace(sc.Sweep)
		if err != nil {
			t.Errorf("%s sweep example %q: %v", sc.Name, sc.Sweep, err)
			continue
		}
		if rs.Size() < 2 {
			t.Errorf("%s sweep example %q enumerates %d assignments; examples should sweep", sc.Name, sc.Sweep, rs.Size())
		}
	}
}
