package registry

import (
	"strings"
	"testing"
)

// FuzzParseSpec pins the parser's two safety contracts against
// arbitrary input:
//
//  1. No panic: ParseSpec either errors or returns a well-formed split,
//     for any byte sequence a wire client can send.
//  2. Canonical round-trip: every spec the default registry accepts
//     resolves to a canonical form that (a) itself parses, (b) resolves
//     again, and (c) is a fixed point — Canonical(Canonical(s)) ==
//     Canonical(s). The canonical form is the engine-cache key, so a
//     non-idempotent rendering would split one system across two cache
//     slots.
//
// The seed corpus covers the grammar's edge territory: every argument
// form, whitespace, duplicate and empty args, unbalanced parens,
// rationals in all spellings, and values with embedded '='.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"fsquad",
		"nsquad(5)",
		"nsquad(n=3)",
		"nsquad( 3 , loss = 1/10 )",
		"nsquad(n=3,loss=1/10,improved=false)",
		"random(seed=42,agents=3)",
		"random(seed=-7)",
		"that(p=9/10,eps=1/100)",
		"fsquad()",
		"fsquad(",
		"fsquad)",
		"fsquad(()",
		"fsquad(())",
		"fsquad(,)",
		"fsquad(a=)",
		"fsquad(=b)",
		"fsquad(a=b=c)",
		"fsquad(label=mode=fast)",
		"fsquad(loss=0.25)",
		"fsquad(loss=1e1000000)",
		"fsquad(loss=1/10,loss=1/4)",
		"nsquad(3,n=4)",
		"nsquad(n=3,3)",
		"UPPER(1)",
		"9name",
		"_x(1)",
		"x__y(a_b=c_d)",
		"fsquad(loss=" + strings.Repeat("1", 100) + ")",
		"fsquad\x00(1)",
		"名前(1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	reg := Default()
	f.Fuzz(func(t *testing.T, spec string) {
		// Contract 1: never panic, and a successful parse is well-formed.
		name, pos, named, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if !validIdent(name) {
			t.Fatalf("ParseSpec(%q) accepted invalid name %q", spec, name)
		}
		for _, v := range pos {
			if strings.TrimSpace(v) == "" {
				t.Fatalf("ParseSpec(%q) returned an empty positional value", spec)
			}
		}
		for k, v := range named {
			if !validIdent(k) || v == "" {
				t.Fatalf("ParseSpec(%q) returned bad named arg %q=%q", spec, k, v)
			}
		}

		// Contract 2: accepted-by-registry implies canonical round-trip.
		_, args, err := reg.Resolve(spec)
		if err != nil {
			return
		}
		canonical := args.Canonical()
		if _, _, _, err := ParseSpec(canonical); err != nil {
			t.Fatalf("canonical %q of accepted spec %q does not parse: %v", canonical, spec, err)
		}
		_, again, err := reg.Resolve(canonical)
		if err != nil {
			t.Fatalf("canonical %q of accepted spec %q does not resolve: %v", canonical, spec, err)
		}
		if round := again.Canonical(); round != canonical {
			t.Fatalf("canonical not a fixed point: %q → %q → %q", spec, canonical, round)
		}
	})
}

// FuzzParseSpaceSpec pins the space-spec parser's safety contracts,
// mirroring FuzzParseSpec for the sweep grammar:
//
//  1. No panic: ParseSpaceSpec either errors or returns a well-formed
//     SpaceSpec, for any byte sequence a wire client can send.
//  2. Canonical fixed point: every space the default registry resolves
//     has a canonical rendering that (a) itself parses, (b) resolves
//     again to the same instance count, and (c) is a fixed point —
//     Canonical(Canonical(s)) == Canonical(s). The per-assignment
//     canonical system specs are engine-cache keys, so they must also
//     resolve and round-trip through the plain-spec canonicalizer.
func FuzzParseSpaceSpec(f *testing.F) {
	seeds := []string{
		"",
		"sweep(nsquad)",
		"sweep(nsquad, loss=0.0..0.5/0.1)",
		"sweep(nsquad,loss=0..1/2/1/10,n=2)",
		"sweep(nsquad, loss = 0 .. 1/2 / 1/10 )",
		"sweep(fsquad,loss=0..1/2/1/10,improved=true)",
		"sweep(random,seed=1..5,depth=2)",
		"sweep(that,eps=1/20..1/4/1/20)",
		"sweep(figure1)",
		"sweep(nsquad,n=2..4)",
		"sweep(nsquad,loss=1..0)",
		"sweep(nsquad,loss=0..1/0)",
		"sweep(nsquad,loss=0..1..2)",
		"sweep(nsquad,loss=0..1/2/3/4/5)",
		"sweep(nsquad,loss=-1..-0.5/0.25)",
		"sweep(nsquad,loss=0..1000000000/0.0000001)",
		"sweep()",
		"sweep(nsquad,3)",
		"sweep(nsquad,loss=)",
		"sweep(nsquad,(x)=1)",
		"sweep(UPPER,loss=0..1)",
		"nsquad(3)",
		"sweep(nsquad,loss=0..1,loss=0..1)",
		"sweep(nsquad\x00,loss=0..1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	reg := Default()
	f.Fuzz(func(t *testing.T, spec string) {
		// Contract 1: never panic; a successful parse is well-formed.
		ss, err := ParseSpaceSpec(spec)
		if err != nil {
			return
		}
		if !validIdent(ss.Scenario) {
			t.Fatalf("ParseSpaceSpec(%q) accepted invalid scenario %q", spec, ss.Scenario)
		}
		for _, p := range ss.Params {
			if !validIdent(p.Name) {
				t.Fatalf("ParseSpaceSpec(%q) returned bad param name %q", spec, p.Name)
			}
			if p.Range == nil && p.Value == "" {
				t.Fatalf("ParseSpaceSpec(%q) returned an empty fixed value for %q", spec, p.Name)
			}
			if p.Range != nil {
				if p.Range.Step.Sign() <= 0 {
					t.Fatalf("ParseSpaceSpec(%q) accepted non-positive step for %q", spec, p.Name)
				}
				if p.Range.Lo.Cmp(p.Range.Hi) > 0 {
					t.Fatalf("ParseSpaceSpec(%q) accepted inverted range for %q", spec, p.Name)
				}
			}
		}

		// Contract 2: accepted-by-registry implies canonical fixed point.
		rs, err := reg.ResolveSpace(spec)
		if err != nil {
			return
		}
		canonical := rs.Canonical()
		if _, err := ParseSpaceSpec(canonical); err != nil {
			t.Fatalf("canonical %q of accepted space %q does not parse: %v", canonical, spec, err)
		}
		again, err := reg.ResolveSpace(canonical)
		if err != nil {
			t.Fatalf("canonical %q of accepted space %q does not resolve: %v", canonical, spec, err)
		}
		if round := again.Canonical(); round != canonical {
			t.Fatalf("space canonical not a fixed point: %q → %q → %q", spec, canonical, round)
		}
		if again.Size() != rs.Size() {
			t.Fatalf("canonical %q resolves to %d instances, original %q to %d",
				canonical, again.Size(), spec, rs.Size())
		}
		for _, inst := range rs.Instances() {
			c, err := reg.Canonical(inst.Canonical)
			if err != nil || c != inst.Canonical {
				t.Fatalf("instance canonical %q of space %q: (%q, %v)", inst.Canonical, spec, c, err)
			}
		}
	})
}
