package registry

import (
	"strings"
	"testing"
)

// FuzzParseSpec pins the parser's two safety contracts against
// arbitrary input:
//
//  1. No panic: ParseSpec either errors or returns a well-formed split,
//     for any byte sequence a wire client can send.
//  2. Canonical round-trip: every spec the default registry accepts
//     resolves to a canonical form that (a) itself parses, (b) resolves
//     again, and (c) is a fixed point — Canonical(Canonical(s)) ==
//     Canonical(s). The canonical form is the engine-cache key, so a
//     non-idempotent rendering would split one system across two cache
//     slots.
//
// The seed corpus covers the grammar's edge territory: every argument
// form, whitespace, duplicate and empty args, unbalanced parens,
// rationals in all spellings, and values with embedded '='.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"fsquad",
		"nsquad(5)",
		"nsquad(n=3)",
		"nsquad( 3 , loss = 1/10 )",
		"nsquad(n=3,loss=1/10,improved=false)",
		"random(seed=42,agents=3)",
		"random(seed=-7)",
		"that(p=9/10,eps=1/100)",
		"fsquad()",
		"fsquad(",
		"fsquad)",
		"fsquad(()",
		"fsquad(())",
		"fsquad(,)",
		"fsquad(a=)",
		"fsquad(=b)",
		"fsquad(a=b=c)",
		"fsquad(label=mode=fast)",
		"fsquad(loss=0.25)",
		"fsquad(loss=1e1000000)",
		"fsquad(loss=1/10,loss=1/4)",
		"nsquad(3,n=4)",
		"nsquad(n=3,3)",
		"UPPER(1)",
		"9name",
		"_x(1)",
		"x__y(a_b=c_d)",
		"fsquad(loss=" + strings.Repeat("1", 100) + ")",
		"fsquad\x00(1)",
		"名前(1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	reg := Default()
	f.Fuzz(func(t *testing.T, spec string) {
		// Contract 1: never panic, and a successful parse is well-formed.
		name, pos, named, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if !validIdent(name) {
			t.Fatalf("ParseSpec(%q) accepted invalid name %q", spec, name)
		}
		for _, v := range pos {
			if strings.TrimSpace(v) == "" {
				t.Fatalf("ParseSpec(%q) returned an empty positional value", spec)
			}
		}
		for k, v := range named {
			if !validIdent(k) || v == "" {
				t.Fatalf("ParseSpec(%q) returned bad named arg %q=%q", spec, k, v)
			}
		}

		// Contract 2: accepted-by-registry implies canonical round-trip.
		_, args, err := reg.Resolve(spec)
		if err != nil {
			return
		}
		canonical := args.Canonical()
		if _, _, _, err := ParseSpec(canonical); err != nil {
			t.Fatalf("canonical %q of accepted spec %q does not parse: %v", canonical, spec, err)
		}
		_, again, err := reg.Resolve(canonical)
		if err != nil {
			t.Fatalf("canonical %q of accepted spec %q does not resolve: %v", canonical, spec, err)
		}
		if round := again.Canonical(); round != canonical {
			t.Fatalf("canonical not a fixed point: %q → %q → %q", spec, canonical, round)
		}
	})
}
