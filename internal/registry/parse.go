package registry

import (
	"fmt"
	"strings"
)

// Spec grammar, deliberately tiny:
//
//	spec  := name | name "(" args? ")"
//	args  := arg ("," arg)*
//	arg   := value | name "=" value
//
// Names are lowercase identifiers ([a-z][a-z0-9_]*). Values are any
// non-empty run without "," or ")" — which covers rationals ("1/10",
// "0.25"), integers, booleans and plain strings. Positional arguments
// bind to the scenario's parameters in declared order and must precede
// named ones; whitespace around tokens is ignored.
//
// An argument containing "=" is always parsed as named (the key is the
// run before the FIRST "="), so a string value that itself contains "="
// cannot be passed positionally — write it named, where everything
// after the first "=" belongs to the value: `scn(label=mode=fast)`
// binds label to "mode=fast".

// ParseSpec splits a spec into its scenario name, positional values and
// named values, without consulting any registry — the grammar half of
// Resolve, exported so tooling (and the fuzz harness) can exercise the
// parser directly. For any input it either returns an error or a
// well-formed split; it never panics.
func ParseSpec(spec string) (name string, pos []string, named map[string]string, err error) {
	return parseSpec(spec)
}

// parseSpec splits a spec into its scenario name, positional values and
// named values. Binding against a scenario's declared parameters happens
// separately in bind, so parse errors and unknown-parameter errors stay
// distinguishable.
func parseSpec(spec string) (name string, pos []string, named map[string]string, err error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return "", nil, nil, fmt.Errorf("%w: empty spec", ErrBadSpec)
	}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if !validIdent(s) {
			return "", nil, nil, fmt.Errorf("%w: bad scenario name %q", ErrBadSpec, s)
		}
		return s, nil, nil, nil
	}
	name = strings.TrimSpace(s[:open])
	if !validIdent(name) {
		return "", nil, nil, fmt.Errorf("%w: bad scenario name %q", ErrBadSpec, name)
	}
	if !strings.HasSuffix(s, ")") {
		return "", nil, nil, fmt.Errorf("%w: %q is missing the closing parenthesis", ErrBadSpec, spec)
	}
	body := strings.TrimSpace(s[open+1 : len(s)-1])
	if strings.ContainsAny(body, "()") {
		return "", nil, nil, fmt.Errorf("%w: nested parentheses in %q", ErrBadSpec, spec)
	}
	if body == "" {
		return name, nil, nil, nil
	}
	named = make(map[string]string)
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return "", nil, nil, fmt.Errorf("%w: empty argument in %q", ErrBadSpec, spec)
		}
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			key := strings.TrimSpace(part[:eq])
			val := strings.TrimSpace(part[eq+1:])
			if !validIdent(key) {
				return "", nil, nil, fmt.Errorf("%w: bad parameter name %q in %q", ErrBadSpec, key, spec)
			}
			if val == "" {
				return "", nil, nil, fmt.Errorf("%w: parameter %q has no value in %q", ErrBadSpec, key, spec)
			}
			if _, dup := named[key]; dup {
				return "", nil, nil, fmt.Errorf("%w: parameter %q repeated in %q", ErrBadSpec, key, spec)
			}
			named[key] = val
			continue
		}
		if len(named) > 0 {
			return "", nil, nil, fmt.Errorf("%w: positional argument %q after named arguments in %q",
				ErrBadSpec, part, spec)
		}
		pos = append(pos, part)
	}
	if len(named) == 0 {
		named = nil
	}
	return name, pos, named, nil
}

// validIdent reports whether s is a lowercase identifier.
func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z':
		case c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
