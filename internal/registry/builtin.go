package registry

import (
	"fmt"

	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/randsys"
	"pak/internal/scenarios"
)

// The built-in catalog: every ready-made system of the repository,
// registered under the names ROADMAP and the CLIs use. Default returns
// the shared instance all entry points (CLIs, pakd, the pak facade)
// resolve against.

// maxSquad bounds nsquad's n: the go=1 branch alone has 2^(2(n-1))
// delivery patterns in round 0, so n beyond 6 is too large to unfold in
// a service request.
const maxSquad = 6

// The random scenario's service caps, enforced by its ServeGuard (the
// pakd request path) but not by the builder itself: local
// property-testing workloads keep randsys's full domain, while one wire
// request cannot demand an exponential (or merely enormous linear)
// unfold. Every dimension that multiplies work is individually capped,
// and the cumulative worst-case node count is bounded on top.
const (
	maxRandomDepth  = 12
	maxRandomBranch = 8
	maxRandomAgents = 16
	maxRandomObs    = 64
	maxRandomNodes  = 200_000
)

var defaultRegistry = mustBuiltins()

// Default returns the process-wide registry holding the built-in
// scenarios. Callers may Register additional scenarios on it; New gives
// an isolated registry when that sharing is unwanted.
func Default() *Registry { return defaultRegistry }

// mustBuiltins builds the built-in registry; registration can only fail
// on a malformed declaration, which is a programming error.
func mustBuiltins() *Registry {
	r := New()
	for _, s := range builtins() {
		if err := r.Register(s); err != nil {
			panic(err)
		}
	}
	return r
}

// intArg narrows an int64 parameter to the platform int, erroring when
// the value does not fit — per Args.Int's contract, range checks must
// happen at full width or 32-bit platforms alias huge values onto
// small ones.
func intArg(a Args, name string) (int, error) {
	v := a.Int64(name)
	if int64(int(v)) != v {
		return 0, fmt.Errorf("%w: %s=%d does not fit this platform's int", ErrBadSpec, name, v)
	}
	return int(v), nil
}

// randomServeGuard bounds random's resource demand on the service path.
// Checks run at full width BEFORE any narrowing to int: int(x) on a
// 32-bit platform aliases huge values onto small ones, which would
// dodge these caps entirely.
func randomServeGuard(a Args) error {
	caps := []struct {
		name string
		max  int64
	}{
		{"depth", maxRandomDepth},
		{"branch", maxRandomBranch},
		{"agents", maxRandomAgents},
		{"obs", maxRandomObs},
		{"actiontime", maxRandomDepth},
	}
	for _, c := range caps {
		if v := a.Int64(c.name); v < 0 || v > c.max {
			return fmt.Errorf("%w: random needs 0 ≤ %s ≤ %d per service request, got %d",
				ErrBadSpec, c.name, c.max, v)
		}
	}
	// Cumulative worst-case node count: MaxInitial roots, times branch
	// per level, summed over all depth levels. Depth is already capped,
	// so this loop is bounded even for adversarial specs.
	branch := a.Int64("branch")
	if branch < 1 {
		branch = 1
	}
	level := 2.0 // MaxInitial
	total := level
	for i := int64(0); i < a.Int64("depth"); i++ {
		level *= float64(branch)
		total += level
		if total > maxRandomNodes {
			return fmt.Errorf("%w: random(depth=%d,branch=%d) could unfold beyond %d nodes",
				ErrBadSpec, a.Int64("depth"), branch, maxRandomNodes)
		}
	}
	return nil
}

func builtins() []Scenario {
	lossParam := Param{Name: "loss", Kind: KindRat, Default: "1/10",
		Doc: "per-message loss probability ℓ"}
	improvedParam := Param{Name: "improved", Kind: KindBool, Default: "false",
		Doc: "use the Section 8 refinement (never fire on 'No')"}
	return []Scenario{
		{
			Name:         "fsquad",
			Doc:          "Example 1's two-agent relaxed firing squad over a lossy synchronous channel",
			Construct:    "Example 1; Section 8 when improved=true",
			Params:       []Param{lossParam, improvedParam},
			Sweep:        "sweep(fsquad,loss=0..1/2/1/10)",
			Differential: []string{"fsquad", "fsquad(improved=true)"},
			Build: func(a Args) (*pps.System, error) {
				variant := paper.FSOriginal
				if a.Bool("improved") {
					variant = paper.FSImproved
				}
				return paper.FiringSquad(a.Rat("loss"), variant)
			},
		},
		{
			Name:      "nsquad",
			Doc:       "the n-agent firing squad: a general plus n−1 soldiers over the lossy channel",
			Construct: "Example 1 generalized; closed forms (1−ℓ²)^(n−1) and its Section 8 analogue",
			Params: []Param{
				{Name: "n", Kind: KindInt, Default: "3",
					Doc: fmt.Sprintf("total number of agents including the general (2 ≤ n ≤ %d)", maxSquad)},
				lossParam, improvedParam,
			},
			Sweep:        "sweep(nsquad,loss=0..1/2/1/10)",
			Differential: []string{"nsquad(2)", "nsquad(3,loss=1/4)"},
			Build: func(a Args) (*pps.System, error) {
				// Check at full width before narrowing: int(n) on 32-bit
				// would alias out-of-range values into the valid window.
				n := a.Int64("n")
				if n < 2 || n > maxSquad {
					return nil, fmt.Errorf("%w: nsquad needs 2 ≤ n ≤ %d, got %d", ErrBadSpec, maxSquad, n)
				}
				return scenarios.NFiringSquadSystem(int(n), a.Rat("loss"), a.Bool("improved"))
			},
		},
		{
			Name:         "mutex",
			Doc:          "relaxed mutual exclusion: two requesters, an arbiter over a lossy channel, timeout entry",
			Construct:    "Section 1's mutual-exclusion motivation",
			Params:       []Param{lossParam},
			Sweep:        "sweep(mutex,loss=0..2/5/1/10)",
			Differential: []string{"mutex"},
			Build: func(a Args) (*pps.System, error) {
				return scenarios.MutexSystem(a.Rat("loss"))
			},
		},
		{
			Name:         "consensus",
			Doc:          "bounded randomized binary consensus: uniform bits, one lossy exchange, AND decision rule",
			Construct:    "Section 1's consensus motivation",
			Params:       []Param{lossParam},
			Sweep:        "sweep(consensus,loss=0..2/5/1/10)",
			Differential: []string{"consensus"},
			Build: func(a Args) (*pps.System, error) {
				return scenarios.ConsensusSystem(a.Rat("loss"))
			},
		},
		{
			Name:      "that",
			Doc:       "the pps T-hat(p, ε) where the constraint holds but belief stays pinned at p−ε when acting",
			Construct: "Figure 2 / Theorem 5.2",
			Params: []Param{
				{Name: "p", Kind: KindRat, Default: "9/10", Doc: "constraint threshold p (ε < p < 1)"},
				{Name: "eps", Kind: KindRat, Default: "1/10", Doc: "belief deficit ε (0 < ε < p)"},
			},
			Sweep:        "sweep(that,eps=1/20..1/4/1/20)",
			Differential: []string{"that"},
			Build: func(a Args) (*pps.System, error) {
				return paper.That(a.Rat("p"), a.Rat("eps"))
			},
		},
		{
			Name:         "figure1",
			Doc:          "the mixed-action counterexample where local-state independence fails",
			Construct:    "Figure 1 / Section 4",
			Differential: []string{"figure1"},
			Build: func(a Args) (*pps.System, error) {
				return paper.Figure1()
			},
		},
		{
			Name:      "random",
			Doc:       "a seeded random pps with a designated proper action for agent a0, for property workloads",
			Construct: "the theorems' universal statements, checked over random families",
			Params: []Param{
				{Name: "seed", Kind: KindInt, Default: "1", Doc: "generation seed (deterministic output)"},
				{Name: "agents", Kind: KindInt, Default: "2", Doc: "number of agents"},
				{Name: "depth", Kind: KindInt, Default: "4", Doc: "uniform run length in transitions"},
				{Name: "branch", Kind: KindInt, Default: "3", Doc: "maximum children per internal node"},
				{Name: "obs", Kind: KindInt, Default: "2", Doc: "observation alphabet size (small = richer beliefs)"},
				{Name: "actiontime", Kind: KindInt, Default: "2", Doc: "time at which a0 may perform the designated action"},
				{Name: "det", Kind: KindBool, Default: "false", Doc: "make the designated action deterministic (Lemma 4.3(a) mode)"},
			},
			Sweep:        "sweep(random,seed=1..5)",
			Differential: []string{"random(seed=1)", "random(seed=7,det=true)"},
			Build: func(a Args) (*pps.System, error) {
				// Narrow through intArg so out-of-range values error on
				// 32-bit platforms instead of silently aliasing (the
				// ServeGuard re-checks stricter caps on the service path).
				dims := map[string]int{}
				for _, name := range []string{"agents", "depth", "branch", "obs", "actiontime"} {
					n, err := intArg(a, name)
					if err != nil {
						return nil, err
					}
					dims[name] = n
				}
				return randsys.Generate(randsys.Config{
					Agents:      dims["agents"],
					Depth:       dims["depth"],
					MaxBranch:   dims["branch"],
					MaxInitial:  2,
					ObsAlphabet: dims["obs"],
					ActionTime:  dims["actiontime"],
					DetAction:   a.Bool("det"),
					Seed:        a.Int64("seed"),
				})
			},
			ServeGuard: randomServeGuard,
		},
	}
}
