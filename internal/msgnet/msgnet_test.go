package msgnet

import (
	"errors"
	"testing"

	"pak/internal/protocol"
	"pak/internal/ratutil"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrBadLoss) {
		t.Errorf("New(nil) err = %v", err)
	}
	if _, err := New(ratutil.R(3, 2)); !errors.Is(err, ErrBadLoss) {
		t.Errorf("New(3/2) err = %v", err)
	}
	if _, err := New(ratutil.R(-1, 2)); !errors.Is(err, ErrBadLoss) {
		t.Errorf("New(-1/2) err = %v", err)
	}
	n, err := New(ratutil.R(1, 10))
	if err != nil {
		t.Fatalf("New(1/10): %v", err)
	}
	if !ratutil.Eq(n.Loss(), ratutil.R(1, 10)) {
		t.Errorf("Loss = %v", n.Loss())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(bad) did not panic")
		}
	}()
	MustNew(ratutil.R(2, 1))
}

func TestNewCopiesLoss(t *testing.T) {
	loss := ratutil.R(1, 10)
	n := MustNew(loss)
	loss.SetInt64(1)
	if !ratutil.Eq(n.Loss(), ratutil.R(1, 10)) {
		t.Fatal("Net aliased caller's loss value")
	}
}

func twoMsgs() []Msg {
	return []Msg{
		{From: 0, To: 1, Payload: "m1"},
		{From: 0, To: 1, Payload: "m2"},
	}
}

func TestPatternsTwoMessages(t *testing.T) {
	// Paper Example 1: loss 1/10 per message, two messages. The four
	// patterns have probabilities 81/100, 9/100, 9/100, 1/100.
	n := MustNew(ratutil.R(1, 10))
	pats := n.Patterns(twoMsgs())
	if len(pats) != 4 {
		t.Fatalf("got %d patterns, want 4", len(pats))
	}
	want := map[string]string{
		"deliver:11": "81/100",
		"deliver:10": "9/100",
		"deliver:01": "9/100",
		"deliver:00": "1/100",
	}
	total := ratutil.Zero()
	for _, p := range pats {
		w, ok := want[p.Value]
		if !ok {
			t.Fatalf("unexpected pattern %q", p.Value)
		}
		if p.Pr.RatString() != w {
			t.Errorf("pattern %q pr = %s, want %s", p.Value, p.Pr.RatString(), w)
		}
		total = ratutil.Add(total, p.Pr)
	}
	if !ratutil.IsOne(total) {
		t.Fatalf("patterns sum to %v", total)
	}
}

func TestPatternsNoMessages(t *testing.T) {
	n := MustNew(ratutil.R(1, 10))
	pats := n.Patterns(nil)
	if len(pats) != 1 || pats[0].Value != "deliver:" || !ratutil.IsOne(pats[0].Pr) {
		t.Fatalf("no-message patterns = %v", pats)
	}
}

func TestPatternsDegenerateLoss(t *testing.T) {
	// loss = 0: only the all-delivered pattern (zero-probability patterns
	// must be omitted to satisfy the pps positivity requirement).
	perfect := MustNew(ratutil.Zero())
	pats := perfect.Patterns(twoMsgs())
	if len(pats) != 1 || pats[0].Value != "deliver:11" {
		t.Fatalf("perfect patterns = %v", pats)
	}
	// loss = 1: only the all-lost pattern.
	dead := MustNew(ratutil.One())
	pats = dead.Patterns(twoMsgs())
	if len(pats) != 1 || pats[0].Value != "deliver:00" {
		t.Fatalf("dead patterns = %v", pats)
	}
	// Degenerate patterns are valid protocol distributions.
	if err := protocol.ValidateDist(pats); err != nil {
		t.Fatalf("ValidateDist: %v", err)
	}
}

func TestDelivered(t *testing.T) {
	ok, err := Delivered("deliver:10", 0)
	if err != nil || !ok {
		t.Errorf("bit 0: %v,%v", ok, err)
	}
	ok, err = Delivered("deliver:10", 1)
	if err != nil || ok {
		t.Errorf("bit 1: %v,%v", ok, err)
	}
	if _, err := Delivered("bogus", 0); !errors.Is(err, ErrBadPattern) {
		t.Errorf("bogus pattern err = %v", err)
	}
	if _, err := Delivered("deliver:10", 5); !errors.Is(err, ErrBadPattern) {
		t.Errorf("out-of-range err = %v", err)
	}
	if _, err := Delivered("deliver:1x", 1); !errors.Is(err, ErrBadPattern) {
		t.Errorf("bad bit err = %v", err)
	}
}

func TestInbox(t *testing.T) {
	msgs := []Msg{
		{From: 0, To: 1, Payload: "a"},
		{From: 1, To: 0, Payload: "b"},
		{From: 0, To: 1, Payload: "c"},
	}
	inbox, err := Inbox(msgs, "deliver:101", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox) != 2 || inbox[0] != "a" || inbox[1] != "c" {
		t.Fatalf("inbox = %v, want [a c]", inbox)
	}
	inbox, err = Inbox(msgs, "deliver:101", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox) != 0 {
		t.Fatalf("agent 0 inbox = %v, want empty (its message was lost)", inbox)
	}
	if _, err := Inbox(msgs, "nope", 1); !errors.Is(err, ErrBadPattern) {
		t.Fatalf("bad pattern err = %v", err)
	}
}

func TestIsPatternAndString(t *testing.T) {
	if !IsPattern("deliver:01") || IsPattern("other") {
		t.Error("IsPattern wrong")
	}
	m := Msg{From: 0, To: 1, Payload: "hi"}
	if got := m.String(); got != `0→1:"hi"` {
		t.Errorf("Msg.String = %q", got)
	}
}
