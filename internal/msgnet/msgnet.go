// Package msgnet implements the synchronous lossy message network used by
// the paper's Example 1 (the relaxed firing squad): each message sent in a
// round is, independently of all others, delivered within the round with
// probability 1−loss and lost with probability loss; no message is
// delivered late.
//
// The network is expressed as an environment protocol in the sense of
// package protocol: given the multiset of messages sent in a round, the
// environment's mixed action is a distribution over delivery patterns,
// where a pattern fixes for each message whether it was delivered. Pattern
// probabilities are products of the per-message probabilities; patterns
// with probability zero (when loss is 0 or 1) are omitted, matching the
// pps requirement that all transition probabilities be positive.
package msgnet

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"pak/internal/protocol"
	"pak/internal/ratutil"
)

// ErrBadLoss indicates a loss probability outside [0, 1].
var ErrBadLoss = errors.New("msgnet: loss probability must be in [0,1]")

// ErrBadPattern indicates a malformed delivery-pattern action string.
var ErrBadPattern = errors.New("msgnet: malformed delivery pattern")

// patternPrefix tags environment actions produced by this package.
const patternPrefix = "deliver:"

// Msg is a message in flight during one round.
type Msg struct {
	// From and To are agent indices.
	From, To int
	// Payload is the message content.
	Payload string
}

// String renders the message for debugging.
func (m Msg) String() string { return fmt.Sprintf("%d→%d:%q", m.From, m.To, m.Payload) }

// Net is a lossy synchronous network with a fixed per-message loss
// probability.
type Net struct {
	loss *big.Rat
}

// New returns a network losing each message independently with the given
// probability.
func New(loss *big.Rat) (Net, error) {
	if loss == nil || !ratutil.IsProb(loss) {
		return Net{}, fmt.Errorf("%w: %v", ErrBadLoss, loss)
	}
	return Net{loss: ratutil.Copy(loss)}, nil
}

// MustNew is New, panicking on error; for constants in tests and examples.
func MustNew(loss *big.Rat) Net {
	n, err := New(loss)
	if err != nil {
		panic(err)
	}
	return n
}

// Loss returns the per-message loss probability.
func (n Net) Loss() *big.Rat { return ratutil.Copy(n.loss) }

// Patterns returns the environment's mixed action for a round in which the
// given messages are sent: a distribution over delivery-pattern action
// strings. With no messages it returns the single empty pattern. Patterns
// of probability zero are omitted.
func (n Net) Patterns(msgs []Msg) []protocol.Weighted[string] {
	deliverPr := ratutil.OneMinus(n.loss)
	var out []protocol.Weighted[string]
	mask := make([]byte, len(msgs))
	var rec func(i int, pr *big.Rat)
	rec = func(i int, pr *big.Rat) {
		if pr.Sign() == 0 {
			return
		}
		if i == len(msgs) {
			out = append(out, protocol.W(patternPrefix+string(mask), ratutil.Copy(pr)))
			return
		}
		mask[i] = '1'
		rec(i+1, ratutil.Mul(pr, deliverPr))
		mask[i] = '0'
		rec(i+1, ratutil.Mul(pr, n.loss))
	}
	rec(0, ratutil.One())
	return out
}

// Delivered reports whether message index i was delivered under the given
// pattern action string.
func Delivered(envAct string, i int) (bool, error) {
	bits, ok := strings.CutPrefix(envAct, patternPrefix)
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrBadPattern, envAct)
	}
	if i < 0 || i >= len(bits) {
		return false, fmt.Errorf("%w: index %d in pattern of %d messages", ErrBadPattern, i, len(bits))
	}
	switch bits[i] {
	case '1':
		return true, nil
	case '0':
		return false, nil
	default:
		return false, fmt.Errorf("%w: bit %q", ErrBadPattern, bits[i])
	}
}

// Inbox returns the payloads delivered to agent `to` under the pattern,
// in send order.
func Inbox(msgs []Msg, envAct string, to int) ([]string, error) {
	var inbox []string
	for i, m := range msgs {
		if m.To != to {
			continue
		}
		ok, err := Delivered(envAct, i)
		if err != nil {
			return nil, err
		}
		if ok {
			inbox = append(inbox, m.Payload)
		}
	}
	return inbox, nil
}

// IsPattern reports whether envAct is a delivery pattern produced by this
// package (useful when an environment mixes network and other actions).
func IsPattern(envAct string) bool { return strings.HasPrefix(envAct, patternPrefix) }
