package encode

import (
	"errors"
	"testing"

	"pak/internal/core"
	"pak/internal/epistemic"
	"pak/internal/logic"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

func TestRoundTripFiringSquad(t *testing.T) {
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(sys)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	// Structural equality: the Dump strings coincide (same node order,
	// probabilities, states and actions).
	if sys.Dump() != back.Dump() {
		t.Fatal("round trip changed the system")
	}
	// Semantic spot check: the paper's headline number survives.
	e := core.New(back)
	mu, err := e.ConstraintProb(paper.FSBothFire(), paper.Alice, paper.ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(mu, ratutil.R(99, 100)) {
		t.Fatalf("µ after round trip = %v", mu)
	}
}

func TestRoundTripThat(t *testing.T) {
	sys, err := paper.That(ratutil.R(9, 10), ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(sys)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Dump() != back.Dump() {
		t.Fatal("round trip changed the system")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"not json", `{{{`},
		{"no agents", `{"agents":[],"nodes":[]}`},
		{"bad probability", `{"agents":["i"],"nodes":[{"id":1,"parent":0,"pr":"nope","locals":["l"]}]}`},
		{"unknown parent", `{"agents":["i"],"nodes":[{"id":1,"parent":5,"pr":"1","locals":["l"]}]}`},
		{"duplicate id", `{"agents":["i"],"nodes":[
			{"id":1,"parent":0,"pr":"1/2","locals":["l"]},
			{"id":1,"parent":0,"pr":"1/2","locals":["l2"]}]}`},
		{"invalid system", `{"agents":["i"],"nodes":[{"id":1,"parent":0,"pr":"1/2","locals":["l"]}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal([]byte(tt.in)); !errors.Is(err, ErrBadDocument) {
				t.Fatalf("err = %v, want ErrBadDocument", err)
			}
		})
	}
}

func TestParseFactOperators(t *testing.T) {
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	// Find a run where both fire (go=1, Bob got, at t=2).
	bothJSON := `{"op":"and","args":[
		{"op":"does","agent":"Alice","action":"fire"},
		{"op":"does","agent":"Bob","action":"fire"}]}`
	f, err := ParseFact([]byte(bothJSON))
	if err != nil {
		t.Fatal(err)
	}
	// It should agree with the native fact at every point.
	native := paper.FSBothFire()
	for r := 0; r < sys.NumRuns(); r++ {
		for tt := 0; tt < sys.RunLen(pps.RunID(r)); tt++ {
			if f.Holds(sys, pps.RunID(r), tt) != native.Holds(sys, pps.RunID(r), tt) {
				t.Fatalf("parsed fact disagrees with native at (%d,%d)", r, tt)
			}
		}
	}
}

func TestParseFactTable(t *testing.T) {
	valid := []string{
		`{"op":"true"}`,
		`{"op":"false"}`,
		`{"op":"does","agent":"a","action":"x"}`,
		`{"op":"performed","agent":"a","action":"x"}`,
		`{"op":"localIs","agent":"a","local":"l"}`,
		`{"op":"localContains","agent":"a","substr":"s"}`,
		`{"op":"envIs","env":"e"}`,
		`{"op":"timeIs","time":3}`,
		`{"op":"not","arg":{"op":"true"}}`,
		`{"op":"sometime","arg":{"op":"true"}}`,
		`{"op":"always","arg":{"op":"true"}}`,
		`{"op":"and","args":[{"op":"true"},{"op":"false"}]}`,
		`{"op":"or","args":[]}`,
		`{"op":"implies","args":[{"op":"true"},{"op":"false"}]}`,
		`{"op":"iff","args":[{"op":"true"},{"op":"true"}]}`,
	}
	for _, in := range valid {
		if _, err := ParseFact([]byte(in)); err != nil {
			t.Errorf("ParseFact(%s) = %v", in, err)
		}
	}
	invalid := []string{
		`not json`,
		`{"op":"frobnicate"}`,
		`{"op":"does","agent":"a"}`,
		`{"op":"performed","action":"x"}`,
		`{"op":"localIs"}`,
		`{"op":"localContains","agent":"a"}`,
		`{"op":"not"}`,
		`{"op":"implies","args":[{"op":"true"}]}`,
		`{"op":"not","arg":{"op":"bogus"}}`,
	}
	for _, in := range invalid {
		if _, err := ParseFact([]byte(in)); !errors.Is(err, ErrBadFact) {
			t.Errorf("ParseFact(%s) err = %v, want ErrBadFact", in, err)
		}
	}
}

func TestParseQuery(t *testing.T) {
	q, f, err := ParseQuery([]byte(`{
		"agent": "Alice",
		"action": "fire",
		"threshold": "95/100",
		"fact": {"op":"does","agent":"Bob","action":"fire"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if q.Agent != "Alice" || q.Action != "fire" || q.Threshold != "95/100" {
		t.Fatalf("query = %+v", q)
	}
	if f == nil || f.String() != "does_Bob(fire)" {
		t.Fatalf("fact = %v", f)
	}

	invalid := []string{
		`nope`,
		`{"action":"fire","fact":{"op":"true"}}`,
		`{"agent":"A","fact":{"op":"true"}}`,
		`{"agent":"A","action":"x"}`,
		`{"agent":"A","action":"x","fact":{"op":"bogus"}}`,
	}
	for _, in := range invalid {
		if _, _, err := ParseQuery([]byte(in)); !errors.Is(err, ErrBadFact) {
			t.Errorf("ParseQuery(%s) err = %v, want ErrBadFact", in, err)
		}
	}
}

func TestParseFactEpistemic(t *testing.T) {
	sys, err := paper.That(ratutil.R(9, 10), ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	// B_i^{9/10}(bit=1) holds at t1 only in the revealing run 2.
	f, err := ParseFact([]byte(`{"op":"believes","agent":"i","p":"9/10",
		"arg":{"op":"localContains","agent":"j","substr":"bit=1"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Holds(sys, 1, 1) || !f.Holds(sys, 2, 1) {
		t.Fatal("parsed believes fact has wrong semantics")
	}
	k, err := ParseFact([]byte(`{"op":"knows","agent":"j",
		"arg":{"op":"localContains","agent":"j","substr":"bit=1"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !k.Holds(sys, 1, 0) || k.Holds(sys, 0, 0) {
		t.Fatal("parsed knows fact has wrong semantics")
	}

	invalid := []string{
		`{"op":"believes","p":"1/2","arg":{"op":"true"}}`,             // no agent
		`{"op":"believes","agent":"i","arg":{"op":"true"}}`,           // no p
		`{"op":"believes","agent":"i","p":"3/2","arg":{"op":"true"}}`, // p out of range
		`{"op":"believes","agent":"i","p":"1/2"}`,                     // no arg
		`{"op":"knows","arg":{"op":"true"}}`,                          // no agent
		`{"op":"knows","agent":"i"}`,                                  // no arg
	}
	for _, in := range invalid {
		if _, err := ParseFact([]byte(in)); !errors.Is(err, ErrBadFact) {
			t.Errorf("ParseFact(%s) err = %v, want ErrBadFact", in, err)
		}
	}
}

// TestFactMarshalRoundTrip marshals every structural fact constructor,
// parses the document back, and requires the re-marshalled bytes and the
// rendered fact to be identical.
func TestFactMarshalRoundTrip(t *testing.T) {
	facts := []logic.Fact{
		logic.True(),
		logic.False(),
		logic.Does("a", "x"),
		logic.Performed("a", "x"),
		logic.LocalIs("a", "l0"),
		logic.LocalContains("a", "o1"),
		logic.EnvIs("e"),
		logic.TimeIs(2),
		logic.Not(logic.Does("a", "x")),
		logic.And(logic.Does("a", "x"), logic.EnvIs("e")),
		logic.Or(logic.Does("a", "x"), logic.Does("b", "y")),
		logic.Implies(logic.Does("a", "x"), logic.EnvIs("e")),
		logic.Iff(logic.Does("a", "x"), logic.EnvIs("e")),
		logic.Sometime(logic.Does("a", "x")),
		logic.Always(logic.EnvIs("e")),
		logic.Once(logic.Does("a", "x")),
		logic.SoFar(logic.EnvIs("e")),
		logic.Eventually(logic.Does("a", "x")),
		logic.Henceforth(logic.EnvIs("e")),
		logic.AtTime(1, logic.Does("a", "x")),
		epistemic.Believes("a", ratutil.R(9, 10), logic.Does("b", "y")),
		epistemic.Knows("a", logic.EnvIs("e")),
		epistemic.MutualBelief([]string{"a", "b"}, ratutil.R(1, 2), logic.EnvIs("e"), 2),
	}
	for i, f := range facts {
		data, err := MarshalFact(f)
		if err != nil {
			t.Fatalf("fact %d (%s): marshal: %v", i, f, err)
		}
		back, err := ParseFact(data)
		if err != nil {
			t.Fatalf("fact %d (%s): parse: %v", i, f, err)
		}
		if back.String() != f.String() {
			t.Errorf("fact %d: round-trip rendered %q, want %q", i, back.String(), f.String())
		}
		again, err := MarshalFact(back)
		if err != nil {
			t.Fatalf("fact %d (%s): re-marshal: %v", i, f, err)
		}
		if string(again) != string(data) {
			t.Errorf("fact %d (%s): document drift:\n%s\nvs\n%s", i, f, data, again)
		}
	}
}

// TestMarshalFactOpaque pins the opaque-predicate refusal.
func TestMarshalFactOpaque(t *testing.T) {
	opaque := []logic.Fact{
		logic.Atom("a", func(*pps.System, pps.RunID, int) bool { return true }),
		logic.LocalPred("a", "p", func(string) bool { return true }),
		logic.EnvPred("p", func(string) bool { return true }),
		logic.And(logic.True(), logic.EnvPred("p", func(string) bool { return true })),
		epistemic.Knows("a", logic.Atom("a", func(*pps.System, pps.RunID, int) bool { return true })),
	}
	for i, f := range opaque {
		if _, err := MarshalFact(f); !errors.Is(err, ErrOpaqueFact) {
			t.Errorf("fact %d (%s): err = %v, want ErrOpaqueFact", i, f, err)
		}
	}
}
