// Package encode provides a JSON representation of purely probabilistic
// systems and of facts, so systems can be stored, exchanged and analyzed
// by the command-line tools.
//
// A system document lists its agents and its non-root nodes. Node ids are
// dense and parents precede children; probabilities are exact rational
// strings ("1/2", "81/100"). A fact document is a small expression tree
// mirroring package logic's combinators.
package encode

import (
	"encoding/json"
	"errors"
	"fmt"

	"pak/internal/epistemic"
	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// Sentinel errors returned (wrapped) by this package.
var (
	// ErrBadDocument indicates malformed system JSON.
	ErrBadDocument = errors.New("encode: malformed system document")
	// ErrBadFact indicates malformed fact JSON.
	ErrBadFact = errors.New("encode: malformed fact document")
)

// nodeDoc is the JSON form of one tree node.
type nodeDoc struct {
	// ID is the node's identifier; ids are dense, start at 1 and a parent
	// always precedes its children.
	ID int `json:"id"`
	// Parent is the parent's id; 0 denotes the root λ.
	Parent int `json:"parent"`
	// Pr is the edge probability as an exact rational string.
	Pr string `json:"pr"`
	// Env is the environment component of the global state.
	Env string `json:"env,omitempty"`
	// Locals holds one local state per agent.
	Locals []string `json:"locals"`
	// Acts holds the joint action that produced this state (absent for
	// initial states).
	Acts []string `json:"acts,omitempty"`
	// EnvAct is the environment action that produced this state.
	EnvAct string `json:"envAct,omitempty"`
}

// systemDoc is the JSON form of a system.
type systemDoc struct {
	Agents []string  `json:"agents"`
	Nodes  []nodeDoc `json:"nodes"`
}

// Marshal renders sys as indented JSON.
func Marshal(sys *pps.System) ([]byte, error) {
	doc := systemDoc{Agents: sys.Agents()}
	for id := pps.NodeID(1); int(id) < sys.NumNodes(); id++ {
		doc.Nodes = append(doc.Nodes, nodeDoc{
			ID:     int(id),
			Parent: int(sys.ParentOf(id)),
			Pr:     ratutil.String(sys.EdgeProb(id)),
			Env:    sys.EnvOf(id),
			Locals: sys.LocalsOf(id),
			Acts:   sys.ActsOf(id),
			EnvAct: sys.EnvActOf(id),
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("encode.Marshal: %w", err)
	}
	return out, nil
}

// Unmarshal parses a system document and rebuilds the validated System.
func Unmarshal(data []byte) (*pps.System, error) {
	var doc systemDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	if len(doc.Agents) == 0 {
		return nil, fmt.Errorf("%w: no agents", ErrBadDocument)
	}
	b := pps.NewBuilder(doc.Agents...)
	// idMap maps document ids to builder NodeIDs; the root is 0 in both.
	idMap := map[int]pps.NodeID{0: pps.Root}
	for _, n := range doc.Nodes {
		pr, err := ratutil.Parse(n.Pr)
		if err != nil {
			return nil, fmt.Errorf("%w: node %d: %v", ErrBadDocument, n.ID, err)
		}
		parent, ok := idMap[n.Parent]
		if !ok {
			return nil, fmt.Errorf("%w: node %d references unknown parent %d (parents must precede children)",
				ErrBadDocument, n.ID, n.Parent)
		}
		if _, dup := idMap[n.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate node id %d", ErrBadDocument, n.ID)
		}
		step := pps.Step{Pr: pr, Env: n.Env, Locals: n.Locals, Acts: n.Acts, EnvAct: n.EnvAct}
		var id pps.NodeID
		if parent == pps.Root {
			id = b.Init(pr, n.Env, n.Locals...)
		} else {
			id = b.Child(parent, step)
		}
		idMap[n.ID] = id
	}
	sys, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	return sys, nil
}

// factDoc is the JSON expression form of a fact.
type factDoc struct {
	Op     string            `json:"op"`
	Agent  string            `json:"agent,omitempty"`
	Action string            `json:"action,omitempty"`
	Local  string            `json:"local,omitempty"`
	Substr string            `json:"substr,omitempty"`
	Env    string            `json:"env,omitempty"`
	Time   int               `json:"time,omitempty"`
	P      string            `json:"p,omitempty"`
	Arg    json.RawMessage   `json:"arg,omitempty"`
	Args   []json.RawMessage `json:"args,omitempty"`
}

// ParseFact parses a fact expression document into a logic.Fact.
//
// Supported operators:
//
//	{"op":"true"} / {"op":"false"}
//	{"op":"does","agent":A,"action":X}
//	{"op":"performed","agent":A,"action":X}
//	{"op":"localIs","agent":A,"local":L}
//	{"op":"localContains","agent":A,"substr":S}
//	{"op":"envIs","env":E}
//	{"op":"timeIs","time":T}
//	{"op":"not","arg":F} / {"op":"sometime","arg":F} / {"op":"always","arg":F}
//	{"op":"once","arg":F} / {"op":"soFar","arg":F}
//	{"op":"eventually","arg":F} / {"op":"henceforth","arg":F}
//	{"op":"atTime","time":T,"arg":F}
//	{"op":"and","args":[F...]} / {"op":"or","args":[F...]}
//	{"op":"implies","args":[P,Q]} / {"op":"iff","args":[P,Q]}
//	{"op":"believes","agent":A,"p":"9/10","arg":F}  (B_A^p(F))
//	{"op":"knows","agent":A,"arg":F}                (K_A(F))
func ParseFact(data []byte) (logic.Fact, error) {
	var doc factDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFact, err)
	}
	parseArg := func() (logic.Fact, error) {
		if doc.Arg == nil {
			return nil, fmt.Errorf("%w: op %q requires \"arg\"", ErrBadFact, doc.Op)
		}
		return ParseFact(doc.Arg)
	}
	parseArgs := func(exact int) ([]logic.Fact, error) {
		if exact >= 0 && len(doc.Args) != exact {
			return nil, fmt.Errorf("%w: op %q requires exactly %d args", ErrBadFact, doc.Op, exact)
		}
		out := make([]logic.Fact, len(doc.Args))
		for i, raw := range doc.Args {
			f, err := ParseFact(raw)
			if err != nil {
				return nil, err
			}
			out[i] = f
		}
		return out, nil
	}
	needAgentAction := func() error {
		if doc.Agent == "" || doc.Action == "" {
			return fmt.Errorf("%w: op %q requires agent and action", ErrBadFact, doc.Op)
		}
		return nil
	}
	switch doc.Op {
	case "true":
		return logic.True(), nil
	case "false":
		return logic.False(), nil
	case "does":
		if err := needAgentAction(); err != nil {
			return nil, err
		}
		return logic.Does(doc.Agent, doc.Action), nil
	case "performed":
		if err := needAgentAction(); err != nil {
			return nil, err
		}
		return logic.Performed(doc.Agent, doc.Action), nil
	case "localIs":
		if doc.Agent == "" {
			return nil, fmt.Errorf("%w: localIs requires agent", ErrBadFact)
		}
		return logic.LocalIs(doc.Agent, doc.Local), nil
	case "localContains":
		if doc.Agent == "" || doc.Substr == "" {
			return nil, fmt.Errorf("%w: localContains requires agent and substr", ErrBadFact)
		}
		return logic.LocalContains(doc.Agent, doc.Substr), nil
	case "envIs":
		return logic.EnvIs(doc.Env), nil
	case "timeIs":
		return logic.TimeIs(doc.Time), nil
	case "not":
		f, err := parseArg()
		if err != nil {
			return nil, err
		}
		return logic.Not(f), nil
	case "sometime":
		f, err := parseArg()
		if err != nil {
			return nil, err
		}
		return logic.Sometime(f), nil
	case "always":
		f, err := parseArg()
		if err != nil {
			return nil, err
		}
		return logic.Always(f), nil
	case "once":
		f, err := parseArg()
		if err != nil {
			return nil, err
		}
		return logic.Once(f), nil
	case "soFar":
		f, err := parseArg()
		if err != nil {
			return nil, err
		}
		return logic.SoFar(f), nil
	case "eventually":
		f, err := parseArg()
		if err != nil {
			return nil, err
		}
		return logic.Eventually(f), nil
	case "henceforth":
		f, err := parseArg()
		if err != nil {
			return nil, err
		}
		return logic.Henceforth(f), nil
	case "atTime":
		f, err := parseArg()
		if err != nil {
			return nil, err
		}
		return logic.AtTime(doc.Time, f), nil
	case "and":
		fs, err := parseArgs(-1)
		if err != nil {
			return nil, err
		}
		return logic.And(fs...), nil
	case "or":
		fs, err := parseArgs(-1)
		if err != nil {
			return nil, err
		}
		return logic.Or(fs...), nil
	case "implies":
		fs, err := parseArgs(2)
		if err != nil {
			return nil, err
		}
		return logic.Implies(fs[0], fs[1]), nil
	case "iff":
		fs, err := parseArgs(2)
		if err != nil {
			return nil, err
		}
		return logic.Iff(fs[0], fs[1]), nil
	case "believes":
		if doc.Agent == "" {
			return nil, fmt.Errorf("%w: believes requires agent", ErrBadFact)
		}
		p, perr := ratutil.Parse(doc.P)
		if perr != nil || !ratutil.IsProb(p) {
			return nil, fmt.Errorf("%w: believes requires p in [0,1], got %q", ErrBadFact, doc.P)
		}
		f, err := parseArg()
		if err != nil {
			return nil, err
		}
		return epistemic.Believes(doc.Agent, p, f), nil
	case "knows":
		if doc.Agent == "" {
			return nil, fmt.Errorf("%w: knows requires agent", ErrBadFact)
		}
		f, err := parseArg()
		if err != nil {
			return nil, err
		}
		return epistemic.Knows(doc.Agent, f), nil
	default:
		return nil, fmt.Errorf("%w: unknown op %q", ErrBadFact, doc.Op)
	}
}

// Query is a full analysis request for the pakcheck tool: a probabilistic
// constraint µ(φ@α | α) ≥ p together with the belief analyses to run.
type Query struct {
	// Agent and Action identify the proper action α.
	Agent  string `json:"agent"`
	Action string `json:"action"`
	// Fact is the condition φ as a fact expression.
	Fact json.RawMessage `json:"fact"`
	// Threshold is the constraint threshold p as a rational string
	// (optional; empty means only report the measured values).
	Threshold string `json:"threshold,omitempty"`
}

// ParseQuery parses a Query document and resolves its fact.
func ParseQuery(data []byte) (Query, logic.Fact, error) {
	var q Query
	if err := json.Unmarshal(data, &q); err != nil {
		return Query{}, nil, fmt.Errorf("%w: %v", ErrBadFact, err)
	}
	if q.Agent == "" || q.Action == "" {
		return Query{}, nil, fmt.Errorf("%w: query requires agent and action", ErrBadFact)
	}
	if len(q.Fact) == 0 {
		return Query{}, nil, fmt.Errorf("%w: query requires a fact", ErrBadFact)
	}
	f, err := ParseFact(q.Fact)
	if err != nil {
		return Query{}, nil, err
	}
	return q, f, nil
}

// ErrOpaqueFact indicates a fact that cannot be serialized because it
// (or a subfact) is an opaque Go predicate (logic.Atom, LocalPred,
// EnvPred).
var ErrOpaqueFact = errors.New("encode: fact contains an opaque predicate and cannot be serialized")

// specToDoc converts a structural fact spec to its JSON document form.
func specToDoc(s logic.FactSpec) (factDoc, error) {
	doc := factDoc{
		Op:     s.Op,
		Agent:  s.Agent,
		Action: s.Action,
		Local:  s.Local,
		Substr: s.Substr,
		Env:    s.Env,
		Time:   s.Time,
		P:      s.P,
	}
	if s.Arg != nil {
		argDoc, err := specToDoc(*s.Arg)
		if err != nil {
			return factDoc{}, err
		}
		raw, err := json.Marshal(argDoc)
		if err != nil {
			return factDoc{}, fmt.Errorf("encode.MarshalFact: %w", err)
		}
		doc.Arg = raw
	}
	for _, arg := range s.Args {
		argDoc, err := specToDoc(arg)
		if err != nil {
			return factDoc{}, err
		}
		raw, err := json.Marshal(argDoc)
		if err != nil {
			return factDoc{}, fmt.Errorf("encode.MarshalFact: %w", err)
		}
		doc.Args = append(doc.Args, raw)
	}
	return doc, nil
}

// MarshalFact renders a fact as a JSON expression document, the inverse
// of ParseFact. Facts built from the structural combinators (everything
// except logic.Atom, LocalPred and EnvPred) serialize; opaque predicates
// return ErrOpaqueFact.
func MarshalFact(f logic.Fact) ([]byte, error) {
	spec, ok := logic.SpecOf(f)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrOpaqueFact, f)
	}
	doc, err := specToDoc(spec)
	if err != nil {
		return nil, err
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("encode.MarshalFact: %w", err)
	}
	return out, nil
}
