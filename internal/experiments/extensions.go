package experiments

import (
	"fmt"
	"math/big"

	"pak/internal/commonbelief"
	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// Extension experiments: results the paper implies through its related
// work (Halpern–Tuttle's coordinated attack setting, Fischer–Zuck's
// average-belief observation, the Bayesian-updating view of posteriors)
// made executable.

// E11CommonKnowledge contrasts deterministic common knowledge with common
// p-belief on Example 1's system: over the lossy channel joint firing is
// never common knowledge at the firing time (the coordinated-attack
// impossibility), while common p-belief is attained; a lossless channel
// restores common knowledge.
func E11CommonKnowledge() (Result, error) {
	res := Result{
		ID:     "E11",
		Title:  "Coordinated attack: common knowledge vs common p-belief",
		Source: "Example 1 / related work [24, 29] (derived)",
	}
	group := []pps.AgentID{0, 1}

	analyze := func(loss string) (ckCount, depth, cbCount int, err error) {
		sys, err := paper.FiringSquad(ratutil.MustParse(loss), paper.FSOriginal)
		if err != nil {
			return 0, 0, 0, err
		}
		slice, err := commonbelief.NewSlice(sys, 2)
		if err != nil {
			return 0, 0, 0, err
		}
		both := logic.RunsSatisfying(sys, logic.Sometime(paper.FSBothFire()))
		ck, err := slice.CommonKnowledge(group, both)
		if err != nil {
			return 0, 0, 0, err
		}
		d, _, err := slice.KnowledgeDepth(group, both, 16)
		if err != nil {
			return 0, 0, 0, err
		}
		cb, err := slice.CommonP(group, both, ratutil.R(1, 2))
		if err != nil {
			return 0, 0, 0, err
		}
		return ck.Count(), d, cb.Count(), nil
	}

	ck, depth, cb, err := analyze("1/10")
	if err != nil {
		return Result{}, err
	}
	res.addBool("lossy: common knowledge of joint firing unattainable", "true", ck == 0, true)
	res.Rows = append(res.Rows, Row{
		Quantity: "lossy: levels of 'everyone knows' attained",
		Paper:    "1 (derived)",
		Measured: fmt.Sprintf("%d", depth),
		Match:    depth == 1,
	})
	res.addBool("lossy: common 1/2-belief attainable", "true", cb > 0, true)

	ck, _, _, err = analyze("0")
	if err != nil {
		return Result{}, err
	}
	res.addBool("lossless: common knowledge restored", "true", ck > 0, true)
	return res, nil
}

// E12Martingale verifies the Bayesian-updating martingale: for a fact
// about runs, the prior-weighted average of an agent's posterior belief is
// constant over time and equals the prior probability of the fact —
// checked exactly on T-hat (fact "bit=1", prior p) and on FS (fact "go=1",
// prior 1/2, for both agents).
func E12Martingale() (Result, error) {
	res := Result{
		ID:     "E12",
		Title:  "Belief martingale: E[β_i(φ) at t] = µ(φ) for run facts",
		Source: "Section 3 (posterior beliefs; derived)",
	}
	// T-hat: i's expected belief in bit=1 equals p at every time.
	p := ratutil.R(9, 10)
	that, err := paper.That(p, ratutil.R(1, 10))
	if err != nil {
		return Result{}, err
	}
	e := core.New(that)
	for t := 0; t <= 2; t++ {
		got, err := e.ExpectedBeliefAtTime(paper.ThatBitFact(), paper.AgentI, t)
		if err != nil {
			return Result{}, err
		}
		res.addExact(fmt.Sprintf("T-hat: E[β_i(bit=1) at t=%d]", t), "9/10", got)
	}

	// FS: both agents' expected belief in go=1 equals the prior 1/2 at
	// every time, even though Bob's individual beliefs swing between
	// 1/101 and 1.
	fs, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		return Result{}, err
	}
	fe := core.New(fs)
	goOne := paper.FSGoIsOne()
	for _, agent := range []string{paper.Alice, paper.Bob} {
		for t := 0; t <= 3; t++ {
			got, err := fe.ExpectedBeliefAtTime(goOne, agent, t)
			if err != nil {
				return Result{}, err
			}
			res.addExact(fmt.Sprintf("FS: E[β_%s(go=1) at t=%d]", agent, t), "1/2", got)
		}
	}

	// Bob's posterior after silence at t=1 is the Bayes value 1/101.
	silent, err := fe.Belief(goOne, paper.Bob, "t1|none")
	if err != nil {
		return Result{}, err
	}
	res.addExact("FS: β_Bob(go=1) after round-1 silence (Bayes)", "1/101", silent)
	return res, nil
}

// E14NSquad checks the n-agent generalization of Example 1: the closed
// forms µ = (1−ℓ²)^(n−1) (original) and ((1−ℓ²)/(1−ℓ²(1−ℓ)))^(n−1)
// (improved) at ℓ = 1/10, and the degeneration to the paper's numbers at
// n = 2.
func E14NSquad() (Result, error) {
	res := Result{
		ID:     "E14",
		Title:  "n-agent firing squad: generalized closed forms",
		Source: "Example 1 / Section 8 generalized (derived)",
	}
	loss := ratutil.R(1, 10)
	lossSq := ratutil.Mul(loss, loss)
	base := ratutil.OneMinus(lossSq)
	fireBase := ratutil.OneMinus(ratutil.Mul(lossSq, ratutil.OneMinus(loss)))
	pow := func(x *big.Rat, k int) *big.Rat {
		out := ratutil.One()
		for i := 0; i < k; i++ {
			out = ratutil.Mul(out, x)
		}
		return out
	}
	for _, n := range []int{2, 3, 4} {
		orig, err := scenarios.NFiringSquadSystem(n, loss, false)
		if err != nil {
			return Result{}, err
		}
		mu, err := core.New(orig).ConstraintProb(scenarios.AllFireFact(n), scenarios.General, scenarios.ActFire)
		if err != nil {
			return Result{}, err
		}
		res.addExact(fmt.Sprintf("n=%d: µ = (1−ℓ²)^%d", n, n-1), pow(base, n-1).RatString(), mu)

		impr, err := scenarios.NFiringSquadSystem(n, loss, true)
		if err != nil {
			return Result{}, err
		}
		muI, err := core.New(impr).ConstraintProb(scenarios.AllFireFact(n), scenarios.General, scenarios.ActFire)
		if err != nil {
			return Result{}, err
		}
		want := ratutil.Div(pow(base, n-1), pow(fireBase, n-1))
		res.addExact(fmt.Sprintf("n=%d: improved µ", n), want.RatString(), muI)
	}
	// n = 2 degenerates to Example 1 / Section 8.
	sys2, err := scenarios.NFiringSquadSystem(2, loss, false)
	if err != nil {
		return Result{}, err
	}
	mu2, err := core.New(sys2).ConstraintProb(scenarios.AllFireFact(2), scenarios.General, scenarios.ActFire)
	if err != nil {
		return Result{}, err
	}
	res.addExact("n=2 degenerates to Example 1", "99/100", mu2)
	return res, nil
}
