// Package experiments regenerates every numeric claim, figure and theorem
// of the paper as a paper-vs-measured comparison. It is the reproduction
// harness behind cmd/paperbench, the EXPERIMENTS.md record, and the
// benchmark suite.
//
// The paper has no measurement tables (it is a theory paper); its
// reproducible artifacts are the exact numbers asserted for Example 1 and
// Section 8, the two figure constructions (Figure 1 and Figure 2/T-hat),
// and the theorems themselves. Each experiment evaluates those claims on
// this library's exact engine and reports whether every value matches.
package experiments

import (
	"fmt"
	"math/big"
	"sort"

	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/paper"
	"pak/internal/ratutil"
)

// Row is one paper-vs-measured comparison.
type Row struct {
	// Quantity names what is being compared.
	Quantity string
	// Paper is the value the paper states (or "derived" for values the
	// paper implies but does not print).
	Paper string
	// Measured is the value this library computes.
	Measured string
	// Match reports whether the measured value agrees with the paper.
	Match bool
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (E1..E10).
	ID string
	// Title describes the experiment.
	Title string
	// Source cites the part of the paper being reproduced.
	Source string
	// Rows are the individual comparisons.
	Rows []Row
}

// AllMatch reports whether every row matched.
func (r Result) AllMatch() bool {
	for _, row := range r.Rows {
		if !row.Match {
			return false
		}
	}
	return true
}

// addExact appends a row comparing an exact rational against the paper's
// stated value (also a rational string).
func (r *Result) addExact(quantity, paperVal string, measured *big.Rat) {
	want := ratutil.MustParse(paperVal)
	r.Rows = append(r.Rows, Row{
		Quantity: quantity,
		Paper:    paperVal,
		Measured: measured.RatString(),
		Match:    ratutil.Eq(want, measured),
	})
}

// addBool appends a row for a boolean check.
func (r *Result) addBool(quantity string, paperVal string, got bool, want bool) {
	r.Rows = append(r.Rows, Row{
		Quantity: quantity,
		Paper:    paperVal,
		Measured: fmt.Sprintf("%v", got),
		Match:    got == want,
	})
}

// E1FiringSquad reproduces Example 1's exact claims for the FS protocol
// with loss 1/10: the constraint value, Alice's three information states,
// and the threshold-met measure.
func E1FiringSquad() (Result, error) {
	res := Result{
		ID:     "E1",
		Title:  "Relaxed firing squad FS: constraint and beliefs",
		Source: "Example 1, Sections 1 and 3",
	}
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		return Result{}, err
	}
	e := core.New(sys)
	both := paper.FSBothFire()
	fireB := paper.FSBobFires()

	mu, err := e.ConstraintProb(both, paper.Alice, paper.ActFire)
	if err != nil {
		return Result{}, err
	}
	res.addExact("µ(φ_both@fire_A | fire_A)", "99/100", mu)

	byState, err := e.BeliefByActionState(fireB, paper.Alice, paper.ActFire)
	if err != nil {
		return Result{}, err
	}
	// Iterate in sorted state order: EXPERIMENTS.md is diffed by the CI
	// docs job, so generation must be deterministic.
	states := make([]string, 0, len(byState))
	for state := range byState {
		states = append(states, state)
	}
	sort.Strings(states)
	for _, state := range states {
		bel := byState[state]
		switch {
		case containsStr(state, "recv=Yes"):
			res.addExact("β_A(fire_B) after 'Yes'", "1", bel)
		case containsStr(state, "recv=No"):
			res.addExact("β_A(fire_B) after 'No'", "0", bel)
		default:
			res.addExact("β_A(fire_B) after silence", "99/100", bel)
		}
	}

	tm, err := e.ThresholdMeasure(both, paper.Alice, paper.ActFire, ratutil.R(95, 100))
	if err != nil {
		return Result{}, err
	}
	res.addExact("µ(β ≥ 0.95 | fire_A) (threshold met)", "991/1000", tm)
	res.addExact("µ(β < 0.95 | fire_A) = 0.1·0.1·0.9", "9/1000", ratutil.OneMinus(tm))

	exp, err := e.ExpectedBelief(both, paper.Alice, paper.ActFire)
	if err != nil {
		return Result{}, err
	}
	res.addExact("E[β_A(φ_both)@fire_A | fire_A] (Thm 6.2)", "99/100", exp)
	return res, nil
}

// E2Figure1 reproduces the Figure 1 counterexamples: sufficiency fails for
// ψ = ¬does(α) and the expectation identity fails for φ = does(α), both
// because local-state independence fails.
func E2Figure1() (Result, error) {
	res := Result{
		ID:     "E2",
		Title:  "Figure 1 mixed-action counterexample",
		Source: "Figure 1, Sections 4 and 6",
	}
	sys, err := paper.Figure1()
	if err != nil {
		return Result{}, err
	}
	e := core.New(sys)

	psi := paper.Figure1PsiFact()
	bel, err := e.Belief(psi, paper.AgentI, "g0")
	if err != nil {
		return Result{}, err
	}
	res.addExact("β_i(ψ) when performing α", "1/2", bel)
	muPsi, err := e.ConstraintProb(psi, paper.AgentI, paper.ActAlpha)
	if err != nil {
		return Result{}, err
	}
	res.addExact("µ(ψ@α | α)", "0", muPsi)

	phi := paper.Figure1PhiFact()
	rep, err := e.CheckExpectation(phi, paper.AgentI, paper.ActAlpha)
	if err != nil {
		return Result{}, err
	}
	res.addExact("µ(φ@α | α) for φ=does(α)", "1", rep.ConstraintProb)
	res.addExact("E[β_i(φ)@α | α]", "1/2", rep.ExpectedBelief)
	res.addBool("φ local-state independent of α", "false", rep.Independent, false)
	res.addBool("expectation identity fails without independence", "true", !rep.Equal(), true)
	return res, nil
}

// E3Theorem52 reproduces the Figure 2 construction T-hat(p, ε) across a
// parameter sweep: the constraint value is exactly p while the threshold
// is met with probability exactly ε, and the non-revealing belief is
// (p−ε)/(1−ε).
func E3Theorem52() (Result, error) {
	res := Result{
		ID:     "E3",
		Title:  "T-hat(p, ε): threshold met with arbitrarily small probability",
		Source: "Figure 2, Theorem 5.2",
	}
	sweep := []struct{ p, eps string }{
		{"1/2", "1/10"},
		{"9/10", "1/10"},
		{"9/10", "1/100"},
		{"95/100", "1/1000"},
		{"99/100", "1/100"},
	}
	for _, tc := range sweep {
		p := ratutil.MustParse(tc.p)
		eps := ratutil.MustParse(tc.eps)
		sys, err := paper.That(p, eps)
		if err != nil {
			return Result{}, err
		}
		e := core.New(sys)
		phi := paper.ThatBitFact()

		mu, err := e.ConstraintProb(phi, paper.AgentI, paper.ActAlpha)
		if err != nil {
			return Result{}, err
		}
		res.addExact(fmt.Sprintf("T(%s,%s): µ(φ@α|α)", tc.p, tc.eps), tc.p, mu)

		tm, err := e.ThresholdMeasure(phi, paper.AgentI, paper.ActAlpha, p)
		if err != nil {
			return Result{}, err
		}
		res.addExact(fmt.Sprintf("T(%s,%s): µ(β≥p|α)", tc.p, tc.eps), tc.eps, tm)

		bel, err := e.Belief(phi, paper.AgentI, "i1:recv=m")
		if err != nil {
			return Result{}, err
		}
		wantBelief := ratutil.Div(ratutil.Sub(p, eps), ratutil.OneMinus(eps))
		res.addExact(fmt.Sprintf("T(%s,%s): non-revealing β = (p-ε)/(1-ε)", tc.p, tc.eps),
			wantBelief.RatString(), bel)
	}
	return res, nil
}

// E6ImprovedFS reproduces Section 8's improvement: refraining from firing
// after 'No' raises the constraint value from 99/100 to 990/991 ≈ 0.99899.
func E6ImprovedFS() (Result, error) {
	res := Result{
		ID:     "E6",
		Title:  "Improved FS: never fire on 'No'",
		Source: "Section 8 (paper states 0.99899)",
	}
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSImproved)
	if err != nil {
		return Result{}, err
	}
	e := core.New(sys)
	both := paper.FSBothFire()

	mu, err := e.ConstraintProb(both, paper.Alice, paper.ActFire)
	if err != nil {
		return Result{}, err
	}
	res.addExact("µ(φ_both@fire_A | fire_A)", "990/991", mu)
	res.Rows = append(res.Rows, Row{
		Quantity: "decimal value (paper prints 0.99899)",
		Paper:    "0.99899",
		Measured: mu.FloatString(5),
		Match:    mu.FloatString(5) == "0.99899",
	})

	tm, err := e.ThresholdMeasure(both, paper.Alice, paper.ActFire, ratutil.R(95, 100))
	if err != nil {
		return Result{}, err
	}
	res.addExact("µ(β ≥ 0.95 | fire_A) after the fix", "1", tm)

	exp, err := e.ExpectedBelief(both, paper.Alice, paper.ActFire)
	if err != nil {
		return Result{}, err
	}
	res.addExact("E[β] (Thm 6.2 again)", "990/991", exp)

	// The improvement is strict.
	orig := ratutil.R(99, 100)
	res.addBool("990/991 > 99/100 (strict improvement)", "true", ratutil.Greater(mu, orig), true)

	// Section 8's insight is derivable from the ORIGINAL system alone:
	// pruning Alice's low-belief firing states via the Jeffrey
	// decomposition predicts the improved value without building FS'.
	origSys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		return Result{}, err
	}
	refrain, err := core.New(origSys).RefrainAnalysis(both, paper.Alice, paper.ActFire, ratutil.R(95, 100))
	if err != nil {
		return Result{}, err
	}
	if refrain.Predicted == nil {
		return Result{}, fmt.Errorf("refrain analysis predicted no action")
	}
	res.addExact("refrain analysis on FS predicts FS' value", "990/991", refrain.Predicted)
	return res, nil
}

// E8KoPLimit reproduces the degenerate threshold case (Lemma F.1 / the
// Knowledge of Preconditions principle): with a lossless channel the FS
// constraint holds with probability 1, and Alice knows φ_both whenever she
// fires.
func E8KoPLimit() (Result, error) {
	res := Result{
		ID:     "E8",
		Title:  "KoP limit: µ = 1 forces knowledge when acting",
		Source: "Lemma F.1, Section 7; [30]'s KoP as the ε→0 limit",
	}
	sys, err := paper.FiringSquad(ratutil.Zero(), paper.FSOriginal)
	if err != nil {
		return Result{}, err
	}
	e := core.New(sys)
	rep, err := e.CheckKoPLimit(paper.FSBothFire(), paper.Alice, paper.ActFire)
	if err != nil {
		return Result{}, err
	}
	res.addExact("µ(φ_both@fire_A | fire_A), lossless", "1", rep.ConstraintProb)
	res.addExact("min β when firing", "1", rep.MinBelief)
	res.addBool("K_A(φ_both) at every firing point", "true", rep.AlwaysKnows, true)
	res.addBool("Lemma F.1 holds", "true", rep.Holds(), true)

	// Contrast: with a lossy channel, belief 1 is not required (E1).
	lossy, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		return Result{}, err
	}
	e2 := core.New(lossy)
	min, _, err := e2.BeliefRangeAtAction(paper.FSBothFire(), paper.Alice, paper.ActFire)
	if err != nil {
		return Result{}, err
	}
	res.addExact("min β with loss 1/10 (contrast)", "0", min)
	return res, nil
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// FSBothFireFact re-exports the constraint condition for benchmarks.
func FSBothFireFact() logic.Fact { return paper.FSBothFire() }
