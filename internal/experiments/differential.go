package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"

	"pak/internal/core"
	"pak/internal/epistemic"
	"pak/internal/logic"
	"pak/internal/lpengine"
	"pak/internal/query"
	"pak/internal/ratutil"
	"pak/internal/registry"
	"pak/internal/scenarios"
)

// lpWorkload is the standard differential batch: belief, constraint and
// threshold queries over past-based conditions — the temporal "once the
// General's local state recorded Yes" and the epistemic "the General
// believes (≥ 1/2) that all n soldiers fire" (belief facts are
// past-based regardless of what they wrap: belief at a point is a
// function of the local state alone). Every query sits inside the LP
// fragment, so the strict lp backend must answer all of them.
func lpWorkload(n int) []query.Query {
	heard := logic.Once(logic.LocalContains(scenarios.General, "Yes"))
	believed := epistemic.Believes(scenarios.General, ratutil.R(1, 2), scenarios.AllFireFact(n))
	return []query.Query{
		query.ConstraintQuery{Fact: heard, Agent: scenarios.General,
			Action: scenarios.ActFire, Threshold: ratutil.R(1, 2)},
		query.ConstraintQuery{Fact: believed, Agent: scenarios.General, Action: scenarios.ActFire},
		query.ThresholdQuery{Fact: believed, Agent: scenarios.General,
			Action: scenarios.ActFire, P: ratutil.R(1, 2)},
		query.ThresholdQuery{Fact: heard, Agent: scenarios.General,
			Action: scenarios.ActFire, P: ratutil.R(1, 1)},
		query.BeliefQuery{Fact: logic.Not(heard), Agent: scenarios.General, Action: scenarios.ActFire},
	}
}

// E18DifferentialBackends is the differential experiment behind the
// second exact backend: the LP engine (exact-rational simplex over
// belief-class columns) must agree with the enumeration engine byte for
// byte on every query in its fragment, the fragment gate must keep
// future-reading facts out, and the auto router must answer the full
// surface with enumeration filling the gaps. All checks are exact and
// deterministic (serial evaluation, Bland's rule pivoting), so the
// structural work counters below are stable run to run — no wall-clock
// anywhere, by design: speed claims live in BenchmarkLPvsEnumeration,
// correctness claims live here.
func E18DifferentialBackends() (Result, error) {
	res := Result{
		ID:     "E18",
		Title:  "the LP backend agrees with enumeration byte for byte on its fragment",
		Source: "differential harness over Sections 3-4 belief bounds (derived)",
	}
	reg := registry.Default()

	for _, tc := range []struct {
		spec string
		n    int
	}{
		{"nsquad(2)", 2},
		{"nsquad(3)", 3},
		{"nsquad(n=3,loss=1/4)", 3},
	} {
		sys, err := reg.Build(tc.spec)
		if err != nil {
			return Result{}, err
		}
		e := core.New(sys)
		qs := lpWorkload(tc.n)
		inFragment := true
		for _, q := range qs {
			inFragment = inFragment && query.CanSolveLP(q)
		}
		res.addBool(fmt.Sprintf("%s: the %d-query workload sits in the LP fragment", tc.spec, len(qs)),
			"CanSolveLP", inFragment, true)

		enum, err := query.EvalBatch(e, qs, query.WithParallelism(1))
		if err != nil {
			return Result{}, err
		}
		lp, err := query.EvalBatch(e, qs, query.WithParallelism(1),
			query.WithBackend(query.BackendLP))
		if err != nil {
			return Result{}, err
		}
		enumDocs, err := json.Marshal(query.DocsOf(enum))
		if err != nil {
			return Result{}, err
		}
		lpDocs, err := json.Marshal(query.DocsOf(lp))
		if err != nil {
			return Result{}, err
		}
		res.addBool(fmt.Sprintf("%s: enum vs lp wire results", tc.spec), "byte-identical",
			bytes.Equal(enumDocs, lpDocs), true)
	}

	// The fragment gate: a does-fact reads the future, so CanSolveLP must
	// reject it, and the auto router must still answer it — identically to
	// plain enumeration — by falling back per query.
	unsupported := query.ConstraintQuery{Fact: scenarios.AllFireFact(2),
		Agent: scenarios.General, Action: scenarios.ActFire}
	res.addBool("future-reading does-fact gated out of the fragment", "CanSolveLP=false",
		!query.CanSolveLP(unsupported), true)

	sys, err := reg.Build("nsquad(2)")
	if err != nil {
		return Result{}, err
	}
	e := core.New(sys)
	mixed := append(lpWorkload(2), unsupported)
	enum, err := query.EvalBatch(e, mixed, query.WithParallelism(1))
	if err != nil {
		return Result{}, err
	}
	auto, err := query.EvalBatch(e, mixed, query.WithParallelism(1),
		query.WithBackend(query.BackendAuto))
	if err != nil {
		return Result{}, err
	}
	enumDocs, err := json.Marshal(query.DocsOf(enum))
	if err != nil {
		return Result{}, err
	}
	autoDocs, err := json.Marshal(query.DocsOf(auto))
	if err != nil {
		return Result{}, err
	}
	res.addBool("auto over a mixed batch (lp fragment + enum fallback)", "byte-identical",
		bytes.Equal(enumDocs, autoDocs), true)

	// Structural accounting: drive the LP engine directly on one bound
	// and check its value against enumeration plus its work invariants.
	// Serial evaluation and Bland's-rule pivoting make every counter
	// deterministic, so the counts are part of the record.
	le := lpengine.New(sys)
	acked := logic.Once(logic.LocalContains(scenarios.General, "yes=1"))
	lpMu, err := le.ConstraintProb(acked, scenarios.General, scenarios.ActFire)
	if err != nil {
		return Result{}, err
	}
	enumMu, err := e.ConstraintProb(acked, scenarios.General, scenarios.ActFire)
	if err != nil {
		return Result{}, err
	}
	res.addExact("nsquad(2): µ(General once recorded an ack @ fire | fire) via LP",
		enumMu.RatString(), lpMu)
	st := le.Stats()
	res.addBool(fmt.Sprintf("lp structural work (bounds=%d, classes=%d, columns=%d, solves=%d, pivots=%d)",
		st.Bounds, st.Classes, st.Columns, st.Solves, st.Pivots),
		"solves = 2·bounds", st.Solves == 2*st.Bounds, true)
	return res, nil
}
