package experiments

import (
	"fmt"

	"pak/internal/core"
	"pak/internal/query"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// E15QueryBatch validates the unified query layer end to end: the full
// theorem-check workload over the 4-agent firing squad is evaluated
// three ways — serial Eval loop, parallel EvalBatch over a shared
// engine, and parallel EvalBatch with per-query cold engines — and every
// result must agree exactly (Rat.Cmp == 0). It also re-derives Example
// 1's headline constraint through the query layer (n = 2 degenerates to
// the paper's 99/100) and round-trips the whole workload through the
// JSON spec format before evaluating it.
func E15QueryBatch() (Result, error) {
	res := Result{
		ID:     "E15",
		Title:  "unified query layer: batch = serial, exact and order-preserving",
		Source: "Sections 3-7 via the query API (derived)",
	}
	loss := ratutil.R(1, 10)

	// The n = 2 squad degenerates to Example 1: the query layer must
	// reproduce the paper's 99/100 headline.
	sys2, err := scenarios.NFiringSquadSystem(2, loss, false)
	if err != nil {
		return Result{}, err
	}
	head, err := query.Eval(core.New(sys2), query.ConstraintQuery{
		Fact:  scenarios.AllFireFact(2),
		Agent: scenarios.General, Action: scenarios.ActFire,
	})
	if err != nil {
		return Result{}, err
	}
	res.addExact("n=2 headline through query layer", "99/100", head.Value)

	// The full workload over the 4-agent squad.
	sys, err := scenarios.NFiringSquadSystem(4, loss, false)
	if err != nil {
		return Result{}, err
	}
	qs := TheoremWorkload(4)

	// Round-trip the workload through the JSON spec format first: the
	// evaluated queries are the parsed ones.
	doc, err := query.MarshalBatch(qs)
	if err != nil {
		return Result{}, err
	}
	parsed, err := query.ParseBatch(doc)
	if err != nil {
		return Result{}, err
	}
	res.addBool("workload round-trips through JSON",
		fmt.Sprintf("%d queries", len(qs)), len(parsed) == len(qs), true)

	serialEngine := core.New(sys)
	serial := make([]query.Result, len(parsed))
	for i, q := range parsed {
		r, evalErr := query.Eval(serialEngine, q)
		if evalErr != nil {
			return Result{}, evalErr
		}
		serial[i] = r
	}
	shared, err := query.EvalBatch(core.New(sys), parsed, query.WithParallelism(8))
	if err != nil {
		return Result{}, err
	}
	cold, err := query.EvalBatch(core.New(sys), parsed, query.WithParallelism(8), query.WithCache(false))
	if err != nil {
		return Result{}, err
	}
	res.addBool("parallel shared-cache batch = serial", "exact", resultsEqual(serial, shared), true)
	res.addBool("parallel cold-engine batch = serial", "exact", resultsEqual(serial, cold), true)

	// Every theorem verdict in the workload must pass: a fail would be a
	// counterexample to the paper.
	verdicts := 0
	allPass := true
	for _, r := range serial {
		if r.Kind == query.KindTheorem {
			verdicts++
			allPass = allPass && r.Passed()
		}
	}
	res.addBool(fmt.Sprintf("all %d theorem verdicts pass", verdicts), "true", allPass, true)
	return res, nil
}

// TheoremWorkload is the standard batch used by E15, the benchmarks and
// the examples: every agent of the n-squad × every analysis kind and
// theorem, all built from structural (serializable) facts.
func TheoremWorkload(n int) []query.Query {
	all := scenarios.AllFireFact(n)
	agents := make([]string, 0, n)
	agents = append(agents, scenarios.General)
	for i := 1; i < n; i++ {
		agents = append(agents, fmt.Sprintf("s%d", i))
	}
	half := ratutil.R(1, 2)
	var qs []query.Query
	for _, agent := range agents {
		qs = append(qs,
			query.ConstraintQuery{Fact: all, Agent: agent, Action: scenarios.ActFire, Threshold: half},
			query.ExpectationQuery{Fact: all, Agent: agent, Action: scenarios.ActFire},
			query.BeliefQuery{Fact: all, Agent: agent, Action: scenarios.ActFire},
			query.ThresholdQuery{Fact: all, Agent: agent, Action: scenarios.ActFire, P: ratutil.R(9, 10)},
			query.IndependenceQuery{Fact: all, Agent: agent, Action: scenarios.ActFire},
			query.TheoremQuery{Theorem: query.TheoremSufficiency, Fact: all, Agent: agent, Action: scenarios.ActFire, P: half},
			query.TheoremQuery{Theorem: query.TheoremNecessity, Fact: all, Agent: agent, Action: scenarios.ActFire, P: half},
			query.TheoremQuery{Theorem: query.TheoremExpectation, Fact: all, Agent: agent, Action: scenarios.ActFire},
			query.TheoremQuery{Theorem: query.TheoremPAK, Fact: all, Agent: agent, Action: scenarios.ActFire, Eps: ratutil.R(1, 4)},
			query.TheoremQuery{Theorem: query.TheoremKoP, Fact: all, Agent: agent, Action: scenarios.ActFire},
		)
	}
	return qs
}

// resultsEqual compares two result slices for exact agreement on the
// fields the batch invariant promises: order, kinds, verdicts, headline
// values and named values.
func resultsEqual(a, b []query.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kind != y.Kind || x.Verdict != y.Verdict {
			return false
		}
		if (x.Value == nil) != (y.Value == nil) {
			return false
		}
		if x.Value != nil && x.Value.Cmp(y.Value) != 0 {
			return false
		}
		if len(x.Values) != len(y.Values) {
			return false
		}
		for k, xv := range x.Values {
			yv, ok := y.Values[k]
			if !ok || xv.Cmp(yv) != 0 {
				return false
			}
		}
	}
	return true
}
