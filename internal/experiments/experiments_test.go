package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsMatch is the reproduction gate: every paper claim must
// be matched by the measured values.
func TestAllExperimentsMatch(t *testing.T) {
	results, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 19 {
		t.Fatalf("expected 19 experiments, got %d", len(results))
	}
	ids := map[string]bool{}
	for _, res := range results {
		ids[res.ID] = true
		if len(res.Rows) == 0 {
			t.Errorf("%s: no rows", res.ID)
		}
		for _, row := range res.Rows {
			if !row.Match {
				t.Errorf("%s (%s): %s: paper=%s measured=%s",
					res.ID, res.Title, row.Quantity, row.Paper, row.Measured)
			}
		}
		if !res.AllMatch() {
			t.Errorf("%s: AllMatch false", res.ID)
		}
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestE1RowsCoverInformationStates(t *testing.T) {
	res, err := E1FiringSquad()
	if err != nil {
		t.Fatal(err)
	}
	var yes, no, silence bool
	for _, row := range res.Rows {
		switch {
		case strings.Contains(row.Quantity, "'Yes'"):
			yes = true
		case strings.Contains(row.Quantity, "'No'"):
			no = true
		case strings.Contains(row.Quantity, "silence"):
			silence = true
		}
	}
	if !yes || !no || !silence {
		t.Fatalf("E1 missing information-state rows: yes=%v no=%v silence=%v", yes, no, silence)
	}
}

func TestE4SmallWorkload(t *testing.T) {
	res, err := E4Expectation(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllMatch() {
		t.Fatalf("E4 failed: %+v", res.Rows)
	}
}

func TestE7SmallWorkload(t *testing.T) {
	res, err := E7MonteCarlo(30_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllMatch() {
		t.Fatalf("E7 failed: %+v", res.Rows)
	}
}

func TestE9SmallWorkload(t *testing.T) {
	res, err := E9Independence(10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllMatch() {
		t.Fatalf("E9 failed: %+v", res.Rows)
	}
}

func TestAllMatchDetectsMismatch(t *testing.T) {
	res := Result{Rows: []Row{{Match: true}, {Match: false}}}
	if res.AllMatch() {
		t.Fatal("AllMatch should be false")
	}
}
