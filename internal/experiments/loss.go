package experiments

import (
	"fmt"
	"math/big"

	"pak/internal/core"
	"pak/internal/paper"
	"pak/internal/ratutil"
)

// E13LossSensitivity sweeps the per-message loss probability ℓ and checks
// the closed forms the FS analysis implies:
//
//	µ_FS(φ_both | fire_A)       = 1 − ℓ²                    (Bob misses both wake-ups w.p. ℓ²)
//	µ_FS'(φ_both | fire_A)      = (1 − ℓ²) / (1 − ℓ²(1−ℓ))  (Alice also skips on a delivered 'No')
//
// together with the qualitative claims: the improved protocol dominates
// the original at every loss rate (strictly for 0 < ℓ < 1), and both
// values are non-increasing in ℓ. At ℓ = 1/10 the two forms specialize to
// the paper's 99/100 and 990/991.
func E13LossSensitivity() (Result, error) {
	res := Result{
		ID:     "E13",
		Title:  "FS loss sensitivity: closed forms across the loss sweep",
		Source: "Example 1 / Section 8 (derived closed forms)",
	}
	grid := []string{"1/100", "1/20", "1/10", "1/4", "1/2", "3/4"}
	var prevOrig, prevImpr *big.Rat
	for _, lossStr := range grid {
		loss := ratutil.MustParse(lossStr)
		lossSq := ratutil.Mul(loss, loss)
		wantOrig := ratutil.OneMinus(lossSq) // 1 − ℓ²
		wantImpr := ratutil.Div(wantOrig,
			ratutil.OneMinus(ratutil.Mul(lossSq, ratutil.OneMinus(loss)))) // (1−ℓ²)/(1−ℓ²(1−ℓ))

		measured := make(map[paper.FSVariant]*big.Rat, 2)
		for _, variant := range []paper.FSVariant{paper.FSOriginal, paper.FSImproved} {
			sys, err := paper.FiringSquad(loss, variant)
			if err != nil {
				return Result{}, err
			}
			e := core.New(sys)
			mu, err := e.ConstraintProb(paper.FSBothFire(), paper.Alice, paper.ActFire)
			if err != nil {
				return Result{}, err
			}
			measured[variant] = mu
		}
		res.addExact(fmt.Sprintf("ℓ=%s: µ_FS = 1−ℓ²", lossStr),
			wantOrig.RatString(), measured[paper.FSOriginal])
		res.addExact(fmt.Sprintf("ℓ=%s: µ_FS' = (1−ℓ²)/(1−ℓ²(1−ℓ))", lossStr),
			wantImpr.RatString(), measured[paper.FSImproved])
		res.addBool(fmt.Sprintf("ℓ=%s: improved strictly dominates", lossStr), "true",
			ratutil.Greater(measured[paper.FSImproved], measured[paper.FSOriginal]), true)
		if prevOrig != nil {
			res.addBool(fmt.Sprintf("ℓ=%s: µ_FS non-increasing in ℓ", lossStr), "true",
				ratutil.Leq(measured[paper.FSOriginal], prevOrig), true)
			res.addBool(fmt.Sprintf("ℓ=%s: µ_FS' non-increasing in ℓ", lossStr), "true",
				ratutil.Leq(measured[paper.FSImproved], prevImpr), true)
		}
		prevOrig, prevImpr = measured[paper.FSOriginal], measured[paper.FSImproved]
	}
	// The paper's operating point.
	res.addExact("ℓ=1/10 specializes to Example 1", "99/100",
		ratutil.OneMinus(ratutil.R(1, 100)))
	res.addExact("ℓ=1/10 specializes to Section 8", "990/991",
		ratutil.Div(ratutil.R(99, 100), ratutil.R(991, 1000)))
	return res, nil
}
