package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"

	"pak/internal/core"
	"pak/internal/query"
	"pak/internal/registry"
	"pak/internal/service"
)

// E17EvictionEquivalence validates the contract the service's bounded
// engine cache rests on: eviction is invisible. The engine is a
// deterministic function of its canonical spec — all arithmetic is
// exact rationals — so evicting an engine and rebuilding it later must
// reproduce every wire-form result byte for byte. The experiment
// evaluates the standard theorem workload on a warm engine, forces a
// full LRU eviction through a capacity-1 cache, re-evaluates on the
// rebuilt engine, and requires byte-identical ResultDoc JSON (then
// repeats the check through equivalent spec spellings, which must
// share one cache slot). If this ever fails, bounded caching would be
// trading correctness for memory — the one trade the paper's
// exact-probability discipline forbids.
func E17EvictionEquivalence() (Result, error) {
	res := Result{
		ID:     "E17",
		Title:  "engine-cache eviction is invisible: evict, rebuild, byte-identical results",
		Source: "service hardening over Sections 3-7 workloads (derived)",
	}
	reg := registry.Default()
	cache := service.NewEngineCache(1)

	evalDocs := func(spec string, n int) ([]byte, error) {
		key, err := reg.Canonical(spec)
		if err != nil {
			return nil, err
		}
		e, err := cache.Get(key, func() (*core.Engine, error) {
			sys, buildErr := reg.Build(spec)
			if buildErr != nil {
				return nil, buildErr
			}
			return core.New(sys), nil
		})
		if err != nil {
			return nil, err
		}
		results, err := query.EvalBatch(e, TheoremWorkload(n), query.WithParallelism(4))
		if err != nil {
			return nil, err
		}
		return json.Marshal(query.DocsOf(results))
	}

	warm, err := evalDocs("nsquad(2)", 2)
	if err != nil {
		return Result{}, err
	}
	// The capacity-1 cache holds only the latest engine: building
	// nsquad(3) evicts nsquad(2) entirely.
	other, err := evalDocs("nsquad(3)", 3)
	if err != nil {
		return Result{}, err
	}
	rebuilt, err := evalDocs("nsquad(2)", 2)
	if err != nil {
		return Result{}, err
	}
	res.addBool("evicted + rebuilt nsquad(2) workload", "byte-identical",
		bytes.Equal(warm, rebuilt), true)

	// The other spec's own eviction round-trip.
	otherRebuilt, err := evalDocs("nsquad(3)", 3)
	if err != nil {
		return Result{}, err
	}
	res.addBool("evicted + rebuilt nsquad(3) workload", "byte-identical",
		bytes.Equal(other, otherRebuilt), true)

	// Equivalent spellings address one cache slot, so a rebuild through
	// the long spelling answers for the short one too.
	aliased, err := evalDocs("nsquad(n=2,loss=1/10,improved=false)", 2)
	if err != nil {
		return Result{}, err
	}
	res.addBool("equivalent spelling hits the same slot, same bytes", "byte-identical",
		bytes.Equal(warm, aliased), true)

	st := cache.Stats()
	res.addBool(fmt.Sprintf("capacity-1 cache really evicted (%d evictions, %d misses)",
		st.Evictions, st.Misses), "evictions ≥ 3", st.Evictions >= 3, true)
	res.addBool("cache never exceeded its bound", "len ≤ 1", st.Len <= 1, true)
	return res, nil
}
