package experiments

import (
	"fmt"

	"pak/internal/commonbelief"
	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/montecarlo"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/randsys"
	"pak/internal/ratutil"
)

// E4Expectation machine-checks Theorem 6.2 over a family of random
// systems: mixed and deterministic designated actions, past-based and
// run-based facts. Whenever the independence hypothesis holds, the
// expected belief must equal the constraint probability exactly.
func E4Expectation(systems int, seed int64) (Result, error) {
	res := Result{
		ID:     "E4",
		Title:  fmt.Sprintf("Theorem 6.2 on %d random systems", systems),
		Source: "Theorem 6.2 (main result)",
	}
	type mode struct {
		name    string
		det     bool
		runFact bool
	}
	modes := []mode{
		{"mixed action, past-based fact", false, false},
		{"deterministic action, past-based fact", true, false},
		{"deterministic action, run-based fact", true, true},
		{"mixed action, run-based fact", false, true},
	}
	for _, m := range modes {
		holds, equalWhenIndep, indepCount := 0, 0, 0
		for k := 0; k < systems; k++ {
			cfg := randsys.Default(seed + int64(k))
			cfg.DetAction = m.det
			sys, err := randsys.Generate(cfg)
			if err != nil {
				return Result{}, err
			}
			var fact logic.Fact
			if m.runFact {
				fact = randsys.RunFact(sys, seed+int64(k)+1)
			} else {
				fact = randsys.PastFact(sys, seed+int64(k)+1)
			}
			e := core.New(sys)
			rep, err := e.CheckExpectation(fact, "a0", randsys.DesignatedAction)
			if err != nil {
				return Result{}, err
			}
			if rep.Holds() {
				holds++
			}
			if rep.Independent {
				indepCount++
				if rep.Equal() {
					equalWhenIndep++
				}
			}
		}
		res.Rows = append(res.Rows, Row{
			Quantity: fmt.Sprintf("%s: theorem holds", m.name),
			Paper:    fmt.Sprintf("%d/%d", systems, systems),
			Measured: fmt.Sprintf("%d/%d", holds, systems),
			Match:    holds == systems,
		})
		res.Rows = append(res.Rows, Row{
			Quantity: fmt.Sprintf("%s: exact equality when independent", m.name),
			Paper:    fmt.Sprintf("%d/%d", indepCount, indepCount),
			Measured: fmt.Sprintf("%d/%d", equalWhenIndep, indepCount),
			Match:    equalWhenIndep == indepCount,
		})
	}
	return res, nil
}

// E5PAKFrontier checks Theorem 7.1 and Corollary 7.2 on the T-hat family
// and on FS: whenever µ ≥ 1−δε, the belief level 1−ε is reached with
// probability at least 1−δ.
func E5PAKFrontier() (Result, error) {
	res := Result{
		ID:     "E5",
		Title:  "PAK frontier: µ ≥ 1−δε ⇒ µ(β ≥ 1−ε | α) ≥ 1−δ",
		Source: "Theorem 7.1, Corollary 7.2",
	}
	// T-hat sweep: p = 1−δε by construction, with a small construction
	// parameter e < both.
	grid := []struct{ delta, eps, e string }{
		{"1/10", "1/10", "1/200"},
		{"1/10", "1/100", "1/2000"},
		{"1/100", "1/10", "1/2000"},
		{"1/2", "1/2", "1/100"},
		{"1/4", "1/20", "1/400"},
	}
	for _, g := range grid {
		delta := ratutil.MustParse(g.delta)
		eps := ratutil.MustParse(g.eps)
		p := ratutil.OneMinus(ratutil.Mul(delta, eps))
		sys, err := paper.That(p, ratutil.MustParse(g.e))
		if err != nil {
			return Result{}, err
		}
		e := core.New(sys)
		rep, err := e.CheckPAK(paper.ThatBitFact(), paper.AgentI, paper.ActAlpha, delta, eps)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, Row{
			Quantity: fmt.Sprintf("T-hat(µ=%s): δ=%s ε=%s ⇒ µ(β≥%s|α)=%s ≥ %s",
				p.RatString(), g.delta, g.eps,
				rep.BeliefLevel.RatString(), rep.BeliefMeasure.RatString(), rep.Bound.RatString()),
			Paper:    "holds",
			Measured: verdictStr(rep.Holds() && rep.PremiseMet()),
			Match:    rep.Holds() && rep.PremiseMet(),
		})
	}
	// FS with ε = δ = 1/10 (µ = 99/100 = 1−ε² exactly): Corollary 7.2,
	// with the paper noting the actual measure 0.991.
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		return Result{}, err
	}
	e := core.New(sys)
	rep, err := e.CheckPAKSquare(paper.FSBothFire(), paper.Alice, paper.ActFire, ratutil.R(1, 10))
	if err != nil {
		return Result{}, err
	}
	res.addBool("FS: Corollary 7.2 with ε=1/10", "holds", rep.Holds() && rep.PremiseMet(), true)
	res.addExact("FS: µ(β ≥ 9/10 | fire_A)", "991/1000", rep.BeliefMeasure)
	return res, nil
}

// E7MonteCarlo cross-validates the exact engine with the sampling
// simulator: every sampled estimate must contain the exact value within
// its 99% Hoeffding radius.
func E7MonteCarlo(samples int, seed int64) (Result, error) {
	res := Result{
		ID:     "E7",
		Title:  fmt.Sprintf("Monte-Carlo cross-validation (%d samples)", samples),
		Source: "model validation (Sections 2-3); exact vs sampled",
	}
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		return Result{}, err
	}
	e := core.New(sys)
	both := paper.FSBothFire()
	exact, err := e.ConstraintProb(both, paper.Alice, paper.ActFire)
	if err != nil {
		return Result{}, err
	}
	ev, err := e.FactAtAction(both, paper.Alice, paper.ActFire)
	if err != nil {
		return Result{}, err
	}
	perf, err := e.PerformedSet(paper.Alice, paper.ActFire)
	if err != nil {
		return Result{}, err
	}
	s := montecarlo.NewSampler(sys, seed)
	est, err := s.EstimateConditional(
		func(r pps.RunID) bool { return ev.Contains(int(r)) },
		func(r pps.RunID) bool { return perf.Contains(int(r)) },
		samples,
	)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows, Row{
		Quantity: "FS: sampled µ(φ_both | fire_A) vs exact 99/100",
		Paper:    "within 99% CI",
		Measured: est.String(),
		Match:    est.Contains(ratutil.Float(exact)),
	})

	// T-hat threshold measure.
	that, err := paper.That(ratutil.R(9, 10), ratutil.R(1, 10))
	if err != nil {
		return Result{}, err
	}
	e2 := core.New(that)
	thresholdEv, err := e2.BeliefThresholdEvent(paper.ThatBitFact(), paper.AgentI, paper.ActAlpha, ratutil.R(9, 10))
	if err != nil {
		return Result{}, err
	}
	s2 := montecarlo.NewSampler(that, seed+1)
	est2, err := s2.EstimateEvent(func(r pps.RunID) bool { return thresholdEv.Contains(int(r)) }, samples)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows, Row{
		Quantity: "T-hat(9/10,1/10): sampled µ(β≥p) vs exact 1/10",
		Paper:    "within 99% CI",
		Measured: est2.String(),
		Match:    est2.Contains(0.1),
	})

	// Protocol-level simulation (no unfolding).
	m, err := paper.FiringSquadModel(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		return Result{}, err
	}
	ps := montecarlo.NewProtocolSampler(m, seed+2)
	est3, err := ps.EstimateTraceConditional(
		func(tr montecarlo.Trace) bool {
			return tr.Acts[2][0] == paper.ActFire && tr.Acts[2][1] == paper.ActFire
		},
		func(tr montecarlo.Trace) bool { return tr.Acts[2][0] == paper.ActFire },
		samples,
	)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows, Row{
		Quantity: "FS protocol-level simulation vs exact 99/100",
		Paper:    "within 99% CI",
		Measured: est3.String(),
		Match:    est3.Contains(0.99),
	})
	return res, nil
}

// E9Independence machine-checks Lemma 4.3 over random systems: both
// sufficient conditions force local-state independence, and the Figure 1
// violation is detected.
func E9Independence(systems int, seed int64) (Result, error) {
	res := Result{
		ID:     "E9",
		Title:  fmt.Sprintf("Lemma 4.3 on %d random systems", systems),
		Source: "Lemma 4.3, Definition 4.1",
	}
	pastOK, detOK := 0, 0
	for k := 0; k < systems; k++ {
		cfg := randsys.Default(seed + int64(k))
		sys, err := randsys.Generate(cfg)
		if err != nil {
			return Result{}, err
		}
		e := core.New(sys)
		rep, err := e.LocalStateIndependence(randsys.PastFact(sys, seed-int64(k)), "a0", randsys.DesignatedAction)
		if err != nil {
			return Result{}, err
		}
		if rep.Independent {
			pastOK++
		}

		cfg.DetAction = true
		dsys, err := randsys.Generate(cfg)
		if err != nil {
			return Result{}, err
		}
		de := core.New(dsys)
		drep, err := de.LocalStateIndependence(randsys.RunFact(dsys, seed-int64(k)), "a0", randsys.DesignatedAction)
		if err != nil {
			return Result{}, err
		}
		if drep.Independent {
			detOK++
		}
	}
	res.Rows = append(res.Rows, Row{
		Quantity: "L4.3(b): past-based fact ⇒ independent",
		Paper:    fmt.Sprintf("%d/%d", systems, systems),
		Measured: fmt.Sprintf("%d/%d", pastOK, systems),
		Match:    pastOK == systems,
	})
	res.Rows = append(res.Rows, Row{
		Quantity: "L4.3(a): deterministic action ⇒ independent",
		Paper:    fmt.Sprintf("%d/%d", systems, systems),
		Measured: fmt.Sprintf("%d/%d", detOK, systems),
		Match:    detOK == systems,
	})

	// The Figure 1 violation must be detected, with the exact gap.
	fig1, err := paper.Figure1()
	if err != nil {
		return Result{}, err
	}
	e := core.New(fig1)
	rep, err := e.LocalStateIndependence(paper.Figure1PsiFact(), paper.AgentI, paper.ActAlpha)
	if err != nil {
		return Result{}, err
	}
	detected := !rep.Independent && len(rep.Violations) == 1 &&
		ratutil.Eq(rep.Violations[0].Product, ratutil.R(1, 4)) &&
		ratutil.IsZero(rep.Violations[0].Joint)
	res.addBool("Figure 1 violation detected (1/4 vs 0 at g0)", "true", detected, true)
	return res, nil
}

// E10CommonBelief computes Monderer–Samet probabilistic common belief on
// the paper's systems: in FS, joint firing is common 1/2-believed at the
// decision time on the good runs, while in T-hat high-level common belief
// of bit=1 collapses to the empty event.
func E10CommonBelief() (Result, error) {
	res := Result{
		ID:     "E10",
		Title:  "Probabilistic common belief (Monderer–Samet extension)",
		Source: "Section 1 / related work [24, 29]",
	}
	// T-hat: exact hand-derived values.
	that, err := paper.That(ratutil.R(9, 10), ratutil.R(1, 10))
	if err != nil {
		return Result{}, err
	}
	slice, err := commonbelief.NewSlice(that, 1)
	if err != nil {
		return Result{}, err
	}
	bit := logic.RunsSatisfying(that, paper.ThatBitFact())
	group := []pps.AgentID{0, 1}

	bi, err := slice.PBelief(0, bit, ratutil.R(9, 10))
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows, Row{
		Quantity: "T-hat: B_i^{9/10}(bit=1)",
		Paper:    "{r''} (derived)",
		Measured: bi.String(),
		Match:    bi.Count() == 1 && bi.Contains(2),
	})
	ep, err := slice.EveryoneP(group, bit, ratutil.R(9, 10))
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows, Row{
		Quantity: "T-hat: E_G^{9/10}(bit=1)",
		Paper:    "{r''} (derived)",
		Measured: ep.String(),
		Match:    ep.Count() == 1 && ep.Contains(2),
	})
	cp, err := slice.CommonP(group, bit, ratutil.R(9, 10))
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows, Row{
		Quantity: "T-hat: C_G^{9/10}(bit=1)",
		Paper:    "∅ (derived: j's posterior of r'' is ε/p = 1/9)",
		Measured: cp.String(),
		Match:    cp.IsEmpty(),
	})

	// FS: joint firing is common 1/2-belief on good runs at t=2.
	fs, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		return Result{}, err
	}
	fsSlice, err := commonbelief.NewSlice(fs, 2)
	if err != nil {
		return Result{}, err
	}
	both := logic.RunsSatisfying(fs, logic.Sometime(paper.FSBothFire()))
	c, err := fsSlice.CommonP([]pps.AgentID{0, 1}, both, ratutil.R(1, 2))
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows, Row{
		Quantity: "FS: C_G^{1/2}(both fire) nonempty at t=2",
		Paper:    "nonempty (derived)",
		Measured: fmt.Sprintf("%d runs", c.Count()),
		Match:    !c.IsEmpty(),
	})
	return res, nil
}

// Builders returns every experiment constructor in E-number order,
// honouring the workload parameters (systems for E4/E9, samples for E7,
// seed for both). It is the single experiment list — cmd/paperbench and
// All both consume it, so a new experiment registers in one place.
func Builders(systems, samples int, seed int64) []func() (Result, error) {
	return []func() (Result, error){
		E1FiringSquad,
		E2Figure1,
		E3Theorem52,
		func() (Result, error) { return E4Expectation(systems, seed) },
		E5PAKFrontier,
		E6ImprovedFS,
		func() (Result, error) { return E7MonteCarlo(samples, seed) },
		E8KoPLimit,
		func() (Result, error) { return E9Independence(systems, seed) },
		E10CommonBelief,
		E11CommonKnowledge,
		E12Martingale,
		E13LossSensitivity,
		E14NSquad,
		E15QueryBatch,
		E16RegistryMultiBatch,
		E17EvictionEquivalence,
		E18DifferentialBackends,
		E19StructureSharing,
	}
}

// All runs every experiment with default workloads.
func All() ([]Result, error) {
	builders := Builders(100, 60_000, 1)
	out := make([]Result, 0, len(builders))
	for _, b := range builders {
		res, err := b()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func verdictStr(ok bool) string {
	if ok {
		return "holds"
	}
	return "VIOLATED"
}
