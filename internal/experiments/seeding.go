package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"

	"pak/internal/core"
	"pak/internal/epistemic"
	"pak/internal/logic"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/query"
	"pak/internal/ratutil"
	"pak/internal/registry"
	"pak/internal/runset"
	"pak/internal/scenarios"
)

// sweepWorkload is the batch each assignment of the E19 sweep answers:
// constraint, threshold and belief queries whose evaluation crosses
// every shared table (the performance index and both fact-extension
// sets) plus the per-engine belief table.
func sweepWorkload(n int) []query.Query {
	all := scenarios.AllFireFact(n)
	heard := logic.Once(logic.LocalContains(scenarios.General, "Yes"))
	believed := epistemic.Believes(scenarios.General, ratutil.R(1, 2), all)
	return []query.Query{
		query.ConstraintQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		query.ConstraintQuery{Fact: believed, Agent: scenarios.General, Action: scenarios.ActFire},
		query.ThresholdQuery{Fact: heard, Agent: scenarios.General,
			Action: scenarios.ActFire, P: ratutil.R(1, 2)},
		query.BeliefQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
	}
}

// directIndependenceScan is the reference reading of Definition 4.1 —
// for every local state, scan the runs through it outright and compare
// µ(φ@ℓ|ℓ)·µ(α@ℓ|ℓ) with µ([φ∧α]@ℓ|ℓ) — against which E19 holds the
// engine's occurrence-index incremental scan.
func directIndependenceScan(sys *pps.System, f logic.Fact, agent, action string) (core.IndependenceReport, error) {
	a, ok := sys.AgentIndex(agent)
	if !ok {
		return core.IndependenceReport{}, fmt.Errorf("no agent %q", agent)
	}
	report := core.IndependenceReport{Independent: true}
	for _, local := range sys.LocalStates(a) {
		occ, at, ok := sys.Occurs(a, local)
		if !ok {
			continue
		}
		factAt := runset.New(sys.NumRuns())
		actAt := runset.New(sys.NumRuns())
		for r := 0; r < sys.NumRuns(); r++ {
			if !occ.Contains(r) {
				continue
			}
			if f.Holds(sys, pps.RunID(r), at) {
				factAt.Add(r)
			}
			if got, performed := sys.Action(pps.RunID(r), at, a); performed && got == action {
				actAt.Add(r)
			}
		}
		mOcc := sys.Measure(occ)
		if mOcc.Sign() == 0 {
			continue
		}
		pFact := ratutil.Div(sys.Measure(factAt), mOcc)
		pAct := ratutil.Div(sys.Measure(actAt), mOcc)
		pJoint := ratutil.Div(sys.Measure(factAt.Intersect(actAt)), mOcc)
		product := ratutil.Mul(pFact, pAct)
		if !ratutil.Eq(product, pJoint) {
			report.Independent = false
			report.Violations = append(report.Violations, core.IndependenceViolation{
				Local: local, Product: product, Joint: pJoint,
			})
		}
	}
	return report, nil
}

func sameIndependenceReport(got, want core.IndependenceReport) bool {
	if got.Independent != want.Independent || len(got.Violations) != len(want.Violations) {
		return false
	}
	for i := range got.Violations {
		g, w := got.Violations[i], want.Violations[i]
		if g.Local != w.Local || !ratutil.Eq(g.Product, w.Product) || !ratutil.Eq(g.Joint, w.Joint) {
			return false
		}
	}
	return true
}

// E19StructureSharing is the experiment behind sweep structure sharing:
// engines seeded from a shape-equal neighbour (core.NewSeeded, the
// mechanism sweeps chain through their loss assignments) must answer
// every query class byte-identically to fresh engines, sharing must
// engage exactly on pps.SameShape — every loss neighbour in, every
// different-size squad out — and the occurrence-index incremental
// reading of Definition 4.1 must reproduce the direct
// O(states × runs) reading verbatim, violations and rationals included.
// Everything here is exact and deterministic; wall-clock claims live in
// BenchmarkEnvelopeStructureSharing, correctness claims live here.
func E19StructureSharing() (Result, error) {
	res := Result{
		ID:     "E19",
		Title:  "neighbour-seeded engines are invisible: sweep sharing answers like fresh engines",
		Source: "Definition 4.1 / Theorem 4.2 sweep economics (derived)",
	}
	reg := registry.Default()

	// A loss sweep over nsquad(3): chain each assignment's engine from
	// its predecessor, and hold the whole workload to fresh engines.
	losses := []string{"1/10", "1/5", "3/10", "2/5"}
	var prev *core.Engine
	engaged := 0
	for _, loss := range losses {
		spec := fmt.Sprintf("nsquad(n=3,loss=%s)", loss)
		sys, err := reg.Build(spec)
		if err != nil {
			return Result{}, err
		}
		seeded, shared := core.NewSeeded(sys, prev)
		if shared {
			engaged++
		}
		fresh := core.New(sys)
		qs := sweepWorkload(3)

		want, err := query.EvalBatch(fresh, qs, query.WithParallelism(1))
		if err != nil {
			return Result{}, err
		}
		got, err := query.EvalBatch(seeded, qs, query.WithParallelism(1))
		if err != nil {
			return Result{}, err
		}
		wantDocs, err := json.Marshal(query.DocsOf(want))
		if err != nil {
			return Result{}, err
		}
		gotDocs, err := json.Marshal(query.DocsOf(got))
		if err != nil {
			return Result{}, err
		}
		res.addBool(fmt.Sprintf("%s: seeded vs fresh wire results", spec), "byte-identical",
			bytes.Equal(wantDocs, gotDocs), true)

		// The independence report crosses the shared fact-extension
		// table and the per-engine measures; it must match exactly,
		// and it must match the direct Definition 4.1 reading.
		fact := scenarios.AllFireFact(3)
		gotRep, err := seeded.LocalStateIndependence(fact, scenarios.General, scenarios.ActFire)
		if err != nil {
			return Result{}, err
		}
		wantRep, err := fresh.LocalStateIndependence(fact, scenarios.General, scenarios.ActFire)
		if err != nil {
			return Result{}, err
		}
		directRep, err := directIndependenceScan(sys, fact, scenarios.General, scenarios.ActFire)
		if err != nil {
			return Result{}, err
		}
		res.addBool(fmt.Sprintf("%s: Definition 4.1 report, seeded vs fresh vs direct scan", spec),
			"identical", sameIndependenceReport(gotRep, wantRep) && sameIndependenceReport(gotRep, directRep), true)

		prev = seeded
	}
	res.addBool(fmt.Sprintf("sharing engaged on %d of %d chain links", engaged, len(losses)-1),
		"every loss neighbour shares", engaged == len(losses)-1, true)

	// The gate's negative half: a different-size squad is a different
	// shape, and seeding must refuse rather than share unsoundly.
	other, err := reg.Build("nsquad(2)")
	if err != nil {
		return Result{}, err
	}
	if _, refusedShared := core.NewSeeded(other, prev); refusedShared {
		res.addBool("nsquad(2) seeded from the nsquad(3) chain", "sharing refused", false, true)
	} else {
		res.addBool("nsquad(2) seeded from the nsquad(3) chain", "sharing refused", true, true)
	}

	// Figure 1 is the paper's independence counterexample: the
	// incremental scan must reproduce the direct reading's violation —
	// not just the verdict, the violated equation's rationals.
	figSys, err := paper.Figure1()
	if err != nil {
		return Result{}, err
	}
	fe := core.New(figSys)
	psi := paper.Figure1PsiFact()
	gotFig, err := fe.LocalStateIndependence(psi, paper.AgentI, paper.ActAlpha)
	if err != nil {
		return Result{}, err
	}
	directFig, err := directIndependenceScan(figSys, psi, paper.AgentI, paper.ActAlpha)
	if err != nil {
		return Result{}, err
	}
	res.addBool("Figure 1: incremental scan vs direct Definition 4.1 reading", "identical (non-independent)",
		sameIndependenceReport(gotFig, directFig) && !gotFig.Independent, true)

	return res, nil
}
