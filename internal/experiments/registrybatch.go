package experiments

import (
	"bytes"
	"fmt"

	"pak/internal/core"
	"pak/internal/encode"
	"pak/internal/query"
	"pak/internal/ratutil"
	"pak/internal/registry"
	"pak/internal/scenarios"
)

// E16RegistryMultiBatch validates the service substrate end to end: the
// scenario registry resolves specs to the same systems the direct
// constructors build (byte-identical JSON), equivalent specs share one
// canonical form, the generated catalog covers every registered
// scenario, and the cross-system MultiBatch fan-out returns exactly
// what a serial nested Eval loop produces — the invariant pakd relies
// on to serve one query-batch document against many named systems.
func E16RegistryMultiBatch() (Result, error) {
	res := Result{
		ID:     "E16",
		Title:  "scenario registry + multi-system fan-out: named specs, exact and shardable",
		Source: "Example 1 and Section 8 via the registry and service layers (derived)",
	}

	// Registry-built == directly built, byte for byte.
	fromRegistry, err := registry.Default().Build("nsquad(3)")
	if err != nil {
		return Result{}, err
	}
	direct, err := scenarios.NFiringSquadSystem(3, ratutil.R(1, 10), false)
	if err != nil {
		return Result{}, err
	}
	regDoc, err := encode.Marshal(fromRegistry)
	if err != nil {
		return Result{}, err
	}
	directDoc, err := encode.Marshal(direct)
	if err != nil {
		return Result{}, err
	}
	res.addBool(`registry "nsquad(3)" = direct construction`, "byte-identical",
		bytes.Equal(regDoc, directDoc), true)

	// Equivalent specs resolve to one canonical form (the engine-cache
	// key pakd shares memoization under).
	_, argsShort, err := registry.Default().Resolve("nsquad(3)")
	if err != nil {
		return Result{}, err
	}
	_, argsLong, err := registry.Default().Resolve("nsquad(n=3,loss=1/10,improved=false)")
	if err != nil {
		return Result{}, err
	}
	res.addBool("positional and named specs share a canonical form",
		argsShort.Canonical(), argsShort.Canonical() == argsLong.Canonical(), true)

	// The generated catalog covers every registered scenario.
	catalog := registry.Default().Markdown()
	covered := true
	for _, name := range registry.Default().Names() {
		covered = covered && bytes.Contains([]byte(catalog), []byte("## "+name+"\n"))
	}
	res.addBool(fmt.Sprintf("catalog covers all %d scenarios", len(registry.Default().Names())),
		"true", covered, true)

	// Cross-system fan-out: one workload over the 2- and 3-agent squads,
	// sharded through MultiBatch, must equal the serial nested loop —
	// and slot [system=0][query=0] must still be Example 1's 99/100.
	sys2, err := registry.Default().Build("nsquad(2)")
	if err != nil {
		return Result{}, err
	}
	items := []query.MultiItem{
		{Engine: core.New(sys2), Queries: TheoremWorkload(2)},
		{Engine: core.New(fromRegistry), Queries: TheoremWorkload(3)},
	}
	serial := make([][]query.Result, len(items))
	for i, item := range items {
		serial[i] = make([]query.Result, len(item.Queries))
		for j, q := range item.Queries {
			r, evalErr := query.Eval(core.New(item.Engine.System()), q)
			if evalErr != nil {
				return Result{}, evalErr
			}
			serial[i][j] = r
		}
	}
	sharded, err := query.MultiBatch(items, query.WithParallelism(8))
	if err != nil {
		return Result{}, err
	}
	equal := len(sharded) == len(serial)
	for i := 0; equal && i < len(serial); i++ {
		equal = resultsEqual(serial[i], sharded[i])
	}
	res.addBool("multi-system fan-out = serial nested loop", "exact", equal, true)
	res.addExact("fan-out slot [nsquad(2)][constraint] (Example 1 headline)",
		"99/100", sharded[0][0].Value)
	return res, nil
}
