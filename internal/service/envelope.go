// The envelope endpoints: adversary spaces over the wire. POST
// /v1/envelope evaluates ONE query's [min, max] envelope across every
// assignment of a space-valued scenario spec ("sweep(nsquad,
// loss=0.0..0.5/0.1)"), and /v1/envelope/stream answers the same
// request as NDJSON — one frame per assignment the moment it finishes,
// each carrying the running envelope, so clients watch the bounds
// tighten progressively:
//
//	{"frame":"result","index":1,"assignment":"loss=1/10",
//	 "spec":"nsquad(n=3,loss=1/10,improved=false)","result":{...},
//	 "envelope":{"min":"99/100","max":"1",...,"visited":2,"total":6}}
//	{"frame":"status","status":"complete","envelope":{...final...}}
//
// Every assignment resolves through the registry to a canonical system
// spec and is vetted exactly like a plain /v1/eval target (value caps,
// ServeGuard), and its engine comes from the same shared
// EngineCache/singleflight machinery — a sweep whose instances overlap
// earlier traffic reuses those engines outright. The buffered and
// streamed answers are the same fold by construction (both consume
// query.EnvelopeStream), and the final envelope is order-independent
// (witness ties break toward the lowest assignment index), so buffered,
// streamed and in-process serial envelopes are byte-identical on the
// wire — the determinism tests pin all three.
//
// Deadline semantics extend PR 4's prefix-preservation contract: a
// request that outruns its budget answers 504 (buffered) or a
// "deadline" terminal frame (streamed) whose envelope is the exact fold
// of the assignments that finished, labeled with the visited count —
// a sound partial envelope, never a discarded sweep. Engines are lazy
// sources chained through a per-request seed (structural memo tables
// shared across same-shape assignments), so the first assignment
// streams as soon as its own engine is up and assignments the deadline
// never reaches are never built; a genuine build failure mid-stream
// ends the sweep with the terminal "error" frame carrying its HTTP
// code (a real status line while nothing has flushed). Per-assignment
// evaluation failures travel inside their slots, as always.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"pak/internal/core"
	"pak/internal/query"
)

// EnvelopeRequest is the /v1/envelope request body.
type EnvelopeRequest struct {
	// Space is the space-valued scenario spec, e.g.
	// "sweep(nsquad,loss=0.0..0.5/0.1)". Fixed parameters and defaults
	// fill the rest, exactly as in a plain spec.
	Space string `json:"space"`
	// Query is ONE query document (the element schema of
	// pak.ParseQueryBatch) evaluated under every assignment. It must
	// yield a single headline value (constraint, expectation,
	// threshold, theorem, local belief, timeline).
	Query json.RawMessage `json:"query"`
	// Parallelism bounds the worker pool (0 = server default; clamped).
	Parallelism int `json:"parallelism,omitempty"`
}

// AssignmentResult is one assignment's slice of an envelope response.
type AssignmentResult struct {
	// Assignment renders the adversary assignment; Spec is the
	// canonical system spec it resolves to (the engine-cache key).
	Assignment string `json:"assignment"`
	Spec       string `json:"spec"`
	// Result is the inner query's result under this assignment — the
	// exact ResultDoc a /v1/eval of Spec would return for the query.
	Result query.ResultDoc `json:"result"`
}

// EnvelopeResponse is the /v1/envelope response body.
type EnvelopeResponse struct {
	// Space echoes the requested spec; Canonical is its fully resolved
	// space form (declared parameter order, defaults filled).
	Space     string `json:"space"`
	Canonical string `json:"canonical"`
	// Query describes the evaluated inner query.
	Query string `json:"query"`
	// Envelope is the final (possibly partial) envelope.
	Envelope query.RangeDoc `json:"envelope"`
	// Assignments holds the per-assignment results in space order.
	Assignments []AssignmentResult `json:"assignments"`
	// Status/Error mark a deadline-cut or cancelled sweep, exactly like
	// EvalResponse: the envelope then covers the visited assignments
	// only (Envelope.Visited < Envelope.Total).
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// EnvelopeResultFrame is one result line of a /v1/envelope/stream
// response.
type EnvelopeResultFrame struct {
	// Frame is always "result".
	Frame string `json:"frame"`
	// Index is the assignment's position in the space's enumeration.
	Index int `json:"index"`
	// Assignment and Spec identify the slot (see AssignmentResult).
	Assignment string `json:"assignment"`
	Spec       string `json:"spec"`
	// Result is the slot's wire result — identical to the buffered
	// response's entry at Assignments[Index].
	Result query.ResultDoc `json:"result"`
	// Envelope is the running envelope after folding this frame.
	Envelope query.RangeDoc `json:"envelope"`
}

// EnvelopeStatusFrame is the terminal line of every /v1/envelope/stream
// response.
type EnvelopeStatusFrame struct {
	// Frame is always "status".
	Frame string `json:"frame"`
	// Status is "complete", "deadline", "cancelled" — or "error" for a
	// request-level failure once streaming has begun (engines build
	// lazily mid-sweep, so a genuine build failure can postdate the
	// first frame).
	Status string `json:"status"`
	// Code is the HTTP status a mid-stream failure would have carried
	// (set only on "error" frames).
	Code int `json:"code,omitempty"`
	// Envelope is the final envelope — identical to the buffered
	// response's, partial (Visited < Total) under a deadline; zero on
	// "error" frames.
	Envelope query.RangeDoc `json:"envelope"`
	// Error carries the timeout/cancellation/failure message (empty on
	// "complete").
	Error string `json:"error,omitempty"`
}

// failEnvelope reports a request-level failure on the envelope stream
// in whichever shape is still expressible: a plain JSON error with its
// own status line while nothing has flushed, the terminal "error"
// status frame (carrying the HTTP code) once streaming has begun.
func (sw *streamWriter) failEnvelope(status int, err error) {
	if !sw.started {
		writeError(sw.w, status, err)
		return
	}
	_ = sw.frame(EnvelopeStatusFrame{Frame: frameStatus, Status: streamStatusError, Code: status, Error: err.Error()})
}

// envelopePlan is one vetted envelope request, shared by the buffered
// and streaming handlers.
type envelopePlan struct {
	space     string
	canonical string
	inner     query.Query
	targets   []resolved // one per assignment, space order
	names     []string   // assignment renderings, space order
	parallel  int
}

// decodeEnvelopeRequest parses, validates and resolves an envelope
// request without building any engine. On failure it writes the 4xx
// itself and reports false — nothing has streamed at this point, so
// request-level errors always get a proper status line.
func (s *Server) decodeEnvelopeRequest(w http.ResponseWriter, r *http.Request) (envelopePlan, bool) {
	var req EnvelopeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return envelopePlan{}, false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request body: %w", err))
		return envelopePlan{}, false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest,
			errors.New("malformed request body: trailing content after the JSON document"))
		return envelopePlan{}, false
	}
	if req.Space == "" {
		writeError(w, http.StatusBadRequest,
			errors.New(`empty request: name an adversary space in "space" (e.g. "sweep(nsquad,loss=0..1/2/1/10)")`))
		return envelopePlan{}, false
	}
	if isMissingJSON(req.Query) {
		writeError(w, http.StatusBadRequest,
			errors.New(`the envelope needs exactly one query document in "query"`))
		return envelopePlan{}, false
	}
	inner, err := query.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad query document: %w", err))
		return envelopePlan{}, false
	}

	rs, err := s.reg.ResolveSpace(req.Space)
	if err != nil {
		writeError(w, statusOfEvalErr(err), err)
		return envelopePlan{}, false
	}
	insts := rs.Instances()
	if len(insts) > s.maxAssignments {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("space %s enumerates %d assignments, above the server cap of %d",
				rs.Canonical(), len(insts), s.maxAssignments))
		return envelopePlan{}, false
	}

	plan := envelopePlan{
		space:     req.Space,
		canonical: rs.Canonical(),
		inner:     inner,
		targets:   make([]resolved, len(insts)),
		names:     make([]string, len(insts)),
		parallel:  s.maxParallel,
	}
	if req.Parallelism > 0 && req.Parallelism < plan.parallel {
		plan.parallel = req.Parallelism
	}
	for i, inst := range insts {
		// Every assignment is vetted exactly like a plain eval target:
		// the generic value caps plus the scenario's own ServeGuard.
		rt, err := s.resolveTarget(inst.Canonical)
		if err != nil {
			writeError(w, statusOfEvalErr(err), fmt.Errorf("assignment %v: %w", inst.Assignment, err))
			return envelopePlan{}, false
		}
		plan.targets[i] = rt
		plan.names[i] = inst.Assignment.String()
	}
	return plan, true
}

// envelopeSources compiles the plan into lazy envelope items: one
// engine source per assignment over the shared cache, chained through a
// per-request seed so cold builds share structural memo tables with the
// sweep's first-built engine where provably sound (core.NewSeeded). An
// assignment whose build the deadline cuts reports as not-visited — the
// same partial-envelope contract the eval path honours — and one the
// deadline never reaches is not built at all.
func (s *Server) envelopeSources(plan envelopePlan) ([]*sourceState, query.EnvelopeQuery) {
	seed := &atomic.Pointer[core.Engine]{}
	states := make([]*sourceState, len(plan.targets))
	items := make([]query.EnvelopeItem, len(plan.targets))
	for i := range plan.targets {
		states[i] = &sourceState{target: plan.targets[i]}
		items[i] = query.EnvelopeItem{
			Assignment: plan.names[i],
			Spec:       plan.targets[i].key,
			Source:     s.sourceFor(states[i], false, false, seed),
		}
	}
	return states, query.EnvelopeQuery{Inner: plan.inner, Items: items}
}

// handleEnvelope serves POST /v1/envelope: the buffered sweep. A
// deadline mid-sweep is not discarded — the 504 body carries every
// finished assignment plus the partial envelope over exactly those,
// labeled with the visited count.
func (s *Server) handleEnvelope(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s not allowed; use POST", r.Method))
		return
	}
	release, admitted := s.admit(w, r)
	if !admitted {
		return
	}
	defer release()
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	plan, ok := s.decodeEnvelopeRequest(w, r)
	if !ok {
		return
	}
	states, eq := s.envelopeSources(plan)
	out, err := query.EvalEnvelope(eq,
		query.WithParallelism(plan.parallel), query.WithContext(ctx))
	if err != nil {
		// Validation failures are caught at decode; anything else here is
		// a server defect.
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if err := s.sweepSources(ctx, states); err != nil {
		// A genuine build failure stays a request-level error with a real
		// status line, exactly as the retired engine barrier reported it.
		writeError(w, statusOfEvalErr(err), err)
		return
	}
	resp := EnvelopeResponse{
		Space:       plan.space,
		Canonical:   plan.canonical,
		Query:       plan.inner.String(),
		Envelope:    query.RangeDocOf(*out.Result.Envelope),
		Assignments: make([]AssignmentResult, len(plan.targets)),
	}
	for i := range plan.targets {
		resp.Assignments[i] = AssignmentResult{
			Assignment: plan.names[i],
			Spec:       plan.targets[i].key,
			Result:     query.DocOf(out.Slots[i]),
		}
	}
	if cause := context.Cause(ctx); cause != nil {
		resp.Status = string(streamStatusOf(cause))
		resp.Error = evalErrMessage(cause, s.timeout).Error()
		writeJSON(w, statusOfEvalErr(cause), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEnvelopeStream serves POST /v1/envelope/stream: the NDJSON
// sweep. Engines are lazy sources over the shared cache, chained
// through the request's seed so cold assignments share structural memo
// tables: the first assignment streams the moment its own engine is up,
// with later builds overlapping earlier evaluations. A genuine build
// failure before the first frame keeps a real status line; after it,
// the failure travels as the terminal "error" frame with its HTTP code.
func (s *Server) handleEnvelopeStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s not allowed; use POST", r.Method))
		return
	}
	release, admitted := s.admit(w, r)
	if !admitted {
		return
	}
	defer release()
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	plan, ok := s.decodeEnvelopeRequest(w, r)
	if !ok {
		return
	}
	states, eq := s.envelopeSources(plan)
	frames, err := query.EnvelopeStream(eq,
		query.WithParallelism(plan.parallel), query.WithContext(ctx))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sw := newStreamWriter(w)
	for f := range frames {
		if f.Terminal() {
			if err := s.sweepSources(ctx, states); err != nil {
				// Defensive: genuine failures surface on their own frames
				// below before the terminal arrives.
				sw.failEnvelope(statusOfEvalErr(err), err)
				return
			}
			terminal := EnvelopeStatusFrame{
				Frame:    frameStatus,
				Status:   string(f.Status),
				Envelope: query.RangeDocOf(f.Envelope),
			}
			if f.Err != nil {
				terminal.Error = evalErrMessage(f.Err, s.timeout).Error()
			}
			_ = sw.frame(terminal)
			return
		}
		if err := states[f.Index].genuineBuildErr(ctx); err != nil {
			sw.failEnvelope(statusOfEvalErr(err), err)
			return
		}
		err := sw.frame(EnvelopeResultFrame{
			Frame:      frameResult,
			Index:      f.Index,
			Assignment: f.Assignment,
			Spec:       f.Spec,
			Result:     query.DocOf(f.Result),
			Envelope:   query.RangeDocOf(f.Envelope),
		})
		if err != nil {
			// The client is gone; the buffered envelope stream drains
			// itself, so just stop writing.
			return
		}
	}
}
