package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pak/internal/core"
	"pak/internal/query"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// buildSquad returns a build closure counting its invocations.
func buildSquad(n int, calls *atomic.Int64) func() (*core.Engine, error) {
	return func() (*core.Engine, error) {
		calls.Add(1)
		sys, err := scenarios.NFiringSquadSystem(n, ratutil.R(1, 10), false)
		if err != nil {
			return nil, err
		}
		return core.New(sys), nil
	}
}

func TestEngineCacheLRUEviction(t *testing.T) {
	var calls atomic.Int64
	c := NewEngineCache(2)

	e2a, err := c.Get("nsquad(2)", buildSquad(2, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("nsquad(3)", buildSquad(3, &calls)); err != nil {
		t.Fatal(err)
	}
	// Touch nsquad(2) so nsquad(3) is the LRU victim.
	e2b, err := c.Get("nsquad(2)", buildSquad(2, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if e2a != e2b {
		t.Error("warm hit rebuilt the engine")
	}
	if _, err := c.Get("nsquad(4)", buildSquad(4, &calls)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.Len())
	}
	if !c.Contains("nsquad(2)") || !c.Contains("nsquad(4)") || c.Contains("nsquad(3)") {
		t.Errorf("LRU evicted the wrong entry: 2=%v 3=%v 4=%v",
			c.Contains("nsquad(2)"), c.Contains("nsquad(3)"), c.Contains("nsquad(4)"))
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Hits != 1 || st.Misses != 3 {
		t.Errorf("stats = %+v, want 1 eviction, 1 hit, 3 misses", st)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("build ran %d times, want 3", got)
	}
}

func TestEngineCacheUnboundedWhenCapZero(t *testing.T) {
	var calls atomic.Int64
	c := NewEngineCache(0)
	for n := 2; n <= 5; n++ {
		if _, err := c.Get(fmt.Sprintf("nsquad(%d)", n), buildSquad(n, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 4 || c.Stats().Evictions != 0 {
		t.Errorf("unbounded cache evicted: len=%d stats=%+v", c.Len(), c.Stats())
	}
}

// TestEngineCacheSingleflight: N concurrent Gets for one cold key share
// one build; the rest either join the flight or hit the installed entry.
func TestEngineCacheSingleflight(t *testing.T) {
	var calls atomic.Int64
	c := NewEngineCache(4)
	const goroutines = 16

	var wg sync.WaitGroup
	engines := make([]*core.Engine, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			e, err := c.Get("nsquad(3)", buildSquad(3, &calls))
			if err != nil {
				t.Error(err)
				return
			}
			engines[g] = e
		}(g)
	}
	close(start)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("build ran %d times under contention, want 1", got)
	}
	for g := 1; g < goroutines; g++ {
		if engines[g] != engines[0] {
			t.Fatalf("goroutine %d got a different engine", g)
		}
	}
}

// TestEngineCacheBuildErrorNotCached: a failed build reaches every
// waiter and is retried on the next Get — errors never poison a key.
func TestEngineCacheBuildErrorNotCached(t *testing.T) {
	c := NewEngineCache(4)
	boom := errors.New("boom")
	var calls atomic.Int64
	fail := func() (*core.Engine, error) { calls.Add(1); return nil, boom }

	if _, err := c.Get("bad", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Contains("bad") || c.Len() != 0 {
		t.Error("failed build was cached")
	}
	var ok atomic.Int64
	if _, err := c.Get("bad", buildSquad(2, &ok)); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if calls.Load() != 1 || ok.Load() != 1 {
		t.Errorf("retry counts wrong: fail=%d ok=%d", calls.Load(), ok.Load())
	}
}

// TestEvictionInvisible is the contract the LRU rests on: evict
// everything, re-evaluate, and the wire-form results are byte-identical
// (the service-level twin of experiment E17).
func TestEvictionInvisible(t *testing.T) {
	s := New(nil, WithEngineCacheSize(1))
	qs := []query.Query{
		query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire},
		query.ExpectationQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire},
	}

	evalDocs := func() []byte {
		t.Helper()
		e, _, err := s.engineFor("nsquad(2)")
		if err != nil {
			t.Fatal(err)
		}
		results, err := query.EvalBatch(e, qs)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(query.DocsOf(results))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	warm := evalDocs()
	// Force the only slot over to another spec: nsquad(2) is evicted.
	if _, _, err := s.engineFor("nsquad(3)"); err != nil {
		t.Fatal(err)
	}
	if s.Cache().Contains("nsquad(n=2,loss=1/10,improved=false)") {
		t.Fatal("nsquad(2) survived a capacity-1 eviction")
	}
	rebuilt := evalDocs()
	if string(warm) != string(rebuilt) {
		t.Errorf("eviction visible:\nwarm    %s\nrebuilt %s", warm, rebuilt)
	}
	if s.Cache().Stats().Evictions < 2 {
		t.Errorf("stats = %+v, want ≥ 2 evictions", s.Cache().Stats())
	}
}
