package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/query"
	"pak/internal/ratutil"
	"pak/internal/registry"
	"pak/internal/scenarios"
)

// decodedStream is one parsed /v1/eval/stream response.
type decodedStream struct {
	results  []StreamResultFrame
	terminal StreamStatusFrame
}

// parseStream decodes an NDJSON body, asserting the framing contract:
// every line is a frame, result frames only before the terminal frame,
// exactly one terminal frame, in final position.
func parseStream(t *testing.T, body string) decodedStream {
	t.Helper()
	var out decodedStream
	seenTerminal := false
	for ln, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if seenTerminal {
			t.Fatalf("line %d: frame after the terminal status frame: %s", ln, line)
		}
		var probe struct {
			Frame string `json:"frame"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("line %d is not a JSON frame: %v (%s)", ln, err, line)
		}
		switch probe.Frame {
		case frameResult:
			var f StreamResultFrame
			if err := json.Unmarshal([]byte(line), &f); err != nil {
				t.Fatalf("line %d: bad result frame: %v", ln, err)
			}
			out.results = append(out.results, f)
		case frameStatus:
			if err := json.Unmarshal([]byte(line), &out.terminal); err != nil {
				t.Fatalf("line %d: bad status frame: %v", ln, err)
			}
			seenTerminal = true
		default:
			t.Fatalf("line %d: unknown frame kind %q", ln, probe.Frame)
		}
	}
	if !seenTerminal {
		t.Fatal("stream ended without a terminal status frame")
	}
	return out
}

func postStream(t *testing.T, ts *httptest.Server, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/eval/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/eval/stream: %v", err)
	}
	return resp, readAll(t, resp)
}

// compactDoc renders a ResultDoc in the stream's compact wire form.
func compactDoc(t *testing.T, doc query.ResultDoc) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestEvalStreamMatchesBuffered: every streamed result frame is
// byte-identical (in wire form) to the buffered /v1/eval response's
// entry at the same [system][index]; the emitted coordinates cover
// every slot exactly once, grouped by system in request order; the
// terminal frame reports completion.
func TestEvalStreamMatchesBuffered(t *testing.T) {
	ts := newTestServer(t)
	body := fmt.Sprintf(`{"systems": ["nsquad(2)", "nsquad(n=3)"], "queries": %s}`, squadBatch(t))

	buffResp, buffData := postEval(t, ts, body)
	if buffResp.StatusCode != http.StatusOK {
		t.Fatalf("buffered status %d: %s", buffResp.StatusCode, buffData)
	}
	var buffered EvalResponse
	if err := json.Unmarshal(buffData, &buffered); err != nil {
		t.Fatal(err)
	}

	resp, data := postStream(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != contentTypeNDJSON {
		t.Errorf("Content-Type = %q, want %q", ct, contentTypeNDJSON)
	}
	stream := parseStream(t, data)

	total := 0
	for _, sr := range buffered.Results {
		total += len(sr.Results)
	}
	if len(stream.results) != total {
		t.Fatalf("stream emitted %d result frames, want %d", len(stream.results), total)
	}
	seen := make(map[[2]int]bool)
	lastSystem := 0
	for _, f := range stream.results {
		if f.System < lastSystem {
			t.Errorf("frames not grouped by system: system %d after %d", f.System, lastSystem)
		}
		lastSystem = f.System
		key := [2]int{f.System, f.Index}
		if seen[key] {
			t.Errorf("slot %v emitted twice", key)
		}
		seen[key] = true
		sr := buffered.Results[f.System]
		if f.Spec != sr.System || f.Canonical != sr.Canonical {
			t.Errorf("frame %v names (%q, %q), want (%q, %q)", key, f.Spec, f.Canonical, sr.System, sr.Canonical)
		}
		if got, want := compactDoc(t, f.Result), compactDoc(t, sr.Results[f.Index]); got != want {
			t.Errorf("slot %v differs from the buffered response:\nstream:   %s\nbuffered: %s", key, got, want)
		}
	}
	for i, sr := range buffered.Results {
		for j := range sr.Results {
			if !seen[[2]int{i, j}] {
				t.Errorf("slot [%d][%d] never streamed", i, j)
			}
		}
	}
	if stream.terminal.Status != string(query.StreamComplete) || stream.terminal.Error != "" {
		t.Errorf("terminal = %+v, want complete with no error", stream.terminal)
	}
}

// TestEvalStreamGoldenComplete pins the full NDJSON body of a serial
// (deterministic frame order) streaming evaluation: the result-frame
// and complete-terminal wire shapes.
func TestEvalStreamGoldenComplete(t *testing.T) {
	ts := newTestServer(t)
	batch := mustBatch(t,
		query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire},
		query.ExpectationQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire},
	)
	resp, data := postStream(t, ts,
		fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s, "parallelism": 1}`, batch))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	goldenCompare(t, "stream-complete", data)
}

// TestEvalStreamGoldenDeadline pins the deadline wire shapes: with an
// already-expired request budget every slot streams a per-slot deadline
// error frame and the terminal frame carries the deterministic timeout
// message — HTTP 200, because the finished-prefix contract holds even
// when the prefix is empty.
func TestEvalStreamGoldenDeadline(t *testing.T) {
	ts := newTestServer(t, WithRequestTimeout(time.Nanosecond))
	batch := mustBatch(t,
		query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire})
	resp, data := postStream(t, ts,
		fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s, "parallelism": 1}`, batch))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	stream := parseStream(t, data)
	if stream.terminal.Status != string(query.StreamDeadline) {
		t.Fatalf("terminal = %+v, want deadline", stream.terminal)
	}
	goldenCompare(t, "stream-deadline", data)
}

// TestEvalStreamGoldenCancelled pins the cancelled terminal shape by
// serving a request whose context is already cancelled (the
// ResponseRecorder stands in for a client that went away but whose
// stream we can still read).
func TestEvalStreamGoldenCancelled(t *testing.T) {
	srv := New(nil)
	batch := mustBatch(t,
		query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire})
	body := fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s, "parallelism": 1}`, batch)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/eval/stream", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	stream := parseStream(t, rec.Body.String())
	if stream.terminal.Status != string(query.StreamCancelled) {
		t.Fatalf("terminal = %+v, want cancelled", stream.terminal)
	}
	goldenCompare(t, "stream-cancelled", rec.Body.String())
}

// boomRegistry is a registry with one working and one unbuildable
// scenario, for the mid-stream failure path.
func boomRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	reg := registry.New()
	if err := reg.Register(registry.Scenario{
		Name: "good",
		Doc:  "a working test scenario",
		Build: func(registry.Args) (*pps.System, error) {
			return scenarios.NFiringSquadSystem(2, ratutil.R(1, 10), false)
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(registry.Scenario{
		Name: "boom",
		Doc:  "a test scenario whose build always fails",
		Build: func(registry.Args) (*pps.System, error) {
			return nil, fmt.Errorf("the unfold blew up")
		},
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestEvalStreamMidStreamBuildFailure forces an engine failure after
// streaming has begun: system "good" streams its frames, then system
// "boom"'s build fails. The status line is already spent, so the
// failure must arrive as the terminal "error" frame on the open 200
// stream — never a second status line (which net/http would drop with
// a superfluous-WriteHeader log, leaving the client a truncated stream
// with no explanation).
func TestEvalStreamMidStreamBuildFailure(t *testing.T) {
	ts := httptest.NewServer(New(boomRegistry(t)).Handler())
	t.Cleanup(ts.Close)
	batch := mustBatch(t,
		query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire})

	resp, data := postStream(t, ts,
		fmt.Sprintf(`{"systems": ["good", "boom"], "queries": %s, "parallelism": 1}`, batch))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with a terminal error frame (%s)", resp.StatusCode, data)
	}
	stream := parseStream(t, data)
	if len(stream.results) != 1 {
		t.Fatalf("got %d result frames before the failure, want 1 (%s)", len(stream.results), data)
	}
	if f := stream.results[0]; f.Spec != "good" || f.Result.Error != "" {
		t.Errorf("good system's frame = %+v, want a clean result", f)
	}
	term := stream.terminal
	if term.Status != streamStatusError || term.Code != http.StatusBadRequest ||
		!strings.Contains(term.Error, "the unfold blew up") {
		t.Errorf("terminal = %+v, want an error frame with code 400 naming the build failure", term)
	}
	goldenCompare(t, "stream-error", data)
}

// TestEvalStreamPreStreamFailuresKeepStatusLine: request-level failures
// before any frame is flushed must stay ordinary JSON errors with real
// HTTP statuses — the stream handler shares the buffered path's error
// vocabulary until the first frame commits the 200.
func TestEvalStreamPreStreamFailuresKeepStatusLine(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed body", `{"systems": [`, http.StatusBadRequest},
		{"unknown scenario", `{"systems": ["nosuch"], "queries": []}`, http.StatusNotFound},
		{"empty request", `{}`, http.StatusBadRequest},
		{"cold build failure before any frame", `{"systems": ["random(agents=0)"], "queries": []}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := postStream(t, ts, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
			continue
		}
		var ed errorDoc
		if err := json.Unmarshal([]byte(data), &ed); err != nil || ed.Error == "" {
			t.Errorf("%s: body is not a JSON error doc: %s", tc.name, data)
		}
	}
}

// mustBatch marshals queries into the wire batch format.
func mustBatch(t *testing.T, qs ...query.Query) []byte {
	t.Helper()
	doc, err := query.MarshalBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestEvalTimeoutReturnsFinishedPrefix is the acceptance test for the
// buffered path's deadline fix: the same batch evaluates with and
// without a deadline, and every slot the deadlined run finished must be
// byte-identical to its untimed value, with every unfinished slot
// carrying a per-slot deadline error and the response carrying the
// top-level timeout marker on a 504. The batch is large enough that
// the budget cannot finish it, and the first slots cheap enough that
// some always do — but the assertions themselves only rely on the
// dichotomy, so scheduling noise cannot flake the test.
func TestEvalTimeoutReturnsFinishedPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("timed prefix test in -short")
	}
	// 1000 queries over nsquad(6), each slot's fact carrying a distinct
	// never-matching conjunct so the engine's per-fact memo cannot
	// collapse the batch into a handful of evaluations — each slot pays
	// a full acting-runs scan. The timed budget is derived from the
	// measured untimed run (a tenth of it) rather than hard-coded:
	// evaluation dominates that run by two orders of magnitude over
	// batch decoding, so a tenth always admits roughly a hundred slots
	// and truncates the rest, under any uniform slowdown (-race, a
	// loaded CI machine). Scans abort cooperatively at the deadline, so
	// a slot in flight when it fires no longer completes on borrowed
	// time. The assertions only rely on the finished/unfinished
	// dichotomy, so scheduling noise cannot flake the byte-identity
	// check.
	var qs []query.Query
	for i := 0; i < 1000; i++ {
		fact := logic.And(scenarios.AllFireFact(6),
			logic.Not(logic.LocalContains(scenarios.General, fmt.Sprintf("#never-%d#", i))))
		qs = append(qs, query.ConstraintQuery{Fact: fact, Agent: scenarios.General, Action: scenarios.ActFire})
	}
	batch, err := query.MarshalBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"systems": ["nsquad(6)"], "queries": %s, "parallelism": 1}`, batch)

	untimedTS := newTestServer(t)
	untimedStart := time.Now()
	untimedResp, untimedData := postEval(t, untimedTS, body)
	untimedDur := time.Since(untimedStart)
	if untimedResp.StatusCode != http.StatusOK {
		t.Fatalf("untimed status %d", untimedResp.StatusCode)
	}
	var untimed EvalResponse
	if err := json.Unmarshal(untimedData, &untimed); err != nil {
		t.Fatal(err)
	}

	// Warm the engine first (in-flight builds complete and stay cached
	// even past a deadline), so the timed request spends its whole
	// budget evaluating rather than unfolding.
	timedTS := newTestServer(t, WithRequestTimeout(untimedDur/10))
	warmResp, _ := postEval(t, timedTS, `{"systems": ["nsquad(6)"], "queries": []}`)
	warmResp.Body.Close()

	timedResp, timedData := postEval(t, timedTS, body)
	if timedResp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed status %d, want 504 — the batch finished inside the budget; grow it", timedResp.StatusCode)
	}
	var timed EvalResponse
	if err := json.Unmarshal(timedData, &timed); err != nil {
		t.Fatal(err)
	}
	if timed.Status != string(query.StreamDeadline) || !strings.Contains(timed.Error, "deadline exceeded") {
		t.Errorf("timeout marker = (%q, %q), want deadline status with a deadline message", timed.Status, timed.Error)
	}
	if len(timed.Results) != 1 || len(timed.Results[0].Results) != len(qs) {
		t.Fatalf("timed response lost its shape: %d systems", len(timed.Results))
	}

	finished, unfinished := 0, 0
	for j, doc := range timed.Results[0].Results {
		if doc.Error != "" {
			unfinished++
			if !strings.Contains(doc.Error, "context deadline exceeded") {
				t.Errorf("slot %d: unfinished error %q does not name the deadline", j, doc.Error)
			}
			continue
		}
		finished++
		if got, want := compactDoc(t, doc), compactDoc(t, untimed.Results[0].Results[j]); got != want {
			t.Errorf("finished slot %d not byte-identical to its untimed value:\ntimed:   %s\nuntimed: %s", j, got, want)
		}
	}
	if finished == 0 {
		t.Error("deadlined run finished no slot at all; the prefix contract was not exercised")
	}
	if unfinished == 0 {
		t.Error("deadlined run finished every slot; the truncation path was not exercised")
	}
	t.Logf("prefix: %d finished, %d unfinished", finished, unfinished)
}

// TestStatsEndpoint: /v1/stats reports the engine cache's counters and
// the per-backend slot counters, and its wire shape is golden-pinned
// after a deterministic priming sequence (one miss, two hits on the
// same canonical spec; two enum slots and one lp slot).
func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	batch := mustBatch(t,
		query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire})
	for i := 0; i < 2; i++ {
		resp, data := postEval(t, ts, fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, batch))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("prime %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	lpBatch := mustBatch(t,
		query.ConstraintQuery{Fact: logic.True(), Agent: scenarios.General, Action: scenarios.ActFire})
	resp0, data := postEval(t, ts, fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s, "backend": "lp"}`, lpBatch))
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("lp prime: status %d: %s", resp0.StatusCode, data)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: status %d", resp.StatusCode)
	}
	var out StatsResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if out.EngineCache.Len != 1 || out.EngineCache.Hits != 2 || out.EngineCache.Misses != 1 {
		t.Errorf("stats after priming = %+v, want len=1 hits=2 misses=1", out.EngineCache)
	}
	if out.Backends.Enum != 2 || out.Backends.LP != 1 {
		t.Errorf("backend slots = %+v, want enum=2 lp=1", out.Backends)
	}
	goldenCompare(t, "stats", body)
}
