// The streaming transport: POST /v1/eval/stream speaks newline-
// delimited JSON (NDJSON) over http.Flusher, one frame per line:
//
//	{"frame":"result","system":0,"spec":"nsquad(2)","canonical":"...","index":1,"result":{...}}
//	{"frame":"status","status":"complete"}
//
// Result frames carry exactly the ResultDoc the buffered /v1/eval path
// would have returned for the same slot — byte-identical, pinned by
// tests — and every stream ends with exactly one terminal status frame:
//
//	complete   every query evaluated (per-slot failures included)
//	deadline   the request deadline expired; frames already emitted are
//	           exact, the remaining slots carry per-slot deadline errors
//	cancelled  the request context was cancelled (client gone)
//	error      a request-level failure after streaming began (e.g. a
//	           mid-stream engine build failure); carries the HTTP status
//	           the failure would have had in "code"
//
// Store-served frames stream first, in (system, batch) order; evaluated
// frames then arrive in completion order across ALL systems at once
// (serial parallelism therefore streams in request order). Engines are
// lazy: each system's engine builds when the evaluator's first worker
// reaches one of its slots, so a cold multi-system request starts
// answering as soon as its first engine is up — and systems the
// deadline cuts before any slot starts never build at all.
//
// Request-level failures BEFORE the first frame (bad body, unknown
// scenario, caps, a cold build failing while nothing has streamed) are
// ordinary JSON error responses with their own status line. After the
// first flushed frame the status line is spent: failures become the
// terminal "error" frame, never a second WriteHeader.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"pak/internal/query"
)

// Frame discriminators and the stream's media type.
const (
	frameResult = "result"
	frameStatus = "status"

	// streamStatusError is the terminal status for request-level
	// failures once streaming has begun; the query layer's
	// complete/deadline/cancelled statuses cover every other ending.
	streamStatusError = "error"

	contentTypeNDJSON = "application/x-ndjson"
)

// StreamResultFrame is one result line of a /v1/eval/stream response.
type StreamResultFrame struct {
	// Frame is always "result".
	Frame string `json:"frame"`
	// System is the index of the slot's system in the request; Spec and
	// Canonical echo that system's requested and resolved forms.
	System    int    `json:"system"`
	Spec      string `json:"spec"`
	Canonical string `json:"canonical"`
	// Index is the query's position within its system's batch.
	Index int `json:"index"`
	// Stage labels the frame's tier under an approx request: "approx"
	// for the sampled estimate, "exact" for the refined result. A
	// supported slot emits its approx frame strictly before its exact
	// frame; a deadline between the two leaves the approx frame as the
	// slot's final, sound answer. Absent on exact-only requests, so the
	// classic wire shape is byte-identical to before the tier existed.
	Stage string `json:"stage,omitempty"`
	// Result is the slot's wire result — identical to the entry the
	// buffered /v1/eval response would carry at [System][Index].
	Result query.ResultDoc `json:"result"`
}

// StreamStatusFrame is the terminal line of every /v1/eval/stream
// response.
type StreamStatusFrame struct {
	// Frame is always "status".
	Frame string `json:"frame"`
	// Status is "complete", "deadline", "cancelled" or "error".
	Status string `json:"status"`
	// Code is the HTTP status a mid-stream failure would have carried
	// (set only on "error" frames).
	Code int `json:"code,omitempty"`
	// Error is the request-level failure or timeout message (empty on
	// "complete").
	Error string `json:"error,omitempty"`
}

// streamWriter owns the one-status-line invariant of the streaming
// path: before the first frame it can still answer a plain JSON error
// with its own status code; from the first frame on, the status line is
// spent and every failure must travel as a terminal error frame. All
// writes funnel through it, so a double WriteHeader is structurally
// impossible rather than merely audited.
type streamWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher // nil when the ResponseWriter cannot flush
	started bool
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	f, _ := w.(http.Flusher)
	return &streamWriter{w: w, flusher: f}
}

// frame writes one NDJSON line and flushes it to the client. The first
// frame commits the 200 status line and the NDJSON content type.
func (sw *streamWriter) frame(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		// Frames are fully materialized value types; this cannot fail.
		// Guarded anyway so a future frame type can't commit a torn line.
		return err
	}
	if !sw.started {
		sw.w.Header().Set("Content-Type", contentTypeNDJSON)
		sw.w.WriteHeader(http.StatusOK)
		sw.started = true
	}
	if _, err := sw.w.Write(append(data, '\n')); err != nil {
		return err
	}
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
	return nil
}

// fail reports a request-level failure in whichever shape is still
// expressible: a plain JSON error with its own status line while
// nothing has been flushed, or a terminal "error" status frame once
// streaming has begun.
func (sw *streamWriter) fail(status int, err error) {
	if !sw.started {
		writeError(sw.w, status, err)
		return
	}
	_ = sw.frame(StreamStatusFrame{Frame: frameStatus, Status: streamStatusError, Code: status, Error: err.Error()})
}

// handleEvalStream serves POST /v1/eval/stream. It shares request
// decoding with the buffered path, then streams one EvalMultiStream
// over every system at once: each system's engine is a lazy source that
// builds when the evaluator's first worker reaches one of its slots, so
// system 0's results stream while system 3's engine is still unfolding,
// a finished result reaches the client the moment its worker completes,
// and a deadline mid-request leaves unreached builds unstarted —
// truncation can only ever cost unfinished work.
func (s *Server) handleEvalStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s not allowed; use POST", r.Method))
		return
	}
	release, admitted := s.admit(w, r)
	if !admitted {
		return
	}
	defer release()
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}

	plan, ok := s.decodeEvalRequest(w, r)
	if !ok {
		return
	}
	lookup := s.lookupStored(plan)
	evalView, slotMap := reducePlan(plan, lookup)
	s.countBackendSlots(evalView)

	states, items := s.lazyItems(evalView, lookup)
	sw := newStreamWriter(w)
	// Stored slots stream first, across every system in (system, batch)
	// order: they are on hand before any engine is. Fully-hit systems
	// are thereby answered in full, engine-free.
	for i := range plan.targets {
		for j := range plan.batches[i] {
			hit := lookup.hit(i, j)
			if hit == nil {
				continue
			}
			err := sw.frame(StreamResultFrame{
				Frame:     frameResult,
				System:    i,
				Spec:      plan.specs[i],
				Canonical: plan.targets[i].key,
				Index:     j,
				Result:    *hit,
			})
			if err != nil {
				return
			}
		}
	}
	for f := range query.EvalMultiStream(items, evalView.evalOptions(ctx)...) {
		if f.Terminal() {
			// The evaluator's terminal is folded into the request
			// terminal below, where the context cause names the ending.
			continue
		}
		if st := states[f.System]; st != nil {
			if err := st.genuineBuildErr(ctx); err != nil {
				// A genuine mid-stream build failure (bad spec, builder
				// domain error) ends the stream request-level: a plain
				// error response while nothing has flushed, the terminal
				// "error" frame with its HTTP code otherwise.
				sw.fail(statusOfEvalErr(err), err)
				return
			}
		}
		orig := f.Index
		if slotMap != nil {
			orig = slotMap[f.System][f.Index]
		}
		doc := query.DocOf(f.Result)
		if f.Stage != query.StageApprox {
			s.persistResult(ctx, lookup, plan.targets[f.System].key, f.System, orig, doc)
		}
		err := sw.frame(StreamResultFrame{
			Frame:     frameResult,
			System:    f.System,
			Spec:      plan.specs[f.System],
			Canonical: plan.targets[f.System].key,
			Index:     orig,
			Stage:     string(f.Stage),
			Result:    doc,
		})
		if err != nil {
			// The client is gone; the buffered query stream drains
			// itself, so just stop writing.
			return
		}
	}
	if err := s.sweepSources(ctx, states); err != nil {
		// A batchless probe's builder error surfaces request-level, as
		// on the buffered path.
		sw.fail(statusOfEvalErr(err), err)
		return
	}

	terminal := StreamStatusFrame{Frame: frameStatus, Status: string(query.StreamComplete)}
	if cause := context.Cause(ctx); cause != nil {
		terminal.Status = string(streamStatusOf(cause))
		terminal.Error = evalErrMessage(cause, s.timeout).Error()
	}
	_ = sw.frame(terminal)
}
