package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"pak/internal/query"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// approxStreamBody is the canonical approx streaming request the wire
// tests share: one system, a mixed batch (three approximable kinds plus
// one pass-through theorem), a fixed seed and budget, serial so the
// frame order is deterministic and golden-pinnable.
func approxStreamBody(t *testing.T, approx string) string {
	t.Helper()
	all := scenarios.AllFireFact(2)
	batch := mustBatch(t,
		query.ConstraintQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		query.ExpectationQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		query.ThresholdQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire, P: ratutil.R(1, 2)},
		query.TheoremQuery{Theorem: query.TheoremExpectation, Fact: all,
			Agent: scenarios.General, Action: scenarios.ActFire},
	)
	return fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s, "parallelism": 1, "approx": %s}`,
		batch, approx)
}

// TestApproxEvalGolden pins the buffered /v1/eval body under an approx
// request: every supported slot's refined result carries its estimate
// (exact rationals on the wire) and the ciCovered self-check; the
// theorem slot is untouched. The body is a pure function of the request
// — seeded sampling, integer-arithmetic CI — so the golden holds across
// platforms and reruns.
func TestApproxEvalGolden(t *testing.T) {
	ts := newTestServer(t)
	resp, data := postEval(t, ts, approxStreamBody(t, `{"samples": 64, "seed": 5}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	goldenCompare(t, "approx-eval", string(data))

	var er EvalResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	for i, doc := range er.Results[0].Results[:3] {
		if doc.Estimate == nil {
			t.Fatalf("slot %d: no estimate on the wire", i)
		}
		if !doc.Flags[query.FlagCICovered] {
			t.Errorf("slot %d: self-check flag missing or false", i)
		}
		if doc.Estimate.Samples != 64 {
			t.Errorf("slot %d: samples = %d, want 64", i, doc.Estimate.Samples)
		}
	}
	if er.Results[0].Results[3].Estimate != nil {
		t.Error("theorem slot grew an estimate")
	}
}

// TestApproxStreamGolden pins the NDJSON frame shapes of an approx
// stream — per supported slot a stage:"approx" frame strictly before
// its stage:"exact" frame — and asserts the ordering contract on the
// parsed frames.
func TestApproxStreamGolden(t *testing.T) {
	ts := newTestServer(t)
	resp, data := postStream(t, ts, approxStreamBody(t, `{"eps": "1/10", "delta": "1/100", "seed": 11}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	goldenCompare(t, "approx-stream", data)

	stream := parseStream(t, data)
	assertApproxBeforeExact(t, stream, 4, []int{0, 1, 2})
	if stream.terminal.Status != string(query.StreamComplete) {
		t.Fatalf("terminal = %+v, want complete", stream.terminal)
	}
}

// assertApproxBeforeExact checks the per-slot stage sequence: every
// approximable slot (by index) emits exactly ["approx", "exact"] in
// that order, every other slot exactly ["exact"].
func assertApproxBeforeExact(t *testing.T, stream decodedStream, slots int, approximable []int) {
	t.Helper()
	canApprox := make(map[int]bool, len(approximable))
	for _, i := range approximable {
		canApprox[i] = true
	}
	stages := make(map[int][]string, slots)
	for _, f := range stream.results {
		stages[f.Index] = append(stages[f.Index], f.Stage)
	}
	for i := 0; i < slots; i++ {
		want := "exact"
		if canApprox[i] {
			want = "approx,exact"
		}
		got := ""
		for j, s := range stages[i] {
			if j > 0 {
				got += ","
			}
			got += s
		}
		if got != want {
			t.Errorf("slot %d: stage sequence %q, want %q", i, got, want)
		}
	}
}

// TestApproxOnlyStreamGolden pins the approx-only shape: one
// stage:"approx" frame per supported slot, no exact refinement, the
// theorem slot still exact.
func TestApproxOnlyStreamGolden(t *testing.T) {
	ts := newTestServer(t)
	resp, data := postStream(t, ts, approxStreamBody(t, `{"samples": 64, "seed": 5, "only": true}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	goldenCompare(t, "approx-stream-only", data)

	stream := parseStream(t, data)
	for _, f := range stream.results {
		if f.Index < 3 && f.Stage != "approx" {
			t.Errorf("slot %d: stage %q, want approx (only mode)", f.Index, f.Stage)
		}
		if f.Index == 3 && f.Stage != "exact" {
			t.Errorf("theorem slot: stage %q, want exact", f.Stage)
		}
	}
	if len(stream.results) != 4 {
		t.Fatalf("%d frames, want 4 (no refinement frames in only mode)", len(stream.results))
	}
}

// TestApproxStreamDeterminism is the wire half of the tentpole's
// determinism contract: the same seeded request produces byte-identical
// frames serial, parallel, and on rerun. Parallel completion order may
// interleave differently, so frames are compared per (system, index,
// stage) coordinate; the serial body is additionally order-pinned by
// the golden above.
func TestApproxStreamDeterminism(t *testing.T) {
	ts := newTestServer(t)
	frames := func(parallelism int) map[string]string {
		all := scenarios.AllFireFact(2)
		batch := mustBatch(t,
			query.ConstraintQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
			query.ExpectationQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
			query.ThresholdQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire, P: ratutil.R(1, 2)},
		)
		body := fmt.Sprintf(
			`{"systems": ["nsquad(2)", "nsquad(n=3)"], "queries": %s, "parallelism": %d, "approx": {"samples": 128, "seed": 42}}`,
			batch, parallelism)
		resp, data := postStream(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		out := make(map[string]string)
		for _, f := range parseStream(t, data).results {
			key := fmt.Sprintf("%d/%d/%s", f.System, f.Index, f.Stage)
			if _, dup := out[key]; dup {
				t.Fatalf("frame %s emitted twice", key)
			}
			out[key] = compactDoc(t, f.Result)
		}
		return out
	}
	serial := frames(1)
	parallel := frames(8)
	rerun := frames(8)
	if len(serial) != 12 { // 2 systems × (3 approx + 3 exact)
		t.Fatalf("serial emitted %d frames, want 12", len(serial))
	}
	for key, want := range serial {
		if parallel[key] != want {
			t.Errorf("%s: parallel differs from serial:\nserial:   %s\nparallel: %s", key, want, parallel[key])
		}
		if rerun[key] != want {
			t.Errorf("%s: rerun differs", key)
		}
	}
	if len(parallel) != len(serial) || len(rerun) != len(serial) {
		t.Fatalf("frame counts differ: %d serial, %d parallel, %d rerun", len(serial), len(parallel), len(rerun))
	}
}

// TestApproxDeadlineMidRefinement pins the deadline-soundness contract
// on both transports. The test-only refinement gate blocks slot 2
// between its approx emission and its exact refinement until the
// request deadline fires, so the cut point is deterministic and the
// 504/deadline bodies show the full contract at once (serial order):
//
//   - slots 0–1 finished both stages before the cut: refined values
//     with estimates and the ciCovered self-check;
//   - slot 2 was cut mid-refinement: its estimate stands as a sound
//     answer — no per-slot error, no ciCovered claim (the check never
//     ran), and on the stream no exact frame overwrites it;
//   - slot 3 (theorem) never started: a per-slot deadline error.
func TestApproxDeadlineMidRefinement(t *testing.T) {
	query.SetApproxRefineGate(func(ctx context.Context, sys, idx int) {
		if idx == 2 {
			<-ctx.Done()
		}
	})
	defer query.SetApproxRefineGate(nil)
	ts := newTestServer(t, WithRequestTimeout(500*time.Millisecond))

	body := approxStreamBody(t, `{"samples": 64, "seed": 5}`)
	resp, data := postEval(t, ts, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("buffered status %d: %s", resp.StatusCode, data)
	}
	goldenCompare(t, "approx-deadline-eval", string(data))
	var er EvalResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Status != string(query.StreamDeadline) {
		t.Fatalf("status %q, want deadline", er.Status)
	}
	docs := er.Results[0].Results
	for i, doc := range docs[:3] {
		if doc.Error != "" {
			t.Errorf("slot %d: error %q, want the sound estimate", i, doc.Error)
		}
		if doc.Estimate == nil {
			t.Errorf("slot %d: estimate missing from the 504 body", i)
		}
	}
	for _, i := range []int{0, 1} {
		if !docs[i].Flags[query.FlagCICovered] {
			t.Errorf("slot %d refined before the cut: self-check flag missing", i)
		}
	}
	if _, ok := docs[2].Flags[query.FlagCICovered]; ok {
		t.Error("cut slot claims a self-check that never ran")
	}
	if docs[3].Error == "" {
		t.Error("never-started theorem slot should carry the deadline error")
	}

	sresp, sdata := postStream(t, ts, body)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", sresp.StatusCode, sdata)
	}
	goldenCompare(t, "approx-deadline-stream", sdata)
	stream := parseStream(t, sdata)
	if stream.terminal.Status != string(query.StreamDeadline) {
		t.Fatalf("terminal = %+v, want deadline", stream.terminal)
	}
	var cutStages []string
	for _, f := range stream.results {
		if f.Index == 2 {
			cutStages = append(cutStages, f.Stage)
		}
	}
	if len(cutStages) != 1 || cutStages[0] != "approx" {
		t.Fatalf("cut slot emitted stages %v, want exactly [approx]", cutStages)
	}
}

// TestApproxBadRequests: spec defects are request-level 400s at decode,
// before any engine work.
func TestApproxBadRequests(t *testing.T) {
	ts := newTestServer(t)
	for name, approx := range map[string]string{
		"no budget":     `{}`,
		"bad eps":       `{"eps": "3/2"}`,
		"unparsable":    `{"eps": "not-a-rat"}`,
		"bad delta":     `{"samples": 10, "delta": "2"}`,
		"negative":      `{"samples": -1}`,
		"over the cap":  `{"samples": 99999999}`,
		"unknown field": `{"nope": 1}`,
	} {
		resp, data := postEval(t, ts, approxStreamBody(t, approx))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, data)
		}
	}
}

// TestApproxModelMemoized: the orphaned-sampler seam is closed — the
// sampling model for a cached engine is built once and shared (same
// pointer) across requests, and an uncached key reports false instead
// of building.
func TestApproxModelMemoized(t *testing.T) {
	srv := New(nil)
	e, key, err := srv.engineFor("nsquad(2)")
	if err != nil {
		t.Fatal(err)
	}
	m1, ok := srv.Cache().ModelFor(key)
	if !ok || m1 == nil {
		t.Fatalf("ModelFor(%q) = (%v, %v), want a model", key, m1, ok)
	}
	m2, _ := srv.Cache().ModelFor(key)
	if m1 != m2 {
		t.Error("model rebuilt instead of memoized")
	}
	if m1.System() != e.System() {
		t.Error("model built over a different system than the cached engine")
	}
	if _, ok := srv.Cache().ModelFor("no-such-key"); ok {
		t.Error("ModelFor invented a model for an uncached key")
	}
}
