package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"pak/internal/query"
	"pak/internal/scenarios"
	"pak/internal/store"
)

// storeKeyFor derives the content address the service files a
// (system spec, query) slot under — via the same resolution path.
func storeKeyFor(t *testing.T, srv *Server, spec string, q query.Query) store.Key {
	t.Helper()
	rt, err := srv.resolveTarget(spec)
	if err != nil {
		t.Fatalf("resolveTarget(%s): %v", spec, err)
	}
	raw, err := query.MarshalCanonical(q)
	if err != nil {
		t.Fatalf("MarshalCanonical: %v", err)
	}
	return store.NewKey(rt.key, raw)
}

func fetchStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var out StatsResponse
	if err := json.Unmarshal([]byte(readAll(t, resp)), &out); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return out
}

// TestStoreRestartByteIdentity is the PR's acceptance criterion:
// evaluate a batch against a disk store, "restart" pakd (a brand-new
// Server — fresh engine cache, fresh counters — over the same
// -store-dir), replay the batch, and the response bytes are identical
// with store hits > 0 and ZERO engine builds — restart without
// recomputation, proven by diffing bytes.
func TestStoreRestartByteIdentity(t *testing.T) {
	dir := t.TempDir()
	body := fmt.Sprintf(`{"systems": ["nsquad(2)", "nsquad(n=3)"], "queries": %s}`, squadBatch(t))

	openStore := func() store.Store {
		d, err := store.OpenDisk(dir)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	// First life: evaluate and persist.
	srv1 := New(nil, WithResultStore(openStore()))
	ts1 := httptest.NewServer(srv1.Handler())
	resp1, data1 := postEval(t, ts1, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first life: status %d: %s", resp1.StatusCode, data1)
	}
	stats1 := fetchStats(t, ts1)
	if stats1.Store == nil || stats1.Store.Writes != 8 || stats1.Store.Misses != 8 || stats1.Store.Hits != 0 {
		t.Fatalf("first life store stats = %+v, want 8 misses, 8 writes", stats1.Store)
	}
	ts1.Close()

	// Second life: a fresh process image over the same directory.
	srv2 := New(nil, WithResultStore(openStore()))
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	resp2, data2 := postEval(t, ts2, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second life: status %d: %s", resp2.StatusCode, data2)
	}
	if string(data1) != string(data2) {
		t.Errorf("replayed response is not byte-identical across restart:\nfirst:  %s\nsecond: %s", data1, data2)
	}
	stats2 := fetchStats(t, ts2)
	if stats2.Store == nil || stats2.Store.Hits != 8 || stats2.Store.Misses != 0 || stats2.Store.Writes != 0 {
		t.Errorf("second life store stats = %+v, want 8 hits and nothing else", stats2.Store)
	}
	// Zero engine rebuilds: both systems were fully stored, so the
	// fresh engine cache was never even consulted.
	if cs := srv2.Cache().Stats(); cs.Misses != 0 || cs.Len != 0 {
		t.Errorf("second life engine cache = %+v, want untouched (0 misses, 0 engines)", cs)
	}
	// No backend answered anything either.
	if stats2.Backends.Enum != 0 || stats2.Backends.LP != 0 {
		t.Errorf("second life backends = %+v, want zero accepted slots", stats2.Backends)
	}
}

// TestStoreStreamServesHits: the streaming path serves stored slots
// too — same frame bytes as a storeless server (sorted, since
// completion order is scheduling-dependent), zero engine builds on a
// fully warmed restart.
func TestStoreStreamServesHits(t *testing.T) {
	dir := t.TempDir()
	body := fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, squadBatch(t))

	sortedResultLines := func(body string) []string {
		var lines []string
		for _, ln := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
			if strings.Contains(ln, `"frame":"result"`) {
				lines = append(lines, ln)
			}
		}
		sort.Strings(lines)
		return lines
	}

	plain := newTestServer(t)
	_, plainBody := postStream(t, plain, body)
	want := sortedResultLines(plainBody)

	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(nil, WithResultStore(d))
	ts1 := httptest.NewServer(srv1.Handler())
	// Populate through the STREAM path: it persists too.
	_, seed := postStream(t, ts1, body)
	parseStream(t, seed)
	ts1.Close()

	d2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(nil, WithResultStore(d2))
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	resp, got := postStream(t, ts2, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, got)
	}
	dec := parseStream(t, got)
	if dec.terminal.Status != string(query.StreamComplete) {
		t.Fatalf("terminal = %+v, want complete", dec.terminal)
	}
	gotLines := sortedResultLines(got)
	if len(gotLines) != len(want) {
		t.Fatalf("stream frame count %d, want %d", len(gotLines), len(want))
	}
	for i := range want {
		if gotLines[i] != want[i] {
			t.Errorf("frame %d differs from storeless stream:\ngot:  %s\nwant: %s", i, gotLines[i], want[i])
		}
	}
	if cs := srv2.Cache().Stats(); cs.Misses != 0 {
		t.Errorf("warmed stream still built %d engines, want 0", cs.Misses)
	}
	if st := srv2.storeStats(); st.Hits != 4 {
		t.Errorf("warmed stream hits = %d, want 4", st.Hits)
	}
}

// TestStoreCorruptNeverServed: a corrupt entry is counted, recomputed
// (the answer stays byte-identical to a clean evaluation) and healed
// by the write-back — never served.
func TestStoreCorruptNeverServed(t *testing.T) {
	mem := store.NewMemory()
	srv := New(nil, WithResultStore(mem))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	q := query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire}
	batch := mustBatch(t, q)
	body := fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, batch)

	_, clean := postEval(t, ts, body)
	if !mem.Corrupt(storeKeyFor(t, srv, "nsquad(2)", q)) {
		t.Fatal("no stored entry to corrupt")
	}
	resp, again := postEval(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, again)
	}
	if string(clean) != string(again) {
		t.Errorf("recomputed answer differs from the clean one:\nclean: %s\nafter: %s", clean, again)
	}
	st := srv.storeStats()
	if st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}
	// The write-back healed the entry: third time is a pure hit.
	_, third := postEval(t, ts, body)
	if string(third) != string(clean) {
		t.Errorf("healed answer differs:\nclean:  %s\nhealed: %s", clean, third)
	}
	if st := srv.storeStats(); st.Hits != 1 || st.Writes != 2 {
		t.Errorf("store stats after heal = %+v, want 1 hit, 2 writes", st)
	}
}

// TestStorePersistenceContract: what must never be written — approx
// results (whole requests bypass the tier), error slots, and slots of
// a request whose context already has a cause.
func TestStorePersistenceContract(t *testing.T) {
	mem := store.NewMemory()
	srv := New(nil, WithResultStore(mem))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// An approx request writes (and reads) nothing.
	q := query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire}
	body := fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s, "approx": {"samples": 64}}`, mustBatch(t, q))
	if resp, data := postEval(t, ts, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("approx eval: status %d: %s", resp.StatusCode, data)
	}
	if st := srv.storeStats(); st.Writes != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("approx request touched the store: %+v", st)
	}

	// A batch with one good and one failing slot persists only the good
	// one.
	bad := query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: "Nobody", Action: scenarios.ActFire}
	body = fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, mustBatch(t, q, bad))
	resp, data := postEval(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed eval: status %d: %s", resp.StatusCode, data)
	}
	var out EvalResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Results[1].Error == "" {
		t.Fatal("expected the Nobody slot to fail")
	}
	if st := srv.storeStats(); st.Writes != 1 {
		t.Errorf("mixed batch wrote %d entries, want 1 (the non-error slot)", st.Writes)
	}
	if n, _ := mem.Len(); n != 1 {
		t.Errorf("store holds %d entries, want 1", n)
	}

	// The persist guard refuses once the request context has a cause.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan := evalPlan{
		targets: []resolved{{key: "nsquad(n=2,loss=1/10,improved=false)"}},
		batches: [][]query.Query{{q}},
	}
	lk := srv.lookupStored(plan)
	if lk == nil {
		t.Fatal("lookupStored = nil with a configured store")
	}
	before := srv.storeWrites.Load()
	srv.persistResult(ctx, lk, plan.targets[0].key, 0, 0, query.ResultDoc{Kind: query.KindConstraint, Value: "1"})
	if srv.storeWrites.Load() != before {
		t.Error("persistResult wrote under a cancelled context")
	}
	// And with a live context the same slot does write.
	srv.persistResult(context.Background(), lk, plan.targets[0].key, 0, 0, query.ResultDoc{Kind: query.KindConstraint, Value: "1"})
	if srv.storeWrites.Load() != before+1 {
		t.Error("persistResult refused a live, complete, exact slot")
	}
}

// TestStatsStoreGolden pins the /v1/stats wire shape with a store
// configured, after a deterministic priming sequence: one miss-and-
// write pass, one all-hit pass, then a corrupt-and-heal pass.
func TestStatsStoreGolden(t *testing.T) {
	mem := store.NewMemory()
	srv := New(nil, WithResultStore(mem))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	q1 := query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire}
	q2 := query.ExpectationQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire}
	body := fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, mustBatch(t, q1, q2))

	for i := 0; i < 2; i++ {
		if resp, data := postEval(t, ts, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("prime %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	if !mem.Corrupt(storeKeyFor(t, srv, "nsquad(2)", q1)) {
		t.Fatal("no entry to corrupt")
	}
	if resp, data := postEval(t, ts, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("heal pass: status %d: %s", resp.StatusCode, data)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	var out StatsResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	// len 2; pass 1: 2 misses + 2 writes; pass 2: 2 hits; pass 3:
	// 1 corrupt + 1 hit + 1 healing write. Engine cache: pass 1 misses,
	// pass 3 hits (pass 2 never consults it). Backends: 2 + 0 + 1 slots.
	want := StoreStats{Len: 2, Hits: 3, Misses: 2, Corrupt: 1, Writes: 3}
	if out.Store == nil || *out.Store != want {
		t.Errorf("store stats = %+v, want %+v", out.Store, want)
	}
	if out.EngineCache.Misses != 1 || out.EngineCache.Hits != 1 {
		t.Errorf("engine cache = %+v, want 1 miss, 1 hit", out.EngineCache)
	}
	if out.Backends.Enum != 3 {
		t.Errorf("enum slots = %d, want 3", out.Backends.Enum)
	}
	goldenCompare(t, "stats-store", body)
}

// TestClientQuota429: the n+1-th concurrent request of one client is
// refused with the golden-pinned 429 body before any work happens;
// other clients are unaffected, and release restores admission.
func TestClientQuota429(t *testing.T) {
	srv := New(nil, WithClientQuota(1))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	body := fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, squadBatch(t))
	post := func(path, client string) (*http.Response, string) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(clientIDHeader, client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp, readAll(t, resp)
	}

	// Pin the quota full for "loadgen" deterministically.
	if !srv.quota.acquire("loadgen") {
		t.Fatal("fresh quota refused its first slot")
	}

	for _, path := range []string{"/v1/eval", "/v1/eval/stream", "/v1/envelope", "/v1/envelope/stream"} {
		resp, data := post(path, "loadgen")
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s over quota: status %d, want 429 (%s)", path, resp.StatusCode, data)
		}
		if path == "/v1/eval" {
			goldenCompare(t, "quota-429", data)
		}
	}

	// A different client is admitted while loadgen is full.
	if resp, data := post("/v1/eval", "other"); resp.StatusCode != http.StatusOK {
		t.Fatalf("other client: status %d, want 200 (%s)", resp.StatusCode, data)
	}

	// Releasing the slot restores admission (and the inflight table
	// shrinks back to empty, not merely to zero).
	srv.quota.release("loadgen")
	if resp, data := post("/v1/eval", "loadgen"); resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200 (%s)", resp.StatusCode, data)
	}
	srv.quota.mu.Lock()
	n := len(srv.quota.inflight)
	srv.quota.mu.Unlock()
	if n != 0 {
		t.Errorf("inflight table holds %d entries after drain, want 0", n)
	}
}

// TestClientQuotaIdentity: header beats remote address; anonymous
// clients fall back to their source host.
func TestClientQuotaIdentity(t *testing.T) {
	r, _ := http.NewRequest(http.MethodPost, "/v1/eval", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if got := clientID(r); got != "10.1.2.3" {
		t.Errorf("anonymous clientID = %q, want the source host", got)
	}
	r.Header.Set(clientIDHeader, "replica-7")
	if got := clientID(r); got != "replica-7" {
		t.Errorf("named clientID = %q, want replica-7", got)
	}
}
