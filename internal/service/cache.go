package service

import (
	"container/list"
	"sync"

	"pak/internal/core"
	"pak/internal/lpengine"
	"pak/internal/montecarlo"
)

// EngineCache is the size-bounded, concurrency-safe LRU of shared
// engines, keyed by canonical scenario spec. It replaces the service's
// original grow-forever map: `random(seed=…)` admits unboundedly many
// distinct canonical specs, so a lifetime cache is a slow memory leak
// under heavy traffic. Three properties the tests pin:
//
//   - Bounded: at most Cap engines are retained; inserting past the cap
//     evicts the least-recently-used entry. Cap ≤ 0 means unbounded
//     (the pre-eviction behaviour, still right for trusted fixed-size
//     registries).
//   - Singleflight: concurrent Get calls for one missing key share a
//     single build — N first requests for "nsquad(6)" pay one unfold,
//     not N — while builds for distinct keys run concurrently. The lock
//     is never held while building.
//   - Invisible: engines are deterministic functions of their canonical
//     spec, so an evicted entry rebuilt later returns byte-identical
//     results (experiment E17 and the eviction tests assert this).
//     Eviction costs warmth, never correctness.
type EngineCache struct {
	cap int

	mu       sync.Mutex
	entries  map[string]*list.Element // key → element whose Value is *cacheEntry
	order    *list.List               // front = most recently used
	building map[string]*buildCall

	hits, misses, evictions, shared uint64
}

// cacheEntry is one retained engine, plus the lazily built sampling
// model the approximate tier uses against it. The model is a pure
// function of the engine's system, so memoizing it alongside the engine
// closes the orphaned-sampler seam: repeated approx requests against a
// cached engine share one set of cumulative-probability tables instead
// of rebuilding them per request, and eviction drops engine and model
// together.
type cacheEntry struct {
	key    string
	engine *core.Engine

	modelOnce sync.Once
	model     *montecarlo.Model

	lpOnce sync.Once
	lp     *lpengine.Engine
}

// buildCall is one in-flight singleflight build; waiters block on done.
type buildCall struct {
	done   chan struct{}
	engine *core.Engine
	err    error
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Len is the number of retained engines; Cap the retention bound
	// (0 = unbounded).
	Len int `json:"len"`
	Cap int `json:"cap"`
	// Hits and Misses count Get lookups; Evictions counts entries
	// dropped by the LRU bound; Shared counts Gets that joined another
	// caller's in-flight build instead of starting their own.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Shared    uint64 `json:"shared"`
}

// NewEngineCache returns a cache retaining at most capacity engines
// (capacity ≤ 0 = unbounded).
func NewEngineCache(capacity int) *EngineCache {
	return &EngineCache{
		cap:      capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		building: make(map[string]*buildCall),
	}
}

// Get returns the engine cached under key, building it via build on a
// miss. Concurrent Gets for one key share a single build; build errors
// are returned to every waiter and never cached, so a transient failure
// does not poison the key.
func (c *EngineCache) Get(key string, build func() (*core.Engine, error)) (*core.Engine, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*cacheEntry).engine, nil
	}
	if call, ok := c.building[key]; ok {
		c.shared++
		c.mu.Unlock()
		<-call.done
		return call.engine, call.err
	}
	call := &buildCall{done: make(chan struct{})}
	c.building[key] = call
	c.misses++
	c.mu.Unlock()

	call.engine, call.err = build()

	c.mu.Lock()
	delete(c.building, key)
	if call.err == nil {
		c.insertLocked(key, call.engine)
	}
	c.mu.Unlock()
	close(call.done)
	return call.engine, call.err
}

// insertLocked installs a freshly built engine and enforces the LRU
// bound. Requires c.mu held.
func (c *EngineCache) insertLocked(key string, e *core.Engine) {
	if el, ok := c.entries[key]; ok {
		// A racing build for the same key can land first only through
		// building-map removal ordering; keep the installed winner warm.
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, engine: e})
	for c.cap > 0 && c.order.Len() > c.cap {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// ModelFor returns the sampling model memoized alongside the engine
// cached under key, building it on first use. It reports false when the
// key is not retained (the caller then lets the query layer build a
// per-request model — correctness never depends on cache warmth). The
// build runs outside the cache lock under the entry's own sync.Once, so
// concurrent approx requests share one table build without serializing
// unrelated cache traffic.
func (c *EngineCache) ModelFor(key string) (*montecarlo.Model, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	entry := el.Value.(*cacheEntry)
	c.mu.Unlock()
	entry.modelOnce.Do(func() {
		entry.model = montecarlo.NewModel(entry.engine.System())
	})
	return entry.model, true
}

// LPFor returns the LP engine memoized alongside the engine cached
// under key, building it on first use — the lp-backend analogue of
// ModelFor. It reports false when the key is not retained; the query
// layer then builds a per-request LP engine, so cache warmth affects
// only speed, never results (both paths are exact and differentially
// tested). The build runs outside the cache lock under the entry's own
// sync.Once, and eviction drops engine, model and LP engine together.
func (c *EngineCache) LPFor(key string) (*lpengine.Engine, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	entry := el.Value.(*cacheEntry)
	c.mu.Unlock()
	entry.lpOnce.Do(func() {
		entry.lp = lpengine.New(entry.engine.System())
	})
	return entry.lp, true
}

// Contains reports whether key is currently retained (without touching
// recency — a pure observation for tests).
func (c *EngineCache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Len reports the number of retained engines.
func (c *EngineCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the cache counters.
func (c *EngineCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Len: c.order.Len(), Cap: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Shared: c.shared,
	}
}
