package service

// Wire-level tests for the "backend" request knob: the lp and auto
// backends must be invisible in the response body (byte-identical to
// enum — the differential harness's contract carried to the HTTP
// layer), the strict-lp rejections must be deterministic 400s, and the
// shapes are golden-pinned like every other wire surface.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"pak/internal/logic"
	"pak/internal/query"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// lpWireBatch is a deterministic LP-supported batch over nsquad(2):
// every query shape the LP fragment covers, serializable facts only.
func lpWireBatch(t *testing.T) []byte {
	t.Helper()
	return mustBatch(t,
		query.ConstraintQuery{Fact: logic.True(), Agent: scenarios.General,
			Action: scenarios.ActFire, Threshold: ratutil.R(1, 2)},
		query.ThresholdQuery{Fact: logic.Once(logic.LocalContains(scenarios.General, "Yes")),
			Agent: scenarios.General, Action: scenarios.ActFire, P: ratutil.R(1, 2)},
		query.BeliefQuery{Fact: logic.Not(logic.LocalContains(scenarios.General, "never")),
			Agent: scenarios.General, Action: scenarios.ActFire},
	)
}

// TestEvalBackendGolden: the same batch answered by enum, lp and auto
// returns byte-identical /v1/eval bodies (the response carries no
// backend marker, and the results must not differ), golden-pinned on
// the lp form.
func TestEvalBackendGolden(t *testing.T) {
	ts := newTestServer(t)
	batch := lpWireBatch(t)
	bodies := make(map[string]string)
	for _, backend := range []string{"enum", "lp", "auto"} {
		resp, data := postEval(t, ts, fmt.Sprintf(
			`{"systems": ["nsquad(2)"], "queries": %s, "parallelism": 1, "backend": %q}`, batch, backend))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("backend %q: status %d: %s", backend, resp.StatusCode, data)
		}
		bodies[backend] = string(data)
	}
	if bodies["lp"] != bodies["enum"] || bodies["auto"] != bodies["enum"] {
		t.Errorf("backend bodies differ:\nenum: %s\nlp:   %s\nauto: %s",
			bodies["enum"], bodies["lp"], bodies["auto"])
	}
	goldenCompare(t, "eval-backend-lp", bodies["lp"])
}

// TestEvalStreamBackendGolden: the serial lp stream is frame-for-frame
// byte-identical to the enum stream.
func TestEvalStreamBackendGolden(t *testing.T) {
	ts := newTestServer(t)
	batch := lpWireBatch(t)
	bodies := make(map[string]string)
	for _, backend := range []string{"enum", "lp"} {
		resp, data := postStream(t, ts, fmt.Sprintf(
			`{"systems": ["nsquad(2)"], "queries": %s, "parallelism": 1, "backend": %q}`, batch, backend))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("backend %q: status %d: %s", backend, resp.StatusCode, data)
		}
		bodies[backend] = data
	}
	if bodies["lp"] != bodies["enum"] {
		t.Errorf("stream bodies differ:\nenum: %s\nlp:   %s", bodies["enum"], bodies["lp"])
	}
	goldenCompare(t, "eval-stream-backend-lp", bodies["lp"])
}

// TestEvalBackendErrors pins the two 400 paths: an unknown backend
// name, and a strict-lp request carrying a query outside the LP
// fragment (a does-fact reads the future). The streaming endpoint
// fails before any frame, so it returns the same JSON error bodies
// with real status lines.
func TestEvalBackendErrors(t *testing.T) {
	ts := newTestServer(t)
	unsupported := mustBatch(t,
		query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire})

	cases := []struct {
		name string
		body string
	}{
		{"backend-unknown", `{"systems": ["nsquad(2)"], "queries": [], "backend": "quantum"}`},
		{"backend-unsupported", fmt.Sprintf(
			`{"systems": ["nsquad(2)"], "queries": %s, "backend": "lp"}`, unsupported)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postEval(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
			}
			goldenCompare(t, tc.name, string(data))

			sresp, sdata := postStream(t, ts, tc.body)
			if sresp.StatusCode != http.StatusBadRequest {
				t.Fatalf("stream status %d, want 400: %s", sresp.StatusCode, sdata)
			}
			if sdata != string(data) {
				t.Errorf("stream error body differs from buffered:\nstream:   %s\nbuffered: %s", sdata, data)
			}
		})
	}

	// Auto accepts the same batch: unsupported queries route to enum.
	resp, data := postEval(t, ts, fmt.Sprintf(
		`{"systems": ["nsquad(2)"], "queries": %s, "backend": "auto"}`, unsupported))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto over an unsupported query: status %d: %s", resp.StatusCode, data)
	}
	var out EvalResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || len(out.Results[0].Results) != 1 || out.Results[0].Results[0].Error != "" {
		t.Errorf("auto response malformed: %s", data)
	}
}

// TestStatsBackendCountsAuto: auto-routed requests split their slots
// between the counters by CanSolveLP, and strict-lp rejections count
// nothing.
func TestStatsBackendCountsAuto(t *testing.T) {
	ts := newTestServer(t)
	mixed := mustBatch(t,
		// LP-supported: past-based fact.
		query.ConstraintQuery{Fact: logic.True(), Agent: scenarios.General, Action: scenarios.ActFire},
		// Enum-only: does reads the future.
		query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire},
	)
	resp, data := postEval(t, ts, fmt.Sprintf(
		`{"systems": ["nsquad(2)"], "queries": %s, "backend": "auto"}`, mixed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}

	// A rejected strict-lp request must leave the counters untouched.
	resp, data = postEval(t, ts, fmt.Sprintf(
		`{"systems": ["nsquad(2)"], "queries": %s, "backend": "lp"}`, mixed))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("strict lp over a mixed batch: status %d, want 400: %s", resp.StatusCode, data)
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, sresp)
	var out StatsResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Backends.Enum != 1 || out.Backends.LP != 1 {
		t.Errorf("backend slots = %+v, want enum=1 lp=1", out.Backends)
	}
}
