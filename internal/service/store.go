// The persistent result tier: a content-addressed read-through/
// write-behind store in front of evaluation (internal/store wired in
// via WithResultStore / pakd -store-dir).
//
// Addressing. A slot's store key is NewKey(canonical system spec,
// canonical query document) — the engine-cache key crossed with
// query.MarshalCanonical. Both components are canonical, so any two
// requests that would share an engine and a query share an address,
// across restarts and across backends: the enum and LP engines return
// byte-identical documents (the differential harness pins it), so a
// stored answer serves either backend's request and the key carries
// no backend component.
//
// Byte identity. The stored value is the slot's compact ResultDoc
// JSON. On a hit the doc is decoded and re-embedded in the response,
// and because ResultDoc is JSON-lossless (strings, ints, bools, maps
// — FuzzStoreRoundTrip pins decode(encode(x)) byte-identity), the
// response bytes are identical to a fresh evaluation's. Restart
// without recomputation, proven by diffing bytes.
//
// What is persisted. Only deterministic, complete, exact results: a
// stored answer must equal an untimed recompute. Excluded —
//   - any slot of an approx request (estimates are seeded and
//     request-shaped; the whole tier is bypassed, reads included),
//   - error slots (including per-slot deadline errors),
//   - slots finishing under an already-expired/cancelled request
//     context (the request may be truncated; nothing is written),
//   - queries that do not serialize (opaque Go facts have no
//     canonical document, hence no address).
//
// Corruption. A store entry failing its integrity check is counted
// (the "corrupt" stat) and recomputed — never served. A hash-valid
// entry that does not decode as a ResultDoc is treated exactly the
// same way.
package service

import (
	"context"
	"encoding/json"
	"errors"

	"pak/internal/query"
	"pak/internal/store"
)

// WithResultStore installs a persistent result store as a
// read-through/write-behind tier in front of /v1/eval[/stream]
// evaluation. pakd -store-dir wires a disk store through this.
func WithResultStore(st store.Store) Option {
	return func(s *Server) { s.resultStore = st }
}

// StoreStats is the persistent-store section of GET /v1/stats
// (present only when a store is configured).
type StoreStats struct {
	// Len counts stored entries (-1 when the backend cannot say).
	Len int `json:"len"`
	// Hits/Misses/Corrupt classify lookups: served from the store,
	// absent, or present-but-refused by the integrity check. The three
	// are disjoint; their sum is the store-keyable slots looked up.
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Corrupt int64 `json:"corrupt"`
	// Writes counts results persisted (successful Puts).
	Writes int64 `json:"writes"`
}

// storeStats snapshots the store counters for /v1/stats.
func (s *Server) storeStats() *StoreStats {
	if s.resultStore == nil {
		return nil
	}
	n, err := s.resultStore.Len()
	if err != nil {
		n = -1
	}
	return &StoreStats{
		Len:     n,
		Hits:    s.storeHits.Load(),
		Misses:  s.storeMisses.Load(),
		Corrupt: s.storeCorrupt.Load(),
		Writes:  s.storeWrites.Load(),
	}
}

// storeLookup is one request's store view: per (system, slot) the
// content address, the canonical query bytes it derives from, and the
// stored doc on a hit.
type storeLookup struct {
	keys [][]store.Key        // "" = slot has no address (opaque query)
	raws [][]json.RawMessage  // canonical query bytes, aligned with keys
	docs [][]*query.ResultDoc // decoded stored docs; nil = miss
}

// lookupStored consults the store for every slot of the plan. It
// returns nil when the tier is off for this request: no store
// configured, or an approx request (estimates are never stored, and a
// stored exact doc would be missing the estimate an approx response
// carries — so approx requests bypass reads too).
func (s *Server) lookupStored(plan evalPlan) *storeLookup {
	if s.resultStore == nil || plan.approx != nil {
		return nil
	}
	lk := &storeLookup{
		keys: make([][]store.Key, len(plan.batches)),
		raws: make([][]json.RawMessage, len(plan.batches)),
		docs: make([][]*query.ResultDoc, len(plan.batches)),
	}
	for i, batch := range plan.batches {
		lk.keys[i] = make([]store.Key, len(batch))
		lk.raws[i] = make([]json.RawMessage, len(batch))
		lk.docs[i] = make([]*query.ResultDoc, len(batch))
		for j, q := range batch {
			raw, err := query.MarshalCanonical(q)
			if err != nil {
				continue // opaque query: no address, always evaluated
			}
			k := store.NewKey(plan.targets[i].key, raw)
			lk.keys[i][j], lk.raws[i][j] = k, raw
			data, err := s.resultStore.Get(k)
			switch {
			case err == nil:
				var doc query.ResultDoc
				if json.Unmarshal(data, &doc) == nil {
					s.storeHits.Add(1)
					lk.docs[i][j] = &doc
					continue
				}
				// Hash-valid but not a ResultDoc: same refusal as a
				// failed integrity check.
				s.storeCorrupt.Add(1)
			case errors.Is(err, store.ErrCorrupt):
				s.storeCorrupt.Add(1)
			default:
				s.storeMisses.Add(1)
			}
		}
	}
	return lk
}

// fullyHit reports whether system i's entire non-empty batch was
// answered from the store — exactly then can its engine build be
// skipped. An EMPTY batch reports false: the classic contract builds
// (and therefore vets) every named system even when there is nothing
// to evaluate, and a batchless probe must keep surfacing builder
// domain errors as 4xx.
func (lk *storeLookup) fullyHit(i int) bool {
	if lk == nil || len(lk.docs[i]) == 0 {
		return false
	}
	for _, d := range lk.docs[i] {
		if d == nil {
			return false
		}
	}
	return true
}

// hit returns the stored doc for a slot (nil outside the tier or on a
// miss).
func (lk *storeLookup) hit(i, j int) *query.ResultDoc {
	if lk == nil {
		return nil
	}
	return lk.docs[i][j]
}

// reducePlan drops store-hit slots from the plan's batches, so
// evaluation (and backend accounting) covers exactly the slots the
// store could not answer. slotMap maps each reduced slot back to its
// original batch index; a nil slotMap means the plan is unreduced
// (identity). Systems whose every slot hit end up with an empty batch
// — the handlers skip their engine builds entirely, which is what
// makes "zero engine rebuilds for stored slots" literal.
func reducePlan(plan evalPlan, lk *storeLookup) (evalPlan, [][]int) {
	if lk == nil {
		return plan, nil
	}
	reduced := plan
	reduced.batches = make([][]query.Query, len(plan.batches))
	slotMap := make([][]int, len(plan.batches))
	for i, batch := range plan.batches {
		for j, q := range batch {
			if lk.docs[i][j] != nil {
				continue
			}
			reduced.batches[i] = append(reduced.batches[i], q)
			slotMap[i] = append(slotMap[i], j)
		}
	}
	return reduced, slotMap
}

// persistResult writes one freshly computed slot back to the store,
// applying the persistence contract: exact requests only (lookup nil
// otherwise), addressable slots only, no error slots, no estimates,
// and nothing once the request context has a cause — a truncated
// request persists nothing, so a stored answer always equals an
// untimed recompute.
func (s *Server) persistResult(ctx context.Context, lk *storeLookup, system string, i, j int, doc query.ResultDoc) {
	if lk == nil || lk.keys[i][j] == "" {
		return
	}
	if doc.Error != "" || doc.Estimate != nil || context.Cause(ctx) != nil {
		return
	}
	val, err := json.Marshal(doc)
	if err != nil {
		return
	}
	if s.resultStore.Put(store.Entry{System: system, Query: lk.raws[i][j], Value: val}) == nil {
		s.storeWrites.Add(1)
	}
}
