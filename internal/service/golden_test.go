package service

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire-error files")

// goldenCompare asserts body matches testdata/golden/<name>.json byte
// for byte, rewriting the file under -update. Shared by the error-path
// and stream-frame golden tests so every pinned wire shape lives in one
// directory under one update flag.
func goldenCompare(t *testing.T, name, body string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if body != string(want) {
		t.Errorf("wire shape drifted from golden file %s:\ngot:  %swant: %s", path, body, want)
	}
}

// TestErrorWireGolden pins the exact JSON body and status of every
// error path a pakd client can hit, one golden file per path. The wire
// shape is API: a renamed field, a reworded message or a drifted status
// would break clients silently, so any diff here must be a deliberate,
// reviewed change (run with -update to accept one).
//
// Determinism: every provoked error message is a pure function of the
// request and the server's fixed configuration — registry names are
// sorted, caps are set explicitly, and the timeout message names the
// configured budget rather than measured time.
func TestErrorWireGolden(t *testing.T) {
	// Small explicit caps so the over-cap messages are stable.
	srv := New(nil, WithMaxQueries(3), WithMaxSystems(2), WithMaxBodyBytes(2048))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// The timeout server: a deadline that has always already expired,
	// so the 504 path is deterministic.
	timeoutSrv := New(nil, WithRequestTimeout(time.Nanosecond))
	timeoutTS := httptest.NewServer(timeoutSrv.Handler())
	t.Cleanup(timeoutTS.Close)

	batch4 := `[{"kind":"constraint","fact":{"op":"does","agent":"General","action":"fire"},"agent":"General","action":"fire"},
	            {"kind":"constraint","fact":{"op":"does","agent":"General","action":"fire"},"agent":"General","action":"fire"},
	            {"kind":"constraint","fact":{"op":"does","agent":"General","action":"fire"},"agent":"General","action":"fire"},
	            {"kind":"constraint","fact":{"op":"does","agent":"General","action":"fire"},"agent":"General","action":"fire"}]`

	cases := []struct {
		name   string // golden file stem
		server *httptest.Server
		method string
		path   string
		body   string
		status int
	}{
		{"method-not-allowed-eval", ts, http.MethodGet, "/v1/eval", "", http.StatusMethodNotAllowed},
		{"method-not-allowed-stream", ts, http.MethodGet, "/v1/eval/stream", "", http.StatusMethodNotAllowed},
		{"method-not-allowed-stats", ts, http.MethodPost, "/v1/stats", "{}", http.StatusMethodNotAllowed},
		{"method-not-allowed-scenarios", ts, http.MethodPost, "/v1/scenarios", "{}", http.StatusMethodNotAllowed},
		{"malformed-body", ts, http.MethodPost, "/v1/eval", `{"systems": [`, http.StatusBadRequest},
		{"unknown-field", ts, http.MethodPost, "/v1/eval", `{"bogus": 1}`, http.StatusBadRequest},
		{"trailing-content", ts, http.MethodPost, "/v1/eval", `{"systems":["fsquad"],"queries":[]} extra`, http.StatusBadRequest},
		{"empty-request", ts, http.MethodPost, "/v1/eval", `{}`, http.StatusBadRequest},
		{"no-queries", ts, http.MethodPost, "/v1/eval", `{"systems": ["nsquad(2)"]}`, http.StatusBadRequest},
		{"unknown-scenario", ts, http.MethodPost, "/v1/eval", `{"systems": ["nosuch"], "queries": []}`, http.StatusNotFound},
		{"bad-params", ts, http.MethodPost, "/v1/eval", `{"systems": ["nsquad(n=zero)"], "queries": []}`, http.StatusBadRequest},
		{"undeclared-param", ts, http.MethodPost, "/v1/eval", `{"systems": ["fsquad(frobnicate=1)"], "queries": []}`, http.StatusBadRequest},
		{"out-of-range-param", ts, http.MethodPost, "/v1/eval", `{"systems": ["nsquad(42)"], "queries": []}`, http.StatusBadRequest},
		{"serve-guard", ts, http.MethodPost, "/v1/eval", `{"systems": ["random(depth=50000,branch=1)"], "queries": []}`, http.StatusBadRequest},
		{"oversized-value", ts, http.MethodPost, "/v1/eval",
			fmt.Sprintf(`{"systems": ["fsquad(loss=0.%s)"], "queries": []}`, strings.Repeat("1", 80)), http.StatusBadRequest},
		{"bad-batch", ts, http.MethodPost, "/v1/eval", `{"systems": ["nsquad(2)"], "queries": [{"kind": "nope"}]}`, http.StatusBadRequest},
		{"batch-not-array", ts, http.MethodPost, "/v1/eval", `{"systems": ["nsquad(2)"], "queries": {"kind": "belief"}}`, http.StatusBadRequest},
		{"over-query-cap", ts, http.MethodPost, "/v1/eval",
			fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, batch4), http.StatusBadRequest},
		{"over-systems-cap", ts, http.MethodPost, "/v1/eval",
			`{"systems": ["nsquad(2)", "nsquad(3)", "nsquad(4)"], "queries": []}`, http.StatusBadRequest},
		{"oversized-body", ts, http.MethodPost, "/v1/eval",
			fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": [%s]}`, strings.Repeat(" ", 2100)), http.StatusRequestEntityTooLarge},
		{"scenario-not-found", ts, http.MethodGet, "/v1/scenarios/nosuch", "", http.StatusNotFound},
		{"timeout-504", timeoutTS, http.MethodPost, "/v1/eval",
			`{"systems": ["nsquad(2)"], "queries": []}`, http.StatusGatewayTimeout},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var (
				resp *http.Response
				err  error
			)
			switch tc.method {
			case http.MethodGet:
				resp, err = http.Get(tc.server.URL + tc.path)
			default:
				resp, err = http.Post(tc.server.URL+tc.path, "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			body := readAll(t, resp)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}

			goldenCompare(t, tc.name, body)
		})
	}
}
