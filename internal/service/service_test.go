package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pak/internal/pps"
	"pak/internal/query"
	"pak/internal/ratutil"
	"pak/internal/registry"
	"pak/internal/scenarios"
)

func newTestServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(nil, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// squadBatch is the shared wire-format batch, targeting the General and
// s1 — agents every nsquad instance has.
func squadBatch(t *testing.T) []byte {
	t.Helper()
	all := scenarios.AllFireFact(2)
	doc, err := query.MarshalBatch([]query.Query{
		query.ConstraintQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		query.ExpectationQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		query.TheoremQuery{Theorem: query.TheoremExpectation, Fact: all,
			Agent: scenarios.General, Action: scenarios.ActFire},
		query.TheoremQuery{Theorem: query.TheoremPAK, Fact: all,
			Agent: scenarios.General, Action: scenarios.ActFire, Eps: ratutil.R(1, 4)},
	})
	if err != nil {
		t.Fatalf("MarshalBatch: %v", err)
	}
	return doc
}

func postEval(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/eval: %v", err)
	}
	return resp, []byte(readAll(t, resp))
}

// readAll drains and closes the response body.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response body: %v", err)
	}
	return string(data)
}

func TestScenarioCatalogEndpoints(t *testing.T) {
	ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/scenarios: status %d", resp.StatusCode)
	}
	var docs []registry.Scenario
	if err := json.Unmarshal([]byte(readAll(t, resp)), &docs); err != nil {
		t.Fatalf("decode catalog: %v", err)
	}
	names := make(map[string]bool, len(docs))
	for _, d := range docs {
		names[d.Name] = true
	}
	for _, want := range registry.Default().Names() {
		if !names[want] {
			t.Errorf("catalog is missing %q", want)
		}
	}

	one, err := http.Get(ts.URL + "/v1/scenarios/nsquad")
	if err != nil {
		t.Fatal(err)
	}
	if one.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/scenarios/nsquad: status %d", one.StatusCode)
	}
	var doc registry.Scenario
	if err := json.Unmarshal([]byte(readAll(t, one)), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Name != "nsquad" || len(doc.Params) != 3 {
		t.Errorf("nsquad metadata = %+v", doc)
	}

	missing, err := http.Get(ts.URL + "/v1/scenarios/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/scenarios/nosuch: status %d, want 404", missing.StatusCode)
	}
}

// TestEvalFanOut is the acceptance scenario: one ParseQueryBatch
// document against two named systems in one request, sharded across
// engines, with parallel results exactly equal to serial.
func TestEvalFanOut(t *testing.T) {
	ts := newTestServer(t)
	batch := squadBatch(t)

	body := fmt.Sprintf(`{"systems": ["nsquad(2)", "nsquad(n=3)"], "queries": %s}`, batch)
	resp, data := postEval(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval status %d: %s", resp.StatusCode, data)
	}
	var out EvalResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("got %d system results, want 2", len(out.Results))
	}
	if out.Results[0].System != "nsquad(2)" || out.Results[1].System != "nsquad(n=3)" {
		t.Errorf("system order not preserved: %q, %q", out.Results[0].System, out.Results[1].System)
	}
	if out.Results[1].Canonical != "nsquad(n=3,loss=1/10,improved=false)" {
		t.Errorf("canonical = %q", out.Results[1].Canonical)
	}
	for i, sr := range out.Results {
		if len(sr.Results) != 4 {
			t.Fatalf("system %d: %d results, want 4", i, len(sr.Results))
		}
		for j, rd := range sr.Results {
			if rd.Error != "" {
				t.Errorf("system %d query %d failed: %s", i, j, rd.Error)
			}
		}
	}
	// nsquad(2) degenerates to Example 1: µ = 99/100, and the paper's
	// exact expectation matches by Theorem 6.2.
	if got := out.Results[0].Results[0].Value; got != "99/100" {
		t.Errorf("nsquad(2) headline = %q, want 99/100", got)
	}
	if out.Results[0].Results[2].Verdict != query.VerdictPass {
		t.Error("Theorem 6.2 did not pass on nsquad(2)")
	}

	// Parallel results exactly equal serial: re-POST with parallelism 1
	// and compare the entire body.
	serialResp, serialData := postEval(t, ts,
		fmt.Sprintf(`{"systems": ["nsquad(2)", "nsquad(n=3)"], "queries": %s, "parallelism": 1}`, batch))
	if serialResp.StatusCode != http.StatusOK {
		t.Fatalf("serial eval status %d", serialResp.StatusCode)
	}
	if string(serialData) != string(data) {
		t.Error("serial response body differs from parallel response body")
	}
}

func TestEvalPerSystemRequests(t *testing.T) {
	ts := newTestServer(t)
	shared := squadBatch(t)
	own, err := query.MarshalBatch([]query.Query{
		query.ConstraintQuery{Fact: scenarios.AllFireFact(3),
			Agent: scenarios.General, Action: scenarios.ActFire},
	})
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{
		"queries": %s,
		"requests": [
			{"system": "nsquad(2)"},
			{"system": "nsquad(3)", "queries": %s}
		]
	}`, shared, own)
	resp, data := postEval(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval status %d: %s", resp.StatusCode, data)
	}
	var out EvalResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || len(out.Results[0].Results) != 4 || len(out.Results[1].Results) != 1 {
		t.Fatalf("per-system batch shapes wrong: %+v", out.Results)
	}
	// (1−ℓ²)² at ℓ=1/10: the n=3 closed form.
	want := ratutil.Mul(ratutil.R(99, 100), ratutil.R(99, 100)).RatString()
	if got := out.Results[1].Results[0].Value; got != want {
		t.Errorf("nsquad(3) headline = %q, want %s", got, want)
	}
}

// TestEvalQueryErrorIsolation: a query naming an absent agent fails in
// its own slot with HTTP 200; neighbours still carry values.
func TestEvalQueryErrorIsolation(t *testing.T) {
	ts := newTestServer(t)
	all := scenarios.AllFireFact(2)
	batch, err := query.MarshalBatch([]query.Query{
		query.ConstraintQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		query.ConstraintQuery{Fact: all, Agent: "nobody", Action: scenarios.ActFire},
		query.ExpectationQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postEval(t, ts, fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, batch))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval status %d: %s", resp.StatusCode, data)
	}
	var out EvalResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	rs := out.Results[0].Results
	if rs[1].Error == "" {
		t.Error("bad query's slot has no error")
	}
	if rs[0].Value != "99/100" || rs[2].Value != "99/100" {
		t.Errorf("neighbours disturbed: %q, %q", rs[0].Value, rs[2].Value)
	}
}

func TestEvalErrorPaths(t *testing.T) {
	ts := newTestServer(t, WithMaxQueries(3), WithMaxSystems(2))
	batch := squadBatch(t) // 4 queries, above the cap of 3

	cases := []struct {
		name   string
		body   string
		status int
		substr string
	}{
		{"malformed body", `{"systems": [`, http.StatusBadRequest, "malformed request body"},
		{"unknown field", `{"bogus": 1}`, http.StatusBadRequest, "bogus"},
		{"empty request", `{}`, http.StatusBadRequest, "empty request"},
		{"no queries", `{"systems": ["nsquad(2)"]}`, http.StatusBadRequest, "no query batch"},
		{"unknown scenario", `{"systems": ["nosuch"], "queries": []}`,
			http.StatusNotFound, "unknown scenario"},
		{"malformed params", `{"systems": ["nsquad(n=zero)"], "queries": []}`,
			http.StatusBadRequest, "invalid scenario spec"},
		{"undeclared param", `{"systems": ["fsquad(frobnicate=1)"], "queries": []}`,
			http.StatusBadRequest, "no parameter"},
		{"out-of-range params", `{"systems": ["nsquad(42)"], "queries": []}`,
			http.StatusBadRequest, "2 ≤ n"},
		{"builder domain error", `{"systems": ["random(agents=0)"], "queries": []}`,
			http.StatusBadRequest, "Agents=0"},
		{"builder constraint error", `{"systems": ["that(p=1/10,eps=9/10)"], "queries": []}`,
			http.StatusBadRequest, "invalid scenario spec"},
		{"serve guard rejects unbounded unfold", `{"systems": ["random(depth=50000,branch=1)"], "queries": []}`,
			http.StatusBadRequest, "per service request"},
		{"exponent rationals outside spec grammar", `{"systems": ["fsquad(loss=1e1000000)"], "queries": []}`,
			http.StatusBadRequest, "want a rational"},
		{"wire bounds reject oversized rational", fmt.Sprintf(`{"systems": ["fsquad(loss=0.%s)"], "queries": []}`,
			strings.Repeat("1", 80)), http.StatusBadRequest, "above the service limit"},
		{"bad batch document", `{"systems": ["nsquad(2)"], "queries": [{"kind": "nope"}]}`,
			http.StatusBadRequest, "bad query batch"},
		{"batch not an array", `{"systems": ["nsquad(2)"], "queries": {"kind": "belief"}}`,
			http.StatusBadRequest, "bad query batch"},
		{"over query cap", fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, batch),
			http.StatusBadRequest, "above the server cap"},
		{"over systems cap", `{"systems": ["nsquad(2)", "nsquad(3)", "nsquad(4)"], "queries": []}`,
			http.StatusBadRequest, "names 3 systems"},
	}
	for _, tc := range cases {
		resp, data := postEval(t, ts, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
			continue
		}
		var ed struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &ed); err != nil || ed.Error == "" {
			t.Errorf("%s: body is not a JSON error doc: %s", tc.name, data)
			continue
		}
		if !strings.Contains(ed.Error, tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, ed.Error, tc.substr)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/eval")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/eval: status %d, want 405", resp.StatusCode)
	}
}

// TestEvalRequestTimeout: a server whose deadline cannot be met answers
// 504 with the uniform JSON error body, not a partial result set.
func TestEvalRequestTimeout(t *testing.T) {
	ts := newTestServer(t, WithRequestTimeout(time.Nanosecond))
	resp, data := postEval(t, ts, fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, squadBatch(t)))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, data)
	}
	var ed errorDoc
	if err := json.Unmarshal(data, &ed); err != nil || !strings.Contains(ed.Error, "deadline exceeded") {
		t.Errorf("504 body = %s", data)
	}

	// A generous deadline changes nothing: the same request answers 200
	// with full results.
	ok := newTestServer(t, WithRequestTimeout(time.Minute))
	resp2, data2 := postEval(t, ok, fmt.Sprintf(`{"systems": ["nsquad(2)"], "queries": %s}`, squadBatch(t)))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d under a generous deadline (%s)", resp2.StatusCode, data2)
	}
}

// slowRegistry registers count scenarios whose builders sleep for delay
// and count invocations, for the cold-build concurrency tests.
func slowRegistry(t *testing.T, count int, delay time.Duration, builds *atomic.Int64) *registry.Registry {
	t.Helper()
	reg := registry.New()
	for i := 0; i < count; i++ {
		err := reg.Register(registry.Scenario{
			Name: fmt.Sprintf("slow%d", i),
			Doc:  "test scenario with a slow build",
			Build: func(registry.Args) (*pps.System, error) {
				builds.Add(1)
				time.Sleep(delay)
				return scenarios.NFiringSquadSystem(2, ratutil.R(1, 10), false)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// TestColdBuildsRunInParallel: one request naming N un-cached specs
// pays roughly max-of-unfolds, not sum-of-unfolds.
func TestColdBuildsRunInParallel(t *testing.T) {
	const n = 4
	const delay = 100 * time.Millisecond
	var builds atomic.Int64
	s := New(slowRegistry(t, n, delay, &builds), WithMaxParallelism(n))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	specs := make([]string, n)
	for i := range specs {
		specs[i] = fmt.Sprintf("%q", fmt.Sprintf("slow%d", i))
	}
	start := time.Now()
	resp, data := postEval(t, ts, fmt.Sprintf(`{"systems": [%s], "queries": []}`, strings.Join(specs, ",")))
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := builds.Load(); got != n {
		t.Errorf("built %d systems, want %d", got, n)
	}
	// Serial builds would take n × delay; allow generous scheduling slack
	// while still ruling the serial path out.
	if serialFloor := time.Duration(n) * delay; elapsed >= serialFloor {
		t.Errorf("cold builds took %v, want < %v (serial sum)", elapsed, serialFloor)
	}
}

// TestConcurrentColdRequestsShareOneBuild: many clients racing on one
// un-cached spec trigger exactly one unfold (singleflight).
func TestConcurrentColdRequestsShareOneBuild(t *testing.T) {
	var builds atomic.Int64
	s := New(slowRegistry(t, 1, 50*time.Millisecond, &builds))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/eval", "application/json",
				strings.NewReader(`{"systems": ["slow0"], "queries": []}`))
			if err != nil {
				t.Error(err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Errorf("%d concurrent cold requests ran %d builds, want 1", clients, got)
	}
	if st := s.Cache().Stats(); st.Misses != 1 {
		t.Errorf("cache stats = %+v, want exactly 1 miss", st)
	}
}

// TestEngineSharing: equivalent specs resolve to one engine, so
// memoization accumulates across requests.
func TestEngineSharing(t *testing.T) {
	s := New(nil)
	e1, key1, err := s.engineFor("nsquad(3)")
	if err != nil {
		t.Fatal(err)
	}
	e2, key2, err := s.engineFor("nsquad(n=3,loss=1/10)")
	if err != nil {
		t.Fatal(err)
	}
	if key1 != key2 {
		t.Errorf("canonical keys differ: %q vs %q", key1, key2)
	}
	if e1 != e2 {
		t.Error("equivalent specs got distinct engines")
	}
	e3, _, err := s.engineFor("nsquad(4)")
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e1 {
		t.Error("distinct specs share an engine")
	}
}
