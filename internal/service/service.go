// Package service is the HTTP/JSON front end over the scenario registry
// and the query layer: the bridge from "library" to "service" on the
// ROADMAP. A Server resolves scenario specs against a registry, keeps
// one memoizing engine per canonical spec (so repeated requests against
// "fsquad" share every cached belief and performance index), and
// evaluates pak's existing query-batch documents with cross-system
// fan-out through query.MultiBatch.
//
// Endpoints:
//
//	GET  /v1/scenarios         — the self-describing catalog (JSON)
//	GET  /v1/scenarios/{name}  — one scenario's metadata
//	POST /v1/eval              — evaluate a query batch against named systems
//
// An eval request names systems by spec and carries query batches in the
// exact format of pak.ParseQueryBatch — the query layer was shaped to be
// this wire format, so documents produced by pak.MarshalQueryBatch or
// pakrand -batch POST unchanged:
//
//	{
//	  "systems": ["fsquad", "nsquad(3)"],
//	  "queries": [ {"kind":"constraint", ...}, ... ],
//	  "parallelism": 0
//	}
//
// Top-level queries fan out to every named system; a "requests" list
// gives per-system batches instead (or additionally). The response keeps
// per-system result ordering and per-query error isolation: a failing
// query reports in its own slot's "error" field with HTTP 200, while
// request-level failures (unknown scenario, malformed params, a bad
// batch document) are 4xx with a JSON error body.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"

	"pak/internal/core"
	"pak/internal/query"
	"pak/internal/registry"
)

// Option configures a Server.
type Option func(*Server)

// WithMaxParallelism caps the evaluation workers a single request may
// use (default runtime.GOMAXPROCS(0)). Requests asking for more are
// clamped, never rejected.
func WithMaxParallelism(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxParallel = n
		}
	}
}

// WithMaxQueries caps the total (system, query) pairs one eval request
// may submit (default 10000), bounding a single request's evaluation
// work.
func WithMaxQueries(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxQueries = n
		}
	}
}

// WithMaxSystems caps the systems one eval request may name (default
// 64), bounding the unfolding work and engine-cache growth a single
// request can cause — each distinct canonical spec builds and retains
// one engine.
func WithMaxSystems(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxSystems = n
		}
	}
}

// maxBodyBytes bounds the /v1/eval request body (8 MiB): far above any
// reasonable query batch, far below what could exhaust server memory.
const maxBodyBytes = 8 << 20

// Server serves the registry and the query layer over HTTP. It is safe
// for concurrent use; engines are shared across requests.
type Server struct {
	reg         *registry.Registry
	maxParallel int
	maxQueries  int
	maxSystems  int

	mu      sync.Mutex
	engines map[string]*core.Engine // canonical spec → shared engine
}

// New returns a server over the registry (nil means registry.Default()).
func New(reg *registry.Registry, opts ...Option) *Server {
	if reg == nil {
		reg = registry.Default()
	}
	s := &Server{
		reg:         reg,
		maxParallel: runtime.GOMAXPROCS(0),
		maxQueries:  10000,
		maxSystems:  64,
		engines:     make(map[string]*core.Engine),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("/v1/scenarios/", s.handleScenario)
	mux.HandleFunc("/v1/eval", s.handleEval)
	return mux
}

// engineFor resolves a spec and returns the shared engine for its
// canonical form, building the system on first use. The build runs
// outside the lock: scenario unfolding can be expensive, and two
// concurrent first requests for one spec are rarer than one slow build
// blocking every other spec.
func (s *Server) engineFor(spec string) (*core.Engine, string, error) {
	sc, args, err := s.reg.Resolve(spec)
	if err != nil {
		return nil, "", err
	}
	// Wire-exposure bounds (trusted local callers bypass both by
	// building directly): the generic value/rational caps every
	// scenario shares, then the scenario's own ServeGuard. Guard
	// rejections are client errors by definition, so wrap them in
	// ErrBadSpec even when a custom guard returns a plain error.
	if err := args.VetForService(); err != nil {
		return nil, "", err
	}
	if sc.ServeGuard != nil {
		if err := sc.ServeGuard(args); err != nil {
			if !errors.Is(err, registry.ErrBadSpec) && !errors.Is(err, registry.ErrUnknownScenario) {
				err = fmt.Errorf("%w: %v", registry.ErrBadSpec, err)
			}
			return nil, "", err
		}
	}
	key := args.Canonical()
	s.mu.Lock()
	e, ok := s.engines[key]
	s.mu.Unlock()
	if ok {
		return e, key, nil
	}
	sys, err := sc.Build(args)
	if err != nil {
		// Validated params fully determine a build, so a builder failure
		// here is a domain error in the client's spec (loss outside
		// [0,1], agents=0, eps ≥ p, ...): report it as one, not as a 500.
		return nil, "", fmt.Errorf("%w: %v", registry.ErrBadSpec, err)
	}
	if sys == nil {
		// Same guard Registry.Build applies: a custom builder returning
		// (nil, nil) must not become a permanently cached nil-system
		// engine that panics on every query.
		return nil, "", fmt.Errorf("%w: scenario %q returned a nil system", registry.ErrBadSpec, key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if winner, ok := s.engines[key]; ok {
		return winner, key, nil
	}
	e = core.New(sys)
	s.engines[key] = e
	return e, key, nil
}

// The catalog endpoints serialize registry.Scenario directly: its JSON
// tags are the wire form (the builder is json:"-"), so new metadata
// fields reach clients without a mirror struct here.

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s not allowed; use GET", r.Method))
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Scenarios())
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s not allowed; use GET", r.Method))
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/scenarios/")
	sc, ok := s.reg.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("%w: %q (have %v)", registry.ErrUnknownScenario, name, s.reg.Names()))
		return
	}
	writeJSON(w, http.StatusOK, sc)
}

// EvalRequest is the /v1/eval request body.
type EvalRequest struct {
	// Systems are scenario specs the top-level Queries fan out to.
	Systems []string `json:"systems,omitempty"`
	// Queries is a pak.ParseQueryBatch document (a JSON array of query
	// specs) shared by every entry of Systems, and the default batch for
	// Requests entries that omit their own.
	Queries json.RawMessage `json:"queries,omitempty"`
	// Requests are per-system batches, appended after Systems' fan-out.
	Requests []SystemRequest `json:"requests,omitempty"`
	// Parallelism bounds the worker pool (0 = server default; values
	// above the server's cap are clamped). 1 evaluates serially — the
	// results are identical either way, only slower.
	Parallelism int `json:"parallelism,omitempty"`
}

// SystemRequest is one per-system batch inside an EvalRequest.
type SystemRequest struct {
	// System is the scenario spec.
	System string `json:"system"`
	// Queries overrides the request's shared batch for this system.
	Queries json.RawMessage `json:"queries,omitempty"`
}

// EvalResponse is the /v1/eval response body.
type EvalResponse struct {
	// Results has one entry per requested system, in request order.
	Results []SystemResult `json:"results"`
}

// SystemResult is one system's evaluated batch.
type SystemResult struct {
	// System echoes the requested spec; Canonical is its fully resolved
	// form (the engine-cache key).
	System    string `json:"system"`
	Canonical string `json:"canonical"`
	// Results has one entry per query, in batch order. Failed queries
	// carry their message in the entry's "error" field.
	Results []query.ResultDoc `json:"results"`
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s not allowed; use POST", r.Method))
		return
	}
	var req EvalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request body: %w", err))
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest,
			errors.New("malformed request body: trailing content after the JSON document"))
		return
	}

	// Normalize both request forms into one per-system list. `shared`
	// marks targets using the top-level batch, which is parsed once.
	type target struct {
		spec   string
		raw    json.RawMessage
		shared bool
	}
	var targets []target
	for _, spec := range req.Systems {
		targets = append(targets, target{spec: spec, raw: req.Queries, shared: true})
	}
	for _, sr := range req.Requests {
		raw, shared := sr.Queries, false
		if isMissingJSON(raw) {
			raw, shared = req.Queries, true
		}
		targets = append(targets, target{spec: sr.System, raw: raw, shared: shared})
	}
	if len(targets) == 0 {
		writeError(w, http.StatusBadRequest,
			errors.New(`empty request: name at least one system in "systems" or "requests"`))
		return
	}
	// The systems cap bounds the builds, not just the evaluations: every
	// distinct canonical spec unfolds a system and retains an engine.
	if len(targets) > s.maxSystems {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("request names %d systems, above the server cap of %d", len(targets), s.maxSystems))
		return
	}

	// Parse every batch and enforce the work cap before building any
	// engine: scenario unfolding is the expensive, cached-forever part,
	// so an over-cap request must be rejected before it happens. The
	// shared top-level batch is parsed once, not once per system.
	var sharedQs []query.Query
	sharedParsed := false
	batches := make([][]query.Query, len(targets))
	total := 0
	for i, tg := range targets {
		if isMissingJSON(tg.raw) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf(`system %q has no query batch: provide "queries" at the top level or per request`, tg.spec))
			return
		}
		if tg.shared && sharedParsed {
			batches[i] = sharedQs
			total += len(sharedQs)
			continue
		}
		qs, err := query.ParseBatch(tg.raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("system %q: bad query batch: %w", tg.spec, err))
			return
		}
		if tg.shared {
			sharedQs, sharedParsed = qs, true
		}
		batches[i] = qs
		total += len(qs)
	}
	if total > s.maxQueries {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("request submits %d queries, above the server cap of %d", total, s.maxQueries))
		return
	}

	items := make([]query.MultiItem, len(targets))
	canonicals := make([]string, len(targets))
	for i, tg := range targets {
		e, canonical, err := s.engineFor(tg.spec)
		if err != nil {
			writeError(w, statusOfRegistryErr(err), err)
			return
		}
		items[i] = query.MultiItem{Engine: e, Queries: batches[i]}
		canonicals[i] = canonical
	}

	parallel := s.maxParallel
	if req.Parallelism > 0 && req.Parallelism < parallel {
		parallel = req.Parallelism
	}
	// Per-query errors are already isolated in their result slots; the
	// joined error adds nothing for a wire client.
	results, _ := query.MultiBatch(items, query.WithParallelism(parallel))

	resp := EvalResponse{Results: make([]SystemResult, len(targets))}
	for i, tg := range targets {
		resp.Results[i] = SystemResult{
			System:    tg.spec,
			Canonical: canonicals[i],
			Results:   query.DocsOf(results[i]),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// isMissingJSON reports whether a raw batch field is absent for all
// practical purposes: omitted entirely, or the JSON null literal
// ("present" only lexically). One predicate, so the per-request
// fallback and the final validation can't disagree on null.
func isMissingJSON(raw json.RawMessage) bool {
	return len(raw) == 0 || string(raw) == "null"
}

// statusOfRegistryErr maps registry failures to HTTP statuses: both
// unknown scenarios and malformed specs are client errors.
func statusOfRegistryErr(err error) int {
	switch {
	case errors.Is(err, registry.ErrUnknownScenario):
		return http.StatusNotFound
	case errors.Is(err, registry.ErrBadSpec):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// errorDoc is the uniform JSON error body.
type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorDoc{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding a fully materialized value cannot fail except for a broken
	// connection, which the client observes anyway.
	_ = enc.Encode(v)
}
