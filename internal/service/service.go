// Package service is the HTTP/JSON front end over the scenario registry
// and the query layer: the bridge from "library" to "service" on the
// ROADMAP. A Server resolves scenario specs against a registry, keeps
// one memoizing engine per canonical spec (so repeated requests against
// "fsquad" share every cached belief and performance index), and
// evaluates pak's existing query-batch documents with cross-system
// fan-out through query.MultiBatch.
//
// Endpoints:
//
//	GET  /v1/scenarios         — the self-describing catalog (JSON),
//	                             space-valued sweep specs included
//	GET  /v1/scenarios/{name}  — one scenario's metadata
//	POST /v1/eval              — evaluate a query batch against named systems
//	POST /v1/eval/stream       — the same, answered as an NDJSON frame stream
//	POST /v1/envelope          — evaluate one query's min/max envelope over
//	                             an adversary space ("sweep(...)" specs)
//	POST /v1/envelope/stream   — the same, streamed one assignment per frame
//	                             with the running envelope (see envelope.go)
//	GET  /v1/stats             — engine-cache counters (hits/misses/evictions)
//
// An eval request names systems by spec and carries query batches in the
// exact format of pak.ParseQueryBatch — the query layer was shaped to be
// this wire format, so documents produced by pak.MarshalQueryBatch or
// pakrand -batch POST unchanged:
//
//	{
//	  "systems": ["fsquad", "nsquad(3)"],
//	  "queries": [ {"kind":"constraint", ...}, ... ],
//	  "parallelism": 0,
//	  "approx": {"eps": "1/10", "delta": "1/100", "seed": 7},
//	  "backend": "lp"
//	}
//
// The optional "approx" object turns the evaluation approx-first (the
// query layer's WithApprox): supported queries answer from a seeded
// sample with an exact-rational Hoeffding confidence interval before
// refining to the exact value. Buffered responses carry the estimate on
// each refined result (with the ciCovered self-check); the stream emits
// a stage-"approx" frame strictly before each slot's stage-"exact"
// frame; "only" suppresses refinement; and a deadline mid-refinement
// returns standing estimates as sound answers inside the usual 504
// body. Rationals travel as strings ("1/10"), the sample budget is
// capped (maxApproxSamples), invalid specs are 400 at decode, and the
// per-system sampling model is memoized in the engine cache beside the
// engine (EngineCache.ModelFor).
//
// The optional "backend" field selects the exact engine: "enum" (the
// default run-enumeration engine), "lp" (the exact-rational LP engine
// of internal/lpengine — strict, so a batch carrying a query outside
// the LP fragment is rejected with a 400 naming the offending slot),
// or "auto" (per-query routing). The two backends return byte-identical
// result documents on every supported query — internal/query's
// differential harness enforces exactly that — so "lp" is a
// cross-check and performance knob, never a semantic one. The LP
// engine is memoized in the engine cache beside the enumeration engine
// (EngineCache.LPFor), and GET /v1/stats reports per-backend slot
// counts under "backends".
//
// Top-level queries fan out to every named system; a "requests" list
// gives per-system batches instead (or additionally). The response keeps
// per-system result ordering and per-query error isolation: a failing
// query reports in its own slot's "error" field with HTTP 200, while
// request-level failures (unknown scenario, malformed params, a bad
// batch document) are 4xx with a JSON error body. An expired request
// deadline is a 504 whose body is still a full EvalResponse — every
// finished result plus per-slot deadline errors for the rest, with the
// top-level status/error fields naming the cause — so deadline
// truncation never discards completed work. /v1/eval/stream goes
// further and delivers each result the moment it is computed (see
// stream.go for the frame contract).
//
// The server is hardened for sustained traffic: engines are retained in
// a size-bounded LRU (WithEngineCacheSize) whose eviction is invisible —
// a rebuilt engine returns byte-identical results; cold engines named by
// one request build concurrently under singleflight (max-of-unfolds, not
// sum, and concurrent requests for one spec share a single build); and
// WithRequestTimeout bounds a request's wall clock with cooperative
// cancellation at query-boundary granularity. internal/load and
// cmd/pakload drive these paths under concurrency.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pak/internal/core"
	"pak/internal/query"
	"pak/internal/ratutil"
	"pak/internal/registry"
	"pak/internal/store"
)

// Option configures a Server.
type Option func(*Server)

// WithMaxParallelism caps the evaluation workers a single request may
// use (default runtime.GOMAXPROCS(0)). Requests asking for more are
// clamped, never rejected.
func WithMaxParallelism(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxParallel = n
		}
	}
}

// WithMaxQueries caps the total (system, query) pairs one eval request
// may submit (default 10000), bounding a single request's evaluation
// work.
func WithMaxQueries(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxQueries = n
		}
	}
}

// WithMaxSystems caps the systems one eval request may name (default
// 64), bounding the unfolding work a single request can cause.
func WithMaxSystems(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxSystems = n
		}
	}
}

// WithMaxAssignments caps the adversary-space assignments one
// /v1/envelope request may sweep (default defaultMaxAssignments).
// Every assignment resolves, builds and evaluates one system, so this
// is the envelope analogue of WithMaxSystems.
func WithMaxAssignments(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxAssignments = n
		}
	}
}

// WithEngineCacheSize bounds the engines retained across requests
// (default defaultEngineCacheSize). The cache is LRU over canonical
// specs: traffic concentrated on few scenarios keeps them warm forever,
// while a stream of distinct `random(seed=…)` specs cycles through the
// bound instead of growing without limit. n ≤ 0 restores the unbounded
// pre-eviction behaviour. Eviction is invisible to clients — a rebuilt
// engine returns byte-identical results (E17) — it only costs warmth.
func WithEngineCacheSize(n int) Option {
	return func(s *Server) { s.cacheSize = n }
}

// WithRequestTimeout bounds one /v1/eval request's wall-clock time
// (resolve + build + evaluate). On expiry the client receives a 504
// JSON error; evaluation stops cooperatively at the next query
// boundary, and any engine builds already in flight complete and stay
// cached (the work is shared, so finishing it warms the next request).
// d ≤ 0 (the default) means no deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.timeout = d
		}
	}
}

// WithMaxBodyBytes bounds the /v1/eval request body (default
// maxBodyBytes, 8 MiB). Chiefly for tests and embedders fronting the
// handler with their own limits.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.bodyLimit = n
		}
	}
}

// WithClientQuota caps each client's concurrent in-flight evaluation
// requests (/v1/eval[/stream], /v1/envelope[/stream]) at n; the
// n+1-th answers a deterministic 429 before any work happens. Clients
// are told apart by X-Client-ID, falling back to the remote host (see
// quota.go). n ≤ 0 (the default) admits everything.
func WithClientQuota(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.quota = newClientQuota(n)
		}
	}
}

// maxBodyBytes bounds the /v1/eval request body (8 MiB): far above any
// reasonable query batch, far below what could exhaust server memory.
const maxBodyBytes = 8 << 20

// defaultEngineCacheSize is the default engine-retention bound: far
// above the built-in registry's fixed-scenario count (those can never
// evict each other), small enough that unbounded families like
// random(seed=…) cannot grow the process without limit.
const defaultEngineCacheSize = 128

// defaultMaxAssignments is the default per-request bound on envelope
// sweep size: roomy for real loss/seed sweeps, far below the registry's
// own MaxSpaceAssignments hard cap.
const defaultMaxAssignments = 256

// Server serves the registry and the query layer over HTTP. It is safe
// for concurrent use; engines are shared across requests through a
// size-bounded LRU cache with singleflight builds.
type Server struct {
	reg            *registry.Registry
	maxParallel    int
	maxQueries     int
	maxSystems     int
	maxAssignments int
	cacheSize      int
	timeout        time.Duration
	bodyLimit      int64

	engines *EngineCache

	// resultStore is the persistent result tier (nil = off; see
	// store.go), quota the per-client admission control (nil = off;
	// see quota.go).
	resultStore store.Store
	quota       *clientQuota

	// evalEnum and evalLP count accepted evaluation slots per backend
	// (see countBackendSlots); /v1/stats reports them. The store
	// counters classify persistent-tier lookups and writes.
	evalEnum     atomic.Int64
	evalLP       atomic.Int64
	storeHits    atomic.Int64
	storeMisses  atomic.Int64
	storeCorrupt atomic.Int64
	storeWrites  atomic.Int64

	// buildsAvoided counts engine unfolds the lazy-source contract
	// skipped outright: a target whose source was never invoked (its
	// request died before any of its slots started) and whose key was
	// not already cached — an unfold the retired all-engines barrier
	// would have paid for nothing. memoSeeded counts cold builds that
	// seeded their memo tables from a neighbouring engine
	// (core.NewSeeded), the envelope sweeps' structure-sharing hits.
	buildsAvoided atomic.Int64
	memoSeeded    atomic.Int64
}

// New returns a server over the registry (nil means registry.Default()).
func New(reg *registry.Registry, opts ...Option) *Server {
	if reg == nil {
		reg = registry.Default()
	}
	s := &Server{
		reg:            reg,
		maxParallel:    runtime.GOMAXPROCS(0),
		maxQueries:     10000,
		maxSystems:     64,
		maxAssignments: defaultMaxAssignments,
		cacheSize:      defaultEngineCacheSize,
		bodyLimit:      maxBodyBytes,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.engines = NewEngineCache(s.cacheSize)
	return s
}

// Cache exposes the engine cache (stats and observation; the load
// harness and experiment E17 read it).
func (s *Server) Cache() *EngineCache { return s.engines }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("/v1/scenarios/", s.handleScenario)
	mux.HandleFunc("/v1/eval", s.handleEval)
	mux.HandleFunc("/v1/eval/stream", s.handleEvalStream)
	mux.HandleFunc("/v1/envelope", s.handleEnvelope)
	mux.HandleFunc("/v1/envelope/stream", s.handleEnvelopeStream)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// handleStats serves GET /v1/stats: the engine cache's effectiveness
// counters as JSON, for dashboards and pakload's soak accounting.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s not allowed; use GET", r.Method))
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		EngineCache:         s.engines.Stats(),
		Backends:            BackendStats{Enum: s.evalEnum.Load(), LP: s.evalLP.Load()},
		EngineBuildsAvoided: s.buildsAvoided.Load(),
		MemoSeeded:          s.memoSeeded.Load(),
		Store:               s.storeStats(),
	})
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	// EngineCache snapshots the shared engine cache: retained engines
	// (len/cap) and the hit/miss/eviction/shared-build counters.
	EngineCache CacheStats `json:"engineCache"`
	// Backends counts accepted evaluation slots by the backend that
	// answers them (auto-routed slots count under the backend they
	// resolve to; store-served slots never count — no backend ran).
	Backends BackendStats `json:"backends"`
	// EngineBuildsAvoided counts unfolds the lazy engine sources skipped
	// because the request died before any of the target's slots started
	// (and the key was not already cached).
	EngineBuildsAvoided int64 `json:"engineBuildsAvoided"`
	// MemoSeeded counts cold builds that seeded their structural memo
	// tables from a neighbouring engine (sweep structure sharing).
	MemoSeeded int64 `json:"memoSeeded"`
	// Store snapshots the persistent result tier; absent when no store
	// is configured, so the classic stats shape is byte-identical.
	Store *StoreStats `json:"store,omitempty"`
}

// BackendStats is the per-backend slot accounting in StatsResponse.
type BackendStats struct {
	Enum int64 `json:"enum"`
	LP   int64 `json:"lp"`
}

// resolved is a spec vetted for the service path: its canonical cache
// key plus a deferred build closure. Resolution (cheap, always serial)
// is split from building (expensive, lazily triggered) so handleEval
// can reject a bad request before any unfold starts and defer the cold
// builds to the evaluator's first touch. The build accepts an optional
// seeding neighbour: a same-shape engine whose structural memo tables
// the new engine shares (core.NewSeeded; nil builds fresh); the bool
// reports whether seeding actually took.
type resolved struct {
	spec  string
	key   string
	build func(seed *core.Engine) (*core.Engine, bool, error)
}

// resolveTarget resolves and vets one spec without building it.
func (s *Server) resolveTarget(spec string) (resolved, error) {
	sc, args, err := s.reg.Resolve(spec)
	if err != nil {
		return resolved{}, err
	}
	// Wire-exposure bounds (trusted local callers bypass both by
	// building directly): the generic value/rational caps every
	// scenario shares, then the scenario's own ServeGuard. Guard
	// rejections are client errors by definition, so wrap them in
	// ErrBadSpec even when a custom guard returns a plain error.
	if err := args.VetForService(); err != nil {
		return resolved{}, err
	}
	if sc.ServeGuard != nil {
		if err := sc.ServeGuard(args); err != nil {
			if !errors.Is(err, registry.ErrBadSpec) && !errors.Is(err, registry.ErrUnknownScenario) {
				err = fmt.Errorf("%w: %v", registry.ErrBadSpec, err)
			}
			return resolved{}, err
		}
	}
	key := args.Canonical()
	return resolved{spec: spec, key: key, build: func(seed *core.Engine) (*core.Engine, bool, error) {
		sys, err := sc.Build(args)
		if err != nil {
			// Validated params fully determine a build, so a builder failure
			// here is a domain error in the client's spec (loss outside
			// [0,1], agents=0, eps ≥ p, ...): report it as one, not as a 500.
			return nil, false, fmt.Errorf("%w: %v", registry.ErrBadSpec, err)
		}
		if sys == nil {
			// Same guard Registry.Build applies: a custom builder returning
			// (nil, nil) must not become a permanently cached nil-system
			// engine that panics on every query.
			return nil, false, fmt.Errorf("%w: scenario %q returned a nil system", registry.ErrBadSpec, key)
		}
		// NewSeeded is gated on pps.SameShape, so a nil or shape-
		// mismatched seed degrades to a fresh engine — seeding is a
		// warmth transfer, never a correctness dependency.
		e, shared := core.NewSeeded(sys, seed)
		return e, shared, nil
	}}, nil
}

// engineFor resolves a spec and returns the shared engine for its
// canonical form, building (and caching) the system on first use —
// the serial single-spec path; the request handlers go through lazy
// sources (sourceFor) instead.
func (s *Server) engineFor(spec string) (*core.Engine, string, error) {
	r, err := s.resolveTarget(spec)
	if err != nil {
		return nil, "", err
	}
	e, err := s.engines.Get(r.key, func() (*core.Engine, error) {
		e, _, err := r.build(nil)
		return e, err
	})
	if err != nil {
		return nil, "", err
	}
	return e, r.key, nil
}

// sourceState is one target's lazy build cell for a single request: the
// EngineSource handed to the query layer, plus the record of whether it
// was ever invoked and with what outcome. The handlers read it after
// evaluation (sweepSources) — and the streaming handlers on each frame
// — to classify failures and count the builds laziness avoided.
type sourceState struct {
	target  resolved
	src     query.EngineSource
	invoked atomic.Bool

	mu  sync.Mutex
	err error
}

// genuineBuildErr returns the target's build failure when it is a
// genuine one — a bad spec or builder domain error — and nil when the
// build was merely cut by the request context (those slots already
// carry the cut as per-slot context errors).
func (st *sourceState) genuineBuildErr(ctx context.Context) error {
	st.mu.Lock()
	err := st.err
	st.mu.Unlock()
	if err != nil && (!isContextErr(err) || context.Cause(ctx) == nil) {
		return err
	}
	return nil
}

// sourceFor wires one target into the query layer's lazy-engine
// contract: an EngineSource that reads through the shared engine cache
// (LRU + singleflight — concurrent requests naming one key still share
// one unfold), optionally seeds a cold build from the request's seed
// chain, and attaches the cache-memoized sampling model / LP engine the
// eager path used to inject. The evaluator invokes it when its first
// worker reaches one of the target's slots with a live context, so
// early systems evaluate while later ones are still cold and a request
// that dies first never pays for the build at all.
//
// seed, when non-nil, is a per-request chain for sweep-shaped requests:
// the first successfully built engine is published once (CAS) and every
// later cold build seeds from it. Sharing is live and bidirectional
// (core.NewSeeded), so one published neighbour joins every same-shape
// assignment of the sweep to one set of structural memo tables.
func (s *Server) sourceFor(st *sourceState, wantModel, wantLP bool, seed *atomic.Pointer[core.Engine]) query.EngineSource {
	st.src = func(ctx context.Context) (query.Engines, error) {
		st.invoked.Store(true)
		var refused bool
		e, err := s.engines.Get(st.target.key, func() (*core.Engine, error) {
			var neighbour *core.Engine
			if seed != nil {
				neighbour = seed.Load()
			}
			e, shared, err := st.target.build(neighbour)
			if shared {
				s.memoSeeded.Add(1)
			} else if neighbour != nil {
				refused = true
			}
			return e, err
		})
		if err != nil {
			st.mu.Lock()
			st.err = err
			st.mu.Unlock()
			return query.Engines{}, err
		}
		if seed != nil && !seed.CompareAndSwap(nil, e) && refused {
			// The published seed has a different shape than this cold
			// build (a sweep endpoint like loss=0 prunes zero-weight
			// branches from its unfold, so it can anchor nothing);
			// publish this engine instead so the rest of its
			// shape-class still shares.
			seed.Store(e)
		}
		eng := query.Engines{Engine: e}
		if wantModel {
			if m, ok := s.engines.ModelFor(st.target.key); ok {
				eng.Model = m
			}
		}
		if wantLP {
			if lp, ok := s.engines.LPFor(st.target.key); ok {
				eng.LP = lp
			}
		}
		return eng, nil
	}
	return st.src
}

// sweepSources closes out a request's lazy builds after evaluation:
//
//   - A target whose source was never invoked under a live context is a
//     batchless probe (an empty query batch has no slot to trigger the
//     build): its source is resolved now, so the probe still vets the
//     builder and surfaces its 4xx exactly as the retired all-engines
//     barrier did. Once the context has a cause, probing is skipped —
//     the eager path never started new builds past the deadline either
//     — and the skipped unfold counts as a build avoided (per distinct
//     key, and only when the key is not already cached).
//   - The first genuine build failure in target order is returned; the
//     caller reports it request-level with statusOfEvalErr, exactly as
//     the barrier's first-error-in-target-order did.
//
// Callers run it strictly after the evaluator has terminated, so every
// source either finished or was never invoked.
func (s *Server) sweepSources(ctx context.Context, states []*sourceState) error {
	avoided := make(map[string]bool)
	var probes []*sourceState
	for _, st := range states {
		if st == nil || st.invoked.Load() {
			continue
		}
		if context.Cause(ctx) != nil {
			if !avoided[st.target.key] && !s.engines.Contains(st.target.key) {
				avoided[st.target.key] = true
				s.buildsAvoided.Add(1)
			}
			continue
		}
		probes = append(probes, st)
	}
	// Batchless probes run concurrently, bounded like evaluation workers:
	// the retired barrier built cold engines side by side, and a probe-
	// only request (systems named, no queries) keeps that cost profile.
	// The cache's singleflight dedupes targets sharing a canonical key.
	if len(probes) > 0 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, s.maxParallel)
		for _, st := range probes {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				_, _ = st.src(ctx)
			}()
		}
		wg.Wait()
	}
	for _, st := range states {
		if st == nil {
			continue
		}
		if err := st.genuineBuildErr(ctx); err != nil {
			return err
		}
	}
	return nil
}

// The catalog endpoints serialize registry.Scenario directly: its JSON
// tags are the wire form (the builder is json:"-"), so new metadata
// fields reach clients without a mirror struct here.

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s not allowed; use GET", r.Method))
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Scenarios())
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s not allowed; use GET", r.Method))
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/scenarios/")
	sc, ok := s.reg.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("%w: %q (have %v)", registry.ErrUnknownScenario, name, s.reg.Names()))
		return
	}
	writeJSON(w, http.StatusOK, sc)
}

// EvalRequest is the /v1/eval request body.
type EvalRequest struct {
	// Systems are scenario specs the top-level Queries fan out to.
	Systems []string `json:"systems,omitempty"`
	// Queries is a pak.ParseQueryBatch document (a JSON array of query
	// specs) shared by every entry of Systems, and the default batch for
	// Requests entries that omit their own.
	Queries json.RawMessage `json:"queries,omitempty"`
	// Requests are per-system batches, appended after Systems' fan-out.
	Requests []SystemRequest `json:"requests,omitempty"`
	// Parallelism bounds the worker pool (0 = server default; values
	// above the server's cap are clamped). 1 evaluates serially — the
	// results are identical either way, only slower.
	Parallelism int `json:"parallelism,omitempty"`
	// Approx enables the approximate tier for the whole request: every
	// supported query answers with a seeded sampled estimate first, then
	// (unless "only" is set) refines to the exact value. On the
	// streaming path the estimate arrives as its own stage:"approx"
	// frame before the exact frame.
	Approx *ApproxRequest `json:"approx,omitempty"`
	// Backend selects the exact engine answering this request: "enum"
	// (the default, every query kind), "lp" (the exact-rational LP
	// engine — strict: a request carrying any query outside its
	// fragment is a 400 naming the offending slot), or "auto" (each
	// query routes to lp when supported, enum otherwise). Both backends
	// return byte-identical result documents on the LP fragment; the
	// differential harness in internal/query pins that.
	Backend string `json:"backend,omitempty"`
}

// ApproxRequest is the wire form of a query.ApproxSpec. Rationals
// travel as strings ("1/20", "0.05") so the request round-trips the
// exact values the response's estimate echoes.
type ApproxRequest struct {
	// Eps is the target CI half-width; the sample budget is derived from
	// (eps, delta) when Samples is 0.
	Eps string `json:"eps,omitempty"`
	// Delta is the per-interval failure probability (default 1/100).
	Delta string `json:"delta,omitempty"`
	// Samples fixes the per-slot budget directly, overriding Eps.
	Samples int `json:"samples,omitempty"`
	// Seed is the base seed (0 = the deterministic default); per-slot
	// seeds derive from it, so one request is reproducible end to end.
	Seed int64 `json:"seed,omitempty"`
	// Only answers from samples alone: no exact refinement runs.
	Only bool `json:"only,omitempty"`
}

// maxApproxSamples caps the per-slot sample budget a request may set
// directly; eps-derived budgets are capped inside montecarlo.SampleSize.
const maxApproxSamples = 1 << 22

// approxSpec converts the wire form to the query layer's spec,
// validating exactly as the evaluator would so a bad spec is a 400 at
// decode, never N identical per-slot failures.
func (a *ApproxRequest) approxSpec() (*query.ApproxSpec, error) {
	if a == nil {
		return nil, nil
	}
	spec := query.ApproxSpec{Samples: a.Samples, Seed: a.Seed, Only: a.Only}
	if a.Eps != "" {
		eps, err := ratutil.Parse(a.Eps)
		if err != nil {
			return nil, fmt.Errorf("approx: bad eps: %w", err)
		}
		spec.Eps = eps
	}
	if a.Delta != "" {
		delta, err := ratutil.Parse(a.Delta)
		if err != nil {
			return nil, fmt.Errorf("approx: bad delta: %w", err)
		}
		spec.Delta = delta
	}
	if spec.Samples > maxApproxSamples {
		return nil, fmt.Errorf("approx: sample budget %d above the server cap of %d", spec.Samples, maxApproxSamples)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// SystemRequest is one per-system batch inside an EvalRequest.
type SystemRequest struct {
	// System is the scenario spec.
	System string `json:"system"`
	// Queries overrides the request's shared batch for this system.
	Queries json.RawMessage `json:"queries,omitempty"`
}

// EvalResponse is the /v1/eval response body.
type EvalResponse struct {
	// Results has one entry per requested system, in request order.
	Results []SystemResult `json:"results"`
	// Status is set when the request's deadline expired ("deadline") or
	// its context was cancelled ("cancelled") before every query
	// finished: Results then carries the finished prefix — every
	// completed slot exact, byte-identical to its untimed value — plus
	// per-slot errors for the queries that never ran. Empty on a fully
	// evaluated request.
	Status string `json:"status,omitempty"`
	// Error carries the request-level timeout/cancellation message that
	// accompanies Status.
	Error string `json:"error,omitempty"`
}

// SystemResult is one system's evaluated batch.
type SystemResult struct {
	// System echoes the requested spec; Canonical is its fully resolved
	// form (the engine-cache key).
	System    string `json:"system"`
	Canonical string `json:"canonical"`
	// Results has one entry per query, in batch order. Failed queries
	// carry their message in the entry's "error" field.
	Results []query.ResultDoc `json:"results"`
}

// evalPlan is one vetted /v1/eval request, shared by the buffered and
// streaming handlers: the requested spec strings, their resolved
// targets, the parsed per-system batches, and the clamped parallelism.
type evalPlan struct {
	specs    []string
	targets  []resolved
	batches  [][]query.Query
	parallel int
	// approx is the validated approximate-tier spec (nil = exact only).
	approx *query.ApproxSpec
	// backend is the parsed evaluation backend (BackendEnum when the
	// request omitted the field).
	backend query.Backend
}

// evalOptions renders the plan as query-layer options.
func (p evalPlan) evalOptions(ctx context.Context) []query.Option {
	opts := []query.Option{query.WithParallelism(p.parallel), query.WithContext(ctx)}
	if p.approx != nil {
		opts = append(opts, query.WithApprox(*p.approx))
	}
	if p.backend != "" && p.backend != query.BackendEnum {
		opts = append(opts, query.WithBackend(p.backend))
	}
	return opts
}

// lpSlot reports whether the plan routes q to the LP engine.
func (p evalPlan) lpSlot(q query.Query) bool {
	return (p.backend == query.BackendLP || p.backend == query.BackendAuto) && query.CanSolveLP(q)
}

// countBackendSlots classifies the plan's (system, query) slots by the
// backend that will answer them and adds them to the server's
// per-backend counters. Classification happens at plan time — after
// validation, before evaluation — so strict-lp requests rejected with
// 400 never count, and /v1/stats reflects accepted work even when a
// deadline later truncates it.
func (s *Server) countBackendSlots(plan evalPlan) {
	var lp, enum int64
	for _, batch := range plan.batches {
		for _, q := range batch {
			if plan.lpSlot(q) {
				lp++
			} else {
				enum++
			}
		}
	}
	s.evalEnum.Add(enum)
	s.evalLP.Add(lp)
}

// lazyItems assembles the plan's MultiItems around lazy engine sources:
// one source per target with un-stored work (fully-hit systems stream
// straight from the store and never get one), each reading through the
// shared engine cache and injecting the cache-memoized sampling model /
// LP engine on resolution. The returned states parallel the items;
// callers pass them to sweepSources after evaluation.
func (s *Server) lazyItems(plan evalPlan, lookup *storeLookup) ([]*sourceState, []query.MultiItem) {
	states := make([]*sourceState, len(plan.targets))
	items := make([]query.MultiItem, len(plan.targets))
	wantLP := plan.backend == query.BackendLP || plan.backend == query.BackendAuto
	for i := range plan.targets {
		items[i] = query.MultiItem{Queries: plan.batches[i]}
		if lookup.fullyHit(i) {
			continue
		}
		states[i] = &sourceState{target: plan.targets[i]}
		items[i].Source = s.sourceFor(states[i], plan.approx != nil, wantLP, nil)
	}
	return states, items
}

// decodeEvalRequest parses, validates and resolves an eval request
// without building any engine: body decoding, the normalization of
// "systems"/"requests" into one per-system list, batch parsing, the
// query/system caps, and spec resolution. On failure it writes the 4xx
// itself and reports false — nothing has been streamed yet at this
// point, so request-level errors always get a proper status line.
func (s *Server) decodeEvalRequest(w http.ResponseWriter, r *http.Request) (evalPlan, bool) {
	var req EvalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return evalPlan{}, false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request body: %w", err))
		return evalPlan{}, false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest,
			errors.New("malformed request body: trailing content after the JSON document"))
		return evalPlan{}, false
	}

	// Normalize both request forms into one per-system list. `shared`
	// marks targets using the top-level batch, which is parsed once.
	type target struct {
		spec   string
		raw    json.RawMessage
		shared bool
	}
	var targets []target
	for _, spec := range req.Systems {
		targets = append(targets, target{spec: spec, raw: req.Queries, shared: true})
	}
	for _, sr := range req.Requests {
		raw, shared := sr.Queries, false
		if isMissingJSON(raw) {
			raw, shared = req.Queries, true
		}
		targets = append(targets, target{spec: sr.System, raw: raw, shared: shared})
	}
	if len(targets) == 0 {
		writeError(w, http.StatusBadRequest,
			errors.New(`empty request: name at least one system in "systems" or "requests"`))
		return evalPlan{}, false
	}
	// The systems cap bounds the builds, not just the evaluations: every
	// distinct canonical spec unfolds a system and retains an engine.
	if len(targets) > s.maxSystems {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("request names %d systems, above the server cap of %d", len(targets), s.maxSystems))
		return evalPlan{}, false
	}

	// Parse every batch and enforce the work cap before building any
	// engine: scenario unfolding is the expensive, cached-forever part,
	// so an over-cap request must be rejected before it happens. The
	// shared top-level batch is parsed once, not once per system.
	var sharedQs []query.Query
	sharedParsed := false
	batches := make([][]query.Query, len(targets))
	total := 0
	for i, tg := range targets {
		if isMissingJSON(tg.raw) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf(`system %q has no query batch: provide "queries" at the top level or per request`, tg.spec))
			return evalPlan{}, false
		}
		if tg.shared && sharedParsed {
			batches[i] = sharedQs
			total += len(sharedQs)
			continue
		}
		qs, err := query.ParseBatch(tg.raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("system %q: bad query batch: %w", tg.spec, err))
			return evalPlan{}, false
		}
		if tg.shared {
			sharedQs, sharedParsed = qs, true
		}
		batches[i] = qs
		total += len(qs)
	}
	if total > s.maxQueries {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("request submits %d queries, above the server cap of %d", total, s.maxQueries))
		return evalPlan{}, false
	}

	// Resolve every spec (cheap, serial — bad requests are rejected
	// before any unfold), then build the distinct cold engines
	// concurrently under the cache's singleflight.
	resolvedTargets := make([]resolved, len(targets))
	for i, tg := range targets {
		rt, err := s.resolveTarget(tg.spec)
		if err != nil {
			writeError(w, statusOfEvalErr(err), err)
			return evalPlan{}, false
		}
		resolvedTargets[i] = rt
	}
	parallel := s.maxParallel
	if req.Parallelism > 0 && req.Parallelism < parallel {
		parallel = req.Parallelism
	}
	approx, err := req.Approx.approxSpec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return evalPlan{}, false
	}
	backend, err := query.ParseBackend(req.Backend)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return evalPlan{}, false
	}
	if backend == query.BackendLP {
		// Strict lp validates at decode: one 400 naming the first offending
		// slot, never N identical per-slot failures. Auto needs no check —
		// unsupported queries fall through to enumeration.
		for i, tg := range targets {
			for j, q := range batches[i] {
				if !query.CanSolveLP(q) {
					writeError(w, http.StatusBadRequest,
						fmt.Errorf("%w: system %q query %d (%s)", query.ErrBackendUnsupported, tg.spec, j, q))
					return evalPlan{}, false
				}
			}
		}
	}

	plan := evalPlan{
		specs:    make([]string, len(targets)),
		targets:  resolvedTargets,
		batches:  batches,
		parallel: parallel,
		approx:   approx,
		backend:  backend,
	}
	for i, tg := range targets {
		plan.specs[i] = tg.spec
	}
	return plan, true
}

// handleEval serves POST /v1/eval: the buffered evaluation path. A
// request that outruns its deadline is not discarded: the 504 body is
// a full EvalResponse carrying every finished result (exact,
// byte-identical to its untimed value) plus per-slot deadline errors
// for the queries that never ran, with the top-level status/error
// fields naming the cause — the finished prefix is never lost.
//
// With a result store configured, the request reads through it first:
// stored slots are answered from their persisted ResultDoc
// (byte-identical to a fresh evaluation), only the missing slots are
// evaluated, and systems whose every slot hit skip their engine build
// entirely. Fresh deterministic results are written back (store.go
// has the full contract).
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s not allowed; use POST", r.Method))
		return
	}
	release, admitted := s.admit(w, r)
	if !admitted {
		return
	}
	defer release()
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}

	plan, ok := s.decodeEvalRequest(w, r)
	if !ok {
		return
	}
	lookup := s.lookupStored(plan)
	evalView, slotMap := reducePlan(plan, lookup)
	// Backend accounting covers the slots evaluation will actually
	// answer — store-served slots ran no backend.
	s.countBackendSlots(evalView)

	// Engines are lazy sources, not a pre-built barrier: each system
	// with un-stored work builds (through the shared cache) when the
	// evaluator first reaches one of its slots, fully-hit systems cost
	// zero engine rebuilds — which is what makes restart-without-
	// recomputation literal — and a deadline mid-request leaves the
	// unreached builds unstarted.
	states, items := s.lazyItems(evalView, lookup)
	// Per-query errors are already isolated in their result slots; the
	// joined error adds nothing for a wire client.
	results, _ := query.MultiBatch(items, evalView.evalOptions(ctx)...)
	if err := s.sweepSources(ctx, states); err != nil {
		// A genuine build failure (bad spec, builder domain error — or a
		// context-flavoured error from a custom builder while this
		// request is still live) is a plain request error, reported with
		// the first failing target's error exactly as the retired
		// barrier reported it. Context-cut builds fall through instead:
		// their slots already carry per-slot deadline errors in an
		// otherwise well-formed response.
		writeError(w, statusOfEvalErr(err), err)
		return
	}

	resp := EvalResponse{Results: make([]SystemResult, len(plan.targets))}
	for i := range plan.targets {
		docs := make([]query.ResultDoc, len(plan.batches[i]))
		for j := range plan.batches[i] {
			if hit := lookup.hit(i, j); hit != nil {
				docs[j] = *hit
			}
		}
		for jj, res := range results[i] {
			orig := jj
			if slotMap != nil {
				orig = slotMap[i][jj]
			}
			docs[orig] = query.DocOf(res)
			s.persistResult(ctx, lookup, plan.targets[i].key, i, orig, docs[orig])
		}
		resp.Results[i] = SystemResult{
			System:    plan.specs[i],
			Canonical: plan.targets[i].key,
			Results:   docs,
		}
	}
	if cause := context.Cause(ctx); cause != nil {
		// Deadline truncation keeps the finished work: same body shape,
		// 504 status, the cause named at the top level.
		resp.Status = string(streamStatusOf(cause))
		resp.Error = evalErrMessage(cause, s.timeout).Error()
		writeJSON(w, statusOfEvalErr(cause), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// isContextErr reports whether err is the expiry/cancellation of the
// request context rather than a genuine request defect (the one
// classifier every layer shares, exported from core).
func isContextErr(err error) bool { return core.IsContextErr(err) }

// streamStatusOf classifies a context cause for the wire: the same
// deadline/cancelled vocabulary the stream terminal frame uses.
func streamStatusOf(cause error) query.StreamStatus {
	if errors.Is(cause, context.DeadlineExceeded) {
		return query.StreamDeadline
	}
	return query.StreamCancelled
}

// isMissingJSON reports whether a raw batch field is absent for all
// practical purposes: omitted entirely, or the JSON null literal
// ("present" only lexically). One predicate, so the per-request
// fallback and the final validation can't disagree on null.
func isMissingJSON(raw json.RawMessage) bool {
	return len(raw) == 0 || string(raw) == "null"
}

// statusOfEvalErr maps an eval-path failure to its HTTP status: unknown
// scenarios and malformed specs are client errors, an expired request
// deadline is a 504 gateway timeout (the server ran out of its allotted
// time, the request itself was well-formed).
func statusOfEvalErr(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for logs only.
		return http.StatusGatewayTimeout
	case errors.Is(err, registry.ErrUnknownScenario):
		return http.StatusNotFound
	case errors.Is(err, registry.ErrBadSpec):
		return http.StatusBadRequest
	case errors.Is(err, query.ErrBackendUnsupported):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// evalErrMessage renders an eval-path failure for the wire. Deadline
// errors get a deterministic message naming the configured budget —
// stable across runs, so clients (and the golden tests) can rely on
// its shape.
func evalErrMessage(err error, timeout time.Duration) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("request deadline exceeded: evaluation did not finish within the server's %v budget", timeout)
	case errors.Is(err, context.Canceled):
		return errors.New("request cancelled before evaluation finished")
	default:
		return err
	}
}

// errorDoc is the uniform JSON error body.
type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorDoc{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding a fully materialized value cannot fail except for a broken
	// connection, which the client observes anyway.
	_ = enc.Encode(v)
}
