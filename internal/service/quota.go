// Admission control: a per-client concurrency quota in front of the
// evaluation endpoints (WithClientQuota / pakd -client-quota). The
// heavy requests — MultiBatch fan-outs and envelope sweeps — are the
// ones a single greedy client can starve a fleet with, so admission
// happens before any decode or engine work: over-quota requests cost
// the server one map lookup and answer a deterministic, golden-pinned
// 429.
//
// Client identity is the X-Client-ID header when present (the
// cooperative fleet case: replicas and load drivers name themselves),
// else the remote address's host — so an anonymous client is limited
// per source address rather than sharing one global bucket.
package service

import (
	"fmt"
	"net"
	"net/http"
	"sync"
)

// clientIDHeader names the requests' self-identification header.
const clientIDHeader = "X-Client-ID"

// clientQuota tracks in-flight evaluation requests per client.
type clientQuota struct {
	limit    int
	mu       sync.Mutex
	inflight map[string]int
}

func newClientQuota(limit int) *clientQuota {
	return &clientQuota{limit: limit, inflight: make(map[string]int)}
}

// acquire admits one request for id, reporting false at the limit.
func (q *clientQuota) acquire(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.inflight[id] >= q.limit {
		return false
	}
	q.inflight[id]++
	return true
}

// release returns one admitted slot. Entries drop out of the map at
// zero so the table stays proportional to concurrent clients, not to
// every client ever seen.
func (q *clientQuota) release(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := q.inflight[id]; n <= 1 {
		delete(q.inflight, id)
	} else {
		q.inflight[id] = n - 1
	}
}

// clientID extracts the request's admission identity.
func clientID(r *http.Request) string {
	if id := r.Header.Get(clientIDHeader); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// admit applies the per-client quota for one evaluation request. It
// reports (release, true) on admission — the caller must defer the
// release — or writes the 429 itself and reports false. With no quota
// configured every request admits for free.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (func(), bool) {
	if s.quota == nil {
		return func() {}, true
	}
	id := clientID(r)
	if !s.quota.acquire(id) {
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("client %q exceeds the per-client concurrency quota of %d in-flight evaluation requests",
				id, s.quota.limit))
		return nil, false
	}
	return func() { s.quota.release(id) }, true
}
