package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pak/internal/core"
	"pak/internal/paper"
	"pak/internal/query"
	"pak/internal/registry"
	"pak/internal/scenarios"
)

// envConstraintDoc is the shared inner query: µ(all-fire @ fire | fire)
// for the General on an nsquad instance. Its closed form (1−ℓ²)^(n−1)
// varies monotonically with the swept loss, so the envelope's witnesses
// are the sweep's endpoints.
func envConstraintDoc(t *testing.T) string {
	t.Helper()
	doc, err := query.Marshal(query.ConstraintQuery{
		Fact:  scenarios.AllFireFact(2),
		Agent: scenarios.General, Action: scenarios.ActFire,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(doc)
}

const envSpace = "sweep(nsquad, loss=0.0..0.5/0.1, n=2)"

func postEnvelope(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	return resp, readAll(t, resp)
}

// decodedEnvStream is one parsed /v1/envelope/stream response.
type decodedEnvStream struct {
	results  []EnvelopeResultFrame
	terminal EnvelopeStatusFrame
}

func parseEnvStream(t *testing.T, body string) decodedEnvStream {
	t.Helper()
	var out decodedEnvStream
	seenTerminal := false
	for ln, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if seenTerminal {
			t.Fatalf("line %d: frame after the terminal status frame: %s", ln, line)
		}
		var probe struct {
			Frame string `json:"frame"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("line %d is not a JSON frame: %v (%s)", ln, err, line)
		}
		switch probe.Frame {
		case frameResult:
			var f EnvelopeResultFrame
			if err := json.Unmarshal([]byte(line), &f); err != nil {
				t.Fatalf("line %d: bad result frame: %v", ln, err)
			}
			out.results = append(out.results, f)
		case frameStatus:
			if err := json.Unmarshal([]byte(line), &out.terminal); err != nil {
				t.Fatalf("line %d: bad status frame: %v", ln, err)
			}
			seenTerminal = true
		default:
			t.Fatalf("line %d: unknown frame kind %q", ln, probe.Frame)
		}
	}
	if !seenTerminal {
		t.Fatal("stream ended without a terminal status frame")
	}
	return out
}

// compactJSON renders any wire value compactly for byte comparison.
func compactJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// inProcessEnvelope evaluates the same sweep in-process through the
// registry — the three-way determinism baseline.
func inProcessEnvelope(t *testing.T, space, queryDoc string, opts ...query.Option) query.EnvelopeOutcome {
	t.Helper()
	rs, err := registry.Default().ResolveSpace(space)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := query.Parse([]byte(queryDoc))
	if err != nil {
		t.Fatal(err)
	}
	var items []query.EnvelopeItem
	for _, inst := range rs.Instances() {
		sys, err := registry.Default().Build(inst.Canonical)
		if err != nil {
			t.Fatalf("build %s: %v", inst.Canonical, err)
		}
		items = append(items, query.EnvelopeItem{
			Assignment: inst.Assignment.String(),
			Spec:       inst.Canonical,
			Engine:     core.New(sys),
		})
	}
	out, err := query.EvalEnvelope(query.EnvelopeQuery{Inner: inner, Items: items}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEnvelopeValues pins the envelope's arithmetic on the closed form:
// µ = 1−ℓ² for nsquad(2), so the sweep 0..1/2 by 1/10 has max 1 at
// loss=0 and min 3/4 at loss=1/2.
func TestEnvelopeValues(t *testing.T) {
	ts := newTestServer(t)
	body := fmt.Sprintf(`{"space": %q, "query": %s}`, envSpace, envConstraintDoc(t))
	resp, data := postEnvelope(t, ts, "/v1/envelope", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var er EnvelopeResponse
	if err := json.Unmarshal([]byte(data), &er); err != nil {
		t.Fatal(err)
	}
	if er.Canonical != "sweep(nsquad,n=2,loss=0..1/2/1/10,improved=false)" {
		t.Errorf("canonical = %q", er.Canonical)
	}
	env := er.Envelope
	if env.Min != "3/4" || env.Max != "1" {
		t.Errorf("envelope = [%s, %s], want [3/4, 1]", env.Min, env.Max)
	}
	if env.ArgMin != "loss=1/2" || env.ArgMax != "loss=0" {
		t.Errorf("witnesses = (%q, %q)", env.ArgMin, env.ArgMax)
	}
	if env.Visited != 6 || env.Total != 6 || len(env.Skipped) != 0 {
		t.Errorf("coverage = %d/%d skipped %v", env.Visited, env.Total, env.Skipped)
	}
	if len(er.Assignments) != 6 {
		t.Fatalf("assignments = %d", len(er.Assignments))
	}
	want := []string{"1", "99/100", "24/25", "91/100", "21/25", "3/4"}
	for i, ar := range er.Assignments {
		if ar.Result.Value != want[i] {
			t.Errorf("assignment %d (%s) = %s, want %s", i, ar.Assignment, ar.Result.Value, want[i])
		}
	}
}

// TestEnvelopeDeterminism is the three-way identity the ISSUE pins: the
// streamed envelope after all frames, the buffered /v1/envelope answer,
// and a serial in-process EnvelopeQuery run are byte-identical in wire
// form — same bounds, same witness assignments, same per-assignment
// results — and a parallel in-process run agrees with the serial one
// (the fold is order-independent). Runs under -race in CI.
func TestEnvelopeDeterminism(t *testing.T) {
	ts := newTestServer(t)
	queryDoc := envConstraintDoc(t)
	body := fmt.Sprintf(`{"space": %q, "query": %s}`, envSpace, queryDoc)

	buffResp, buffData := postEnvelope(t, ts, "/v1/envelope", body)
	if buffResp.StatusCode != http.StatusOK {
		t.Fatalf("buffered status %d: %s", buffResp.StatusCode, buffData)
	}
	var buffered EnvelopeResponse
	if err := json.Unmarshal([]byte(buffData), &buffered); err != nil {
		t.Fatal(err)
	}

	streamResp, streamData := postEnvelope(t, ts, "/v1/envelope/stream", body)
	if streamResp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", streamResp.StatusCode, streamData)
	}
	if ct := streamResp.Header.Get("Content-Type"); ct != contentTypeNDJSON {
		t.Errorf("Content-Type = %q, want %q", ct, contentTypeNDJSON)
	}
	stream := parseEnvStream(t, streamData)

	// Stream ≡ buffered: the terminal envelope and every slot.
	if got, want := compactJSON(t, stream.terminal.Envelope), compactJSON(t, buffered.Envelope); got != want {
		t.Errorf("streamed final envelope differs from buffered:\nstream:   %s\nbuffered: %s", got, want)
	}
	if stream.terminal.Status != string(query.StreamComplete) {
		t.Errorf("terminal status = %q", stream.terminal.Status)
	}
	if len(stream.results) != len(buffered.Assignments) {
		t.Fatalf("stream emitted %d frames, buffered has %d assignments", len(stream.results), len(buffered.Assignments))
	}
	seen := make(map[int]bool)
	for _, f := range stream.results {
		if seen[f.Index] {
			t.Fatalf("assignment %d emitted twice", f.Index)
		}
		seen[f.Index] = true
		ba := buffered.Assignments[f.Index]
		if f.Assignment != ba.Assignment || f.Spec != ba.Spec {
			t.Errorf("frame %d identity (%q, %q) != buffered (%q, %q)", f.Index, f.Assignment, f.Spec, ba.Assignment, ba.Spec)
		}
		if got, want := compactJSON(t, f.Result), compactJSON(t, ba.Result); got != want {
			t.Errorf("frame %d result differs from buffered slot:\nstream:   %s\nbuffered: %s", f.Index, got, want)
		}
	}

	// Buffered ≡ in-process serial ≡ in-process parallel.
	serial := inProcessEnvelope(t, envSpace, queryDoc, query.WithParallelism(1))
	parallel := inProcessEnvelope(t, envSpace, queryDoc)
	for name, out := range map[string]query.EnvelopeOutcome{"serial": serial, "parallel": parallel} {
		if got, want := compactJSON(t, query.RangeDocOf(*out.Result.Envelope)), compactJSON(t, buffered.Envelope); got != want {
			t.Errorf("in-process %s envelope differs from wire:\nin-process: %s\nwire:       %s", name, got, want)
		}
		for i, slot := range out.Slots {
			if got, want := compactJSON(t, query.DocOf(slot)), compactJSON(t, buffered.Assignments[i].Result); got != want {
				t.Errorf("in-process %s slot %d differs from wire:\nin-process: %s\nwire:       %s", name, i, got, want)
			}
		}
	}
}

// TestEnvelopePartialOnDeadline is the deterministic prefix proof: a
// deadline cause injected mid-sweep (from inside the 2nd of 6
// assignments, serial order) yields a "deadline" terminal whose
// envelope is the exact fold of the two visited assignments — each
// byte-identical to its untimed value — labeled with the visited
// count, while the remaining slots carry per-slot deadline errors.
func TestEnvelopePartialOnDeadline(t *testing.T) {
	rs, err := registry.Default().ResolveSpace(envSpace)
	if err != nil {
		t.Fatal(err)
	}
	var items []query.EnvelopeItem
	for _, inst := range rs.Instances() {
		sys, err := registry.Default().Build(inst.Canonical)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, query.EnvelopeItem{
			Assignment: inst.Assignment.String(), Spec: inst.Canonical, Engine: core.New(sys),
		})
	}

	// The inner query computes the same constraint probability through a
	// MetricQuery whose Fn doubles as the deadline trigger: the moment
	// the visitBudget-th evaluation completes, the context expires with
	// a DeadlineExceeded cause — deterministic mid-sweep expiry, no
	// timers. The untimed baseline uses an identical metric without the
	// trigger, so finished slots must diff byte-clean.
	const visitBudget = 2
	constraint := func(e *core.Engine) (*big.Rat, error) {
		return e.ConstraintProb(scenarios.AllFireFact(2), scenarios.General, scenarios.ActFire)
	}
	untimedQ := query.EnvelopeQuery{
		Inner: query.MetricQuery{Name: "µ(all-fire | fire)", Fn: constraint},
		Items: items,
	}
	untimed, err := query.EvalEnvelope(untimedQ, query.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	var visits atomic.Int32
	timedQ := query.EnvelopeQuery{
		Inner: query.MetricQuery{Name: "µ(all-fire | fire)", Fn: func(e *core.Engine) (*big.Rat, error) {
			v, err := constraint(e)
			if visits.Add(1) == visitBudget {
				cancel(context.DeadlineExceeded)
			}
			return v, err
		}},
		Items: items,
	}
	frames, err := query.EnvelopeStream(timedQ, query.WithParallelism(1), query.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	var got []query.EnvelopeFrame
	var terminal query.EnvelopeFrame
	for f := range frames {
		if f.Terminal() {
			terminal = f
			break
		}
		got = append(got, f)
	}
	if terminal.Status != query.StreamDeadline {
		t.Fatalf("terminal status = %q, want deadline", terminal.Status)
	}
	if len(got) != len(items) {
		t.Fatalf("stream emitted %d result frames, want one per slot (%d) even under the deadline", len(got), len(items))
	}
	env := terminal.Envelope
	if env.Visited != visitBudget || env.Total != len(items) {
		t.Fatalf("partial envelope labeled %d/%d, want %d/%d", env.Visited, env.Total, visitBudget, len(items))
	}
	// The visited prefix diffs clean against the untimed run, and the
	// partial envelope is exactly the fold of those two assignments:
	// loss ∈ {0, 1/10} → [99/100, 1]; the unfinished remainder carries
	// per-slot deadline errors.
	for i, f := range got {
		if f.Index != i {
			t.Fatalf("serial sweep visited assignment %d at position %d", f.Index, i)
		}
		if i < visitBudget {
			if g, w := compactJSON(t, query.DocOf(f.Result)), compactJSON(t, query.DocOf(untimed.Slots[i])); g != w {
				t.Errorf("visited slot %d not byte-identical to untimed:\ntimed:   %s\nuntimed: %s", i, g, w)
			}
			continue
		}
		if f.Result.Err == nil || !strings.Contains(f.Result.Err.Error(), "context deadline exceeded") {
			t.Errorf("unfinished slot %d error = %v, want the deadline cause", i, f.Result.Err)
		}
	}
	if env.Min.RatString() != "99/100" || env.Max.RatString() != "1" {
		t.Errorf("partial envelope = [%s, %s], want [99/100, 1]",
			env.Min.RatString(), env.Max.RatString())
	}
	if env.ArgMin != "loss=1/10" || env.ArgMax != "loss=0" {
		t.Errorf("partial witnesses = (%q, %q)", env.ArgMin, env.ArgMax)
	}
	for f := range frames {
		t.Fatalf("frame after the terminal: %+v", f)
	}
}

// TestEnvelopeServiceDeadline: the wire-level partial contract. An
// already-expired server budget answers 504 with a well-formed
// EnvelopeResponse: zero visited assignments, every slot naming the
// deadline, status "deadline" — the labeled-partial shape, never a bare
// error that discards the response body.
func TestEnvelopeServiceDeadline(t *testing.T) {
	ts := newTestServer(t, WithRequestTimeout(time.Nanosecond))
	body := fmt.Sprintf(`{"space": %q, "query": %s}`, envSpace, envConstraintDoc(t))
	resp, data := postEnvelope(t, ts, "/v1/envelope", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var er EnvelopeResponse
	if err := json.Unmarshal([]byte(data), &er); err != nil {
		t.Fatal(err)
	}
	if er.Status != string(query.StreamDeadline) || !strings.Contains(er.Error, "deadline") {
		t.Errorf("timeout marker = (%q, %q)", er.Status, er.Error)
	}
	if er.Envelope.Visited != 0 || er.Envelope.Total != 6 {
		t.Errorf("envelope coverage = %d/%d, want 0/6", er.Envelope.Visited, er.Envelope.Total)
	}
	if len(er.Assignments) != 6 {
		t.Fatalf("assignments = %d", len(er.Assignments))
	}
	for i, ar := range er.Assignments {
		if !strings.Contains(ar.Result.Error, "context deadline exceeded") {
			t.Errorf("slot %d error %q does not name the deadline", i, ar.Result.Error)
		}
	}

	// The dead-on-arrival deadline means no source was ever invoked:
	// all 6 unfolds are builds the lazy contract avoided, and none may
	// occupy the cache.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	sbody := readAll(t, sresp)
	var out StatsResponse
	if err := json.Unmarshal([]byte(sbody), &out); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if out.EngineBuildsAvoided != 6 {
		t.Errorf("engineBuildsAvoided = %d, want 6 (every assignment's unfold skipped)", out.EngineBuildsAvoided)
	}
	if out.EngineCache.Len != 0 {
		t.Errorf("engine cache len = %d after an all-cut sweep, want 0", out.EngineCache.Len)
	}
}

// TestEnvelopeTimedPartialPrefix drives a real mid-sweep expiry over
// the wire: engines are warmed first (builds survive deadlines and stay
// cached), then a tight budget cuts the serial evaluation partway. The
// visited prefix must diff clean against an untimed run and the partial
// envelope must be labeled with the visited count.
func TestEnvelopeTimedPartialPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("timed prefix test in -short")
	}
	// 26 assignments of nsquad(4); the theorem-expectation inner query
	// needs the independence scan plus both sides of Theorem 6.2 per
	// assignment — milliseconds each, ~hundreds total, far beyond the
	// 60ms budget collectively while any single one finishes inside it.
	space := "sweep(nsquad, n=4, loss=0.0..0.5/0.02)"
	innerDoc, err := query.Marshal(query.TheoremQuery{
		Theorem: query.TheoremExpectation,
		Fact:    scenarios.AllFireFact(4),
		Agent:   scenarios.General, Action: scenarios.ActFire,
	})
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"space": %q, "query": %s, "parallelism": 1}`, space, innerDoc)

	untimedTS := newTestServer(t)
	untimedResp, untimedData := postEnvelope(t, untimedTS, "/v1/envelope", body)
	if untimedResp.StatusCode != http.StatusOK {
		t.Fatalf("untimed status %d: %s", untimedResp.StatusCode, untimedData)
	}
	var untimed EnvelopeResponse
	if err := json.Unmarshal([]byte(untimedData), &untimed); err != nil {
		t.Fatal(err)
	}

	timedTS := newTestServer(t, WithRequestTimeout(60*time.Millisecond))
	// Warm the engine cache: deadline-cut requests still complete the
	// builds they started, so a few rounds warm the whole space.
	for i := 0; i < 80; i++ {
		resp, _ := postEnvelope(t, timedTS, "/v1/envelope", body)
		resp.Body.Close()
		stats, err := http.Get(timedTS.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var sr StatsResponse
		if err := json.NewDecoder(stats.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		stats.Body.Close()
		if sr.EngineCache.Len >= 26 {
			break
		}
	}

	resp, data := postEnvelope(t, timedTS, "/v1/envelope", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Skipf("sweep finished inside the budget on this machine (status %d); the deterministic partial test covers the contract", resp.StatusCode)
	}
	var timed EnvelopeResponse
	if err := json.Unmarshal([]byte(data), &timed); err != nil {
		t.Fatal(err)
	}
	env := timed.Envelope
	if env.Visited >= env.Total {
		// The deadline fired only after every assignment evaluated
		// (structure sharing makes warm sweeps fast enough to outrun
		// the budget on a quick machine): same situation as the 200
		// above — no truncation to assert against.
		t.Skipf("sweep outran the budget (visited %d/%d before expiry); the deterministic partial test covers the contract", env.Visited, env.Total)
	}
	finished := 0
	for i, ar := range timed.Assignments {
		if ar.Result.Error != "" {
			if !strings.Contains(ar.Result.Error, "context deadline exceeded") {
				t.Errorf("slot %d: unfinished error %q does not name the deadline", i, ar.Result.Error)
			}
			continue
		}
		finished++
		if g, w := compactJSON(t, ar.Result), compactJSON(t, untimed.Assignments[i].Result); g != w {
			t.Errorf("finished slot %d not byte-identical to untimed:\ntimed:   %s\nuntimed: %s", i, g, w)
		}
	}
	if finished != env.Visited {
		t.Errorf("envelope labeled %d visited but %d slots finished", env.Visited, finished)
	}
	t.Logf("partial sweep: %d/%d visited", env.Visited, env.Total)
}

// TestEnvelopeAllSkipped exercises the degenerate one-point space and
// the all-skipped error shape: an inner query whose action is never
// performed skips its assignment by name, bounds nothing, and a fully
// skipped sweep reports the undefined-envelope error rather than a
// zero-value range.
func TestEnvelopeAllSkipped(t *testing.T) {
	rs, err := registry.Default().ResolveSpace("sweep(figure1)")
	if err != nil {
		t.Fatal(err)
	}
	insts := rs.Instances()
	if len(insts) != 1 || insts[0].Assignment.String() != "" {
		t.Fatalf("figure1 space = %+v", insts)
	}
	sys, err := registry.Default().Build(insts[0].Canonical)
	if err != nil {
		t.Fatal(err)
	}
	out, err := query.EvalEnvelope(query.EnvelopeQuery{
		Inner: query.ConstraintQuery{Fact: paper.Figure1PhiFact(), Agent: paper.AgentI, Action: "never-performed"},
		Items: []query.EnvelopeItem{{Assignment: "", Spec: insts[0].Canonical, Engine: core.New(sys)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	env := out.Result.Envelope
	if env.Defined() || env.Visited != 1 || len(env.Skipped) != 1 {
		t.Fatalf("all-skipped envelope = %+v", env)
	}
	if out.Result.Err == nil || !strings.Contains(out.Result.Err.Error(), "undefined under every assignment") {
		t.Fatalf("all-skipped err = %v", out.Result.Err)
	}
}

// TestEnvelopeSweepSeedsMemo pins the seed chain's accounting — and its
// recovery from an odd-shaped anchor. The sweep's first assignment is
// loss=0, whose zero-weight branches are pruned from the unfold: it has
// a different shape from every other assignment, so it can anchor
// nothing. The chain must demote it and re-anchor on the first loss>0
// engine, leaving the remaining cold builds seeded: 6 assignments,
// serial order ⇒ exactly 4 memoSeeded (loss=0 anchors nothing,
// loss=1/10 builds fresh and re-anchors, 2/10..5/10 share).
func TestEnvelopeSweepSeedsMemo(t *testing.T) {
	ts := newTestServer(t)
	body := fmt.Sprintf(`{"space": %q, "query": %s, "parallelism": 1}`, envSpace, envConstraintDoc(t))
	resp, data := postEnvelope(t, ts, "/v1/envelope", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	sbody := readAll(t, sresp)
	var out StatsResponse
	if err := json.Unmarshal([]byte(sbody), &out); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if out.MemoSeeded != 4 {
		t.Errorf("memoSeeded after the 6-assignment sweep = %d, want 4 (loss=0 anchors nothing, the chain must re-anchor)", out.MemoSeeded)
	}
	if out.EngineCache.Misses != 6 {
		t.Errorf("engine misses = %d, want 6 cold builds", out.EngineCache.Misses)
	}
}

// TestEnvelopeWireGolden pins the envelope endpoints' exact wire
// shapes — the happy buffered body, both stream endings, and every
// envelope-specific error path — one golden file per case, under the
// same -update flag as the rest of the wire goldens. Determinism:
// parallelism 1 streams in assignment order, the fold is
// order-independent, and every error message is a pure function of the
// request and the server's fixed caps.
func TestEnvelopeWireGolden(t *testing.T) {
	srv := New(nil, WithMaxAssignments(4), WithMaxBodyBytes(2048))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	timeoutTS := httptest.NewServer(New(nil, WithRequestTimeout(time.Nanosecond)).Handler())
	t.Cleanup(timeoutTS.Close)

	goldenSpace := "sweep(nsquad,n=2,loss=0..1/5/1/10)" // 3 assignments
	goldenBody := fmt.Sprintf(`{"space": %q, "query": %s, "parallelism": 1}`, goldenSpace, envConstraintDoc(t))

	cases := []struct {
		name   string
		server *httptest.Server
		method string
		path   string
		body   string
		status int
	}{
		{"envelope-complete", ts, http.MethodPost, "/v1/envelope", goldenBody, http.StatusOK},
		{"envelope-stream-complete", ts, http.MethodPost, "/v1/envelope/stream", goldenBody, http.StatusOK},
		{"envelope-stream-deadline", timeoutTS, http.MethodPost, "/v1/envelope/stream", goldenBody, http.StatusOK},
		{"envelope-timeout-504", timeoutTS, http.MethodPost, "/v1/envelope", goldenBody, http.StatusGatewayTimeout},
		{"envelope-method-not-allowed", ts, http.MethodGet, "/v1/envelope", "", http.StatusMethodNotAllowed},
		{"envelope-stream-method-not-allowed", ts, http.MethodGet, "/v1/envelope/stream", "", http.StatusMethodNotAllowed},
		{"envelope-empty-request", ts, http.MethodPost, "/v1/envelope", `{}`, http.StatusBadRequest},
		{"envelope-no-query", ts, http.MethodPost, "/v1/envelope",
			fmt.Sprintf(`{"space": %q}`, goldenSpace), http.StatusBadRequest},
		{"envelope-bad-query", ts, http.MethodPost, "/v1/envelope",
			fmt.Sprintf(`{"space": %q, "query": {"kind": "nope"}}`, goldenSpace), http.StatusBadRequest},
		{"envelope-not-a-sweep", ts, http.MethodPost, "/v1/envelope",
			fmt.Sprintf(`{"space": "nsquad(2)", "query": %s}`, envConstraintDoc(t)), http.StatusBadRequest},
		{"envelope-unknown-scenario", ts, http.MethodPost, "/v1/envelope",
			fmt.Sprintf(`{"space": "sweep(nosuch,loss=0..1)", "query": %s}`, envConstraintDoc(t)), http.StatusNotFound},
		{"envelope-bad-range", ts, http.MethodPost, "/v1/envelope",
			fmt.Sprintf(`{"space": "sweep(nsquad,loss=1..0)", "query": %s}`, envConstraintDoc(t)), http.StatusBadRequest},
		{"envelope-over-assignment-cap", ts, http.MethodPost, "/v1/envelope",
			fmt.Sprintf(`{"space": %q, "query": %s}`, "sweep(nsquad,n=2,loss=0..1/2/1/10)", envConstraintDoc(t)), http.StatusBadRequest},
		{"envelope-unknown-field", ts, http.MethodPost, "/v1/envelope", `{"bogus": 1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var (
				resp *http.Response
				err  error
			)
			switch tc.method {
			case http.MethodGet:
				resp, err = http.Get(tc.server.URL + tc.path)
			default:
				resp, err = http.Post(tc.server.URL+tc.path, "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			body := readAll(t, resp)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			goldenCompare(t, tc.name, body)
		})
	}
}
