package runset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		s := New(n)
		if !s.IsEmpty() || s.Count() != 0 || s.Len() != n {
			t.Errorf("New(%d) not empty: count=%d len=%d", n, s.Count(), s.Len())
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Errorf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("after Add(%d), Contains is false", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Remove(64) did not remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after remove = %d, want 7", got)
	}
	// Add is idempotent.
	s.Add(0)
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after re-Add = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func(s *Set)
	}{
		{"Add high", func(s *Set) { s.Add(10) }},
		{"Add negative", func(s *Set) { s.Add(-1) }},
		{"Contains high", func(s *Set) { s.Contains(10) }},
		{"Remove high", func(s *Set) { s.Remove(10) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tt.name)
				}
			}()
			tt.fn(New(10))
		})
	}
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 64, 65, 100} {
		f := Full(n)
		if got := f.Count(); got != n {
			t.Errorf("Full(%d).Count = %d", n, got)
		}
	}
	// Complement of full is empty, even with a ragged last word.
	if !Full(67).Complement().IsEmpty() {
		t.Error("Full(67).Complement() not empty")
	}
}

func TestOf(t *testing.T) {
	s := Of(10, 1, 3, 3, 7)
	if got := s.Members(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 7 {
		t.Fatalf("Of members = %v, want [1 3 7]", got)
	}
}

func TestAlgebra(t *testing.T) {
	a := Of(10, 0, 1, 2, 3)
	b := Of(10, 2, 3, 4, 5)
	tests := []struct {
		name string
		got  *Set
		want *Set
	}{
		{"union", a.Union(b), Of(10, 0, 1, 2, 3, 4, 5)},
		{"intersect", a.Intersect(b), Of(10, 2, 3)},
		{"difference", a.Difference(b), Of(10, 0, 1)},
		{"complement", a.Complement(), Of(10, 4, 5, 6, 7, 8, 9)},
	}
	for _, tt := range tests {
		if !tt.got.Equal(tt.want) {
			t.Errorf("%s = %v, want %v", tt.name, tt.got, tt.want)
		}
	}
	// Operations must not mutate operands.
	if !a.Equal(Of(10, 0, 1, 2, 3)) || !b.Equal(Of(10, 2, 3, 4, 5)) {
		t.Fatal("algebra mutated an operand")
	}
}

func TestSubsetIntersects(t *testing.T) {
	a := Of(10, 1, 2)
	b := Of(10, 1, 2, 3)
	c := Of(10, 5)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if !a.SubsetOf(a) {
		t.Error("SubsetOf not reflexive")
	}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects wrong")
	}
	if !New(10).SubsetOf(c) {
		t.Error("empty set should be subset of everything")
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union across universes did not panic")
		}
	}()
	New(5).Union(New(6))
}

func TestForEachEarlyStop(t *testing.T) {
	s := Of(100, 10, 20, 30)
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 10 || seen[1] != 20 {
		t.Fatalf("early stop saw %v", seen)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Of(10, 1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Fatal("Clone shares storage")
	}
}

func TestString(t *testing.T) {
	if got := Of(5, 0, 3).String(); got != "{0, 3}/5" {
		t.Fatalf("String = %q", got)
	}
	if got := New(5).String(); got != "{}/5" {
		t.Fatalf("empty String = %q", got)
	}
}

// randomSet builds a set and a reference map from a seed.
func randomSet(n int, seed int64) (*Set, map[int]bool) {
	rng := rand.New(rand.NewSource(seed))
	s := New(n)
	ref := make(map[int]bool)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Add(i)
			ref[i] = true
		}
	}
	return s, ref
}

// Property: De Morgan — complement(a ∪ b) == complement(a) ∩ complement(b).
func TestQuickDeMorgan(t *testing.T) {
	f := func(seedA, seedB int64, nRaw uint8) bool {
		n := int(nRaw)%150 + 1
		a, _ := randomSet(n, seedA)
		b, _ := randomSet(n, seedB)
		left := a.Union(b).Complement()
		right := a.Complement().Intersect(b.Complement())
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: |a| + |b| == |a ∪ b| + |a ∩ b| (inclusion-exclusion).
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(seedA, seedB int64, nRaw uint8) bool {
		n := int(nRaw)%150 + 1
		a, _ := randomSet(n, seedA)
		b, _ := randomSet(n, seedB)
		return a.Count()+b.Count() == a.Union(b).Count()+a.Intersect(b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: membership agrees with a reference map implementation.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%150 + 1
		s, ref := randomSet(n, seed)
		if s.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Contains(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
