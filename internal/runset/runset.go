// Package runset implements sets of runs as fixed-universe bitsets.
//
// In the paper's probability space X_T = (R_T, 2^{R_T}, µ_T) every event is
// a subset of the finite run set R_T. The belief engine manipulates many
// such events (R_α, the runs satisfying φ@ℓ, partitions by local state,
// threshold events), so a compact set representation with the usual boolean
// algebra is the natural substrate.
//
// A Set is created for a fixed universe size n (the number of runs of the
// system) and all binary operations require equal universes.
package runset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a subset of {0, ..., n-1} for a fixed universe size n. The zero
// value is an empty set over an empty universe; use New for a real universe.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe {0, ..., n-1}. n must be
// non-negative; New panics otherwise (a programming error, not input).
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("runset.New: negative universe size %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Full returns the set containing every element of the universe.
func Full(n int) *Set {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// Of returns a set over universe n containing exactly the given members.
func Of(n int, members ...int) *Set {
	s := New(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// trim clears any bits beyond the universe in the last word.
func (s *Set) trim() {
	if len(s.words) == 0 {
		return
	}
	if rem := s.n % wordBits; rem != 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(rem)) - 1
	}
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("runset: index %d out of universe [0,%d)", i, s.n))
	}
}

func (s *Set) sameUniverse(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("runset: universe mismatch %d vs %d", s.n, t.n))
	}
}

// Len returns the universe size n.
func (s *Set) Len() int { return s.n }

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= uint64(1) << uint(i%wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= uint64(1) << uint(i%wordBits)
}

// Contains reports whether i is a member.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(uint64(1)<<uint(i%wordBits)) != 0
}

// Count returns the number of members.
func (s *Set) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// IsEmpty reports whether the set has no members.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Union returns s ∪ t as a new set.
func (s *Set) Union(t *Set) *Set {
	s.sameUniverse(t)
	out := s.Clone()
	for i, w := range t.words {
		out.words[i] |= w
	}
	return out
}

// Intersect returns s ∩ t as a new set.
func (s *Set) Intersect(t *Set) *Set {
	s.sameUniverse(t)
	out := s.Clone()
	for i, w := range t.words {
		out.words[i] &= w
	}
	return out
}

// Difference returns s \ t as a new set.
func (s *Set) Difference(t *Set) *Set {
	s.sameUniverse(t)
	out := s.Clone()
	for i, w := range t.words {
		out.words[i] &^= w
	}
	return out
}

// Complement returns the universe minus s as a new set.
func (s *Set) Complement() *Set {
	out := s.Clone()
	for i := range out.words {
		out.words[i] = ^out.words[i]
	}
	out.trim()
	return out
}

// Equal reports whether s and t have the same universe and the same members.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is a member of t.
func (s *Set) SubsetOf(t *Set) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every member of t to s in place (s ∪= t) and returns s.
// It is the allocation-free counterpart of Union for accumulation loops.
func (s *Set) UnionWith(t *Set) *Set {
	s.sameUniverse(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
	return s
}

// Intersects reports whether s ∩ t is nonempty, without allocating.
func (s *Set) Intersects(t *Set) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Words exposes the set's backing bit words for word-at-a-time
// consumers (the pps measure kernel walks events one word per 64 runs
// instead of one callback per member). Word i covers members
// [64i, 64i+63]; bits beyond the universe are always zero (trim
// maintains that invariant). The returned slice IS the backing storage:
// callers must treat it as read-only.
func (s *Set) Words() []uint64 { return s.words }

// NumWords returns the number of backing words, ⌈n/64⌉.
func (s *Set) NumWords() int { return len(s.words) }

// ForEach calls fn for every member in increasing order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the members in increasing order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as "{0, 3, 7}/n" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	fmt.Fprintf(&b, "}/%d", s.n)
	return b.String()
}
