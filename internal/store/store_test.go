package store_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pak/internal/logic"
	"pak/internal/query"
	"pak/internal/store"
)

// canonicalQuery returns a real canonical query document — the exact
// key component the service uses.
func canonicalQuery(t testing.TB) []byte {
	t.Helper()
	doc, err := query.MarshalCanonical(query.ConstraintQuery{
		Fact: logic.True(), Agent: "Alice", Action: "fire",
	})
	if err != nil {
		t.Fatalf("MarshalCanonical: %v", err)
	}
	return doc
}

// sampleValue is a compact ResultDoc payload with an exact rational.
func sampleValue(t testing.TB) []byte {
	t.Helper()
	data, err := json.Marshal(query.ResultDoc{
		Kind: query.KindConstraint, Query: "constraint", Value: "2/3",
		Verdict: "holds", WitnessRuns: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestKeyDerivation(t *testing.T) {
	q := canonicalQuery(t)
	k1 := store.NewKey("nsquad(n=2)", q)
	k2 := store.NewKey("nsquad(n=2)", q)
	if k1 != k2 {
		t.Fatalf("key not deterministic: %s vs %s", k1, k2)
	}
	if k3 := store.NewKey("nsquad(n=3)", q); k3 == k1 {
		t.Fatal("distinct systems share a key")
	}
	if k4 := store.NewKey("nsquad(n=2)", append(append([]byte(nil), q...), ' ')); k4 == k1 {
		t.Fatal("distinct query bytes share a key")
	}
	// The NUL separator forbids boundary shifts: ("ab","c") != ("a","bc").
	if store.NewKey("ab", []byte("c")) == store.NewKey("a", []byte("bc")) {
		t.Fatal("component boundary is ambiguous")
	}
	if len(k1) != 64 {
		t.Fatalf("key length %d, want 64 hex digits", len(k1))
	}
}

// backends runs one subtest per Store implementation so both keep the
// same observable discipline.
func backends(t *testing.T, run func(t *testing.T, st store.Store)) {
	t.Run("memory", func(t *testing.T) { run(t, store.NewMemory()) })
	t.Run("disk", func(t *testing.T) {
		d, err := store.OpenDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		run(t, d)
	})
}

func TestRoundTrip(t *testing.T) {
	backends(t, func(t *testing.T, st store.Store) {
		q := canonicalQuery(t)
		val := sampleValue(t)
		k := store.NewKey("nsquad(n=2)", q)

		if _, err := st.Get(k); !errors.Is(err, store.ErrNotFound) {
			t.Fatalf("cold Get = %v, want ErrNotFound", err)
		}
		if err := st.Put(store.Entry{System: "nsquad(n=2)", Query: q, Value: val}); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, err := st.Get(k)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("Get = %s, want %s", got, val)
		}
		if n, err := st.Len(); err != nil || n != 1 {
			t.Fatalf("Len = %d, %v, want 1", n, err)
		}
		// Overwriting the same coordinates is idempotent.
		if err := st.Put(store.Entry{System: "nsquad(n=2)", Query: q, Value: val}); err != nil {
			t.Fatalf("re-Put: %v", err)
		}
		if n, _ := st.Len(); n != 1 {
			t.Fatalf("Len after re-Put = %d, want 1", n)
		}
	})
}

func TestBadKeyRejected(t *testing.T) {
	backends(t, func(t *testing.T, st store.Store) {
		// A path-traversal-shaped key must be refused outright, not
		// resolved relative to the store directory.
		if _, err := st.Get(store.Key("../../etc/passwd")); !errors.Is(err, store.ErrBadKey) {
			t.Fatalf("Get(traversal) = %v, want ErrBadKey", err)
		}
		if _, err := st.Get(store.Key("UPPER")); !errors.Is(err, store.ErrBadKey) {
			t.Fatalf("Get(short) = %v, want ErrBadKey", err)
		}
	})
}

func TestMemoryCorruptDetected(t *testing.T) {
	m := store.NewMemory()
	q := canonicalQuery(t)
	k := store.NewKey("sys", q)
	if err := m.Put(store.Entry{System: "sys", Query: q, Value: sampleValue(t)}); err != nil {
		t.Fatal(err)
	}
	if !m.Corrupt(k) {
		t.Fatal("Corrupt reported no entry")
	}
	if _, err := m.Get(k); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("Get(corrupted) = %v, want ErrCorrupt", err)
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := canonicalQuery(t)
	val := sampleValue(t)
	if err := d.Put(store.Entry{System: "nsquad(n=2)", Query: q, Value: val}); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh handle over the same directory serves the
	// stored bytes identically.
	d2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get(store.NewKey("nsquad(n=2)", q))
	if err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("reopened Get = %s, want %s", got, val)
	}

	e, err := d2.Read(store.NewKey("nsquad(n=2)", q))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if e.System != "nsquad(n=2)" {
		t.Fatalf("Read system = %q", e.System)
	}
}

func TestDiskIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-Put leaves a temp file; user droppings happen too.
	// Neither counts as an entry.
	for _, name := range []string{".put-123", "README", "notakey.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := d.Len(); err != nil || n != 0 {
		t.Fatalf("Len = %d, %v, want 0", n, err)
	}
}

func TestDiskNonCanonicalPutRejected(t *testing.T) {
	d, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Indented query bytes would be compacted inside the envelope and
	// re-derive a different address on read — Put must refuse rather
	// than file a permanently corrupt entry.
	indented := []byte("{\n  \"kind\": \"constraint\"\n}")
	err = d.Put(store.Entry{System: "sys", Query: indented, Value: sampleValue(t)})
	if err == nil {
		t.Fatal("Put accepted non-canonical query bytes")
	}
	if n, _ := d.Len(); n != 0 {
		t.Fatalf("rejected Put left %d entries", n)
	}
}

func TestDiskVerifyAndGC(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := canonicalQuery(t)
	systems := []string{"a(n=1)", "b(n=2)", "c(n=3)"}
	for i, sys := range systems {
		if err := d.Put(store.Entry{System: sys, Query: q, Value: sampleValue(t)}); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so GC's newest-first order is deterministic.
		mod := time.Now().Add(time.Duration(i-len(systems)) * time.Hour)
		if err := os.Chtimes(d.Path(store.NewKey(sys, q)), mod, mod); err != nil {
			t.Fatal(err)
		}
	}

	if bad, err := d.Verify(); err != nil || len(bad) != 0 {
		t.Fatalf("Verify clean store = %v, %v", bad, err)
	}

	// Corrupt one entry on disk: verify names it, Get refuses it.
	victim := store.NewKey("a(n=1)", q)
	data, err := os.ReadFile(d.Path(victim))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(d.Path(victim), data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Rewriting bumped the mtime; restore it so the victim stays the
	// oldest entry for the GC leg below.
	oldest := time.Now().Add(time.Duration(-len(systems)) * time.Hour)
	if err := os.Chtimes(d.Path(victim), oldest, oldest); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != victim {
		t.Fatalf("Verify = %v, want [%s]", bad, victim)
	}
	if _, err := d.Get(victim); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("Get(corrupt) = %v, want ErrCorrupt", err)
	}

	// GC keeps the 2 newest entries ("c" is newest, "a" oldest).
	removed, err := d.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("GC removed %d, want 1", removed)
	}
	if _, err := d.Get(store.NewKey("c(n=3)", q)); err != nil {
		t.Fatalf("newest entry gone after GC: %v", err)
	}
	if _, err := d.Get(victim); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("oldest entry survived GC: %v", err)
	}
	if n, _ := d.Len(); n != 2 {
		t.Fatalf("Len after GC = %d, want 2", n)
	}
}
