// Package store is the persistent result tier: a content-addressed
// map from (canonical system spec × canonical query document) to the
// exact ResultDoc bytes the service would answer, so a pakd restart
// serves stored answers byte-identically instead of recomputing them
// — ROADMAP open item 2's "restart without recomputation".
//
// The key is a SHA-256 over a versioned preimage of the two canonical
// specs. Both components are already canonical by construction: the
// system side is the engine-cache key (registry Args.Canonical —
// declared parameter order, defaults filled), and the query side is
// query.Marshal's deterministic rendering. Two requests that would
// share an engine and a query therefore share a key, and nothing else
// collides short of SHA-256 itself.
//
// Values are opaque bytes to this package; the service stores compact
// ResultDoc JSON with every rational as an exact RatString — floats
// never touch the envelope, so a stored answer re-parses with zero
// drift and re-serializes byte-identically (the round-trip fuzz test
// pins this).
//
// Integrity is verify-don't-trust: every Get re-hashes what it read
// and refuses to serve on any mismatch, returning an error wrapping
// ErrCorrupt — a flipped bit on disk surfaces as a loud sentinel (and
// a counter), never as a silently wrong answer. The Memory backend
// keeps the same discipline so the service logic is backend-blind.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sync"
)

// keyVersion versions the key derivation itself: bump it and every
// address changes, so a semantic change to the canonical forms can
// never alias an old entry.
const keyVersion = "pakstore/v1"

// Key is the content address of one stored result: SHA-256 over the
// versioned (system, query) preimage, rendered as lowercase hex.
type Key string

// NewKey derives the content address for a canonical system spec and
// a canonical query document. The two components are length-prefixed
// by a NUL separator (neither canonical form may contain NUL), so
// ("ab","c") and ("a","bc") cannot collide.
func NewKey(systemSpec string, queryDoc []byte) Key {
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write([]byte{0})
	h.Write([]byte(systemSpec))
	h.Write([]byte{0})
	h.Write(queryDoc)
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// valid reports whether k has the shape NewKey produces (64 lowercase
// hex digits); the disk backend refuses anything else as a path
// component.
func (k Key) valid() bool {
	if len(k) != sha256.Size*2 {
		return false
	}
	for _, c := range k {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ErrNotFound reports a key with no stored entry — the ordinary miss,
// answered by evaluating and (usually) writing back.
var ErrNotFound = errors.New("store: not found")

// ErrCorrupt is the loud integrity sentinel: the entry exists but its
// bytes do not hash to what was recorded (or its envelope does not
// parse, or it sits at the wrong address). A corrupt entry is NEVER
// served; callers count it and fall through to recomputation.
var ErrCorrupt = errors.New("store: corrupt entry")

// ErrBadKey reports a key that is not a NewKey-shaped address.
var ErrBadKey = errors.New("store: malformed key")

// Entry is one stored result as the backends see it: the canonical
// coordinates it was filed under plus the value bytes. Backends
// persist the coordinates beside the value so an entry is
// self-describing (pakstore -list renders them) and so integrity
// checks can confirm the entry sits at the address its coordinates
// derive.
type Entry struct {
	// System is the canonical system spec (the engine-cache key).
	System string
	// Query is the canonical query document.
	Query []byte
	// Value is the stored payload (compact ResultDoc JSON).
	Value []byte
}

// Store is a content-addressed result store. Implementations must be
// safe for concurrent use.
type Store interface {
	// Get returns the entry's value bytes, ErrNotFound on a miss, or an
	// error wrapping ErrCorrupt when the entry exists but fails its
	// integrity check.
	Get(k Key) ([]byte, error)
	// Put files an entry under NewKey(e.System, e.Query). Re-putting an
	// existing key overwrites (the content address makes the value a
	// pure function of the coordinates, so overwrites are idempotent in
	// the absence of bugs).
	Put(e Entry) error
	// Len counts stored entries (corrupt ones included — they occupy
	// their address until gc or overwrite).
	Len() (int, error)
}

// Memory is the in-process backend: a mutex-guarded map with the same
// hash-on-read discipline as the disk backend, so tests and embedders
// exercise identical service logic.
type Memory struct {
	mu      sync.Mutex
	entries map[Key]memEntry
}

type memEntry struct {
	value []byte
	sum   [sha256.Size]byte
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{entries: make(map[Key]memEntry)}
}

// Get implements Store. The stored bytes are re-hashed on every read:
// even in-process, a torn or overwritten buffer surfaces as ErrCorrupt
// rather than as a wrong answer.
func (m *Memory) Get(k Key) ([]byte, error) {
	if !k.valid() {
		return nil, errBadKey(k)
	}
	m.mu.Lock()
	e, ok := m.entries[k]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	if sha256.Sum256(e.value) != e.sum {
		return nil, errCorrupt(k, "value bytes do not match their recorded hash")
	}
	return append([]byte(nil), e.value...), nil
}

// Put implements Store.
func (m *Memory) Put(e Entry) error {
	k := NewKey(e.System, e.Query)
	val := append([]byte(nil), e.Value...)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[k] = memEntry{value: val, sum: sha256.Sum256(val)}
	return nil
}

// Len implements Store.
func (m *Memory) Len() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries), nil
}

// Corrupt flips one bit of the stored value in place (test hook: the
// service's corrupt-counter path needs a corrupt entry on demand, and
// only the Memory backend can fake one without a filesystem).
func (m *Memory) Corrupt(k Key) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[k]
	if !ok || len(e.value) == 0 {
		return false
	}
	e.value = append([]byte(nil), e.value...)
	e.value[0] ^= 0x01
	m.entries[k] = e
	return true
}

func errCorrupt(k Key, why string) error {
	return &keyError{key: k, why: why, sentinel: ErrCorrupt}
}

func errBadKey(k Key) error {
	return &keyError{key: k, why: "not a content address", sentinel: ErrBadKey}
}

// keyError attaches the offending key to a sentinel.
type keyError struct {
	key      Key
	why      string
	sentinel error
}

func (e *keyError) Error() string {
	return e.sentinel.Error() + " " + string(e.key) + ": " + e.why
}

func (e *keyError) Unwrap() error { return e.sentinel }
