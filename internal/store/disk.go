// The crash-safe disk backend. One entry is one file,
// <dir>/<key>.json, holding a versioned JSON envelope:
//
//	{"version":1,"system":"nsquad(n=2,...)","query":{...},
//	 "sha256":"<hex of value bytes>","value":{...ResultDoc...}}
//
// Exact rationals travel inside the value as RatStrings — the
// envelope never holds a float. Writes are temp-then-rename: the
// value lands under a hidden temp name, is fsynced, and only then
// renamed onto its content address, so a crash mid-write leaves
// either the old entry or no entry — never a torn one. Reads verify
// everything re-derivable: the envelope parses, its version is known,
// the coordinates re-derive the file's own address, and the value
// re-hashes to the recorded sum. Any failure is ErrCorrupt — served
// answers are exactly the bytes Put stored, or nothing.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// envelopeVersion is the on-disk format version; readers reject
// anything else as corrupt rather than guessing.
const envelopeVersion = 1

// entrySuffix names entry files; everything else in the directory is
// ignored (temp files, user droppings).
const entrySuffix = ".json"

// envelope is the on-disk JSON form of an Entry.
type envelope struct {
	Version int             `json:"version"`
	System  string          `json:"system"`
	Query   json.RawMessage `json:"query"`
	Sum     string          `json:"sha256"`
	Value   json.RawMessage `json:"value"`
}

// Disk is the crash-safe file backend.
type Disk struct {
	dir string
}

// OpenDisk opens (creating if needed) a disk store rooted at dir.
func OpenDisk(dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// Path returns the entry file a key addresses (whether or not it
// exists yet).
func (d *Disk) Path(k Key) string {
	return filepath.Join(d.dir, string(k)+entrySuffix)
}

// Get implements Store.
func (d *Disk) Get(k Key) ([]byte, error) {
	if !k.valid() {
		return nil, errBadKey(k)
	}
	data, err := os.ReadFile(d.Path(k))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("store: read %s: %w", k, err)
	}
	e, err := decodeEnvelope(k, data)
	if err != nil {
		return nil, err
	}
	return e.Value, nil
}

// decodeEnvelope parses and integrity-checks one entry file's bytes
// against the address it was read from. Every failure mode — parse,
// version, address, hash — wraps ErrCorrupt: a flipped byte anywhere
// in the file necessarily breaks one of these checks, because the
// envelope is pure JSON with no ignored regions.
func decodeEnvelope(k Key, data []byte) (envelope, error) {
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return envelope{}, errCorrupt(k, "envelope does not parse: "+err.Error())
	}
	if e.Version != envelopeVersion {
		return envelope{}, errCorrupt(k, fmt.Sprintf("envelope version %d, want %d", e.Version, envelopeVersion))
	}
	if derived := NewKey(e.System, e.Query); derived != k {
		return envelope{}, errCorrupt(k, "coordinates derive address "+string(derived))
	}
	sum := sha256.Sum256(e.Value)
	if hex.EncodeToString(sum[:]) != e.Sum {
		return envelope{}, errCorrupt(k, "value bytes do not match their recorded hash")
	}
	return e, nil
}

// Put implements Store: write-temp-then-rename with an fsync in
// between, so the content address never names a torn file.
func (d *Disk) Put(e Entry) error {
	k := NewKey(e.System, e.Query)
	sum := sha256.Sum256(e.Value)
	env := envelope{
		Version: envelopeVersion,
		System:  e.System,
		Query:   json.RawMessage(e.Query),
		Sum:     hex.EncodeToString(sum[:]),
		Value:   json.RawMessage(e.Value),
	}
	data, err := json.Marshal(env)
	if err != nil {
		// RawMessage fields must be valid JSON; a caller handing us
		// non-JSON value bytes surfaces here rather than as a corrupt
		// file later.
		return fmt.Errorf("store: encode %s: %w", k, err)
	}
	// The encoder compacts (and HTML-escapes) embedded RawMessages, so
	// a caller whose query bytes are not already in that canonical form
	// would file an entry whose read-back coordinates derive a DIFFERENT
	// address — permanently corrupt by construction. Catch it at write
	// time instead: the marshaled envelope must decode back to the
	// address we are about to write.
	if _, err := decodeEnvelope(k, data); err != nil {
		return fmt.Errorf("store: coordinates are not canonical JSON (use query.MarshalCanonical): %w", err)
	}

	tmp, err := os.CreateTemp(d.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", k, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync %s: %w", k, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", k, err)
	}
	if err := os.Rename(tmp.Name(), d.Path(k)); err != nil {
		return fmt.Errorf("store: rename %s: %w", k, err)
	}
	return nil
}

// Len implements Store.
func (d *Disk) Len() (int, error) {
	ks, err := d.Keys()
	return len(ks), err
}

// Keys lists every stored address in lexicographic order (a stable
// order for pakstore -list and the verify sweep).
func (d *Disk) Keys() ([]Key, error) {
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Key
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		k := Key(strings.TrimSuffix(name, entrySuffix))
		if !k.valid() {
			continue
		}
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Read returns one entry with its coordinates, integrity-checked —
// the pakstore -list/-verify primitive.
func (d *Disk) Read(k Key) (Entry, error) {
	if !k.valid() {
		return Entry{}, errBadKey(k)
	}
	data, err := os.ReadFile(d.Path(k))
	if os.IsNotExist(err) {
		return Entry{}, ErrNotFound
	}
	if err != nil {
		return Entry{}, fmt.Errorf("store: read %s: %w", k, err)
	}
	e, err := decodeEnvelope(k, data)
	if err != nil {
		return Entry{}, err
	}
	return Entry{System: e.System, Query: e.Query, Value: e.Value}, nil
}

// Verify integrity-checks every entry, returning the keys that failed
// (empty = a clean store). The error reports only sweep-level
// failures (an unreadable directory), not per-entry corruption.
func (d *Disk) Verify() ([]Key, error) {
	ks, err := d.Keys()
	if err != nil {
		return nil, err
	}
	var bad []Key
	for _, k := range ks {
		if _, err := d.Read(k); err != nil {
			bad = append(bad, k)
		}
	}
	return bad, nil
}

// GC deletes entries beyond the keep most recently modified ones
// (keep ≤ 0 empties the store) and returns how many were removed.
// Corrupt entries count like any other — gc is a size policy, verify
// is the integrity sweep.
func (d *Disk) GC(keep int) (int, error) {
	ks, err := d.Keys()
	if err != nil {
		return 0, err
	}
	type aged struct {
		k   Key
		mod int64
	}
	entries := make([]aged, 0, len(ks))
	for _, k := range ks {
		fi, err := os.Stat(d.Path(k))
		if err != nil {
			continue // raced with a concurrent gc; nothing to remove
		}
		entries = append(entries, aged{k: k, mod: fi.ModTime().UnixNano()})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mod != entries[j].mod {
			return entries[i].mod > entries[j].mod // newest first
		}
		return entries[i].k < entries[j].k
	})
	removed := 0
	for i := keep; i < len(entries); i++ {
		if i < 0 {
			continue
		}
		if err := os.Remove(d.Path(entries[i].k)); err == nil {
			removed++
		}
	}
	return removed, nil
}
