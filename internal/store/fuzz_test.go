package store_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"os"
	"strings"
	"testing"

	"pak/internal/query"
	"pak/internal/store"
)

// fuzzDoc builds a deterministic ResultDoc from fuzzed primitives:
// exact rationals derived from the integers, envelopes/estimates/
// error slots toggled by the flags, and raw fuzzed strings in the
// free-text fields so JSON escaping is exercised.
func fuzzDoc(a, b int64, detail, errMsg string, hasEnv, hasEst, hasTL bool, n int) query.ResultDoc {
	if b == 0 {
		b = 1
	}
	rat := big.NewRat(a, b).RatString()
	doc := query.ResultDoc{
		Kind:        query.KindConstraint,
		Query:       fmt.Sprintf("constraint[%d]", n),
		Value:       rat,
		Verdict:     query.Verdict("holds"),
		WitnessRuns: n,
		Detail:      detail,
		Error:       errMsg,
		Values:      map[string]string{"p": rat, "q": big.NewRat(b, abs64(a)+1).RatString()},
		Flags:       map[string]bool{"strict": n%2 == 0, "ciCovered": hasEst},
	}
	if hasEnv {
		doc.Envelope = &query.RangeDoc{
			Min: rat, Max: "1", ArgMin: detail, ArgMax: "loss=1/2",
			Visited: n % 7, Total: 7, Skipped: []string{"loss=0"},
		}
	}
	if hasEst {
		doc.Estimate = &query.EstimateDoc{
			P: rat, Radius: "1/128", Lo: "0", Hi: "1",
			N: n % 100, Samples: n%100 + 1, Seed: a ^ b,
			Eps: "1/10", Delta: "1/100",
		}
	}
	if hasTL {
		doc.Timeline = []query.TimelinePointDoc{
			{Time: 0, Local: detail, Belief: rat, Knows: false},
			{Time: 1, Local: "fired", Belief: "1", Knows: true},
		}
	}
	return doc
}

func abs64(a int64) int64 {
	if a < 0 && a != -1<<63 {
		return -a
	}
	if a == -1<<63 {
		return 1<<63 - 1
	}
	return a
}

// FuzzStoreRoundTrip is satellite coverage for the persistence tier:
// for random ResultDocs (exact rationals, envelopes, estimates, error
// slots) the store must return byte-identical value bytes, the doc
// must survive decode(encode(x)) byte-identically (the property the
// service's hit path leans on when it re-embeds a stored doc in a
// response), and a single flipped byte anywhere in the on-disk entry
// must surface as ErrCorrupt — never as a served answer.
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add(int64(2), int64(3), "all fire", "", true, false, false, 3, uint16(0))
	f.Add(int64(-7), int64(11), "loss=1/10", "core: unknown agent", false, true, true, 0, uint16(97))
	f.Add(int64(0), int64(1), `esc"ape<&>`, "", true, true, false, -1, uint16(255))

	canonical := canonicalQuery(f)

	f.Fuzz(func(t *testing.T, a, b int64, detail, errMsg string, hasEnv, hasEst, hasTL bool, n int, flip uint16) {
		// Every real ResultDoc string originates from parsed JSON or an
		// internal rendering, so it is valid UTF-8 by construction;
		// json.Marshal is not byte-stable on invalid UTF-8 (it escapes
		// to �, which decodes to a literal replacement char), so
		// hold the fuzz corpus to the same invariant the code has.
		detail = strings.ToValidUTF8(detail, "�")
		errMsg = strings.ToValidUTF8(errMsg, "�")
		doc := fuzzDoc(a, b, detail, errMsg, hasEnv, hasEst, hasTL, n)
		enc, err := json.Marshal(doc)
		if err != nil {
			t.Fatalf("marshal doc: %v", err)
		}

		// decode(encode(x)) is byte-identical: the service's hit path
		// re-marshals a decoded stored doc into the response, so any
		// lossy field would silently break wire byte-identity.
		var back query.ResultDoc
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("unmarshal doc: %v", err)
		}
		enc2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal doc: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("decode(encode(x)) drifted:\n in: %s\nout: %s", enc, enc2)
		}

		dir := t.TempDir()
		d, err := store.OpenDisk(dir)
		if err != nil {
			t.Fatal(err)
		}
		sys := "nsquad(n=2,improved=false)"
		if err := d.Put(store.Entry{System: sys, Query: canonical, Value: enc}); err != nil {
			t.Fatalf("Put: %v", err)
		}
		k := store.NewKey(sys, canonical)
		got, err := d.Get(k)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !bytes.Equal(got, enc) {
			t.Fatalf("stored value drifted:\n in: %s\nout: %s", enc, got)
		}

		// Flip exactly one bit of the entry file: the integrity check
		// must refuse to serve it, whatever byte the flip landed on.
		data, err := os.ReadFile(d.Path(k))
		if err != nil {
			t.Fatal(err)
		}
		data[int(flip)%len(data)] ^= 0x01
		if err := os.WriteFile(d.Path(k), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if served, err := d.Get(k); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("flipped byte %d of %d served anyway: err=%v value=%s",
				int(flip)%len(data), len(data), err, served)
		}
	})
}
