package epistemic

import (
	"testing"

	"pak/internal/commonbelief"
	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// that returns T-hat(9/10, 1/10): runs 0 (bit=0, m), 1 (bit=1, m),
// 2 (bit=1, m').
func that(t *testing.T) *pps.System {
	t.Helper()
	sys, err := paper.That(ratutil.R(9, 10), ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBelievesBasic(t *testing.T) {
	sys := that(t)
	phi := paper.ThatBitFact()
	// i's belief in bit=1 at t1: 8/9 after m, 1 after m'.
	b89 := Believes(paper.AgentI, ratutil.R(8, 9), phi)
	b9 := Believes(paper.AgentI, ratutil.R(9, 10), phi)
	tests := []struct {
		name string
		f    logic.Fact
		r    pps.RunID
		want bool
	}{
		{"8/9 holds after m", b89, 1, true},
		{"8/9 holds after m'", b89, 2, true},
		{"9/10 fails after m", b9, 1, false},
		{"9/10 holds after m'", b9, 2, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Holds(sys, tt.r, 1); got != tt.want {
				t.Fatalf("Holds = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBelievesAgreesWithEngine(t *testing.T) {
	sys := that(t)
	phi := paper.ThatBitFact()
	e := core.New(sys)
	for r := 0; r < sys.NumRuns(); r++ {
		for tt := 0; tt < sys.RunLen(pps.RunID(r)); tt++ {
			deg := BeliefDegree(sys, paper.AgentI, phi, pps.RunID(r), tt)
			engineDeg, err := e.BeliefAtPoint(phi, paper.AgentI, pps.RunID(r), tt)
			if err != nil {
				t.Fatal(err)
			}
			if !ratutil.Eq(deg, engineDeg) {
				t.Fatalf("(%d,%d): epistemic %v != engine %v", r, tt, deg, engineDeg)
			}
		}
	}
}

func TestKnowsMatchesBeliefOne(t *testing.T) {
	sys := that(t)
	phi := paper.ThatBitFact()
	k := Knows(paper.AgentI, phi)
	b1 := Believes(paper.AgentI, ratutil.One(), phi)
	for r := 0; r < sys.NumRuns(); r++ {
		for tt := 0; tt < sys.RunLen(pps.RunID(r)); tt++ {
			if k.Holds(sys, pps.RunID(r), tt) != b1.Holds(sys, pps.RunID(r), tt) {
				t.Fatalf("(%d,%d): K != B^1 in a pps", r, tt)
			}
		}
	}
	// j always knows its own bit.
	kj := Knows(paper.AgentJ, phi)
	if !kj.Holds(sys, 1, 0) || kj.Holds(sys, 0, 0) {
		t.Error("K_j(bit=1) wrong")
	}
}

func TestEpistemicFactsArePastBased(t *testing.T) {
	sys := that(t)
	phi := paper.ThatBitFact()
	facts := []logic.Fact{
		Believes(paper.AgentI, ratutil.R(8, 9), phi),
		Knows(paper.AgentJ, phi),
		EveryoneBelieves([]string{paper.AgentI, paper.AgentJ}, ratutil.R(1, 2), phi),
	}
	for _, f := range facts {
		if !logic.IsPastBased(sys, f) {
			t.Errorf("%v should be past-based (belief depends only on the local state)", f)
		}
	}
}

func TestNestedBeliefs(t *testing.T) {
	// "j q-believes that i p-believes bit=1": j knows the bit but not
	// which message arrived. At t1 with bit=1, i p-believes (p=9/10) only
	// in run 2 (posterior 1), which j's cell {1,2} hits with probability
	// ε/p = 1/9.
	sys := that(t)
	phi := paper.ThatBitFact()
	iBelieves := Believes(paper.AgentI, ratutil.R(9, 10), phi)
	jAboutI := BeliefDegree(sys, paper.AgentJ, iBelieves, 1, 1)
	if !ratutil.Eq(jAboutI, ratutil.R(1, 9)) {
		t.Fatalf("β_j(B_i^{9/10}(bit=1)) = %v, want 1/9", jAboutI)
	}
	// With the relaxed level 8/9, i p-believes everywhere, so j is certain.
	iBelievesLow := Believes(paper.AgentI, ratutil.R(8, 9), phi)
	jAboutILow := BeliefDegree(sys, paper.AgentJ, iBelievesLow, 1, 1)
	if !ratutil.IsOne(jAboutILow) {
		t.Fatalf("β_j(B_i^{8/9}(bit=1)) = %v, want 1", jAboutILow)
	}
}

func TestMutualBeliefMatchesFixedPointOperator(t *testing.T) {
	// The syntactic iterated everyone-believes facts must coincide, level
	// by level, with the set-operator iterates of internal/commonbelief.
	sys := that(t)
	phi := paper.ThatBitFact()
	group := []string{paper.AgentI, paper.AgentJ}
	groupIDs := []pps.AgentID{0, 1}
	slice, err := commonbelief.NewSlice(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	event := logic.RunsSatisfying(sys, phi)
	p := ratutil.R(9, 10)
	for k := 1; k <= 3; k++ {
		syntactic := sys.RunsWhere(func(r pps.RunID) bool {
			return MutualBelief(group, p, phi, k).Holds(sys, r, 1)
		})
		operator, err := slice.IteratedEP(groupIDs, event, p, k)
		if err != nil {
			t.Fatal(err)
		}
		if !syntactic.Equal(operator) {
			t.Fatalf("level %d: syntactic %v != operator %v", k, syntactic, operator)
		}
	}
}

func TestMutualBeliefOnFiringSquad(t *testing.T) {
	// In FS at firing time, 2-level mutual 1/2-belief of joint firing
	// holds on the runs where common 1/2-belief holds (the operator's
	// fixed point is reached by level 2 here).
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	bothEver := logic.Sometime(paper.FSBothFire())
	group := []string{paper.Alice, paper.Bob}
	p := ratutil.R(1, 2)
	m2 := MutualBelief(group, p, bothEver, 2)
	syntactic := sys.RunsWhere(func(r pps.RunID) bool { return m2.Holds(sys, r, 2) })

	slice, err := commonbelief.NewSlice(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	common, err := slice.CommonP([]pps.AgentID{0, 1}, logic.RunsSatisfying(sys, bothEver), p)
	if err != nil {
		t.Fatal(err)
	}
	if !syntactic.Equal(common) {
		t.Fatalf("2-level mutual belief %v != common belief %v", syntactic, common)
	}
	if syntactic.IsEmpty() {
		t.Fatal("mutual belief should be attainable in FS")
	}
}

func TestConstraintOnEpistemicCondition(t *testing.T) {
	// Epistemic facts are past-based, so they can serve as constraint
	// conditions with the independence hypothesis guaranteed: analyze
	// µ(B_Bob^{99/100}(go=1) @ fire_A | fire_A) on FS — "when Alice fires,
	// how often is Bob (nearly) sure the mission is on?"
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	bobSure := Believes(paper.Bob, ratutil.R(99, 100), paper.FSGoIsOne())
	rep, err := e.CheckExpectation(bobSure, paper.Alice, paper.ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Independent {
		t.Fatal("epistemic condition should be independent (past-based)")
	}
	if !rep.Equal() {
		t.Fatalf("Theorem 6.2 on an epistemic condition: %v", rep)
	}
	// Bob is ≥99% sure go=1 exactly when he got the wake-up: 99/100.
	if !ratutil.Eq(rep.ConstraintProb, ratutil.R(99, 100)) {
		t.Fatalf("µ = %v, want 99/100", rep.ConstraintProb)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad level":      func() { Believes("i", ratutil.R(3, 2), logic.True()) },
		"nil level":      func() { Believes("i", nil, logic.True()) },
		"mutual level 0": func() { MutualBelief([]string{"i"}, ratutil.R(1, 2), logic.True(), 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestUnknownAgentPanics(t *testing.T) {
	sys := that(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Believes("nobody", ratutil.R(1, 2), logic.True()).Holds(sys, 0, 0)
}

func TestStrings(t *testing.T) {
	b := Believes("i", ratutil.R(1, 2), logic.True())
	if got := b.String(); got != "B_i^{1/2}(true)" {
		t.Errorf("Believes String = %q", got)
	}
	k := Knows("j", logic.False())
	if got := k.String(); got != "K_j(false)" {
		t.Errorf("Knows String = %q", got)
	}
}
