// Package epistemic turns the paper's belief and knowledge notions into
// facts, closing the loop between the logic and the probability layers:
// Believes(i, p, φ) is itself a fact over the pps, so epistemic operators
// nest — "Alice p-believes that Bob q-believes φ" is an ordinary event
// with a measure, and iterated everyone-believes facts express the
// Monderer–Samet hierarchy syntactically.
//
// Semantics. At a point (r, t) with ℓ = r_i(t), the agent's degree of
// belief in φ is β_i(φ) = µ_T(φ@ℓ | ℓ) (Definition 3.1). Believes(i, p, φ)
// holds at (r, t) iff β_i(φ) ≥ p there; Knows(i, φ) holds iff φ@ℓ is true
// in every run in which ℓ occurs (equivalently β_i(φ) = 1, since the prior
// has full support).
//
// Because belief at a point depends only on the local state, every
// epistemic fact is past-based — hence, by Lemma 4.3(b), local-state
// independent of any proper action of a protocol-generated system. This
// makes nested-belief conditions directly usable in probabilistic
// constraints analyzed by internal/core.
//
// Evaluation is self-contained (no engine cache): each Holds call computes
// the conditional measure from the system. For heavy repeated queries over
// the same (agent, fact) pair, prefer core.Engine; for nesting and
// composition, use this package.
package epistemic

import (
	"fmt"
	"math/big"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// beliefAt computes β_a(f) at the point (r, t): µ(f@ℓ | ℓ) for ℓ = r_a(t).
func beliefAt(sys *pps.System, a pps.AgentID, f logic.Fact, r pps.RunID, t int) *big.Rat {
	local := sys.Local(r, t, a)
	occ, tm, ok := sys.OccursShared(a, local)
	if !ok {
		// Unreachable for points inside the system; treat as belief 0.
		return ratutil.Zero()
	}
	factAt := sys.NewSet()
	occ.ForEach(func(rr int) bool {
		if f.Holds(sys, pps.RunID(rr), tm) {
			factAt.Add(rr)
		}
		return true
	})
	cond, condOK := sys.Cond(factAt, occ)
	if !condOK {
		return ratutil.Zero()
	}
	return cond
}

func mustAgent(sys *pps.System, name string) pps.AgentID {
	id, ok := sys.AgentIndex(name)
	if !ok {
		panic(fmt.Sprintf("epistemic: unknown agent %q in system %v", name, sys))
	}
	return id
}

// believesFact is B_i^p(φ) as a fact.
type believesFact struct {
	agent string
	p     *big.Rat
	f     logic.Fact
}

func (b believesFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	bel := beliefAt(sys, mustAgent(sys, b.agent), b.f, r, t)
	return ratutil.Geq(bel, b.p)
}

func (b believesFact) String() string {
	return fmt.Sprintf("B_%s^{%s}(%s)", b.agent, b.p.RatString(), b.f)
}

// Believes returns the fact B_i^p(φ): agent's current degree of belief in
// φ is at least p. p is copied; it must be a probability.
func Believes(agent string, p *big.Rat, f logic.Fact) logic.Fact {
	if p == nil || !ratutil.IsProb(p) {
		panic(fmt.Sprintf("epistemic.Believes: level %v not in [0,1]", p))
	}
	return believesFact{agent: agent, p: ratutil.Copy(p), f: f}
}

// knowsFact is K_i(φ) as a fact.
type knowsFact struct {
	agent string
	f     logic.Fact
}

func (k knowsFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	a := mustAgent(sys, k.agent)
	local := sys.Local(r, t, a)
	occ, tm, ok := sys.OccursShared(a, local)
	if !ok {
		return false
	}
	known := true
	occ.ForEach(func(rr int) bool {
		if !k.f.Holds(sys, pps.RunID(rr), tm) {
			known = false
			return false
		}
		return true
	})
	return known
}

func (k knowsFact) String() string { return fmt.Sprintf("K_%s(%s)", k.agent, k.f) }

// Knows returns the fact K_i(φ): φ holds at the agent's current time in
// every run consistent with its local state (S5 knowledge).
func Knows(agent string, f logic.Fact) logic.Fact {
	return knowsFact{agent: agent, f: f}
}

// EveryoneBelieves returns E_G^p(φ) = ∧_{i∈G} B_i^p(φ).
func EveryoneBelieves(agents []string, p *big.Rat, f logic.Fact) logic.Fact {
	fs := make([]logic.Fact, len(agents))
	for i, a := range agents {
		fs[i] = Believes(a, p, f)
	}
	return logic.And(fs...)
}

// EveryoneKnows returns E_G(φ) = ∧_{i∈G} K_i(φ).
func EveryoneKnows(agents []string, f logic.Fact) logic.Fact {
	fs := make([]logic.Fact, len(agents))
	for i, a := range agents {
		fs[i] = Knows(a, f)
	}
	return logic.And(fs...)
}

// MutualBelief returns the k-level iterated everyone-believes fact:
// level 1 is E_G^p(φ), level 2 is E_G^p(φ ∧ E_G^p(φ)), and so on. As k
// grows these decrease toward common p-belief (computed as a fixed point
// by internal/commonbelief; the two agree level by level, which the tests
// verify).
func MutualBelief(agents []string, p *big.Rat, f logic.Fact, k int) logic.Fact {
	if k < 1 {
		panic(fmt.Sprintf("epistemic.MutualBelief: level %d < 1", k))
	}
	current := EveryoneBelieves(agents, p, f)
	for i := 1; i < k; i++ {
		current = EveryoneBelieves(agents, p, logic.And(f, current))
	}
	return current
}

// BeliefDegree exposes β_i(φ) at a point for callers that want the exact
// degree rather than a thresholded fact.
func BeliefDegree(sys *pps.System, agent string, f logic.Fact, r pps.RunID, t int) *big.Rat {
	return beliefAt(sys, mustAgent(sys, agent), f, r, t)
}

// Spec reports the structural form of B_i^p(φ) for serialization
// (see logic.Speccer and the internal/encode JSON schema).
func (b believesFact) Spec() (logic.FactSpec, bool) {
	s, ok := logic.SpecOf(b.f)
	if !ok {
		return logic.FactSpec{}, false
	}
	return logic.FactSpec{Op: "believes", Agent: b.agent, P: b.p.RatString(), Arg: &s}, true
}

// Spec reports the structural form of K_i(φ) for serialization.
func (k knowsFact) Spec() (logic.FactSpec, bool) {
	s, ok := logic.SpecOf(k.f)
	if !ok {
		return logic.FactSpec{}, false
	}
	return logic.FactSpec{Op: "knows", Agent: k.agent, Arg: &s}, true
}
