package query

// Backend selection. The repo carries two exact engines: core.Engine
// enumerates the run space, and lpengine.Engine answers belief-bound
// shapes (Belief / Constraint / Threshold over past-based facts) by
// exact-rational linear programming. Both compute the same rationals —
// the differential harness (differential_test.go) holds them to
// byte-identical ResultDocs over every registry scenario — so a backend
// is a performance and cross-checking choice, never a semantic one.

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/lpengine"
	"pak/internal/runset"
)

// Backend names the engine a batch evaluates on.
type Backend string

const (
	// BackendEnum is the enumeration engine (core.Engine), the default;
	// it answers every query kind.
	BackendEnum Backend = "enum"
	// BackendLP is the LP engine, strict: queries CanSolveLP rejects
	// fail in their slots with ErrBackendUnsupported.
	BackendLP Backend = "lp"
	// BackendAuto routes each query to the LP engine when CanSolveLP
	// accepts it and to the enumeration engine otherwise.
	BackendAuto Backend = "auto"
)

// ErrBackendUnsupported is the typed error a strict-lp slot reports
// when the query has no LP form. The service maps it to a 400.
var ErrBackendUnsupported = errors.New("query: backend does not support this query")

// ParseBackend parses a wire/flag backend name. The empty string means
// the default enumeration backend.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "":
		return BackendEnum, nil
	case BackendEnum, BackendLP, BackendAuto:
		return Backend(s), nil
	}
	return "", fmt.Errorf("query: unknown backend %q (have %q, %q, %q)",
		s, BackendEnum, BackendLP, BackendAuto)
}

// WithBackend selects the evaluation backend for a batch or stream.
// The zero value and BackendEnum are the status quo; see Backend for
// the lp and auto contracts.
func WithBackend(b Backend) Option {
	return func(c *config) { c.backend = b }
}

// CanSolveLP reports whether the LP backend can answer q: the kind must
// be Belief, Constraint or Threshold, and the fact must be structurally
// past-based (logic.FactSpec.PastBased) — the property that lets the LP
// engine evaluate it once per world-column instead of once per run.
// Facts with opaque Go predicates have no structural spec and are
// rejected.
func CanSolveLP(q Query) bool {
	var f logic.Fact
	switch qq := q.(type) {
	case BeliefQuery:
		f = qq.Fact
	case ConstraintQuery:
		f = qq.Fact
	case ThresholdQuery:
		f = qq.Fact
	default:
		return false
	}
	if f == nil {
		return false
	}
	spec, ok := logic.SpecOf(f)
	return ok && spec.PastBased()
}

// beliefSolver is the engine surface the three LP-supported query kinds
// evaluate against. *core.Engine and *lpengine.Engine both satisfy it,
// and the query kinds assemble their Results through it (see evalOn in
// query.go), so the two backends share one Result-assembly path and
// cannot drift in formatting — only the six measure computations
// differ.
type beliefSolver interface {
	Belief(f logic.Fact, agent, local string) (*big.Rat, error)
	BeliefByActionState(f logic.Fact, agent, action string) (map[string]*big.Rat, error)
	ConstraintProb(f logic.Fact, agent, action string) (*big.Rat, error)
	FactAtAction(f logic.Fact, agent, action string) (*runset.Set, error)
	ThresholdMeasure(f logic.Fact, agent, action string, p *big.Rat) (*big.Rat, error)
	BeliefThresholdEvent(f logic.Fact, agent, action string, p *big.Rat) (*runset.Set, error)
}

var (
	_ beliefSolver = (*core.Engine)(nil)
	_ beliefSolver = (*lpengine.Engine)(nil)
)

// unsupportedErr labels a query a strict-lp evaluation cannot answer.
func unsupportedErr(q Query) error {
	return fmt.Errorf("%w: %s (kind %q)", ErrBackendUnsupported, stringOf(q), kindOf(q))
}

// evalLPCtx is evalCtx for the LP backend: the same nil/validate/panic
// envelope, dispatching to the query's evalOn against the LP engine.
// Callers route only kinds CanSolveLP accepts; the default arm is a
// defensive ErrBackendUnsupported, not a reachable path.
func evalLPCtx(ctx context.Context, lp *lpengine.Engine, q Query) (res Result, err error) {
	if q == nil {
		return Result{}, fmt.Errorf("query: nil query")
	}
	if vErr := q.validate(); vErr != nil {
		return Result{Kind: q.Kind(), Query: q.String(), Err: vErr}, vErr
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("query: %s: panic: %v", q, r)
			res = Result{Kind: q.Kind(), Query: q.String(), Err: err}
		}
	}()
	switch qq := q.(type) {
	case BeliefQuery:
		res, err = qq.evalOn(ctx, lp)
	case ConstraintQuery:
		res, err = qq.evalOn(ctx, lp)
	case ThresholdQuery:
		res, err = qq.evalOn(ctx, lp)
	default:
		err = unsupportedErr(q)
	}
	if err != nil {
		return Result{Kind: q.Kind(), Query: q.String(), Err: err}, err
	}
	return res, nil
}

// anyLPRouted reports whether the backend would route any query in the
// batch to the LP engine, so enum-shaped batches under auto skip the
// engine build.
func anyLPRouted(qs []Query, b Backend) bool {
	if b != BackendLP && b != BackendAuto {
		return false
	}
	for _, q := range qs {
		if CanSolveLP(q) {
			return true
		}
	}
	return false
}
