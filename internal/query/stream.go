package query

// The streaming core. EvalStream and EvalMultiStream are the
// channel-based forms of EvalBatch/MultiBatch: one frame per (system,
// query) slot as its worker finishes, then exactly one terminal status
// frame, then the channel closes. The batch evaluators are thin
// consumers of this core (see collectStream), so "batch equals stream"
// is true by construction, not by parallel maintenance of two pools.
//
// The contract (documented in DESIGN.md and pinned by tests):
//
//   - One frame per slot, always: finished queries carry their exact
//     Result; queries not yet started when the context dies carry the
//     context's error in Result.Err. No slot is ever silently dropped,
//     which is what lets a deadline return the finished prefix instead
//     of discarding it.
//   - Completion order: frames arrive as workers finish. Serial
//     evaluation (parallelism ≤ 1) therefore emits in input order.
//   - Drain-then-close: when the context expires, queries already being
//     evaluated run to completion and their exact frames are still
//     emitted (one query is the unit of cancellation — a finished slot
//     is never torn); only then does the terminal frame report
//     StreamDeadline or StreamCancelled.
//   - Never blocks, never leaks: the channel is buffered for the whole
//     batch plus the terminal frame, so workers finish and the producer
//     goroutine exits even if the consumer abandons the stream.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"pak/internal/core"
	"pak/internal/lpengine"
	"pak/internal/montecarlo"
)

// StreamStatus is how a streamed evaluation ended, carried by the
// terminal frame.
type StreamStatus string

const (
	// StreamComplete: every query was evaluated (success or per-slot
	// failure) with a live context.
	StreamComplete StreamStatus = "complete"
	// StreamDeadline: the context's deadline expired mid-batch; frames
	// already emitted are exact, the rest carry the deadline error.
	StreamDeadline StreamStatus = "deadline"
	// StreamCancelled: the context was cancelled mid-batch (a client
	// going away rather than a budget running out).
	StreamCancelled StreamStatus = "cancelled"
)

// Frame is one emission of a streamed evaluation: a result frame for
// one (system, query) slot, or the single terminal status frame.
type Frame struct {
	// System is the MultiItem index the slot belongs to (always 0 for
	// EvalStream).
	System int
	// Index is the query's position within its batch.
	Index int
	// Result is the slot's result — exact on success, labelled with the
	// evaluation or context error in Result.Err otherwise.
	Result Result
	// Status is empty on result frames and set exactly once, on the
	// final frame before the channel closes.
	Status StreamStatus
	// Err is the context's cause on a deadline/cancelled terminal frame
	// (nil on result frames and on StreamComplete).
	Err error
	// Stage labels the frame's tier under WithApprox: StageApprox for a
	// sampled estimate, StageExact for the refined (or exact-only)
	// result. Empty outside approx mode, so the classic wire shape is
	// untouched.
	Stage Stage
}

// Terminal reports whether this is the closing status frame.
func (f Frame) Terminal() bool { return f.Status != "" }

// EvalStream is EvalBatch's streaming form: it evaluates qs against the
// engine under the same options and returns a channel emitting one
// result frame per query in completion order, then one terminal status
// frame, then closing. See the package contract above; EvalBatch itself
// is implemented over this stream.
func EvalStream(e *core.Engine, qs []Query, opts ...Option) <-chan Frame {
	return streamItems([]MultiItem{{Engine: e, Queries: qs}}, newConfig(opts))
}

// EvalMultiStream is MultiBatch's streaming form: every item's batch
// evaluates against that item's engine, all (system, query) pairs
// sharded across one bounded worker pool, each emitting its frame as it
// finishes. Frames carry their (System, Index) coordinates; the
// terminal status frame closes the stream.
func EvalMultiStream(items []MultiItem, opts ...Option) <-chan Frame {
	return streamItems(items, newConfig(opts))
}

// streamItems runs the shared worker pool and owns the emission
// contract. The channel buffers every frame, so the pool never blocks
// on a slow (or gone) consumer and the goroutine cannot leak. Under an
// approx config each supported slot may emit two frames (approx then
// exact, in that order on the channel since one worker owns the slot),
// so the buffer doubles; batch consumers keep the last frame per slot.
//
// Engines are lazy values here: each item resolves (through its Source,
// or trivially from its eager fields) at most once, from whichever
// worker first reaches one of its slots with a live context — so a
// slot's evaluation starts the moment ITS engine is ready, early items
// evaluate while later items are still building, and a context that
// dies before any slot of an item starts means that item's engine is
// never built at all.
func streamItems(items []MultiItem, cfg config) <-chan Frame {
	type unit struct{ sys, q int }
	var units []unit
	for i, item := range items {
		for j := range item.Queries {
			units = append(units, unit{i, j})
		}
	}
	buffer := len(units) + 1
	if cfg.approx != nil {
		buffer += len(units)
	}
	out := make(chan Frame, buffer)
	go func() {
		defer close(out)
		if cfg.approx != nil {
			norm, err := cfg.approx.normalized()
			if err != nil {
				// An invalid spec fails every slot in place: the stream
				// keeps its one-frame-per-slot floor and the batch
				// consumers report the error per coordinate.
				for _, u := range units {
					qu := items[u.sys].Queries[u.q]
					out <- Frame{System: u.sys, Index: u.q, Result: Result{Kind: kindOf(qu), Query: stringOf(qu), Err: err}}
				}
				status, cause := statusOf(cfg.ctx)
				out <- Frame{Status: status, Err: cause}
				return
			}
			cfg.approx = &norm
		}
		states := make([]itemState, len(items))
		for i := range items {
			states[i].item = &items[i]
		}
		runPool(len(units), cfg.parallelism, func(u int) {
			sys, q := units[u].sys, units[u].q
			st := &states[sys]
			mat := MultiItem{Queries: st.item.Queries}
			var lp *lpengine.Engine
			var model *montecarlo.Model
			// The context check precedes resolution so a dead context
			// never triggers an engine build; the unresolved view's nil
			// engine is unreachable because evalSlot and evalApproxSlot
			// both check the context before touching the engine.
			if ctxErr(cfg.ctx, st.item.Queries[q]) == nil {
				var err error
				mat, lp, model, err = st.resolve(cfg)
				if err != nil {
					failSlot(out, st.item.Queries[q], sys, q, cfg, err)
					return
				}
			}
			if cfg.approx == nil {
				res, _ := evalSlot(mat, lp, q, cfg)
				out <- Frame{System: sys, Index: q, Result: res}
				return
			}
			streamApproxSlot(out, mat, model, lp, sys, q, cfg)
		})
		status, cause := statusOf(cfg.ctx)
		out <- Frame{Status: status, Err: cause}
	}()
	return out
}

// itemState is one item's resolution cell: the first worker to reach
// one of the item's slots (with a live context) resolves the engines —
// calling the Source at most once, then deriving the per-item LP engine
// and sampling model the eager path used to prebuild — and every later
// worker shares the outcome.
type itemState struct {
	item *MultiItem

	once  sync.Once
	mat   MultiItem // materialized view: resolved engines + the queries
	lp    *lpengine.Engine
	model *montecarlo.Model
	err   error // classified source error (see classifySourceErr)
}

// resolve materializes the item. Safe for concurrent use; the source
// runs at most once and its classified error is shared by every slot.
func (st *itemState) resolve(cfg config) (MultiItem, *lpengine.Engine, *montecarlo.Model, error) {
	st.once.Do(func() {
		eng := Engines{Engine: st.item.Engine, Model: st.item.Model, LP: st.item.LP}
		if st.item.Source != nil {
			eng, st.err = st.item.Source(cfg.ctx)
			if st.err != nil {
				st.err = classifySourceErr(cfg.ctx, st.err)
				st.mat = MultiItem{Queries: st.item.Queries}
				return
			}
		}
		st.mat = MultiItem{Engine: eng.Engine, Queries: st.item.Queries, Model: eng.Model, LP: eng.LP}
		// Under an lp/auto backend each item gets one LP engine for its
		// lifetime (class indexes memoize per engine, exactly like the
		// enumeration engine's caches), honoring an injected one; same
		// for the approximate tier's sampling model.
		if cfg.backend != BackendEnum {
			switch {
			case eng.LP != nil:
				st.lp = eng.LP
			case eng.Engine != nil && anyLPRouted(st.item.Queries, cfg.backend):
				st.lp = lpengine.New(eng.Engine.System())
			}
		}
		if cfg.approx != nil {
			switch {
			case eng.Model != nil:
				st.model = eng.Model
			case eng.Engine != nil && anyApproxable(st.item.Queries):
				st.model = montecarlo.NewModel(eng.Engine.System())
			}
		}
	})
	return st.mat, st.lp, st.model, st.err
}

// classifySourceErr fixes a source failure's error class for the slots
// that will carry it. A context-flavoured error while the evaluation
// context has a cause is the context cutting the build: it stays
// context-classed (wrapped, so envelope folds count the slot as not
// visited and batch consumers report a per-slot deadline error). Any
// other failure is a genuine build error — a hard failure — and a
// context-flavoured error from a source while OUR context is live is
// flattened so it cannot masquerade as a cut.
func classifySourceErr(ctx context.Context, err error) error {
	if core.IsContextErr(err) {
		if context.Cause(ctx) != nil {
			return fmt.Errorf("query: engine not built: %w", err)
		}
		return fmt.Errorf("query: engine build failed: %v", err)
	}
	return fmt.Errorf("query: engine build failed: %w", err)
}

// failSlot emits one slot's source-failure frame, honoring the stage
// labelling: exact-only streams carry no stage, approx streams label
// the slot's single (and therefore final) frame with the tier it
// stands for — approx under "only", exact otherwise.
func failSlot(out chan<- Frame, qu Query, sys, q int, cfg config, err error) {
	res := Result{Kind: kindOf(qu), Query: stringOf(qu), Err: err}
	if cfg.approx == nil {
		out <- Frame{System: sys, Index: q, Result: res}
		return
	}
	stage := StageExact
	if cfg.approx.Only {
		stage = StageApprox
	}
	out <- Frame{System: sys, Index: q, Result: res, Stage: stage}
}

// anyApproxable reports whether any query in the batch can use the
// sampling model, so exact-only batches under WithApprox skip the
// model build.
func anyApproxable(qs []Query) bool {
	for _, q := range qs {
		if CanApprox(q) {
			return true
		}
	}
	return false
}

// streamApproxSlot owns one slot's emission under the approximate tier:
//
//   - unsupported kind: one exact frame (stage "exact"), as ever.
//   - supported, approx-only: one approx frame, estimate or error.
//   - supported, refine mode: the approx frame (when the estimate
//     landed), then the exact frame carrying the estimate and the
//     ciCovered self-check — unless the context died between the two,
//     in which case the approx frame stands as the slot's final, sound
//     answer and no exact frame is emitted (a deadline mid-refinement
//     must never overwrite a sound estimate with an error).
func streamApproxSlot(out chan<- Frame, item MultiItem, model *montecarlo.Model, lp *lpengine.Engine, sys, q int, cfg config) {
	var est *Estimate
	if CanApprox(item.Queries[q]) {
		ares := evalApproxSlot(item, model, sys, q, cfg)
		if ares.Err == nil || cfg.approx.Only {
			out <- Frame{System: sys, Index: q, Result: ares, Stage: StageApprox}
			est = ares.Estimate
		}
		if cfg.approx.Only {
			return
		}
		if gate := approxRefineGate; gate != nil {
			gate(cfg.ctx, sys, q)
		}
	}
	res, _ := evalSlot(item, lp, q, cfg)
	if est != nil {
		if ctxAborted(res.Err) {
			return
		}
		if res.Err == nil {
			attachEstimate(&res, est)
		}
	}
	out <- Frame{System: sys, Index: q, Result: res, Stage: StageExact}
}

// evalSlot evaluates one (item, query) slot under the batch config: the
// context check first (so a dead context fails the slot with the cause,
// never touching the engine), then backend routing — strict lp fails
// unsupported shapes in their slots with ErrBackendUnsupported, auto
// falls them through to enumeration — then the chosen engine, cold when
// the batch disabled cache sharing.
func evalSlot(item MultiItem, lp *lpengine.Engine, q int, cfg config) (Result, error) {
	qu := item.Queries[q]
	if err := ctxErr(cfg.ctx, qu); err != nil {
		return Result{Kind: kindOf(qu), Query: stringOf(qu), Err: err}, err
	}
	if item.Engine == nil {
		err := errors.New("query: nil engine")
		return Result{Err: err}, err
	}
	if cfg.backend == BackendLP || cfg.backend == BackendAuto {
		if CanSolveLP(qu) {
			target := lp
			if target == nil || !cfg.cache {
				target = lpengine.New(item.Engine.System())
			}
			res, err := evalLPCtx(cfg.ctx, target, qu)
			if err != nil && res.Err == nil {
				res.Err = err
			}
			return res, err
		}
		if cfg.backend == BackendLP {
			err := unsupportedErr(qu)
			return Result{Kind: kindOf(qu), Query: stringOf(qu), Err: err}, err
		}
	}
	target := item.Engine
	if !cfg.cache {
		target = core.New(item.Engine.System())
	}
	res, err := evalCtx(cfg.ctx, target, qu)
	if err != nil && res.Err == nil {
		// Eval's nil-query path reports only through its error return;
		// the stream carries errors inside frames, so every failure must
		// land in Result.Err or the batch consumers would report success.
		res.Err = err
	}
	return res, err
}

// statusOf classifies the context's state for the terminal frame.
func statusOf(ctx context.Context) (StreamStatus, error) {
	cause := context.Cause(ctx)
	switch {
	case cause == nil:
		return StreamComplete, nil
	case errors.Is(cause, context.DeadlineExceeded):
		return StreamDeadline, cause
	default:
		return StreamCancelled, cause
	}
}

// collectStream drains a stream back into the [system][query] slabs the
// batch evaluators return. Frames address their slots directly, so the
// result shape is input-ordered regardless of completion order.
func collectStream(items []MultiItem, cfg config) ([][]Result, [][]error) {
	results := make([][]Result, len(items))
	errs := make([][]error, len(items))
	for i, item := range items {
		results[i] = make([]Result, len(item.Queries))
		errs[i] = make([]error, len(item.Queries))
	}
	for f := range streamItems(items, cfg) {
		if f.Terminal() {
			continue
		}
		results[f.System][f.Index] = f.Result
		errs[f.System][f.Index] = f.Result.Err
	}
	return results, errs
}
