package query

// The sampled-first envelope sweep. An adversary envelope only needs
// exact values at the assignments that set its min and max; everywhere
// else the exact unfold is wasted work. EvalEnvelopeSampled therefore
// runs a coarse approx pass over every assignment first (per-assignment
// seeds derived from one base seed, so the pass is deterministic), and
// spends exact evaluation only on assignments whose confidence interval
// shows they could still move the envelope:
//
//	keep i  iff  Lo_i ≤ min_j Hi_j   (could attain the minimum)
//	         or  Hi_i ≥ max_j Lo_j   (could attain the maximum)
//
// Every assignment whose coarse estimate failed (error, dead context)
// is kept too — pruning only ever acts on a sound interval. The
// argmin/argmax of min_j Hi_j and max_j Lo_j always keep themselves, so
// the candidate set is never empty and — conditional on every interval
// covering its true value — contains every assignment attaining the
// true bounds, including all ties; the exact sub-sweep's lowest-index
// tie-break therefore reproduces the full sweep's witnesses exactly.
//
// This is the one place the approximate tier is load-bearing rather
// than advisory: a pruned assignment is never exactly evaluated, so the
// envelope is correct with probability at least 1 - Nδ (union bound
// over the N coarse intervals), not with certainty. Callers that need
// certainty run EvalEnvelope; callers sweeping spaces too large for
// exhaustive exact evaluation trade δ for the skipped work.

import (
	"math/big"

	"pak/internal/montecarlo"
)

// SampledEnvelope is EvalEnvelopeSampled's answer: the exact envelope
// folded from the surviving candidates, plus the pruning ledger.
type SampledEnvelope struct {
	// Range is the envelope over the candidate assignments. Total counts
	// the full space; Visited counts only assignments exactly evaluated,
	// so Total - Visited - len(Skipped-overlap) accounting shows the
	// exact work the coarse pass saved.
	Range Range
	// Pruned lists assignments whose coarse interval proved they cannot
	// move either bound, in assignment order. They were never exactly
	// evaluated.
	Pruned []string
	// Estimates holds the coarse pass's per-assignment estimates (nil
	// where the approx evaluation failed and the slot fell through to
	// the exact sweep).
	Estimates []*Estimate
	// Err joins the exact sub-sweep's hard failures, exactly as
	// EvalEnvelope reports them (nil when every candidate evaluated or
	// skipped cleanly).
	Err error
	// Status is how the exact sub-sweep ended.
	Status StreamStatus
}

// EvalEnvelopeSampled runs the sampled-first sweep described in the
// package comment. A non-approximable inner query falls back to the
// plain exhaustive EvalEnvelope (Pruned stays nil). The spec's base
// seed derives one seed per assignment, so the coarse pass — and hence
// the pruning decision and the final envelope — is a deterministic
// function of (query, spec).
func EvalEnvelopeSampled(q EnvelopeQuery, spec ApproxSpec, opts ...Option) (SampledEnvelope, error) {
	if err := q.Validate(); err != nil {
		return SampledEnvelope{}, err
	}
	if !CanApprox(q.Inner) {
		out, err := EvalEnvelope(q, opts...)
		if err != nil {
			return SampledEnvelope{}, err
		}
		return SampledEnvelope{Range: *out.Result.Envelope, Err: out.Result.Err, Status: out.Status}, nil
	}
	norm, err := spec.normalized()
	if err != nil {
		return SampledEnvelope{}, err
	}

	cfg := newConfig(opts)
	cfg.approx = &norm

	// Coarse pass: one sampled estimate per assignment. The assignment
	// index doubles as the seed-mixing "system" coordinate, mirroring how
	// EnvelopeStream compiles assignments to MultiItems.
	ests := make([]*Estimate, len(q.Items))
	coarseErrs := make([]error, len(q.Items))
	runPool(len(q.Items), cfg.parallelism, func(i int) {
		item := MultiItem{Engine: q.Items[i].Engine, Source: q.Items[i].Source, Queries: []Query{q.Inner}}
		st := itemState{item: &item}
		mat := MultiItem{Queries: item.Queries}
		var model *montecarlo.Model
		// Same discipline as streamItems: a dead context never triggers a
		// build (evalApproxSlot's own context check fails the slot first).
		// Lazy items resolve here too, so a coarse estimate prices a lazy
		// assignment's build once; the exact sub-sweep's source call hits
		// whatever cache backs the source (service sources are memoized).
		if ctxErr(cfg.ctx, q.Inner) == nil {
			var err error
			mat, _, model, err = st.resolve(cfg)
			if err != nil {
				ests[i], coarseErrs[i] = nil, err
				return
			}
		}
		res := evalApproxSlot(mat, model, i, 0, cfg)
		ests[i], coarseErrs[i] = res.Estimate, res.Err
	})

	// The certain bounds: whatever the truth, the envelope min is at
	// most min_j Hi_j and the max at least max_j Lo_j.
	var minHi, maxLo *big.Rat
	for i, est := range ests {
		if coarseErrs[i] != nil || est == nil {
			continue
		}
		if minHi == nil || est.Hi.Cmp(minHi) < 0 {
			minHi = est.Hi
		}
		if maxLo == nil || est.Lo.Cmp(maxLo) > 0 {
			maxLo = est.Lo
		}
	}

	var candIdx []int
	var pruned []string
	for i := range q.Items {
		switch {
		case coarseErrs[i] != nil || ests[i] == nil || minHi == nil:
			candIdx = append(candIdx, i)
		case ests[i].Lo.Cmp(minHi) <= 0 || ests[i].Hi.Cmp(maxLo) >= 0:
			candIdx = append(candIdx, i)
		default:
			pruned = append(pruned, q.Items[i].Assignment)
		}
	}

	sub := EnvelopeQuery{Inner: q.Inner, Items: make([]EnvelopeItem, len(candIdx))}
	for j, i := range candIdx {
		sub.Items[j] = q.Items[i]
	}
	out, err := EvalEnvelope(sub, opts...)
	if err != nil {
		return SampledEnvelope{}, err
	}
	r := *out.Result.Envelope
	// Remap the sub-sweep's coordinates back to the full space: witness
	// indices through the candidate table, the total to all assignments.
	// Witness names and skip labels are assignment strings, already
	// global.
	if r.MinIndex >= 0 {
		r.MinIndex = candIdx[r.MinIndex]
	}
	if r.MaxIndex >= 0 {
		r.MaxIndex = candIdx[r.MaxIndex]
	}
	r.Total = len(q.Items)
	return SampledEnvelope{Range: r, Pruned: pruned, Estimates: ests, Err: out.Result.Err, Status: out.Status}, nil
}
