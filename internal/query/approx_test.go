package query

import (
	"context"
	"math/big"
	"strings"
	"testing"

	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/montecarlo"
	"pak/internal/paper"
	"pak/internal/randsys"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// approxBatch is a mixed workload: four approximable queries plus two
// kinds the tier must pass through to exact evaluation untouched.
func approxBatch() []Query {
	phi := bothFire()
	return []Query{
		ConstraintQuery{Fact: phi, Agent: "Alice", Action: "fire"},
		ExpectationQuery{Fact: phi, Agent: "Alice", Action: "fire"},
		ThresholdQuery{Fact: phi, Agent: "Alice", Action: "fire", P: ratutil.R(95, 100)},
		BeliefQuery{Fact: phi, Agent: "Alice", Local: "t2|go=1,sent,recv=Yes"},
		TheoremQuery{Theorem: TheoremExpectation, Fact: phi, Agent: "Alice", Action: "fire"},
		IndependenceQuery{Fact: phi, Agent: "Alice", Action: "fire"},
	}
}

// TestApproxFrameOrdering pins the emission contract: under WithApprox
// every approximable slot emits its approx frame strictly before its
// exact frame, unsupported slots emit exactly one exact-stage frame,
// and the stream still ends with exactly one terminal frame.
func TestApproxFrameOrdering(t *testing.T) {
	e := fsEngine(t)
	qs := approxBatch()
	spec := ApproxSpec{Samples: 200, Seed: 7}

	type seen struct{ stages []Stage }
	slots := make([]seen, len(qs))
	terminals := 0
	for f := range EvalStream(e, qs, WithApprox(spec), WithParallelism(4)) {
		if f.Terminal() {
			terminals++
			if f.Status != StreamComplete {
				t.Fatalf("terminal status = %q, want complete", f.Status)
			}
			continue
		}
		slots[f.Index].stages = append(slots[f.Index].stages, f.Stage)
		switch f.Stage {
		case StageApprox:
			if f.Result.Estimate == nil {
				t.Errorf("slot %d: approx frame without estimate", f.Index)
			}
			if f.Result.Err != nil {
				t.Errorf("slot %d: approx frame error: %v", f.Index, f.Result.Err)
			}
		case StageExact:
			if CanApprox(qs[f.Index]) {
				if f.Result.Estimate == nil {
					t.Errorf("slot %d: exact frame lost its estimate", f.Index)
				}
				if covered, ok := f.Result.Flags[FlagCICovered]; !ok {
					t.Errorf("slot %d: exact frame missing the %s self-check", f.Index, FlagCICovered)
				} else if !covered {
					t.Errorf("slot %d: exact value escaped the CI (seeded run, should be deterministic-covered)", f.Index)
				}
			} else if f.Result.Estimate != nil {
				t.Errorf("slot %d: non-approximable slot carries an estimate", f.Index)
			}
		default:
			t.Errorf("slot %d: frame without stage under WithApprox", f.Index)
		}
	}
	if terminals != 1 {
		t.Fatalf("saw %d terminal frames, want 1", terminals)
	}
	for i, s := range slots {
		want := []Stage{StageExact}
		if CanApprox(qs[i]) {
			want = []Stage{StageApprox, StageExact}
		}
		if len(s.stages) != len(want) {
			t.Fatalf("slot %d: stages %v, want %v", i, s.stages, want)
		}
		for j := range want {
			if s.stages[j] != want[j] {
				t.Fatalf("slot %d: stages %v, want %v", i, s.stages, want)
			}
		}
	}
}

// TestApproxDeterminism is the tentpole's non-negotiable: same seed and
// budget give byte-identical estimates — serial vs parallel vs a rerun,
// on both the approx and the refined frames.
func TestApproxDeterminism(t *testing.T) {
	e := fsEngine(t)
	qs := approxBatch()
	spec := ApproxSpec{Eps: ratutil.R(1, 10), Delta: ratutil.R(1, 100), Seed: 42}

	collect := func(par int) map[string]string {
		frames := make(map[string]string)
		for f := range EvalStream(e, qs, WithApprox(spec), WithParallelism(par)) {
			if f.Terminal() {
				continue
			}
			frames[string(f.Stage)+"/"+docKey(f.Index)] = docJSON(t, f.Result)
		}
		return frames
	}
	serial := collect(1)
	parallel := collect(8)
	rerun := collect(8)
	if len(serial) == 0 {
		t.Fatal("no frames collected")
	}
	for k, v := range serial {
		if parallel[k] != v {
			t.Errorf("%s: parallel differs from serial:\nserial:   %s\nparallel: %s", k, v, parallel[k])
		}
		if rerun[k] != v {
			t.Errorf("%s: rerun differs:\nfirst: %s\nrerun: %s", k, v, rerun[k])
		}
	}
	if len(parallel) != len(serial) || len(rerun) != len(serial) {
		t.Fatalf("frame counts differ: serial %d, parallel %d, rerun %d", len(serial), len(parallel), len(rerun))
	}
}

func docKey(i int) string { return string(rune('0' + i)) }

// TestApproxBatchLastFrameWins: the buffered consumers keep the refined
// exact value, identical to a non-approx run, with the estimate riding
// along.
func TestApproxBatchLastFrameWins(t *testing.T) {
	e := fsEngine(t)
	qs := approxBatch()
	exact, err := EvalBatch(e, qs)
	if err != nil {
		t.Fatal(err)
	}
	approxed, err := EvalBatch(e, qs, WithApprox(ApproxSpec{Samples: 150, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if exact[i].Value != nil && approxed[i].Value.Cmp(exact[i].Value) != 0 {
			t.Errorf("slot %d: refined value %s != exact value %s", i, approxed[i].Value.RatString(), exact[i].Value.RatString())
		}
		if CanApprox(qs[i]) {
			if approxed[i].Estimate == nil {
				t.Errorf("slot %d: batch result lost the estimate", i)
			}
			if !approxed[i].Flags[FlagCICovered] {
				t.Errorf("slot %d: self-check flag not set/true", i)
			}
		}
	}
}

// TestApproxOnly: with Only set, supported slots answer from samples
// alone (no exact work, Value = point estimate), unsupported kinds
// still evaluate exactly.
func TestApproxOnly(t *testing.T) {
	e := fsEngine(t)
	qs := approxBatch()
	results, err := EvalBatch(e, qs, WithApprox(ApproxSpec{Samples: 100, Seed: 5, Only: true}))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if CanApprox(qs[i]) {
			if res.Estimate == nil {
				t.Fatalf("slot %d: approx-only result has no estimate", i)
			}
			if res.Value == nil || res.Value.Cmp(res.Estimate.P) != 0 {
				t.Errorf("slot %d: headline value %v != point estimate %s", i, res.Value, res.Estimate.P.RatString())
			}
			if _, ok := res.Flags[FlagCICovered]; ok {
				t.Errorf("slot %d: approx-only result claims a self-check that never ran", i)
			}
		} else if res.Estimate != nil {
			t.Errorf("slot %d: unsupported kind got an estimate", i)
		}
	}
}

// TestApproxDeadlineMidRefinement is the soundness half of the deadline
// contract: when the context dies between a slot's approx emission and
// its exact refinement, the approx frame stands as the slot's final
// answer — one frame, estimate intact, no error — and the terminal
// frame reports the deadline. The test-only refinement gate makes the
// cut deterministic: it blocks until the context is cancelled (with a
// DeadlineExceeded cause), so the exact pass can never start early.
func TestApproxDeadlineMidRefinement(t *testing.T) {
	e := fsEngine(t)
	qs := []Query{
		ConstraintQuery{Fact: bothFire(), Agent: "Alice", Action: "fire"},
		ExpectationQuery{Fact: bothFire(), Agent: "Alice", Action: "fire"},
	}
	last := len(qs) - 1
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	SetApproxRefineGate(func(gctx context.Context, sys, idx int) {
		if idx == last {
			cancel(context.DeadlineExceeded)
			<-gctx.Done()
		}
	})
	defer SetApproxRefineGate(nil)

	var frames []Frame
	var terminal Frame
	for f := range EvalStream(e, qs, WithApprox(ApproxSpec{Samples: 120, Seed: 9}), WithParallelism(1), WithContext(ctx)) {
		if f.Terminal() {
			terminal = f
			continue
		}
		frames = append(frames, f)
	}
	if terminal.Status != StreamDeadline {
		t.Fatalf("terminal status = %q, want deadline", terminal.Status)
	}
	// Slot 0 completed both stages before the cut; the last slot's
	// approx frame is its final answer — no exact frame overwrites it.
	if len(frames) != 3 {
		t.Fatalf("got %d result frames, want 3 (approx+exact for slot 0, approx only for slot %d)", len(frames), last)
	}
	var lastStages []Stage
	for _, f := range frames {
		if f.Index == last {
			lastStages = append(lastStages, f.Stage)
		}
		if f.Result.Err != nil {
			t.Errorf("slot %d stage %q: unexpected error %v", f.Index, f.Stage, f.Result.Err)
		}
		if f.Result.Estimate == nil {
			t.Errorf("slot %d stage %q: missing estimate", f.Index, f.Stage)
		}
	}
	if len(lastStages) != 1 || lastStages[0] != StageApprox {
		t.Fatalf("deadline-cut slot emitted stages %v, want exactly [approx] (the estimate must stand, not be overwritten)", lastStages)
	}

	// The batch consumer sees the estimate as the cut slot's result: a
	// sound answer, not an error.
	ctx2, cancel2 := context.WithCancelCause(context.Background())
	defer cancel2(nil)
	SetApproxRefineGate(func(gctx context.Context, sys, idx int) {
		if idx == last {
			cancel2(context.DeadlineExceeded)
			<-gctx.Done()
		}
	})
	results, err := EvalBatch(e, qs, WithApprox(ApproxSpec{Samples: 120, Seed: 9}), WithParallelism(1), WithContext(ctx2))
	if err != nil {
		t.Fatalf("EvalBatch error = %v, want nil (approx answers are sound)", err)
	}
	for i, res := range results {
		if res.Err != nil || res.Estimate == nil {
			t.Errorf("slot %d: result = (err %v, estimate %v), want sound estimate", i, res.Err, res.Estimate)
		}
	}
	if _, ok := results[last].Flags[FlagCICovered]; ok {
		t.Errorf("cut slot claims a self-check that never ran")
	}
}

// TestApproxBadSpec: an invalid spec fails every slot in place, keeping
// the one-frame-per-slot floor and the terminal frame.
func TestApproxBadSpec(t *testing.T) {
	e := fsEngine(t)
	qs := approxBatch()
	for name, spec := range map[string]ApproxSpec{
		"no-eps-no-samples": {},
		"bad-delta":         {Samples: 10, Delta: ratutil.R(3, 2)},
		"bad-eps":           {Eps: ratutil.R(2, 1)},
		"negative-samples":  {Samples: -5},
	} {
		frames := 0
		for f := range EvalStream(e, qs, WithApprox(spec)) {
			if f.Terminal() {
				continue
			}
			frames++
			if f.Result.Err == nil {
				t.Errorf("%s: slot %d evaluated despite invalid spec", name, f.Index)
			}
		}
		if frames != len(qs) {
			t.Errorf("%s: %d frames, want one per slot (%d)", name, frames, len(qs))
		}
		if _, err := EvalBatch(e, qs, WithApprox(spec)); err == nil {
			t.Errorf("%s: batch error = nil, want the spec validation error", name)
		}
	}
}

// TestApproxCISoundnessSeedSweep is the CI-soundness satellite: across
// a fixed sweep of seeds and a table of (system, query) pairs, the
// exact value must fall inside the (ε, δ)-interval at at least the
// claimed rate. The sweep is fixed, so the observed miss count is a
// deterministic constant — the test can never flake; it fails only if
// the estimator or the interval computation actually regresses.
func TestApproxCISoundnessSeedSweep(t *testing.T) {
	type target struct {
		name   string
		engine *core.Engine
		qs     []Query
	}
	var targets []target

	fs := fsEngine(t)
	targets = append(targets, target{"firing-squad", fs, approxBatch()[:4]})

	nsys, err := scenarios.NFiringSquadSystem(3, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	all := scenarios.AllFireFact(3)
	targets = append(targets, target{"nsquad3", core.New(nsys), []Query{
		ConstraintQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		ExpectationQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		ThresholdQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire, P: ratutil.R(1, 2)},
	}})

	// randsys-fuzzed targets: random systems, random past-based facts,
	// all from pinned seeds.
	for _, sysSeed := range []int64{11, 23, 37} {
		sys, err := randsys.Generate(randsys.Default(sysSeed))
		if err != nil {
			t.Fatal(err)
		}
		fact := randsys.PastFact(sys, sysSeed+100)
		targets = append(targets, target{"randsys", core.New(sys), []Query{
			ConstraintQuery{Fact: fact, Agent: "a0", Action: randsys.DesignatedAction},
			ExpectationQuery{Fact: fact, Agent: "a0", Action: randsys.DesignatedAction},
			ThresholdQuery{Fact: fact, Agent: "a0", Action: randsys.DesignatedAction, P: ratutil.R(1, 2)},
		}})
	}

	delta := ratutil.R(1, 100)
	trials, misses := 0, 0
	for _, tg := range targets {
		for seed := int64(1); seed <= 20; seed++ {
			results, err := EvalBatch(tg.engine, tg.qs,
				WithApprox(ApproxSpec{Samples: 150, Delta: delta, Seed: seed}))
			if err != nil {
				t.Fatalf("%s seed %d: %v", tg.name, seed, err)
			}
			for i, res := range results {
				if res.Estimate == nil {
					t.Fatalf("%s seed %d slot %d: no estimate", tg.name, seed, i)
				}
				trials++
				if !res.Flags[FlagCICovered] {
					misses++
				}
				// The flag must agree with a direct interval check.
				if res.Flags[FlagCICovered] != res.Estimate.Contains(res.Value) {
					t.Fatalf("%s seed %d slot %d: self-check flag disagrees with Contains", tg.name, seed, i)
				}
			}
		}
	}
	// δ = 1/100 per interval; the binomial expectation over `trials`
	// intervals is trials/100. The observed count is a deterministic
	// constant of the pinned sweep; 3% headroom keeps the assertion
	// meaningful without tying it to one rng implementation detail.
	if limit := trials * 3 / 100; misses > limit {
		t.Fatalf("CI missed the exact value %d/%d times, more than the %d allowed at delta=1/100", misses, trials, limit)
	}
	if trials == 0 {
		t.Fatal("no trials ran")
	}
	t.Logf("CI coverage: %d/%d misses across the pinned sweep", misses, trials)
}

// TestApproxNoHitsConditioning: a conditioning event the sample never
// hits yields the trivially sound [0,1] estimate, not an error.
func TestApproxNoHitsConditioning(t *testing.T) {
	// In the firing squad with loss 1, the General's order never
	// arrives... but "fire" stays proper via the General itself. Use a
	// tiny budget instead against a rarely-reached local state.
	sys, err := paper.FiringSquad(ratutil.R(999, 1000), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	q := BeliefQuery{Fact: bothFire(), Agent: "Alice", Local: "t2|go=1,sent,recv=Yes"}
	// With loss 999/1000 the receiving state is sampled essentially
	// never at 50 samples; seed 1 is pinned, so the outcome is fixed.
	results, err := EvalBatch(e, []Query{q}, WithApprox(ApproxSpec{Samples: 50, Seed: 1, Only: true}))
	if err != nil {
		t.Fatal(err)
	}
	est := results[0].Estimate
	if est == nil {
		t.Fatal("no estimate")
	}
	if est.N != 0 {
		t.Skipf("seed 1 reached the rare state %d times; the trivial-interval path needs N=0", est.N)
	}
	if est.Lo.Sign() != 0 || est.Hi.Cmp(ratutil.One()) != 0 {
		t.Fatalf("N=0 interval = [%s, %s], want [0, 1]", est.Lo.RatString(), est.Hi.RatString())
	}
}

// fsEnvelopeItems builds a three-assignment loss sweep over the firing
// squad with well-separated exact values (1, 3/4, 19/100), so a modest
// sample budget separates the middle assignment's interval from both
// certain bounds and the coarse pass can prune it.
func fsEnvelopeItems(t *testing.T) []EnvelopeItem {
	t.Helper()
	var items []EnvelopeItem
	for _, loss := range []string{"0", "1/2", "9/10"} {
		sys, err := paper.FiringSquad(ratutil.MustParse(loss), paper.FSOriginal)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, EnvelopeItem{
			Assignment: "loss=" + loss,
			Spec:       "fsquad(loss=" + loss + ")",
			Engine:     core.New(sys),
		})
	}
	return items
}

// TestEnvelopeSampledMatchesFullSweep: the sampled-first sweep must
// reproduce the exhaustive envelope exactly — bounds, witnesses,
// indices — while actually pruning the interior assignment.
func TestEnvelopeSampledMatchesFullSweep(t *testing.T) {
	inner := ConstraintQuery{Fact: bothFire(), Agent: "Alice", Action: "fire"}
	q := EnvelopeQuery{Inner: inner, Items: fsEnvelopeItems(t)}

	full, err := EvalEnvelope(q)
	if err != nil {
		t.Fatal(err)
	}
	if full.Result.Err != nil {
		t.Fatal(full.Result.Err)
	}
	want := *full.Result.Envelope

	spec := ApproxSpec{Samples: 800, Delta: ratutil.R(1, 100), Seed: 17}
	got, err := EvalEnvelopeSampled(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if got.Range.Min.Cmp(want.Min) != 0 || got.Range.Max.Cmp(want.Max) != 0 {
		t.Fatalf("sampled envelope [%s, %s] != full sweep [%s, %s]",
			got.Range.Min.RatString(), got.Range.Max.RatString(), want.Min.RatString(), want.Max.RatString())
	}
	if got.Range.ArgMin != want.ArgMin || got.Range.ArgMax != want.ArgMax ||
		got.Range.MinIndex != want.MinIndex || got.Range.MaxIndex != want.MaxIndex {
		t.Fatalf("witnesses (%s #%d, %s #%d) != full sweep (%s #%d, %s #%d)",
			got.Range.ArgMin, got.Range.MinIndex, got.Range.ArgMax, got.Range.MaxIndex,
			want.ArgMin, want.MinIndex, want.ArgMax, want.MaxIndex)
	}
	if got.Range.Total != len(q.Items) {
		t.Fatalf("Total = %d, want %d", got.Range.Total, len(q.Items))
	}
	// The interior assignment (µ = 3/4, a quarter away from either
	// bound, radius ≈ 0.058 at n=800) must be pruned: its exact
	// evaluation never ran.
	if len(got.Pruned) != 1 || got.Pruned[0] != "loss=1/2" {
		t.Fatalf("Pruned = %v, want exactly [loss=1/2]", got.Pruned)
	}
	if got.Range.Visited != 2 {
		t.Fatalf("Visited = %d, want 2 (the pruned assignment must not be exactly evaluated)", got.Range.Visited)
	}

	// Determinism: the same spec reproduces the same pruning decision
	// and estimates.
	again, err := EvalEnvelopeSampled(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(again.Pruned, ",") != strings.Join(got.Pruned, ",") {
		t.Fatalf("pruning not deterministic: %v vs %v", again.Pruned, got.Pruned)
	}
	for i := range got.Estimates {
		if (got.Estimates[i] == nil) != (again.Estimates[i] == nil) {
			t.Fatalf("estimate presence differs at %d", i)
		}
		if got.Estimates[i] != nil && got.Estimates[i].P.Cmp(again.Estimates[i].P) != 0 {
			t.Fatalf("estimate %d differs across reruns", i)
		}
	}

}

// TestEnvelopeSampledFallback: a non-approximable inner query falls
// back to the exhaustive sweep with an empty pruning ledger.
func TestEnvelopeSampledFallback(t *testing.T) {
	inner := MetricQuery{Name: "µ(both|fire)", Fn: func(e *core.Engine) (*big.Rat, error) {
		return e.ConstraintProb(bothFire(), "Alice", "fire")
	}}
	q := EnvelopeQuery{Inner: inner, Items: fsEnvelopeItems(t)}
	full, err := EvalEnvelope(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalEnvelopeSampled(q, ApproxSpec{Samples: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Pruned != nil || got.Estimates != nil {
		t.Fatalf("fallback must not sample: pruned %v, estimates %v", got.Pruned, got.Estimates)
	}
	want := *full.Result.Envelope
	if got.Range.Min.Cmp(want.Min) != 0 || got.Range.Max.Cmp(want.Max) != 0 || got.Range.Visited != want.Visited {
		t.Fatalf("fallback envelope differs from EvalEnvelope")
	}
}

// TestModelInjection: a MultiItem carrying a prebuilt Model produces
// byte-identical estimates to one without, proving the cache-injected
// model changes performance only.
func TestModelInjection(t *testing.T) {
	e := fsEngine(t)
	qs := approxBatch()[:4]
	spec := ApproxSpec{Samples: 100, Seed: 13}

	collect := func(items []MultiItem) []string {
		var out []string
		results, err := MultiBatch(items, WithApprox(spec))
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range results[0] {
			out = append(out, docJSON(t, res))
		}
		return out
	}
	plain := collect([]MultiItem{{Engine: e, Queries: qs}})
	injected := collect([]MultiItem{{Engine: e, Queries: qs, Model: montecarlo.NewModel(e.System())}})
	for i := range plain {
		if plain[i] != injected[i] {
			t.Errorf("slot %d: injected-model result differs:\nplain:    %s\ninjected: %s", i, plain[i], injected[i])
		}
	}
}

// TestSlotSeedStability pins the per-slot seed mix: these constants are
// part of the reproducibility contract (a stored EstimateDoc names its
// seed; replaying it must regenerate the same bytes), so any change to
// the mixing function is a deliberate wire break.
func TestSlotSeedStability(t *testing.T) {
	cases := []struct {
		base     int64
		sys, idx int
		want     int64
	}{
		{1, 0, 0, slotSeed(1, 0, 0)}, // self-consistency anchors
		{1, 0, 1, slotSeed(1, 0, 1)}, // (collisions checked below)
	}
	for _, c := range cases {
		if got := slotSeed(c.base, c.sys, c.idx); got != c.want {
			t.Fatalf("slotSeed(%d,%d,%d) unstable within one run", c.base, c.sys, c.idx)
		}
	}
	seen := make(map[int64]bool)
	for sys := 0; sys < 8; sys++ {
		for idx := 0; idx < 64; idx++ {
			s := slotSeed(42, sys, idx)
			if seen[s] {
				t.Fatalf("seed collision at (%d,%d)", sys, idx)
			}
			seen[s] = true
		}
	}
	if slotSeed(1, 2, 3) == slotSeed(2, 2, 3) {
		t.Fatal("base seed does not influence slot seed")
	}
}

// TestBeliefByActionNotApproximable: BeliefQuery without a Local targets
// per-state maps, which have no single [0,1] estimand; the tier must
// route it to exact evaluation.
func TestBeliefByActionNotApproximable(t *testing.T) {
	if CanApprox(BeliefQuery{Fact: logic.Does("Bob", "fire"), Agent: "Alice", Action: "fire"}) {
		t.Fatal("belief-by-action must not be approximable")
	}
	if !CanApprox(BeliefQuery{Fact: logic.Does("Bob", "fire"), Agent: "Alice", Local: "x"}) {
		t.Fatal("belief-at-local must be approximable")
	}
}
