package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"pak/internal/core"
	"pak/internal/encode"
	"pak/internal/logic"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// fsEngine returns an engine over the paper's Example 1 firing squad
// (loss 1/10, original variant).
func fsEngine(t testing.TB) *core.Engine {
	t.Helper()
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	return core.New(sys)
}

// bothFire is φ_both: Alice and Bob both fire now.
func bothFire() logic.Fact {
	return logic.And(logic.Does("Alice", "fire"), logic.Does("Bob", "fire"))
}

// allKinds returns one well-formed query of every kind (and every
// theorem) over the firing squad, all built from structural facts so
// they serialize.
func allKinds() []Query {
	phi := bothFire()
	return []Query{
		BeliefQuery{Fact: logic.Does("Bob", "fire"), Agent: "Alice", Action: "fire"},
		BeliefQuery{Fact: phi, Agent: "Alice", Local: "t2|go=1,sent,recv=Yes"},
		ConstraintQuery{Fact: phi, Agent: "Alice", Action: "fire", Threshold: ratutil.R(95, 100)},
		ConstraintQuery{Fact: phi, Agent: "Alice", Action: "fire"},
		ExpectationQuery{Fact: phi, Agent: "Alice", Action: "fire"},
		ThresholdQuery{Fact: phi, Agent: "Alice", Action: "fire", P: ratutil.R(95, 100)},
		TheoremQuery{Theorem: TheoremSufficiency, Fact: phi, Agent: "Alice", Action: "fire", P: ratutil.R(9, 10)},
		TheoremQuery{Theorem: TheoremNecessity, Fact: phi, Agent: "Alice", Action: "fire", P: ratutil.R(9, 10)},
		TheoremQuery{Theorem: TheoremExpectation, Fact: phi, Agent: "Alice", Action: "fire"},
		TheoremQuery{Theorem: TheoremPAK, Fact: phi, Agent: "Alice", Action: "fire",
			Delta: ratutil.R(1, 10), Eps: ratutil.R(1, 10)},
		TheoremQuery{Theorem: TheoremPAK, Fact: phi, Agent: "Alice", Action: "fire", Eps: ratutil.R(1, 10)},
		TheoremQuery{Theorem: TheoremKoP, Fact: phi, Agent: "Alice", Action: "fire"},
		IndependenceQuery{Fact: phi, Agent: "Alice", Action: "fire"},
		TimelineQuery{Fact: logic.Performed("Bob", "fire"), Agent: "Alice", Run: 0},
	}
}

// TestEvalKnownValues pins the paper's Example 1 numbers through the
// query layer: µ = 99/100, E[β] = 99/100, µ(β ≥ 0.95 | α) = 991/1000.
func TestEvalKnownValues(t *testing.T) {
	e := fsEngine(t)
	phi := bothFire()

	cons, err := Eval(e, ConstraintQuery{Fact: phi, Agent: "Alice", Action: "fire", Threshold: ratutil.R(95, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if want := ratutil.R(99, 100); cons.Value.Cmp(want) != 0 {
		t.Errorf("µ = %s, want %s", cons.Value.RatString(), want.RatString())
	}
	if !cons.Passed() {
		t.Errorf("constraint verdict = %s, want pass", cons.Verdict)
	}
	if cons.Witness == nil || cons.Witness.IsEmpty() {
		t.Error("constraint witness missing")
	}

	exp, err := Eval(e, ExpectationQuery{Fact: phi, Agent: "Alice", Action: "fire"})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Value.Cmp(cons.Value) != 0 {
		t.Errorf("Theorem 6.2 broken through the query layer: E[β] = %s ≠ µ = %s",
			exp.Value.RatString(), cons.Value.RatString())
	}

	th, err := Eval(e, ThresholdQuery{Fact: phi, Agent: "Alice", Action: "fire", P: ratutil.R(95, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if want := ratutil.R(991, 1000); th.Value.Cmp(want) != 0 {
		t.Errorf("µ(β ≥ 0.95 | α) = %s, want %s", th.Value.RatString(), want.RatString())
	}

	bel, err := Eval(e, BeliefQuery{Fact: phi, Agent: "Alice", Action: "fire"})
	if err != nil {
		t.Fatal(err)
	}
	// Alice fires in three information states with beliefs {1, 0, 99/100}.
	if len(bel.Values) != 3 {
		t.Errorf("belief values = %d entries, want 3", len(bel.Values))
	}
	sawZero, sawOne := false, false
	for _, v := range bel.Values {
		sawZero = sawZero || v.Sign() == 0
		sawOne = sawOne || ratutil.IsOne(v)
	}
	if !sawZero || !sawOne {
		t.Errorf("belief values missing extremes {0, 1}: %v", bel.Values)
	}

	indep, err := Eval(e, IndependenceQuery{Fact: phi, Agent: "Alice", Action: "fire"})
	if err != nil {
		t.Fatal(err)
	}
	if !indep.Passed() || !indep.Flags["independent"] {
		t.Errorf("independence verdict = %s flags = %v, want pass", indep.Verdict, indep.Flags)
	}
}

// TestTheoremVerdictsPass checks every theorem holds on the firing squad
// through the query layer.
func TestTheoremVerdictsPass(t *testing.T) {
	e := fsEngine(t)
	for _, q := range allKinds() {
		tq, ok := q.(TheoremQuery)
		if !ok {
			continue
		}
		res, err := Eval(e, tq)
		if err != nil {
			t.Fatalf("%s: %v", tq, err)
		}
		if !res.Passed() {
			t.Errorf("%s: verdict = %s, want pass (%s)", tq, res.Verdict, res.Detail)
		}
	}
}

// TestRoundTrip marshals every query kind to JSON, parses it back,
// re-marshals, and requires (a) byte-identical documents and (b)
// identical evaluation results on both sides.
func TestRoundTrip(t *testing.T) {
	e := fsEngine(t)
	for i, q := range allKinds() {
		data, err := Marshal(q)
		if err != nil {
			t.Fatalf("query %d (%s): marshal: %v", i, q, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("query %d (%s): parse: %v", i, q, err)
		}
		again, err := Marshal(back)
		if err != nil {
			t.Fatalf("query %d (%s): re-marshal: %v", i, q, err)
		}
		if string(data) != string(again) {
			t.Errorf("query %d (%s): round-trip drift:\n%s\nvs\n%s", i, q, data, again)
		}
		want, err := Eval(e, q)
		if err != nil {
			t.Fatalf("query %d (%s): eval original: %v", i, q, err)
		}
		got, err := Eval(e, back)
		if err != nil {
			t.Fatalf("query %d (%s): eval round-tripped: %v", i, q, err)
		}
		requireSameResult(t, fmt.Sprintf("query %d (%s)", i, q), want, got)
	}
}

// TestBatchRoundTrip round-trips the whole list as one batch document.
func TestBatchRoundTrip(t *testing.T) {
	qs := allKinds()
	data, err := MarshalBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(qs) {
		t.Fatalf("batch round-trip: %d queries, want %d", len(back), len(qs))
	}
	again, err := MarshalBatch(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Error("batch round-trip drift")
	}
	// The document must be a plain JSON array.
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("batch document is not a JSON array: %v", err)
	}
}

// TestOpaqueFactRefusesToSerialize pins the documented limitation: Atom
// facts evaluate but do not marshal.
func TestOpaqueFactRefusesToSerialize(t *testing.T) {
	e := fsEngine(t)
	q := ConstraintQuery{
		Fact:   logic.Atom("opaque", func(*pps.System, pps.RunID, int) bool { return true }),
		Agent:  "Alice",
		Action: "fire",
	}
	if _, err := Eval(e, q); err != nil {
		t.Fatalf("opaque fact should evaluate: %v", err)
	}
	if _, err := Marshal(q); !errors.Is(err, encode.ErrOpaqueFact) {
		t.Fatalf("marshal of opaque fact: err = %v, want ErrOpaqueFact", err)
	}
}

// requireSameResult compares two results for exact agreement: values by
// Rat.Cmp, verdicts, flags, witnesses and timelines.
func requireSameResult(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Kind != b.Kind || a.Verdict != b.Verdict {
		t.Errorf("%s: kind/verdict mismatch: (%s, %s) vs (%s, %s)", label, a.Kind, a.Verdict, b.Kind, b.Verdict)
	}
	if (a.Value == nil) != (b.Value == nil) {
		t.Errorf("%s: value presence mismatch", label)
	} else if a.Value != nil && a.Value.Cmp(b.Value) != 0 {
		t.Errorf("%s: value %s vs %s", label, a.Value.RatString(), b.Value.RatString())
	}
	if len(a.Values) != len(b.Values) {
		t.Errorf("%s: values size %d vs %d", label, len(a.Values), len(b.Values))
	}
	for k, av := range a.Values {
		bv, ok := b.Values[k]
		if !ok {
			t.Errorf("%s: values[%q] missing on one side", label, k)
			continue
		}
		if av.Cmp(bv) != 0 {
			t.Errorf("%s: values[%q] = %s vs %s", label, k, av.RatString(), bv.RatString())
		}
	}
	if len(a.Flags) != len(b.Flags) {
		t.Errorf("%s: flags size %d vs %d", label, len(a.Flags), len(b.Flags))
	}
	for k, av := range a.Flags {
		if bv, ok := b.Flags[k]; !ok || av != bv {
			t.Errorf("%s: flags[%q] = %v vs %v (present %v)", label, k, av, b.Flags[k], ok)
		}
	}
	if (a.Witness == nil) != (b.Witness == nil) {
		t.Errorf("%s: witness presence mismatch", label)
	} else if a.Witness != nil && !a.Witness.Equal(b.Witness) {
		t.Errorf("%s: witness %s vs %s", label, a.Witness, b.Witness)
	}
	if len(a.Timeline) != len(b.Timeline) {
		t.Errorf("%s: timeline length %d vs %d", label, len(a.Timeline), len(b.Timeline))
	}
	for i := range a.Timeline {
		if i >= len(b.Timeline) {
			break
		}
		ap, bp := a.Timeline[i], b.Timeline[i]
		if ap.Time != bp.Time || ap.Local != bp.Local || ap.Knows != bp.Knows || ap.Belief.Cmp(bp.Belief) != 0 {
			t.Errorf("%s: timeline[%d] %s vs %s", label, i, ap, bp)
		}
	}
}

// nsquadWorkload builds the full theorem-check workload over the
// n-agent firing squad: every agent × every theorem plus the supporting
// quantities, the workload the benchmarks and the README's batch
// example use.
func nsquadWorkload(n int) []Query {
	all := scenarios.AllFireFact(n)
	agents := make([]string, 0, n)
	agents = append(agents, scenarios.General)
	for i := 1; i < n; i++ {
		agents = append(agents, fmt.Sprintf("s%d", i))
	}
	var qs []Query
	for _, agent := range agents {
		qs = append(qs,
			ConstraintQuery{Fact: all, Agent: agent, Action: scenarios.ActFire, Threshold: ratutil.R(1, 2)},
			ExpectationQuery{Fact: all, Agent: agent, Action: scenarios.ActFire},
			ThresholdQuery{Fact: all, Agent: agent, Action: scenarios.ActFire, P: ratutil.R(9, 10)},
			IndependenceQuery{Fact: all, Agent: agent, Action: scenarios.ActFire},
			TheoremQuery{Theorem: TheoremSufficiency, Fact: all, Agent: agent, Action: scenarios.ActFire, P: ratutil.R(1, 2)},
			TheoremQuery{Theorem: TheoremNecessity, Fact: all, Agent: agent, Action: scenarios.ActFire, P: ratutil.R(1, 2)},
			TheoremQuery{Theorem: TheoremExpectation, Fact: all, Agent: agent, Action: scenarios.ActFire},
			TheoremQuery{Theorem: TheoremPAK, Fact: all, Agent: agent, Action: scenarios.ActFire, Eps: ratutil.R(1, 4)},
			TheoremQuery{Theorem: TheoremKoP, Fact: all, Agent: agent, Action: scenarios.ActFire},
		)
	}
	return qs
}

// TestEvalBatchParallelMatchesSerial is the core batch invariant: a
// parallel batch over a shared engine returns results exactly equal
// (Rat.Cmp == 0 everywhere) to a serial Eval loop, in the same order.
func TestEvalBatchParallelMatchesSerial(t *testing.T) {
	sys, err := scenarios.NFiringSquadSystem(4, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	qs := nsquadWorkload(4)

	serialEngine := core.New(sys)
	want := make([]Result, len(qs))
	for i, q := range qs {
		res, evalErr := Eval(serialEngine, q)
		if evalErr != nil {
			t.Fatalf("serial eval %d (%s): %v", i, q, evalErr)
		}
		want[i] = res
	}

	for _, cached := range []bool{true, false} {
		got, batchErr := EvalBatch(core.New(sys), qs, WithParallelism(8), WithCache(cached))
		if batchErr != nil {
			t.Fatalf("batch (cache=%v): %v", cached, batchErr)
		}
		if len(got) != len(want) {
			t.Fatalf("batch (cache=%v): %d results, want %d", cached, len(got), len(want))
		}
		for i := range want {
			requireSameResult(t, fmt.Sprintf("cache=%v query %d (%s)", cached, i, qs[i]), want[i], got[i])
		}
	}
}

// TestEvalBatchRace exercises the batched firing-squad workload under
// heavy parallelism with an aggressively shared engine; run with -race
// it doubles as the engine's concurrency-safety proof.
func TestEvalBatchRace(t *testing.T) {
	sys, err := scenarios.NFiringSquadSystem(3, ratutil.R(1, 10), true)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	qs := nsquadWorkload(3)
	// Duplicate the workload so many goroutines hit the same cache keys.
	qs = append(qs, qs...)
	qs = append(qs, qs...)
	results, err := EvalBatch(e, qs, WithParallelism(16))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicated queries must agree with their originals exactly.
	quarter := len(results) / 4
	for i := 0; i < quarter; i++ {
		for _, dup := range []int{i + quarter, i + 2*quarter, i + 3*quarter} {
			requireSameResult(t, fmt.Sprintf("dup %d vs %d", i, dup), results[i], results[dup])
		}
	}
	perf, events, beliefs := e.CacheStats()
	if perf == 0 || events == 0 || beliefs == 0 {
		t.Errorf("expected warm caches, got perf=%d events=%d beliefs=%d", perf, events, beliefs)
	}
}

// TestEvalBatchErrors checks per-query error isolation: a bad query
// reports in its own slot without disturbing its neighbours.
func TestEvalBatchErrors(t *testing.T) {
	e := fsEngine(t)
	phi := bothFire()
	qs := []Query{
		ConstraintQuery{Fact: phi, Agent: "Alice", Action: "fire"},
		ConstraintQuery{Fact: phi, Agent: "Nobody", Action: "fire"},
		ConstraintQuery{Fact: phi}, // invalid: no agent/action
	}
	results, err := EvalBatch(e, qs, WithParallelism(4))
	if err == nil {
		t.Fatal("expected a joined error")
	}
	if results[0].Err != nil || results[0].Value == nil {
		t.Errorf("healthy query disturbed: %+v", results[0])
	}
	if results[1].Err == nil {
		t.Error("unknown-agent query reported no error")
	}
	if results[2].Err == nil {
		t.Error("invalid query reported no error")
	}
}

// TestValidation rejects malformed requests eagerly.
func TestValidation(t *testing.T) {
	e := fsEngine(t)
	bad := []Query{
		BeliefQuery{Fact: bothFire(), Agent: "Alice"},                                                 // neither local nor action
		BeliefQuery{Fact: bothFire(), Agent: "Alice", Local: "x", Action: "fire"},                     // both
		ConstraintQuery{Fact: bothFire(), Agent: "Alice", Action: "fire", Threshold: ratutil.R(3, 2)}, // p > 1
		ThresholdQuery{Fact: bothFire(), Agent: "Alice", Action: "fire"},                              // no p
		TheoremQuery{Theorem: "nope", Fact: bothFire(), Agent: "Alice", Action: "fire"},               // unknown theorem
		TheoremQuery{Theorem: TheoremPAK, Fact: bothFire(), Agent: "Alice", Action: "fire"},           // no eps
		TimelineQuery{Fact: bothFire(), Agent: "Alice", Run: -1},                                      // bad run
	}
	for i, q := range bad {
		if _, err := Eval(e, q); err == nil {
			t.Errorf("bad query %d (%s) accepted", i, q)
		}
	}
}
