package query_test

// The differential harness: the enumeration backend (core.Engine) and
// the LP backend (lpengine.Engine) must be byte-indistinguishable on
// the wire for every LP-supported query shape. TestBackendsAgree holds
// them to identical ResultDoc JSON over every registry scenario's
// declared differential instances — serial, parallel, auto-routed and
// streamed — and the fuzz targets extend the same contract to random
// systems with random structural past-based facts. The tests live in
// package query_test because they consume the registry, which itself
// sits above package query in the import graph.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"testing"

	"pak/internal/core"
	"pak/internal/epistemic"
	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/query"
	"pak/internal/randsys"
	"pak/internal/ratutil"
	"pak/internal/registry"
	"pak/internal/scenarios"
)

// wireJSON renders a Result exactly as the pakd service would put it on
// the wire; two results that agree here are indistinguishable to any
// client.
func wireJSON(t testing.TB, res query.Result) string {
	t.Helper()
	data, err := json.Marshal(query.DocOf(res))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// properPairs discovers the system's proper (agent, action) pairs — the
// pairs every run performs exactly once — by direct scan, independent
// of either engine's properness bookkeeping.
func properPairs(sys *pps.System) [][2]string {
	var pairs [][2]string
	for _, name := range sys.Agents() {
		id, ok := sys.AgentIndex(name)
		if !ok {
			continue
		}
		acts := make(map[string]bool)
		for r := 0; r < sys.NumRuns(); r++ {
			for t := 0; t < sys.RunLen(pps.RunID(r)); t++ {
				if a, performed := sys.Action(pps.RunID(r), t, id); performed && a != "" {
					acts[a] = true
				}
			}
		}
		names := make([]string, 0, len(acts))
		for a := range acts {
			names = append(names, a)
		}
		sort.Strings(names)
		for _, a := range names {
			proper := true
			for r := 0; r < sys.NumRuns() && proper; r++ {
				count := 0
				for t := 0; t < sys.RunLen(pps.RunID(r)); t++ {
					if got, performed := sys.Action(pps.RunID(r), t, id); performed && got == a {
						count++
					}
				}
				proper = count == 1
			}
			if proper {
				pairs = append(pairs, [2]string{name, a})
			}
		}
	}
	return pairs
}

// agentLocals returns the agent's local-state alphabet.
func agentLocals(sys *pps.System, agent string) []string {
	id, ok := sys.AgentIndex(agent)
	if !ok {
		return nil
	}
	return sys.LocalStates(id)
}

// supportedBatch assembles, from the system's own structure, a batch of
// queries the LP backend claims to answer — every shape (belief at a
// local, belief by acting states, constraint with and without
// threshold, threshold at the probability extremes) over a spread of
// past-based facts, plus deliberate error shapes (unknown agent,
// unknown local) whose failures must also match byte for byte.
func supportedBatch(t testing.TB, sys *pps.System) []query.Query {
	t.Helper()
	agents := sys.Agents()
	if len(agents) == 0 {
		t.Fatal("system has no agents")
	}
	a0 := agents[0]
	locals := agentLocals(sys, a0)
	if len(locals) == 0 {
		t.Fatalf("agent %q has no local states", a0)
	}

	facts := []logic.Fact{
		logic.True(),
		logic.False(),
		logic.LocalIs(a0, locals[0]),
		logic.Not(logic.LocalContains(a0, locals[0][:1])),
		logic.Once(logic.LocalIs(a0, locals[len(locals)-1])),
		logic.SoFar(logic.Not(logic.LocalContains(a0, "\x00"))),
		logic.Or(logic.TimeIs(0), logic.TimeIs(sys.MaxTime())),
		epistemic.Knows(a0, logic.LocalIs(a0, locals[0])),
	}
	if len(agents) > 1 {
		facts = append(facts, epistemic.Believes(agents[1], ratutil.R(1, 2), logic.LocalIs(a0, locals[0])))
	}

	var qs []query.Query
	for _, f := range facts {
		qs = append(qs, query.BeliefQuery{Fact: f, Agent: a0, Local: locals[0]})
	}
	for _, pair := range properPairs(sys) {
		agent, action := pair[0], pair[1]
		for _, f := range facts[:4] {
			qs = append(qs,
				query.BeliefQuery{Fact: f, Agent: agent, Action: action},
				query.ConstraintQuery{Fact: f, Agent: agent, Action: action},
				query.ConstraintQuery{Fact: f, Agent: agent, Action: action, Threshold: ratutil.R(1, 2)},
			)
			for _, p := range []*big2{{0, 1}, {1, 2}, {1, 1}} {
				qs = append(qs, query.ThresholdQuery{Fact: f, Agent: agent, Action: action, P: ratutil.R(p.a, p.b)})
			}
		}
	}
	// Error shapes: both backends must fail these slots identically.
	qs = append(qs,
		query.BeliefQuery{Fact: logic.True(), Agent: "no-such-agent", Local: locals[0]},
		query.BeliefQuery{Fact: logic.True(), Agent: a0, Local: "no-such-local"},
	)

	for i, q := range qs {
		if !query.CanSolveLP(q) {
			t.Fatalf("batch slot %d (%s) is not LP-supported; the batch must route entirely to lp", i, q)
		}
	}
	return qs
}

// big2 is a numerator/denominator pair (a local helper; big.Rat values
// must not be shared across query slots, so thresholds are minted per
// use).
type big2 struct{ a, b int64 }

// evalFrames reassembles a stream into batch order by frame index.
func evalFrames(t testing.TB, sys *pps.System, qs []query.Query, opts ...query.Option) []query.Result {
	t.Helper()
	out := make([]query.Result, len(qs))
	seen := make([]bool, len(qs))
	for f := range query.EvalStream(core.New(sys), qs, opts...) {
		if f.Terminal() {
			if f.Status != query.StreamComplete {
				t.Fatalf("terminal status %q, want complete", f.Status)
			}
			continue
		}
		if f.Index < 0 || f.Index >= len(qs) || seen[f.Index] {
			t.Fatalf("bad or duplicate frame index %d", f.Index)
		}
		out[f.Index], seen[f.Index] = f.Result, true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("slot %d never emitted", i)
		}
	}
	return out
}

// TestBackendsAgree is the harness gate: for every registry scenario's
// declared differential instances, the LP backend — serial, parallel,
// auto-routed and streamed — returns exactly the bytes the enumeration
// backend returns, on every supported query shape including error
// slots.
func TestBackendsAgree(t *testing.T) {
	reg := registry.Default()
	covered := 0
	for _, s := range reg.Scenarios() {
		if len(s.Differential) == 0 {
			t.Errorf("scenario %q declares no differential instances; every scenario must enroll", s.Name)
			continue
		}
		for _, spec := range s.Differential {
			spec := spec
			covered++
			t.Run(spec, func(t *testing.T) {
				sys, err := reg.Build(spec)
				if err != nil {
					t.Fatalf("build %q: %v", spec, err)
				}
				qs := supportedBatch(t, sys)

				want, _ := query.EvalBatch(core.New(sys), qs, query.WithParallelism(1))
				wantDocs := make([]string, len(want))
				for i, res := range want {
					wantDocs[i] = wireJSON(t, res)
				}

				check := func(mode string, got []query.Result) {
					t.Helper()
					if len(got) != len(wantDocs) {
						t.Fatalf("%s: %d results, want %d", mode, len(got), len(wantDocs))
					}
					for i := range got {
						if doc := wireJSON(t, got[i]); doc != wantDocs[i] {
							t.Errorf("%s slot %d (%s) differs:\nlp:   %s\nenum: %s", mode, i, qs[i], doc, wantDocs[i])
						}
					}
				}

				serial, _ := query.EvalBatch(core.New(sys), qs,
					query.WithParallelism(1), query.WithBackend(query.BackendLP))
				check("serial lp", serial)

				par, _ := query.EvalBatch(core.New(sys), qs,
					query.WithParallelism(4), query.WithBackend(query.BackendLP))
				check("parallel lp", par)

				auto, _ := query.EvalBatch(core.New(sys), qs, query.WithBackend(query.BackendAuto))
				check("auto", auto)

				uncached, _ := query.EvalBatch(core.New(sys), qs,
					query.WithBackend(query.BackendLP), query.WithCache(false))
				check("uncached lp", uncached)

				check("streamed lp", evalFrames(t, sys, qs,
					query.WithParallelism(4), query.WithBackend(query.BackendLP)))
			})
		}
	}
	if covered == 0 {
		t.Fatal("registry declares no differential instances at all")
	}
}

// TestBackendStrictUnsupported pins the strict-lp contract: a query
// outside the LP fragment fails its own slot with
// ErrBackendUnsupported (and only its slot), while auto routes it to
// enumeration and matches the enum bytes.
func TestBackendStrictUnsupported(t *testing.T) {
	sys, err := scenarios.NFiringSquadSystem(2, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	supported := query.ConstraintQuery{Fact: logic.True(), Agent: scenarios.General, Action: scenarios.ActFire}
	unsupported := []query.Query{
		// does reads the future: outside the past-based fragment.
		query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire},
		// expectation has no LP form at all.
		query.ExpectationQuery{Fact: logic.True(), Agent: scenarios.General, Action: scenarios.ActFire},
	}
	qs := append([]query.Query{supported}, unsupported...)

	strict, err := query.EvalBatch(core.New(sys), qs, query.WithBackend(query.BackendLP), query.WithParallelism(1))
	if err == nil {
		t.Fatal("strict lp over unsupported queries returned a nil joined error")
	}
	if strict[0].Err != nil {
		t.Errorf("supported slot was disturbed: %v", strict[0].Err)
	}
	for i := 1; i < len(qs); i++ {
		if !errors.Is(strict[i].Err, query.ErrBackendUnsupported) {
			t.Errorf("slot %d error %v does not wrap ErrBackendUnsupported", i, strict[i].Err)
		}
	}

	enum, err := query.EvalBatch(core.New(sys), qs, query.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	auto, err := query.EvalBatch(core.New(sys), qs, query.WithBackend(query.BackendAuto), query.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if got, want := wireJSON(t, auto[i]), wireJSON(t, enum[i]); got != want {
			t.Errorf("auto slot %d differs from enum:\nauto: %s\nenum: %s", i, got, want)
		}
	}
}

func TestParseBackend(t *testing.T) {
	for s, want := range map[string]query.Backend{
		"":     query.BackendEnum,
		"enum": query.BackendEnum,
		"lp":   query.BackendLP,
		"auto": query.BackendAuto,
	} {
		got, err := query.ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %q, %v; want %q", s, got, err, want)
		}
	}
	if _, err := query.ParseBackend("quantum"); err == nil {
		t.Error("ParseBackend accepted an unknown backend")
	}
}

// differentialOnce is the fuzz body: one random system, one random
// structural past-based fact, both backends, identical bytes — and a
// run-labelled (future-reading, opaque) fact that strict lp must
// reject with the typed error while auto answers it via enumeration.
func differentialOnce(t *testing.T, seed int64) {
	t.Helper()
	if seed < 0 {
		seed = -seed
	}
	cfg := randsys.Default(seed%1000 + 1)
	cfg.DetAction = seed%2 == 0
	sys, err := randsys.Generate(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	a0 := sys.Agents()[0]
	locals := agentLocals(sys, a0)

	past := randsys.StructuredPastFact(sys, seed*31+7)
	qs := []query.Query{
		query.BeliefQuery{Fact: past, Agent: a0, Local: locals[0]},
		query.BeliefQuery{Fact: past, Agent: a0, Action: randsys.DesignatedAction},
		query.ConstraintQuery{Fact: past, Agent: a0, Action: randsys.DesignatedAction},
		query.ThresholdQuery{Fact: past, Agent: a0, Action: randsys.DesignatedAction, P: ratutil.R(1, 2)},
	}
	for i, q := range qs {
		if !query.CanSolveLP(q) {
			t.Fatalf("seed %d: structured past fact rejected by CanSolveLP at slot %d", seed, i)
		}
	}

	enum, _ := query.EvalBatch(core.New(sys), qs, query.WithParallelism(1))
	lp, _ := query.EvalBatch(core.New(sys), qs,
		query.WithParallelism(1), query.WithBackend(query.BackendLP))
	for i := range qs {
		if got, want := wireJSON(t, lp[i]), wireJSON(t, enum[i]); got != want {
			t.Errorf("seed %d slot %d (%s):\nlp:   %s\nenum: %s", seed, i, qs[i], got, want)
		}
	}

	// The opaque run-labelled fact can read the future: CanSolveLP must
	// refuse it, strict lp must fail the slot with the typed error, and
	// auto must fall through to enumeration bytes.
	runQ := query.ConstraintQuery{Fact: randsys.RunFact(sys, seed*13+3), Agent: a0, Action: randsys.DesignatedAction}
	if query.CanSolveLP(runQ) {
		t.Fatalf("seed %d: run-labelled fact passed CanSolveLP", seed)
	}
	strict, _ := query.EvalBatch(core.New(sys), []query.Query{runQ}, query.WithBackend(query.BackendLP))
	if !errors.Is(strict[0].Err, query.ErrBackendUnsupported) {
		t.Errorf("seed %d: strict lp error %v does not wrap ErrBackendUnsupported", seed, strict[0].Err)
	}
	enumRun, _ := query.EvalBatch(core.New(sys), []query.Query{runQ}, query.WithParallelism(1))
	autoRun, _ := query.EvalBatch(core.New(sys), []query.Query{runQ},
		query.WithBackend(query.BackendAuto), query.WithParallelism(1))
	if got, want := wireJSON(t, autoRun[0]), wireJSON(t, enumRun[0]); got != want {
		t.Errorf("seed %d: auto on unsupported query differs from enum:\nauto: %s\nenum: %s", seed, got, want)
	}
}

// TestDifferentialSweep is the bounded deterministic slice of the fuzz
// target that runs in every plain `go test ./...` (and under -race in
// `make check`): fixed seeds, no corpus required.
func TestDifferentialSweep(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		differentialOnce(t, seed)
	}
}

// FuzzDifferentialBackends lets the fuzzer hunt for seeds where the
// backends disagree: go test -fuzz=FuzzDifferentialBackends ./internal/query/
func FuzzDifferentialBackends(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		differentialOnce(t, seed)
	})
}

// BenchmarkLPvsEnumeration compares the backends on the n-squad
// threshold workload that motivates the LP engine: the belief fact is
// evaluated once per world-column there instead of once per run. Fresh
// engines per iteration keep memoization from crossing iterations.
func BenchmarkLPvsEnumeration(b *testing.B) {
	for _, n := range []int{3, 4, 5} {
		sys, err := scenarios.NFiringSquadSystem(n, ratutil.R(1, 10), false)
		if err != nil {
			b.Fatal(err)
		}
		fact := epistemic.Believes(scenarios.General, ratutil.R(1, 2), scenarios.AllFireFact(n))
		var qs []query.Query
		for _, p := range []*big2{{0, 1}, {1, 4}, {1, 2}, {3, 4}, {1, 1}} {
			qs = append(qs, query.ThresholdQuery{
				Fact: fact, Agent: scenarios.General, Action: scenarios.ActFire, P: ratutil.R(p.a, p.b),
			})
		}
		for _, backend := range []query.Backend{query.BackendEnum, query.BackendLP} {
			backend := backend
			b.Run(fmt.Sprintf("n=%d/backend=%s", n, backend), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := query.EvalBatch(core.New(sys), qs,
						query.WithParallelism(1), query.WithBackend(backend)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
