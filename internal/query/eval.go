package query

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"pak/internal/core"
)

// Eval evaluates one query against the engine. The engine memoizes
// shared work (performance indexes, fact extensions, beliefs), so
// consecutive Eval calls over overlapping requests get cheaper; it is
// safe to call Eval concurrently from multiple goroutines on the same
// engine.
//
// Facts that reference an agent absent from the system panic in the
// logic layer (a programming error there); Eval converts the panic to
// an error so one bad query in a batch reports in its own slot instead
// of killing the process.
func Eval(e *core.Engine, q Query) (Result, error) {
	return evalCtx(context.Background(), e, q)
}

// evalCtx is Eval bound to a context. The context is advisory (see the
// Query interface): it reaches the engine's deep scans so a deadline
// can cut even a single long evaluation, and an aborted query reports
// the context's cause in its own slot.
func evalCtx(ctx context.Context, e *core.Engine, q Query) (res Result, err error) {
	if q == nil {
		return Result{}, fmt.Errorf("query: nil query")
	}
	if vErr := q.validate(); vErr != nil {
		return Result{Kind: q.Kind(), Query: q.String(), Err: vErr}, vErr
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("query: %s: panic: %v", q, r)
			res = Result{Kind: q.Kind(), Query: q.String(), Err: err}
		}
	}()
	res, err = q.eval(ctx, e)
	if err != nil {
		return Result{Kind: q.Kind(), Query: q.String(), Err: err}, err
	}
	return res, nil
}

// config collects EvalBatch's functional options.
type config struct {
	parallelism int
	cache       bool
	ctx         context.Context
	// approx, when set, enables the approximate tier (see WithApprox
	// and approx.go). It is normalized once per stream in streamItems.
	approx *ApproxSpec
	// backend selects the evaluation engine (see WithBackend); the zero
	// value is normalized to BackendEnum in newConfig.
	backend Backend
}

// newConfig applies the options over the defaults shared by the batch
// and stream evaluators. Parallelism is normalized here: n ≤ 1 means
// serial, exactly as WithParallelism documents, so zero and negative
// values cannot reach the pool as anything but 1.
func newConfig(opts []Option) config {
	cfg := config{parallelism: runtime.GOMAXPROCS(0), cache: true, ctx: context.Background()}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.parallelism < 1 {
		cfg.parallelism = 1
	}
	if cfg.ctx == nil {
		cfg.ctx = context.Background()
	}
	if cfg.backend == "" {
		cfg.backend = BackendEnum
	}
	return cfg
}

// Option configures EvalBatch.
type Option func(*config)

// WithParallelism sets the number of worker goroutines evaluating the
// batch. n ≤ 1 evaluates serially in input order; the default is
// runtime.GOMAXPROCS(0).
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithContext binds a batch evaluation to ctx for cooperative
// cancellation: once ctx is done, queries that have not yet started
// fail fast in their own result slots with an error wrapping ctx's
// cause (context.DeadlineExceeded for timeouts), while queries already
// being evaluated run to completion — one query is the unit of
// cancellation, so a finished slot is always exact, never a torn
// partial value. A nil ctx means context.Background() (never cancels).
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// WithCache controls whether the batch shares the engine's memoization:
// enabled (the default), queries overlapping in (fact, agent, action)
// reuse each other's performance indexes, fact extensions and beliefs;
// disabled, every query is evaluated against a fresh cold engine over
// the same system. Disabling is chiefly useful for isolating queries and
// for benchmarking the cache itself.
func WithCache(enabled bool) Option {
	return func(c *config) { c.cache = enabled }
}

// EvalBatch evaluates the queries against the engine, by default in
// parallel across runtime.GOMAXPROCS(0) workers. The returned slice has
// one Result per query, in input order — parallelism never reorders or
// renumbers results, and every result is identical to what a serial Eval
// loop would produce (the engine computes exact rationals, so there is
// no accumulation-order effect to worry about). Failed queries carry
// their error in Result.Err; the joined error aggregates them and is nil
// when every query succeeded. Under WithContext, queries not yet started
// when the context is done fail in their slots with the context's error.
//
// EvalBatch is a consumer of the streaming core (EvalStream): it drains
// the frame stream back into an input-ordered slice, so the batch and
// stream paths cannot disagree on a single result.
func EvalBatch(e *core.Engine, qs []Query, opts ...Option) ([]Result, error) {
	results, errs := collectStream([]MultiItem{{Engine: e, Queries: qs}}, newConfig(opts))
	return results[0], errors.Join(errs[0]...)
}

// ctxErr reports the context's cause as this query's evaluation error,
// or nil while the context is live. It is the single cancellation check
// both batch evaluators run before starting a query.
func ctxErr(ctx context.Context, q Query) error {
	if err := context.Cause(ctx); err != nil {
		return fmt.Errorf("query: %s: not evaluated: %w", stringOf(q), err)
	}
	return nil
}

// kindOf and stringOf tolerate nil queries so a cancelled slot's result
// never panics rendering its own label.
func kindOf(q Query) Kind {
	if q == nil {
		return ""
	}
	return q.Kind()
}

func stringOf(q Query) string {
	if q == nil {
		return "<nil>"
	}
	return q.String()
}

// runPool runs do(0..n-1) across a bounded worker pool and waits for
// completion; workers ≤ 1 degrades to a serial in-order loop. It is the
// one scheduling substrate under EvalBatch and MultiBatch, so the
// batch-equals-serial contract has a single implementation to audit.
func runPool(n, workers int, do func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			do(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				do(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
