package query

// Adversary envelopes as queries. The paper's Section 2 treatment of
// nondeterminism fixes an adversary — one complete assignment of every
// nondeterministic choice — and its guarantees are statements over the
// WHOLE adversary space: the envelope [min, max] of a quantity across
// every assignment. EnvelopeQuery makes that envelope a first-class
// answer shape of the query layer: wrap any single-valued query, supply
// one engine per assignment (resolved by the caller through the
// registry/EngineCache path, so envelope evaluation never builds
// engines of its own), and the space compiles down to the existing
// EvalMultiStream worker pool — one MultiItem per assignment, frames
// carrying assignment coordinates.
//
// The contract (documented in DESIGN.md and pinned by tests):
//
//   - Progressive tightening: EnvelopeStream emits one frame per
//     assignment as its worker finishes, each carrying the running
//     envelope after folding that frame, then a terminal status frame
//     carrying the final envelope.
//   - Order-independent fold: the final envelope is a pure function of
//     the per-assignment results, not of their completion order. Ties
//     break toward the LOWEST assignment index, so the witness
//     assignments (ArgMin/ArgMax) under full parallelism are identical
//     to a serial run's — byte-identical wire envelopes, pinned under
//     -race.
//   - Sound partial envelopes: an assignment counts as visited only
//     when its result (value, skip, or hard failure) actually landed.
//     Slots cut by the context — never started, or aborted inside a
//     deep scan — are NOT visited, so a deadline mid-sweep yields an
//     envelope that is exactly the fold of the visited assignments,
//     labeled with the visited count (the same prefix-preservation
//     contract the batch evaluators honour).
//   - Skips are data: assignments on which the quantity is undefined
//     (core.ErrNotProper, core.ErrUnknownLocal — e.g. the adversary
//     under which the action is never performed) are recorded in
//     Skipped, index-sorted; they bound nothing but stay visible.

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"pak/internal/core"
	"pak/internal/ratutil"
)

// Envelope errors.
var (
	// ErrNoAssignments indicates an envelope over an empty space.
	ErrNoAssignments = errors.New("query: envelope needs at least one assignment")
	// ErrAllSkipped indicates the inner query was undefined (improper
	// action, unreachable state) under every visited assignment.
	ErrAllSkipped = errors.New("query: envelope undefined under every assignment")
)

// EnvelopeItem is one assignment of the adversary space, paired with
// the engine its resolved system evaluates on. Callers obtain engines
// through the registry (registry.ResolveSpace → canonical system specs
// → shared EngineCache or Registry.Build); the envelope evaluator never
// constructs engines itself. A nil Engine fails the slot in place, like
// a nil engine in MultiBatch.
type EnvelopeItem struct {
	// Assignment is the canonical rendering of the adversary assignment
	// ("loss=1/10,seed=3"; empty for the degenerate one-point space).
	Assignment string
	// Spec is the canonical system spec the assignment resolves to (the
	// engine-cache key); informational, echoed on frames.
	Spec string
	// Engine evaluates the inner query for this assignment.
	Engine *core.Engine
	// Source, when non-nil, resolves the assignment's engine lazily (see
	// MultiItem.Source); Engine is then ignored. A source the context
	// cuts mid-build counts its assignment as not visited, exactly like
	// a slot the context cut before it started.
	Source EngineSource
}

// EnvelopeQuery asks for the [min, max] envelope of Inner across the
// assignments of an adversary space. It is deliberately NOT a Query:
// the Query interface is closed over single-engine requests, while an
// envelope spans one engine per assignment — it is evaluated by
// EvalEnvelope / EnvelopeStream instead, and its Result reports under
// KindEnvelope.
type EnvelopeQuery struct {
	// Inner is the wrapped query. It must yield a single headline Value
	// (constraint, expectation, threshold, metric, a local belief, a
	// theorem's constraint probability, ...); a result without one fails
	// its slot.
	Inner Query
	// Items is the compiled space: one entry per assignment, in the
	// space's canonical enumeration order.
	Items []EnvelopeItem
}

// Validate checks the envelope request's well-formedness.
func (q EnvelopeQuery) Validate() error {
	if q.Inner == nil {
		return fmt.Errorf("query: envelope requires an inner query")
	}
	if err := q.Inner.validate(); err != nil {
		return err
	}
	if len(q.Items) == 0 {
		return ErrNoAssignments
	}
	return nil
}

// String describes the request.
func (q EnvelopeQuery) String() string {
	return fmt.Sprintf("envelope of [%s] over %d assignments", stringOf(q.Inner), len(q.Items))
}

// Range is the envelope of the inner query's value over the visited
// assignments: the answer shape of an envelope query.
type Range struct {
	// Min and Max bound the value over the visited assignments; nil
	// while no assignment has produced a value.
	Min, Max *big.Rat
	// ArgMin and ArgMax are the witness assignments attaining the
	// bounds; ties resolve to the lowest assignment index, so witnesses
	// are deterministic under parallel evaluation.
	ArgMin, ArgMax string
	// MinIndex and MaxIndex are the witnesses' assignment indices (-1
	// while undefined).
	MinIndex, MaxIndex int
	// Visited counts assignments whose result landed (values, skips and
	// hard failures); Total is the space size. Visited < Total marks a
	// partial envelope (deadline or cancellation mid-sweep).
	Visited, Total int
	// Skipped lists the assignments on which the quantity was
	// undefined, sorted by assignment index.
	Skipped []string
}

// Defined reports whether any assignment has bounded the envelope yet.
func (r Range) Defined() bool { return r.Min != nil }

// String summarizes the range.
func (r Range) String() string {
	coverage := fmt.Sprintf("%d/%d assignments visited", r.Visited, r.Total)
	if len(r.Skipped) > 0 {
		coverage += fmt.Sprintf(", %d skipped", len(r.Skipped))
	}
	if !r.Defined() {
		return fmt.Sprintf("envelope undefined (%s)", coverage)
	}
	return fmt.Sprintf("∈ [%s, %s] (min at %q, max at %q; %s)",
		r.Min.RatString(), r.Max.RatString(), r.ArgMin, r.ArgMax, coverage)
}

// EnvelopeFrame is one emission of a streamed envelope evaluation: a
// result frame for one assignment, or the single terminal status frame
// carrying the final envelope.
type EnvelopeFrame struct {
	// Index is the assignment's position in the space's enumeration;
	// Assignment and Spec echo its item.
	Index      int
	Assignment string
	Spec       string
	// Result is the inner query's result under this assignment (exact
	// on success; a skip or failure reports in Result.Err).
	Result Result
	// Envelope is the running envelope after folding this frame — on
	// the terminal frame, the final (possibly partial) envelope.
	Envelope Range
	// Status is empty on result frames and set exactly once, on the
	// final frame before the channel closes.
	Status StreamStatus
	// Err is the context's cause on a deadline/cancelled terminal frame.
	Err error
}

// Terminal reports whether this is the closing status frame.
func (f EnvelopeFrame) Terminal() bool { return f.Status != "" }

// EnvelopeStream evaluates the envelope progressively: the space
// compiles to one MultiItem per assignment over the shared
// EvalMultiStream pool, and each assignment's frame is emitted — with
// the running envelope — the moment its worker finishes. Exactly one
// frame per assignment, then one terminal frame, then the channel
// closes; the channel is buffered for the whole sweep, so abandoning
// the stream never leaks the pool. The error return is non-nil only
// for an invalid request (nothing streams then).
func EnvelopeStream(q EnvelopeQuery, opts ...Option) (<-chan EnvelopeFrame, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	items := make([]MultiItem, len(q.Items))
	for i, it := range q.Items {
		items[i] = MultiItem{Engine: it.Engine, Source: it.Source, Queries: []Query{q.Inner}}
	}
	cfg := newConfig(opts)
	out := make(chan EnvelopeFrame, len(q.Items)+1)
	go func() {
		defer close(out)
		fold := newEnvelopeFold(q.Items)
		for f := range streamItems(items, cfg) {
			if f.Terminal() {
				out <- EnvelopeFrame{Envelope: fold.snapshot(), Status: f.Status, Err: f.Err}
				return
			}
			fold.add(f.System, f.Result)
			out <- EnvelopeFrame{
				Index:      f.System,
				Assignment: q.Items[f.System].Assignment,
				Spec:       q.Items[f.System].Spec,
				Result:     f.Result,
				Envelope:   fold.snapshot(),
			}
		}
	}()
	return out, nil
}

// EnvelopeOutcome is EvalEnvelope's buffered answer.
type EnvelopeOutcome struct {
	// Result is the envelope as a uniform query result: KindEnvelope,
	// the final Range in Result.Envelope, min/max mirrored into Values,
	// and slot failures joined into Result.Err.
	Result Result
	// Slots holds the inner query's per-assignment results in
	// assignment order — each exact, byte-identical (in wire form) to
	// what a streamed run emits for the same slot.
	Slots []Result
	// Status is how the evaluation ended; Cause is the context's cause
	// on a deadline/cancelled ending.
	Status StreamStatus
	// Cause is the context error accompanying a non-complete Status.
	Cause error
}

// EvalEnvelope evaluates the envelope to completion (or to the
// context's end) and folds the stream into one EnvelopeOutcome. It is
// a pure consumer of EnvelopeStream, so buffered and streamed envelopes
// cannot disagree. Hard failures (neither skips nor context cuts) join
// into Result.Err in assignment order; a complete sweep in which every
// visited assignment was skipped reports ErrAllSkipped.
func EvalEnvelope(q EnvelopeQuery, opts ...Option) (EnvelopeOutcome, error) {
	frames, err := EnvelopeStream(q, opts...)
	if err != nil {
		return EnvelopeOutcome{}, err
	}
	out := EnvelopeOutcome{Slots: make([]Result, len(q.Items))}
	var final Range
	for f := range frames {
		if f.Terminal() {
			final, out.Status, out.Cause = f.Envelope, f.Status, f.Err
			continue
		}
		out.Slots[f.Index] = f.Result
	}
	res := Result{
		Kind:     KindEnvelope,
		Query:    q.String(),
		Envelope: &final,
		Detail:   final.String(),
	}
	if final.Defined() {
		res.Values = map[string]*big.Rat{
			"min": ratutil.Copy(final.Min),
			"max": ratutil.Copy(final.Max),
		}
	}
	var failures []error
	for i, slot := range out.Slots {
		switch {
		case slot.Err != nil && !envelopeSkip(slot.Err) && !ctxAborted(slot.Err):
			failures = append(failures, fmt.Errorf("assignment %d (%s): %w", i, q.Items[i].Assignment, slot.Err))
		case slot.Err == nil && slot.Value == nil:
			// Evaluated but with no single headline number (e.g. a
			// per-state belief map): the envelope cannot fold it.
			failures = append(failures, fmt.Errorf("assignment %d (%s): query %s yields no single envelope value",
				i, q.Items[i].Assignment, stringOf(q.Inner)))
		}
	}
	switch {
	case len(failures) > 0:
		res.Err = errors.Join(failures...)
	case out.Status == StreamComplete && !final.Defined():
		res.Err = fmt.Errorf("%w: %s", ErrAllSkipped, stringOf(q.Inner))
	}
	out.Result = res
	return out, nil
}

// envelopeSkip classifies the errors under which an assignment is
// skipped rather than failed: the quantity is undefined there (the
// action is not proper, the state never occurs), which the paper's
// notions do not cover.
func envelopeSkip(err error) bool {
	return errors.Is(err, core.ErrNotProper) || errors.Is(err, core.ErrUnknownLocal)
}

// ctxAborted classifies slots cut by the context — never started, or
// aborted inside a deep scan. They are not visited: the partial
// envelope stays the exact fold of the assignments that finished.
func ctxAborted(err error) bool { return core.IsContextErr(err) }

// envelopeFold accumulates the running envelope. It is owned by the
// single emitting goroutine; snapshots hand out value copies so frames
// stay immutable once emitted.
type envelopeFold struct {
	items   []EnvelopeItem
	env     Range
	skipped []int // assignment indices, arrival order
}

func newEnvelopeFold(items []EnvelopeItem) *envelopeFold {
	return &envelopeFold{
		items: items,
		env:   Range{MinIndex: -1, MaxIndex: -1, Total: len(items)},
	}
}

// add folds one slot result. The tie-break toward the lowest index is
// what makes the fold order-independent: whatever order frames arrive
// in, the final witnesses are the first assignments (in enumeration
// order) attaining the bounds — exactly what a serial sweep produces.
func (fd *envelopeFold) add(i int, res Result) {
	switch {
	case res.Err != nil && envelopeSkip(res.Err):
		fd.env.Visited++
		fd.skipped = append(fd.skipped, i)
		return
	case res.Err != nil && ctxAborted(res.Err):
		return // cut by the context: not visited, bounds untouched
	case res.Err != nil:
		fd.env.Visited++ // hard failure: visited, bounds untouched
		return
	case res.Value == nil:
		// The inner query evaluated but has no single headline number
		// (e.g. a per-state belief map): a request shape error, reported
		// per slot by EvalEnvelope's failure join.
		fd.env.Visited++
		return
	}
	fd.env.Visited++
	v := res.Value
	if fd.env.Min == nil || ratutil.Less(v, fd.env.Min) ||
		(ratutil.Eq(v, fd.env.Min) && i < fd.env.MinIndex) {
		fd.env.Min = ratutil.Copy(v)
		fd.env.MinIndex = i
		fd.env.ArgMin = fd.items[i].Assignment
	}
	if fd.env.Max == nil || ratutil.Greater(v, fd.env.Max) ||
		(ratutil.Eq(v, fd.env.Max) && i < fd.env.MaxIndex) {
		fd.env.Max = ratutil.Copy(v)
		fd.env.MaxIndex = i
		fd.env.ArgMax = fd.items[i].Assignment
	}
}

// snapshot renders the current envelope as an immutable value: rational
// bounds copied, skipped assignments index-sorted.
func (fd *envelopeFold) snapshot() Range {
	env := fd.env
	if env.Min != nil {
		env.Min = ratutil.Copy(env.Min)
	}
	if env.Max != nil {
		env.Max = ratutil.Copy(env.Max)
	}
	if len(fd.skipped) > 0 {
		idxs := append([]int(nil), fd.skipped...)
		sort.Ints(idxs)
		env.Skipped = make([]string, len(idxs))
		for j, i := range idxs {
			env.Skipped[j] = fd.items[i].Assignment
		}
	}
	return env
}

// IsEnvelopeSkip reports whether a slot error is a skip — the quantity
// is undefined under that assignment (improper action, unreachable
// state) — rather than a hard failure. Exported so envelope consumers
// (pakcheck -sweep, the service) classify slots exactly as the fold
// does.
func IsEnvelopeSkip(err error) bool { return envelopeSkip(err) }

// EnvelopeFailure renders the hard failures of a slot slice for error
// reports, in assignment order: the helper pakcheck -sweep and
// EvalEnvelope's consumers use so a sweep with failed slots is never
// presented as a sound envelope.
func EnvelopeFailure(slots []Result) string {
	var parts []string
	for i, slot := range slots {
		if slot.Err != nil && !envelopeSkip(slot.Err) && !ctxAborted(slot.Err) {
			parts = append(parts, fmt.Sprintf("#%d: %v", i, slot.Err))
		}
	}
	return strings.Join(parts, "; ")
}
