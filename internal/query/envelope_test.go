package query

import (
	"errors"
	"math/big"
	"strings"
	"testing"

	"pak/internal/core"
	"pak/internal/paper"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// envItems builds a three-point family over nsquad(2) losses 0, 1/10,
// 1/5 (µ = 1, 99/100, 24/25).
func envItems(t *testing.T) []EnvelopeItem {
	t.Helper()
	var items []EnvelopeItem
	for _, loss := range []struct {
		name     string
		num, den int64
	}{
		{"loss=0", 0, 1}, {"loss=1/10", 1, 10}, {"loss=1/5", 1, 5},
	} {
		sys, err := scenarios.NFiringSquadSystem(2, ratutil.R(loss.num, loss.den), false)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, EnvelopeItem{Assignment: loss.name, Spec: "nsquad", Engine: core.New(sys)})
	}
	return items
}

func envInner() Query {
	return ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire}
}

func TestEvalEnvelopeBounds(t *testing.T) {
	out, err := EvalEnvelope(EnvelopeQuery{Inner: envInner(), Items: envItems(t)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StreamComplete || out.Result.Err != nil {
		t.Fatalf("status=%v err=%v", out.Status, out.Result.Err)
	}
	env := out.Result.Envelope
	if env == nil || !ratutil.Eq(env.Min, ratutil.R(24, 25)) || !ratutil.IsOne(env.Max) {
		t.Fatalf("envelope = %v", env)
	}
	if env.ArgMin != "loss=1/5" || env.ArgMax != "loss=0" || env.MinIndex != 2 || env.MaxIndex != 0 {
		t.Fatalf("witnesses = %+v", env)
	}
	if env.Visited != 3 || env.Total != 3 {
		t.Fatalf("coverage = %d/%d", env.Visited, env.Total)
	}
	if out.Result.Kind != KindEnvelope {
		t.Errorf("kind = %q", out.Result.Kind)
	}
	if got := out.Result.Values["min"]; got == nil || !ratutil.Eq(got, env.Min) {
		t.Errorf("Values[min] = %v", got)
	}
	// The wire form carries the same range.
	doc := DocOf(out.Result)
	if doc.Envelope == nil || doc.Envelope.Min != "24/25" || doc.Envelope.ArgMax != "loss=0" {
		t.Errorf("doc envelope = %+v", doc.Envelope)
	}
}

// TestEnvelopeTieBreaksTowardLowestIndex: equal values under every
// assignment must elect assignment 0 as both witnesses regardless of
// parallelism — the order-independence the determinism contract needs.
func TestEnvelopeTieBreaksTowardLowestIndex(t *testing.T) {
	sys, err := scenarios.NFiringSquadSystem(2, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	var items []EnvelopeItem
	for _, name := range []string{"a=0", "a=1", "a=2", "a=3"} {
		items = append(items, EnvelopeItem{Assignment: name, Engine: core.New(sys)})
	}
	for _, par := range []int{1, 4} {
		out, err := EvalEnvelope(EnvelopeQuery{Inner: envInner(), Items: items}, WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		env := out.Result.Envelope
		if env.ArgMin != "a=0" || env.ArgMax != "a=0" || env.MinIndex != 0 || env.MaxIndex != 0 {
			t.Errorf("parallelism %d: tie witnesses = %+v", par, env)
		}
	}
}

func TestEnvelopeValidation(t *testing.T) {
	if _, err := EvalEnvelope(EnvelopeQuery{Inner: envInner()}); !errors.Is(err, ErrNoAssignments) {
		t.Errorf("empty items err = %v", err)
	}
	if _, err := EvalEnvelope(EnvelopeQuery{Items: envItems(t)}); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := EnvelopeStream(EnvelopeQuery{Inner: ConstraintQuery{}, Items: envItems(t)}); err == nil {
		t.Error("invalid inner accepted")
	}
}

// TestEnvelopeSkipAndFailureSlots: a skip (improper action) counts as
// visited and is recorded by name; a hard failure joins Result.Err with
// its assignment named; a valueless inner result is a per-slot failure.
func TestEnvelopeSkipAndFailureSlots(t *testing.T) {
	items := envItems(t)

	// Improper action under every assignment → all skipped.
	out, err := EvalEnvelope(EnvelopeQuery{
		Inner: ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: "nope"},
		Items: items,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := out.Result.Envelope
	if env.Defined() || env.Visited != 3 || len(env.Skipped) != 3 || env.Skipped[0] != "loss=0" {
		t.Fatalf("all-skipped envelope = %+v", env)
	}
	if !errors.Is(out.Result.Err, ErrAllSkipped) {
		t.Fatalf("all-skipped err = %v", out.Result.Err)
	}

	// A metric that hard-fails on one assignment: the envelope still
	// folds the others, and the failure is named.
	boom := errors.New("boom")
	n := 0
	out, err = EvalEnvelope(EnvelopeQuery{
		Inner: MetricQuery{Name: "flaky", Fn: func(e *core.Engine) (*big.Rat, error) {
			n++
			if n == 2 {
				return nil, boom
			}
			return e.ConstraintProb(scenarios.AllFireFact(2), scenarios.General, scenarios.ActFire)
		}},
		Items: items,
	}, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out.Result.Err, boom) || !strings.Contains(out.Result.Err.Error(), "loss=1/10") {
		t.Fatalf("failure join = %v", out.Result.Err)
	}
	env = out.Result.Envelope
	if env.Visited != 3 || !ratutil.Eq(env.Min, ratutil.R(24, 25)) || !ratutil.IsOne(env.Max) {
		t.Fatalf("envelope with failed slot = %+v", env)
	}

	// A valueless inner (belief over acting states yields a map, not a
	// single number) fails its slots rather than silently bounding
	// nothing.
	out, err = EvalEnvelope(EnvelopeQuery{
		Inner: BeliefQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire},
		Items: items[:1],
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Err == nil || !strings.Contains(out.Result.Err.Error(), "no single envelope value") {
		t.Fatalf("valueless inner err = %v", out.Result.Err)
	}
}

// TestMetricQueryIsOpaque: MetricQuery evaluates like any query but
// refuses to serialize, mirroring opaque facts.
func TestMetricQueryIsOpaque(t *testing.T) {
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	q := MetricQuery{Name: "µ(both)", Fn: func(e *core.Engine) (*big.Rat, error) {
		return e.ConstraintProb(paper.FSBothFire(), paper.Alice, paper.ActFire)
	}}
	res, err := Eval(core.New(sys), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindMetric || !ratutil.Eq(res.Value, ratutil.R(99, 100)) {
		t.Fatalf("metric result = %+v", res)
	}
	if _, err := Marshal(q); err == nil {
		t.Error("MetricQuery serialized; it must refuse")
	}
	if _, err := Eval(core.New(sys), MetricQuery{}); err == nil {
		t.Error("nil-Fn metric accepted")
	}
}
