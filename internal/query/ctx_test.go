package query

import (
	"context"
	"errors"
	"testing"

	"pak/internal/core"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// squadWorkload builds a small engine + batch for the context tests.
func squadWorkload(t *testing.T, n int) (*core.Engine, []Query) {
	t.Helper()
	sys, err := scenarios.NFiringSquadSystem(n, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	all := scenarios.AllFireFact(n)
	qs := []Query{
		ConstraintQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		ExpectationQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
		ThresholdQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire, P: ratutil.R(9, 10)},
		TheoremQuery{Theorem: TheoremExpectation, Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
	}
	return core.New(sys), qs
}

// TestEvalBatchCancelledContext: a context cancelled before the batch
// starts fails every slot with the context error — in order, with the
// query's own label — and the joined error is non-nil.
func TestEvalBatchCancelledContext(t *testing.T) {
	e, qs := squadWorkload(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := EvalBatch(e, qs, WithContext(ctx), WithParallelism(4))
	if err == nil {
		t.Fatal("cancelled batch returned nil joined error")
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results, want %d", len(results), len(qs))
	}
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("slot %d: no error after cancellation", i)
			continue
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("slot %d: error %v does not wrap context.Canceled", i, r.Err)
		}
		if r.Kind != qs[i].Kind() || r.Query != qs[i].String() {
			t.Errorf("slot %d: cancelled result lost its label: %+v", i, r)
		}
		if r.Value != nil {
			t.Errorf("slot %d: cancelled result carries a value", i)
		}
	}
}

// TestEvalBatchDeadlineExceeded: an already-expired deadline surfaces
// context.DeadlineExceeded in every unstarted slot, the error the
// service layer maps to 504.
func TestEvalBatchDeadlineExceeded(t *testing.T) {
	e, qs := squadWorkload(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	results, err := EvalBatch(e, qs, WithContext(ctx))
	if err == nil {
		t.Fatal("expired batch returned nil joined error")
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("slot %d: error %v does not wrap context.DeadlineExceeded", i, r.Err)
		}
	}
}

// TestEvalBatchLiveContext: a live context changes nothing — results are
// exactly what the no-context batch produces.
func TestEvalBatchLiveContext(t *testing.T) {
	e, qs := squadWorkload(t, 2)
	plain, err := EvalBatch(core.New(e.System()), qs, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := EvalBatch(e, qs, WithContext(ctx), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Value == nil || withCtx[i].Value == nil {
			if (plain[i].Value == nil) != (withCtx[i].Value == nil) {
				t.Errorf("slot %d: value presence differs under a live context", i)
			}
			continue
		}
		if plain[i].Value.Cmp(withCtx[i].Value) != 0 {
			t.Errorf("slot %d: %s != %s under a live context",
				i, plain[i].Value.RatString(), withCtx[i].Value.RatString())
		}
	}
	// WithContext(nil) must behave like Background, not panic.
	if _, err := EvalBatch(e, qs[:1], WithContext(nil)); err != nil {
		t.Errorf("WithContext(nil): %v", err)
	}
}

// TestMultiBatchCancelledContext: cancellation isolates per slot across
// systems too, and keeps the [system][query] shape intact.
func TestMultiBatchCancelledContext(t *testing.T) {
	e2, qs2 := squadWorkload(t, 2)
	e3, qs3 := squadWorkload(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := MultiBatch([]MultiItem{
		{Engine: e2, Queries: qs2},
		{Engine: e3, Queries: qs3},
	}, WithContext(ctx), WithParallelism(4))
	if err == nil {
		t.Fatal("cancelled multi-batch returned nil joined error")
	}
	if len(results) != 2 || len(results[0]) != len(qs2) || len(results[1]) != len(qs3) {
		t.Fatalf("result shape wrong: %d systems", len(results))
	}
	for i, row := range results {
		for j, r := range row {
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("[%d][%d]: error %v does not wrap context.Canceled", i, j, r.Err)
			}
		}
	}
}

// TestMultiBatchMidwayCancel: cancelling while the pool drains leaves
// every slot either exact or cleanly cancelled — never torn. The serial
// pool guarantees at least the first slot completes before the
// cancellation (triggered by the first query's own evaluation) is
// observed by later ones.
func TestMultiBatchMidwayCancel(t *testing.T) {
	e, qs := squadWorkload(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A probe query slice: the first is a real query, the rest are real
	// too, but we cancel after the batch is submitted serially — with
	// parallelism 1 the pool checks the context between queries, so a
	// cancel during query 0 leaves 1..n-1 cancelled.
	done := make(chan struct{})
	go func() {
		defer close(done)
		cancel()
	}()
	<-done
	results, _ := EvalBatch(e, qs, WithContext(ctx), WithParallelism(1))
	for i, r := range results {
		ok := r.Err == nil && r.Value != nil || errors.Is(r.Err, context.Canceled)
		if r.Kind == KindTheorem {
			ok = r.Err == nil && r.Verdict != VerdictNone || errors.Is(r.Err, context.Canceled)
		}
		if !ok {
			t.Errorf("slot %d: neither exact nor cleanly cancelled: %+v", i, r)
		}
	}
}
