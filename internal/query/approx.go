package query

// The approximate tier: any supported query can be answered first from
// a seeded Monte-Carlo sample with an exact-rational Hoeffding interval,
// then refined to the exact value. Under WithApprox the streaming core
// emits per supported slot an "approx" frame (the sampled estimate)
// followed by an "exact" frame (the refined value, carrying the same
// estimate plus a ciCovered self-check); batch consumers keep only the
// last frame per slot, so the refined value wins whenever refinement
// ran and the estimate stands as the slot's answer when a deadline cut
// the refinement off. Everything is deterministic: the per-slot seed is
// a pure function of (base seed, system, index), so serial and parallel
// evaluation — and any two runs with the same seed and budget — produce
// byte-identical estimates.
//
// Supported kinds and their estimators (n = sample budget):
//
//	constraint   µ(φ@α | α)         frequency of φ at the performance
//	                                point among sampled α-performing runs
//	belief (ℓ)   β_i(φ) @ ℓ         frequency of φ at ℓ's occurrence
//	                                time among sampled runs through ℓ
//	threshold    µ(β_i(φ)@α ≥ p|α)  frequency of the exact point belief
//	                                clearing p among sampled acting runs
//	expectation  E[β_i(φ)@α | α]    exact-rational mean of the point
//	                                belief over sampled acting runs
//
// The threshold and expectation estimators are hybrids: runs are
// sampled, but the belief at each sampled point is the engine's exact
// rational, so the sampled mean is itself an exact rational and the
// Hoeffding bound (which covers [0,1]-valued means) applies unchanged.
//
// Conditioning events that never occur in the sample yield the
// trivially sound "no information" estimate 1/2 ± 1/2 (interval [0,1],
// N = 0) rather than an error: the interval still covers the truth.

import (
	"context"
	"fmt"
	"math/big"

	"pak/internal/core"
	"pak/internal/montecarlo"
	"pak/internal/ratutil"
)

// Stage labels which tier of an approximate evaluation a frame carries.
type Stage string

const (
	// StageApprox marks a sampled-estimate frame (always emitted before
	// its slot's exact frame).
	StageApprox Stage = "approx"
	// StageExact marks a refined exact frame. Outside approx mode the
	// stage is empty, keeping the non-approx wire shape unchanged.
	StageExact Stage = "exact"
)

// ApproxSpec configures the approximate tier for a batch or stream.
type ApproxSpec struct {
	// Eps is the target half-width ε ∈ (0,1); together with Delta it
	// determines the sample budget when Samples is zero.
	Eps *big.Rat
	// Delta is the per-estimate CI failure probability δ ∈ (0,1);
	// defaults to 1/100.
	Delta *big.Rat
	// Samples fixes the budget directly; 0 derives it from (Eps, Delta)
	// via the Hoeffding sample complexity ⌈ln(2/δ)/(2ε²)⌉.
	Samples int
	// Seed is the base seed; every (system, index) slot derives its own
	// seed deterministically from it, which is what makes serial and
	// parallel evaluation byte-identical. 0 means seed 1.
	Seed int64
	// Only suppresses exact refinement: supported slots answer from
	// samples alone (kinds outside the approximable set still evaluate
	// exactly).
	Only bool
}

// normalized validates the spec and fills defaults, resolving the
// sample budget. It never mutates the receiver.
func (a ApproxSpec) normalized() (ApproxSpec, error) {
	if a.Delta == nil {
		a.Delta = ratutil.R(1, 100)
	} else {
		if a.Delta.Sign() <= 0 || a.Delta.Cmp(ratutil.One()) >= 0 {
			return a, fmt.Errorf("query: approx delta must be in (0,1), got %s", a.Delta.RatString())
		}
		a.Delta = ratutil.Copy(a.Delta)
	}
	if a.Eps != nil {
		a.Eps = ratutil.Copy(a.Eps)
	}
	if a.Samples < 0 {
		return a, fmt.Errorf("query: approx sample budget must be positive, got %d", a.Samples)
	}
	if a.Samples == 0 {
		if a.Eps == nil {
			return a, fmt.Errorf("query: approx requires eps or an explicit sample budget")
		}
		n, err := montecarlo.SampleSize(a.Eps, a.Delta)
		if err != nil {
			return a, fmt.Errorf("query: approx: %w", err)
		}
		a.Samples = n
	}
	if a.Seed == 0 {
		a.Seed = 1
	}
	return a, nil
}

// Validate reports whether the spec would be accepted by an evaluation:
// the same normalization the stream applies, surfaced so a transport
// (the service's request decoder) can reject a bad spec with a client
// error before any evaluation starts.
func (a ApproxSpec) Validate() error {
	_, err := a.normalized()
	return err
}

// WithApprox enables the approximate tier: supported queries stream a
// seeded sampled estimate (stage "approx") before their exact result
// (stage "exact"); see the package comment for the full contract. An
// invalid spec fails every slot of the batch with the validation error.
func WithApprox(spec ApproxSpec) Option {
	return func(c *config) {
		s := spec
		c.approx = &s
	}
}

// Estimate is a sampled estimate with its exact-rational Hoeffding
// interval and the provenance needed to reproduce it.
type Estimate struct {
	// EstimateRat is the point estimate and [Lo, Hi] interval; every
	// component is an exact rational, so the estimate round-trips
	// through its wire form without float drift.
	montecarlo.EstimateRat
	// Samples is the total prior-sample budget spent (N counts only the
	// samples that hit the conditioning event).
	Samples int
	// Seed is the slot's derived seed.
	Seed int64
	// Eps is the requested half-width (nil when the budget was given
	// directly); Delta is the CI failure probability: the exact value
	// lies in [Lo, Hi] with probability at least 1-Delta.
	Eps, Delta *big.Rat
}

// CanApprox reports whether the approximate tier supports q: constraint,
// expectation and threshold queries, and belief queries at an explicit
// local state. Everything else evaluates exactly even under WithApprox.
func CanApprox(q Query) bool {
	switch qq := q.(type) {
	case ConstraintQuery, ExpectationQuery, ThresholdQuery:
		return true
	case BeliefQuery:
		return qq.Local != ""
	}
	return false
}

// slotSeed derives the per-slot seed from the base seed and the slot's
// (system, index) coordinates with a splitmix64-style mix: a pure
// function, so the schedule (serial, parallel, rerun) cannot influence
// any slot's sample sequence.
func slotSeed(base int64, sys, idx int) int64 {
	z := uint64(base) ^ (uint64(sys)+1)*0x9E3779B97F4A7C15 ^ (uint64(idx)+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// approxRefineGate, when non-nil, runs between a slot's approx emission
// and the start of its exact refinement. It exists solely so tests (here
// and in the service layer) can prove the deadline-mid-refinement
// contract deterministically — the gate blocks until the evaluation
// context expires, forcing the "approx frame stands as the slot's
// answer" path without timers or races. Never set outside tests.
var approxRefineGate func(ctx context.Context, system, index int)

// SetApproxRefineGate installs (or, with nil, removes) the test-only
// refinement gate. Exported for the service tests; production code must
// never call it.
func SetApproxRefineGate(gate func(ctx context.Context, system, index int)) {
	approxRefineGate = gate
}

// evalApproxSlot computes the sampled estimate for one supported slot.
// It mirrors evalSlot's shape: context check first, then the engine,
// with panics converted to per-slot errors.
func evalApproxSlot(item MultiItem, model *montecarlo.Model, sys, idx int, cfg config) (res Result) {
	qu := item.Queries[idx]
	if err := ctxErr(cfg.ctx, qu); err != nil {
		return Result{Kind: kindOf(qu), Query: stringOf(qu), Err: err}
	}
	if item.Engine == nil {
		return Result{Err: fmt.Errorf("query: nil engine")}
	}
	if model == nil {
		return Result{Kind: kindOf(qu), Query: stringOf(qu), Err: fmt.Errorf("query: approx: no sampling model for system %d", sys)}
	}
	if err := qu.validate(); err != nil {
		return Result{Kind: qu.Kind(), Query: qu.String(), Err: err}
	}
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("query: %s: approx panic: %v", qu, r)
			res = Result{Kind: qu.Kind(), Query: qu.String(), Err: err}
		}
	}()
	seed := slotSeed(cfg.approx.Seed, sys, idx)
	est, err := approxEval(item.Engine, model, qu, *cfg.approx, seed)
	if err != nil {
		return Result{Kind: qu.Kind(), Query: qu.String(), Err: err}
	}
	return Result{
		Kind:     qu.Kind(),
		Query:    qu.String(),
		Value:    ratutil.Copy(est.P),
		Estimate: est,
		Detail:   fmt.Sprintf("sampled estimate %s ∈ [%s, %s] (n=%d of %d, seed=%d)", est.P.RatString(), est.Lo.RatString(), est.Hi.RatString(), est.N, est.Samples, est.Seed),
	}
}

// approxEval dispatches to the per-kind estimator. The returned
// Estimate is fully determined by (engine's system, query, spec, seed).
func approxEval(e *core.Engine, model *montecarlo.Model, q Query, spec ApproxSpec, seed int64) (*Estimate, error) {
	s := model.Sampler(seed)
	sys := model.System()
	switch qq := q.(type) {
	case ConstraintQuery:
		if err := e.IsProper(qq.Agent, qq.Action); err != nil {
			return nil, err
		}
		hits, acting := 0, 0
		for k := 0; k < spec.Samples; k++ {
			r := s.SampleRun()
			t, ok, err := e.PerformanceTime(qq.Agent, qq.Action, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			acting++
			if qq.Fact.Holds(sys, r, t) {
				hits++
			}
		}
		return newEstimate(montecarlo.NewEstimateRat(hits, acting, spec.Delta), spec, seed), nil

	case BeliefQuery:
		a, ok := sys.AgentIndex(qq.Agent)
		if !ok {
			return nil, fmt.Errorf("%w: %q", core.ErrUnknownAgent, qq.Agent)
		}
		_, tm, ok := sys.OccursShared(a, qq.Local)
		if !ok {
			return nil, fmt.Errorf("%w: agent %q state %q", core.ErrUnknownLocal, qq.Agent, qq.Local)
		}
		hits, reached := 0, 0
		for k := 0; k < spec.Samples; k++ {
			r := s.SampleRun()
			if tm >= sys.RunLen(r) || sys.Local(r, tm, a) != qq.Local {
				continue
			}
			reached++
			if qq.Fact.Holds(sys, r, tm) {
				hits++
			}
		}
		return newEstimate(montecarlo.NewEstimateRat(hits, reached, spec.Delta), spec, seed), nil

	case ThresholdQuery:
		if err := e.IsProper(qq.Agent, qq.Action); err != nil {
			return nil, err
		}
		hits, acting := 0, 0
		for k := 0; k < spec.Samples; k++ {
			r := s.SampleRun()
			t, ok, err := e.PerformanceTime(qq.Agent, qq.Action, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			acting++
			b, err := e.BeliefAtPoint(qq.Fact, qq.Agent, r, t)
			if err != nil {
				return nil, err
			}
			if b.Cmp(qq.P) >= 0 {
				hits++
			}
		}
		return newEstimate(montecarlo.NewEstimateRat(hits, acting, spec.Delta), spec, seed), nil

	case ExpectationQuery:
		if err := e.IsProper(qq.Agent, qq.Action); err != nil {
			return nil, err
		}
		sum := new(big.Rat)
		acting := 0
		for k := 0; k < spec.Samples; k++ {
			r := s.SampleRun()
			t, ok, err := e.PerformanceTime(qq.Agent, qq.Action, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			acting++
			b, err := e.BeliefAtPoint(qq.Fact, qq.Agent, r, t)
			if err != nil {
				return nil, err
			}
			sum.Add(sum, b)
		}
		var mean *big.Rat
		if acting > 0 {
			mean = sum.Quo(sum, big.NewRat(int64(acting), 1))
		}
		return newEstimate(montecarlo.NewEstimateRatMean(mean, acting, spec.Delta), spec, seed), nil
	}
	return nil, fmt.Errorf("query: %s is not approximable", stringOf(q))
}

// newEstimate decorates the rational interval with the provenance the
// wire form carries.
func newEstimate(er montecarlo.EstimateRat, spec ApproxSpec, seed int64) *Estimate {
	est := &Estimate{EstimateRat: er, Samples: spec.Samples, Seed: seed, Delta: ratutil.Copy(spec.Delta)}
	if spec.Eps != nil {
		est.Eps = ratutil.Copy(spec.Eps)
	}
	return est
}

// FlagCICovered is the exact frame's self-check flag: true when the
// exact value lies inside the approx frame's [Lo, Hi] interval. A false
// value is not an error — it is the δ-probability CI miss, surfaced so
// consumers (and the pakrand self-check) can audit the claimed rate.
const FlagCICovered = "ciCovered"

// attachEstimate carries the slot's sampled estimate onto its refined
// exact result and runs the self-check.
func attachEstimate(res *Result, est *Estimate) {
	res.Estimate = est
	if res.Flags == nil {
		res.Flags = make(map[string]bool, 1)
	}
	res.Flags[FlagCICovered] = est.Contains(res.Value)
}
